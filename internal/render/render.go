// Package render draws designs and routing results as SVG or ASCII, for
// debugging and for inspecting what the optimizer and router actually
// produced. The SVG shows M1 pins, M2/M3 metal, vias, blockages, and
// (optionally) the reserved pin access intervals.
package render

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/pinaccess"
	"cpr/internal/router"
	"cpr/internal/tech"
)

// palette assigns each net a stable colour.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

func netColor(netID int) string { return palette[netID%len(palette)] }

// SVGOptions controls the SVG output.
type SVGOptions struct {
	// CellSize is the pixel size of one grid cell (default 8).
	CellSize int
	// ShowIntervals draws reserved pin access intervals as translucent
	// bands when a seed list is provided to SVG.
	ShowIntervals bool
}

func (o SVGOptions) withDefaults() SVGOptions {
	if o.CellSize == 0 {
		o.CellSize = 8
	}
	return o
}

// Seed couples an interval set with its assignment for rendering.
type Seed struct {
	Set   *pinaccess.Set
	ByPin map[int]int
}

// SVG writes the design (and, if res is non-nil, its routes) as an SVG
// document.
func SVG(w io.Writer, d *design.Design, g *grid.Graph, res *router.Result,
	seeds []Seed, opts SVGOptions) error {

	opts = opts.withDefaults()
	cs := opts.CellSize
	width, height := d.Width*cs, d.Height*cs
	// SVG y grows downward; flip so track 0 is at the bottom.
	flipY := func(y int) int { return (d.Height - 1 - y) * cs }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="#fcfcfc"/>`+"\n", width, height)

	// Panel boundaries.
	for p := 0; p <= d.NumPanels(); p++ {
		y := flipY(p*d.Tech.TracksPerPanel-1) + cs
		fmt.Fprintf(&b, `<line x1="0" y1="%d" x2="%d" y2="%d" stroke="#dddddd" stroke-width="1"/>`+"\n",
			y, width, y)
	}

	// Blockages.
	for _, bl := range d.Blockages {
		fill := "#bbbbbb"
		if bl.Layer == tech.M3 {
			fill = "#999999"
		}
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.8"/>`+"\n",
			bl.Shape.X0*cs, flipY(bl.Shape.Y1), bl.Shape.Width()*cs, bl.Shape.Height()*cs, fill)
	}

	// Reserved intervals (translucent bands under the metal).
	if opts.ShowIntervals {
		for _, s := range seeds {
			// Emit intervals in sorted ID order so the SVG bytes are
			// identical run to run.
			drawn := map[int]bool{}
			var ivIDs []int
			for _, ivID := range s.ByPin {
				if drawn[ivID] {
					continue
				}
				drawn[ivID] = true
				ivIDs = append(ivIDs, ivID)
			}
			sort.Ints(ivIDs)
			for _, ivID := range ivIDs {
				iv := &s.Set.Intervals[ivID]
				fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.15"/>`+"\n",
					iv.Span.Lo*cs, flipY(iv.Track), iv.Span.Len()*cs, cs, netColor(iv.NetID))
			}
		}
	}

	// Pins.
	for i := range d.Pins {
		p := &d.Pins[i]
		fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="%s" stroke="#333333" stroke-width="0.5"/>`+"\n",
			p.Shape.X0*cs, flipY(p.Shape.Y1), p.Shape.Width()*cs, p.Shape.Height()*cs, netColor(p.NetID))
	}

	// Routes: wires as thick lines, vias as circles.
	if res != nil && g != nil {
		for netID, nr := range res.Routes {
			if nr == nil || !nr.Routed {
				continue
			}
			color := netColor(netID)
			for _, e := range nr.Edges {
				x1, y1, z1 := g.Coords(e.From)
				x2, y2, z2 := g.Coords(e.To)
				cx1, cy1 := x1*cs+cs/2, flipY(y1)+cs/2
				cx2, cy2 := x2*cs+cs/2, flipY(y2)+cs/2
				if z1 != z2 {
					fmt.Fprintf(&b, `<circle cx="%d" cy="%d" r="%d" fill="%s" stroke="#222222" stroke-width="0.5"/>`+"\n",
						cx1, cy1, cs/3, color)
					continue
				}
				dash := ""
				if z1 == tech.M3 {
					dash = ` stroke-dasharray="3,2"`
				}
				fmt.Fprintf(&b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="%d"%s/>`+"\n",
					cx1, cy1, cx2, cy2, color, cs/3, dash)
			}
		}
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// ASCII renders one panel's M2 occupancy as text: pins as '*', routed M2
// metal as the net's letter, blockages as '#'.
func ASCII(w io.Writer, d *design.Design, g *grid.Graph, res *router.Result, panel int) error {
	lo, hi := d.Tech.PanelTracks(panel)
	if hi >= d.Height {
		hi = d.Height - 1
	}
	if lo > hi || lo < 0 {
		return fmt.Errorf("render: panel %d out of range", panel)
	}
	rows := make([][]byte, hi-lo+1)
	for i := range rows {
		rows[i] = []byte(strings.Repeat(".", d.Width))
	}
	set := func(x, y int, ch byte) {
		if y >= lo && y <= hi && x >= 0 && x < d.Width {
			rows[y-lo][x] = ch
		}
	}
	for _, bl := range d.Blockages {
		if bl.Layer != tech.M2 {
			continue
		}
		for y := bl.Shape.Y0; y <= bl.Shape.Y1; y++ {
			for x := bl.Shape.X0; x <= bl.Shape.X1; x++ {
				set(x, y, '#')
			}
		}
	}
	if res != nil && g != nil {
		for netID, nr := range res.Routes {
			if nr == nil || !nr.Routed {
				continue
			}
			letter := byte('a' + netID%26)
			for _, id := range nr.Nodes {
				x, y, z := g.Coords(id)
				if z == tech.M2 {
					set(x, y, letter)
				}
			}
		}
	}
	for i := range d.Pins {
		sh := d.Pins[i].Shape
		for y := sh.Y0; y <= sh.Y1; y++ {
			for x := sh.X0; x <= sh.X1; x++ {
				set(x, y, '*')
			}
		}
	}
	for y := hi; y >= lo; y-- {
		if _, err := fmt.Fprintf(w, "t%-3d %s\n", y, rows[y-lo]); err != nil {
			return err
		}
	}
	return nil
}
