// Package tech defines the technology description used by the pin access
// optimizer and the unidirectional router: routing layers with preferred
// directions, track organization, SADP-motivated line-end rules, and the
// grid cost parameters from the paper's experimental setup (DAC'17 §5).
package tech

import "fmt"

// Dir is the preferred routing direction of a layer.
type Dir int

const (
	// DirNone marks a non-routing layer (M1 carries pins only).
	DirNone Dir = iota
	// DirHorizontal marks a layer whose wires run along x.
	DirHorizontal
	// DirVertical marks a layer whose wires run along y.
	DirVertical
)

func (d Dir) String() string {
	switch d {
	case DirHorizontal:
		return "horizontal"
	case DirVertical:
		return "vertical"
	default:
		return "none"
	}
}

// Layer indices for the three-metal stack used throughout the
// reproduction. Vias V1 (M1-M2) and V2 (M2-M3) connect adjacent layers.
const (
	M1 = 0
	M2 = 1
	M3 = 2

	// NumLayers is the size of the metal stack.
	NumLayers = 3
)

// Layer describes a single routing layer.
type Layer struct {
	Name  string
	Index int
	Dir   Dir
}

// Technology bundles every technology-dependent parameter. The zero value
// is not usable; construct with Default or fill every field.
type Technology struct {
	// Layers is the metal stack, indexed by layer constants M1..M3.
	Layers [NumLayers]Layer

	// TracksPerPanel is the number of M2 routing tracks per standard cell
	// row. The paper uses a 10-track panel ("one standard cell row (10 x
	// M2 tracks) is one routing panel").
	TracksPerPanel int

	// BaseCost is the grid cost of using one metal grid edge (paper: 1).
	BaseCost int

	// ViaCost is the grid cost of a via grid (paper: base cost 1).
	ViaCost int

	// ForbiddenViaCost is the extra cost assigned to via grids that would
	// violate design rules (paper: 10). The router uses it to steer away
	// from rule-violating via positions instead of hard-blocking them.
	ForbiddenViaCost int

	// LineEndExtension is the number of grid units a wire line-end is
	// extended to guarantee patterning-friendly cut masks.
	LineEndExtension int

	// MinLineLen is the minimum length (grid points) of a metal strip on
	// a unidirectional layer; shorter strips are unprintable under SADP.
	MinLineLen int

	// LineEndSpacing is the minimum number of free grid points between
	// two line-ends on the same track (cut mask spacing rule).
	LineEndSpacing int

	// Patterning selects and tunes the multi-patterning rule engine
	// that interprets the line-end fields above (see RuleEngine). The
	// zero value is the SADP engine with default parameters.
	Patterning Patterning

	// LRIterationBound is the Lagrangian relaxation iteration upper
	// bound UB (paper: 200).
	LRIterationBound int

	// LRAlpha is the subgradient step exponent alpha in t_k = L_m / k^alpha
	// (paper: 0.95).
	LRAlpha float64
}

// Default returns the technology configuration matching the paper's
// experimental setup in §5.
func Default() *Technology {
	return &Technology{
		Layers: [NumLayers]Layer{
			{Name: "M1", Index: M1, Dir: DirNone},
			{Name: "M2", Index: M2, Dir: DirHorizontal},
			{Name: "M3", Index: M3, Dir: DirVertical},
		},
		TracksPerPanel:   10,
		BaseCost:         1,
		ViaCost:          1,
		ForbiddenViaCost: 10,
		LineEndExtension: 1,
		MinLineLen:       2,
		LineEndSpacing:   1,
		LRIterationBound: 200,
		LRAlpha:          0.95,
	}
}

// Validate checks the technology for internal consistency.
func (t *Technology) Validate() error {
	if t.TracksPerPanel <= 0 {
		return fmt.Errorf("tech: TracksPerPanel must be positive, got %d", t.TracksPerPanel)
	}
	if t.BaseCost <= 0 {
		return fmt.Errorf("tech: BaseCost must be positive, got %d", t.BaseCost)
	}
	if t.ViaCost <= 0 {
		return fmt.Errorf("tech: ViaCost must be positive, got %d", t.ViaCost)
	}
	if t.ForbiddenViaCost < t.ViaCost {
		return fmt.Errorf("tech: ForbiddenViaCost (%d) must be >= ViaCost (%d)",
			t.ForbiddenViaCost, t.ViaCost)
	}
	if t.LineEndExtension < 0 {
		return fmt.Errorf("tech: LineEndExtension must be non-negative, got %d", t.LineEndExtension)
	}
	if t.MinLineLen < 1 {
		return fmt.Errorf("tech: MinLineLen must be >= 1, got %d", t.MinLineLen)
	}
	if t.LineEndSpacing < 0 {
		return fmt.Errorf("tech: LineEndSpacing must be non-negative, got %d", t.LineEndSpacing)
	}
	if err := t.Patterning.Validate(); err != nil {
		return err
	}
	if t.LRIterationBound <= 0 {
		return fmt.Errorf("tech: LRIterationBound must be positive, got %d", t.LRIterationBound)
	}
	if t.LRAlpha <= 0 || t.LRAlpha > 1 {
		return fmt.Errorf("tech: LRAlpha must be in (0,1], got %g", t.LRAlpha)
	}
	for i, l := range t.Layers {
		if l.Index != i {
			return fmt.Errorf("tech: layer %q has index %d, want %d", l.Name, l.Index, i)
		}
	}
	if t.Layers[M1].Dir != DirNone {
		return fmt.Errorf("tech: M1 must be a non-routing layer")
	}
	if t.Layers[M2].Dir == DirNone || t.Layers[M3].Dir == DirNone {
		return fmt.Errorf("tech: M2 and M3 must be routing layers")
	}
	if t.Layers[M2].Dir == t.Layers[M3].Dir {
		return fmt.Errorf("tech: M2 and M3 must route in perpendicular directions")
	}
	return nil
}

// LayerDir returns the preferred direction of layer z, or DirNone for
// out-of-range layers.
func (t *Technology) LayerDir(z int) Dir {
	if z < 0 || z >= NumLayers {
		return DirNone
	}
	return t.Layers[z].Dir
}

// PanelOfTrack returns the panel index containing global M2 track y.
func (t *Technology) PanelOfTrack(y int) int {
	if y < 0 {
		return -1
	}
	return y / t.TracksPerPanel
}

// PanelTracks returns the inclusive global track range [lo, hi] of panel p.
func (t *Technology) PanelTracks(p int) (lo, hi int) {
	lo = p * t.TracksPerPanel
	return lo, lo + t.TracksPerPanel - 1
}
