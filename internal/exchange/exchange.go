// Package exchange resolves content-addressed blocks locally, then from
// peer daemons — the middle layer of the artifact-exchange stack
// (DESIGN.md §4g): internal/blockstore stores opaque blocks, this
// package finds them, and internal/cache decodes them into typed
// design/panel/route artifacts.
//
// The exchange is strictly observational: it never causes work on a
// peer, it only copies blocks a peer already computed. A peer that is
// missing a block answers 404 and the requesting node recomputes
// locally, so a cluster degrades to N independent daemons, never to a
// partial failure.
package exchange

import (
	"context"
	"sync"

	"cpr/internal/blockstore"
	"cpr/internal/telemetry"
)

// ErrNotFound reports a key that neither the local store nor any peer
// could supply. It aliases blockstore.ErrNotFound so errors.Is works
// across the whole stack.
var ErrNotFound = blockstore.ErrNotFound

// BlockPath is the URL prefix of the block endpoint every cprd node
// serves; fetchers append the hex key.
const BlockPath = "/v1/blocks/"

// Fetcher resolves a key from remote peers. Implementations return
// an error satisfying errors.Is(err, ErrNotFound) when no peer has the
// block, and any other error for transport-level failure.
type Fetcher interface {
	Fetch(ctx context.Context, key string) ([]byte, error)
}

// Stats counts block resolutions by outcome.
type Stats struct {
	// Local counts keys answered from the local blockstore.
	Local int64 `json:"local"`
	// Peer counts keys fetched from a peer (and written back locally).
	Peer int64 `json:"peer"`
	// Miss counts keys nobody had; the caller recomputes.
	Miss int64 `json:"miss"`
	// PeerErrors counts peer fetches that failed with a transport error
	// (timeouts, refused connections) rather than a clean 404.
	PeerErrors int64 `json:"peer_errors"`
}

// flight is one in-progress peer fetch shared by concurrent callers.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// Service answers "give me the block for this key" by checking the
// local store first and falling back to peers. Peer-fetched blocks are
// written through to the local store so each block crosses the network
// once per node. Concurrent requests for the same missing key are
// deduplicated into a single peer fetch.
//
// A Service with a nil Fetcher is a valid single-node configuration:
// it resolves locally or reports a miss.
type Service struct {
	store   blockstore.Store
	fetcher Fetcher

	mu      sync.Mutex
	flights map[string]*flight
	stats   Stats

	ctrLocal, ctrPeer, ctrMiss *telemetry.Counter
}

// New builds a Service over store. fetcher may be nil (no peers); reg
// may be nil (no telemetry). With a registry, resolutions are counted
// on cpr_blocks_total{source=local|peer|miss}.
func New(store blockstore.Store, fetcher Fetcher, reg *telemetry.Registry) *Service {
	const name = "cpr_blocks_total"
	const help = "Content-addressed block resolutions by source."
	return &Service{
		store:    store,
		fetcher:  fetcher,
		flights:  make(map[string]*flight),
		ctrLocal: reg.Counter(name, help, telemetry.L("source", "local")),
		ctrPeer:  reg.Counter(name, help, telemetry.L("source", "peer")),
		ctrMiss:  reg.Counter(name, help, telemetry.L("source", "miss")),
	}
}

// Store exposes the underlying blockstore (the HTTP block endpoint
// serves from it directly — peers get local blocks only, so a cluster
// cannot fan a single miss out into a fetch storm).
func (s *Service) Store() blockstore.Store { return s.store }

// Put stores a block locally, making it servable to peers. Callers
// (the cache layer) must only put keyed artifacts; keyless eco-fast
// artifacts never reach a Put.
func (s *Service) Put(key string, data []byte) error {
	return s.store.Put(key, data)
}

// Has reports local presence only; it never asks peers.
func (s *Service) Has(key string) (bool, error) {
	return s.store.Has(key)
}

// GetBlock resolves key: local store, then peers (one fetch per key at
// a time; concurrent callers share the result). Peer-fetched blocks
// are written back to the local store before returning. A miss from
// everyone returns ErrNotFound.
func (s *Service) GetBlock(ctx context.Context, key string) ([]byte, error) {
	data, err := s.store.Get(key)
	switch {
	case err == nil:
		s.count(&s.stats.Local, s.ctrLocal)
		return data, nil
	case err != blockstore.ErrNotFound:
		return nil, err
	}
	if s.fetcher == nil {
		s.count(&s.stats.Miss, s.ctrMiss)
		return nil, ErrNotFound
	}

	s.mu.Lock()
	if f, ok := s.flights[key]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.data, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	s.flights[key] = f
	s.mu.Unlock()

	f.data, f.err = s.fetchAndStore(ctx, key)
	s.mu.Lock()
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
	return f.data, f.err
}

// fetchAndStore runs the actual peer fetch for one deduplicated key,
// under an "exchange:fetch" span with the outcome recorded as a
// block_fetch event on the job's event stream.
func (s *Service) fetchAndStore(ctx context.Context, key string) ([]byte, error) {
	ctx, sp := telemetry.StartSpan(ctx, "exchange:fetch")
	defer sp.End()
	sp.SetAttr("key", key)
	em := telemetry.EmitterFrom(ctx)
	data, err := s.fetcher.Fetch(ctx, key)
	if err != nil {
		if err != blockstore.ErrNotFound {
			s.mu.Lock()
			s.stats.PeerErrors++
			s.mu.Unlock()
		}
		s.count(&s.stats.Miss, s.ctrMiss)
		sp.SetAttr("source", "miss")
		em.Emit("block_fetch", map[string]any{"key": key, "source": "miss"})
		return nil, ErrNotFound
	}
	// Write through so this node serves the block from now on. A failing
	// local store only loses the write-through: the fetched bytes are
	// still returned to the caller.
	_ = s.store.Put(key, data)
	s.count(&s.stats.Peer, s.ctrPeer)
	sp.SetAttr("source", "peer")
	em.Emit("block_fetch", map[string]any{"key": key, "source": "peer"})
	return data, nil
}

// PeerHealth reports per-peer fetch health when the configured fetcher
// tracks it (the HTTP fetcher does); nil otherwise.
func (s *Service) PeerHealth() []PeerHealth {
	h, ok := s.fetcher.(interface{ Health() []PeerHealth })
	if !ok {
		return nil
	}
	return h.Health()
}

// count bumps one stats field and its telemetry counter.
func (s *Service) count(field *int64, ctr *telemetry.Counter) {
	s.mu.Lock()
	*field++
	s.mu.Unlock()
	ctr.Inc()
}

// Stats snapshots the resolution counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}
