package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

func parse(t *testing.T, src string) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestParseSuppressions(t *testing.T) {
	fset, f := parse(t, `package p

func F() {
	a := 1 //cprlint:maporder same-line with a reason
	//cprlint:ordered own-line reason
	b := 2
	//cprlint:nondeterm
	_ = a + b
}
`)
	sups := ParseSuppressions(fset, f)
	if len(sups) != 3 {
		t.Fatalf("got %d suppressions, want 3", len(sups))
	}
	if sups[0].Name != "maporder" || sups[0].Reason != "same-line with a reason" || sups[0].OwnLine {
		t.Errorf("first suppression parsed wrong: %+v", sups[0])
	}
	if sups[1].Name != "ordered" || !sups[1].OwnLine {
		t.Errorf("second suppression parsed wrong: %+v", sups[1])
	}
	if sups[2].Name != "nondeterm" || sups[2].Reason != "" {
		t.Errorf("third suppression parsed wrong: %+v", sups[2])
	}
}

func TestFilterScope(t *testing.T) {
	fset, f := parse(t, `package p

func F() {
	a := 1 //cprlint:maporder justified here
	b := 2
	//cprlint:maporder own-line covers the next line
	c := 3
	d := 4
}
`)
	a := &Analyzer{Name: "maporder", SuppressAliases: []string{"ordered"}}
	mk := func(line int) Diagnostic {
		// Fabricate a position on the wanted line via the file's line table.
		tf := fset.File(f.Pos())
		return Diagnostic{Pos: tf.LineStart(line), Message: "m"}
	}
	diags := []Diagnostic{mk(4), mk(5), mk(7), mk(8)}
	kept := Filter(fset, []*ast.File{f}, a, diags)
	if len(kept) != 2 {
		t.Fatalf("kept %d diagnostics, want 2 (lines 5 and 8)", len(kept))
	}
	for _, d := range kept {
		line := fset.Position(d.Pos).Line
		if line != 5 && line != 8 {
			t.Errorf("unexpectedly kept line %d", line)
		}
	}
}

func TestFilterAlias(t *testing.T) {
	fset, f := parse(t, `package p

func F() {
	a := 1 //cprlint:ordered alias must hit maporder
	_ = a
}
`)
	a := &Analyzer{Name: "maporder", SuppressAliases: []string{"ordered"}}
	tf := fset.File(f.Pos())
	kept := Filter(fset, []*ast.File{f}, a, []Diagnostic{{Pos: tf.LineStart(4), Message: "m"}})
	if len(kept) != 0 {
		t.Fatalf("alias suppression did not apply: %d kept", len(kept))
	}
}

func TestFilterRefusesOtherAnalyzer(t *testing.T) {
	fset, f := parse(t, `package p

func F() {
	a := 1 //cprlint:nondeterm wrong analyzer name
	_ = a
}
`)
	a := &Analyzer{Name: "maporder"}
	tf := fset.File(f.Pos())
	kept := Filter(fset, []*ast.File{f}, a, []Diagnostic{{Pos: tf.LineStart(4), Message: "m"}})
	if len(kept) != 1 {
		t.Fatalf("suppression for a different analyzer must not apply")
	}
}

func TestFilterRefusesEmptyReason(t *testing.T) {
	fset, f := parse(t, `package p

func F() {
	a := 1 //cprlint:maporder
	_ = a
}
`)
	a := &Analyzer{Name: "maporder"}
	tf := fset.File(f.Pos())
	kept := Filter(fset, []*ast.File{f}, a, []Diagnostic{{Pos: tf.LineStart(4), Message: "m"}})
	if len(kept) != 1 {
		t.Fatalf("reason-less suppression must not silence diagnostics")
	}
}

func TestCheckSuppressions(t *testing.T) {
	fset, f := parse(t, `package p

func F() {
	//cprlint:maporder fine, has a reason
	//cprlint:maporder
	//cprlint:odered typo'd analyzer name
	//cprlint:
}
`)
	known := map[string]bool{"maporder": true, "ordered": true}
	diags := CheckSuppressions(fset, []*ast.File{f}, known)
	if len(diags) != 3 {
		t.Fatalf("got %d findings, want 3: %v", len(diags), diags)
	}
	wants := []string{"has no reason text", "unknown analyzer", "malformed suppression"}
	for _, w := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, w) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentioning %q in %v", w, diags)
		}
	}
}
