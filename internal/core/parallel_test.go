package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"cpr/internal/design"
	"cpr/internal/synth"
)

// determinismSpecs are the seeded designs the worker-count determinism
// tests run over. The sizes are chosen so the per-track and per-conflict-
// set parallel branches actually engage (tracks and conflict sets above
// parallel.Threshold) without making the test slow.
var determinismSpecs = []synth.Spec{
	{Name: "det-a", Nets: 220, Width: 220, Height: 80, Seed: 101},
	{Name: "det-b", Nets: 160, Width: 150, Height: 60, Seed: 202, BlockageFraction: 0.04},
	{Name: "det-c", Nets: 120, Width: 180, Height: 40, Seed: 303, NoPowerRails: true},
}

var determinismWorkers = []int{1, 2, 8}

func mustGenerate(t *testing.T, spec synth.Spec) *design.Design {
	t.Helper()
	d, err := synth.Generate(spec)
	if err != nil {
		t.Fatalf("generate %s: %v", spec.Name, err)
	}
	return d
}

// seedFingerprint serializes the selected-interval set of an optimization
// run into a canonical byte string: panel by panel, interval by interval,
// with net, track, and span. Byte equality of fingerprints is the
// determinism contract's "identical selected-interval sets".
func seedFingerprint(seeds []PanelSeed) string {
	var b strings.Builder
	for pi, seed := range seeds {
		fmt.Fprintf(&b, "panel %d\n", pi)
		for i, sel := range seed.Solution.Selected {
			if !sel {
				continue
			}
			iv := &seed.Set.Intervals[i]
			fmt.Fprintf(&b, "  iv %d net %d track %d span [%d,%d] pins %v\n",
				iv.ID, iv.NetID, iv.Track, iv.Span.Lo, iv.Span.Hi, iv.PinIDs)
		}
	}
	return b.String()
}

// reportFingerprint canonicalizes a PinOptReport, dropping the wall-clock
// Elapsed field which legitimately varies run to run.
func reportFingerprint(rep *PinOptReport) PinOptReport {
	canon := *rep
	canon.Elapsed = 0
	return canon
}

// TestOptimizePinAccessDeterministicAcrossWorkers is the core determinism
// guarantee: pin access optimization must produce byte-identical reports
// and selected-interval sets for every worker count.
func TestOptimizePinAccessDeterministicAcrossWorkers(t *testing.T) {
	for _, spec := range determinismSpecs {
		t.Run(spec.Name, func(t *testing.T) {
			var baseRep PinOptReport
			var baseFP string
			for wi, workers := range determinismWorkers {
				d := mustGenerate(t, spec)
				rep, seeds, err := OptimizePinAccess(d, Options{Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				canon := reportFingerprint(rep)
				fp := seedFingerprint(seeds)
				if wi == 0 {
					baseRep, baseFP = canon, fp
					continue
				}
				if !reflect.DeepEqual(canon, baseRep) {
					t.Errorf("workers=%d: report differs from workers=%d:\n got %+v\nwant %+v",
						workers, determinismWorkers[0], canon, baseRep)
				}
				if fp != baseFP {
					t.Errorf("workers=%d: selected-interval set differs from workers=%d",
						workers, determinismWorkers[0])
				}
			}
		})
	}
}

// TestRunDeterministicAcrossWorkers runs the full CPR flow (optimization
// plus routing) and asserts the final Metrics are identical for every
// worker count once the wall-clock CPUSeconds field is zeroed.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow determinism sweep skipped in short mode")
	}
	for _, spec := range determinismSpecs {
		t.Run(spec.Name, func(t *testing.T) {
			type canonMetrics struct {
				m       any
				routed  int
				pinOpt  PinOptReport
				hasSeed bool
			}
			var base canonMetrics
			for wi, workers := range determinismWorkers {
				d := mustGenerate(t, spec)
				res, err := Run(d, Options{Mode: ModeCPR, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				m := res.Metrics.ZeroTimes()
				cur := canonMetrics{m: m, routed: res.Metrics.RoutedNets}
				if res.PinOpt != nil {
					cur.pinOpt = reportFingerprint(res.PinOpt)
					cur.hasSeed = true
				}
				if wi == 0 {
					base = cur
					continue
				}
				if !reflect.DeepEqual(cur, base) {
					t.Errorf("workers=%d: run result differs from workers=%d:\n got %+v\nwant %+v",
						workers, determinismWorkers[0], cur, base)
				}
			}
		})
	}
}
