// Package conflict implements linear conflict set detection for pin access
// intervals (paper §3.2).
//
// A conflict set is a maximal group of intervals on one routing track whose
// spans share a common grid point (a maximal clique of the interval overlap
// graph). For n intervals the sweep emits at most n maximal sets, which
// keeps the ILP constraint count linear instead of quadratic
// (one sum-<=-1 row per set instead of one row per overlapping pair).
package conflict

import (
	"sort"

	"cpr/internal/geom"
	"cpr/internal/parallel"
	"cpr/internal/pinaccess"
)

// Set is one maximal conflict set on a track.
type Set struct {
	// Track is the M2 track all members lie on.
	Track int
	// IDs are the member interval IDs, ascending.
	IDs []int
	// Common is the intersection of all member spans. Its length is the
	// L_m used for the Lagrangian subgradient step size.
	Common geom.Interval
}

// Detect sweeps every track and returns all maximal conflict sets with at
// least two members, ordered by track then left edge of the common span.
func Detect(intervals []pinaccess.Interval) []Set {
	return DetectWorkers(intervals, 1)
}

// DetectWorkers is Detect with the per-track sweeps sharded across up to
// workers goroutines (<= 1 is sequential). Tracks are independent, each
// sweep writes to its own slot, and slots are concatenated in ascending
// track order, so the result is byte-identical for every worker count.
func DetectWorkers(intervals []pinaccess.Interval, workers int) []Set {
	byTrack := make(map[int][]int)
	for i := range intervals {
		byTrack[intervals[i].Track] = append(byTrack[intervals[i].Track], i)
	}
	tracks := make([]int, 0, len(byTrack))
	for t := range byTrack {
		tracks = append(tracks, t)
	}
	sort.Ints(tracks)

	if workers > 1 && len(tracks) >= parallel.Threshold {
		shards := make([][]Set, len(tracks))
		parallel.ForEach(workers, len(tracks), func(ti int) {
			shards[ti] = detectTrack(intervals, byTrack[tracks[ti]], tracks[ti])
		})
		var out []Set
		for _, shard := range shards {
			out = append(out, shard...)
		}
		return out
	}
	var out []Set
	for _, t := range tracks {
		out = append(out, detectTrack(intervals, byTrack[t], t)...)
	}
	return out
}

// detectTrack runs the left-to-right sweep on one track's intervals.
func detectTrack(intervals []pinaccess.Interval, ids []int, track int) []Set {
	sorted := append([]int(nil), ids...)
	sort.Slice(sorted, func(a, b int) bool {
		sa, sb := intervals[sorted[a]].Span, intervals[sorted[b]].Span
		if sa.Lo != sb.Lo {
			return sa.Lo < sb.Lo
		}
		if sa.Hi != sb.Hi {
			return sa.Hi < sb.Hi
		}
		return sorted[a] < sorted[b]
	})

	var out []Set
	var active []int
	added := false

	emit := func() {
		if !added || len(active) < 2 {
			return
		}
		members := append([]int(nil), active...)
		sort.Ints(members)
		common := intervals[members[0]].Span
		for _, id := range members[1:] {
			common = common.Intersect(intervals[id].Span)
		}
		out = append(out, Set{Track: track, IDs: members, Common: common})
	}

	for _, id := range sorted {
		lo := intervals[id].Span.Lo
		needRemoval := false
		for _, a := range active {
			if intervals[a].Span.Hi < lo {
				needRemoval = true
				break
			}
		}
		if needRemoval {
			emit()
			added = false
			keep := active[:0]
			for _, a := range active {
				if intervals[a].Span.Hi >= lo {
					keep = append(keep, a)
				}
			}
			active = keep
		}
		active = append(active, id)
		added = true
	}
	emit()
	return out
}

// Matrix is the conflict structure in the form consumed by the assignment
// solvers: for every interval, the conflict sets it belongs to.
type Matrix struct {
	Sets []Set
	// MemberOf[i] lists indices into Sets for interval i.
	MemberOf [][]int
}

// BuildMatrix runs Detect and indexes membership for numIntervals
// intervals.
func BuildMatrix(intervals []pinaccess.Interval) *Matrix {
	return BuildMatrixWorkers(intervals, 1)
}

// BuildMatrixWorkers is BuildMatrix with the sweep sharded across up to
// workers goroutines. The membership index is derived serially from the
// ordered set list, so it inherits the sweep's determinism.
func BuildMatrixWorkers(intervals []pinaccess.Interval, workers int) *Matrix {
	sets := DetectWorkers(intervals, workers)
	m := &Matrix{Sets: sets, MemberOf: make([][]int, len(intervals))}
	for si := range sets {
		for _, id := range sets[si].IDs {
			m.MemberOf[id] = append(m.MemberOf[id], si)
		}
	}
	return m
}

// Violations counts the conflict sets with more than one selected interval.
// selected[i] reports whether interval i is chosen.
func (m *Matrix) Violations(selected []bool) int {
	vio := 0
	for si := range m.Sets {
		count := 0
		for _, id := range m.Sets[si].IDs {
			if selected[id] {
				count++
				if count > 1 {
					vio++
					break
				}
			}
		}
	}
	return vio
}
