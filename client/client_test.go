package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"cpr/internal/httpapi"
)

// stubDaemon records the last submit body and answers with a canned job.
func stubDaemon(t *testing.T) (*Client, *httpapi.SubmitRequest) {
	t.Helper()
	var last httpapi.SubmitRequest
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		last = httpapi.SubmitRequest{}
		if err := json.NewDecoder(r.Body).Decode(&last); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		_ = json.NewEncoder(w).Encode(httpapi.Job{ID: "j1", State: "done", BaseJob: last.BaseJob})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return New(ts.URL), &last
}

func TestSubmitIncrementalSendsBaseJob(t *testing.T) {
	c, last := stubDaemon(t)
	job, err := c.SubmitIncremental(context.Background(), "design-text", "base-42", nil)
	if err != nil {
		t.Fatalf("SubmitIncremental: %v", err)
	}
	if job.ID != "j1" || job.BaseJob != "base-42" {
		t.Fatalf("job = %+v", job)
	}
	if last.Design != "design-text" || last.BaseJob != "base-42" {
		t.Fatalf("wire request = %+v, want design + base_job", last)
	}
	if last.Options != nil {
		t.Fatalf("wire options = %+v, want absent", last.Options)
	}
}

func TestSubmitIncrementalModeSetsRerunMode(t *testing.T) {
	c, last := stubDaemon(t)
	ctx := context.Background()

	if _, err := c.SubmitIncrementalMode(ctx, "d", "base-1", RerunEcoFast, nil); err != nil {
		t.Fatalf("SubmitIncrementalMode: %v", err)
	}
	if last.Options == nil || last.Options.RerunMode != "eco-fast" {
		t.Fatalf("wire options = %+v, want rerun_mode eco-fast", last.Options)
	}

	// An explicit mode overrides the one in opts — without mutating the
	// caller's options value.
	opts := &Options{Workers: 3, RerunMode: RerunEcoFast}
	if _, err := c.SubmitIncrementalMode(ctx, "d", "base-1", RerunStrict, opts); err != nil {
		t.Fatalf("SubmitIncrementalMode: %v", err)
	}
	if last.Options == nil || last.Options.RerunMode != "strict" || last.Options.Workers != 3 {
		t.Fatalf("wire options = %+v, want strict with workers preserved", last.Options)
	}
	if opts.RerunMode != RerunEcoFast {
		t.Fatalf("caller's opts mutated: %+v", opts)
	}
}

func TestRerunModeConstantsMatchWire(t *testing.T) {
	// The constants must stay in sync with what the daemon parses; the
	// wire strings are part of the API contract.
	if RerunStrict != "strict" || RerunEcoFast != "eco-fast" {
		t.Fatalf("rerun mode constants drifted: %q %q", RerunStrict, RerunEcoFast)
	}
}
