// Package blockstore is persistent storage for opaque content-addressed
// blocks, the bottom layer of the cprd artifact-exchange stack (kubo's
// blockstore / blockservice / exchange layering, DESIGN.md §4g):
//
//	blockstore  durable Put/Get/Has/Delete over key -> bytes (this package)
//	exchange    resolves a missing key locally, then from peer daemons
//	cache       typed design/panel/route levels decoding blocks on demand
//
// Keys are the hex SHA-256 content addresses minted by internal/cache
// (cache.Key / cache.PanelKey / cache.RouteKey). They address the
// *inputs* of an artifact, not its bytes: the pipeline's determinism
// contract makes equal keys imply byte-identical artifacts, which is
// what lets any node of a cluster serve any other's blocks verbatim.
//
// Two implementations: Mem (bounded in-memory, for single-node daemons
// and tests) and Disk (sharded directories, atomic writes, size-bounded
// GC), both safe for concurrent use. Both support pinning: a pinned key
// is never garbage-collected, which protects artifacts a running job is
// splicing from ("in-flight" keys) and anything the operator wants kept
// hot across GC pressure.
package blockstore

import (
	"errors"
	"fmt"
)

// ErrNotFound reports a key with no stored block. The exchange layer
// maps it to a peer fetch; the HTTP API maps it to 404.
var ErrNotFound = errors.New("blockstore: block not found")

// KeyLen is the length of a valid key: a hex-encoded SHA-256.
const KeyLen = 64

// ValidKey reports whether key is a well-formed content address
// (lowercase hex SHA-256). The disk store derives file paths from keys,
// so malformed keys are rejected before they can escape the store root.
func ValidKey(key string) bool {
	if len(key) != KeyLen {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// checkKey returns a descriptive error for malformed keys.
func checkKey(key string) error {
	if !ValidKey(key) {
		return fmt.Errorf("blockstore: malformed key %q (want %d hex chars)", key, KeyLen)
	}
	return nil
}

// Stats is a point-in-time snapshot of one store's counters.
type Stats struct {
	// Blocks and Bytes are the live block count and payload size.
	Blocks int   `json:"blocks"`
	Bytes  int64 `json:"bytes"`
	// Hits and Misses count Get outcomes.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Puts counts stored blocks (including overwrites).
	Puts int64 `json:"puts"`
	// Evictions counts blocks collected by the size-bounded GC.
	Evictions int64 `json:"evictions"`
	// Pinned is the number of currently pinned keys (never collected).
	Pinned int `json:"pinned"`
}

// Store is the common surface of the block stores. All methods are safe
// for concurrent use. Blocks are immutable: callers must not modify the
// slice returned by Get, and Put copies its input.
type Store interface {
	// Put stores a block under key, replacing any existing block.
	Put(key string, data []byte) error
	// Get returns the block stored under key, or ErrNotFound.
	Get(key string) ([]byte, error)
	// Has reports whether a block is stored under key, without touching
	// the hit/miss counters or the GC recency order.
	Has(key string) (bool, error)
	// Delete removes the block under key; absent keys are a no-op.
	Delete(key string) error
	// Pin marks a key uncollectable until a matching Unpin. Pins are
	// reference-counted, so concurrent jobs can pin the same key.
	// Pinning a key with no stored block is allowed (it protects a block
	// that is about to be written).
	Pin(key string)
	// Unpin releases one reference of a pinned key.
	Unpin(key string)
	// Stats snapshots the counters.
	Stats() Stats
}

// pinSet is a reference-counted pin table shared by the implementations;
// callers synchronize access.
type pinSet map[string]int

func (p pinSet) pin(key string) { p[key]++ }
func (p pinSet) pinned(key string) bool {
	return p[key] > 0
}
func (p pinSet) unpin(key string) {
	if n := p[key]; n > 1 {
		p[key] = n - 1
	} else {
		delete(p, key)
	}
}
