// Package keypurity machine-checks the cache-key contract the
// content-addressed pipeline depends on (DESIGN.md §4h): every
// options-struct field a stage computation reads must either be covered
// by the fingerprint encoder that keys the stage's cache entries, or be
// explicitly exempted with a documented reason; and stage computations
// must not read the wall clock, the environment, random sources, or
// mutated package state at all.
//
// The contract is declared in source with marker comments:
//
//	//keypurity:entry <scope>     a function whose result is cached
//	                              under a fingerprint of that scope
//	//keypurity:encoder <scope>   the function computing that scope's
//	                              fingerprint
//
// plus funcsum's //keypurity:options and //keypurity:exempt markers on
// the option structs themselves. Scopes tie entries to encoders across
// packages ("stage" for the §4d/§4f panel and route keys, "design" for
// the §4c design key). Entries may live at or below the encoder's
// package in the import graph; the check runs where the encoder is
// declared — by then every entry's funcsum summary is an importable
// fact — and coverage violations are reported at the encoder, the
// function that must change. The check fails closed: a new Options
// field read by stage code is a finding until it is either fingerprinted
// or exempted with a reason.
package keypurity

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"cpr/internal/analysis"
	"cpr/internal/analysis/funcsum"
)

// Analyzer enforces fingerprint completeness and stage purity.
var Analyzer = &analysis.Analyzer{
	Name:      "keypurity",
	Doc:       "verifies cache-key completeness: functions marked //keypurity:entry must read only options fields covered by their scope's //keypurity:encoder fingerprint (or fields exempted with //keypurity:exempt), and must not read clocks, env, random sources, or mutable package state",
	Requires:  []*analysis.Analyzer{funcsum.Analyzer},
	FactTypes: []analysis.Fact{(*Encoders)(nil), (*Entries)(nil)},
}

func init() { Analyzer.Run = run }

// Encoders is the package fact recording which option-field keys this
// package's fingerprint encoders cover, per scope.
type Encoders struct {
	Scopes map[string][]string `json:"scopes,omitempty"` // scope -> sorted field keys
}

// AFact marks Encoders as a fact.
func (*Encoders) AFact() {}

// Entries is the package fact listing this package's marked entry
// functions, so encoder packages higher in the import graph can check
// them.
type Entries struct {
	Funcs []EntryRef `json:"funcs,omitempty"`
}

// AFact marks Entries as a fact.
func (*Entries) AFact() {}

// EntryRef locates one entry function by fact address.
type EntryRef struct {
	Pkg   string `json:"pkg"`   // defining package path
	Obj   string `json:"obj"`   // analysis.ObjectKey
	Scope string `json:"scope"` // fingerprint scope it is cached under
	Name  string `json:"name"`  // display name (types.Func.FullName)
}

// marked is one locally marked function.
type marked struct {
	decl  *ast.FuncDecl
	fn    *types.Func
	scope string
}

func run(pass *analysis.Pass) error {
	entries, encoders := collectMarked(pass)

	// Publish this package's entries for encoder packages upstream.
	if len(entries) > 0 {
		fact := &Entries{}
		for _, e := range entries {
			fact.Funcs = append(fact.Funcs, EntryRef{
				Pkg:   pass.Pkg.Path(),
				Obj:   analysis.ObjectKey(e.fn),
				Scope: e.scope,
				Name:  e.fn.FullName(),
			})
		}
		pass.ExportPackageFact(fact)
	}

	// Compute and publish local encoder coverage per scope.
	coverage := make(map[string]map[string]bool)
	encoderAt := make(map[string]*marked) // scope -> reporting site (first encoder)
	for i := range encoders {
		enc := &encoders[i]
		cov, ok := coverage[enc.scope]
		if !ok {
			cov = make(map[string]bool)
			coverage[enc.scope] = cov
			encoderAt[enc.scope] = enc
		}
		if sum, ok := funcsum.LookupSummary(pass, enc.fn); ok {
			for key := range sum.OptionReads {
				cov[key] = true
			}
		}
	}
	if len(coverage) > 0 {
		fact := &Encoders{Scopes: make(map[string][]string)}
		for scope, cov := range coverage {
			keys := make([]string, 0, len(cov))
			for k := range cov {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fact.Scopes[scope] = keys
		}
		pass.ExportPackageFact(fact)
	}

	// Purity: entries declared here must not depend on process state.
	for _, e := range entries {
		sum, ok := funcsum.LookupSummary(pass, e.fn)
		if !ok {
			continue
		}
		for _, dep := range []struct {
			what  string
			chain *funcsum.Chain
		}{
			{"the wall clock", sum.Clock},
			{"the process environment", sum.Env},
			{"a random source", sum.Rand},
			{"mutable package state", sum.MutableGlobal},
		} {
			if dep.chain != nil {
				pass.Reportf(e.decl.Name.Pos(),
					"cache entry %s reads %s: %s; cached results must be a pure function of the fingerprinted inputs",
					e.fn.Name(), dep.what, dep.chain.String())
			}
		}
	}

	// Coverage: for each scope encoded here, audit every entry of that
	// scope declared in this package or anywhere below it.
	if len(coverage) == 0 {
		return nil
	}
	imports := transitiveImports(pass.Pkg)
	for _, scope := range sortedScopes(coverage) {
		cov := coverage[scope]
		// Encoders for the same scope may be split across packages.
		for _, imp := range imports {
			var enc Encoders
			if pass.ImportPackageFact(Analyzer, imp, &enc) {
				for _, k := range enc.Scopes[scope] {
					cov[k] = true
				}
			}
		}
		var refs []EntryRef
		for _, e := range entries {
			if e.scope == scope {
				refs = append(refs, EntryRef{Pkg: pass.Pkg.Path(), Obj: analysis.ObjectKey(e.fn), Scope: scope, Name: e.fn.FullName()})
			}
		}
		for _, imp := range imports {
			var ent Entries
			if !pass.ImportPackageFact(Analyzer, imp, &ent) {
				continue
			}
			for _, ref := range ent.Funcs {
				if ref.Scope == scope {
					refs = append(refs, ref)
				}
			}
		}
		sort.Slice(refs, func(i, j int) bool { return refs[i].Name < refs[j].Name })

		site := encoderAt[scope]
		for _, ref := range refs {
			var sum funcsum.Summary
			if !pass.ImportObjectFactByName(funcsum.Analyzer, ref.Pkg, ref.Obj, &sum) {
				continue
			}
			for _, key := range sortedReadKeys(sum.OptionReads) {
				if cov[key] {
					continue
				}
				if reason, exempt := exemption(pass, key); exempt {
					_ = reason
					continue
				}
				pass.Reportf(site.decl.Name.Pos(),
					"fingerprint encoder %s (scope %q) does not cover %s, which %s reads (%s); fingerprint the field or mark it //keypurity:exempt <reason> (see DESIGN.md §4h)",
					site.fn.Name(), scope, key, ref.Name, sum.OptionReads[key].String())
			}
		}
	}
	return nil
}

// collectMarked scans function doc comments for entry/encoder markers.
func collectMarked(pass *analysis.Pass) (entries, encoders []marked) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if scope, ok := markerScope(fd.Doc, "keypurity:entry"); ok {
				entries = append(entries, marked{decl: fd, fn: fn, scope: scope})
			}
			if scope, ok := markerScope(fd.Doc, "keypurity:encoder"); ok {
				encoders = append(encoders, marked{decl: fd, fn: fn, scope: scope})
			}
		}
	}
	return entries, encoders
}

// markerScope extracts "//keypurity:<kind> <scope>" from a doc comment
// via the raw comment list (directive comments are invisible to
// CommentGroup.Text); the scope defaults to "stage".
func markerScope(doc *ast.CommentGroup, marker string) (string, bool) {
	scope, ok := funcsum.MarkerLine(doc, marker)
	if !ok {
		return "", false
	}
	if scope == "" {
		scope = "stage"
	}
	return scope, true
}

// exemption resolves a field key "<pkg>.<Type>.<Field>" against the
// owning struct's //keypurity:exempt markers (an OptionStruct fact).
func exemption(pass *analysis.Pass, key string) (string, bool) {
	lastDot := strings.LastIndexByte(key, '.')
	if lastDot < 0 {
		return "", false
	}
	field := key[lastDot+1:]
	rest := key[:lastDot]
	typeDot := strings.LastIndexByte(rest, '.')
	if typeDot < 0 {
		return "", false
	}
	pkgPath, typeName := rest[:typeDot], rest[typeDot+1:]
	var os funcsum.OptionStruct
	if !pass.ImportObjectFactByName(funcsum.Analyzer, pkgPath, typeName, &os) {
		return "", false
	}
	reason, ok := os.Exempt[field]
	return reason, ok
}

// transitiveImports returns the paths of every package reachable from
// pkg's imports, sorted.
func transitiveImports(pkg *types.Package) []string {
	seen := make(map[string]bool)
	var visit func(p *types.Package)
	visit = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if seen[imp.Path()] {
				continue
			}
			seen[imp.Path()] = true
			visit(imp)
		}
	}
	visit(pkg)
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func sortedScopes(m map[string]map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedReadKeys(m map[string]*funcsum.Chain) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
