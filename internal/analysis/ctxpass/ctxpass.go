// Package ctxpass enforces cancellation plumbing in the service-layer
// packages (internal/core, internal/jobs, internal/server): an exported
// function that spawns goroutines or loops unboundedly must accept a
// context.Context and actually consult it. The cprd daemon's graceful
// drain and per-job timeouts (PR 2) only work if every long-running
// entry point in those packages is cancelable.
//
// Lifecycles genuinely managed by other means (a closed channel, a
// WaitGroup drain) carry a //cprlint:ctxpass comment with the reason.
package ctxpass

import (
	"go/ast"
	"go/types"
	"strings"

	"cpr/internal/analysis"
)

// Analyzer is the ctxpass pass.
var Analyzer = &analysis.Analyzer{
	Name: "ctxpass",
	Doc:  "exported functions in internal/{core,jobs,server} that spawn goroutines or loop unboundedly must accept and consult a context.Context",
	Run:  run,
}

// scoped are the service-layer packages under the rule.
var scoped = []string{"/internal/core", "/internal/jobs", "/internal/server"}

func run(pass *analysis.Pass) error {
	in := false
	path := "/" + pass.Pkg.Path()
	for _, s := range scoped {
		if strings.Contains(path, s) {
			in = true
			break
		}
	}
	if !in {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			kind := longRunning(pass.TypesInfo, fd.Body)
			if kind == "" {
				continue
			}
			ctxParam, present := contextParam(pass.TypesInfo, fd)
			if !present {
				pass.Reportf(fd.Name.Pos(),
					"exported %s %s but has no context.Context parameter; long-running work must be cancelable (annotate //cprlint:ctxpass <reason> if the lifecycle is managed elsewhere)",
					fd.Name.Name, kind)
				continue
			}
			if ctxParam == nil || !usesVar(pass.TypesInfo, fd.Body, ctxParam) {
				pass.Reportf(fd.Name.Pos(),
					"exported %s %s and takes a context.Context but never consults it; poll ctx.Done()/ctx.Err() or pass it on",
					fd.Name.Name, kind)
			}
		}
	}
	return nil
}

// longRunning classifies a body that spawns or may never return:
// returns a description, or "" for plain bounded code.
func longRunning(info *types.Info, body *ast.BlockStmt) string {
	kind := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if kind != "" {
			return false
		}
		switch s := n.(type) {
		case *ast.GoStmt:
			kind = "spawns goroutines"
		case *ast.ForStmt:
			if s.Cond == nil {
				kind = "loops unboundedly (for without condition)"
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[s.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					kind = "loops unboundedly (range over channel)"
				}
			}
		}
		return true
	})
	return kind
}

// contextParam finds a parameter of type context.Context: present
// reports whether one exists at all; the returned var is nil for an
// unnamed (or blank) parameter, which by construction is never
// consulted.
func contextParam(info *types.Info, fd *ast.FuncDecl) (*types.Var, bool) {
	if fd.Type.Params == nil {
		return nil, false
	}
	for _, field := range fd.Type.Params.List {
		tv, ok := info.Types[field.Type]
		if !ok || !isContext(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				continue
			}
			if v, ok := info.Defs[name].(*types.Var); ok {
				return v, true
			}
		}
		return nil, true
	}
	return nil, false
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// usesVar reports whether body references v.
func usesVar(info *types.Info, body *ast.BlockStmt, v *types.Var) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			used = true
		}
		return !used
	})
	return used
}
