package main

import (
	"bytes"
	"context"
	"net"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"cpr/client"
)

// TestDaemonEndToEnd builds the real cprd binary, drives it over HTTP —
// submit, cache hit on identical resubmission, stats — then SIGTERMs it
// with a job in flight and asserts the drain finishes the job and the
// process exits cleanly.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping daemon binary end-to-end test")
	}

	bin := filepath.Join(t.TempDir(), "cprd")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building cprd: %v\n%s", err, out)
	}

	// Reserve a port; the tiny race between Close and the daemon's bind
	// is acceptable for a test.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("reserving port: %v", err)
	}
	addr := l.Addr().String()
	l.Close()

	var stderr bytes.Buffer
	proc := exec.Command(bin, "-addr", addr, "-max-jobs", "2", "-drain-timeout", "60s")
	proc.Stderr = &stderr
	if err := proc.Start(); err != nil {
		t.Fatalf("starting cprd: %v", err)
	}
	defer proc.Process.Kill()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	c := client.New("http://" + addr)
	for {
		if _, err := c.Health(ctx); err == nil {
			break
		}
		select {
		case <-ctx.Done():
			t.Fatalf("daemon never became healthy; stderr:\n%s", stderr.String())
		case <-time.After(20 * time.Millisecond):
		}
	}

	spec := client.Spec{Name: "e2e", Nets: 30, Width: 100, Height: 40, Seed: 17}
	first, err := c.Submit(ctx, client.SubmitRequest{Spec: &spec, Wait: true})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if first.State != "done" || first.Cached || first.Result == nil {
		t.Fatalf("first job = %+v, want done uncached with result", first)
	}
	second, err := c.Submit(ctx, client.SubmitRequest{Spec: &spec, Wait: true})
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if second.State != "done" || !second.Cached {
		t.Fatalf("second job = %+v, want served from cache", second)
	}
	if second.Result.Metrics != first.Result.Metrics {
		t.Fatalf("cached metrics differ:\n first  %+v\n second %+v",
			first.Result.Metrics, second.Result.Metrics)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Cache.Hits != 1 {
		t.Fatalf("cache hits = %d, want 1", st.Cache.Hits)
	}

	// Leave a bigger job in flight, then ask for a graceful shutdown.
	inflight := client.Spec{Name: "e2e-slow", Nets: 200, Width: 200, Height: 80, Seed: 23}
	if _, err := c.Submit(ctx, client.SubmitRequest{Spec: &inflight}); err != nil {
		t.Fatalf("in-flight submit: %v", err)
	}
	if err := proc.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}

	exited := make(chan error, 1)
	go func() { exited <- proc.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("daemon exited non-zero: %v\nstderr:\n%s", err, stderr.String())
		}
	case <-time.After(90 * time.Second):
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	if !bytes.Contains(stderr.Bytes(), []byte("drained cleanly")) {
		t.Fatalf("drain did not complete the in-flight job; stderr:\n%s", stderr.String())
	}
}
