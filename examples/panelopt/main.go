// Panelopt walks through the paper's §3 pipeline on one hand-built panel:
// interval generation, conflict detection, exact ILP assignment, and
// Lagrangian relaxation — with an ASCII rendering of the assigned
// intervals on their tracks.
//
// The design recreates the flavour of the paper's Figures 2-4: net A spans
// the panel with pins a1/a2, net B and net D pins sit between them on a
// shared track, and net C has an intra-panel pin pair (c1, c2) that a
// single shared interval can serve.
package main

import (
	"fmt"
	"log"
	"strings"

	"cpr"
)

func main() {
	d := cpr.NewDesign("panel", 36, 10, cpr.DefaultTechnology())
	netA := d.AddNet("A")
	netB := d.AddNet("B")
	netC := d.AddNet("C")
	netD := d.AddNet("D")
	d.AddPin("a1", netA, cpr.Rect{X0: 2, Y0: 2, X1: 2, Y1: 4})
	d.AddPin("a2", netA, cpr.Rect{X0: 30, Y0: 2, X1: 30, Y1: 4})
	d.AddPin("b1", netB, cpr.Rect{X0: 12, Y0: 4, X1: 12, Y1: 5})
	d.AddPin("d1", netD, cpr.Rect{X0: 22, Y0: 3, X1: 22, Y1: 4})
	d.AddPin("c1", netC, cpr.Rect{X0: 8, Y0: 7, X1: 8, Y1: 8})
	d.AddPin("c2", netC, cpr.Rect{X0: 18, Y0: 7, X1: 18, Y1: 8})
	if err := d.Validate(); err != nil {
		log.Fatal(err)
	}

	model, err := cpr.BuildAssignmentModel(d, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d candidate intervals for %d pins; %d conflict sets\n\n",
		model.NumIntervals(), model.NumPins(), len(model.Conflicts.Sets))

	ilpSol, err := cpr.SolveILP(model, cpr.ILPConfig{})
	if err != nil {
		log.Fatal(err)
	}
	lrRes := cpr.SolveLR(model, cpr.LRConfig{})

	fmt.Printf("ILP (optimal) objective: %.2f\n", ilpSol.Objective)
	fmt.Printf("LR            objective: %.2f (%d iterations, converged=%v)\n\n",
		lrRes.Solution.Objective, lrRes.Iterations, lrRes.Converged)

	fmt.Println("ILP assignment (one row per M2 track; letters are assigned")
	fmt.Println("intervals, * marks pin columns):")
	render(d, model, ilpSol)
	fmt.Println()
	fmt.Println("LR assignment:")
	render(d, model, lrRes.Solution)
}

// render draws the assigned intervals per track.
func render(d *cpr.Design, model *cpr.AssignmentModel, sol *cpr.AssignmentSolution) {
	rows := make([][]byte, 10)
	for y := range rows {
		rows[y] = []byte(strings.Repeat(".", d.Width))
	}
	seen := map[int]bool{}
	for _, ivID := range sol.ByPin {
		if seen[ivID] {
			continue
		}
		seen[ivID] = true
		iv := model.Set.Intervals[ivID]
		letter := byte('A' + iv.NetID)
		for x := iv.Span.Lo; x <= iv.Span.Hi; x++ {
			rows[iv.Track][x] = letter
		}
	}
	for i := range d.Pins {
		sh := d.Pins[i].Shape
		for y := sh.Y0; y <= sh.Y1; y++ {
			rows[y][sh.X0] = '*'
		}
	}
	for y := 9; y >= 0; y-- {
		fmt.Printf("t%d %s\n", y, rows[y])
	}
}
