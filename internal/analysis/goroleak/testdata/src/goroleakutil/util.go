// Package goroleakutil provides an unstoppable loop behind a package
// boundary, so the golden test covers the fact-import path.
package goroleakutil

func step() {}

// Pump runs forever with no stop path.
func Pump() {
	for {
		step()
	}
}
