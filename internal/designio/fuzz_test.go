package designio

import (
	"bytes"
	"strings"
	"testing"

	"cpr/internal/synth"
)

// fuzzSeedCorpus returns representative inputs: a full valid serialized
// design, a minimal valid design, and a spread of malformed variants
// covering every record type and error path.
func fuzzSeedCorpus(f *testing.F) [][]byte {
	f.Helper()
	d, err := synth.Generate(synth.Spec{Name: "fuzzseed", Nets: 20, Width: 60, Height: 20, Seed: 5})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		f.Fatal(err)
	}
	minimal := "cpr-design 1\ndesign d 8 8\nnet n0\npin p0 0 1 1 2 1\n"
	return [][]byte{
		buf.Bytes(),
		[]byte(minimal),
		[]byte(""),
		[]byte("cpr-design 1\n"),
		[]byte("cpr-design 2\ndesign d 8 8\n"),
		[]byte("not-a-design 1\n"),
		[]byte("cpr-design 1\ndesign d -5 8\n"),
		[]byte("cpr-design 1\ndesign d 99999999999999999999 8\n"),
		[]byte("cpr-design 1\npin p 0 0 0 0 0\n"),
		[]byte("cpr-design 1\ndesign d 8 8\npin p 3 0 0 0 0\n"),
		[]byte("cpr-design 1\ndesign d 8 8\nnet n\npin p 0 7 0 1 0 extra\n"),
		[]byte("cpr-design 1\ndesign d 8 8\ntech 0 0 0 0 0 0 0\nnet n\npin p 0 1 1 2 1\n"),
		[]byte("cpr-design 1\ndesign d 8 8\ntech 10 1 4 10 1 3 2\nnet n\npin p 0 1 1 2 1\nblockage 9 0 0 1 1\n"),
		[]byte("cpr-design 1\ndesign d 8 8\nnet n\npin p 0 1 1 2 1\nblockage 1 1 1 2 1\n"),
		[]byte("cpr-design 1\n# comment\n\ndesign d 8 8\nnet n\nnet n2\npin a 0 1 1 2 1\npin b 1 4 1 5 1\n"),
		[]byte("cpr-design 1\ndesign d 8 8\nnet n\npin a 0 1 1 2 1\npin b 0 2 1 3 1\n"),
		[]byte(strings.Repeat("cpr-design 1\ndesign d 8 8\n", 2)),
	}
}

// FuzzParseDesign asserts Read never panics on arbitrary input, and that
// any design Read accepts survives a Write/Read round trip with a stable
// canonical form (the second Write is byte-identical to the first).
func FuzzParseDesign(f *testing.F) {
	for _, seed := range fuzzSeedCorpus(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected input: the only requirement is no panic
		}
		var first bytes.Buffer
		if err := Write(&first, d); err != nil {
			t.Fatalf("Write of accepted design failed: %v", err)
		}
		d2, err := Read(bytes.NewReader(first.Bytes()))
		if err != nil {
			t.Fatalf("re-Read of written design failed: %v\ninput:\n%s\nwritten:\n%s",
				err, data, first.Bytes())
		}
		var second bytes.Buffer
		if err := Write(&second, d2); err != nil {
			t.Fatalf("second Write failed: %v", err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("Write is not canonical:\nfirst:\n%s\nsecond:\n%s", first.Bytes(), second.Bytes())
		}
	})
}
