package loader

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

// moduleRoot walks up from the working directory to the go.mod.
func moduleRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above working directory")
		}
		dir = parent
	}
}

func TestLoadRepoPackage(t *testing.T) {
	l := New(moduleRoot(t))
	pkgs, err := l.Load("cpr/internal/router")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.PkgPath != "cpr/internal/router" {
		t.Errorf("PkgPath = %q", pkg.PkgPath)
	}
	if len(pkg.Files) == 0 {
		t.Fatal("no syntax files")
	}
	// Type information must cover imported names: find a selector call
	// and check it resolved.
	resolved := 0
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				if pkg.TypesInfo.Uses[sel.Sel] != nil {
					resolved++
				}
			}
			return true
		})
	}
	if resolved == 0 {
		t.Error("no selector expressions resolved; type info missing")
	}
}

func TestLoadPatternMultiple(t *testing.T) {
	l := New(moduleRoot(t))
	pkgs, err := l.Load("cpr/internal/geom", "cpr/internal/tech")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
}

func TestLoadDirOverlay(t *testing.T) {
	src := t.TempDir()
	stub := filepath.Join(src, "example.com", "dep")
	if err := os.MkdirAll(stub, 0o755); err != nil {
		t.Fatal(err)
	}
	write := func(path, content string) {
		t.Helper()
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(filepath.Join(stub, "dep.go"), "package dep\n\nfunc Answer() int { return 42 }\n")
	main := filepath.Join(src, "target")
	if err := os.MkdirAll(main, 0o755); err != nil {
		t.Fatal(err)
	}
	write(filepath.Join(main, "target.go"), `package target

import (
	"fmt"

	"example.com/dep"
)

func Print() { fmt.Println(dep.Answer()) }
`)

	l := New(moduleRoot(t))
	l.TestdataSrc = src
	pkg, err := l.LoadDir(main, "target")
	if err != nil {
		t.Fatalf("LoadDir: %v", err)
	}
	if len(pkg.TypeErrors) > 0 {
		t.Fatalf("type errors: %v", pkg.TypeErrors)
	}
}
