// Package invariant asserts the paper's theorems as executable invariants
// over generated interval sets and assignment solutions, independently of
// the code that produced them:
//
//   - Theorem 1: every pin has a feasible minimum interval — so any
//     generated Set must give every requested pin at least one interval,
//     one of which is marked as its minimum and equals the pin's own span.
//   - Constraint (1b): a legal assignment covers every pin with exactly
//     one selected interval.
//   - Constraint (1c): a legal assignment is conflict free. The check here
//     is a brute-force O(n^2) pairwise-overlap oracle over the selected
//     intervals of each track, deliberately not reusing the linear
//     conflict sweep it cross-checks.
//
// The checks are pure functions returning errors, so they serve equally as
// test assertions (internal/invariant's own property tests run them
// against the sequential and parallel pipelines) and as debug-mode audits.
//
// RandomSpec generates small random synth.Spec instances for
// testing/quick-style property tests.
package invariant

import (
	"fmt"
	"math/rand"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/pinaccess"
	"cpr/internal/synth"
)

// CheckIntervalSet verifies the structural invariants of a generated
// interval set against its design: Theorem 1 feasibility per pin, interval
// self-consistency (net, coverage, span containment), and the ByPin index
// matching the coverage lists exactly.
func CheckIntervalSet(d *design.Design, s *pinaccess.Set) error {
	for _, pid := range s.PinIDs {
		if pid < 0 || pid >= len(d.Pins) {
			return fmt.Errorf("invariant: set references pin %d outside design", pid)
		}
		if len(s.ByPin[pid]) == 0 {
			return fmt.Errorf("invariant: pin %d has no access interval (Theorem 1 violated)", pid)
		}
		min := s.AnyMinInterval(pid)
		if min < 0 {
			return fmt.Errorf("invariant: pin %d has no minimum interval (Theorem 1 violated)", pid)
		}
		if got, want := s.Intervals[min].Span, d.Pins[pid].Shape.XSpan(); got != want {
			return fmt.Errorf("invariant: pin %d minimum interval spans %v, want the pin span %v", pid, got, want)
		}
	}
	for i := range s.Intervals {
		iv := &s.Intervals[i]
		if iv.ID != i {
			return fmt.Errorf("invariant: interval at index %d carries ID %d", i, iv.ID)
		}
		if iv.Span.Empty() {
			return fmt.Errorf("invariant: interval %d has empty span", i)
		}
		if len(iv.PinIDs) == 0 {
			return fmt.Errorf("invariant: interval %d covers no pins", i)
		}
		for _, pid := range iv.PinIDs {
			if pid < 0 || pid >= len(d.Pins) {
				return fmt.Errorf("invariant: interval %d covers pin %d outside design", i, pid)
			}
			p := &d.Pins[pid]
			if p.NetID != iv.NetID {
				return fmt.Errorf("invariant: interval %d (net %d) covers pin %d of net %d",
					i, iv.NetID, pid, p.NetID)
			}
			if !iv.Span.ContainsInterval(p.Shape.XSpan()) {
				return fmt.Errorf("invariant: interval %d span %v does not contain covered pin %d span %v",
					i, iv.Span, pid, p.Shape.XSpan())
			}
			if iv.Track < p.Shape.Y0 || iv.Track > p.Shape.Y1 {
				return fmt.Errorf("invariant: interval %d on track %d covers pin %d spanning tracks [%d,%d]",
					i, iv.Track, pid, p.Shape.Y0, p.Shape.Y1)
			}
		}
	}
	// ByPin must be the exact inverse of the coverage lists.
	for pid, ivs := range s.ByPin {
		for _, i := range ivs {
			if i < 0 || i >= len(s.Intervals) || !s.Intervals[i].Covers(pid) {
				return fmt.Errorf("invariant: ByPin[%d] lists interval %d which does not cover it", pid, i)
			}
		}
	}
	for i := range s.Intervals {
		for _, pid := range s.Intervals[i].PinIDs {
			if !containsInt(s.ByPin[pid], i) {
				return fmt.Errorf("invariant: interval %d covers pin %d but is missing from ByPin", i, pid)
			}
		}
	}
	return nil
}

// CheckAssignment verifies a solved assignment against the paper's
// constraints without trusting the solver's own bookkeeping: exactly one
// selected interval covers each pin (1b), the per-pin map is consistent
// with Selected, and no two selected intervals on one track overlap — the
// brute-force conflict-freedom oracle for (1c).
func CheckAssignment(s *pinaccess.Set, sol *assign.Solution) error {
	if sol == nil {
		return fmt.Errorf("invariant: nil solution")
	}
	if len(sol.Selected) != len(s.Intervals) {
		return fmt.Errorf("invariant: solution selects over %d intervals, set has %d",
			len(sol.Selected), len(s.Intervals))
	}
	for _, pid := range s.PinIDs {
		count := 0
		for _, iv := range s.ByPin[pid] {
			if sol.Selected[iv] {
				count++
			}
		}
		if count != 1 {
			return fmt.Errorf("invariant: pin %d covered by %d selected intervals, want exactly 1 (1b)", pid, count)
		}
		assigned, ok := sol.ByPin[pid]
		if !ok {
			return fmt.Errorf("invariant: pin %d missing from ByPin", pid)
		}
		if assigned < 0 || assigned >= len(s.Intervals) || !sol.Selected[assigned] {
			return fmt.Errorf("invariant: pin %d assigned unselected interval %d", pid, assigned)
		}
		if !s.Intervals[assigned].Covers(pid) {
			return fmt.Errorf("invariant: pin %d assigned interval %d which does not cover it", pid, assigned)
		}
	}
	// Brute-force (1c) oracle: any two selected intervals sharing a track
	// and a grid point form a conflict, whatever the sweep said.
	var selected []int
	for i, sel := range sol.Selected {
		if sel {
			selected = append(selected, i)
		}
	}
	for a := 0; a < len(selected); a++ {
		for b := a + 1; b < len(selected); b++ {
			ia, ib := &s.Intervals[selected[a]], &s.Intervals[selected[b]]
			if ia.Track == ib.Track && ia.Span.Overlaps(ib.Span) {
				return fmt.Errorf("invariant: selected intervals %d and %d overlap on track %d (1c)",
					ia.ID, ib.ID, ia.Track)
			}
		}
	}
	return nil
}

// RandomSpec draws a small random synthetic circuit spec from rng. The
// bounds keep the pin density inside the generator's feasible regime so
// synth.Generate always succeeds, while varying every axis the pipeline
// shards over: panel count, net count, blockage density, and net span.
func RandomSpec(rng *rand.Rand, name string) synth.Spec {
	width := 60 + rng.Intn(120)
	panels := 2 + rng.Intn(5)
	height := panels * 10
	// Stay well below the ~0.024 pins/cell routable ceiling: nets average
	// 2.5 pins, so cap nets at ~0.006 nets per cell.
	maxNets := width * height * 6 / 1000
	nets := 10 + rng.Intn(maxNets)
	return synth.Spec{
		Name:             name,
		Nets:             nets,
		Width:            width,
		Height:           height,
		Seed:             rng.Int63(),
		BlockageFraction: 0.01 + rng.Float64()*0.03,
		MaxNetSpan:       12 + rng.Intn(24),
		NoPowerRails:     rng.Intn(4) == 0,
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
