// Package cliutil centralizes the flag spellings, default values, and
// help strings shared by the cpr command-line tools (cpr, pinopt,
// experiments, benchgen, cprd), so -workers/-seed/-mode and friends
// cannot drift between binaries again.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/telemetry"
)

// AllCircuits is the canonical -circuits default covering every Table 2
// preset.
const AllCircuits = "ecc,efc,ctl,alu,div,top"

// Workers registers the canonical -workers flag on the default flag set.
func Workers() *int {
	return flag.Int("workers", 0,
		"optimization worker count (0 = GOMAXPROCS, 1 = sequential; results are identical)")
}

// Seed registers the canonical -seed flag with a tool-specific default.
func Seed(def int64) *int64 {
	return flag.Int64("seed", def, "deterministic generator seed")
}

// Mode registers the canonical -mode flag (parse with ParseMode).
func Mode() *string {
	return flag.String("mode", "cpr", "routing flow: cpr, nopinopt, sequential")
}

// Optimizer registers the canonical -optimizer flag (parse with
// ParseOptimizer).
func Optimizer() *string {
	return flag.String("optimizer", "lr", "pin access optimizer for cpr mode: lr, ilp")
}

// Circuits registers the canonical -circuits flag with a tool-specific
// default ("" means the tool treats absence specially).
func Circuits(def, extra string) *string {
	usage := "comma-separated Table 2 circuit names (ecc efc ctl alu div top)"
	if extra != "" {
		usage += "; " + extra
	}
	return flag.String("circuits", def, usage)
}

// RuleEngine registers the canonical -rule-engine flag (validate with
// tech.ParseEngine, apply through core.Options.RuleEngine). The empty
// default keeps whatever engine the design carries (sadp when none).
func RuleEngine() *string {
	return flag.String("rule-engine", "",
		"multi-patterning rule engine: sadp, lele, tpl (empty keeps the design's engine; unknown names fail)")
}

// ILPTimeout registers the canonical -ilp-timeout flag with a
// tool-specific default.
func ILPTimeout(def time.Duration) *time.Duration {
	return flag.Duration("ilp-timeout", def, "per-panel ILP time limit (0 = no cap)")
}

// ParseMode maps a -mode value onto core.Mode.
func ParseMode(s string) (core.Mode, error) {
	switch s {
	case "cpr":
		return core.ModeCPR, nil
	case "nopinopt":
		return core.ModeNoPinOpt, nil
	case "sequential":
		return core.ModeSequential, nil
	default:
		return 0, fmt.Errorf("unknown -mode %q (want cpr, nopinopt, sequential)", s)
	}
}

// ParseOptimizer maps an -optimizer value onto core.Optimizer.
func ParseOptimizer(s string) (core.Optimizer, error) {
	switch s {
	case "lr":
		return core.OptLR, nil
	case "ilp":
		return core.OptILP, nil
	default:
		return 0, fmt.Errorf("unknown -optimizer %q (want lr, ilp)", s)
	}
}

// Trace registers the canonical -trace flag: a file the run's span
// trace is written to. Tracing is strictly observational — results are
// byte-identical with or without it.
func Trace() *string {
	return flag.String("trace", "",
		"write the run's pipeline span trace to this file (results are identical with tracing on or off)")
}

// TraceFormat registers the canonical -trace-format flag.
func TraceFormat() *string {
	return flag.String("trace-format", "chrome",
		"trace encoding: chrome (trace_event JSON for chrome://tracing / Perfetto) or json (raw span records)")
}

// StartTrace attaches a fresh tracer to ctx when path is non-empty and
// returns a flush function that writes the collected trace to path in
// the given format ("chrome" or "json"; "" means chrome). With an empty
// path ctx passes through and the flush is a no-op.
func StartTrace(ctx context.Context, path, format string) (context.Context, func() error, error) {
	if path == "" {
		return ctx, func() error { return nil }, nil
	}
	switch format {
	case "", "chrome", "json":
	default:
		return ctx, nil, fmt.Errorf("unknown -trace-format %q (want chrome, json)", format)
	}
	tr := telemetry.New()
	ctx = telemetry.WithTracer(ctx, tr)
	flush := func() error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if format == "json" {
			err = tr.WriteJSON(f, telemetry.ExportOptions{})
		} else {
			err = tr.WriteChromeTrace(f, telemetry.ExportOptions{})
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		return err
	}
	return ctx, flush, nil
}

// Baseline registers the canonical -baseline flag: a cpr-design file of
// a previous design revision to rerun against incrementally.
func Baseline() *string {
	return flag.String("baseline", "",
		"cpr-design file of a previous revision; it is optimized first and the main design is rerun incrementally against it (identical results, only dirtied panels recomputed)")
}

// RerunMode registers the canonical -rerun-mode flag (parse with
// core.ParseRerunMode). It selects the incremental-rerun contract used
// together with -baseline: strict reruns are byte-identical to a cold
// run, eco-fast reruns additionally warm-start dirtied nets from the
// baseline's routes and are verified DRC-clean and objective-equal.
func RerunMode() *string {
	return flag.String("rerun-mode", "strict",
		"incremental rerun contract with -baseline: strict (byte-identical to a cold run) or eco-fast (warm-starts dirtied nets; verified equivalent, route bytes may differ)")
}

// ReadDesign loads a cpr-design file.
func ReadDesign(path string) (*design.Design, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	d, err := designio.Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

// Fatal prints a tool-prefixed error and exits 1.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	os.Exit(1)
}
