package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"cpr/internal/telemetry"
)

// startProgress wires a local event bus into ctx so the pipeline's
// lr_iteration and negotiate_round events render live on stderr while
// the run is in flight. The returned stop function unsubscribes and
// waits for the renderer to drain; call it before printing the metrics
// row so progress lines and results do not interleave.
//
// The bus keeps the solver's observational contract: a slow terminal
// drops progress lines (reported at the end) instead of slowing the run.
func startProgress(ctx context.Context) (context.Context, func()) {
	bus := telemetry.NewEventBus(0)
	ctx = telemetry.WithEmitter(ctx, telemetry.NewEmitter(bus, "cli"))
	_, ch, cancel := bus.Subscribe("", 0, 1024)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ev := range ch {
			renderProgress(ev)
		}
	}()
	stop := func() {
		cancel()
		wg.Wait()
		if n := bus.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "progress: %d events dropped (terminal too slow)\n", n)
		}
	}
	return ctx, stop
}

// renderProgress prints one progress line per solver event; other event
// types (span boundaries, cache outcomes) stay silent to keep the
// stream readable.
func renderProgress(ev telemetry.Event) {
	switch ev.Type {
	case "lr_iteration":
		fmt.Fprintf(os.Stderr, "progress: lr iter=%v violations=%v best=%v profit=%v dual=%v\n",
			ev.Data["iter"], ev.Data["violations"], ev.Data["best_violations"],
			ev.Data["profit"], ev.Data["dual"])
	case "negotiate_round":
		fmt.Fprintf(os.Stderr, "progress: route region=%v iter=%v overused=%v ripups=%v\n",
			ev.Data["region"], ev.Data["iter"], ev.Data["overused"], ev.Data["ripups"])
	}
}
