package render

import (
	"bytes"
	"strings"
	"testing"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/pinaccess"
	"cpr/internal/router"
	"cpr/internal/tech"
)

func fixture(t *testing.T) (*design.Design, *grid.Graph, *router.Result) {
	t.Helper()
	d := design.New("render", 30, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(3, 4, 3, 4))
	d.AddPin("p1", n, geom.MakeRect(24, 4, 24, 4))
	d.AddBlockage(tech.M2, geom.MakeRect(10, 8, 14, 8))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := router.New(d, g, router.Config{}).Run()
	if res.RoutedNets != 1 {
		t.Fatal("fixture net not routed")
	}
	return d, g, res
}

func TestSVGWellFormed(t *testing.T) {
	d, g, res := fixture(t)
	var buf bytes.Buffer
	if err := SVG(&buf, d, g, res, nil, SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "<svg") || !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Error("not a complete SVG document")
	}
	for _, want := range []string{"<rect", "<line", "<circle"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %s elements", want)
		}
	}
	// Two vias on the straight route.
	if n := strings.Count(out, "<circle"); n != 2 {
		t.Errorf("got %d via circles, want 2", n)
	}
}

func TestSVGWithoutRoutes(t *testing.T) {
	d, _, _ := fixture(t)
	var buf bytes.Buffer
	if err := SVG(&buf, d, nil, nil, nil, SVGOptions{CellSize: 4}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<rect") {
		t.Error("pins not drawn")
	}
	if strings.Contains(buf.String(), "<circle") {
		t.Error("vias drawn without routes")
	}
}

func TestASCIIPanel(t *testing.T) {
	d, g, res := fixture(t)
	var buf bytes.Buffer
	if err := ASCII(&buf, d, g, res, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 10 {
		t.Fatalf("got %d lines, want 10 tracks", len(lines))
	}
	if !strings.Contains(out, "*") {
		t.Error("pins not rendered")
	}
	if !strings.Contains(out, "a") {
		t.Error("route metal not rendered")
	}
	if !strings.Contains(out, "#") {
		t.Error("blockage not rendered")
	}
}

func TestASCIIPanelOutOfRange(t *testing.T) {
	d, g, res := fixture(t)
	var buf bytes.Buffer
	if err := ASCII(&buf, d, g, res, 7); err == nil {
		t.Error("want error for out-of-range panel")
	}
}

func TestNetColorsStable(t *testing.T) {
	if netColor(3) != netColor(3) {
		t.Error("colors not stable")
	}
	if netColor(0) == netColor(1) {
		t.Error("adjacent nets share a color")
	}
}

func TestSVGShowIntervals(t *testing.T) {
	d := design.New("seeded", 30, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(3, 4, 3, 4))
	d.AddPin("p1", n, geom.MakeRect(24, 4, 24, 4))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := assign.Build(set, assign.SqrtProfit)
	sol := m.MinimumSolution()
	var buf bytes.Buffer
	err = SVG(&buf, d, nil, nil, []Seed{{Set: set, ByPin: sol.ByPin}},
		SVGOptions{ShowIntervals: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `fill-opacity="0.15"`) {
		t.Error("interval bands not rendered")
	}
}
