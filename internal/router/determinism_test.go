package router_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/pinaccess"
	"cpr/internal/render"
	"cpr/internal/router"
	"cpr/internal/tech"
)

// determinismDesign builds a design dense enough to force negotiation.
func determinismDesign(t *testing.T) *design.Design {
	t.Helper()
	rng := rand.New(rand.NewSource(4242))
	d := design.New("determinism", 48, 20, tech.Default())
	occupied := make(map[[2]int]bool)
	place := func() (geom.Rect, bool) {
		for attempt := 0; attempt < 60; attempt++ {
			x, y := rng.Intn(48), rng.Intn(20)
			if y%10 == 9 {
				y--
			}
			if occupied[[2]int{x, y}] {
				continue
			}
			occupied[[2]int{x, y}] = true
			return geom.MakeRect(x, y, x, y), true
		}
		return geom.Rect{}, false
	}
	for i := 0; i < 24; i++ {
		k := 2 + rng.Intn(2)
		shapes := make([]geom.Rect, 0, k)
		for j := 0; j < k; j++ {
			if sh, ok := place(); ok {
				shapes = append(shapes, sh)
			}
		}
		if len(shapes) < 2 {
			continue
		}
		id := d.AddNet(fmt.Sprintf("n%d", i))
		for j, sh := range shapes {
			d.AddPin(fmt.Sprintf("n%d_p%d", i, j), id, sh)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// shuffledCopy rebuilds a ByPin map inserting keys in a shuffled order, so
// the two runs see maps with different internal layouts.
func shuffledCopy(byPin map[int]int, seed int64) map[int]int {
	keys := make([]int, 0, len(byPin))
	for k := range byPin {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(keys), func(i, j int) { keys[i], keys[j] = keys[j], keys[i] })
	out := make(map[int]int, len(byPin))
	for _, k := range keys {
		out[k] = byPin[k]
	}
	return out
}

// dumpRun executes the full seeded negotiation flow and serializes
// everything observable — the design bytes, every route's nodes, edges and
// virtual cells, the run metrics, and the rendered SVG — into one buffer.
// Wall-clock fields (Elapsed, StageElapsed) are deliberately excluded.
func dumpRun(t *testing.T, d *design.Design, set *pinaccess.Set, byPin map[int]int) []byte {
	t.Helper()
	g := grid.New(d)
	sol := &assign.Solution{ByPin: byPin}
	r := router.New(d, g, router.Config{})
	r.SeedAssignment(set, sol)
	res := r.Run()

	var b bytes.Buffer
	if err := designio.Write(&b, d); err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(&b, "routed=%d vias=%d wl=%d initcong=%d iters=%d congunrouted=%d drcunrouted=%d\n",
		res.RoutedNets, res.Vias, res.Wirelength, res.InitialCongested,
		res.NegotiationIters, res.CongestionUnrouted, res.DRCUnrouted)
	for netID, nr := range res.Routes {
		fmt.Fprintf(&b, "net %d routed=%v fail=%q\n", netID, nr.Routed, nr.FailReason)
		fmt.Fprintf(&b, "  nodes %v\n", nr.Nodes)
		fmt.Fprintf(&b, "  edges %v\n", nr.Edges)
		fmt.Fprintf(&b, "  virtual %v\n", nr.Virtual)
	}
	seeds := []render.Seed{{Set: set, ByPin: byPin}}
	if err := render.SVG(&b, d, g, res, seeds, render.SVGOptions{ShowIntervals: true}); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestNegotiationRouterByteIdentical runs the identical seeded routing
// problem several times, each time handing the router assignment maps
// built with a different insertion order, and requires the complete
// serialized outcome to be byte-identical. This is the regression gate for
// the determinism contract behind the content-addressed result cache: a
// map-iteration-order leak anywhere in seeding, search, DRC, or rendering
// shows up here as a byte diff.
func TestNegotiationRouterByteIdentical(t *testing.T) {
	d := determinismDesign(t)
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), allPins(d))
	if err != nil {
		t.Fatal(err)
	}
	m := assign.Build(set, assign.SqrtProfit)
	sol := m.MinimumSolution()

	base := dumpRun(t, d, set, shuffledCopy(sol.ByPin, 1))
	if !bytes.Contains(base, []byte("routed=")) {
		t.Fatal("dump missing metrics line")
	}
	for trial := int64(2); trial <= 4; trial++ {
		got := dumpRun(t, d, set, shuffledCopy(sol.ByPin, trial))
		if !bytes.Equal(got, base) {
			t.Fatalf("trial %d: routing outcome not byte-identical (len %d vs %d): %s",
				trial, len(got), len(base), firstDiff(base, got))
		}
	}
}

func allPins(d *design.Design) []int {
	pins := make([]int, len(d.Pins))
	for i := range pins {
		pins[i] = i
	}
	return pins
}

// firstDiff describes the first byte position where a and b diverge.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return fmt.Sprintf("first diff at byte %d: %q vs %q", i, a[lo:i+1], b[lo:i+1])
		}
	}
	return fmt.Sprintf("common prefix of %d bytes, lengths differ", n)
}
