package telemetry

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// ExportOptions tunes trace serialization.
type ExportOptions struct {
	// ZeroTimes replaces every start timestamp and duration with zero, so
	// golden tests can compare traces byte-for-byte across runs.
	ZeroTimes bool
}

// jsonTrace is the top-level structure of the tracer's own JSON format.
type jsonTrace struct {
	Format  string       `json:"format"`
	TraceID string       `json:"trace_id,omitempty"`
	Spans   []SpanRecord `json:"spans"`
}

// WriteJSON writes the tracer's own JSON format: a flat span list in
// creation order with parent links, nanosecond offsets from the tracer
// epoch, and ordered attributes. A nil tracer writes an empty trace. The
// trace id is omitted under ZeroTimes (it is time-derived, so golden
// tests must not see it).
func (t *Tracer) WriteJSON(w io.Writer, opts ExportOptions) error {
	spans := t.Snapshot()
	if spans == nil {
		spans = []SpanRecord{}
	}
	traceID := t.TraceID()
	if opts.ZeroTimes {
		traceID = ""
		for i := range spans {
			spans[i].Start = 0
			spans[i].Duration = 0
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonTrace{Format: "cpr-trace-v1", TraceID: traceID, Spans: spans})
}

// chromeEvent is one Chrome trace_event entry. We emit only complete
// ("X") events: one per span, with microsecond timestamps.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the Chrome trace_event JSON object form, loadable by
// chrome://tracing and https://ui.perfetto.dev.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes the span tree in Chrome trace_event format
// (JSON object form with complete events). Span lanes map to thread IDs,
// so concurrent per-panel solves render as parallel rows; attributes
// become event args. Events are ordered by (timestamp, span ID) as the
// format prescribes. A nil tracer writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer, opts ExportOptions) error {
	spans := t.Snapshot()
	events := make([]chromeEvent, 0, len(spans))
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name,
			Cat:  "cpr",
			Ph:   "X",
			TS:   float64(sp.Start) / float64(time.Microsecond),
			Dur:  float64(sp.Duration) / float64(time.Microsecond),
			PID:  1,
			TID:  sp.Lane,
		}
		if opts.ZeroTimes {
			ev.TS, ev.Dur = 0, 0
		}
		if len(sp.Attrs) > 0 {
			ev.Args = make(map[string]any, len(sp.Attrs)+1)
			for _, a := range sp.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		if ev.Args == nil {
			ev.Args = map[string]any{}
		}
		ev.Args["span_id"] = sp.ID
		if sp.ParentID != 0 {
			ev.Args["parent_id"] = sp.ParentID
		}
		events = append(events, ev)
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].Args["span_id"].(int) < events[j].Args["span_id"].(int)
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
