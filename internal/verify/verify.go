// Package verify independently checks routing results: it re-derives
// connectivity, exclusivity, and design-rule compliance from the raw route
// edges, without trusting any of the router's own bookkeeping. The test
// suites use it as the ground-truth oracle for every routing flow.
package verify

import (
	"fmt"
	"sort"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/router"
	"cpr/internal/tech"
)

// Report is the outcome of verifying one routing result.
type Report struct {
	// Errors lists every violation found (empty means clean).
	Errors []string
	// CheckedNets is the number of routed nets examined.
	CheckedNets int
}

// Ok reports whether the result verified clean.
func (r *Report) Ok() bool { return len(r.Errors) == 0 }

func (r *Report) addf(format string, args ...interface{}) {
	r.Errors = append(r.Errors, fmt.Sprintf(format, args...))
}

// Check verifies a routing result against its design:
//
//  1. every routed net's edges form a connected graph touching every pin
//     of the net;
//  2. every edge is geometrically valid: unit-length wire steps in the
//     layer's preferred direction, or vias between adjacent layers;
//  3. no metal node is used by two different routed nets, no metal node
//     lies on a design blockage, and M1 is entered only over own pins;
//  4. after line-end extension, strips of different nets on the same
//     track respect the technology rule engine's tip spacing rules and
//     the minimum line length, and — for multi-mask engines — the
//     routed segments admit a legal mask decomposition (reported as
//     rule errors).
func Check(d *design.Design, g *grid.Graph, res *router.Result) *Report {
	rep := &Report{}
	nodeUser := make(map[grid.NodeID]int)

	for netID, nr := range res.Routes {
		if nr == nil || !nr.Routed {
			continue
		}
		rep.CheckedNets++
		checkNet(d, g, netID, nr, nodeUser, rep)
	}
	checkLineEnds(d, g, res, rep)
	return rep
}

// ObjectiveEqual reports whether two routing results of the same design
// achieve the same routing objective: the same number of routed nets and
// the same set of routed net IDs. Wirelength and via counts may differ —
// an eco-fast rerun is free to find a different but equally complete
// routing — so they are deliberately not compared. Returns nil when
// equal, or an error naming the first divergence.
func ObjectiveEqual(d *design.Design, a, b *router.Result) error {
	if a.RoutedNets != b.RoutedNets {
		return fmt.Errorf("routed net count differs: %d vs %d", a.RoutedNets, b.RoutedNets)
	}
	if len(a.Routes) != len(b.Routes) {
		return fmt.Errorf("route table size differs: %d vs %d", len(a.Routes), len(b.Routes))
	}
	for netID := range a.Routes {
		ra := a.Routes[netID] != nil && a.Routes[netID].Routed
		rb := b.Routes[netID] != nil && b.Routes[netID].Routed
		if ra != rb {
			return fmt.Errorf("net %s: routed %t vs %t", d.Nets[netID].Name, ra, rb)
		}
	}
	return nil
}

// checkNet validates one net's tree and registers its metal nodes.
func checkNet(d *design.Design, g *grid.Graph, netID int, nr *router.NetRoute,
	nodeUser map[grid.NodeID]int, rep *Report) {

	name := d.Nets[netID].Name

	// Edge geometry and adjacency structure.
	adj := make(map[grid.NodeID][]grid.NodeID)
	addAdj := func(a, b grid.NodeID) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	nodesInEdges := make(map[grid.NodeID]bool)
	for _, e := range nr.Edges {
		x1, y1, z1 := g.Coords(e.From)
		x2, y2, z2 := g.Coords(e.To)
		switch {
		case z1 == z2 && z1 == tech.M2 && y1 == y2 && abs(x1-x2) == 1:
		case z1 == z2 && z1 == tech.M3 && x1 == x2 && abs(y1-y2) == 1:
		case x1 == x2 && y1 == y2 && abs(z1-z2) == 1:
		default:
			rep.addf("net %s: invalid edge (%d,%d,L%d)-(%d,%d,L%d)",
				name, x1, y1, z1, x2, y2, z2)
			continue
		}
		addAdj(e.From, e.To)
		nodesInEdges[e.From] = true
		nodesInEdges[e.To] = true
	}

	// Node list must cover the edge endpoints.
	nodeSet := make(map[grid.NodeID]bool, len(nr.Nodes))
	for _, id := range nr.Nodes {
		nodeSet[id] = true
	}
	for id := range nodesInEdges {
		if !nodeSet[id] {
			x, y, z := g.Coords(id)
			rep.addf("net %s: edge endpoint (%d,%d,L%d) missing from node list", name, x, y, z)
		}
	}

	// Exclusivity, blockages, and M1 discipline.
	for _, id := range nr.Nodes {
		x, y, z := g.Coords(id)
		if g.Blocked(id) {
			rep.addf("net %s: metal on blocked cell (%d,%d,L%d)", name, x, y, z)
		}
		if z == tech.M1 {
			if own := g.Owner(id); own != netID {
				rep.addf("net %s: M1 cell (%d,%d) not its own pin (owner %d)", name, x, y, own)
			}
		}
		if prev, ok := nodeUser[id]; ok && prev != netID {
			rep.addf("net %s: metal cell (%d,%d,L%d) shared with net %s",
				name, x, y, z, d.Nets[prev].Name)
		}
		nodeUser[id] = netID
	}

	// Connectivity: every pin reachable from the first pin's cells.
	pins := d.Nets[netID].PinIDs
	if len(pins) <= 1 {
		return
	}
	// Union nodes connected by edges. A pin's shape is one conductor, so
	// its in-tree cells are mutually connected even without route edges
	// between them: two subtrees tapping different cells of the same pin
	// are electrically joined through the pin metal. Chain each pin's
	// in-tree cells so the walk sees that.
	for _, pid := range pins {
		var first grid.NodeID
		found := false
		for _, c := range pinCells(d, g, pid) {
			if !nodeSet[c] {
				continue
			}
			if !found {
				first, found = c, true
				continue
			}
			addAdj(first, c)
		}
	}
	visited := make(map[grid.NodeID]bool)
	var stack []grid.NodeID
	seed := pinCells(d, g, pins[0])
	for _, c := range seed {
		if nodeSet[c] {
			stack = append(stack, c)
			visited[c] = true
		}
	}
	if len(stack) == 0 {
		rep.addf("net %s: route does not touch pin %s", name, d.Pins[pins[0]].Name)
		return
	}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, nb := range adj[cur] {
			if !visited[nb] {
				visited[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	for _, pid := range pins[1:] {
		touched := false
		for _, c := range pinCells(d, g, pid) {
			if visited[c] {
				touched = true
				break
			}
		}
		if !touched {
			rep.addf("net %s: pin %s not connected", name, d.Pins[pid].Name)
		}
	}
}

// checkLineEnds re-derives per-track metal strips from all routed nets
// and validates the technology rule engine's track-level tip rules. For
// multi-mask engines it additionally runs the engine's mask legality
// analysis (decomposition/coloring) over the raw routed segments and
// reports its errors — e.g. uncolorable segments under TPL.
func checkLineEnds(d *design.Design, g *grid.Graph, res *router.Result, rep *Report) {
	rules := g.Rules()
	type stripKey struct{ layer, track int }
	byTrack := make(map[stripKey][]tech.Seg)
	var raw []tech.Seg

	for netID, nr := range res.Routes {
		if nr == nil || !nr.Routed {
			continue
		}
		m2 := make(map[int][]int)
		m3 := make(map[int][]int)
		for _, id := range nr.Nodes {
			x, y, z := g.Coords(id)
			switch z {
			case tech.M2:
				m2[y] = append(m2[y], x)
			case tech.M3:
				m3[x] = append(m3[x], y)
			}
		}
		for _, track := range sortedIntKeys(m2) {
			for _, span := range cellRuns(m2[track]) {
				raw = append(raw, tech.Seg{Net: netID, Layer: tech.M2, Track: track, Lo: span.Lo, Hi: span.Hi})
				lo, hi := rules.ExtendSpan(span.Lo, span.Hi, d.Width)
				byTrack[stripKey{tech.M2, track}] = append(byTrack[stripKey{tech.M2, track}],
					tech.Seg{Net: netID, Layer: tech.M2, Track: track, Lo: lo, Hi: hi})
			}
		}
		for _, track := range sortedIntKeys(m3) {
			for _, span := range cellRuns(m3[track]) {
				raw = append(raw, tech.Seg{Net: netID, Layer: tech.M3, Track: track, Lo: span.Lo, Hi: span.Hi})
				lo, hi := rules.ExtendSpan(span.Lo, span.Hi, d.Height)
				byTrack[stripKey{tech.M3, track}] = append(byTrack[stripKey{tech.M3, track}],
					tech.Seg{Net: netID, Layer: tech.M3, Track: track, Lo: lo, Hi: hi})
			}
		}
	}

	// Visit tracks in (layer, track) order so violation messages land in
	// Report.Errors deterministically.
	keys := make([]stripKey, 0, len(byTrack))
	for key := range byTrack {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].track < keys[j].track
	})
	netName := func(net int) string { return d.Nets[net].Name }
	for _, key := range keys {
		strips := byTrack[key]
		sort.Slice(strips, func(a, b int) bool {
			if strips[a].Lo != strips[b].Lo {
				return strips[a].Lo < strips[b].Lo
			}
			return strips[a].Net < strips[b].Net
		})
		rules.CheckTrack(key.layer, key.track, strips, netName, rep.addf)
	}

	if rules.Colors() > 1 {
		mask := rules.AnalyzeMask(raw, d.Width, d.Height)
		rep.Errors = append(rep.Errors, mask.Errors...)
	}
}

func cellRuns(cells []int) []geom.Interval {
	if len(cells) == 0 {
		return nil
	}
	sort.Ints(cells)
	var out []geom.Interval
	cur := geom.Interval{Lo: cells[0], Hi: cells[0]}
	for _, c := range cells[1:] {
		switch {
		case c == cur.Hi || c == cur.Hi+1:
			if c > cur.Hi {
				cur.Hi = c
			}
		default:
			out = append(out, cur)
			cur = geom.Interval{Lo: c, Hi: c}
		}
	}
	return append(out, cur)
}

func pinCells(d *design.Design, g *grid.Graph, pid int) []grid.NodeID {
	sh := d.Pins[pid].Shape
	var cells []grid.NodeID
	for y := sh.Y0; y <= sh.Y1; y++ {
		for x := sh.X0; x <= sh.X1; x++ {
			cells = append(cells, g.ID(x, y, tech.M1))
		}
	}
	return cells
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// sortedIntKeys returns a map's integer keys in ascending order.
func sortedIntKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
