package core

import (
	"bytes"
	"context"
	"testing"

	"cpr/internal/design"
	"cpr/internal/synth"
	"cpr/internal/telemetry"
)

// telemetryCtx returns a context carrying a fresh tracer and metrics
// registry, the way cmd/cpr -trace or the daemon wires them in.
func telemetryCtx() (context.Context, *telemetry.Tracer) {
	tr := telemetry.New()
	ctx := telemetry.WithTracer(context.Background(), tr)
	ctx = telemetry.WithRegistry(ctx, telemetry.NewRegistry())
	return ctx, tr
}

// TestTelemetryObservationalByteIdentical is the telemetry contract's
// regression gate: for every worker count, a run with tracing and
// metrics enabled must produce an outcome byte-identical to a run with
// telemetry absent. Any span attribute read that perturbs iteration
// order, any metric observation that reorders work, shows up here as a
// byte diff.
func TestTelemetryObservationalByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow telemetry sweep skipped in short mode")
	}
	spec := synth.Spec{Name: "telem-det", Nets: 160, Width: 150, Height: 60, Seed: 202, BlockageFraction: 0.04}
	var base []byte
	for _, workers := range determinismWorkers {
		for _, traced := range []bool{false, true} {
			d := mustGenerate(t, spec)
			ctx := context.Background()
			if traced {
				ctx, _ = telemetryCtx()
			}
			res, err := RunContext(ctx, d, Options{Mode: ModeCPR, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d traced=%v: %v", workers, traced, err)
			}
			dump := dumpRunResult(t, d, res)
			if base == nil {
				base = dump
				continue
			}
			if !bytes.Equal(dump, base) {
				t.Errorf("workers=%d traced=%v: outcome differs from workers=%d untraced (len %d vs %d)",
					workers, traced, determinismWorkers[0], len(dump), len(base))
			}
		}
	}
}

// TestTelemetryObservationalRerun extends the contract to the
// incremental path: a traced Rerun must match an untraced cold run of
// the edited design byte for byte.
func TestTelemetryObservationalRerun(t *testing.T) {
	spec := synth.Spec{Name: "telem-rerun", Nets: 80, Width: 100, Height: 40, Seed: 404}
	base := mustGenerate(t, spec)
	baseRes, err := Run(base, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic generation lets us materialize the edited revision
	// twice, once per flow.
	edit := func() *design.Design {
		d := mustGenerate(t, spec)
		d.Blockages = d.Blockages[:len(d.Blockages)/2]
		return d
	}

	coldD := edit()
	cold, err := Run(coldD, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	incD := edit()
	ctx, tr := telemetryCtx()
	inc, err := RerunContext(ctx, baseRes, incD, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	got := dumpRunResult(t, incD, inc)
	want := dumpRunResult(t, coldD, cold)
	if !bytes.Equal(got, want) {
		t.Errorf("traced incremental rerun differs from untraced cold run (len %d vs %d)", len(got), len(want))
	}
	if tr.Find("run") == nil || tr.Find("pinopt") == nil {
		t.Errorf("rerun trace missing run/pinopt spans")
	}
}

// observabilityCtx wires the full observability stack the daemon
// enables: a tracer whose span boundaries feed an event bus (the flight
// recorder), a metrics registry, and a job-scoped emitter carrying the
// solver's LR-iteration and negotiation-round events.
func observabilityCtx() (context.Context, *telemetry.EventBus) {
	tr := telemetry.New()
	bus := telemetry.NewEventBus(0)
	em := telemetry.NewEmitter(bus, "det-test")
	tr.SetEmitter(em)
	ctx := telemetry.WithTracer(context.Background(), tr)
	ctx = telemetry.WithRegistry(ctx, telemetry.NewRegistry())
	ctx = telemetry.WithEmitter(ctx, em)
	return ctx, bus
}

// TestEventStreamObservationalByteIdentical extends the observational
// contract to the event layer: a run with event streaming, the flight
// recorder, and tracing all enabled must be byte-identical to a bare
// run, at every worker count. The emitter rides the solver's hot loops
// (LR iterations, negotiation rounds), so any event-induced reordering
// or allocation that perturbs results shows up here.
func TestEventStreamObservationalByteIdentical(t *testing.T) {
	spec := synth.Spec{Name: "events-det", Nets: 120, Width: 120, Height: 50, Seed: 303, BlockageFraction: 0.03}
	var base []byte
	for _, workers := range determinismWorkers {
		for _, observed := range []bool{false, true} {
			d := mustGenerate(t, spec)
			ctx := context.Background()
			var bus *telemetry.EventBus
			if observed {
				ctx, bus = observabilityCtx()
			}
			res, err := RunContext(ctx, d, Options{Mode: ModeCPR, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d observed=%v: %v", workers, observed, err)
			}
			if observed {
				var iters, spans int
				for _, ev := range bus.Snapshot() {
					switch ev.Type {
					case "lr_iteration":
						iters++
					case "span_end":
						spans++
					}
				}
				if iters == 0 || spans == 0 {
					t.Fatalf("workers=%d: recorder saw %d lr_iteration / %d span_end events, want both > 0", workers, iters, spans)
				}
			}
			dump := dumpRunResult(t, d, res)
			if base == nil {
				base = dump
				continue
			}
			if !bytes.Equal(dump, base) {
				t.Errorf("workers=%d observed=%v: outcome differs from workers=%d bare (len %d vs %d)",
					workers, observed, determinismWorkers[0], len(dump), len(base))
			}
		}
	}
}

// TestEventStreamObservationalEcoFastRerun pins the same contract on the
// eco-fast rerun path: with and without the observability stack, an
// eco-fast rerun from the same base must agree byte for byte.
func TestEventStreamObservationalEcoFastRerun(t *testing.T) {
	spec := synth.Spec{Name: "events-eco", Nets: 80, Width: 100, Height: 40, Seed: 606}
	baseRes, err := Run(mustGenerate(t, spec), Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	edit := func() *design.Design {
		d := mustGenerate(t, spec)
		d.Blockages = d.Blockages[:len(d.Blockages)/2]
		return d
	}
	rerun := func(observed bool) []byte {
		t.Helper()
		d := edit()
		ctx := context.Background()
		if observed {
			ctx, _ = observabilityCtx()
		}
		res, err := RerunContext(ctx, baseRes, d, Options{Mode: ModeCPR, RerunMode: RerunEcoFast})
		if err != nil {
			t.Fatalf("observed=%v: %v", observed, err)
		}
		return dumpRunResult(t, d, res)
	}
	bare := rerun(false)
	observed := rerun(true)
	if !bytes.Equal(bare, observed) {
		t.Errorf("observed eco-fast rerun differs from bare one (len %d vs %d)", len(observed), len(bare))
	}
}

// TestTraceGoldenZeroedTimes pins the trace layout: two sequential runs
// of the same design must export byte-identical traces once timestamps
// are zeroed, in both the Chrome and raw JSON encodings. (Sequential
// because span IDs follow creation order; the *results* are identical
// at every worker count — see TestTelemetryObservationalByteIdentical —
// but concurrent span creation order is scheduler-dependent.)
func TestTraceGoldenZeroedTimes(t *testing.T) {
	spec := synth.Spec{Name: "telem-golden", Nets: 60, Width: 80, Height: 40, Seed: 505}
	export := func() (chrome, raw []byte) {
		t.Helper()
		d := mustGenerate(t, spec)
		ctx, tr := telemetryCtx()
		if _, err := RunContext(ctx, d, Options{Mode: ModeCPR, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		var cb, jb bytes.Buffer
		if err := tr.WriteChromeTrace(&cb, telemetry.ExportOptions{ZeroTimes: true}); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSON(&jb, telemetry.ExportOptions{ZeroTimes: true}); err != nil {
			t.Fatal(err)
		}
		return cb.Bytes(), jb.Bytes()
	}

	chrome1, raw1 := export()
	chrome2, raw2 := export()
	if !bytes.Equal(chrome1, chrome2) {
		t.Errorf("zero-time Chrome traces differ across identical runs")
	}
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("zero-time JSON traces differ across identical runs")
	}
	for _, name := range []string{"run", "pinopt", "panel", "generate", "conflicts", "assign", "route"} {
		if !bytes.Contains(chrome1, []byte(`"name": "`+name+`"`)) {
			t.Errorf("Chrome trace missing %q span", name)
		}
	}
	if !bytes.Contains(chrome1, []byte(`"ts": 0`)) || bytes.Contains(chrome1, []byte(`"ts": 1`)) {
		t.Errorf("ZeroTimes left nonzero timestamps in Chrome trace")
	}
}
