package ilp

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"cpr/internal/lp"
)

// bruteForce exhaustively solves a small binary ILP, returning the optimal
// objective and whether any feasible point exists.
func bruteForce(p *Problem) (best float64, found bool) {
	n := p.NumVars
	best = math.Inf(-1)
	x := make([]bool, n)
	for mask := 0; mask < 1<<n; mask++ {
		for j := 0; j < n; j++ {
			x[j] = mask&(1<<j) != 0
		}
		if !feasible(p, x) {
			continue
		}
		found = true
		if obj := objectiveOf(p, x); obj > best {
			best = obj
		}
	}
	return best, found
}

func TestKnapsack(t *testing.T) {
	// max 10a + 6b + 4c s.t. a+b+c <= 2 and 5a+4b+3c <= 8.
	p := NewProblem(3)
	p.Objective = []float64{10, 6, 4}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, lp.LE, 2)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 5}, {Var: 1, Coef: 4}, {Var: 2, Coef: 3}}, lp.LE, 8)
	res := Solve(p, Config{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-14) > 1e-9 { // a + c = 10 + 4
		t.Errorf("objective = %g, want 14", res.Objective)
	}
	if !res.X[0] || res.X[1] || !res.X[2] {
		t.Errorf("x = %v, want [true false true]", res.X)
	}
}

func TestAssignmentShapedILP(t *testing.T) {
	// Pin-access shape: each "pin" picks exactly one interval, conflicts
	// exclude pairs. Fractional LP optimum forces actual branching when
	// profits collide.
	p := NewProblem(4)
	p.Objective = []float64{5, 3, 5, 3}
	p.AddUnitBounds = false
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.EQ, 1)
	p.AddConstraint([]lp.Term{{Var: 2, Coef: 1}, {Var: 3, Coef: 1}}, lp.EQ, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 2, Coef: 1}}, lp.LE, 1)
	res := Solve(p, Config{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-8) > 1e-9 { // 5 + 3
		t.Errorf("objective = %g, want 8", res.Objective)
	}
}

func TestInfeasibleILP(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.EQ, 1)
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}}, lp.EQ, 1)
	p.AddConstraint([]lp.Term{{Var: 1, Coef: 1}}, lp.EQ, 1)
	res := Solve(p, Config{})
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestWarmStart(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{2, 1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.LE, 1)
	warm := []bool{false, true}
	res := Solve(p, Config{InitialSolution: warm})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-2) > 1e-9 {
		t.Errorf("objective = %g, want 2 (warm start must not cap the search)", res.Objective)
	}
}

func TestInfeasibleWarmStartIgnored(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.LE, 1)
	res := Solve(p, Config{InitialSolution: []bool{true, true}}) // violates constraint
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-1) > 1e-9 {
		t.Errorf("objective = %g, want 1", res.Objective)
	}
}

func TestNodeLimit(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.LE, 1)
	res := Solve(p, Config{MaxNodes: 1})
	if res.Status != Feasible && res.Status != Limit && res.Status != Optimal {
		t.Fatalf("unexpected status %v", res.Status)
	}
	if res.Nodes > 1 {
		t.Errorf("nodes = %d, want <= 1", res.Nodes)
	}
}

func TestTimeLimit(t *testing.T) {
	// A 1ns budget must terminate immediately but still return cleanly.
	p := NewProblem(6)
	for j := range p.Objective {
		p.Objective[j] = float64(j + 1)
	}
	for a := 0; a < 6; a++ {
		for b := a + 1; b < 6; b++ {
			p.AddConstraint([]lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, lp.LE, 1)
		}
	}
	res := Solve(p, Config{TimeLimit: time.Nanosecond})
	if res.Status != Limit && res.Status != Feasible {
		t.Fatalf("status = %v, want a limit status", res.Status)
	}
}

func TestEmptyProblem(t *testing.T) {
	p := NewProblem(0)
	res := Solve(p, Config{})
	if res.Status != Optimal || res.Objective != 0 {
		t.Fatalf("empty: %+v", res)
	}
}

func TestAllVarsFree(t *testing.T) {
	// No constraints: optimum picks every positive-profit variable.
	p := NewProblem(4)
	p.Objective = []float64{3, -2, 0, 5}
	res := Solve(p, Config{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if math.Abs(res.Objective-8) > 1e-9 {
		t.Errorf("objective = %g, want 8", res.Objective)
	}
	if !res.X[0] || res.X[1] || !res.X[3] {
		t.Errorf("x = %v", res.X)
	}
}

// TestRandomAgainstBruteForce cross-checks branch and bound against
// exhaustive enumeration on random small assignment-flavoured ILPs.
func TestRandomAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(9) // up to 10 vars
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.Objective[j] = float64(rng.Intn(21) - 5)
		}
		// Random partition into "pins" with equality rows.
		perm := rng.Perm(n)
		i := 0
		for i < n {
			k := 1 + rng.Intn(3)
			if i+k > n {
				k = n - i
			}
			var terms []lp.Term
			for _, v := range perm[i : i+k] {
				terms = append(terms, lp.Term{Var: v, Coef: 1})
			}
			p.AddConstraint(terms, lp.EQ, 1)
			i += k
		}
		// Random conflict rows.
		for c := rng.Intn(4); c > 0; c-- {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			p.AddConstraint([]lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}}, lp.LE, 1)
		}
		res := Solve(p, Config{})
		want, found := bruteForce(p)
		if !found {
			if res.Status != Infeasible {
				t.Fatalf("trial %d: status %v, brute force says infeasible", trial, res.Status)
			}
			continue
		}
		if res.Status != Optimal {
			t.Fatalf("trial %d: status %v, want optimal", trial, res.Status)
		}
		if math.Abs(res.Objective-want) > 1e-6 {
			t.Fatalf("trial %d: objective %g, brute force %g", trial, res.Objective, want)
		}
		if !feasible(p, res.X) {
			t.Fatalf("trial %d: returned infeasible x", trial)
		}
	}
}

func TestRootBoundDominatesOptimum(t *testing.T) {
	p := NewProblem(3)
	p.Objective = []float64{4, 3, 2}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}, {Var: 2, Coef: 1}}, lp.LE, 2)
	res := Solve(p, Config{})
	if res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.RootBound < res.Objective-1e-9 {
		t.Errorf("root bound %g below optimum %g", res.RootBound, res.Objective)
	}
}

func TestStatusString(t *testing.T) {
	if Optimal.String() != "optimal" || Feasible.String() != "feasible" ||
		Infeasible.String() != "infeasible" || Limit.String() != "limit" {
		t.Error("status strings wrong")
	}
}

func TestDeadlinePropagatesToLP(t *testing.T) {
	// With an expired deadline the solver must come back immediately,
	// reporting the warm-start incumbent if one was provided.
	p := NewProblem(4)
	p.Objective = []float64{4, 3, 2, 1}
	p.AddConstraint([]lp.Term{{Var: 0, Coef: 1}, {Var: 1, Coef: 1}}, lp.LE, 1)
	p.AddConstraint([]lp.Term{{Var: 2, Coef: 1}, {Var: 3, Coef: 1}}, lp.LE, 1)
	warm := []bool{false, true, false, true}
	res := Solve(p, Config{TimeLimit: time.Nanosecond, InitialSolution: warm})
	if res.Status != Feasible && res.Status != Limit && res.Status != Optimal {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Status == Feasible && res.Objective < 4-1e-9 {
		t.Errorf("incumbent objective %g below warm start 4", res.Objective)
	}
}
