package tech

import (
	"fmt"
	"strings"
	"testing"
)

func TestParseEngine(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"", EngineSADP},
		{"sadp", EngineSADP},
		{"lele", EngineLELE},
		{"tpl", EngineTPL},
	} {
		got, err := ParseEngine(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseEngine(%q) = %q, %v; want %q, nil", tc.in, got, err, tc.want)
		}
	}
	for _, bad := range []string{"SADP", "sadp ", "litho", "lele2", "quad"} {
		if _, err := ParseEngine(bad); err == nil {
			t.Errorf("ParseEngine(%q) accepted an unknown engine", bad)
		}
	}
}

func TestPatterningSpecRoundTrip(t *testing.T) {
	cases := []Patterning{
		{},
		{Engine: EngineSADP},
		{Engine: EngineLELE, SameMaskSpacing: 4},
		{Engine: EngineTPL, ColorSpacing: 3, StitchPenalty: 2},
		{Engine: EngineSADP, CutSpacing: 3, MergeTolerance: 1},
	}
	for _, p := range cases {
		spec := p.Spec()
		got, err := ParsePatterning(strings.Fields(spec))
		if err != nil {
			t.Fatalf("ParsePatterning(%q): %v", spec, err)
		}
		// After one Spec/Parse cycle the empty engine name canonicalizes
		// to "sadp"; from then on the representation is a fixpoint.
		if got.Spec() != spec && p.Engine != "" {
			t.Errorf("Spec round-trip changed %q to %q", spec, got.Spec())
		}
		if again, err := ParsePatterning(strings.Fields(got.Spec())); err != nil || again != got {
			t.Errorf("Spec not a fixpoint: %v re-parsed to %v (err %v)", got, again, err)
		}
	}
}

func TestParsePatterningFailsClosed(t *testing.T) {
	for _, tc := range [][]string{
		{"sadp"},                               // wrong arity
		{"sadp", "0", "0", "0", "0"},           // wrong arity
		{"sadp", "0", "0", "0", "0", "0", "0"}, // wrong arity
		{"quad", "0", "0", "0", "0", "0"},      // unknown engine
		{"sadp", "x", "0", "0", "0", "0"},      // malformed int
		{"sadp", "0", "0", "0", "0", "1.5"},    // malformed int
		{"lele", "-1", "0", "0", "0", "0"},     // negative parameter
		{"tpl", "0", "0", "0", "0", "-2"},      // negative parameter
	} {
		if _, err := ParsePatterning(tc); err == nil {
			t.Errorf("ParsePatterning(%v) accepted a malformed record", tc)
		}
	}
}

func TestPatterningResolvedDefaults(t *testing.T) {
	r := Patterning{}.Resolved()
	want := Patterning{Engine: EngineSADP, SameMaskSpacing: 3, ColorSpacing: 2,
		StitchPenalty: 1, CutSpacing: 2, MergeTolerance: 0}
	if r != want {
		t.Fatalf("Resolved zero Patterning = %+v, want %+v", r, want)
	}
	// Explicit values survive resolution untouched.
	p := Patterning{Engine: EngineTPL, SameMaskSpacing: 5, ColorSpacing: 4,
		StitchPenalty: 7, CutSpacing: 6, MergeTolerance: 2}
	if p.Resolved() != p {
		t.Fatalf("Resolved explicit Patterning = %+v, want unchanged", p.Resolved())
	}
}

// TestSADPMatchesLegacyFormulas pins the sadp engine to the exact margin
// arithmetic the router and verifier used before the engine layer: the
// byte-identity contract depends on these never drifting.
func TestSADPMatchesLegacyFormulas(t *testing.T) {
	d := Default()
	r := RulesFor(d)
	ext, spacing, minLen := d.LineEndExtension, d.LineEndSpacing, d.MinLineLen
	if r.Name() != EngineSADP || r.Colors() != 1 {
		t.Fatalf("default engine = %s/%d colors, want sadp/1", r.Name(), r.Colors())
	}
	if got, want := r.ClearanceMargin(), ext+(spacing+1)/2; got != want {
		t.Errorf("ClearanceMargin = %d, want %d", got, want)
	}
	if got, want := r.AvoidMargin(), ext+spacing; got != want {
		t.Errorf("AvoidMargin = %d, want %d", got, want)
	}
	if got, want := r.SequentialClearance(), 2*ext+spacing; got != want {
		t.Errorf("SequentialClearance = %d, want %d", got, want)
	}
	if got, want := r.RuleReach(), ext+minLen+spacing+2; got != want {
		t.Errorf("RuleReach = %d, want %d", got, want)
	}
	if r.ConflictRadius() != 0 || r.ConflictWeight() != 0 {
		t.Errorf("sadp conflict pricing = (%d, %g), want disabled (0, 0)",
			r.ConflictRadius(), r.ConflictWeight())
	}
	if r.WireCost() != d.BaseCost || r.ViaCost(false) != d.ViaCost || r.ViaCost(true) != d.ForbiddenViaCost {
		t.Errorf("grid costs = (%d, %d, %d), want (%d, %d, %d)",
			r.WireCost(), r.ViaCost(false), r.ViaCost(true),
			d.BaseCost, d.ViaCost, d.ForbiddenViaCost)
	}
}

func engineFor(t *testing.T, p Patterning) RuleEngine {
	t.Helper()
	d := Default()
	d.Patterning = p
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return RulesFor(d)
}

func TestExtendSpan(t *testing.T) {
	r := RulesFor(Default()) // ext 1, minLen 2
	for _, tc := range []struct {
		lo, hi, limit  int
		wantLo, wantHi int
	}{
		{5, 7, 20, 4, 8},     // plain extension
		{0, 0, 20, 0, 1},     // clamp at lo, grow hi for min length
		{19, 19, 20, 18, 19}, // clamp at hi, grow lo
		{0, 19, 20, 0, 19},   // already spans the track
	} {
		lo, hi := r.ExtendSpan(tc.lo, tc.hi, tc.limit)
		if lo != tc.wantLo || hi != tc.wantHi {
			t.Errorf("ExtendSpan(%d, %d, %d) = (%d, %d), want (%d, %d)",
				tc.lo, tc.hi, tc.limit, lo, hi, tc.wantLo, tc.wantHi)
		}
	}
}

func TestLELETrackRules(t *testing.T) {
	// Default tech: diff-mask (adjacent tip) spacing is LineEndSpacing=1;
	// same-mask (next-nearest tip) spacing is set to 5 so a window exists
	// where both adjacent gaps pass and only the same-mask rule fires
	// (every strip at least MinLineLen=2 long so no length errors mix in):
	// gap(a,b) = gap(b,c) = 1 forces gap(a,c) = 4 < 5.
	r := engineFor(t, Patterning{Engine: EngineLELE, SameMaskSpacing: 5})

	legal := []Seg{
		{Net: 0, Layer: M2, Track: 4, Lo: 0, Hi: 4},
		{Net: 1, Layer: M2, Track: 4, Lo: 6, Hi: 7},   // gap 1 vs net 0
		{Net: 2, Layer: M2, Track: 4, Lo: 13, Hi: 17}, // gap 5 vs net 1, gap 8 vs net 0
	}
	hits := map[int]int{}
	r.TrackViolations(legal, func(net int) { hits[net]++ })
	if len(hits) != 0 {
		t.Fatalf("legal lele track flagged: %v", hits)
	}

	diffViolation := []Seg{
		{Net: 0, Layer: M2, Track: 4, Lo: 0, Hi: 4},
		{Net: 1, Layer: M2, Track: 4, Lo: 5, Hi: 8}, // gap 0 < 1: diff-mask violation
	}
	hits = map[int]int{}
	r.TrackViolations(diffViolation, func(net int) { hits[net]++ })
	if hits[0] == 0 || hits[1] == 0 {
		t.Fatalf("diff-mask violation not charged to both nets: %v", hits)
	}

	sameViolation := []Seg{
		{Net: 0, Layer: M2, Track: 4, Lo: 0, Hi: 4},
		{Net: 1, Layer: M2, Track: 4, Lo: 6, Hi: 7},  // gap 1 vs net 0: OK
		{Net: 2, Layer: M2, Track: 4, Lo: 9, Hi: 12}, // gap 1 vs net 1: OK; gap 4 vs net 0: same-mask violation
	}
	hits = map[int]int{}
	r.TrackViolations(sameViolation, func(net int) { hits[net]++ })
	if hits[0] == 0 || hits[2] == 0 || hits[1] != 0 {
		t.Fatalf("same-mask violation should charge nets 0 and 2 only: %v", hits)
	}

	var msgs []string
	r.CheckTrack(M2, 4, sameViolation,
		func(n int) string { return map[int]string{0: "a", 1: "b", 2: "c"}[n] },
		func(format string, args ...interface{}) {
			msgs = append(msgs, fmt.Sprintf(format, args...))
		})
	if len(msgs) != 1 || !strings.Contains(msgs[0], "lele same-mask tip spacing violation") {
		t.Fatalf("CheckTrack messages = %v, want exactly one same-mask violation", msgs)
	}
}

func TestLELEAnalyzeMaskAlternates(t *testing.T) {
	r := engineFor(t, Patterning{Engine: EngineLELE})
	// Three well-spaced strips on one track alternate 0, 1, 0.
	segs := []Seg{
		{Net: 0, Layer: M2, Track: 2, Lo: 2, Hi: 6},
		{Net: 1, Layer: M2, Track: 2, Lo: 12, Hi: 16},
		{Net: 2, Layer: M2, Track: 2, Lo: 22, Hi: 26},
	}
	rep := r.AnalyzeMask(segs, 40, 20)
	if rep.Engine != EngineLELE || rep.Colors != 2 {
		t.Fatalf("report engine/colors = %s/%d", rep.Engine, rep.Colors)
	}
	if rep.ColorOf[0] != 0 || rep.ColorOf[1] != 1 || rep.ColorOf[2] != 0 {
		t.Fatalf("ColorOf = %v, want [0 1 0]", rep.ColorOf)
	}
	if rep.Uncolorable != 0 || rep.Conflicts != 0 {
		t.Fatalf("clean decomposition reported %d uncolorable, %d conflicts",
			rep.Uncolorable, rep.Conflicts)
	}
}

func TestTPLAnalyzeMask(t *testing.T) {
	// ColorSpacing 3 → conflicts couple tracks up to 2 apart, so three
	// overlapping strips on tracks 4, 5, 6 are mutually conflicting and
	// must take the three distinct colors.
	r := engineFor(t, Patterning{Engine: EngineTPL, ColorSpacing: 3})
	segs := []Seg{
		{Net: 0, Layer: M2, Track: 4, Lo: 5, Hi: 10},
		{Net: 1, Layer: M2, Track: 5, Lo: 5, Hi: 10},
		{Net: 2, Layer: M2, Track: 6, Lo: 5, Hi: 10},
	}
	rep := r.AnalyzeMask(segs, 40, 20)
	if rep.Uncolorable != 0 {
		t.Fatalf("3 mutual conflicts should 3-color, got %d uncolorable", rep.Uncolorable)
	}
	seen := map[int]bool{}
	for i, c := range rep.ColorOf {
		if c < 0 || c > 2 || seen[c] {
			t.Fatalf("ColorOf[%d] = %d (all = %v), want 3 distinct colors", i, c, rep.ColorOf)
		}
		seen[c] = true
	}
	// Same-net strips never conflict with each other.
	same := []Seg{
		{Net: 0, Layer: M2, Track: 4, Lo: 5, Hi: 10},
		{Net: 0, Layer: M2, Track: 5, Lo: 5, Hi: 10},
	}
	if rep := r.AnalyzeMask(same, 40, 20); rep.Conflicts != 0 {
		t.Fatalf("same-net strips conflict: %d edges", rep.Conflicts)
	}
}

func TestTPLUncolorableAndStitch(t *testing.T) {
	r := engineFor(t, Patterning{Engine: EngineTPL, ColorSpacing: 2})
	// Greedy order is (layer, track, lo), so everything below is colored
	// before net 0's strip on track 5. At net 0's turn the neighbourhood
	// holds all three colors — track 4 carries nets 2 and 3 (overlapping
	// each other, hence colors 0 and 1), and net 1 sits just left on the
	// same track (forced to color 2 by conflicting with both) — and the
	// strip is at minimum length, so no stitch position exists either.
	segs := []Seg{
		{Net: 2, Layer: M2, Track: 4, Lo: 6, Hi: 9},
		{Net: 3, Layer: M2, Track: 4, Lo: 9, Hi: 12},
		{Net: 1, Layer: M2, Track: 5, Lo: 5, Hi: 7},
		{Net: 0, Layer: M2, Track: 5, Lo: 10, Hi: 11},
	}
	rep := r.AnalyzeMask(segs, 40, 20)
	if rep.Uncolorable != 1 {
		t.Fatalf("boxed-in minimum-length strip: %d uncolorable (colors %v), want 1",
			rep.Uncolorable, rep.ColorOf)
	}
	if len(rep.Errors) == 0 || !strings.Contains(rep.Errors[0], "tpl: uncolorable segment") {
		t.Fatalf("uncolorable segment produced no hard error: %v", rep.Errors)
	}

	// Stitch case (ColorSpacing 3 → radius 2): net 0's long strip on
	// track 5 sees colors 0 and 1 on its left (nets 3, 4) and color 2 on
	// its right — net 5, driven to color 2 by two track-2 enablers that
	// are outside net 0's own radius. The whole span has no free color,
	// but a split at the cluster boundary leaves color 2 free on the left
	// and color 0 free on the right: exactly one stitch, nothing
	// uncolorable.
	r3 := engineFor(t, Patterning{Engine: EngineTPL, ColorSpacing: 3})
	long := []Seg{
		{Net: 1, Layer: M2, Track: 2, Lo: 21, Hi: 29},
		{Net: 2, Layer: M2, Track: 2, Lo: 25, Hi: 33},
		{Net: 3, Layer: M2, Track: 4, Lo: 1, Hi: 9},
		{Net: 4, Layer: M2, Track: 4, Lo: 6, Hi: 14},
		{Net: 5, Layer: M2, Track: 4, Lo: 21, Hi: 29},
		{Net: 0, Layer: M2, Track: 5, Lo: 1, Hi: 30},
	}
	repL := r3.AnalyzeMask(long, 40, 20)
	if repL.Uncolorable != 0 || repL.Stitches != 1 {
		t.Fatalf("stitch squeeze: %d uncolorable, %d stitches (colors %v), want 0 and 1",
			repL.Uncolorable, repL.Stitches, repL.ColorOf)
	}
}

func TestSpanDist(t *testing.T) {
	for _, tc := range []struct {
		alo, ahi, blo, bhi, want int
	}{
		{0, 5, 3, 8, 0},  // overlap
		{0, 5, 5, 8, 0},  // touch
		{0, 5, 6, 8, 1},  // abut
		{0, 5, 9, 12, 4}, // gap
		{9, 12, 0, 5, 4}, // symmetric
	} {
		if got := spanDist(tc.alo, tc.ahi, tc.blo, tc.bhi); got != tc.want {
			t.Errorf("spanDist(%d,%d,%d,%d) = %d, want %d",
				tc.alo, tc.ahi, tc.blo, tc.bhi, got, tc.want)
		}
	}
}

func TestRulesForPanicsOnUnvalidatedEngine(t *testing.T) {
	d := Default()
	d.Patterning.Engine = "quad"
	defer func() {
		if recover() == nil {
			t.Fatal("RulesFor accepted an unvalidated engine name")
		}
	}()
	RulesFor(d)
}
