// Package nondeterm forbids nondeterministic inputs inside the
// result-producing packages of the pipeline. The cprd cache contract
// (PR 2) assumes an optimization result is a pure function of the
// design and the options fingerprint; a call to the wall clock, the
// process environment, a random source, or the GOMAXPROCS value inside
// pinaccess, conflict, assign, lagrange, router, or core could break
// that silently. Driver-layer packages (cmd/..., internal/jobs) may use
// them freely.
//
// Wall-clock reads that feed only elapsed-time metrics are legitimate;
// such sites carry //cprlint:nondeterm comments with the justification.
package nondeterm

import (
	"go/ast"
	"strings"

	"cpr/internal/analysis"
)

// Analyzer is the nondeterm pass.
var Analyzer = &analysis.Analyzer{
	Name: "nondeterm",
	Doc:  "forbids time.Now, math/rand, os.Getenv, and GOMAXPROCS-dependent calls in result-producing packages (pinaccess, conflict, assign, lagrange, router, core)",
	Run:  run,
}

// restricted are the result-producing packages: everything a cache key
// of design-hash + options must fully determine.
var restricted = []string{
	"/internal/pinaccess",
	"/internal/conflict",
	"/internal/assign",
	"/internal/lagrange",
	"/internal/router",
	"/internal/core",
}

// allowed are driver-layer packages where wall clocks and environment
// reads are part of the job (explicit, although they are already
// outside the restricted set).
var allowed = []string{"/cmd/", "/internal/jobs"}

// forbiddenFuncs maps package path to the forbidden function names; an
// empty list forbids the whole package.
var forbiddenFuncs = map[string][]string{
	"time":         {"Now", "Since", "Until"},
	"os":           {"Getenv", "LookupEnv", "Environ"},
	"runtime":      {"GOMAXPROCS", "NumCPU"},
	"math/rand":    {},
	"math/rand/v2": {},
}

func run(pass *analysis.Pass) error {
	path := "/" + pass.Pkg.Path()
	for _, a := range allowed {
		if strings.Contains(path, a) || strings.HasPrefix(pass.Pkg.Path(), strings.TrimPrefix(a, "/")) {
			return nil
		}
	}
	scoped := false
	for _, r := range restricted {
		if strings.Contains(path, r) {
			scoped = true
			break
		}
	}
	if !scoped {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.FuncOf(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			names, ok := forbiddenFuncs[fn.Pkg().Path()]
			if !ok {
				return true
			}
			banned := len(names) == 0
			for _, name := range names {
				if fn.Name() == name {
					banned = true
					break
				}
			}
			if banned {
				pass.Reportf(call.Pos(),
					"call to %s.%s in result-producing package %s: results must be a pure function of the design and options (annotate //cprlint:nondeterm <reason> if this cannot reach a result)",
					fn.Pkg().Path(), fn.Name(), pass.Pkg.Path())
			}
			return true
		})
	}
	return nil
}
