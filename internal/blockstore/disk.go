package blockstore

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Disk is a disk-backed block store, so a daemon's content-addressed
// caches survive restarts. Layout under the root directory:
//
//	<root>/<key[:2]>/<key>   one file per block, sharded by key prefix
//	<root>/tmp/              staging area for atomic writes
//
// Writes are atomic: the block is staged in tmp/ and renamed into its
// shard, so a crash mid-Put leaves either the old block or none — never
// a torn one (stale staging files are swept on Open). When MaxBytes is
// set, a Put that pushes the store past the bound collects
// least-recently-used unpinned blocks until it fits; recency is tracked
// in memory and seeded from file modification times on Open.
type Disk struct {
	root     string
	maxBytes int64

	mu     sync.Mutex
	blocks map[string]*list.Element
	order  *list.List // front = most recently used
	bytes  int64
	pins   pinSet

	hits, misses, puts, evictions int64
}

// DiskOptions tunes OpenDisk.
type DiskOptions struct {
	// MaxBytes bounds the total payload size; <= 0 means unbounded.
	MaxBytes int64
}

type diskEntry struct {
	key  string
	size int64
}

// OpenDisk opens (creating if needed) a disk store rooted at dir and
// indexes the blocks already present, oldest first in the GC order.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	d := &Disk{
		root:     dir,
		maxBytes: opts.MaxBytes,
		blocks:   make(map[string]*list.Element),
		order:    list.New(),
		pins:     make(pinSet),
	}
	if err := os.MkdirAll(d.tmpDir(), 0o755); err != nil {
		return nil, fmt.Errorf("blockstore: creating %s: %w", d.tmpDir(), err)
	}
	// Sweep staging files from a previous crash; they were never visible.
	tmps, err := os.ReadDir(d.tmpDir())
	if err != nil {
		return nil, fmt.Errorf("blockstore: reading %s: %w", d.tmpDir(), err)
	}
	for _, e := range tmps {
		_ = os.Remove(filepath.Join(d.tmpDir(), e.Name()))
	}
	if err := d.scan(); err != nil {
		return nil, err
	}
	return d, nil
}

// Root returns the store's root directory.
func (d *Disk) Root() string { return d.root }

func (d *Disk) tmpDir() string { return filepath.Join(d.root, "tmp") }

func (d *Disk) blockPath(key string) string {
	return filepath.Join(d.root, key[:2], key)
}

// scan indexes the blocks already on disk, ordered by modification time
// so the GC collects the stalest blocks of a previous daemon run first.
func (d *Disk) scan() error {
	shards, err := os.ReadDir(d.root)
	if err != nil {
		return fmt.Errorf("blockstore: reading %s: %w", d.root, err)
	}
	type found struct {
		key   string
		size  int64
		mtime time.Time
	}
	var all []found
	for _, shard := range shards {
		name := shard.Name()
		if !shard.IsDir() || len(name) != 2 || strings.Trim(name, "0123456789abcdef") != "" {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(d.root, name))
		if err != nil {
			return fmt.Errorf("blockstore: reading shard %s: %w", name, err)
		}
		for _, e := range entries {
			key := e.Name()
			if !ValidKey(key) || key[:2] != name {
				continue
			}
			info, err := e.Info()
			if err != nil {
				continue
			}
			all = append(all, found{key: key, size: info.Size(), mtime: info.ModTime()})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if !all[i].mtime.Equal(all[j].mtime) {
			return all[i].mtime.Before(all[j].mtime)
		}
		return all[i].key < all[j].key
	})
	for _, f := range all {
		d.blocks[f.key] = d.order.PushFront(&diskEntry{key: f.key, size: f.size})
		d.bytes += f.size
	}
	return nil
}

// Put atomically stores a block under key, replacing any existing one.
func (d *Disk) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(d.tmpDir(), key+".*")
	if err != nil {
		return fmt.Errorf("blockstore: staging %s: %w", key, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		_ = os.Remove(tmpName)
		return fmt.Errorf("blockstore: writing %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("blockstore: writing %s: %w", key, err)
	}
	if err := os.MkdirAll(filepath.Dir(d.blockPath(key)), 0o755); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("blockstore: creating shard for %s: %w", key, err)
	}

	// Commit outside the lock: the rename is atomic at the filesystem
	// level, and holding d.mu across disk I/O would stall every reader
	// behind one slow write. Concurrent Puts of the same key each commit
	// a complete block; the index update below is what orders them.
	if err := os.Rename(tmpName, d.blockPath(key)); err != nil {
		_ = os.Remove(tmpName)
		return fmt.Errorf("blockstore: committing %s: %w", key, err)
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	if el, ok := d.blocks[key]; ok {
		e := el.Value.(*diskEntry)
		d.bytes += int64(len(data)) - e.size
		e.size = int64(len(data))
		d.order.MoveToFront(el)
	} else {
		d.blocks[key] = d.order.PushFront(&diskEntry{key: key, size: int64(len(data))})
		d.bytes += int64(len(data))
	}
	d.puts++
	d.gcLocked()
	return nil
}

// Get returns the block stored under key, or ErrNotFound.
func (d *Disk) Get(key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	d.mu.Lock()
	el, ok := d.blocks[key]
	if ok {
		d.order.MoveToFront(el)
	}
	d.mu.Unlock()
	if !ok {
		d.mu.Lock()
		d.misses++
		d.mu.Unlock()
		return nil, ErrNotFound
	}
	data, err := os.ReadFile(d.blockPath(key))
	if err != nil {
		// The file vanished outside the store's control (manual cleanup,
		// external GC): drop the index entry and report a miss.
		d.mu.Lock()
		if el, ok := d.blocks[key]; ok {
			d.removeIndexLocked(el)
		}
		d.misses++
		d.mu.Unlock()
		if os.IsNotExist(err) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("blockstore: reading %s: %w", key, err)
	}
	d.mu.Lock()
	d.hits++
	d.mu.Unlock()
	return data, nil
}

// Has reports presence without touching counters or the GC order.
func (d *Disk) Has(key string) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.blocks[key]
	return ok, nil
}

// Delete removes the block under key; absent keys are a no-op.
func (d *Disk) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	el, ok := d.blocks[key]
	if !ok {
		return nil
	}
	//cprlint:lockheld file unlink and index removal must be atomic under d.mu or a racing Get could resurrect a deleted key; unlinking a local file is bounded work
	if err := os.Remove(d.blockPath(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("blockstore: deleting %s: %w", key, err)
	}
	d.removeIndexLocked(el)
	return nil
}

// Pin marks key uncollectable until a matching Unpin.
func (d *Disk) Pin(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pins.pin(key)
}

// Unpin releases one pin reference.
func (d *Disk) Unpin(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.pins.unpin(key)
}

// Stats snapshots the counters.
func (d *Disk) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return Stats{
		Blocks:    len(d.blocks),
		Bytes:     d.bytes,
		Hits:      d.hits,
		Misses:    d.misses,
		Puts:      d.puts,
		Evictions: d.evictions,
		Pinned:    len(d.pins),
	}
}

// gcLocked collects least-recently-used unpinned blocks until the store
// fits MaxBytes; pinned and in-flight keys are never collected, so the
// store may overshoot while everything old is pinned. Callers hold d.mu.
func (d *Disk) gcLocked() {
	if d.maxBytes <= 0 {
		return
	}
	for el := d.order.Back(); el != nil && d.bytes > d.maxBytes; {
		prev := el.Prev()
		e := el.Value.(*diskEntry)
		if !d.pins.pinned(e.key) {
			//cprlint:lockheld eviction must unlink the file and drop its index entry atomically under d.mu; unlinking a local file is bounded work
			if err := os.Remove(d.blockPath(e.key)); err == nil || os.IsNotExist(err) {
				d.removeIndexLocked(el)
				d.evictions++
			}
		}
		el = prev
	}
}

// removeIndexLocked unlinks one index entry; callers hold d.mu.
func (d *Disk) removeIndexLocked(el *list.Element) {
	e := el.Value.(*diskEntry)
	d.order.Remove(el)
	delete(d.blocks, e.key)
	d.bytes -= e.size
}
