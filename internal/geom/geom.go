// Package geom provides the elementary integer geometry used throughout the
// pin access optimizer and router: 1-D closed intervals on routing tracks,
// 2-D rectangles on a layer, and 3-D grid points.
//
// All coordinates are integer grid units. Intervals and rectangles are
// closed on both ends: Interval{2, 5} covers grid columns 2, 3, 4 and 5.
package geom

import "fmt"

// Interval is a closed 1-D span [Lo, Hi] of grid columns (or rows) along a
// routing track. An interval with Hi < Lo is empty.
type Interval struct {
	Lo, Hi int
}

// EmptyInterval returns a canonical empty interval.
func EmptyInterval() Interval { return Interval{0, -1} }

// MakeInterval returns the interval covering both a and b regardless of
// argument order.
func MakeInterval(a, b int) Interval {
	if a > b {
		a, b = b, a
	}
	return Interval{a, b}
}

// Empty reports whether the interval covers no grid points.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

// Len returns the number of grid points covered by the interval.
func (iv Interval) Len() int {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// Contains reports whether x lies within the interval.
func (iv Interval) Contains(x int) bool { return !iv.Empty() && iv.Lo <= x && x <= iv.Hi }

// ContainsInterval reports whether other lies entirely within iv.
// An empty other is contained in any non-empty iv.
func (iv Interval) ContainsInterval(other Interval) bool {
	if iv.Empty() {
		return false
	}
	if other.Empty() {
		return true
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Overlaps reports whether the two intervals share at least one grid point.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Intersect returns the common span of the two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	if hi < lo {
		return EmptyInterval()
	}
	return Interval{lo, hi}
}

// Union returns the smallest interval covering both intervals. Union with an
// empty interval returns the other operand.
func (iv Interval) Union(other Interval) Interval {
	if iv.Empty() {
		return other
	}
	if other.Empty() {
		return iv
	}
	lo, hi := iv.Lo, iv.Hi
	if other.Lo < lo {
		lo = other.Lo
	}
	if other.Hi > hi {
		hi = other.Hi
	}
	return Interval{lo, hi}
}

// Clip returns iv clipped to bound.
func (iv Interval) Clip(bound Interval) Interval { return iv.Intersect(bound) }

// Touches reports whether the two intervals overlap or are directly adjacent
// (no free grid point between them). Adjacent unidirectional metal strips
// merge into one strip, so adjacency matters for line-end rules.
func (iv Interval) Touches(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Lo <= other.Hi+1 && other.Lo <= iv.Hi+1
}

func (iv Interval) String() string {
	if iv.Empty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}

// Point is a 3-D routing grid coordinate. Z is the layer index (0 = M1).
type Point struct {
	X, Y, Z int
}

func (p Point) String() string { return fmt.Sprintf("(%d,%d,L%d)", p.X, p.Y, p.Z) }

// ManhattanXY returns the Manhattan distance between the XY projections of
// two points, ignoring the layer.
func ManhattanXY(a, b Point) int {
	return abs(a.X-b.X) + abs(a.Y-b.Y)
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// Rect is a closed 2-D rectangle [X0,X1]×[Y0,Y1] in grid units.
// A rectangle with X1 < X0 or Y1 < Y0 is empty.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// MakeRect returns the rectangle with the given corners normalized so that
// X0 <= X1 and Y0 <= Y1.
func MakeRect(x0, y0, x1, y1 int) Rect {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	return Rect{x0, y0, x1, y1}
}

// Empty reports whether the rectangle covers no grid points.
func (r Rect) Empty() bool { return r.X1 < r.X0 || r.Y1 < r.Y0 }

// Width returns the number of grid columns covered.
func (r Rect) Width() int {
	if r.Empty() {
		return 0
	}
	return r.X1 - r.X0 + 1
}

// Height returns the number of grid rows covered.
func (r Rect) Height() int {
	if r.Empty() {
		return 0
	}
	return r.Y1 - r.Y0 + 1
}

// Area returns the number of grid points covered.
func (r Rect) Area() int { return r.Width() * r.Height() }

// XSpan returns the horizontal extent of the rectangle as an interval.
func (r Rect) XSpan() Interval {
	if r.Empty() {
		return EmptyInterval()
	}
	return Interval{r.X0, r.X1}
}

// YSpan returns the vertical extent of the rectangle as an interval.
func (r Rect) YSpan() Interval {
	if r.Empty() {
		return EmptyInterval()
	}
	return Interval{r.Y0, r.Y1}
}

// Contains reports whether the grid point (x, y) lies within the rectangle.
func (r Rect) Contains(x, y int) bool {
	return !r.Empty() && r.X0 <= x && x <= r.X1 && r.Y0 <= y && y <= r.Y1
}

// Overlaps reports whether two rectangles share at least one grid point.
func (r Rect) Overlaps(other Rect) bool {
	if r.Empty() || other.Empty() {
		return false
	}
	return r.X0 <= other.X1 && other.X0 <= r.X1 && r.Y0 <= other.Y1 && other.Y0 <= r.Y1
}

// Intersect returns the common area of two rectangles (possibly empty).
func (r Rect) Intersect(other Rect) Rect {
	if !r.Overlaps(other) {
		return Rect{0, 0, -1, -1}
	}
	res := r
	if other.X0 > res.X0 {
		res.X0 = other.X0
	}
	if other.Y0 > res.Y0 {
		res.Y0 = other.Y0
	}
	if other.X1 < res.X1 {
		res.X1 = other.X1
	}
	if other.Y1 < res.Y1 {
		res.Y1 = other.Y1
	}
	return res
}

// Union returns the bounding box of two rectangles. Union with an empty
// rectangle returns the other operand.
func (r Rect) Union(other Rect) Rect {
	if r.Empty() {
		return other
	}
	if other.Empty() {
		return r
	}
	res := r
	if other.X0 < res.X0 {
		res.X0 = other.X0
	}
	if other.Y0 < res.Y0 {
		res.Y0 = other.Y0
	}
	if other.X1 > res.X1 {
		res.X1 = other.X1
	}
	if other.Y1 > res.Y1 {
		res.Y1 = other.Y1
	}
	return res
}

// Expand returns the rectangle grown by d grid units on every side.
// Negative d shrinks the rectangle (possibly to empty).
func (r Rect) Expand(d int) Rect {
	if r.Empty() {
		return r
	}
	return Rect{r.X0 - d, r.Y0 - d, r.X1 + d, r.Y1 + d}
}

// CenterX returns the x coordinate of the rectangle center (rounded down).
func (r Rect) CenterX() int { return (r.X0 + r.X1) / 2 }

// CenterY returns the y coordinate of the rectangle center (rounded down).
func (r Rect) CenterY() int { return (r.Y0 + r.Y1) / 2 }

func (r Rect) String() string {
	if r.Empty() {
		return "rect[empty]"
	}
	return fmt.Sprintf("rect[%d,%d..%d,%d]", r.X0, r.Y0, r.X1, r.Y1)
}
