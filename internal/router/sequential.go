package router

import (
	"sort"

	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/tech"
)

// SequentialConfig tunes the sequential pin-access-planning baseline
// (the PARR-style router of reference [12] in the paper).
//
//keypurity:options
type SequentialConfig struct {
	// RetryRounds is the number of deferred-net retry passes (net
	// deferring with dynamic reordering; default 3).
	RetryRounds int
	// WindowMargin is the base search window margin (default 8).
	WindowMargin int
	// MaxRipsPerNet bounds how many times a committed net may be ripped
	// up to make room for a failing net (default 2).
	MaxRipsPerNet int
	// VictimsPerFailure bounds how many committed nets are ripped per
	// failed net (default 4).
	VictimsPerFailure int
}

func (c SequentialConfig) withDefaults() SequentialConfig {
	if c.RetryRounds == 0 {
		c.RetryRounds = 3
	}
	if c.WindowMargin == 0 {
		c.WindowMargin = 8
	}
	if c.MaxRipsPerNet == 0 {
		c.MaxRipsPerNet = 2
	}
	if c.VictimsPerFailure == 0 {
		c.VictimsPerFailure = 4
	}
	return c
}

// RunSequential routes the design with the sequential pin access planning
// scheme of [12]: nets are processed one at a time; each net greedily
// plans the longest available pin access interval per pin given every
// earlier commitment as a hard blockage, routes with committed routes and
// their line-end clearance zones forbidden (design rule legalization
// during routing), and commits the result. Failed nets are deferred and
// retried with wider windows. The output is design-rule-clean by
// construction, mirroring the paper's description of [12].
func (r *Router) RunSequential(cfg SequentialConfig) *Result {
	start := now()
	cfg = cfg.withDefaults()
	res := &Result{Routes: make([]*NetRoute, len(r.d.Nets)), Regions: 1}
	for i := range res.Routes {
		res.Routes[i] = &NetRoute{NetID: i}
	}

	// The sequential baseline routes the whole design as one shard (no
	// region decomposition): the shard carries the avoid set and the
	// route table its search needs.
	s := r.wholeShard(res.Routes)
	s.avoid = make(map[grid.NodeID]bool)

	// One-sided clearance: committed strips block later metal within the
	// rule engine's full sequential distance (later nets' own extensions
	// are not yet known, so the whole clearance burden falls on the avoid
	// zone).
	clearance := r.rules().SequentialClearance()

	// avoid accumulates committed nets' line-end clearance zones with
	// reference counts, so a rip-up removes exactly its own contribution
	// (sequential design rule legalization).
	avoidCount := make(map[grid.NodeID]int)

	// Upfront pin access planning (the "planning" half of [12]): every
	// pin's M2 shadow is reserved for its net before any routing, so no
	// net can wire over a foreign pin's only landing cells. Reservations
	// are disjoint because pin shapes are disjoint.
	for i := range r.d.Pins {
		p := &r.d.Pins[i]
		for y := p.Shape.Y0; y <= p.Shape.Y1; y++ {
			for x := p.Shape.X0; x <= p.Shape.X1; x++ {
				id := r.g.ID(x, y, tech.M2)
				if r.g.Owner(id) == -1 && !r.g.Blocked(id) {
					r.g.SetOwner(id, p.NetID)
				}
			}
		}
	}

	// clearanceCells enumerates a route's line-end clearance zone.
	clearanceCells := func(nr *NetRoute) []grid.NodeID {
		var cells []grid.NodeID
		for _, seg := range r.segmentsOf(nr) {
			limit := r.d.Width
			if seg.layer == tech.M3 {
				limit = r.d.Height
			}
			lo, hi := seg.span.Lo-clearance, seg.span.Hi+clearance
			if lo < 0 {
				lo = 0
			}
			if hi > limit-1 {
				hi = limit - 1
			}
			for c := lo; c <= hi; c++ {
				if seg.layer == tech.M2 {
					cells = append(cells, r.g.ID(c, seg.track, tech.M2))
				} else {
					cells = append(cells, r.g.ID(seg.track, c, tech.M3))
				}
			}
		}
		return cells
	}

	// addClearance/removeClearance maintain the counted avoid set.
	addClearance := func(nr *NetRoute) {
		for _, id := range clearanceCells(nr) {
			avoidCount[id]++
			s.avoid[id] = true
		}
	}
	removeClearance := func(nr *NetRoute) {
		for _, id := range clearanceCells(nr) {
			avoidCount[id]--
			if avoidCount[id] <= 0 {
				delete(avoidCount, id)
				delete(s.avoid, id)
			}
		}
	}

	commit := func(nr *NetRoute) {
		// Hard-commit route nodes via ownership and record clearance.
		for _, id := range nr.Nodes {
			if _, _, z := r.g.Coords(id); z != tech.M1 {
				r.g.SetOwner(id, nr.NetID)
			}
		}
		r.occupy(nr)
		addClearance(nr)
	}

	// rip removes a committed net: occupancy, clearance, and ownership of
	// its routing nodes.
	rip := func(nr *NetRoute) {
		removeClearance(nr)
		r.release(nr)
		for _, id := range nr.Nodes {
			if _, _, z := r.g.Coords(id); z != tech.M1 && r.g.Owner(id) == nr.NetID {
				r.g.ClearOwner(id)
			}
		}
		// Restore the net's upfront pin shadow reservations, which may
		// have doubled as route cells.
		for _, pid := range r.d.Nets[nr.NetID].PinIDs {
			p := &r.d.Pins[pid]
			for y := p.Shape.Y0; y <= p.Shape.Y1; y++ {
				for x := p.Shape.X0; x <= p.Shape.X1; x++ {
					id := r.g.ID(x, y, tech.M2)
					if r.g.Owner(id) == -1 && !r.g.Blocked(id) {
						r.g.SetOwner(id, p.NetID)
					}
				}
			}
		}
		nr.Routed = false
		nr.Nodes = nil
		nr.Edges = nil
		nr.Virtual = nil
	}

	// findVictims returns up to k committed nets with routing inside the
	// failed net's expanded bounding box, most-overlapping first.
	findVictims := func(netID, margin, k int, ripCount map[int]int) []int {
		box := r.d.NetBBox(netID).Expand(margin)
		var cands []ripCand
		for otherID, nr := range res.Routes {
			if otherID == netID || !nr.Routed || ripCount[otherID] >= cfg.MaxRipsPerNet {
				continue
			}
			// Cheap reject: a net whose own expanded bbox misses the
			// failed net's region cannot overlap it.
			if !r.d.NetBBox(otherID).Expand(margin).Overlaps(box) {
				continue
			}
			count := 0
			for _, id := range nr.Nodes {
				x, y, z := r.g.Coords(id)
				if z != tech.M1 && box.Contains(x, y) {
					count++
				}
			}
			if count > 0 {
				cands = append(cands, ripCand{otherID, count})
			}
		}
		sortCands(cands)
		var victims []int
		for i := 0; i < len(cands) && i < k; i++ {
			victims = append(victims, cands[i].net)
		}
		return victims
	}

	tryRoute := func(netID, margin int) bool {
		planned := s.planPinAccess(netID)
		nr := s.routeNetSequential(netID, margin)
		r.releasePlan(planned, nr)
		res.Routes[netID] = nr
		if nr.Routed {
			commit(nr)
			return true
		}
		return false
	}

	pending := r.netOrder()
	ripCount := make(map[int]int)
	margin := cfg.WindowMargin
	for round := 0; round <= cfg.RetryRounds && len(pending) > 0; round++ {
		var deferred []int
		for _, netID := range pending {
			if tryRoute(netID, margin) {
				continue
			}
			if round == 0 {
				deferred = append(deferred, netID)
				continue
			}
			// Rip up and reroute: evict the committed nets crowding the
			// failed net's region, route it, then re-commit the victims.
			victims := findVictims(netID, margin, cfg.VictimsPerFailure, ripCount)
			if len(victims) == 0 {
				deferred = append(deferred, netID)
				continue
			}
			for _, v := range victims {
				ripCount[v]++
				rip(res.Routes[v])
			}
			if !tryRoute(netID, margin) {
				deferred = append(deferred, netID)
			}
			for _, v := range victims {
				if !tryRoute(v, margin) {
					deferred = append(deferred, v)
				}
			}
		}
		pending = deferred
		// Deferred nets retry with doubling windows (escalating detour
		// search — the runtime cost the paper attributes to [12]).
		margin *= 2
	}
	for _, netID := range pending {
		res.Routes[netID].Routed = false
		if res.Routes[netID].FailReason == "" {
			res.Routes[netID].FailReason = "search"
		}
	}

	for _, nr := range res.Routes {
		if nr.Routed {
			res.RoutedNets++
			res.Vias += nr.Vias(r.g)
			res.Wirelength += nr.Wirelength(r.g)
		}
	}
	res.Elapsed = since(start)
	return res
}

// ripCand is a rip-up candidate: a committed net and its node overlap with
// the failing net's region.
type ripCand struct{ net, count int }

// sortCands orders rip-up candidates by overlap count descending, then by
// net ID for determinism.
func sortCands(cands []ripCand) {
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].count != cands[b].count {
			return cands[a].count > cands[b].count
		}
		return cands[a].net < cands[b].net
	})
}

// routeNetSequential routes one net with committed nets hard-blocked; the
// avoid set carries their line-end clearance, making each commitment
// rule-clean against earlier ones.
func (s *shard) routeNetSequential(netID, margin int) *NetRoute {
	return s.routeNet(netID, 0, margin)
}

// planPinAccess greedily reserves, for every pin of the net, the longest
// free M2 interval around the pin given current ownership — the
// sequential pin access planning of [12]. Returns the reserved node IDs.
func (s *shard) planPinAccess(netID int) []grid.NodeID {
	r := s.Router
	var reserved []grid.NodeID
	bbox := r.d.NetBBox(netID).XSpan()
	for _, pid := range r.d.Nets[netID].PinIDs {
		pin := &r.d.Pins[pid]
		bestTrack, bestSpan := -1, geom.EmptyInterval()
		for t := pin.Shape.Y0; t <= pin.Shape.Y1; t++ {
			span := s.freeSpanOnGrid(netID, t, pin.Shape.XSpan(), bbox)
			if span.Len() > bestSpan.Len() {
				bestTrack, bestSpan = t, span
			}
		}
		if bestTrack < 0 || bestSpan.Empty() {
			continue
		}
		for x := bestSpan.Lo; x <= bestSpan.Hi; x++ {
			id := r.g.ID(x, bestTrack, tech.M2)
			if r.g.Owner(id) == -1 {
				r.g.SetOwner(id, netID)
				reserved = append(reserved, id)
			}
		}
	}
	return reserved
}

// freeSpanOnGrid is the grid-state analogue of pin access interval
// generation: the maximal span on track t around the pin seed that is
// unblocked, unowned by other nets, outside committed clearance zones,
// and inside the net bounding box.
func (s *shard) freeSpanOnGrid(netID, t int, seed, bbox geom.Interval) geom.Interval {
	r := s.Router
	usable := func(x int) bool {
		if x < 0 || x >= r.d.Width {
			return false
		}
		id := r.g.ID(x, t, tech.M2)
		if !r.g.Enterable(id, netID) {
			return false
		}
		if s.avoid != nil && s.avoid[id] {
			return false
		}
		return true
	}
	for x := seed.Lo; x <= seed.Hi; x++ {
		if !usable(x) {
			return geom.EmptyInterval()
		}
	}
	lo, hi := seed.Lo, seed.Hi
	for lo > bbox.Lo && usable(lo-1) {
		lo--
	}
	for hi < bbox.Hi && usable(hi+1) {
		hi++
	}
	return geom.Interval{Lo: lo, Hi: hi}
}

// releasePlan frees planned pin access cells that the final route does not
// use, so later nets can claim them.
func (r *Router) releasePlan(reserved []grid.NodeID, nr *NetRoute) {
	used := make(map[grid.NodeID]bool, len(nr.Nodes))
	for _, id := range nr.Nodes {
		used[id] = true
	}
	for _, id := range reserved {
		if !nr.Routed || !used[id] {
			r.g.ClearOwner(id)
		}
	}
}
