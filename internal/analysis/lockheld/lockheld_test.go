package lockheld_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/lockheld"
)

func TestLockheld(t *testing.T) {
	analysistest.Run(t, "testdata", lockheld.Analyzer, "lockheld")
}

// TestSubmitBaseRegression is the negative control for the reverted
// PR 7 bug: a cache lookup that resolves misses over peer HTTP, called
// under the job-manager mutex, must be flagged through the full
// three-package chain — and the off-lock rewrite must be clean.
func TestSubmitBaseRegression(t *testing.T) {
	analysistest.Run(t, "testdata", lockheld.Analyzer, "submitbase")
}
