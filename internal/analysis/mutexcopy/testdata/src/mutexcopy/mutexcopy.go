// Package mutexcopy is golden input for the mutexcopy analyzer.
package mutexcopy

import "sync"

// Guarded is a lock-bearing struct.
type Guarded struct {
	mu    sync.Mutex
	count int
}

// Nested embeds a lock-bearing struct by value.
type Nested struct {
	inner Guarded
	name  string
}

// ByValueParam copies the lock: flagged.
func ByValueParam(g Guarded) int { // want `by-value parameter copies mutexcopy\.Guarded`
	return g.count
}

// ByValueReceiver copies the lock on every call: flagged.
func (g Guarded) Peek() int { // want `by-value receiver copies mutexcopy\.Guarded`
	return g.count
}

// ByValueNested copies a struct that transitively holds a lock: flagged.
func ByValueNested(n Nested) string { // want `by-value parameter copies mutexcopy\.Nested`
	return n.name
}

// PointerParam shares the lock: legal.
func PointerParam(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count
}

// PointerReceiver is the correct method shape.
func (g *Guarded) Incr() {
	g.mu.Lock()
	g.count++
	g.mu.Unlock()
}

// AssignCopy duplicates a live lock: flagged.
func AssignCopy(g *Guarded) int {
	snapshot := *g // want `assignment copies mutexcopy\.Guarded`
	return snapshot.count
}

// VarToVar copies between variables: flagged.
func VarToVar() int {
	var a Guarded
	b := a // want `assignment copies mutexcopy\.Guarded`
	return b.count
}

// CompositeInit creates a fresh value: legal.
func CompositeInit() *Guarded {
	g := Guarded{count: 1}
	return &g
}

// RangeCopy copies each element's lock: flagged.
func RangeCopy(gs []Guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies mutexcopy\.Guarded`
		total += g.count
	}
	return total
}

// RangeByIndex is the legal iteration.
func RangeByIndex(gs []Guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].count
	}
	return total
}

// PlainStruct has no lock: never flagged.
type PlainStruct struct{ n int }

func CopyPlain(p PlainStruct) PlainStruct {
	q := p
	return q
}

// Suppressed documents an intentional pre-publication copy.
func Suppressed() Guarded {
	var g Guarded
	//cprlint:mutexcopy value has never been shared; copy happens before first Lock
	h := g
	return h
}
