// Package jobs is the bounded job manager behind the cprd daemon: it
// accepts design-optimization requests, queues them FIFO up to a cap,
// runs at most MaxConcurrent of them at a time through the core pipeline
// with a per-job timeout, serves identical requests from the
// content-addressed result cache, coalesces identical in-flight
// submissions onto one job, and supports graceful drain.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"cpr/internal/cache"
	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/pipeline"
	"cpr/internal/telemetry"
)

// ResultCache is the daemon's three-level cache: whole-design results at
// the top, per-panel pipeline artifacts and per-region route bundles
// below. A design-level hit answers a resubmission without running
// anything; a design-level miss still harvests panel- and route-level
// hits for everything the edit provably cannot affect.
type ResultCache = cache.ThreeLevel[*core.RunResult, *pipeline.PanelArtifact, *pipeline.RouteArtifact]

// NewResultCache creates the three-level cache. Capacities <= 0 take the
// cache package defaults; the panel and route levels typically want a
// multiple of the design level (one design contributes many panels and
// regions).
func NewResultCache(designCap, panelCap, routeCap int) *ResultCache {
	return cache.NewThreeLevel[*core.RunResult, *pipeline.PanelArtifact, *pipeline.RouteArtifact](designCap, panelCap, routeCap)
}

// NewExchangedResultCache creates the three-level cache on top of a
// block source (exchange.Service): every level keeps its typed
// in-memory LRU, but misses fall through to the content-addressed block
// store — and, when the source has peers, to other daemons — and puts
// write blocks through, making them durable and servable. Decoded panel
// and route artifacts are verified to carry the requested key before
// they are spliced; design-level results don't carry their key (it
// covers the design bytes, which the result does not retain), so they
// rely on the key's collision resistance alone, exactly like the
// in-memory design level always has.
func NewExchangedResultCache(designCap, panelCap, routeCap int, src cache.BlockSource) *ResultCache {
	return &ResultCache{
		Design: cache.NewBacked[*core.RunResult](designCap, src,
			core.EncodeResult, core.DecodeResult, nil),
		Panel: cache.NewBacked[*pipeline.PanelArtifact](panelCap, src,
			pipeline.MarshalPanelArtifact, pipeline.UnmarshalPanelArtifact,
			func(a *pipeline.PanelArtifact) string { return a.Key }),
		Route: cache.NewBacked[*pipeline.RouteArtifact](routeCap, src,
			pipeline.MarshalRouteArtifact, pipeline.UnmarshalRouteArtifact,
			func(a *pipeline.RouteArtifact) string { return a.Key }),
	}
}

// State is a job's lifecycle state. Terminal states are StateDone and
// StateFailed; a canceled or timed-out job lands in StateFailed.
type State int

const (
	// StateQueued means the job is waiting in the FIFO queue.
	StateQueued State = iota
	// StateRunning means a worker is executing the job.
	StateRunning
	// StateDone means the job finished with a result (possibly from
	// cache).
	StateDone
	// StateFailed means the job finished with an error, including
	// cancellation and timeout.
	StateFailed
)

func (s State) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateDone:
		return "done"
	default:
		return "failed"
	}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

var (
	// ErrQueueFull is returned by Submit when the FIFO queue is at
	// capacity; HTTP maps it to 429.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrDraining is returned by Submit after Drain started; HTTP maps
	// it to 503.
	ErrDraining = errors.New("jobs: manager draining")
	// ErrUnknownBaseJob is returned by SubmitBase when the base job ID is
	// not (or no longer) known; HTTP maps it to 400.
	ErrUnknownBaseJob = errors.New("jobs: unknown base job")
	// ErrBaseNotDone is returned by SubmitBase when the base job has not
	// finished successfully, so it has no result to rerun against; HTTP
	// maps it to 400.
	ErrBaseNotDone = errors.New("jobs: base job has no result")
)

// RunFunc executes one optimization request. The default is
// core.RunContext; tests substitute stubs.
type RunFunc func(ctx context.Context, d *design.Design, opts core.Options) (*core.RunResult, error)

// RerunFunc executes one incremental request against a base result. The
// default is core.RerunContext; tests substitute stubs.
type RerunFunc func(ctx context.Context, prev *core.RunResult, d *design.Design, opts core.Options) (*core.RunResult, error)

// Config tunes a Manager. Zero values take the documented defaults.
type Config struct {
	// MaxConcurrent is the number of jobs executed simultaneously
	// (default 2). Each job additionally parallelizes internally per
	// its Options.Workers.
	MaxConcurrent int
	// QueueCap bounds the FIFO queue of jobs waiting for a worker
	// (default 64). Submissions beyond it fail with ErrQueueFull.
	QueueCap int
	// JobTimeout cancels a job's context this long after it starts
	// running (0 = no timeout).
	JobTimeout time.Duration
	// RetainJobs bounds how many finished jobs stay queryable by ID
	// (default 4096); the oldest finished jobs are forgotten first.
	RetainJobs int
	// Run overrides the job executor (tests only; default
	// core.RunContext).
	Run RunFunc
	// Rerun overrides the incremental job executor (tests only; default
	// core.RerunContext).
	Rerun RerunFunc
	// Metrics, when non-nil, receives the manager's operational metrics
	// (queue depth, queue-wait and run latencies, rejected submissions,
	// cache hit/miss/evict) and is threaded into every job's run context
	// so the pipeline's stage metrics land in the same registry.
	// Telemetry is strictly observational: results are byte-identical
	// with or without it.
	Metrics *telemetry.Registry
	// TraceJobs, when set, gives every executed job its own span tracer,
	// retrievable via Job.Tracer (the daemon serves it as
	// GET /v1/jobs/{id}/trace). Cache-served jobs never ran, so they
	// have no trace.
	TraceJobs bool
	// Events, when non-nil, receives every job lifecycle event
	// (admitted/started/done/failed, cache answers, rejection causes)
	// plus the pipeline's in-run events (LR iterations, negotiation
	// rounds, block fetches, span boundaries). The bus doubles as the
	// flight recorder behind GET /v1/debug/events. Like Metrics and
	// TraceJobs it is strictly observational.
	Events *telemetry.EventBus
	// CrashDump, when non-empty, is the file the flight-recorder ring is
	// flushed to when a job panics, so post-mortems don't depend on any
	// tracing flag having been set.
	CrashDump string
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.RetainJobs <= 0 {
		c.RetainJobs = 4096
	}
	if c.Run == nil {
		c.Run = core.RunContext
	}
	if c.Rerun == nil {
		c.Rerun = core.RerunContext
	}
	return c
}

// Job is one optimization request moving through the manager. All fields
// behind mu are written by the manager only; readers use Snapshot.
type Job struct {
	// ID is the manager-assigned identifier ("j1", "j2", ...).
	ID string
	// Key is the content address of the request (cache.Key of the
	// design hash and options fingerprint); empty for uncacheable
	// requests (custom profit functions).
	Key string
	// BaseJobID is the finished job this one reruns incrementally
	// against; empty for cold submissions. A base never changes the
	// result — only how much of it is recomputed — so it is not part of
	// Key.
	BaseJobID string

	design *design.Design
	opts   core.Options
	base   *core.RunResult // base job's result for incremental reruns

	mu        sync.Mutex
	state     State
	cached    bool
	result    *core.RunResult
	errMsg    string
	tracer    *telemetry.Tracer
	submitted time.Time
	started   time.Time
	finished  time.Time

	done chan struct{}
}

// Tracer returns the job's span tracer, or nil when the manager was not
// configured with TraceJobs or the job never ran (cache hits, jobs
// failed before starting).
func (j *Job) Tracer() *telemetry.Tracer {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.tracer
}

// Snapshot is a race-free copy of a job's observable state.
type Snapshot struct {
	ID        string
	Key       string
	BaseJobID string
	State     State
	Cached    bool
	Result    *core.RunResult
	Err       string
	Submitted time.Time
	Started   time.Time
	Finished  time.Time
	// QueueWait is submit-to-start (or submit-to-now while queued).
	QueueWait time.Duration
	// RunTime is start-to-finish (or start-to-now while running).
	RunTime time.Duration
}

// Snapshot copies the job's observable state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	s := Snapshot{
		ID:        j.ID,
		Key:       j.Key,
		BaseJobID: j.BaseJobID,
		State:     j.state,
		Cached:    j.cached,
		Result:    j.result,
		Err:       j.errMsg,
		Submitted: j.submitted,
		Started:   j.started,
		Finished:  j.finished,
	}
	now := time.Now()
	switch {
	case j.state == StateQueued:
		s.QueueWait = now.Sub(j.submitted)
	case !j.started.IsZero():
		s.QueueWait = j.started.Sub(j.submitted)
	}
	switch {
	case j.state == StateRunning:
		s.RunTime = now.Sub(j.started)
	case !j.started.IsZero() && !j.finished.IsZero():
		s.RunTime = j.finished.Sub(j.started)
	}
	return s
}

// Done returns a channel closed when the job reaches a terminal state.
// The job's terminal event is published to the manager's event bus
// before the channel closes, so a subscriber that drains its channel
// after Done fires has seen the job_done/job_failed event (unless it
// was dropped for falling behind).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job reaches a terminal state or ctx fires.
func (j *Job) Wait(ctx context.Context) error {
	select {
	case <-j.done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Fingerprint renders the result-affecting fields of Options into a
// canonical string for cache keying. Worker counts are deliberately
// excluded — the pipeline's determinism contract makes results
// byte-identical for every worker count. The solver and router halves
// are delegated to the pipeline's own fingerprint encoders through the
// same Options mapping a run uses (Options.SolverConfig), so the design
// key can never drift from the fields the pipeline actually consumes;
// non-addressable inputs (a custom Profit, an LR Stop hook) surface as
// sentinels, and Submit refuses to cache under them. The rule-engine
// override is encoded directly, so two submissions of one design under
// different engines can never share a key (a design-borne engine is
// already part of the design hash via its designio record).
//
//keypurity:encoder design
func Fingerprint(o core.Options) string {
	var b strings.Builder
	fmt.Fprintf(&b, "v3 mode=%s engine=%s", o.Mode, o.RuleEngine)
	b.WriteString(" " + o.SolverConfig().Fingerprint())
	b.WriteString(" " + pipeline.RouterFingerprint(o.Router))
	s := o.Sequential
	fmt.Fprintf(&b, " seq=%d,%d,%d,%d",
		s.RetryRounds, s.WindowMargin, s.MaxRipsPerNet, s.VictimsPerFailure)
	return b.String()
}

// stageAgg accumulates one latency family.
type stageAgg struct {
	count int64
	sum   time.Duration
	max   time.Duration
}

func (a *stageAgg) add(d time.Duration) {
	a.count++
	a.sum += d
	if d > a.max {
		a.max = d
	}
}

// StageStats is one latency family in Stats.
type StageStats struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// Stats is a point-in-time view of the manager for /v1/stats.
type Stats struct {
	QueueDepth int              `json:"queue_depth"`
	QueueCap   int              `json:"queue_cap"`
	Running    int              `json:"running"`
	Draining   bool             `json:"draining"`
	ByState    map[string]int64 `json:"jobs_by_state"`
	// RejectedQueueFull counts submissions refused with ErrQueueFull
	// (HTTP 429) since the manager started.
	RejectedQueueFull int64 `json:"rejected_queue_full"`
	// RejectedDraining counts submissions refused with ErrDraining
	// (HTTP 503).
	RejectedDraining int64       `json:"rejected_draining"`
	Cache            cache.Stats `json:"cache"`
	CacheHitRate     float64     `json:"cache_hit_rate"`
	// PanelCache counts per-panel artifact hits and misses: the
	// incremental-reuse rate of design-level misses.
	PanelCache        cache.Stats `json:"panel_cache"`
	PanelCacheHitRate float64     `json:"panel_cache_hit_rate"`
	// RouteCache counts per-region route bundle hits and misses: the
	// routing-splice rate of incremental reruns.
	RouteCache        cache.Stats           `json:"route_cache"`
	RouteCacheHitRate float64               `json:"route_cache_hit_rate"`
	Stages            map[string]StageStats `json:"stage_latency"`
	// QueueWait is the full admission-to-start latency distribution
	// (mirrors the cprd_job_queue_wait_seconds histogram on /metrics);
	// nil without Config.Metrics.
	QueueWait *telemetry.HistogramSnapshot `json:"queue_wait_histogram,omitempty"`
	// EventsDropped counts stream events lost to slow subscribers; 0
	// without Config.Events.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
}

// Manager owns the queue, the workers, and the job registry.
type Manager struct {
	cfg   Config
	cache *ResultCache

	queue   chan *Job
	workers sync.WaitGroup

	mu            sync.Mutex
	jobs          map[string]*Job
	finished      []string        // finished job IDs, oldest first, for retention
	inflight      map[string]*Job // key -> queued/running job, for coalescing
	cancels       map[string]context.CancelFunc
	counts        map[State]int64
	stages        map[string]*stageAgg
	rejectedFull  int64
	rejectedDrain int64
	running       int
	seq           int64
	draining      bool
	hardStop      bool

	// Pre-registered instruments (nil without Config.Metrics; nil
	// instruments no-op).
	mQueueWait    *telemetry.Histogram
	mRunTime      *telemetry.Histogram
	mRejectedFull *telemetry.Counter
	mRejectedDrn  *telemetry.Counter
}

// New creates a manager and starts its worker goroutines. The cache may
// be shared with other components for stats reporting; pass nil to run
// without caching.
//
//cprlint:ctxpass worker lifecycle is bound to the queue channel; Drain(ctx) closes it and honors its context
func New(cfg Config, c *ResultCache) *Manager {
	cfg = cfg.withDefaults()
	m := &Manager{
		cfg:      cfg,
		cache:    c,
		queue:    make(chan *Job, cfg.QueueCap),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		cancels:  make(map[string]context.CancelFunc),
		counts:   make(map[State]int64),
		stages:   make(map[string]*stageAgg),
	}
	m.registerMetrics(c)
	m.workers.Add(cfg.MaxConcurrent)
	for i := 0; i < cfg.MaxConcurrent; i++ {
		go m.worker()
	}
	return m
}

// registerMetrics wires the manager's operational metrics into the
// configured registry: live gauges read manager state at scrape time,
// cache counters bridge the cache's own counters, and the latency
// histograms are pre-registered so the hot finish path only observes.
func (m *Manager) registerMetrics(c *ResultCache) {
	reg := m.cfg.Metrics
	if reg == nil {
		return
	}
	m.mQueueWait = reg.Histogram("cprd_job_queue_wait_seconds",
		"Time jobs spent queued before a worker picked them up.", telemetry.DefSecondsBuckets)
	m.mRunTime = reg.Histogram("cprd_job_run_seconds",
		"Wall-clock job execution time.", telemetry.DefSecondsBuckets)
	m.mRejectedFull = reg.Counter("cprd_jobs_rejected_total",
		"Submissions refused by the manager.", telemetry.L("reason", "queue_full"))
	m.mRejectedDrn = reg.Counter("cprd_jobs_rejected_total",
		"Submissions refused by the manager.", telemetry.L("reason", "draining"))
	if ev := m.cfg.Events; ev != nil {
		reg.CounterFunc("cpr_events_dropped_total",
			"Stream events dropped because a subscriber channel was full.",
			func() float64 { return float64(ev.Dropped()) })
	}
	reg.GaugeFunc("cprd_queue_depth", "Jobs waiting in the FIFO queue.",
		func() float64 { return float64(len(m.queue)) })
	reg.GaugeFunc("cprd_running_jobs", "Jobs currently executing.",
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.running)
		})
	for _, st := range []State{StateQueued, StateRunning, StateDone, StateFailed} {
		st := st
		reg.GaugeFunc("cprd_jobs_by_state", "Jobs per lifecycle state.",
			func() float64 {
				m.mu.Lock()
				defer m.mu.Unlock()
				return float64(m.counts[st])
			}, telemetry.L("state", st.String()))
	}
	if c == nil {
		return
	}
	levels := []struct {
		name  string
		stats func() cache.Stats
	}{
		{"design", func() cache.Stats { return c.Design.Stats() }},
		{"panel", func() cache.Stats { return c.Panel.Stats() }},
		{"route", func() cache.Stats { return c.Route.Stats() }},
	}
	for _, lv := range levels {
		lv := lv
		reg.CounterFunc("cprd_cache_hits_total", "Cache hits by level.",
			func() float64 { return float64(lv.stats().Hits) }, telemetry.L("level", lv.name))
		reg.CounterFunc("cprd_cache_misses_total", "Cache misses by level.",
			func() float64 { return float64(lv.stats().Misses) }, telemetry.L("level", lv.name))
		reg.CounterFunc("cprd_cache_evictions_total", "Cache evictions by level.",
			func() float64 { return float64(lv.stats().Evictions) }, telemetry.L("level", lv.name))
		reg.GaugeFunc("cprd_cache_entries", "Live cache entries by level.",
			func() float64 { return float64(lv.stats().Entries) }, telemetry.L("level", lv.name))
	}
}

// Submit registers one optimization request. The fast paths never touch
// the optimizer: a completed identical request is answered from the
// content-addressed cache as an immediately-done job, and an identical
// request still queued or running is coalesced onto the existing job.
// Otherwise the job enters the FIFO queue, or ErrQueueFull /
// ErrDraining is returned.
func (m *Manager) Submit(d *design.Design, opts core.Options) (*Job, error) {
	return m.SubmitBase(d, opts, "")
}

// SubmitBase is Submit with an incremental baseline: when baseJobID
// names a finished job, the new job reruns against its result,
// recomputing only the panels and routing regions the edit dirtied and
// splicing the rest. In strict rerun mode the baseline never changes
// the result — the hard invariant of core.Rerun is byte-identity with a
// cold run — so the design-level cache key, the cached-answer fast
// path, and coalescing all behave exactly as for Submit. The base job's
// panel and route artifacts are re-warmed into their cache levels at
// submission, so reuse survives earlier evictions.
//
// Eco-fast reruns with a baseline are the one exception: their result
// is verified legal and objective-equal but not byte-identical to a
// cold run, so such jobs bypass the design-level cache entirely (no
// cached-answer fast path, no coalescing, no Put) — a warm-started
// result must never be served to a cold submitter of the same design.
func (m *Manager) SubmitBase(d *design.Design, opts core.Options, baseJobID string) (*Job, error) {
	var base *core.RunResult
	if baseJobID != "" {
		baseJob, ok := m.Get(baseJobID)
		if !ok {
			return nil, fmt.Errorf("%w: %q", ErrUnknownBaseJob, baseJobID)
		}
		snap := baseJob.Snapshot()
		if snap.State != StateDone || snap.Result == nil {
			return nil, fmt.Errorf("%w: %q is %s", ErrBaseNotDone, baseJobID, snap.State)
		}
		base = snap.Result
		if m.cache != nil && base.Artifacts != nil {
			for _, a := range base.Artifacts.Panels {
				if a.Key != "" && !m.cache.Panel.Contains(a.Key) {
					m.cache.Panel.Put(a.Key, a)
				}
			}
			for _, a := range base.Artifacts.Routes {
				if a.Key != "" && !m.cache.Route.Contains(a.Key) {
					m.cache.Route.Put(a.Key, a)
				}
			}
		}
	}

	fp := Fingerprint(opts)
	// Design-level cacheability follows the pipeline's own rule
	// (SolverConfig.Cacheable: custom Profit, LR Stop hooks, and
	// time-limited ILP are not content-addressable) plus one job-layer
	// exclusion: eco-fast rerun results are objective-equal but not
	// byte-identical to a cold run, so they must never answer a cold key.
	cacheable := opts.SolverConfig().Cacheable() &&
		!(opts.RerunMode == core.RerunEcoFast && base != nil)
	var key string
	if cacheable {
		hash, err := designio.Hash(d)
		if err != nil {
			return nil, err
		}
		key = cache.Key(hash, fp)
	}

	// The design-level lookup happens outside the manager lock: on a
	// block-backed cache a miss may fetch from peer daemons, and that
	// network round-trip must never serialize unrelated submissions.
	// Draining and coalescing are (re-)checked under the lock afterwards.
	m.mu.Lock()
	if m.draining {
		m.rejectedDrain++
		m.mRejectedDrn.Inc()
		m.mu.Unlock()
		m.cfg.Events.Publish("", "job_rejected", map[string]any{"cause": "draining"})
		return nil, ErrDraining
	}
	if cacheable {
		if existing, ok := m.inflight[key]; ok {
			m.mu.Unlock()
			return existing, nil
		}
	}
	m.mu.Unlock()

	if cacheable && m.cache != nil {
		if res, ok := m.cache.Design.Get(key); ok {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.draining {
				m.rejectedDrain++
				m.mRejectedDrn.Inc()
				m.cfg.Events.Publish("", "job_rejected", map[string]any{"cause": "draining"})
				return nil, ErrDraining
			}
			job := m.newJobLocked(key, d, opts)
			job.BaseJobID = baseJobID
			now := time.Now()
			job.state = StateDone
			job.cached = true
			job.result = res
			job.started = now
			job.finished = now
			close(job.done)
			m.counts[StateDone]++
			m.retainLocked(job.ID)
			m.cfg.Events.Publish(job.ID, "job_cached", map[string]any{"key": key})
			return job, nil
		}
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		m.rejectedDrain++
		m.mRejectedDrn.Inc()
		m.cfg.Events.Publish("", "job_rejected", map[string]any{"cause": "draining"})
		return nil, ErrDraining
	}
	if cacheable {
		// Re-check: an identical submission may have queued while the
		// cache lookup ran unlocked.
		if existing, ok := m.inflight[key]; ok {
			return existing, nil
		}
	}
	if len(m.queue) >= m.cfg.QueueCap {
		m.rejectedFull++
		m.mRejectedFull.Inc()
		m.cfg.Events.Publish("", "job_rejected", map[string]any{"cause": "queue_full"})
		return nil, ErrQueueFull
	}
	job := m.newJobLocked(key, d, opts)
	job.BaseJobID = baseJobID
	job.base = base
	m.counts[StateQueued]++
	if cacheable {
		m.inflight[key] = job
	}
	select {
	case m.queue <- job:
	default:
		// Unreachable while Submit holds mu (the only sender), but keep
		// the registry consistent if it ever fires.
		delete(m.jobs, job.ID)
		delete(m.inflight, key)
		m.counts[StateQueued]--
		m.rejectedFull++
		m.mRejectedFull.Inc()
		m.cfg.Events.Publish("", "job_rejected", map[string]any{"cause": "queue_full"})
		return nil, ErrQueueFull
	}
	m.cfg.Events.Publish(job.ID, "job_admitted", map[string]any{"key": key, "base": baseJobID})
	return job, nil
}

// newJobLocked allocates and registers a job; callers hold m.mu.
func (m *Manager) newJobLocked(key string, d *design.Design, opts core.Options) *Job {
	m.seq++
	job := &Job{
		ID:        fmt.Sprintf("j%d", m.seq),
		Key:       key,
		design:    d,
		opts:      opts,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
	m.jobs[job.ID] = job
	return job
}

// retainLocked records a finished job and evicts the oldest finished
// jobs beyond the retention cap; callers hold m.mu.
func (m *Manager) retainLocked(id string) {
	m.finished = append(m.finished, id)
	for len(m.finished) > m.cfg.RetainJobs {
		old := m.finished[0]
		m.finished = m.finished[1:]
		delete(m.jobs, old)
	}
}

// Metrics returns the registry the manager was configured with, or nil.
// The daemon serves it at GET /metrics.
func (m *Manager) Metrics() *telemetry.Registry { return m.cfg.Metrics }

// Get returns a job by ID.
func (m *Manager) Get(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

func (m *Manager) worker() {
	defer m.workers.Done()
	for job := range m.queue {
		m.execute(job)
	}
}

func (m *Manager) execute(job *Job) {
	start := time.Now()
	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if m.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(context.Background(), m.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(context.Background())
	}
	defer cancel()

	m.mu.Lock()
	skip := m.hardStop
	m.counts[StateQueued]--
	if skip {
		m.counts[StateFailed]++
	} else {
		m.counts[StateRunning]++
		m.running++
		m.cancels[job.ID] = cancel
	}
	m.mu.Unlock()

	job.mu.Lock()
	job.started = start
	queueWait := start.Sub(job.submitted)
	if skip {
		job.state = StateFailed
		job.errMsg = "canceled: manager shut down before the job started"
		job.finished = start
	} else {
		job.state = StateRunning
	}
	job.mu.Unlock()

	if skip {
		m.finish(job, queueWait, 0, nil, false)
		return
	}

	// The panel and route caches are wired for content-addressable jobs
	// only: a custom profit function makes panel artifacts unaddressable
	// (the profit is part of their inputs), and route keys are derived
	// from them downstream. Eco-fast jobs (Key == "" with a base) still
	// get both read-side caches — their own divergent artifacts carry no
	// keys, so they can never poison either level.
	opts := job.opts
	if opts.Profit == nil && m.cache != nil {
		opts.PanelCache = m.cache.Panel
		opts.RouteCache = m.cache.Route
	}

	// Thread telemetry into the run context. Strictly observational: the
	// core pipeline's §4e contract keeps results byte-identical with or
	// without it, so none of the knobs reach any cache key.
	em := telemetry.NewEmitter(m.cfg.Events, job.ID)
	if m.cfg.TraceJobs {
		tr := telemetry.New()
		tr.SetEmitter(em)
		job.mu.Lock()
		job.tracer = tr
		job.mu.Unlock()
		ctx = telemetry.WithTracer(ctx, tr)
	}
	if m.cfg.Metrics != nil {
		ctx = telemetry.WithRegistry(ctx, m.cfg.Metrics)
	}
	ctx = telemetry.WithEmitter(ctx, em)
	m.cfg.Events.Publish(job.ID, "job_started", nil)
	res, err := m.runJob(ctx, job, opts)
	end := time.Now()

	job.mu.Lock()
	job.finished = end
	if err != nil {
		job.state = StateFailed
		job.errMsg = err.Error()
	} else {
		job.state = StateDone
		job.result = res
	}
	job.mu.Unlock()

	if err == nil && job.Key != "" && m.cache != nil {
		m.cache.Design.Put(job.Key, res)
	}
	m.finish(job, queueWait, end.Sub(start), res, true)
}

// runJob executes the job's Run/Rerun function, converting a panic into
// a job failure: the panic is published as a job_panic event (with a
// truncated stack), the flight recorder is flushed to the configured
// crash-dump file, and the worker stays alive.
func (m *Manager) runJob(ctx context.Context, job *Job, opts core.Options) (res *core.RunResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			if len(stack) > 8192 {
				stack = stack[:8192]
			}
			m.cfg.Events.Publish(job.ID, "job_panic",
				map[string]any{"panic": fmt.Sprint(r), "stack": string(stack)})
			m.dumpCrash()
			res, err = nil, fmt.Errorf("jobs: job %s panicked: %v", job.ID, r)
		}
	}()
	if job.base != nil {
		return m.cfg.Rerun(ctx, job.base, job.design, opts)
	}
	return m.cfg.Run(ctx, job.design, opts)
}

// dumpCrash writes the flight-recorder ring to Config.CrashDump. Errors
// are swallowed: the dump is best-effort post-mortem data and must never
// mask the original failure.
func (m *Manager) dumpCrash() {
	if m.cfg.CrashDump == "" || m.cfg.Events == nil {
		return
	}
	f, err := os.Create(m.cfg.CrashDump)
	if err != nil {
		return
	}
	defer f.Close()
	_ = m.cfg.Events.WriteJSON(f)
}

// Events returns the manager's event bus, or nil.
func (m *Manager) Events() *telemetry.EventBus { return m.cfg.Events }

// finish moves the job out of the live sets and folds its latencies into
// the aggregates. ran distinguishes jobs that reached a worker from jobs
// failed by a hard-stopped drain (those were counted failed in execute).
func (m *Manager) finish(job *Job, queueWait, runTime time.Duration, res *core.RunResult, ran bool) {
	job.mu.Lock()
	state := job.state
	errMsg := job.errMsg
	job.mu.Unlock()

	// The terminal event goes out before job.done closes, so an SSE
	// handler woken by Done() that then drains its subscription always
	// observes it (unless the subscriber fell behind and dropped).
	if state == StateDone {
		m.cfg.Events.Publish(job.ID, "job_done", map[string]any{"state": state.String()})
	} else {
		m.cfg.Events.Publish(job.ID, "job_failed", map[string]any{"state": state.String(), "error": errMsg})
	}

	m.mu.Lock()
	if ran {
		m.counts[StateRunning]--
		m.running--
		m.counts[state]++
	}
	delete(m.cancels, job.ID)
	if job.Key != "" && m.inflight[job.Key] == job {
		delete(m.inflight, job.Key)
	}
	m.stageLocked("queue_wait").add(queueWait)
	if ran {
		m.stageLocked("run").add(runTime)
	}
	m.mQueueWait.Observe(queueWait.Seconds())
	if ran {
		m.mRunTime.Observe(runTime.Seconds())
	}
	if res != nil && res.PinOpt != nil {
		m.stageLocked("pinopt").add(res.PinOpt.Elapsed)
	}
	m.retainLocked(job.ID)
	m.mu.Unlock()

	close(job.done)
}

func (m *Manager) stageLocked(name string) *stageAgg {
	a, ok := m.stages[name]
	if !ok {
		a = &stageAgg{}
		m.stages[name] = a
	}
	return a
}

// Stats snapshots the manager counters for /v1/stats and /debug/vars.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		QueueDepth:        len(m.queue),
		QueueCap:          m.cfg.QueueCap,
		Running:           m.running,
		Draining:          m.draining,
		RejectedQueueFull: m.rejectedFull,
		RejectedDraining:  m.rejectedDrain,
		ByState:           make(map[string]int64, len(m.counts)),
		Stages:            make(map[string]StageStats, len(m.stages)),
	}
	for s, n := range m.counts {
		if n != 0 {
			st.ByState[s.String()] = n
		}
	}
	st.QueueWait = m.mQueueWait.Snapshot()
	st.EventsDropped = m.cfg.Events.Dropped()
	if m.cache != nil {
		st.Cache = m.cache.Design.Stats()
		st.CacheHitRate = st.Cache.HitRate()
		st.PanelCache = m.cache.Panel.Stats()
		st.PanelCacheHitRate = st.PanelCache.HitRate()
		st.RouteCache = m.cache.Route.Stats()
		st.RouteCacheHitRate = st.RouteCache.HitRate()
	}
	names := make([]string, 0, len(m.stages))
	for name := range m.stages {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := m.stages[name]
		agg := StageStats{Count: a.count, MaxMS: float64(a.max) / float64(time.Millisecond)}
		if a.count > 0 {
			agg.MeanMS = float64(a.sum) / float64(a.count) / float64(time.Millisecond)
		}
		st.Stages[name] = agg
	}
	return st
}

// Drain stops accepting submissions, lets queued and running jobs finish,
// and returns once everything is terminal. If ctx fires first, the
// contexts of running jobs are canceled and not-yet-started queued jobs
// are failed without running; Drain then waits for the workers to
// acknowledge and returns ctx.Err(). Drain is idempotent; only the first
// call closes the queue.
func (m *Manager) Drain(ctx context.Context) error {
	m.mu.Lock()
	already := m.draining
	m.draining = true
	m.mu.Unlock()
	if !already {
		// Submit rejects with ErrDraining before reaching the channel,
		// and it checks under mu, so no send can race this close.
		close(m.queue)
	}

	done := make(chan struct{})
	go func() {
		m.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	m.mu.Lock()
	m.hardStop = true
	for _, cancel := range m.cancels {
		cancel()
	}
	m.mu.Unlock()
	<-done
	return ctx.Err()
}
