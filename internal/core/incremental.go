package core

import (
	"context"

	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/pipeline"
	"cpr/internal/router"
	"cpr/internal/telemetry"
	"cpr/internal/verify"
)

// reuseInputs carries everything a rerun may splice from a previous
// run's artifacts. All zero on cold runs.
type reuseInputs struct {
	// panels maps panel content key -> previous panel artifact.
	panels map[string]*pipeline.PanelArtifact
	// routes maps route content key -> previous region route bundle
	// (strict splicing; exact by construction).
	routes map[string]*pipeline.RouteArtifact
	// warm maps net name+"\n"+signature -> previous route (eco-fast
	// warm-starting; legal-but-divergent, verified after routing).
	warm map[string]*router.NetRoute
}

// any reports whether any routing reuse source is present.
func (ru reuseInputs) anyRouting(opts Options) bool {
	return ru.routes != nil || ru.warm != nil || opts.RouteCache != nil
}

// routeIncremental runs the negotiation router for ModeCPR with region
// splicing and warm-starting. The router must already be seeded. It
// fills res.Artifacts' routing half, res.Incremental's routing fields,
// and the cpr_router_nets_total provenance counters.
//
// Reuse never weakens the result contract:
//
//   - spliced regions are selected purely by route content key
//     (pipeline.RouteKeyFor covers every routing input of the region),
//     so splicing is byte-identical to re-routing — strict mode;
//   - warm-started runs (eco-fast) are re-verified with verify.Check,
//     and fall back to a full cold run on any violation.
func routeIncremental(ctx context.Context, d *design.Design, g *grid.Graph, opts Options,
	r *router.Router, seeds []PanelSeed, reuse reuseInputs, res *RunResult) *router.Result {

	plan := r.Partition()
	runOpts := router.RunOpts{Workers: opts.workers()}

	// Strict region splicing, consulted cache-first so the route cache's
	// hit counters account for every reused region (equal keys address
	// identical bundles, so lookup order cannot affect results).
	spliced := make(map[int]*router.SplicedRegion)
	if reuse.routes != nil || opts.RouteCache != nil {
		for _, rg := range plan.Regions {
			key := pipeline.RouteKeyFor(d, r, rg)
			var art *pipeline.RouteArtifact
			if opts.RouteCache != nil {
				if a, ok := routeCacheGet(ctx, opts.RouteCache, key); ok {
					art = a
				}
			}
			if art == nil && reuse.routes != nil {
				if a, ok := reuse.routes[key]; ok {
					art = a
					if opts.RouteCache != nil {
						opts.RouteCache.Put(key, a)
					}
				}
			}
			if art == nil || !sameInts(art.Nets, rg.Nets) {
				continue
			}
			spliced[rg.ID] = &router.SplicedRegion{Routes: art.Routes, Summary: art.Summary}
		}
	}

	// Eco-fast warm-starting for nets of dirtied regions: match by net
	// name plus routing signature (pin shapes, seeds, grid extents), so
	// ID shifts from edits cannot mismatch routes.
	var warm map[int]*router.NetRoute
	if reuse.warm != nil {
		for netID := range d.Nets {
			if _, ok := spliced[plan.NetRegion[netID]]; ok {
				continue
			}
			sig := pipeline.NetSignature(d, r, netID)
			if nr, ok := reuse.warm[d.Nets[netID].Name+"\n"+sig]; ok {
				cp := nr.Clone()
				cp.NetID = netID
				if warm == nil {
					warm = make(map[int]*router.NetRoute)
				}
				warm[netID] = cp
			}
		}
	}
	runOpts.Spliced, runOpts.Warm = spliced, warm

	rctx, span := telemetry.StartSpan(ctx, "route")
	span.SetAttr("regions", len(plan.Regions))
	span.SetAttr("regions_spliced", len(spliced))
	rres := r.RunPlan(rctx, plan, runOpts)
	splicedRegions := len(spliced)

	// Eco-fast safety net: a warm-started result must verify clean, or
	// the whole routing stage is redone cold (fresh grid — the warm run
	// has already mutated this one).
	if rres.WarmNets > 0 {
		if rep := verify.Check(d, g, rres); !rep.Ok() {
			span.SetAttr("eco_fallback", len(rep.Errors))
			g2 := grid.New(d)
			r2 := router.New(d, g2, r.Configuration())
			for _, s := range seeds {
				r2.SeedAssignment(s.Set, s.Solution)
			}
			r, g = r2, g2
			plan = r.Partition()
			rres = r.RunPlan(rctx, plan, router.RunOpts{Workers: opts.workers()})
			splicedRegions = 0
		}
	}
	span.SetAttr("routed_nets", rres.RoutedNets)
	span.SetAttr("vias", rres.Vias)
	span.SetAttr("wirelength", rres.Wirelength)
	span.SetAttr("negotiation_iters", rres.NegotiationIters)
	span.SetAttr("nets_spliced", rres.SplicedNets)
	span.SetAttr("nets_warm", rres.WarmNets)
	span.End()

	reg := telemetry.RegistryFrom(ctx)
	if reg != nil {
		reg.Histogram("cpr_stage_seconds", "Wall-clock time per pipeline stage.",
			telemetry.DefSecondsBuckets, telemetry.L("stage", "route")).
			Observe(rres.Elapsed.Seconds())
	}
	const netsHelp = "Nets finalized per routing run, by provenance."
	reg.Counter("cpr_router_nets_total", netsHelp, telemetry.L("source", "spliced")).
		Add(float64(rres.SplicedNets))
	reg.Counter("cpr_router_nets_total", netsHelp, telemetry.L("source", "warm")).
		Add(float64(rres.WarmNets))
	reg.Counter("cpr_router_nets_total", netsHelp, telemetry.L("source", "routed")).
		Add(float64(len(d.Nets) - rres.SplicedNets - rres.WarmNets))

	// Retain route bundles on the artifact set so this result can seed
	// the next rerun. A warm-started (eco-fast) result is legal but not
	// byte-equal to a cold run, so its bundles carry no content keys:
	// they can warm-start future eco-fast reruns but are never spliced
	// into a strict one.
	if res.Artifacts != nil {
		cacheable := rres.WarmNets == 0
		res.Artifacts.RouterFingerprint = pipeline.RouterFingerprint(r.Configuration())
		res.Artifacts.Routes = pipeline.BuildRouteArtifacts(d, r, plan, rres, cacheable)
		if opts.RouteCache != nil {
			for _, a := range res.Artifacts.Routes {
				if a.Key != "" {
					opts.RouteCache.Put(a.Key, a)
				}
			}
		}
	}

	if reuse.anyRouting(opts) && res.Incremental == nil {
		res.Incremental = &IncrementalStats{}
	}
	if res.Incremental != nil {
		res.Incremental.Regions = rres.Regions
		res.Incremental.RegionsSpliced = splicedRegions
		res.Incremental.NetsSpliced = rres.SplicedNets
		res.Incremental.NetsWarm = rres.WarmNets
		res.Incremental.NetsRerouted = len(d.Nets) - rres.SplicedNets - rres.WarmNets
	}
	return rres
}

// sameInts reports whether two int slices are element-wise equal.
func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
