package server

import (
	"bufio"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cpr/client"
	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/jobs"
	"cpr/internal/telemetry"
)

// newEventServer wires a manager with an event bus behind an httptest
// server, returning the Server too so tests can tune SSE knobs.
func newEventServer(t *testing.T, cfg jobs.Config) (*jobs.Manager, *client.Client, string, *Server) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	if cfg.Events == nil {
		cfg.Events = telemetry.NewEventBus(0)
	}
	mgr := jobs.New(cfg, jobs.NewResultCache(256, 0, 0))
	srv := New(mgr)
	srv.SetEvents(cfg.Events)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return mgr, client.New(ts.URL), ts.URL, srv
}

// TestJobEventStreamOrdering subscribes while the job is still running
// and checks the full lifecycle arrives live, in publish order, with
// strictly increasing sequence numbers and a clean close on job_done.
func TestJobEventStreamOrdering(t *testing.T) {
	release := make(chan struct{})
	_, c, _, _ := newEventServer(t, jobs.Config{
		MaxConcurrent: 1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			telemetry.EmitterFrom(ctx).Emit("lr_iteration", map[string]any{"iter": 1, "violations": 0})
			<-release
			return &core.RunResult{}, nil
		},
	})
	ctx := context.Background()

	job, err := c.SubmitSpec(ctx, smallSpec, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	events := make(chan []client.JobEvent, 1)
	go func() {
		var got []client.JobEvent
		err := c.StreamEvents(ctx, job.ID, 0, func(ev client.JobEvent) error {
			got = append(got, ev)
			if ev.Type == "job_started" {
				close(release) // the job finishes only once the stream is live
			}
			return nil
		})
		if err != nil {
			t.Errorf("StreamEvents: %v", err)
		}
		events <- got
	}()

	var got []client.JobEvent
	select {
	case got = <-events:
	case <-time.After(10 * time.Second):
		t.Fatal("stream did not close after job completion")
	}

	var types []string
	var lastSeq uint64
	for _, ev := range got {
		types = append(types, ev.Type)
		if ev.Seq <= lastSeq {
			t.Fatalf("sequence numbers not strictly increasing: %v then %v", lastSeq, ev.Seq)
		}
		lastSeq = ev.Seq
		if ev.Job != job.ID {
			t.Fatalf("event for job %q on %q's stream", ev.Job, job.ID)
		}
	}
	want := []string{"job_admitted", "job_started", "lr_iteration", "job_done"}
	if strings.Join(types, ",") != strings.Join(want, ",") {
		t.Fatalf("event order = %v, want %v", types, want)
	}
}

// TestJobEventStreamResume replays a finished job's stream, then
// reconnects with Last-Event-ID mid-way and checks the continuation
// picks up exactly after the resume point with no duplicates.
func TestJobEventStreamResume(t *testing.T) {
	_, c, baseURL, _ := newEventServer(t, jobs.Config{
		MaxConcurrent: 1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			em := telemetry.EmitterFrom(ctx)
			for i := 0; i < 5; i++ {
				em.Emit("lr_iteration", map[string]any{"iter": i})
			}
			return &core.RunResult{}, nil
		},
	})
	ctx := context.Background()

	job, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	var all []client.JobEvent
	if err := c.StreamEvents(ctx, job.ID, 0, func(ev client.JobEvent) error {
		all = append(all, ev)
		return nil
	}); err != nil {
		t.Fatalf("full stream: %v", err)
	}
	if len(all) < 4 {
		t.Fatalf("full stream has %d events, want >= 4", len(all))
	}

	cut := len(all) / 2
	var resumed []client.JobEvent
	if err := c.StreamEvents(ctx, job.ID, all[cut-1].Seq, func(ev client.JobEvent) error {
		resumed = append(resumed, ev)
		return nil
	}); err != nil {
		t.Fatalf("resumed stream: %v", err)
	}
	if len(resumed) != len(all)-cut {
		t.Fatalf("resumed stream has %d events, want %d", len(resumed), len(all)-cut)
	}
	for i, ev := range resumed {
		if ev.Seq != all[cut+i].Seq {
			t.Fatalf("resumed[%d].Seq = %d, want %d", i, ev.Seq, all[cut+i].Seq)
		}
	}

	// The ?after= query fallback behaves like the header.
	resp, err := http.Get(fmt.Sprintf("%s/v1/jobs/%s/events?after=%d", baseURL, job.ID, all[len(all)-2].Seq))
	if err != nil {
		t.Fatalf("GET ?after=: %v", err)
	}
	defer resp.Body.Close()
	body := make([]byte, 64<<10)
	n, _ := resp.Body.Read(body)
	frames := string(body[:n])
	if !strings.Contains(frames, fmt.Sprintf("id: %d", all[len(all)-1].Seq)) {
		t.Fatalf("?after= replay missing the last event:\n%s", frames)
	}
	if strings.Contains(frames, fmt.Sprintf("id: %d\n", all[0].Seq)) {
		t.Fatalf("?after= replay included pre-resume events:\n%s", frames)
	}
}

// TestJobEventStreamHeartbeat holds a job open and checks heartbeat
// comments flow at the configured cadence while no events arrive.
func TestJobEventStreamHeartbeat(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	_, c, baseURL, srv := newEventServer(t, jobs.Config{
		MaxConcurrent: 1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			<-release
			return &core.RunResult{}, nil
		},
	})
	srv.SetEventHeartbeat(20 * time.Millisecond)
	ctx := context.Background()

	job, err := c.SubmitSpec(ctx, smallSpec, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	resp, err := http.Get(baseURL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	deadline := time.Now().Add(5 * time.Second)
	beats := 0
	for sc.Scan() && beats < 3 {
		if strings.HasPrefix(sc.Text(), ": hb") {
			beats++
		}
		if time.Now().After(deadline) {
			break
		}
	}
	if beats < 3 {
		t.Fatalf("saw %d heartbeats in 5s at 20ms cadence, want >= 3", beats)
	}
}

// TestJobEventStreamSlowConsumerDrops stalls an SSE reader while the job
// floods the bus and checks events are dropped (and counted) instead of
// the publisher blocking — the reader must never slow the solver.
func TestJobEventStreamSlowConsumerDrops(t *testing.T) {
	started := make(chan struct{})
	flood := make(chan struct{})
	release := make(chan struct{})
	mgr, c, baseURL, _ := newEventServer(t, jobs.Config{
		MaxConcurrent: 1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			close(started)
			<-flood
			em := telemetry.EmitterFrom(ctx)
			// Far more than the subscriber buffer (256) plus what socket
			// buffers can absorb: each event carries a ~1KiB payload.
			pad := strings.Repeat("x", 1024)
			for i := 0; i < 5000; i++ {
				em.Emit("lr_iteration", map[string]any{"iter": i, "pad": pad})
			}
			<-release
			return &core.RunResult{}, nil
		},
	})
	ctx := context.Background()

	job, err := c.SubmitSpec(ctx, smallSpec, nil)
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	<-started

	// Open the stream but never read the body: the subscriber channel
	// fills once the TCP and handler buffers are full.
	resp, err := http.Get(baseURL + "/v1/jobs/" + job.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	close(flood)

	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := mgr.Stats(); st.EventsDropped > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no events dropped: a stalled reader back-pressured the bus")
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(release)

	// The drop counter is also exported on /metrics.
	mresp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	var metrics strings.Builder
	sc := bufio.NewScanner(mresp.Body)
	for sc.Scan() {
		metrics.WriteString(sc.Text() + "\n")
	}
	if !strings.Contains(metrics.String(), "cpr_events_dropped_total") {
		t.Fatal("/metrics missing cpr_events_dropped_total")
	}
	for _, line := range strings.Split(metrics.String(), "\n") {
		if strings.HasPrefix(line, "cpr_events_dropped_total") && strings.HasSuffix(line, " 0") {
			t.Fatalf("cpr_events_dropped_total still zero: %s", line)
		}
	}
}

// TestJobEventStream404s mirrors the trace endpoint's not-found
// behavior: unknown jobs, disabled streaming, and cached jobs all 404
// with a reason.
func TestJobEventStream404s(t *testing.T) {
	run := func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
		return &core.RunResult{}, nil
	}
	_, c, _, _ := newEventServer(t, jobs.Config{MaxConcurrent: 1, Run: run})
	ctx := context.Background()

	wantStatus := func(err error, frag string) {
		t.Helper()
		var se *client.StatusError
		if err == nil || !asStatusError(err, &se) || se.Code != http.StatusNotFound {
			t.Fatalf("err = %v, want 404", err)
		}
		if !strings.Contains(se.Message, frag) {
			t.Fatalf("404 message %q missing %q", se.Message, frag)
		}
	}

	wantStatus(c.StreamEvents(ctx, "nope", 0, func(client.JobEvent) error { return nil }), "unknown job")

	// A cache-served job has no event stream.
	if _, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true}); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	cached, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("cached submit: %v", err)
	}
	if !cached.Cached {
		t.Fatalf("second submission not cached: %+v", cached)
	}
	wantStatus(c.StreamEvents(ctx, cached.ID, 0, func(client.JobEvent) error { return nil }), "served from cache")

	// A server without a bus 404s every stream.
	mgr2 := jobs.New(jobs.Config{MaxConcurrent: 1, Run: run}, jobs.NewResultCache(16, 0, 0))
	ts2 := httptest.NewServer(New(mgr2).Handler())
	t.Cleanup(ts2.Close)
	c2 := client.New(ts2.URL)
	job2, err := c2.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("submit (no bus): %v", err)
	}
	wantStatus(c2.StreamEvents(ctx, job2.ID, 0, func(client.JobEvent) error { return nil }), "streaming disabled")
}

// TestDebugEventsEndpoint checks the flight recorder answers with the
// ring after a job ran with no tracing enabled, and 404s without a bus.
func TestDebugEventsEndpoint(t *testing.T) {
	_, c, _, _ := newEventServer(t, jobs.Config{
		MaxConcurrent: 1,
		// TraceJobs deliberately left false: the recorder must not depend
		// on tracing.
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			return &core.RunResult{}, nil
		},
	})
	ctx := context.Background()
	if _, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true}); err != nil {
		t.Fatalf("submit: %v", err)
	}

	raw, err := c.DebugEvents(ctx)
	if err != nil {
		t.Fatalf("DebugEvents: %v", err)
	}
	dump := string(raw)
	if !strings.Contains(dump, `"format": "cpr-events-v1"`) {
		t.Fatalf("dump missing envelope:\n%s", dump)
	}
	for _, typ := range []string{"job_admitted", "job_started", "job_done"} {
		if !strings.Contains(dump, typ) {
			t.Fatalf("dump missing %s event:\n%s", typ, dump)
		}
	}

	mgr2 := jobs.New(jobs.Config{MaxConcurrent: 1}, jobs.NewResultCache(16, 0, 0))
	ts2 := httptest.NewServer(New(mgr2).Handler())
	t.Cleanup(ts2.Close)
	if _, err := client.New(ts2.URL).DebugEvents(ctx); err == nil {
		t.Fatal("DebugEvents succeeded with no recorder configured")
	}
}

// asStatusError unwraps err into a *client.StatusError.
func asStatusError(err error, target **client.StatusError) bool {
	se, ok := err.(*client.StatusError)
	if ok {
		*target = se
	}
	return ok
}
