package cutmask

import (
	"testing"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/router"
	"cpr/internal/tech"
)

func routed(t *testing.T, d *design.Design) (*grid.Graph, *router.Result) {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := router.New(d, g, router.Config{}).Run()
	return g, res
}

func TestSingleStraightNet(t *testing.T) {
	d := design.New("one", 30, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(5, 4, 5, 4))
	d.AddPin("p1", n, geom.MakeRect(20, 4, 20, 4))
	g, res := routed(t, d)
	if res.RoutedNets != 1 {
		t.Fatal("not routed")
	}
	rep := Analyze(d, g, res, Params{})
	// One M2 strip fully inside the grid: two line-end cuts.
	if rep.LineEnds != 2 {
		t.Errorf("LineEnds = %d, want 2", rep.LineEnds)
	}
	if rep.MaskComplexity() != 2 {
		t.Errorf("shapes = %d, want 2", rep.MaskComplexity())
	}
	if rep.Conflicts != 0 {
		t.Errorf("conflicts = %d, want 0", rep.Conflicts)
	}
}

func TestBoundaryEndsNeedNoCut(t *testing.T) {
	// A strip that would extend past the boundary loses that cut.
	d := design.New("edge", 12, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(0, 4, 0, 4))
	d.AddPin("p1", n, geom.MakeRect(11, 4, 11, 4))
	g, res := routed(t, d)
	if res.RoutedNets != 1 {
		t.Skip("boundary net unrouted")
	}
	rep := Analyze(d, g, res, Params{})
	if rep.LineEnds != 0 {
		t.Errorf("LineEnds = %d, want 0 for wall-to-wall strip", rep.LineEnds)
	}
}

func TestAlignedCutsMerge(t *testing.T) {
	// Two parallel nets on adjacent tracks with identical extents: their
	// cuts align vertically and must merge into two shapes.
	d := design.New("merge", 30, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(5, 3, 5, 3))
	d.AddPin("a1", n0, geom.MakeRect(20, 3, 20, 3))
	d.AddPin("b0", n1, geom.MakeRect(5, 4, 5, 4))
	d.AddPin("b1", n1, geom.MakeRect(20, 4, 20, 4))
	g, res := routed(t, d)
	if res.RoutedNets != 2 {
		t.Skip("fixture did not route both nets straight")
	}
	rep := Analyze(d, g, res, Params{})
	if rep.LineEnds < 4 {
		t.Fatalf("LineEnds = %d, want >= 4", rep.LineEnds)
	}
	if rep.MaskComplexity() >= rep.LineEnds {
		t.Errorf("no merging happened: %d shapes for %d line-ends",
			rep.MaskComplexity(), rep.LineEnds)
	}
	// Merged shapes must span both tracks.
	merged := 0
	for _, s := range rep.Shapes {
		if s.TrackHi > s.TrackLo {
			merged++
			if s.Cuts < 2 {
				t.Errorf("merged shape with %d cuts", s.Cuts)
			}
		}
	}
	if merged == 0 {
		t.Error("expected at least one merged shape")
	}
}

func TestConflictDetection(t *testing.T) {
	// Hand-built shapes: same track range, 1 apart with spacing 2.
	shapes := []Shape{
		{Layer: tech.M2, Pos: 10, TrackLo: 3, TrackHi: 3, Cuts: 1},
		{Layer: tech.M2, Pos: 11, TrackLo: 4, TrackHi: 4, Cuts: 1},
		{Layer: tech.M2, Pos: 20, TrackLo: 3, TrackHi: 3, Cuts: 1}, // far away
		{Layer: tech.M3, Pos: 11, TrackLo: 3, TrackHi: 3, Cuts: 1}, // other layer
	}
	if got := tech.CountCutConflicts(shapes, 2); got != 1 {
		t.Errorf("conflicts = %d, want 1", got)
	}
	// Distant tracks never conflict.
	shapes[1].TrackLo, shapes[1].TrackHi = 8, 8
	if got := tech.CountCutConflicts(shapes, 2); got != 0 {
		t.Errorf("conflicts = %d, want 0", got)
	}
}

func TestExplicitZeroParamsHonored(t *testing.T) {
	// Regression: an explicit zero must not be conflated with "unset".
	// Params once used zero as the unset sentinel, so CutSpacing: 0
	// silently became the default 2; the pointer form keeps the two
	// cases distinct.
	d := design.New("zero", 30, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(5, 3, 5, 3))
	d.AddPin("a1", n0, geom.MakeRect(12, 3, 12, 3))
	d.AddPin("b0", n1, geom.MakeRect(17, 3, 17, 3))
	d.AddPin("b1", n1, geom.MakeRect(24, 3, 24, 3))
	g, res := routed(t, d)
	if res.RoutedNets != 2 {
		t.Skip("fixture did not route both nets")
	}

	def := Analyze(d, g, res, Params{})
	zero := Analyze(d, g, res, Params{CutSpacing: Int(0)})
	if zero.Conflicts != 0 {
		t.Errorf("CutSpacing=0 found %d conflicts, want 0 (no pair is closer than 0)", zero.Conflicts)
	}
	if got := Analyze(d, g, res, Params{CutSpacing: Int(2)}); got.Conflicts != def.Conflicts {
		t.Errorf("explicit default CutSpacing=2 gives %d conflicts, unset gives %d",
			got.Conflicts, def.Conflicts)
	}

	// MergeTolerance: explicit zero must equal the default (also zero),
	// and both must differ from a loose tolerance on this fixture only
	// if merging actually changes — sanity-check the plumbing by value.
	if got := Analyze(d, g, res, Params{MergeTolerance: Int(0)}); got.MaskComplexity() != def.MaskComplexity() {
		t.Errorf("explicit MergeTolerance=0 gives %d shapes, unset gives %d",
			got.MaskComplexity(), def.MaskComplexity())
	}
}

func TestCutExtractionPositions(t *testing.T) {
	d := design.New("pos", 30, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(10, 4, 10, 4))
	d.AddPin("p1", n, geom.MakeRect(15, 4, 15, 4))
	g, res := routed(t, d)
	rep := Analyze(d, g, res, Params{})
	// Strip [10,15], extension 1 -> extended [9,16] -> cuts at 8 and 17.
	want := map[int]bool{8: true, 17: true}
	for _, s := range rep.Shapes {
		if !want[s.Pos] {
			t.Errorf("unexpected cut at %d", s.Pos)
		}
		delete(want, s.Pos)
	}
	if len(want) != 0 {
		t.Errorf("missing cuts at %v", want)
	}
}

func TestEmptyResult(t *testing.T) {
	d := design.New("empty", 20, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p", n, geom.MakeRect(5, 5, 5, 5))
	g, res := routed(t, d)
	rep := Analyze(d, g, res, Params{})
	// A single-pin net routes trivially with no metal: no cuts.
	if rep.LineEnds != 0 || rep.MaskComplexity() != 0 || rep.Conflicts != 0 {
		t.Errorf("report = %+v, want empty", rep)
	}
}
