package router

import (
	"container/heap"
	"math"

	"cpr/internal/grid"
	"cpr/internal/tech"
)

// searchWindow restricts a net's search to a rectangle around its bounding
// box. All three layers inside the rectangle are searchable.
type searchWindow struct {
	x0, y0 int
	w, h   int
}

func (sw searchWindow) contains(x, y int) bool {
	return x >= sw.x0 && x < sw.x0+sw.w && y >= sw.y0 && y < sw.y0+sw.h
}

// local converts grid coordinates to a window-local dense index.
func (sw searchWindow) local(x, y, z int) int {
	return (z*sw.h+(y-sw.y0))*sw.w + (x - sw.x0)
}

func (sw searchWindow) size() int { return sw.w * sw.h * tech.NumLayers }

// pqItem is a priority queue entry (lazy-deletion Dijkstra).
type pqItem struct {
	dist float64
	node int // window-local index
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	item := old[n-1]
	*q = old[:n-1]
	return item
}

// search runs multi-source Dijkstra from the tree nodes to any target
// node, restricted to the window and to nodes enterable by netID. The
// node cost combines the technology edge cost with PathFinder history and
// present congestion penalties. It returns the path from a source to the
// reached target (inclusive).
func (s *shard) search(netID int, sources []grid.NodeID, targets map[grid.NodeID]bool,
	win searchWindow, presFac float64) ([]grid.NodeID, bool) {

	r := s.Router
	if len(targets) == 0 {
		return nil, false
	}
	size := win.size()
	dist := make([]float64, size)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	prev := make([]int32, size)
	for i := range prev {
		prev[i] = -1
	}
	toGlobal := make([]grid.NodeID, size)

	q := make(pq, 0, 64)
	push := func(id grid.NodeID, li int, d float64, from int32) {
		if d >= dist[li] {
			return
		}
		dist[li] = d
		prev[li] = from
		toGlobal[li] = id
		heap.Push(&q, pqItem{dist: d, node: li})
	}

	for _, s := range sources {
		x, y, z := r.g.Coords(s)
		if !win.contains(x, y) {
			continue
		}
		if !r.g.Enterable(s, netID) {
			continue
		}
		li := win.local(x, y, z)
		push(s, li, 0, -2) // -2 marks a source
	}
	if q.Len() == 0 {
		return nil, false
	}
	heap.Init(&q)

	// nodeCost is the congestion-aware cost of entering a node. For wire
	// cells it also prices the occupancy of cells within the line-end
	// clearance margin along the track direction: a path that stops near
	// another net's strip will overlap it with its own clearance cells,
	// and pricing the neighbourhood is what lets negotiation discover
	// that before the overlap materializes.
	//
	// Engines with a cross-track conflict radius (TPL color spacing)
	// additionally price occupancy on neighbouring tracks — the stitch
	// cost term — so dense conflict neighbourhoods are avoided before
	// they materialize in the conflict graph. The term is skipped
	// entirely at radius zero, keeping the float arithmetic of the
	// radius-free engines untouched.
	rules := r.rules()
	margin := rules.ClearanceMargin()
	cRadius := rules.ConflictRadius()
	cWeight := rules.ConflictWeight()
	nodeCost := func(id grid.NodeID, x, y, z int) float64 {
		c := r.g.History(id)
		if presFac <= 0 {
			return c
		}
		if occ := r.g.Occupancy(id); occ > 0 {
			c += presFac * float64(occ)
		}
		switch z {
		case tech.M2:
			for m := 1; m <= margin; m++ {
				if x-m >= 0 {
					if occ := r.g.Occupancy(r.g.ID(x-m, y, tech.M2)); occ > 0 {
						c += 0.5 * presFac * float64(occ)
					}
				}
				if x+m < r.g.W {
					if occ := r.g.Occupancy(r.g.ID(x+m, y, tech.M2)); occ > 0 {
						c += 0.5 * presFac * float64(occ)
					}
				}
			}
			for m := 1; m <= cRadius; m++ {
				if y-m >= 0 {
					if occ := r.g.Occupancy(r.g.ID(x, y-m, tech.M2)); occ > 0 {
						c += cWeight * presFac * float64(occ)
					}
				}
				if y+m < r.g.H {
					if occ := r.g.Occupancy(r.g.ID(x, y+m, tech.M2)); occ > 0 {
						c += cWeight * presFac * float64(occ)
					}
				}
			}
		case tech.M3:
			for m := 1; m <= margin; m++ {
				if y-m >= 0 {
					if occ := r.g.Occupancy(r.g.ID(x, y-m, tech.M3)); occ > 0 {
						c += 0.5 * presFac * float64(occ)
					}
				}
				if y+m < r.g.H {
					if occ := r.g.Occupancy(r.g.ID(x, y+m, tech.M3)); occ > 0 {
						c += 0.5 * presFac * float64(occ)
					}
				}
			}
			for m := 1; m <= cRadius; m++ {
				if x-m >= 0 {
					if occ := r.g.Occupancy(r.g.ID(x-m, y, tech.M3)); occ > 0 {
						c += cWeight * presFac * float64(occ)
					}
				}
				if x+m < r.g.W {
					if occ := r.g.Occupancy(r.g.ID(x+m, y, tech.M3)); occ > 0 {
						c += cWeight * presFac * float64(occ)
					}
				}
			}
		}
		return c
	}

	var goal int32 = -1
	for q.Len() > 0 {
		item := heap.Pop(&q).(pqItem)
		li := item.node
		if item.dist > dist[li] {
			continue // stale entry
		}
		id := toGlobal[li]
		if targets[id] {
			goal = int32(li)
			break
		}
		x, y, z := r.g.Coords(id)

		relax := func(nx, ny, nz int, edgeCost int) {
			if !win.contains(nx, ny) {
				return
			}
			nid := r.g.ID(nx, ny, nz)
			if !r.g.Enterable(nid, netID) {
				return
			}
			if s.avoid != nil && s.avoid[nid] {
				return
			}
			nli := win.local(nx, ny, nz)
			nd := item.dist + float64(edgeCost) + nodeCost(nid, nx, ny, nz)
			push(nid, nli, nd, int32(li))
		}

		base := rules.WireCost()
		switch z {
		case tech.M1:
			relax(x, y, tech.M2, r.g.ViaCost(x, y, 0))
		case tech.M2:
			relax(x-1, y, tech.M2, base)
			relax(x+1, y, tech.M2, base)
			relax(x, y, tech.M1, r.g.ViaCost(x, y, 0))
			relax(x, y, tech.M3, r.g.ViaCost(x, y, 1))
		case tech.M3:
			relax(x, y-1, tech.M3, base)
			relax(x, y+1, tech.M3, base)
			relax(x, y, tech.M2, r.g.ViaCost(x, y, 1))
		}
	}
	if goal < 0 {
		return nil, false
	}

	// Walk back to the source.
	var rev []grid.NodeID
	for cur := goal; cur >= 0; {
		rev = append(rev, toGlobal[cur])
		p := prev[cur]
		if p == -2 {
			break
		}
		cur = p
	}
	// Reverse into source->target order.
	path := make([]grid.NodeID, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path, true
}
