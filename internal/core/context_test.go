package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"cpr/internal/synth"
)

// TestRunContextCanceledBeforeStart verifies a pre-canceled context stops
// the run before any work and surfaces context.Canceled.
func TestRunContextCanceledBeforeStart(t *testing.T) {
	d := mustGenerate(t, synth.Spec{Name: "ctx-pre", Nets: 40, Width: 100, Height: 40, Seed: 5})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, d, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on canceled ctx: got %v, want context.Canceled", err)
	}
}

// TestRunContextDeadline verifies that a deadline expiring mid-run makes
// the pipeline abandon remaining work and report DeadlineExceeded.
func TestRunContextDeadline(t *testing.T) {
	d := mustGenerate(t, synth.Spec{Name: "ctx-dl", Nets: 300, Width: 260, Height: 120, Seed: 7})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	// The nanosecond deadline has fired by the time the first panel's
	// ctx check runs, so the error must surface from inside the panels.
	_, err := RunContext(ctx, d, Options{Workers: 2})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext past deadline: got %v, want context.DeadlineExceeded", err)
	}
}

// TestOptimizePinAccessContextCancelMidRun cancels while panels are being
// solved and verifies the optimization errors out instead of completing.
func TestOptimizePinAccessContextCancelMidRun(t *testing.T) {
	d := mustGenerate(t, synth.Spec{Name: "ctx-mid", Nets: 300, Width: 260, Height: 120, Seed: 11})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(time.Millisecond)
		cancel()
	}()
	_, _, err := OptimizePinAccessContext(ctx, d, Options{Workers: 1})
	if err == nil {
		// The run can legitimately finish before the 1ms cancel on a
		// fast machine; only an error must wrap the context cause.
		t.Skip("run finished before cancellation fired")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-run cancel: got %v, want wrapped context.Canceled", err)
	}
}

// TestRunContextNeverCanceledMatchesRun is the contract the cprd result
// cache depends on: threading a live-but-never-fired context through the
// pipeline must not perturb the result in any way.
func TestRunContextNeverCanceledMatchesRun(t *testing.T) {
	spec := synth.Spec{Name: "ctx-eq", Nets: 120, Width: 160, Height: 60, Seed: 13}
	base, err := Run(mustGenerate(t, spec), Options{Workers: 2})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
	defer cancel()
	got, err := RunContext(ctx, mustGenerate(t, spec), Options{Workers: 2})
	if err != nil {
		t.Fatalf("RunContext: %v", err)
	}

	bm, gm := base.Metrics.ZeroTimes(), got.Metrics.ZeroTimes()
	if !reflect.DeepEqual(bm, gm) {
		t.Errorf("metrics diverged:\n Run        %+v\n RunContext %+v", bm, gm)
	}
	if base.PinOpt == nil || got.PinOpt == nil {
		t.Fatalf("missing pin opt reports: %v %v", base.PinOpt, got.PinOpt)
	}
	brep, grep := reportFingerprint(base.PinOpt), reportFingerprint(got.PinOpt)
	if !reflect.DeepEqual(brep, grep) {
		t.Errorf("pin opt reports diverged:\n Run        %+v\n RunContext %+v", brep, grep)
	}
	if base.Router.RoutedNets != got.Router.RoutedNets ||
		base.Router.Vias != got.Router.Vias ||
		base.Router.Wirelength != got.Router.Wirelength {
		t.Errorf("router results diverged: Run %d/%d/%d, RunContext %d/%d/%d",
			base.Router.RoutedNets, base.Router.Vias, base.Router.Wirelength,
			got.Router.RoutedNets, got.Router.Vias, got.Router.Wirelength)
	}
}
