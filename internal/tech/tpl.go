package tech

import (
	"fmt"
	"sort"
)

// tplRules is the triple patterning engine (per the Mr.TPL / TRIAD line
// of work): same-layer segments of different nets closer than
// ColorSpacing — along the track or across adjacent tracks — conflict
// and must take different masks. The analysis builds that conflict
// graph over the routed (extended) segments, greedily 3-colors it in
// deterministic order, and inserts a stitch (splitting a segment across
// two masks) when no single color is legal; segments that stay
// uncolorable even with a stitch are hard legality errors.
//
// During negotiation the router additionally prices other nets'
// occupancy on tracks within ConflictRadius — the stitch cost term —
// so dense conflict neighbourhoods are avoided before they materialize
// in the conflict graph.
type tplRules struct {
	lineEndRules
	colorSpacing  int
	stitchPenalty int
}

func (r tplRules) Name() string { return EngineTPL }
func (r tplRules) Colors() int  { return 3 }

func (r tplRules) ClearanceMargin() int     { return r.ext + (r.spacing+1)/2 }
func (r tplRules) AvoidMargin() int         { return r.ext + r.spacing }
func (r tplRules) SequentialClearance() int { return 2*r.ext + r.spacing }

// RuleReach adds the color spacing on top of the line-end reach: the
// conflict graph (and the negotiation pricing term) couples strips up
// to ColorSpacing tracks apart.
func (r tplRules) RuleReach() int { return r.ext + r.minLen + r.spacing + 2 + r.colorSpacing }

// ConflictRadius prices occupancy on tracks strictly closer than the
// color spacing — exactly the tracks a conflict edge can reach.
func (r tplRules) ConflictRadius() int { return r.colorSpacing - 1 }

func (r tplRules) ConflictWeight() float64 { return 0.25 * float64(r.stitchPenalty) }

// TrackViolations: the base line-end spacing still applies under TPL.
func (r tplRules) TrackViolations(strips []Seg, vio func(net int)) {
	for i := 1; i < len(strips); i++ {
		a, b := strips[i-1], strips[i]
		if a.Net == b.Net {
			continue
		}
		if b.Lo-a.Hi-1 < r.spacing {
			vio(a.Net)
			vio(b.Net)
		}
	}
}

func (r tplRules) CheckTrack(layer, track int, strips []Seg, netName func(int) string,
	errf func(format string, args ...interface{})) {

	for i := 1; i < len(strips); i++ {
		a, b := strips[i-1], strips[i]
		if a.Net == b.Net {
			continue
		}
		gap := b.Lo - a.Hi - 1
		if gap < r.spacing {
			errf("line-end spacing violation on layer %d track %d between nets %s and %s (gap %d < %d)",
				layer, track, netName(a.Net), netName(b.Net), gap, r.spacing)
		}
	}
	for _, s := range strips {
		if s.Hi-s.Lo+1 < r.minLen {
			errf("minimum line length violation on layer %d track %d net %s (len %d < %d)",
				layer, track, netName(s.Net), s.Hi-s.Lo+1, r.minLen)
		}
	}
}

// atom is one single-mask piece of metal during coloring: a whole
// segment, or one half of a stitched segment.
type atom struct {
	seg    int // index into the input slice
	layer  int
	track  int
	lo, hi int
	color  int
}

// AnalyzeMask 3-colors the conflict graph over the extended segments.
// Deterministic greedy order: (layer, track, lo, hi, net). A segment
// with no free color tries every stitch position (both halves at least
// MinLineLen long) before being declared uncolorable.
func (r tplRules) AnalyzeMask(segs []Seg, w, h int) *MaskReport {
	rep := &MaskReport{
		Engine:   EngineTPL,
		Colors:   3,
		Segments: len(segs),
		ColorOf:  make([]int, len(segs)),
	}
	ext := extendAll(segs, w, h, r.lineEndRules)

	order := make([]int, len(ext))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := ext[order[a]], ext[order[b]]
		if sa.Layer != sb.Layer {
			return sa.Layer < sb.Layer
		}
		if sa.Track != sb.Track {
			return sa.Track < sb.Track
		}
		if sa.Lo != sb.Lo {
			return sa.Lo < sb.Lo
		}
		if sa.Hi != sb.Hi {
			return sa.Hi < sb.Hi
		}
		return sa.Net < sb.Net
	})

	// Colored atoms bucketed by (layer, track) for neighbourhood scans.
	type key struct{ layer, track int }
	placed := make(map[key][]atom)
	conflicts := func(layer, track, lo, hi, net int) []atom {
		var out []atom
		for dt := -(r.colorSpacing - 1); dt <= r.colorSpacing-1; dt++ {
			for _, a := range placed[key{layer, track + dt}] {
				if segs[a.seg].Net == net {
					continue
				}
				if spanDist(lo, hi, a.lo, a.hi) < r.colorSpacing {
					out = append(out, a)
				}
			}
		}
		return out
	}
	freeColors := func(layer, track, lo, hi, net int) [3]bool {
		free := [3]bool{true, true, true}
		for _, a := range conflicts(layer, track, lo, hi, net) {
			free[a.color] = false
		}
		return free
	}
	firstFree := func(free [3]bool) int {
		for c := 0; c < 3; c++ {
			if free[c] {
				return c
			}
		}
		return -1
	}

	for _, idx := range order {
		s := ext[idx]
		net := segs[idx].Net
		k := key{s.Layer, s.Track}
		edges := conflicts(s.Layer, s.Track, s.Lo, s.Hi, net)
		rep.Conflicts += len(edges)
		var free [3]bool
		free[0], free[1], free[2] = true, true, true
		for _, a := range edges {
			free[a.color] = false
		}
		if c := firstFree(free); c >= 0 {
			rep.ColorOf[idx] = c
			rep.Shapes++
			placed[k] = append(placed[k], atom{seg: idx, layer: s.Layer, track: s.Track, lo: s.Lo, hi: s.Hi, color: c})
			continue
		}
		// Stitch: split so each half sees a smaller conflict
		// neighbourhood; the halves take different masks.
		stitched := false
		for split := s.Lo + r.minLen - 1; split <= s.Hi-r.minLen; split++ {
			fl := freeColors(s.Layer, s.Track, s.Lo, split, net)
			fr := freeColors(s.Layer, s.Track, split+1, s.Hi, net)
			cl, cr := -1, -1
			for a := 0; a < 3 && cl < 0; a++ {
				if !fl[a] {
					continue
				}
				for b := 0; b < 3; b++ {
					if b != a && fr[b] {
						cl, cr = a, b
						break
					}
				}
			}
			if cl < 0 {
				continue
			}
			rep.Stitches++
			rep.Shapes += 2
			rep.ColorOf[idx] = cl
			placed[k] = append(placed[k],
				atom{seg: idx, layer: s.Layer, track: s.Track, lo: s.Lo, hi: split, color: cl},
				atom{seg: idx, layer: s.Layer, track: s.Track, lo: split + 1, hi: s.Hi, color: cr})
			stitched = true
			break
		}
		if !stitched {
			rep.Uncolorable++
			rep.ColorOf[idx] = -1
			rep.Errors = append(rep.Errors,
				fmt.Sprintf("tpl: uncolorable segment net %d layer %d track %d span [%d,%d]",
					net, s.Layer, s.Track, s.Lo, s.Hi))
		}
	}
	return rep
}

// spanDist is the along-track distance between two inclusive spans: 0
// when they overlap, otherwise the cell distance between the facing
// ends (abutting spans have distance 1) — the same metric as the track
// delta, so "closer than ColorSpacing" means the same thing along and
// across tracks.
func spanDist(alo, ahi, blo, bhi int) int {
	if blo > ahi {
		return blo - ahi
	}
	if alo > bhi {
		return alo - bhi
	}
	return 0
}
