// Package parallel is a stub of the repo's deterministic worker pool
// for the floatreduce golden tests. The analyzer identifies it by
// import path suffix; the implementation is irrelevant. It also proves
// the pool package itself is exempt: this accumulation into a captured
// float would be flagged anywhere else.
package parallel

// ForEach runs fn(i) for i in [0, n).
func ForEach(workers, n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// sum is pool-internal accumulation; exempt by package identity.
func sum(xs []float64) float64 {
	total := 0.0
	add := func(i int) { total += xs[i] }
	ForEach(1, len(xs), add)
	return total
}

var _ = sum
