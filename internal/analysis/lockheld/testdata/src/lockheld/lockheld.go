// Package lockheld exercises path-sensitive lock tracking: blocking
// work on a critical section is flagged, lock-check-unlock idioms and
// non-blocking select-with-default enqueues are not.
package lockheld

import (
	"net/http"
	"sync"
	"time"
)

type counter struct {
	mu sync.Mutex
	n  int
}

func direct(c *counter) {
	c.mu.Lock()
	time.Sleep(time.Millisecond) // want `blocking call to time\.Sleep while "c\.mu" is held \(locked at line \d+\)`
	c.n++
	c.mu.Unlock()
}

func unlockFirst(c *counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	time.Sleep(time.Millisecond)
}

func deferredUnlock(c *counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// A deferred unlock runs at return: the lock is held across the call.
	http.Get("http://peer/block") // want `blocking call to net/http\.Get while "c\.mu" is held`
}

func branchRelease(c *counter, fast bool) {
	c.mu.Lock()
	if fast {
		c.mu.Unlock()
		time.Sleep(time.Millisecond) // released on this path: clean
		return
	}
	c.n++
	time.Sleep(time.Millisecond) // want `blocking call to time\.Sleep while "c\.mu" is held`
	c.mu.Unlock()
}

func checkThenUnlock(c *counter) int {
	c.mu.Lock()
	if c.n > 0 {
		n := c.n
		c.mu.Unlock()
		return n
	}
	c.mu.Unlock()
	time.Sleep(time.Millisecond) // both paths released before here: clean
	return 0
}

func sendHeld(c *counter, ch chan int) {
	c.mu.Lock()
	ch <- 1 // want `channel send while "c\.mu" is held`
	c.mu.Unlock()
}

func tryEnqueue(c *counter, ch chan int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Select with a default never parks: the PR 7 fixed enqueue idiom.
	select {
	case ch <- 1:
		return true
	default:
		return false
	}
}

func waitHeld(c *counter, ch chan int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	select { // want `select with no default case while "c\.mu" is held`
	case v := <-ch:
		return v
	case <-ch:
		return 0
	}
}

func slowPath() {
	time.Sleep(time.Millisecond)
}

func callsHelper(c *counter) {
	c.mu.Lock()
	slowPath() // want `call that may block: call to time\.Sleep \(via lockheld\.slowPath\) while "c\.mu" is held`
	c.mu.Unlock()
}

func suppressed(c *counter) {
	c.mu.Lock()
	//cprlint:lockheld flush holds the lock by design; bounded single-page write
	time.Sleep(time.Millisecond)
	c.mu.Unlock()
}

type table struct {
	mu sync.RWMutex
	m  map[string]string
}

func readHeld(t *table, key string) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	time.Sleep(time.Millisecond) // want `blocking call to time\.Sleep while "t\.mu" is held`
	return t.m[key]
}

func literalRunsLater(c *counter) func() {
	c.mu.Lock()
	defer c.mu.Unlock()
	// The literal body executes under the eventual caller's lock state,
	// not this one: clean.
	return func() {
		time.Sleep(time.Millisecond)
	}
}
