package designio

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/synth"
	"cpr/internal/tech"
)

func sample(t *testing.T) *design.Design {
	t.Helper()
	d := design.New("sample", 40, 20, tech.Default())
	na := d.AddNet("a")
	nb := d.AddNet("b")
	d.AddPin("a0", na, geom.MakeRect(2, 2, 2, 3))
	d.AddPin("a1", na, geom.MakeRect(30, 2, 30, 3))
	d.AddPin("b0", nb, geom.MakeRect(10, 12, 11, 12))
	d.AddBlockage(tech.M2, geom.MakeRect(20, 5, 25, 5))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRoundTrip(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.Width != d.Width || got.Height != d.Height {
		t.Errorf("header mismatch: %s %dx%d", got.Name, got.Width, got.Height)
	}
	if !reflect.DeepEqual(got.Nets, d.Nets) {
		t.Errorf("nets mismatch:\n%+v\n%+v", got.Nets, d.Nets)
	}
	if !reflect.DeepEqual(got.Pins, d.Pins) {
		t.Errorf("pins mismatch:\n%+v\n%+v", got.Pins, d.Pins)
	}
	if !reflect.DeepEqual(got.Blockages, d.Blockages) {
		t.Errorf("blockages mismatch")
	}
	if *got.Tech != *d.Tech {
		t.Errorf("tech mismatch: %+v vs %+v", got.Tech, d.Tech)
	}
}

func TestRoundTripSynthetic(t *testing.T) {
	d, err := synth.Generate(synth.Spec{Name: "syn", Nets: 80, Width: 120, Height: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pins) != len(d.Pins) || len(got.Nets) != len(d.Nets) ||
		len(got.Blockages) != len(d.Blockages) {
		t.Fatal("structure count mismatch")
	}
	// Byte-identical on re-write (deterministic output).
	var buf2 bytes.Buffer
	if err := Write(&buf2, got); err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := Write(&buf3, d); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Error("serialization not deterministic across round trip")
	}
}

func TestCustomTechRoundTrip(t *testing.T) {
	tc := tech.Default()
	tc.TracksPerPanel = 8
	tc.ForbiddenViaCost = 20
	tc.LineEndExtension = 2
	d := design.New("custom", 30, 16, tc)
	n := d.AddNet("n")
	d.AddPin("p", n, geom.MakeRect(4, 4, 4, 5))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tech.TracksPerPanel != 8 || got.Tech.ForbiddenViaCost != 20 || got.Tech.LineEndExtension != 2 {
		t.Errorf("tech overrides lost: %+v", got.Tech)
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	text := `cpr-design 1
# a comment
design demo 20 10

net n0
pin p0 0 2 2 2 2
# trailing comment
`
	d, err := Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Pins) != 1 || d.Pins[0].Name != "p0" {
		t.Errorf("parsed %+v", d.Pins)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"bad magic", "nope 1\n"},
		{"bad version", "cpr-design 9\n"},
		{"pin before design", "cpr-design 1\npin p 0 1 1 1 1\n"},
		{"pin bad net", "cpr-design 1\ndesign d 10 10\npin p 3 1 1 1 1\n"},
		{"unknown record", "cpr-design 1\ndesign d 10 10\nwat 1\n"},
		{"short pin", "cpr-design 1\ndesign d 10 10\nnet n\npin p 0 1 1\n"},
		{"non-numeric", "cpr-design 1\ndesign d ten 10\n"},
		{"no design", "cpr-design 1\nnet n\n"},
		{"invalid design", "cpr-design 1\ndesign d 10 10\nnet n\n"}, // empty net fails Validate
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.text)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestSanitizeNames(t *testing.T) {
	d := design.New("has space", 20, 10, tech.Default())
	n := d.AddNet("net one")
	d.AddPin("pin\tone", n, geom.MakeRect(2, 2, 2, 2))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != "has_space" || got.Nets[0].Name != "net_one" || got.Pins[0].Name != "pin_one" {
		t.Errorf("sanitization wrong: %q %q %q", got.Name, got.Nets[0].Name, got.Pins[0].Name)
	}
}

// TestFuzzRoundTrip round-trips random generated designs.
func TestFuzzRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		d, err := synth.Generate(synth.Spec{
			Name: "fz", Nets: 20 + int(seed)*7, Width: 80, Height: 30, Seed: seed + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatal(err)
		}
		got, err := Read(&buf)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !reflect.DeepEqual(got.Pins, d.Pins) {
			t.Fatalf("seed %d: pins differ", seed)
		}
	}
}
