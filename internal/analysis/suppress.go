package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// SuppressionPrefix starts every cprlint suppression comment. The full
// syntax is
//
//	//cprlint:<name> <reason>
//
// where <name> is an analyzer name (or one of its aliases, e.g.
// "ordered" for maporder) and <reason> is mandatory free text justifying
// the suppression. A suppression applies to findings of that analyzer on
// its own line, or — when it is the only thing on its line — on the next
// line. A suppression without a reason is itself a finding.
const SuppressionPrefix = "//cprlint:"

// Suppression is one parsed //cprlint: comment.
type Suppression struct {
	// Name is the analyzer name or alias being suppressed.
	Name string
	// Reason is the mandatory justification text (may be empty in a
	// malformed comment; drivers must report that).
	Reason string
	// Pos is the comment's position.
	Pos token.Pos
	// File and Line locate the comment.
	File string
	Line int
	// OwnLine reports whether the comment is alone on its line (a
	// leading comment), in which case it covers the following line.
	OwnLine bool
}

// ParseSuppressions extracts every //cprlint: comment from a file.
func ParseSuppressions(fset *token.FileSet, f *ast.File) []Suppression {
	var out []Suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, SuppressionPrefix) {
				continue
			}
			body := strings.TrimPrefix(c.Text, SuppressionPrefix)
			name, reason, _ := strings.Cut(body, " ")
			pos := fset.Position(c.Slash)
			// The comment is alone on its line when nothing but
			// whitespace precedes it.
			ownLine := pos.Column == 1 || onlyIndentBefore(fset, f, c.Slash)
			out = append(out, Suppression{
				Name:    strings.TrimSpace(name),
				Reason:  strings.TrimSpace(reason),
				Pos:     c.Slash,
				File:    pos.Filename,
				Line:    pos.Line,
				OwnLine: ownLine,
			})
		}
	}
	return out
}

// onlyIndentBefore reports whether every AST node on the comment's line
// starts at or after the comment — i.e. the comment leads its line. It
// approximates by checking that no non-comment node ends on that line
// before the comment starts.
func onlyIndentBefore(fset *token.FileSet, f *ast.File, slash token.Pos) bool {
	line := fset.Position(slash).Line
	lead := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !lead {
			return false
		}
		if _, ok := n.(*ast.Comment); ok {
			return false
		}
		end := n.End()
		if end.IsValid() && end < slash && fset.Position(end).Line == line {
			// Something real ends on this line before the comment.
			if _, isFile := n.(*ast.File); !isFile {
				lead = false
			}
		}
		return true
	})
	return lead
}

// Suppresses reports whether s silences analyzer a's finding at
// file:line. An own-line comment covers the next line; any comment
// covers its own line. Suppressions with empty reasons never apply —
// the driver reports them as findings instead, so an unjustified
// suppression cannot hide anything.
func (s Suppression) Suppresses(a *Analyzer, file string, line int) bool {
	if s.Reason == "" || s.File != file {
		return false
	}
	if s.Name != a.Name && !contains(a.SuppressAliases, s.Name) {
		return false
	}
	if s.Line == line {
		return true
	}
	return s.OwnLine && s.Line == line-1
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// CheckSuppressions validates every //cprlint: comment in files: the
// named analyzer must exist (known maps analyzer names and aliases to
// true) and the reason text is mandatory. Violations come back as
// diagnostics so an unjustified or misspelled suppression is itself a
// finding — the suppression syntax cannot silently rot.
func CheckSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, f := range files {
		for _, s := range ParseSuppressions(fset, f) {
			if s.Name == "" {
				out = append(out, Diagnostic{Pos: s.Pos,
					Message: "malformed suppression: want //cprlint:<analyzer> <reason>"})
				continue
			}
			if !known[s.Name] {
				out = append(out, Diagnostic{Pos: s.Pos,
					Message: "suppression names unknown analyzer " + strconv.Quote(s.Name)})
				continue
			}
			if s.Reason == "" {
				out = append(out, Diagnostic{Pos: s.Pos,
					Message: "suppression of " + s.Name + " has no reason text; a justification is mandatory"})
			}
		}
	}
	return out
}

// Filter removes diagnostics silenced by a suppression in files and
// returns the survivors. It is shared by cmd/cprlint and analysistest so
// suppression-comment golden tests exercise exactly the production
// filtering.
func Filter(fset *token.FileSet, files []*ast.File, a *Analyzer, diags []Diagnostic) []Diagnostic {
	var sups []Suppression
	for _, f := range files {
		sups = append(sups, ParseSuppressions(fset, f)...)
	}
	if len(sups) == 0 {
		return diags
	}
	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		silenced := false
		for _, s := range sups {
			if s.Suppresses(a, pos.Filename, pos.Line) {
				silenced = true
				break
			}
		}
		if !silenced {
			kept = append(kept, d)
		}
	}
	return kept
}
