// Package httpapi defines the JSON wire types of the cprd HTTP API,
// shared by internal/server (the daemon) and client (the Go client) so
// the two cannot drift.
package httpapi

import (
	"cpr/internal/blockstore"
	"cpr/internal/cache"
	"cpr/internal/exchange"
	"cpr/internal/jobs"
	"cpr/internal/metrics"
	"cpr/internal/telemetry"
)

// SubmitRequest is the body of POST /v1/jobs. Exactly one of Design
// (inline cpr-design text) or Spec (a synthetic circuit to generate)
// must be set.
type SubmitRequest struct {
	// Design is a complete design in the cpr-design text format.
	Design string `json:"design,omitempty"`
	// Spec generates a deterministic synthetic circuit server-side.
	Spec *Spec `json:"spec,omitempty"`
	// Options tunes the optimization flow; nil takes the defaults
	// (ModeCPR with LR optimization).
	Options *Options `json:"options,omitempty"`
	// BaseJob names a finished job to rerun against incrementally: only
	// the panels and routing regions the edit dirtied are recomputed, the
	// rest are spliced from the base's artifacts. In the default "strict"
	// rerun mode the result is byte-identical to a cold run of the same
	// design, so the baseline affects wall clock only; see
	// Options.RerunMode for the faster "eco-fast" contract. An unknown or
	// unfinished base job is a 400.
	BaseJob string `json:"base_job,omitempty"`
	// Wait blocks the request until the job is terminal (bounded by the
	// server's job timeout and the client's request context) and
	// returns the finished job.
	Wait bool `json:"wait,omitempty"`
}

// Spec mirrors synth.Spec for the wire.
type Spec struct {
	Name             string  `json:"name,omitempty"`
	Circuit          string  `json:"circuit,omitempty"` // Table 2 preset name; overrides the numeric fields
	Nets             int     `json:"nets,omitempty"`
	Width            int     `json:"width,omitempty"`
	Height           int     `json:"height,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
	BlockageFraction float64 `json:"blockage_fraction,omitempty"`
}

// Options is the wire form of the result-affecting core.Options fields
// plus the worker count (which never affects results, only wall clock).
type Options struct {
	// Mode is "cpr" (default), "nopinopt", or "sequential".
	Mode string `json:"mode,omitempty"`
	// Optimizer is "lr" (default) or "ilp".
	Optimizer string `json:"optimizer,omitempty"`
	// Workers bounds the per-job pipeline concurrency (0 = GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// LRMaxIterations overrides the LR iteration bound (0 = default 200).
	LRMaxIterations int `json:"lr_max_iterations,omitempty"`
	// LRAlpha overrides the subgradient step exponent (0 = default 0.95).
	LRAlpha float64 `json:"lr_alpha,omitempty"`
	// ILPTimeLimitMS caps the per-panel exact solver (0 = no cap).
	ILPTimeLimitMS int64 `json:"ilp_time_limit_ms,omitempty"`
	// ILPMaxNodes caps branch-and-bound nodes (0 = no cap).
	ILPMaxNodes int `json:"ilp_max_nodes,omitempty"`
	// MaxNegotiationIters overrides the router's rip-up bound.
	MaxNegotiationIters int `json:"max_negotiation_iters,omitempty"`
	// RuleEngine overrides the multi-patterning rule engine: "sadp",
	// "lele", or "tpl". Empty keeps the engine the design carries (sadp
	// when it carries none); unknown names are a 400. The engine is part
	// of the job's content address, so runs of the same design under
	// different engines never share cached results.
	RuleEngine string `json:"rule_engine,omitempty"`
	// RerunMode selects the incremental-rerun contract for submissions
	// with a base_job: "strict" (default; byte-identical to a cold run)
	// or "eco-fast" (warm-starts dirtied nets from the base's routes;
	// verified DRC-clean and objective-equal, but route bytes may
	// differ). Without a base_job both behave identically.
	RerunMode string `json:"rerun_mode,omitempty"`
}

// PinOptSummary condenses a core.PinOptReport for the wire.
type PinOptSummary struct {
	Panels    int     `json:"panels"`
	Pins      int     `json:"pins"`
	Intervals int     `json:"intervals"`
	Conflicts int     `json:"conflicts"`
	Objective float64 `json:"objective"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// IncrementalSummary reports how much of a run was spliced from reuse
// (a base job's artifacts or the panel/route caches). Provenance only:
// in strict mode results are byte-identical however much was reused,
// and eco-fast results are verified equivalent.
type IncrementalSummary struct {
	Panels     int   `json:"panels"`
	Reused     int   `json:"reused"`
	Recomputed []int `json:"recomputed,omitempty"`
	// Regions is the number of routing regions the design partitioned
	// into; RegionsSpliced of them were reused byte-identically from the
	// base run or the route cache.
	Regions        int `json:"regions,omitempty"`
	RegionsSpliced int `json:"regions_spliced,omitempty"`
	// NetsSpliced/NetsWarm/NetsRerouted break all nets down by routing
	// provenance: spliced with their region, warm-started from a base
	// route (eco-fast only), or routed from scratch.
	NetsSpliced  int `json:"nets_spliced,omitempty"`
	NetsWarm     int `json:"nets_warm,omitempty"`
	NetsRerouted int `json:"nets_rerouted,omitempty"`
}

// Result is the completed-run payload inside a Job.
type Result struct {
	Mode        string              `json:"mode"`
	Metrics     metrics.Routing     `json:"metrics"`
	PinOpt      *PinOptSummary      `json:"pinopt,omitempty"`
	Incremental *IncrementalSummary `json:"incremental,omitempty"`
}

// Job is the wire form of a job snapshot, returned by POST /v1/jobs and
// GET /v1/jobs/{id}.
type Job struct {
	ID string `json:"id"`
	// Key is the content address of the request (see cache.Key); empty
	// for uncacheable requests.
	Key string `json:"key,omitempty"`
	// BaseJob echoes the incremental baseline the job was submitted
	// against, if any.
	BaseJob string `json:"base_job,omitempty"`
	State   string `json:"state"`
	// Cached reports that the result was served from the
	// content-addressed cache without running the optimizer.
	Cached      bool    `json:"cached,omitempty"`
	Error       string  `json:"error,omitempty"`
	QueueWaitMS float64 `json:"queue_wait_ms"`
	RunMS       float64 `json:"run_ms"`
	Result      *Result `json:"result,omitempty"`
}

// Stats is the body of GET /v1/stats.
type Stats struct {
	QueueDepth int              `json:"queue_depth"`
	QueueCap   int              `json:"queue_cap"`
	Running    int              `json:"running"`
	Draining   bool             `json:"draining"`
	ByState    map[string]int64 `json:"jobs_by_state"`
	// RejectedQueueFull counts submissions refused with 429 (queue at
	// capacity); RejectedDraining counts 503s after drain started.
	RejectedQueueFull int64       `json:"rejected_queue_full"`
	RejectedDraining  int64       `json:"rejected_draining"`
	Cache             cache.Stats `json:"cache"`
	CacheHitRate      float64     `json:"cache_hit_rate"`
	// PanelCache counts per-panel artifact reuse: the incremental hit
	// rate harvested by design-level misses.
	PanelCache        cache.Stats `json:"panel_cache"`
	PanelCacheHitRate float64     `json:"panel_cache_hit_rate"`
	// RouteCache counts per-region route bundle reuse: the routing
	// splice rate of incremental reruns.
	RouteCache        cache.Stats                `json:"route_cache"`
	RouteCacheHitRate float64                    `json:"route_cache_hit_rate"`
	Stages            map[string]jobs.StageStats `json:"stage_latency"`
	// Blockstore snapshots the local content-addressed block store
	// backing the cache levels; absent on daemons running without one.
	Blockstore *blockstore.Stats `json:"blockstore,omitempty"`
	// Exchange counts block resolutions by source (local / peer / miss);
	// absent without a block-backed cache.
	Exchange *exchange.Stats `json:"exchange,omitempty"`
	// Peers lists the configured peer base URLs the exchange fetches
	// from; empty for a single-node daemon.
	Peers []string `json:"peers,omitempty"`
	// PeerHealth reports per-peer fetch counts, transport errors, and
	// backoff state; absent without peers.
	PeerHealth []exchange.PeerHealth `json:"peer_health,omitempty"`
	// QueueWaitHistogram is the admission-to-start latency distribution
	// (the cprd_job_queue_wait_seconds histogram); absent without a
	// metrics registry.
	QueueWaitHistogram *telemetry.HistogramSnapshot `json:"queue_wait_histogram,omitempty"`
	// EventsDropped counts stream events lost to slow subscribers.
	EventsDropped uint64 `json:"events_dropped,omitempty"`
}

// JobEvent is one server-sent event on GET /v1/jobs/{id}/events; it
// mirrors telemetry.Event so client and server cannot drift.
type JobEvent struct {
	Seq          uint64         `json:"seq"`
	TimeUnixNano int64          `json:"time_unix_nano"`
	Job          string         `json:"job,omitempty"`
	Type         string         `json:"type"`
	Data         map[string]any `json:"data,omitempty"`
}

// Health is the body of GET /v1/healthz.
type Health struct {
	Status   string `json:"status"`
	Draining bool   `json:"draining,omitempty"`
}

// Error is the uniform error body for non-2xx responses.
type Error struct {
	Error string `json:"error"`
}
