package cpr

import (
	"bytes"
	"testing"
)

func demoDesign(t testing.TB) *Design {
	t.Helper()
	d, err := GenerateCircuit(Spec{Name: "demo", Nets: 60, Width: 100, Height: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFacadeQuickstart(t *testing.T) {
	d := demoDesign(t)
	res, err := Run(d, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.TotalNets != 60 {
		t.Errorf("TotalNets = %d", res.Metrics.TotalNets)
	}
	if res.PinOpt == nil || res.PinOpt.TotalPins == 0 {
		t.Error("missing pin optimization report")
	}
}

func TestFacadeAllModes(t *testing.T) {
	for _, mode := range []Mode{ModeCPR, ModeNoPinOpt, ModeSequential} {
		d := demoDesign(t)
		res, err := Run(d, Options{Mode: mode})
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Metrics.RoutedNets == 0 {
			t.Errorf("%v routed nothing", mode)
		}
	}
}

func TestFacadeAssignmentSolvers(t *testing.T) {
	d := demoDesign(t)
	m, err := BuildAssignmentModel(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	lr := SolveLR(m, LRConfig{})
	if err := m.CheckLegal(lr.Solution); err != nil {
		t.Fatalf("LR solution illegal: %v", err)
	}
	if m.NumPins() != len(d.Pins) {
		t.Errorf("model covers %d pins, want %d", m.NumPins(), len(d.Pins))
	}
}

func TestFacadeCircuitRegistry(t *testing.T) {
	if len(TableCircuits()) != 6 {
		t.Error("want 6 Table 2 circuits")
	}
	spec, err := CircuitByName("div")
	if err != nil || spec.Nets != 5813 {
		t.Errorf("CircuitByName(div) = %+v, %v", spec, err)
	}
	if _, err := CircuitByName("bogus"); err == nil {
		t.Error("want error for unknown circuit")
	}
}

func TestFacadeManualDesign(t *testing.T) {
	d := NewDesign("manual", 30, 10, DefaultTechnology())
	n := d.AddNet("n")
	d.AddPin("p0", n, Rect{X0: 2, Y0: 4, X1: 2, Y1: 4})
	d.AddPin("p1", n, Rect{X0: 20, Y0: 4, X1: 20, Y1: 4})
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RoutedNets != 1 {
		t.Errorf("routed %d, want 1", res.Metrics.RoutedNets)
	}
}

func TestFacadeExperimentEntryPoints(t *testing.T) {
	var buf bytes.Buffer
	points, err := RunFig6(&buf, ExperimentConfig{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 || buf.Len() == 0 {
		t.Error("Fig6 produced no output")
	}
}

func TestFacadeOptimizePinAccess(t *testing.T) {
	d := demoDesign(t)
	rep, seeds, err := OptimizePinAccess(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalPins != len(d.Pins) || len(seeds) == 0 {
		t.Errorf("report covers %d pins, %d seeds", rep.TotalPins, len(seeds))
	}
}

func TestFacadeSaveLoadRoundTrip(t *testing.T) {
	d := demoDesign(t)
	var buf bytes.Buffer
	if err := SaveDesign(&buf, d); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDesign(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Pins) != len(d.Pins) || len(got.Nets) != len(d.Nets) {
		t.Error("round trip lost structure")
	}
}

func TestFacadeRenderAndVerify(t *testing.T) {
	d := demoDesign(t)
	res, err := Run(d, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderSVG(&buf, d, res); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Error("empty SVG")
	}
	if errs := VerifyRouting(d, res); len(errs) != 0 {
		t.Errorf("verification failed: %v", errs[:min(3, len(errs))])
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
