package lagrange

import (
	"fmt"
	"math/rand"
	"testing"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/ilp"
	"cpr/internal/pinaccess"
	"cpr/internal/tech"
)

// buildModel generates intervals for all pins of d and builds the model.
func buildModel(t testing.TB, d *design.Design) *assign.Model {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	pins := make([]int, len(d.Pins))
	for i := range pins {
		pins[i] = i
	}
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), pins)
	if err != nil {
		t.Fatal(err)
	}
	return assign.Build(set, assign.SqrtProfit)
}

// contestedDesign mirrors the assign package test fixture: net A's long
// intervals cross diff-net pin b1 on the shared track.
func contestedDesign(t testing.TB) *design.Design {
	d := design.New("contested", 20, 10, tech.Default())
	na := d.AddNet("a")
	nb := d.AddNet("b")
	d.AddPin("a1", na, geom.MakeRect(2, 3, 2, 3))
	d.AddPin("a2", na, geom.MakeRect(15, 3, 15, 3))
	d.AddPin("b1", nb, geom.MakeRect(8, 3, 8, 3))
	d.AddPin("b2", nb, geom.MakeRect(8, 6, 8, 6))
	return d
}

// randomPanel builds a random single-panel design with nPins 1x1 pins on
// distinct grid cells, grouped into nets of up to three pins.
func randomPanel(t testing.TB, rng *rand.Rand, width, nPins int) *design.Design {
	t.Helper()
	d := design.New("rand", width, 10, tech.Default())
	type cell struct{ x, y int }
	var cells []cell
	for x := 0; x < width; x++ {
		for y := 0; y < 10; y++ {
			cells = append(cells, cell{x, y})
		}
	}
	rng.Shuffle(len(cells), func(i, j int) { cells[i], cells[j] = cells[j], cells[i] })
	if nPins > len(cells) {
		nPins = len(cells)
	}
	placed := 0
	for placed < nPins {
		k := 1 + rng.Intn(3)
		if placed+k > nPins {
			k = nPins - placed
		}
		net := d.AddNet(fmt.Sprintf("n%d", len(d.Nets)))
		for j := 0; j < k; j++ {
			c := cells[placed]
			d.AddPin(fmt.Sprintf("p%d", placed), net, geom.MakeRect(c.x, c.y, c.x, c.y))
			placed++
		}
	}
	return d
}

func TestLRLegalOnContestedDesign(t *testing.T) {
	m := buildModel(t, contestedDesign(t))
	res := Solve(m, Config{})
	if res.Solution.Violations != 0 {
		t.Fatalf("LR solution has %d violations", res.Solution.Violations)
	}
	if err := m.CheckLegal(res.Solution); err != nil {
		t.Fatalf("LR solution illegal: %v", err)
	}
	min := m.MinimumSolution()
	if res.Solution.Objective < min.Objective-1e-9 {
		t.Errorf("LR objective %g below minimum-interval objective %g",
			res.Solution.Objective, min.Objective)
	}
}

func TestLRNeverExceedsILP(t *testing.T) {
	m := buildModel(t, contestedDesign(t))
	lrRes := Solve(m, Config{})
	ilpSol, _, err := m.SolveILP(ilp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if lrRes.Solution.Objective > ilpSol.Objective+1e-9 {
		t.Errorf("LR objective %g exceeds ILP optimum %g",
			lrRes.Solution.Objective, ilpSol.Objective)
	}
	// Paper Fig 6(b): LR should land close to the optimum.
	if lrRes.Solution.Objective < 0.75*ilpSol.Objective {
		t.Errorf("LR objective %g too far below ILP optimum %g",
			lrRes.Solution.Objective, ilpSol.Objective)
	}
}

func TestLRConvergesWithoutConflicts(t *testing.T) {
	// Pins far apart on distinct tracks: first greedy pass is legal.
	d := design.New("free", 30, 10, tech.Default())
	for i := 0; i < 3; i++ {
		n := d.AddNet(fmt.Sprintf("n%d", i))
		d.AddPin(fmt.Sprintf("p%d", i), n, geom.MakeRect(10*i+2, 3*i, 10*i+2, 3*i))
	}
	m := buildModel(t, d)
	res := Solve(m, Config{})
	if !res.Converged {
		t.Error("LR should converge immediately on a conflict-free instance")
	}
	if res.Iterations != 1 {
		t.Errorf("iterations = %d, want 1", res.Iterations)
	}
	if res.ShrunkPins != 0 {
		t.Errorf("refinement demoted %d pins on a conflict-free instance", res.ShrunkPins)
	}
}

func TestLRPrefersSharedInterval(t *testing.T) {
	// Two same-net pins on one track: the shared covering interval wins
	// thanks to multiplicity in the profit and the same-net tie-break.
	d := design.New("pair", 12, 10, tech.Default())
	nc := d.AddNet("c")
	c1 := d.AddPin("c1", nc, geom.MakeRect(2, 3, 2, 3))
	c2 := d.AddPin("c2", nc, geom.MakeRect(8, 3, 8, 3))
	m := buildModel(t, d)
	res := Solve(m, Config{})
	if res.Solution.ByPin[c1] != res.Solution.ByPin[c2] {
		t.Errorf("pins got intervals %d and %d, want the shared intra-panel interval",
			res.Solution.ByPin[c1], res.Solution.ByPin[c2])
	}
}

func TestSkipRefinementMayLeaveViolations(t *testing.T) {
	// With one iteration and no refinement, the greedy pass picks maximal
	// overlapping intervals and violations survive.
	m := buildModel(t, contestedDesign(t))
	res := Solve(m, Config{MaxIterations: 1, SkipRefinement: true})
	if res.Converged {
		t.Skip("instance converged in one iteration; nothing to assert")
	}
	if res.Solution.Violations == 0 {
		t.Error("expected surviving violations with SkipRefinement and UB=1")
	}
}

func TestRefinementRepairsSingleIteration(t *testing.T) {
	m := buildModel(t, contestedDesign(t))
	res := Solve(m, Config{MaxIterations: 1})
	if res.Solution.Violations != 0 {
		t.Fatalf("refinement left %d violations", res.Solution.Violations)
	}
	if err := m.CheckLegal(res.Solution); err != nil {
		t.Fatalf("refined solution illegal: %v", err)
	}
}

func TestFullSubgradientAlsoConverges(t *testing.T) {
	m := buildModel(t, contestedDesign(t))
	res := Solve(m, Config{FullSubgradient: true})
	if res.Solution.Violations != 0 {
		t.Fatalf("full-subgradient run left %d violations", res.Solution.Violations)
	}
	if err := m.CheckLegal(res.Solution); err != nil {
		t.Fatal(err)
	}
}

func TestTieBreakAblationStillLegal(t *testing.T) {
	m := buildModel(t, contestedDesign(t))
	res := Solve(m, Config{DisableSameNetTieBreak: true})
	if err := m.CheckLegal(res.Solution); err != nil {
		t.Fatal(err)
	}
}

// TestLRLegalOnRandomPanels is the workhorse property test: across many
// random congested panels, LR must always emit a legal assignment, bounded
// by the minimum solution from below.
func TestLRLegalOnRandomPanels(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		d := randomPanel(t, rng, 16+rng.Intn(20), 4+rng.Intn(20))
		m := buildModel(t, d)
		res := Solve(m, Config{})
		if err := m.CheckLegal(res.Solution); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		min := m.MinimumSolution()
		if res.Solution.Objective < min.Objective-1e-9 {
			t.Fatalf("trial %d: LR %g below minimum %g",
				trial, res.Solution.Objective, min.Objective)
		}
	}
}

// TestLRCloseToILPOnRandomPanels quantifies Fig 6(b): LR objective within
// a modest gap of the exact optimum on small random panels.
func TestLRCloseToILPOnRandomPanels(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP cross-check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(23))
	totalLR, totalILP := 0.0, 0.0
	for trial := 0; trial < 10; trial++ {
		d := randomPanel(t, rng, 14+rng.Intn(8), 4+rng.Intn(6))
		m := buildModel(t, d)
		lrRes := Solve(m, Config{})
		ilpSol, _, err := m.SolveILP(ilp.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if lrRes.Solution.Objective > ilpSol.Objective+1e-6 {
			t.Fatalf("trial %d: LR %g beats ILP %g (impossible)",
				trial, lrRes.Solution.Objective, ilpSol.Objective)
		}
		totalLR += lrRes.Solution.Objective
		totalILP += ilpSol.Objective
	}
	if ratio := totalLR / totalILP; ratio < 0.80 {
		t.Errorf("aggregate LR/ILP ratio %.3f below 0.80; paper reports near-optimal LR", ratio)
	}
}

func TestIterationBoundRespected(t *testing.T) {
	m := buildModel(t, contestedDesign(t))
	res := Solve(m, Config{MaxIterations: 3})
	if res.Iterations > 3 {
		t.Errorf("iterations = %d, want <= 3", res.Iterations)
	}
}
