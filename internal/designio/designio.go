// Package designio reads and writes designs in a simple line-oriented
// text format, so benchmark instances can be saved, shared, and rerun
// byte-identically.
//
// Format (one record per line, '#' starts a comment):
//
//	cpr-design 1
//	design <name> <width> <height>
//	tech <tracksPerPanel> <baseCost> <viaCost> <forbiddenViaCost> \
//	     <lineEndExtension> <minLineLen> <lineEndSpacing>
//	rule-engine <name> <sameMaskSpacing> <colorSpacing> <stitchPenalty> \
//	     <cutSpacing> <mergeTolerance>
//	net <name>
//	pin <name> <netIndex> <x0> <y0> <x1> <y1>
//	blockage <layer> <x0> <y0> <x1> <y1>
//
// Records may appear in any order after the header, except that a pin's
// net must already be declared. Fields are space-separated; names must
// not contain whitespace.
//
// The rule-engine record is emitted only for a non-zero patterning
// selection, so designs predating the rule-engine layer keep their
// exact bytes — and therefore their content addresses. Unknown engine
// names fail closed on read: there is no silent fallback to SADP.
package designio

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/tech"
)

const magic = "cpr-design"
const version = 1

// Write serializes a design. The output is deterministic: nets in ID
// order, then pins in ID order, then blockages in declaration order.
// The encoding is the design's content address (see Hash), so every
// routing-relevant technology parameter — including the rule-engine
// selection — must land in these bytes.
//
//keypurity:encoder design
func Write(w io.Writer, d *design.Design) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s %d\n", magic, version)
	fmt.Fprintf(bw, "design %s %d %d\n", sanitize(d.Name), d.Width, d.Height)
	t := d.Tech
	fmt.Fprintf(bw, "tech %d %d %d %d %d %d %d\n",
		t.TracksPerPanel, t.BaseCost, t.ViaCost, t.ForbiddenViaCost,
		t.LineEndExtension, t.MinLineLen, t.LineEndSpacing)
	if t.Patterning != (tech.Patterning{}) {
		fmt.Fprintf(bw, "rule-engine %s\n", t.Patterning.Spec())
	}
	for i := range d.Nets {
		fmt.Fprintf(bw, "net %s\n", sanitize(d.Nets[i].Name))
	}
	for i := range d.Pins {
		p := &d.Pins[i]
		fmt.Fprintf(bw, "pin %s %d %d %d %d %d\n",
			sanitize(p.Name), p.NetID, p.Shape.X0, p.Shape.Y0, p.Shape.X1, p.Shape.Y1)
	}
	for _, b := range d.Blockages {
		fmt.Fprintf(bw, "blockage %d %d %d %d %d\n",
			b.Layer, b.Shape.X0, b.Shape.Y0, b.Shape.X1, b.Shape.Y1)
	}
	return bw.Flush()
}

// Hash returns the hex SHA-256 of the design's canonical cpr-design
// encoding. Because Write is deterministic — nets in ID order, pins in ID
// order, blockages in declaration order — two designs hash equal exactly
// when their canonical encodings are byte-identical, which makes the hash
// usable as a content address (the cprd result cache keys on it).
func Hash(d *design.Design) (string, error) {
	h := sha256.New()
	if err := Write(h, d); err != nil {
		return "", fmt.Errorf("designio: hash: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// sanitize replaces whitespace in names so the format stays line-parsable.
func sanitize(name string) string {
	if name == "" {
		return "_"
	}
	return strings.Map(func(r rune) rune {
		if r == ' ' || r == '\t' || r == '\n' || r == '\r' {
			return '_'
		}
		return r
	}, name)
}

// Read parses a design. The result is validated before return.
func Read(r io.Reader) (*design.Design, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	next := func() ([]string, error) {
		for sc.Scan() {
			lineNo++
			line := strings.TrimSpace(sc.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			return strings.Fields(line), nil
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	errf := func(format string, args ...interface{}) error {
		return fmt.Errorf("designio: line %d: %s", lineNo, fmt.Sprintf(format, args...))
	}

	// Header.
	fields, err := next()
	if err != nil {
		return nil, fmt.Errorf("designio: missing header: %w", err)
	}
	if len(fields) != 2 || fields[0] != magic {
		return nil, errf("bad magic %q", strings.Join(fields, " "))
	}
	if v, err := strconv.Atoi(fields[1]); err != nil || v != version {
		return nil, errf("unsupported version %q", fields[1])
	}

	var d *design.Design
	t := tech.Default()
	for {
		fields, err := next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch fields[0] {
		case "design":
			if len(fields) != 4 {
				return nil, errf("design record wants 3 fields, got %d", len(fields)-1)
			}
			w, err1 := strconv.Atoi(fields[2])
			h, err2 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil {
				return nil, errf("bad design dimensions")
			}
			d = design.New(fields[1], w, h, t)
		case "tech":
			if len(fields) != 8 {
				return nil, errf("tech record wants 7 fields, got %d", len(fields)-1)
			}
			vals := make([]int, 7)
			for i := 0; i < 7; i++ {
				v, err := strconv.Atoi(fields[i+1])
				if err != nil {
					return nil, errf("bad tech field %q", fields[i+1])
				}
				vals[i] = v
			}
			t.TracksPerPanel = vals[0]
			t.BaseCost = vals[1]
			t.ViaCost = vals[2]
			t.ForbiddenViaCost = vals[3]
			t.LineEndExtension = vals[4]
			t.MinLineLen = vals[5]
			t.LineEndSpacing = vals[6]
		case "rule-engine":
			p, perr := tech.ParsePatterning(fields[1:])
			if perr != nil {
				return nil, errf("%v", perr)
			}
			t.Patterning = p
		case "net":
			if d == nil {
				return nil, errf("net before design record")
			}
			if len(fields) != 2 {
				return nil, errf("net record wants 1 field")
			}
			d.AddNet(fields[1])
		case "pin":
			if d == nil {
				return nil, errf("pin before design record")
			}
			if len(fields) != 7 {
				return nil, errf("pin record wants 6 fields, got %d", len(fields)-1)
			}
			vals := make([]int, 5)
			for i := 0; i < 5; i++ {
				v, err := strconv.Atoi(fields[i+2])
				if err != nil {
					return nil, errf("bad pin field %q", fields[i+2])
				}
				vals[i] = v
			}
			netID := vals[0]
			if netID < 0 || netID >= len(d.Nets) {
				return nil, errf("pin references undeclared net %d", netID)
			}
			d.AddPin(fields[1], netID, geom.MakeRect(vals[1], vals[2], vals[3], vals[4]))
		case "blockage":
			if d == nil {
				return nil, errf("blockage before design record")
			}
			if len(fields) != 6 {
				return nil, errf("blockage record wants 5 fields, got %d", len(fields)-1)
			}
			vals := make([]int, 5)
			for i := 0; i < 5; i++ {
				v, err := strconv.Atoi(fields[i+1])
				if err != nil {
					return nil, errf("bad blockage field %q", fields[i+1])
				}
				vals[i] = v
			}
			d.AddBlockage(vals[0], geom.MakeRect(vals[1], vals[2], vals[3], vals[4]))
		default:
			return nil, errf("unknown record %q", fields[0])
		}
	}
	if d == nil {
		return nil, fmt.Errorf("designio: no design record")
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("designio: %w", err)
	}
	return d, nil
}
