package pipeline

import (
	"fmt"
	"io"
	"sort"

	"cpr/internal/cache"
	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/router"
	"cpr/internal/tech"
)

// RouteArtifact is the cached routing product of one region: everything a
// later run needs to splice the region's routes into a result without
// re-routing it (strict mode), or to warm-start individual nets from it
// (eco-fast mode).
type RouteArtifact struct {
	// Region is the region index the artifact was produced for. Positional
	// provenance only — indices shift when unrelated regions appear — so
	// it is deliberately absent from the content key.
	Region int
	// Key is the content address of the region's routing inputs plus the
	// router fingerprint (see RouteKeyFor); empty when the artifact must
	// not be reused verbatim (e.g. it was produced by an eco-fast rerun,
	// whose routes are legal but not byte-equal to a cold run's).
	Key string
	// Nets lists the member net IDs, ascending (parallel to Routes).
	Nets []int
	// Names holds the member nets' names, parallel to Nets. Names never
	// reach the content key (a pure rename cannot change route bytes);
	// they are retained so eco-fast reruns can match nets across edits
	// that shift net IDs.
	Names []string
	// Sigs holds each member net's routing signature (NetSignature),
	// parallel to Nets — the eco-fast warm-start match condition.
	Sigs []string
	// Routes holds the member nets' routes, parallel to Nets.
	Routes []*router.NetRoute
	// Summary is the region's counter outcome, re-merged into rerun
	// results when the region is spliced. It deliberately carries no
	// wall-clock fields, so spliced work contributes zero elapsed time.
	Summary router.RegionSummary
}

// RouterFingerprint renders the result-affecting router configuration
// into a canonical string, the second half of the per-region route key.
// Workers is deliberately absent: the deterministic worker-pool contract
// makes route bytes identical for every worker count.
//
//keypurity:encoder stage
func RouterFingerprint(cfg router.Config) string {
	c := cfg.Normalized()
	return fmt.Sprintf("route-v1 order=%s iters=%d pres=%s,%s hist=%s win=%d,%d,%d stall=%d skipdrc=%t",
		c.Order, c.MaxNegotiationIters,
		formatFloat(c.PresentCostBase), formatFloat(c.PresentCostGrowth),
		formatFloat(c.HistoryIncrement),
		c.WindowMargin, c.WindowGrowth, c.MaxWindowMargin,
		c.StallRounds, c.SkipDRC)
}

// WriteRegionInputs writes the canonical encoding of every input that can
// affect one region's routes. This is the per-region half of the route
// key contract (DESIGN.md §4f):
//
//   - the grid extents and the full technology record;
//   - every member net: its ID, its pins (ascending by ID, with shapes),
//     its seeded pin-access cells (the assignment the router was seeded
//     with, by value — so the key holds regardless of which solver
//     produced it), and its influence rectangle (which bounds every
//     search window, clearance cell, and DRC avoid zone any stage can
//     touch);
//   - every design blockage clipped to the region's influence bounds
//     expanded by one cell (the extra cell covers forbidden-via
//     adjacency).
//
// Anything not encoded here — other regions' nets and seeds, blockages
// out of reach, net names, worker counts — provably cannot change the
// region's route bytes.
//
// A non-zero rule-engine selection is encoded as an extra record; the
// zero value emits nothing, keeping every pre-engine route key valid.
//
//keypurity:encoder stage
func WriteRegionInputs(w io.Writer, d *design.Design, rt *router.Router, rg *router.Region) error {
	t := d.Tech
	if _, err := fmt.Fprintf(w, "region-inputs v1\ngrid %d %d\ntech %d %d %d %d %d %d %d\n",
		d.Width, d.Height,
		t.TracksPerPanel, t.BaseCost, t.ViaCost, t.ForbiddenViaCost,
		t.LineEndExtension, t.MinLineLen, t.LineEndSpacing); err != nil {
		return err
	}
	if t.Patterning != (tech.Patterning{}) {
		if _, err := fmt.Fprintf(w, "rule-engine %s\n", t.Patterning.Spec()); err != nil {
			return err
		}
	}
	for i, netID := range rg.Nets {
		rc := rg.Rects[i]
		if _, err := fmt.Fprintf(w, "net %d rect %d %d %d %d\n",
			netID, rc.X0, rc.Y0, rc.X1, rc.Y1); err != nil {
			return err
		}
		pins := append([]int(nil), d.Nets[netID].PinIDs...)
		sort.Ints(pins)
		for _, pid := range pins {
			sh := d.Pins[pid].Shape
			if _, err := fmt.Fprintf(w, "pin %d shape %d %d %d %d\n",
				pid, sh.X0, sh.Y0, sh.X1, sh.Y1); err != nil {
				return err
			}
		}
		if seeds := rt.SeededCells(netID); len(seeds) > 0 {
			if _, err := fmt.Fprintf(w, "seeds %v\n", seeds); err != nil {
				return err
			}
		}
	}
	// Blockages within reach of the region, clipped so far-away edits to
	// the same blockage rect cannot dirty the region.
	bounds := rg.Bounds().Expand(1)
	for _, b := range d.Blockages {
		clip := b.Shape.Intersect(bounds)
		if clip.Empty() {
			continue
		}
		if _, err := fmt.Fprintf(w, "blk %d %d %d %d %d\n",
			b.Layer, clip.X0, clip.Y0, clip.X1, clip.Y1); err != nil {
			return err
		}
	}
	return nil
}

// RegionHash returns the hex SHA-256 of the region's canonical input
// encoding. The router must be the one the region plan was computed on
// (its seeded cells are part of the encoding).
func RegionHash(d *design.Design, rt *router.Router, rg *router.Region) string {
	return hashOf(func(w io.Writer) error { return WriteRegionInputs(w, d, rt, rg) })
}

// RouteKeyFor returns the content address of one region's route bundle
// under the router's configuration. Always defined: routing is
// deterministic in its encoded inputs, so equal keys imply byte-identical
// route bundles.
func RouteKeyFor(d *design.Design, rt *router.Router, rg *router.Region) string {
	return cache.RouteKey(RegionHash(d, rt, rg), RouterFingerprint(rt.Configuration()))
}

// NetSignature canonically encodes everything that must be unchanged for
// a previous route of the net to be replayable on the current grid: the
// grid extents (route node IDs are grid-relative), the net's pin shapes
// (sorted, ID-independent — IDs shift under edits), and its seeded
// pin-access cells. Used by eco-fast warm-starting; a signature match
// does not promise legality (the surroundings may have changed), only
// that replaying is geometrically meaningful — the router still checks
// enterability and negotiation fixes the rest.
func NetSignature(d *design.Design, rt *router.Router, netID int) string {
	return hashOf(func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "netsig v1 grid %d %d\n", d.Width, d.Height); err != nil {
			return err
		}
		shapes := make([]geom.Rect, 0, len(d.Nets[netID].PinIDs))
		for _, pid := range d.Nets[netID].PinIDs {
			shapes = append(shapes, d.Pins[pid].Shape)
		}
		sort.Slice(shapes, func(a, b int) bool {
			if shapes[a].X0 != shapes[b].X0 {
				return shapes[a].X0 < shapes[b].X0
			}
			return shapes[a].Y0 < shapes[b].Y0
		})
		for _, sh := range shapes {
			if _, err := fmt.Fprintf(w, "pin %d %d %d %d\n", sh.X0, sh.Y0, sh.X1, sh.Y1); err != nil {
				return err
			}
		}
		if seeds := rt.SeededCells(netID); len(seeds) > 0 {
			if _, err := fmt.Fprintf(w, "seeds %v\n", seeds); err != nil {
				return err
			}
		}
		return nil
	})
}

// BuildRouteArtifacts bundles a finished run's routes into per-region
// artifacts for the run's plan. cacheable=false (eco-fast reruns) leaves
// every Key empty, so the bundles can still warm-start future eco-fast
// reruns but are never spliced verbatim into a strict one.
func BuildRouteArtifacts(d *design.Design, rt *router.Router, plan *router.Plan,
	res *router.Result, cacheable bool) []*RouteArtifact {

	arts := make([]*RouteArtifact, 0, len(plan.Regions))
	for _, rg := range plan.Regions {
		a := &RouteArtifact{
			Region:  rg.ID,
			Nets:    append([]int(nil), rg.Nets...),
			Names:   make([]string, len(rg.Nets)),
			Sigs:    make([]string, len(rg.Nets)),
			Routes:  make([]*router.NetRoute, len(rg.Nets)),
			Summary: res.RegionSummaries[rg.ID],
		}
		if cacheable {
			a.Key = RouteKeyFor(d, rt, rg)
		}
		for i, netID := range rg.Nets {
			a.Names[i] = d.Nets[netID].Name
			a.Sigs[i] = NetSignature(d, rt, netID)
			a.Routes[i] = res.Routes[netID].Clone()
		}
		arts = append(arts, a)
	}
	return arts
}

// ByRouteKey indexes the route artifacts by content key, skipping keyless
// (non-spliceable) ones.
func (s *ArtifactSet) ByRouteKey() map[string]*RouteArtifact {
	m := make(map[string]*RouteArtifact, len(s.Routes))
	for _, a := range s.Routes {
		if a.Key != "" {
			m[a.Key] = a
		}
	}
	return m
}

// WarmIndex indexes the route artifacts' member routes by (name,
// signature) for eco-fast warm-start matching. Unrouted entries are
// indexed too: a baseline's failure verdict is as transferable as its
// routes — the router gives a matched-but-failed net one fresh routing
// attempt instead of letting it churn through every negotiation round
// the baseline already spent on it.
func (s *ArtifactSet) WarmIndex() map[string]*router.NetRoute {
	m := make(map[string]*router.NetRoute)
	for _, a := range s.Routes {
		for i, nr := range a.Routes {
			if nr == nil {
				continue
			}
			m[a.Names[i]+"\n"+a.Sigs[i]] = nr
		}
	}
	return m
}
