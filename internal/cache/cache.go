// Package cache is the content-addressed result cache behind the cprd
// daemon. It is two-level:
//
//   - the design level stores completed optimization results under the
//     SHA-256 of the design's canonical encoding combined with a
//     normalized options fingerprint, so resubmitting an identical
//     design never re-runs the optimizer;
//   - the panel level stores per-panel pipeline artifacts under the
//     SHA-256 of one panel's canonical input encoding (see
//     pipeline.WritePanelInputs) combined with the solver fingerprint,
//     so an edited design that misses the design level still reuses
//     every panel the edit provably cannot affect.
//
// Both levels are in-memory LRUs bounded by entry count, safe for
// concurrent use, with hit/miss/eviction counters cheap enough to read on
// every /v1/stats request.
package cache

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"
)

// Key derives the content address for one optimization request: the hex
// SHA-256 over the design's canonical-encoding hash and the normalized
// options fingerprint, separated by a newline. Clients may rely on this
// definition — the same design bytes plus the same fingerprint always map
// to the same key.
func Key(designHash, optionsFingerprint string) string {
	h := sha256.New()
	h.Write([]byte(designHash))
	h.Write([]byte{'\n'})
	h.Write([]byte(optionsFingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// PanelKey derives the content address for one panel's pipeline
// artifacts: the hex SHA-256 over a domain-separation tag, the panel's
// canonical input hash, and the solver fingerprint. The "panel\n" tag
// keeps the panel keyspace disjoint from design-level keys even if the
// two hash inputs ever collide in content.
func PanelKey(panelHash, solverFingerprint string) string {
	h := sha256.New()
	h.Write([]byte("panel\n"))
	h.Write([]byte(panelHash))
	h.Write([]byte{'\n'})
	h.Write([]byte(solverFingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Entries   int   `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
}

// HitRate is hits / (hits + misses), or 0 before any lookup.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Cache is a bounded LRU keyed by content address.
type Cache[V any] struct {
	mu        sync.Mutex
	cap       int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type entry[V any] struct {
	key string
	val V
}

// New creates a cache holding at most capacity entries; capacity <= 0
// selects the default of 1024.
func New[V any](capacity int) *Cache[V] {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cache[V]{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

// Get looks up a key, promoting it on hit. The second result reports
// whether the key was present; the hit/miss counters are updated either
// way.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*entry[V]).val, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Contains reports presence without touching the counters or LRU order.
func (c *Cache[V]) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.items[key]
	return ok
}

// Put stores a value, replacing any existing entry and evicting the least
// recently used entry when the capacity is exceeded.
func (c *Cache[V]) Put(key string, val V) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry[V]).val = val
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&entry[V]{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry[V]).key)
		c.evictions++
	}
}

// Len returns the current entry count.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:   c.ll.Len(),
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
