package mutexcopy_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/mutexcopy"
)

func TestMutexcopy(t *testing.T) {
	analysistest.Run(t, "testdata", mutexcopy.Analyzer, "mutexcopy")
}
