package experiments

import (
	"fmt"
	"io"

	"cpr/internal/assign"
	"cpr/internal/core"
	"cpr/internal/cutmask"
	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/lagrange"
	"cpr/internal/pinaccess"
	"cpr/internal/synth"
)

// AblationProfit compares the paper's sqrt profit against a linear profit
// on one sweep instance: sqrt trades a little total length for much
// better balance (lower per-pin length standard deviation), which is the
// design rationale stated in §3.3.
func AblationProfit(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	pins := 800
	if cfg.Quick {
		pins = 200
	}
	d, err := synth.Generate(synth.SweepSpec(pins, 91))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %10s %10s %10s %10s\n", "profit", "totalLen", "meanLen", "stddev", "minLen")
	for _, p := range []struct {
		name string
		fn   assign.ProfitFn
	}{{"sqrt", assign.SqrtProfit}, {"linear", assign.LinearProfit}} {
		model, err := wholeDesignModelWithProfit(d, p.fn)
		if err != nil {
			return err
		}
		res := lagrange.Solve(model, lagrange.Config{})
		st := res.Solution.Lengths(model.Set)
		fmt.Fprintf(w, "%-8s %10d %10.2f %10.2f %10d\n", p.name, st.Total, st.Mean, st.StdDev, st.Min)
	}
	return nil
}

// wholeDesignModelWithProfit is wholeDesignModel with a custom profit
// function.
func wholeDesignModelWithProfit(d *design.Design, fn assign.ProfitFn) (*assign.Model, error) {
	pins := make([]int, len(d.Pins))
	for i := range pins {
		pins[i] = i
	}
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), pins)
	if err != nil {
		return nil, err
	}
	return assign.Build(set, fn), nil
}

// AblationTieBreak measures the effect of Algorithm 1's same-net-pin
// tie-breaking rule on solution quality.
func AblationTieBreak(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	pins := 800
	if cfg.Quick {
		pins = 200
	}
	d, err := synth.Generate(synth.SweepSpec(pins, 92))
	if err != nil {
		return err
	}
	model, err := wholeDesignModel(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %12s %12s %12s\n", "tie-break", "objective", "iterations", "converged")
	for _, tb := range []bool{true, false} {
		res := lagrange.Solve(model, lagrange.Config{DisableSameNetTieBreak: !tb})
		fmt.Fprintf(w, "%-12v %12.1f %12d %12v\n", tb, res.Solution.Objective, res.Iterations, res.Converged)
	}
	return nil
}

// AblationAlpha sweeps the subgradient step exponent alpha around the
// paper's 0.95 and reports LR convergence behaviour.
func AblationAlpha(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	pins := 800
	if cfg.Quick {
		pins = 200
	}
	d, err := synth.Generate(synth.SweepSpec(pins, 93))
	if err != nil {
		return err
	}
	model, err := wholeDesignModel(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %12s %12s %14s %12s\n", "alpha", "objective", "iterations", "bestViolations", "converged")
	for _, alpha := range []float64{0.5, 0.8, 0.95, 1.0} {
		res := lagrange.Solve(model, lagrange.Config{Alpha: alpha})
		fmt.Fprintf(w, "%-8.2f %12.1f %12d %14d %12v\n",
			alpha, res.Solution.Objective, res.Iterations, res.BestViolations, res.Converged)
	}
	return nil
}

// AblationRefinement quantifies the greedy conflict removal step
// (Algorithm 2, line 11): without it, LR solutions may stay illegal.
func AblationRefinement(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	pins := 800
	if cfg.Quick {
		pins = 200
	}
	d, err := synth.Generate(synth.SweepSpec(pins, 94))
	if err != nil {
		return err
	}
	model, err := wholeDesignModel(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %12s %12s %12s\n", "refinement", "objective", "violations", "shrunkPins")
	for _, skip := range []bool{false, true} {
		res := lagrange.Solve(model, lagrange.Config{SkipRefinement: skip, MaxIterations: 20})
		fmt.Fprintf(w, "%-14v %12.1f %12d %12d\n",
			!skip, res.Solution.Objective, res.Solution.Violations, res.ShrunkPins)
	}
	return nil
}

// AblationSubgradient compares the paper's increase-on-violation-only
// multiplier update against full textbook subgradient descent.
func AblationSubgradient(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	pins := 800
	if cfg.Quick {
		pins = 200
	}
	d, err := synth.Generate(synth.SweepSpec(pins, 95))
	if err != nil {
		return err
	}
	model, err := wholeDesignModel(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-18s %12s %12s %14s\n", "update rule", "objective", "iterations", "bestViolations")
	for _, full := range []bool{false, true} {
		name := "violation-only"
		if full {
			name = "full-subgradient"
		}
		res := lagrange.Solve(model, lagrange.Config{FullSubgradient: full})
		fmt.Fprintf(w, "%-18s %12.1f %12d %14d\n",
			name, res.Solution.Objective, res.Iterations, res.BestViolations)
	}
	return nil
}

// CutMaskComparison compares the three routing flows on SADP cut mask
// friendliness: line-end count, merged cut shape count (mask complexity),
// and residual cut conflicts.
func CutMaskComparison(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	spec := synth.Spec{Name: "cut", Nets: 400, Width: 300, Height: 160, Seed: 9}
	if cfg.Quick {
		spec = synth.Spec{Name: "cut", Nets: 120, Width: 160, Height: 80, Seed: 9}
	}
	fmt.Fprintf(w, "%-12s %10s %12s %10s\n", "flow", "lineEnds", "cutShapes", "conflicts")
	for _, mode := range []core.Mode{core.ModeSequential, core.ModeNoPinOpt, core.ModeCPR} {
		d, err := synth.Generate(spec)
		if err != nil {
			return err
		}
		res, err := core.Run(d, core.Options{Mode: mode, Workers: cfg.Workers})
		if err != nil {
			return err
		}
		rep := cutmask.Analyze(d, grid.New(d), res.Router, cutmask.Params{})
		fmt.Fprintf(w, "%-12s %10d %12d %10d\n",
			mode, rep.LineEnds, rep.MaskComplexity(), rep.Conflicts)
	}
	return nil
}
