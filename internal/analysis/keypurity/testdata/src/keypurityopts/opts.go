// Package keypurityopts declares the options contract under test and a
// cache entry one package below its fingerprint encoder.
package keypurityopts

// Options configures the solve.
//
//keypurity:options
type Options struct {
	Width int
	Iters int
	// Workers only partitions the execution; results are identical at
	// any parallelism.
	Workers int //keypurity:exempt execution parallelism; never affects results
}

// SolveLower is cached under the stage fingerprint, declared below the
// encoder's package — its coverage is checked where the encoder lives.
//
//keypurity:entry stage
func SolveLower(o *Options) int {
	return o.Width * o.Iters
}
