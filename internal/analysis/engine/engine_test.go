package engine_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cpr/internal/analysis"
	"cpr/internal/analysis/engine"
	"cpr/internal/analysis/lockheld"
)

// writeModule lays out a throwaway Go module for the engine to analyze.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// crossPackageModule is a two-package module where the only lockheld
// finding depends on the dependency package's funcsum summary: svc holds
// a mutex across a call into util, and only util's fact says it blocks.
func crossPackageModule(t *testing.T) string {
	return writeModule(t, map[string]string{
		"util/util.go": `package util

import "time"

// Slow blocks for a moment.
func Slow() { time.Sleep(time.Millisecond) }
`,
		"svc/svc.go": `package svc

import (
	"sync"

	"tmpmod/util"
)

type S struct {
	mu sync.Mutex
	n  int
}

func (s *S) Do() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	util.Slow()
	return s.n
}
`,
	})
}

// runFresh analyzes ./svc with a brand-new engine (no shared loader or
// in-memory fact store), so anything remembered between calls must have
// come through factsDir.
func runFresh(t *testing.T, dir, factsDir string) []engine.Finding {
	t.Helper()
	e := engine.New(engine.Options{
		ModuleDir: dir,
		FactsDir:  factsDir,
		Analyzers: []*analysis.Analyzer{lockheld.Analyzer},
	})
	findings, _, err := e.Run("./svc")
	if err != nil {
		t.Fatalf("engine.Run: %v", err)
	}
	return findings
}

// utilCacheFile locates the facts-cache entry persisted for tmpmod/util.
func utilCacheFile(t *testing.T, factsDir string) string {
	t.Helper()
	entries, err := os.ReadDir(factsDir)
	if err != nil {
		t.Fatalf("reading facts dir: %v", err)
	}
	for _, ent := range entries {
		path := filepath.Join(factsDir, ent.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var cached struct {
			Pkg string `json:"pkg"`
		}
		if json.Unmarshal(data, &cached) == nil && cached.Pkg == "tmpmod/util" {
			return path
		}
	}
	t.Fatal("no facts-cache entry for tmpmod/util")
	return ""
}

// TestFactsDirRoundTrip proves dependency summaries really are reloaded
// from the facts cache: after a first run persists util's facts, the
// cache entry is doctored to drop the blocking summary, and a fresh
// engine — which would rediscover the blocking call if it re-analyzed
// util from source — believes the doctored fact and reports nothing.
func TestFactsDirRoundTrip(t *testing.T) {
	dir := crossPackageModule(t)
	factsDir := t.TempDir()

	if got := runFresh(t, dir, factsDir); len(got) != 1 ||
		!strings.Contains(got[0].Message, "tmpmod/util.Slow") {
		t.Fatalf("first run: got %+v, want one lockheld finding via tmpmod/util.Slow", got)
	}

	path := utilCacheFile(t, factsDir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doctored := strings.ReplaceAll(string(data), `\"blocking\"`, `\"_gone_\"`)
	if doctored == string(data) {
		doctored = strings.ReplaceAll(string(data), `"blocking"`, `"_gone_"`)
	}
	if doctored == string(data) {
		t.Fatalf("cache entry for util carries no blocking summary:\n%s", data)
	}
	if err := os.WriteFile(path, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}

	if got := runFresh(t, dir, factsDir); len(got) != 0 {
		t.Fatalf("second run re-analyzed util from source instead of trusting the cache: %+v", got)
	}
}

// TestStaleFactsInvalidated proves the content hash guards the cache:
// editing the dependency re-summarizes it from source even though a
// (now stale) cache entry exists.
func TestStaleFactsInvalidated(t *testing.T) {
	dir := crossPackageModule(t)
	factsDir := t.TempDir()

	if got := runFresh(t, dir, factsDir); len(got) != 1 {
		t.Fatalf("first run: got %+v, want one finding", got)
	}

	// Rewrite util so Slow no longer blocks. A run that reused the old
	// cached summary would still report the finding.
	utilPath := filepath.Join(dir, "util", "util.go")
	if err := os.WriteFile(utilPath, []byte(`package util

// Slow no longer blocks.
func Slow() {}
`), 0o644); err != nil {
		t.Fatal(err)
	}

	if got := runFresh(t, dir, factsDir); len(got) != 0 {
		t.Fatalf("stale cached summary survived a source change: %+v", got)
	}

	// And flipping it back restores the finding: the cache now holds the
	// edited version's summary, which the restored content must not reuse.
	if err := os.WriteFile(utilPath, []byte(`package util

import "time"

// Slow blocks for a moment.
func Slow() { time.Sleep(time.Millisecond) }
`), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := runFresh(t, dir, factsDir); len(got) != 1 {
		t.Fatalf("third run: got %+v, want the finding back", got)
	}
}

// noteFact is a throwaway package fact for the isolation test.
type noteFact struct {
	Msg string `json:"msg"`
}

func (*noteFact) AFact() {}

// TestAnalyzerIsolation proves a pass can import facts only from itself
// or analyzers it declares in Requires: two otherwise identical
// consumers differ only in Requires, and only the declaring one sees
// the producer's fact.
func TestAnalyzerIsolation(t *testing.T) {
	producer := &analysis.Analyzer{
		Name:      "producer",
		Doc:       "exports one package fact",
		FactTypes: []analysis.Fact{(*noteFact)(nil)},
	}
	producer.Run = func(pass *analysis.Pass) error {
		pass.ExportPackageFact(&noteFact{Msg: "hello"})
		return nil
	}
	consumer := func(name string, requires []*analysis.Analyzer) *analysis.Analyzer {
		a := &analysis.Analyzer{Name: name, Doc: "imports the note", Requires: requires}
		a.Run = func(pass *analysis.Pass) error {
			var f noteFact
			if pass.ImportPackageFact(producer, pass.Pkg.Path(), &f) {
				pass.Reportf(pass.Files[0].Pos(), "%s saw %q", name, f.Msg)
			} else {
				pass.Reportf(pass.Files[0].Pos(), "%s saw nothing", name)
			}
			return nil
		}
		return a
	}
	declaring := consumer("declaring", []*analysis.Analyzer{producer})
	isolated := consumer("isolated", nil)

	dir := writeModule(t, map[string]string{
		"p/p.go": "package p\n\nfunc F() {}\n",
	})
	e := engine.New(engine.Options{
		ModuleDir: dir,
		Analyzers: []*analysis.Analyzer{declaring, isolated},
	})
	findings, _, err := e.Run("./p")
	if err != nil {
		t.Fatalf("engine.Run: %v", err)
	}
	got := make(map[string]string)
	for _, f := range findings {
		got[f.Analyzer] = f.Message
	}
	if got["declaring"] != `declaring saw "hello"` {
		t.Errorf("declaring consumer: %q, want the producer's fact", got["declaring"])
	}
	if got["isolated"] != "isolated saw nothing" {
		t.Errorf("isolated consumer: %q, want the fact to be invisible without Requires", got["isolated"])
	}
}
