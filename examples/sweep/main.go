// Sweep reproduces the Figure 6 scalability study interactively: for
// growing pin counts it solves one whole-design weighted interval
// assignment with Lagrangian relaxation and (up to a size cap) with the
// exact branch-and-bound ILP, printing runtime and objective series plus
// a log-scale ASCII runtime chart.
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"strings"

	"cpr"
)

func main() {
	var buf strings.Builder
	points, err := cpr.RunFig6(&buf, cpr.ExperimentConfig{Quick: len(os.Args) > 1 && os.Args[1] == "quick"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(buf.String())

	fmt.Println("\nruntime, log10 seconds (L = Lagrangian relaxation, I = exact ILP):")
	chart(points)
	fmt.Println("\nThe LR curve stays near-flat while the ILP curve climbs steeply —")
	fmt.Println("the paper's Figure 6(a). Objectives track within a few percent where")
	fmt.Println("both run — Figure 6(b).")
}

func chart(points []cpr.Fig6Point) {
	const height = 12
	lo, hi := math.Inf(1), math.Inf(-1)
	vals := func(lr bool) []float64 {
		var out []float64
		for _, p := range points {
			v := p.ILPSeconds
			if lr {
				v = p.LRSeconds
			}
			if v <= 0 {
				out = append(out, math.NaN())
				continue
			}
			out = append(out, math.Log10(v))
		}
		return out
	}
	lrs, ilps := vals(true), vals(false)
	for _, v := range append(append([]float64{}, lrs...), ilps...) {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		hi = lo + 1
	}
	rowOf := func(v float64) int {
		return int((v - lo) / (hi - lo) * float64(height-1))
	}
	gridRows := make([][]byte, height)
	for i := range gridRows {
		gridRows[i] = []byte(strings.Repeat(" ", 6*len(points)))
	}
	for i := range points {
		col := 6*i + 2
		if !math.IsNaN(lrs[i]) {
			gridRows[rowOf(lrs[i])][col] = 'L'
		}
		if !math.IsNaN(ilps[i]) {
			gridRows[rowOf(ilps[i])][col+1] = 'I'
		}
	}
	for r := height - 1; r >= 0; r-- {
		fmt.Printf("%6.2f |%s\n", lo+(hi-lo)*float64(r)/float64(height-1), gridRows[r])
	}
	fmt.Printf("       +%s\n        ", strings.Repeat("-", 6*len(points)))
	for _, p := range points {
		fmt.Printf("%-6d", p.Pins)
	}
	fmt.Println()
}
