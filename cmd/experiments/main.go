// Command experiments regenerates the paper's evaluation tables and
// figures (DAC'17 §5) on the synthetic benchmark substrate.
//
// Usage:
//
//	experiments -table 2                    # full Table 2 (all circuits)
//	experiments -fig 6a                     # LR vs ILP runtime sweep
//	experiments -fig 6b                     # LR vs ILP objective sweep
//	experiments -fig 7a -circuits ecc,efc   # LR/ILP routing ratios
//	experiments -fig 7b                     # initial congested grids
//	experiments -ablation alpha             # design choice ablations
//	experiments -all -quick                 # everything, scaled down
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cpr/internal/cliutil"
	"cpr/internal/experiments"
)

func main() {
	var (
		table    = flag.String("table", "", "regenerate a table: 2")
		fig      = flag.String("fig", "", "regenerate a figure: 6a, 6b, 7a, 7b")
		ablation = flag.String("ablation", "", "run an ablation: profit, tiebreak, alpha, refinement, subgradient, cutmask")
		all      = flag.Bool("all", false, "run every experiment")
		matrix   = flag.String("matrix", "", "run a cross-cutting matrix: rule-engines")
		quick    = flag.Bool("quick", false, "scaled-down effort (seconds instead of minutes)")
		circuits = cliutil.Circuits("", "empty runs all six")
		ilpLimit = cliutil.ILPTimeout(0)
		workers  = cliutil.Workers()
	)
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, ILPTimeLimit: *ilpLimit, Workers: *workers}
	if *circuits != "" {
		cfg.Circuits = strings.Split(*circuits, ",")
	}

	ran := false
	run := func(name string, fn func() error) {
		ran = true
		fmt.Printf("=== %s ===\n", name)
		t0 := time.Now()
		if err := fn(); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(t0).Round(time.Millisecond))
	}

	if *table == "eval" || *fig == "eval" {
		run("Full evaluation (Table 2 + Figure 7(b) from shared runs)", func() error {
			return experiments.Evaluation(os.Stdout, cfg)
		})
	}
	wantTable2 := *all || *table == "2"
	wantEngines := *all || *matrix == "rule-engines"
	wantFig6 := *all || *fig == "6a" || *fig == "6b" || *fig == "6"
	wantFig7a := *all || *fig == "7a"
	wantFig7b := *all || *fig == "7b"

	if wantFig6 {
		run("Figure 6(a)+(b): LR vs ILP scalability", func() error {
			_, err := experiments.Fig6(os.Stdout, cfg)
			return err
		})
	}
	if wantFig7a {
		run("Figure 7(a): LR/ILP routing quality ratios", func() error {
			_, err := experiments.Fig7a(os.Stdout, cfg)
			return err
		})
	}
	if wantFig7b {
		run("Figure 7(b): initial congested routing grids", func() error {
			_, err := experiments.Fig7b(os.Stdout, cfg)
			return err
		})
	}
	if wantTable2 {
		run("Table 2: routing comparison", func() error {
			return experiments.Table2(os.Stdout, cfg)
		})
	}
	if wantEngines {
		run("Rule-engine matrix: sadp vs lele vs tpl", func() error {
			_, err := experiments.RuleEngineMatrix(os.Stdout, cfg)
			return err
		})
	}

	ablations := map[string]func() error{
		"profit":      func() error { return experiments.AblationProfit(os.Stdout, cfg) },
		"tiebreak":    func() error { return experiments.AblationTieBreak(os.Stdout, cfg) },
		"alpha":       func() error { return experiments.AblationAlpha(os.Stdout, cfg) },
		"refinement":  func() error { return experiments.AblationRefinement(os.Stdout, cfg) },
		"subgradient": func() error { return experiments.AblationSubgradient(os.Stdout, cfg) },
		"cutmask":     func() error { return experiments.CutMaskComparison(os.Stdout, cfg) },
	}
	if *all {
		for _, name := range []string{"profit", "tiebreak", "alpha", "refinement", "subgradient", "cutmask"} {
			run("Ablation: "+name, ablations[name])
		}
	} else if *ablation != "" {
		fn, ok := ablations[*ablation]
		if !ok {
			fmt.Fprintf(os.Stderr, "experiments: unknown ablation %q\n", *ablation)
			os.Exit(1)
		}
		run("Ablation: "+*ablation, fn)
	}

	if !ran {
		flag.Usage()
		os.Exit(2)
	}
}
