// Package jobs is a stub of the repo's job manager for the errdrop
// golden tests; the analyzer matches it by import path suffix.
package jobs

import "context"

// Job is one submitted request.
type Job struct{ ID string }

// Manager owns the queue.
type Manager struct{}

// Submit enqueues a request.
func (m *Manager) Submit(name string) (*Job, error) {
	return &Job{ID: name}, nil
}

// Drain stops the manager.
func (m *Manager) Drain(ctx context.Context) error { return nil }

// Depth has no error result: never flagged.
func (m *Manager) Depth() int { return 0 }
