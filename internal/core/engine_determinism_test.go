package core

import (
	"bytes"
	"math/rand"
	"testing"

	"cpr/internal/design"
	"cpr/internal/synth"
	"cpr/internal/tech"
)

// engineVariants are the non-default rule engines the determinism suite
// re-runs under. sadp is the default engine and already covered by every
// other determinism test.
var engineVariants = []string{tech.EngineLELE, tech.EngineTPL}

// generateWithEngine builds a seeded synthetic design routed under the
// given rule engine. The tech is cloned before tagging so generator-
// shared Technology values stay untouched.
func generateWithEngine(t *testing.T, spec synth.Spec, engine string) *design.Design {
	t.Helper()
	d := mustGenerate(t, spec)
	tc := *d.Tech
	tc.Patterning.Engine = engine
	d.Tech = &tc
	return d
}

// TestRunDeterministicAcrossWorkersPerEngine is the worker-count
// determinism contract under lele and tpl rules: the full CPR flow must
// produce byte-identical results — design bytes, every route, and
// metrics — for Workers in {1, 2, 8}. The engines change the margins and
// (for tpl) add a cross-track term to the negotiation cost function, so
// sadp determinism does not imply this.
func TestRunDeterministicAcrossWorkersPerEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("per-engine determinism sweep skipped in short mode")
	}
	spec := synth.Spec{Name: "det-engine", Nets: 160, Width: 150, Height: 60, Seed: 202, BlockageFraction: 0.04}
	for _, engine := range engineVariants {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			var base []byte
			for wi, workers := range determinismWorkers {
				d := generateWithEngine(t, spec, engine)
				res, err := Run(d, Options{Mode: ModeCPR, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				dump := dumpRunResult(t, d, res)
				if wi == 0 {
					base = dump
					continue
				}
				if !bytes.Equal(dump, base) {
					t.Errorf("workers=%d: run result differs from workers=%d under %s",
						workers, determinismWorkers[0], engine)
				}
			}
		})
	}
}

// TestRerunByteIdenticalRandomEditsPerEngine is the core-level strict
// incremental property under lele and tpl: over random ECO edits, Rerun
// must stay byte-identical to a cold run for every worker count.
func TestRerunByteIdenticalRandomEditsPerEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("per-engine ECO sweep skipped in short mode")
	}
	spec := synth.Spec{Name: "eco-engine", Nets: 90, Width: 120, Height: 40, Seed: 22, BlockageFraction: 0.04}
	const edits = 2
	for _, engine := range engineVariants {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			rng := rand.New(rand.NewSource(spec.Seed))
			d := generateWithEngine(t, spec, engine)
			prev, err := Run(d, Options{})
			if err != nil {
				t.Fatal(err)
			}
			reusedTotal := 0
			for step := 0; step < edits; step++ {
				d = editDesign(t, d, rng)
				cold, err := Run(d, Options{})
				if err != nil {
					t.Fatalf("step %d: cold run: %v", step, err)
				}
				coldDump := dumpRunResult(t, d, cold)
				for _, workers := range determinismWorkers {
					inc, err := Rerun(prev, d, Options{Workers: workers})
					if err != nil {
						t.Fatalf("step %d workers=%d: rerun: %v", step, workers, err)
					}
					if inc.Incremental == nil {
						t.Fatalf("step %d workers=%d: no incremental stats", step, workers)
					}
					if got := dumpRunResult(t, d, inc); !bytes.Equal(got, coldDump) {
						t.Fatalf("step %d workers=%d: rerun output differs from cold run under %s",
							step, workers, engine)
					}
					reusedTotal += inc.Incremental.Reused
				}
				prev = cold
			}
			if reusedTotal == 0 {
				t.Error("no panel was ever reused across the edit sequence; incremental path is inert")
			}
		})
	}
}
