// Package cpr is a Go reproduction of "Concurrent Pin Access Optimization
// for Unidirectional Routing" (Xu, Lin, Livramento, Pan — DAC 2017).
//
// It provides, as one library:
//
//   - the concurrent pin access optimizer: track-based pin access interval
//     generation, linear conflict set detection, and the weighted interval
//     assignment problem solved exactly (branch-and-bound binary ILP over
//     a built-in simplex) or at scale (Lagrangian relaxation with
//     subgradient multiplier updates);
//   - the concurrent pin access router (CPR): a negotiation-congestion
//     unidirectional M2/M3 router that consumes the assigned intervals as
//     partial routes and enforces SADP line-end rules;
//   - the paper's two baselines on the same substrate: sequential pin
//     access planning ([12]-style) and negotiation routing without pin
//     access optimization ([21]-style);
//   - a deterministic synthetic benchmark generator standing in for the
//     paper's circuits, plus the experiment harness reproducing every
//     table and figure of the evaluation.
//
// Quick start:
//
//	d, _ := cpr.GenerateCircuit(cpr.Spec{Name: "demo", Nets: 100, Width: 120, Height: 40, Seed: 1})
//	res, _ := cpr.Run(d, cpr.Options{Mode: cpr.ModeCPR})
//	fmt.Println(res.Metrics.Row())
//
// See the examples/ directory and cmd/experiments for complete programs.
package cpr

import (
	"context"
	"io"

	"cpr/internal/assign"
	"cpr/internal/core"
	"cpr/internal/cutmask"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/experiments"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/ilp"
	"cpr/internal/lagrange"
	"cpr/internal/metrics"
	"cpr/internal/pinaccess"
	"cpr/internal/render"
	"cpr/internal/router"
	"cpr/internal/synth"
	"cpr/internal/tech"
	"cpr/internal/verify"
)

// Core geometry and design types.
type (
	// Interval is a closed 1-D grid span.
	Interval = geom.Interval
	// Rect is a closed 2-D grid rectangle.
	Rect = geom.Rect
	// Design is a netlist with placed pins and blockages on a routing
	// grid.
	Design = design.Design
	// Pin is one I/O pin on M1.
	Pin = design.Pin
	// Net is a set of pins to connect.
	Net = design.Net
	// Technology bundles layer, rule, and cost parameters.
	Technology = tech.Technology
)

// Synthetic benchmark generation.
type (
	// Spec parameterizes a synthetic circuit.
	Spec = synth.Spec
)

// Pin access optimization types.
type (
	// AccessInterval is one candidate pin access interval.
	AccessInterval = pinaccess.Interval
	// IntervalSet is the generated candidate set for a pin group.
	IntervalSet = pinaccess.Set
	// AssignmentModel is a weighted interval assignment instance.
	AssignmentModel = assign.Model
	// AssignmentSolution is a selection of intervals for pins.
	AssignmentSolution = assign.Solution
	// LRConfig tunes the Lagrangian relaxation solver.
	LRConfig = lagrange.Config
	// LRResult reports a Lagrangian relaxation run.
	LRResult = lagrange.Result
	// ILPConfig bounds the exact branch-and-bound solver.
	ILPConfig = ilp.Config
)

// Flow types.
type (
	// Options configures a flow run.
	Options = core.Options
	// Mode selects CPR or one of the two baselines.
	Mode = core.Mode
	// Optimizer selects LR or exact ILP pin access optimization.
	Optimizer = core.Optimizer
	// RunResult is a completed flow run.
	RunResult = core.RunResult
	// PinOptReport aggregates pin access optimization over panels.
	PinOptReport = core.PinOptReport
	// RouterConfig tunes the negotiation router.
	RouterConfig = router.Config
	// SequentialConfig tunes the sequential baseline.
	SequentialConfig = router.SequentialConfig
	// Metrics is a Table 2 style metric row.
	Metrics = metrics.Routing
	// ExperimentConfig selects circuits and effort for experiments.
	ExperimentConfig = experiments.Config
	// Fig6Point is one LR-vs-ILP scalability sample.
	Fig6Point = experiments.Fig6Point
	// Fig7aRow is one circuit's LR/ILP routing quality ratios.
	Fig7aRow = experiments.Fig7aRow
	// Fig7bRow is one circuit's initial congested grid counts.
	Fig7bRow = experiments.Fig7bRow
)

// Flow modes (paper §5 comparison arms).
const (
	// ModeCPR is the paper's concurrent pin access router.
	ModeCPR = core.ModeCPR
	// ModeNoPinOpt is the negotiation baseline of [21].
	ModeNoPinOpt = core.ModeNoPinOpt
	// ModeSequential is the sequential planning baseline of [12].
	ModeSequential = core.ModeSequential

	// OptLR selects Lagrangian relaxation (scalable, default).
	OptLR = core.OptLR
	// OptILP selects the exact branch-and-bound ILP.
	OptILP = core.OptILP
)

// DefaultTechnology returns the paper's §5 technology setup: 10-track
// panels, base grid cost 1, forbidden via cost 10, LR bound 200.
func DefaultTechnology() *Technology { return tech.Default() }

// NewDesign creates an empty design on a width x height grid.
func NewDesign(name string, width, height int, t *Technology) *Design {
	return design.New(name, width, height, t)
}

// GenerateCircuit builds a synthetic benchmark circuit from a spec.
func GenerateCircuit(spec Spec) (*Design, error) { return synth.Generate(spec) }

// TableCircuits returns the specs of the paper's six Table 2 circuits.
func TableCircuits() []Spec { return synth.TableSpecs() }

// CircuitByName returns the Table 2 spec with the given name
// (ecc, efc, ctl, alu, div, top).
func CircuitByName(name string) (Spec, error) { return synth.SpecByName(name) }

// Run executes the selected routing flow on a validated design.
//
// Pin access optimization is track-sharded and runs on opts.Workers
// goroutines (0 = GOMAXPROCS, 1 = fully sequential). The result is
// byte-identical for every worker count; only wall-clock fields such as
// Metrics.CPUSeconds vary between runs.
func Run(d *Design, opts Options) (*RunResult, error) { return core.Run(d, opts) }

// RunContext is Run with cancellation: ctx is polled between panel
// subproblems, between LR subgradient iterations, and between pipeline
// stages, so a canceled or timed-out run stops promptly with an error
// wrapping ctx.Err(). A context that never fires leaves the result
// byte-identical to Run.
func RunContext(ctx context.Context, d *Design, opts Options) (*RunResult, error) {
	return core.RunContext(ctx, d, opts)
}

// DesignHash returns the hex SHA-256 of the design's canonical cpr-design
// encoding — the content address the cprd daemon's result cache keys on.
func DesignHash(d *Design) (string, error) { return designio.Hash(d) }

// OptimizePinAccess runs concurrent pin access optimization only (no
// routing) and returns per-panel reports plus the interval seeds.
func OptimizePinAccess(d *Design, opts Options) (*PinOptReport, []core.PanelSeed, error) {
	return core.OptimizePinAccess(d, opts)
}

// BuildAssignmentModel generates pin access intervals for the given pins
// and assembles the weighted interval assignment model with the paper's
// sqrt profit. Pass nil pins to use every pin of the design.
func BuildAssignmentModel(d *Design, pins []int) (*AssignmentModel, error) {
	if pins == nil {
		pins = make([]int, len(d.Pins))
		for i := range pins {
			pins[i] = i
		}
	}
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), pins)
	if err != nil {
		return nil, err
	}
	return assign.Build(set, assign.SqrtProfit), nil
}

// SolveLR runs the Lagrangian relaxation solver on an assignment model.
func SolveLR(m *AssignmentModel, cfg LRConfig) LRResult { return lagrange.Solve(m, cfg) }

// SolveILP runs the exact branch-and-bound solver on an assignment model.
func SolveILP(m *AssignmentModel, cfg ILPConfig) (*AssignmentSolution, error) {
	sol, _, err := m.SolveILP(cfg)
	return sol, err
}

// SaveDesign writes a design in the cpr-design text format.
func SaveDesign(w io.Writer, d *Design) error { return designio.Write(w, d) }

// LoadDesign reads a design in the cpr-design text format and validates
// it.
func LoadDesign(r io.Reader) (*Design, error) { return designio.Read(r) }

// RenderSVG draws a design and (optionally) a completed run's routes as
// an SVG document.
func RenderSVG(w io.Writer, d *Design, res *RunResult) error {
	var rres *router.Result
	if res != nil {
		rres = res.Router
	}
	return render.SVG(w, d, grid.New(d), rres, nil, render.SVGOptions{})
}

// VerifyRouting independently re-checks a run's routes for connectivity,
// exclusivity, and line-end rules; it returns the violations found (nil
// means clean).
func VerifyRouting(d *Design, res *RunResult) []string {
	rep := verify.Check(d, grid.New(d), res.Router)
	return rep.Errors
}

// CutMaskReport is the SADP cut mask analysis of a routing result.
type CutMaskReport = cutmask.Report

// CutMaskParams tunes the cut mask rules.
type CutMaskParams = cutmask.Params

// AnalyzeCutMask extracts, merges, and checks the SADP cut mask implied
// by a run's routes (the paper's SAMP extendability, §4).
func AnalyzeCutMask(d *Design, res *RunResult, params CutMaskParams) *CutMaskReport {
	return cutmask.Analyze(d, grid.New(d), res.Router, params)
}

// Experiment entry points: each regenerates one table or figure of the
// paper's evaluation, writing a formatted report to w.

// RunTable2 regenerates Table 2 (three routers over the benchmark set).
func RunTable2(w io.Writer, cfg ExperimentConfig) error { return experiments.Table2(w, cfg) }

// RunFig6 regenerates Figures 6(a) and 6(b) (LR vs ILP scalability).
func RunFig6(w io.Writer, cfg ExperimentConfig) ([]experiments.Fig6Point, error) {
	return experiments.Fig6(w, cfg)
}

// RunFig7a regenerates Figure 7(a) (LR/ILP routing quality ratios).
func RunFig7a(w io.Writer, cfg ExperimentConfig) ([]experiments.Fig7aRow, error) {
	return experiments.Fig7a(w, cfg)
}

// RunFig7b regenerates Figure 7(b) (initial congested grid counts).
func RunFig7b(w io.Writer, cfg ExperimentConfig) ([]experiments.Fig7bRow, error) {
	return experiments.Fig7b(w, cfg)
}
