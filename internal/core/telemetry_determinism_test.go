package core

import (
	"bytes"
	"context"
	"testing"

	"cpr/internal/design"
	"cpr/internal/synth"
	"cpr/internal/telemetry"
)

// telemetryCtx returns a context carrying a fresh tracer and metrics
// registry, the way cmd/cpr -trace or the daemon wires them in.
func telemetryCtx() (context.Context, *telemetry.Tracer) {
	tr := telemetry.New()
	ctx := telemetry.WithTracer(context.Background(), tr)
	ctx = telemetry.WithRegistry(ctx, telemetry.NewRegistry())
	return ctx, tr
}

// TestTelemetryObservationalByteIdentical is the telemetry contract's
// regression gate: for every worker count, a run with tracing and
// metrics enabled must produce an outcome byte-identical to a run with
// telemetry absent. Any span attribute read that perturbs iteration
// order, any metric observation that reorders work, shows up here as a
// byte diff.
func TestTelemetryObservationalByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-flow telemetry sweep skipped in short mode")
	}
	spec := synth.Spec{Name: "telem-det", Nets: 160, Width: 150, Height: 60, Seed: 202, BlockageFraction: 0.04}
	var base []byte
	for _, workers := range determinismWorkers {
		for _, traced := range []bool{false, true} {
			d := mustGenerate(t, spec)
			ctx := context.Background()
			if traced {
				ctx, _ = telemetryCtx()
			}
			res, err := RunContext(ctx, d, Options{Mode: ModeCPR, Workers: workers})
			if err != nil {
				t.Fatalf("workers=%d traced=%v: %v", workers, traced, err)
			}
			dump := dumpRunResult(t, d, res)
			if base == nil {
				base = dump
				continue
			}
			if !bytes.Equal(dump, base) {
				t.Errorf("workers=%d traced=%v: outcome differs from workers=%d untraced (len %d vs %d)",
					workers, traced, determinismWorkers[0], len(dump), len(base))
			}
		}
	}
}

// TestTelemetryObservationalRerun extends the contract to the
// incremental path: a traced Rerun must match an untraced cold run of
// the edited design byte for byte.
func TestTelemetryObservationalRerun(t *testing.T) {
	spec := synth.Spec{Name: "telem-rerun", Nets: 80, Width: 100, Height: 40, Seed: 404}
	base := mustGenerate(t, spec)
	baseRes, err := Run(base, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}

	// Deterministic generation lets us materialize the edited revision
	// twice, once per flow.
	edit := func() *design.Design {
		d := mustGenerate(t, spec)
		d.Blockages = d.Blockages[:len(d.Blockages)/2]
		return d
	}

	coldD := edit()
	cold, err := Run(coldD, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	incD := edit()
	ctx, tr := telemetryCtx()
	inc, err := RerunContext(ctx, baseRes, incD, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	got := dumpRunResult(t, incD, inc)
	want := dumpRunResult(t, coldD, cold)
	if !bytes.Equal(got, want) {
		t.Errorf("traced incremental rerun differs from untraced cold run (len %d vs %d)", len(got), len(want))
	}
	if tr.Find("run") == nil || tr.Find("pinopt") == nil {
		t.Errorf("rerun trace missing run/pinopt spans")
	}
}

// TestTraceGoldenZeroedTimes pins the trace layout: two sequential runs
// of the same design must export byte-identical traces once timestamps
// are zeroed, in both the Chrome and raw JSON encodings. (Sequential
// because span IDs follow creation order; the *results* are identical
// at every worker count — see TestTelemetryObservationalByteIdentical —
// but concurrent span creation order is scheduler-dependent.)
func TestTraceGoldenZeroedTimes(t *testing.T) {
	spec := synth.Spec{Name: "telem-golden", Nets: 60, Width: 80, Height: 40, Seed: 505}
	export := func() (chrome, raw []byte) {
		t.Helper()
		d := mustGenerate(t, spec)
		ctx, tr := telemetryCtx()
		if _, err := RunContext(ctx, d, Options{Mode: ModeCPR, Workers: 1}); err != nil {
			t.Fatal(err)
		}
		var cb, jb bytes.Buffer
		if err := tr.WriteChromeTrace(&cb, telemetry.ExportOptions{ZeroTimes: true}); err != nil {
			t.Fatal(err)
		}
		if err := tr.WriteJSON(&jb, telemetry.ExportOptions{ZeroTimes: true}); err != nil {
			t.Fatal(err)
		}
		return cb.Bytes(), jb.Bytes()
	}

	chrome1, raw1 := export()
	chrome2, raw2 := export()
	if !bytes.Equal(chrome1, chrome2) {
		t.Errorf("zero-time Chrome traces differ across identical runs")
	}
	if !bytes.Equal(raw1, raw2) {
		t.Errorf("zero-time JSON traces differ across identical runs")
	}
	for _, name := range []string{"run", "pinopt", "panel", "generate", "conflicts", "assign", "route"} {
		if !bytes.Contains(chrome1, []byte(`"name": "`+name+`"`)) {
			t.Errorf("Chrome trace missing %q span", name)
		}
	}
	if !bytes.Contains(chrome1, []byte(`"ts": 0`)) || bytes.Contains(chrome1, []byte(`"ts": 1`)) {
		t.Errorf("ZeroTimes left nonzero timestamps in Chrome trace")
	}
}
