// Package exchange is the stub peer exchange whose block fetch goes
// over HTTP — the root of the blocking chain.
package exchange

import (
	"io"
	"net/http"
)

type Service struct {
	client *http.Client
	peer   string
}

func (s *Service) GetBlock(key string) (string, error) {
	resp, err := s.client.Get(s.peer + "/block/" + key)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}
