package router_test

import (
	"context"
	"testing"

	"cpr/internal/grid"
	"cpr/internal/router"
	"cpr/internal/verify"
)

// FuzzRouteSplice drives RunPlan with arbitrary dirty-region masks: any
// subset of a cold run's regions spliced, the rest re-routed. Whatever
// the mask, the result must uphold the splice invariants:
//
//  1. no two nets share a metal cell (brute-force occupancy oracle over
//     every route's nodes and virtual extension cells);
//  2. no dangling route-tree nodes (every edge endpoint appears in the
//     owning route's node list);
//  3. no net is finalized twice (spliced-net accounting matches the
//     mask exactly, and the route table stays one-entry-per-net);
//  4. the independent verifier accepts the result, and — since the
//     design is unchanged — every route is byte-identical to cold.
func FuzzRouteSplice(f *testing.F) {
	d := clusteredDesign(f, "fuzz-splice", 3, 10, 555, true)
	cold := router.New(d, grid.New(d), router.Config{}).Run()
	if cold.Regions < 3 {
		f.Fatalf("expected >= 3 regions, got %d", cold.Regions)
	}
	if rep := verify.Check(d, grid.New(d), cold); !rep.Ok() {
		f.Fatalf("cold run fails its own verification: %v", rep.Errors)
	}

	f.Add(uint8(0))
	f.Add(uint8(1))
	f.Add(uint8(0b101))
	f.Add(uint8(0xff))
	f.Fuzz(func(t *testing.T, mask uint8) {
		g := grid.New(d)
		r := router.New(d, g, router.Config{})
		plan := r.Partition()
		keep := func(id int) bool { return mask&(1<<uint(id%8)) != 0 }
		spliced := splicedRegionsFrom(plan, cold, keep)
		res := r.RunPlan(context.Background(), plan, router.RunOpts{Spliced: spliced})

		// Invariant 3: spliced-net accounting matches the mask, no net
		// counted (or finalized) twice.
		wantSpliced := 0
		for _, rg := range plan.Regions {
			if keep(rg.ID) {
				wantSpliced += len(rg.Nets)
			}
		}
		if res.SplicedNets != wantSpliced {
			t.Fatalf("mask %08b: SplicedNets = %d, want %d", mask, res.SplicedNets, wantSpliced)
		}
		if len(res.Routes) != len(d.Nets) {
			t.Fatalf("mask %08b: route table has %d entries for %d nets", mask, len(res.Routes), len(d.Nets))
		}

		// Invariants 1 and 2: brute-force occupancy and tree-closure
		// oracles over the final route table.
		user := make(map[grid.NodeID]int)
		for netID, nr := range res.Routes {
			if nr == nil || !nr.Routed {
				continue
			}
			nodeSet := make(map[grid.NodeID]bool, len(nr.Nodes))
			for _, id := range nr.Nodes {
				nodeSet[id] = true
			}
			for _, e := range nr.Edges {
				if !nodeSet[e.From] || !nodeSet[e.To] {
					t.Fatalf("mask %08b: net %d has a dangling edge endpoint", mask, netID)
				}
			}
			for _, id := range nr.Nodes {
				if prev, ok := user[id]; ok && prev != netID {
					x, y, z := g.Coords(id)
					t.Fatalf("mask %08b: nets %d and %d overlap at (%d,%d,L%d)", mask, prev, netID, x, y, z)
				}
				user[id] = netID
			}
			for _, id := range nr.Virtual {
				if prev, ok := user[id]; ok && prev != netID {
					x, y, z := g.Coords(id)
					t.Fatalf("mask %08b: nets %d and %d overlap on virtual cell (%d,%d,L%d)",
						mask, prev, netID, x, y, z)
				}
				user[id] = netID
			}
		}

		// Invariant 4: independent verification, then byte-identity to
		// the cold run (the design is unchanged, so every mask must
		// reproduce it exactly).
		if rep := verify.Check(d, g, res); !rep.Ok() {
			t.Fatalf("mask %08b: verification failed: %v", mask, rep.Errors)
		}
		for netID := range res.Routes {
			got, want := res.Routes[netID], cold.Routes[netID]
			if (got == nil) != (want == nil) {
				t.Fatalf("mask %08b: net %d nil mismatch", mask, netID)
			}
			if got == nil {
				continue
			}
			if got.Routed != want.Routed || len(got.Nodes) != len(want.Nodes) ||
				len(got.Edges) != len(want.Edges) || len(got.Virtual) != len(want.Virtual) {
				t.Fatalf("mask %08b: net %d route shape differs from cold", mask, netID)
			}
			for i := range got.Nodes {
				if got.Nodes[i] != want.Nodes[i] {
					t.Fatalf("mask %08b: net %d node %d differs from cold", mask, netID, i)
				}
			}
			for i := range got.Edges {
				if got.Edges[i] != want.Edges[i] {
					t.Fatalf("mask %08b: net %d edge %d differs from cold", mask, netID, i)
				}
			}
			for i := range got.Virtual {
				if got.Virtual[i] != want.Virtual[i] {
					t.Fatalf("mask %08b: net %d virtual cell %d differs from cold", mask, netID, i)
				}
			}
		}
	})
}
