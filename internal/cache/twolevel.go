package cache

// TwoLevel couples the whole-design result cache with the per-panel
// artifact cache. The two levels are independent LRUs: a design-level
// hit answers a resubmission without touching the optimizer at all,
// while a design-level miss still harvests panel-level hits for every
// panel whose content key is unchanged (the incremental / ECO path).
type TwoLevel[D, P any] struct {
	// Design is the whole-design result level, keyed by Key.
	Design *Cache[D]
	// Panel is the per-panel artifact level, keyed by PanelKey.
	Panel *Cache[P]
}

// NewTwoLevel creates both levels. Capacities <= 0 select the default of
// 1024 entries per level; a panel cache typically wants a multiple of
// the design capacity (one design contributes many panels).
func NewTwoLevel[D, P any](designCap, panelCap int) *TwoLevel[D, P] {
	return &TwoLevel[D, P]{
		Design: New[D](designCap),
		Panel:  New[P](panelCap),
	}
}

// TwoLevelStats snapshots both levels' counters.
type TwoLevelStats struct {
	Design Stats `json:"design"`
	Panel  Stats `json:"panel"`
}

// Stats snapshots both levels.
func (t *TwoLevel[D, P]) Stats() TwoLevelStats {
	return TwoLevelStats{
		Design: t.Design.Stats(),
		Panel:  t.Panel.Stats(),
	}
}
