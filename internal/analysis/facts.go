package analysis

import (
	"encoding/json"
	"fmt"
	"go/types"
	"reflect"
	"sort"
	"strings"
)

// Fact is a serializable piece of analysis knowledge attached to a
// types.Object (usually a function or a type) or to a whole package,
// exported by one analyzer while checking the defining package and
// imported by analyzers checking packages downstream of it. Facts are
// how summaries ("this function blocks on I/O", "this struct is an
// options struct") cross package boundaries: the engine analyzes
// dependencies first, so by the time a caller is checked, every callee's
// facts are present.
//
// Implementations must be pointers to JSON-marshalable structs; the
// AFact marker method keeps arbitrary values out of the store.
type Fact interface{ AFact() }

// ObjectKey renders a stable, package-relative name for a fact-bearing
// object: "Name" for package-level functions, variables, and types, and
// "Recv.Name" for methods (pointer receivers are stripped, so a method
// set shares its value/pointer spelling). Together with the package path
// it identifies the object across processes, which is what lets facts be
// persisted to disk and reloaded without live type identity.
func ObjectKey(obj types.Object) string {
	fn, ok := obj.(*types.Func)
	if !ok {
		return obj.Name()
	}
	fn = fn.Origin()
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return fn.Name()
	}
	t := types.Unalias(sig.Recv().Type())
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name() + "." + fn.Name()
	}
	if tp, ok := t.(*types.TypeParam); ok {
		_ = tp // interface-constraint methods keep the bare name
	}
	return fn.Name()
}

// factKey identifies one fact: which analyzer exported it, for which
// package, and for which object ("" = the package itself).
type factKey struct {
	analyzer string
	pkg      string
	object   string
}

// FactStore holds every fact of one engine run, keyed by analyzer and
// stable object name so entries survive serialization. It is not safe
// for concurrent use (the engine is single-threaded, like the loader).
type FactStore struct {
	facts    map[factKey]Fact
	analyzed map[string]map[string]bool // analyzer -> pkg path -> done
}

// NewFactStore creates an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		facts:    make(map[factKey]Fact),
		analyzed: make(map[string]map[string]bool),
	}
}

// Export records fact f for obj under the given analyzer name,
// replacing any previous fact of the same concrete type is not
// supported: one analyzer exports at most one fact per object, which is
// all the cprlint suite needs, so the last write wins.
func (s *FactStore) Export(analyzer string, obj types.Object, f Fact) {
	if obj == nil || obj.Pkg() == nil {
		return
	}
	s.facts[factKey{analyzer, obj.Pkg().Path(), ObjectKey(obj)}] = f
}

// ExportPackage records a package-level fact (object key "").
func (s *FactStore) ExportPackage(analyzer, pkgPath string, f Fact) {
	s.facts[factKey{analyzer, pkgPath, ""}] = f
}

// Import copies the fact stored for obj under analyzer into ptr and
// reports whether one was found. ptr must be a pointer of the same
// concrete type the analyzer exported.
func (s *FactStore) Import(analyzer string, obj types.Object, ptr Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return s.ImportByName(analyzer, obj.Pkg().Path(), ObjectKey(obj), ptr)
}

// ImportByName is Import addressed by (package path, ObjectKey) instead
// of a live types.Object — the form encoder/entry registries use when
// the defining package was summarized from the facts cache and has no
// loaded syntax or type identity in this process.
func (s *FactStore) ImportByName(analyzer, pkgPath, objKey string, ptr Fact) bool {
	f, ok := s.facts[factKey{analyzer, pkgPath, objKey}]
	if !ok {
		return false
	}
	return copyFact(ptr, f)
}

// ImportPackage copies the package-level fact for pkgPath into ptr.
func (s *FactStore) ImportPackage(analyzer, pkgPath string, ptr Fact) bool {
	return s.ImportByName(analyzer, pkgPath, "", ptr)
}

// copyFact assigns src's pointee to dst's pointee when the concrete
// types match.
func copyFact(dst, src Fact) bool {
	dv := reflect.ValueOf(dst)
	sv := reflect.ValueOf(src)
	if dv.Kind() != reflect.Pointer || sv.Kind() != reflect.Pointer || dv.IsNil() || sv.IsNil() {
		return false
	}
	if dv.Type() != sv.Type() {
		return false
	}
	dv.Elem().Set(sv.Elem())
	return true
}

// MarkAnalyzed records that analyzer has produced its facts for pkgPath
// (whether by running or by a facts-cache reload), so the engine never
// summarizes a package twice.
func (s *FactStore) MarkAnalyzed(analyzer, pkgPath string) {
	m, ok := s.analyzed[analyzer]
	if !ok {
		m = make(map[string]bool)
		s.analyzed[analyzer] = m
	}
	m[pkgPath] = true
}

// Analyzed reports whether analyzer's facts for pkgPath are present.
func (s *FactStore) Analyzed(analyzer, pkgPath string) bool {
	return s.analyzed[analyzer][pkgPath]
}

// encodedFact is the serialized form of one fact.
type encodedFact struct {
	Analyzer string          `json:"analyzer"`
	Object   string          `json:"object"` // "" = package fact
	Type     string          `json:"type"`   // concrete Fact type name
	Data     json.RawMessage `json:"data"`
}

// EncodePackage serializes every fact recorded for pkgPath, sorted by
// (analyzer, object) so equal stores produce byte-identical encodings.
func (s *FactStore) EncodePackage(pkgPath string) ([]byte, error) {
	var out []encodedFact
	for k, f := range s.facts {
		if k.pkg != pkgPath {
			continue
		}
		data, err := json.Marshal(f)
		if err != nil {
			return nil, fmt.Errorf("analysis: encoding %s fact for %s.%s: %w", k.analyzer, k.pkg, k.object, err)
		}
		out = append(out, encodedFact{
			Analyzer: k.analyzer,
			Object:   k.object,
			Type:     factTypeName(f),
			Data:     data,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		return out[i].Object < out[j].Object
	})
	return json.Marshal(out)
}

// DecodePackage loads facts for pkgPath from an EncodePackage blob.
// prototypes maps analyzer name to its FactTypes; facts of analyzers
// absent from the map (disabled this run, or renamed since the cache
// was written) are skipped, so a stale cache can never leak facts into
// an analyzer that did not declare them.
func (s *FactStore) DecodePackage(pkgPath string, data []byte, prototypes map[string][]Fact) error {
	var in []encodedFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("analysis: decoding facts for %s: %w", pkgPath, err)
	}
	for _, ef := range in {
		proto := findPrototype(prototypes[ef.Analyzer], ef.Type)
		if proto == nil {
			continue
		}
		v := reflect.New(reflect.TypeOf(proto).Elem())
		if err := json.Unmarshal(ef.Data, v.Interface()); err != nil {
			return fmt.Errorf("analysis: decoding %s fact %s.%s: %w", ef.Analyzer, pkgPath, ef.Object, err)
		}
		s.facts[factKey{ef.Analyzer, pkgPath, ef.Object}] = v.Interface().(Fact)
	}
	return nil
}

// findPrototype selects the registered fact prototype matching a
// serialized type name.
func findPrototype(protos []Fact, typeName string) Fact {
	for _, p := range protos {
		if factTypeName(p) == typeName {
			return p
		}
	}
	return nil
}

func factTypeName(f Fact) string {
	t := reflect.TypeOf(f)
	for t.Kind() == reflect.Pointer {
		t = t.Elem()
	}
	return strings.TrimPrefix(t.String(), "*")
}
