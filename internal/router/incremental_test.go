package router_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/render"
	"cpr/internal/router"
	"cpr/internal/tech"
	"cpr/internal/verify"
)

// clusterPitch spaces pin clusters far enough apart that their influence
// rects (net bbox + the router's maximum search/DRC margin) cannot
// overlap, so Partition yields one region per cluster.
const clusterPitch = 300

// clusteredDesign builds a design whose nets are confined to well
// separated pin clusters, so the router partitions it into `clusters`
// independent regions. Each cluster is dense enough to force
// negotiation within it.
func clusteredDesign(t testing.TB, name string, clusters, netsPerCluster int, seed int64, blockages bool) *design.Design {
	t.Helper()
	const clusterW, height = 48, 20
	width := (clusters-1)*clusterPitch + clusterW
	rng := rand.New(rand.NewSource(seed))
	d := design.New(name, width, height, tech.Default())
	occupied := make(map[[2]int]bool)
	place := func(x0 int) (geom.Rect, bool) {
		for attempt := 0; attempt < 60; attempt++ {
			x, y := x0+rng.Intn(clusterW), rng.Intn(height)
			if y%10 == 9 {
				y--
			}
			if occupied[[2]int{x, y}] {
				continue
			}
			occupied[[2]int{x, y}] = true
			return geom.MakeRect(x, y, x, y), true
		}
		return geom.Rect{}, false
	}
	for c := 0; c < clusters; c++ {
		x0 := c * clusterPitch
		for i := 0; i < netsPerCluster; i++ {
			k := 2 + rng.Intn(2)
			shapes := make([]geom.Rect, 0, k)
			for j := 0; j < k; j++ {
				if sh, ok := place(x0); ok {
					shapes = append(shapes, sh)
				}
			}
			if len(shapes) < 2 {
				continue
			}
			id := d.AddNet(fmt.Sprintf("c%dn%d", c, i))
			for j, sh := range shapes {
				d.AddPin(fmt.Sprintf("c%dn%d_p%d", c, i, j), id, sh)
			}
		}
		if blockages {
			x := x0 + 4 + rng.Intn(clusterW-12)
			y := rng.Intn(height)
			if !occupied[[2]int{x, y}] && !occupied[[2]int{x + 1, y}] && !occupied[[2]int{x + 2, y}] {
				d.Blockages = append(d.Blockages, design.Blockage{
					Layer: tech.M2,
					Shape: geom.MakeRect(x, y, x+2, y),
				})
			}
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// dumpFullRun serializes everything observable about a full core run —
// the design bytes, every route's nodes/edges/virtual cells, the
// metrics, and the rendered SVG — with wall-clock and provenance fields
// excluded. Byte equality of dumps is the strict-mode invariant.
func dumpFullRun(t *testing.T, d *design.Design, res *core.RunResult) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := designio.Write(&b, d); err != nil {
		t.Fatal(err)
	}
	r := res.Router
	fmt.Fprintf(&b, "routed=%d vias=%d wl=%d initcong=%d iters=%d congunrouted=%d drcunrouted=%d\n",
		r.RoutedNets, r.Vias, r.Wirelength, r.InitialCongested,
		r.NegotiationIters, r.CongestionUnrouted, r.DRCUnrouted)
	for netID, nr := range r.Routes {
		if nr == nil {
			continue
		}
		fmt.Fprintf(&b, "net %d routed=%v fail=%q nodes %v edges %v virtual %v\n",
			netID, nr.Routed, nr.FailReason, nr.Nodes, nr.Edges, nr.Virtual)
	}
	m := res.Metrics.ZeroTimes()
	fmt.Fprintf(&b, "metrics %+v\n", m)
	if err := render.SVG(&b, d, grid.New(d), r, nil, render.SVGOptions{}); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// rebuildECO reconstructs a design from an edited pin/blockage list the
// way a fresh ECO netlist would: pin IDs and net IDs renumbered in pin
// order, nets that lost their pins dropped.
func rebuildECO(t *testing.T, d *design.Design, pins []design.Pin, blockages []design.Blockage) *design.Design {
	t.Helper()
	nd := design.New(d.Name, d.Width, d.Height, d.Tech)
	netMap := make(map[int]int)
	for _, p := range pins {
		nid, ok := netMap[p.NetID]
		if !ok {
			nid = nd.AddNet(d.Nets[p.NetID].Name)
			netMap[p.NetID] = nid
		}
		nd.AddPin(p.Name, nid, p.Shape)
	}
	nd.Blockages = append([]design.Blockage(nil), blockages...)
	return nd
}

// ecoEdit applies one random one-pin or one-blockage edit, confined to
// the edited net's own cluster so the other clusters' regions stay
// byte-identical. Retries until the edited design validates.
func ecoEdit(t *testing.T, d *design.Design, rng *rand.Rand) *design.Design {
	t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		pins := append([]design.Pin(nil), d.Pins...)
		blockages := append([]design.Blockage(nil), d.Blockages...)
		switch rng.Intn(3) {
		case 0: // move one pin a few sites within its cluster
			if len(pins) == 0 {
				continue
			}
			p := &pins[rng.Intn(len(pins))]
			dx := 1 + rng.Intn(3)
			if rng.Intn(2) == 0 {
				dx = -dx
			}
			p.Shape = geom.MakeRect(p.Shape.X0+dx, p.Shape.Y0, p.Shape.X1+dx, p.Shape.Y1)
		case 1: // add one pin next to an existing pin of a random net
			if len(pins) == 0 {
				continue
			}
			anchor := pins[rng.Intn(len(pins))]
			x := anchor.Shape.X0 + rng.Intn(11) - 5
			y := rng.Intn(d.Height)
			pins = append(pins, design.Pin{
				Name:  fmt.Sprintf("eco_%d", attempt),
				NetID: anchor.NetID,
				Shape: geom.MakeRect(x, y, x, y),
			})
		default: // toggle one blockage near an existing pin
			if len(blockages) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(blockages))
				blockages = append(blockages[:i], blockages[i+1:]...)
			} else {
				if len(pins) == 0 {
					continue
				}
				anchor := pins[rng.Intn(len(pins))]
				x := anchor.Shape.X0 + rng.Intn(7) - 3
				y := rng.Intn(d.Height)
				blockages = append(blockages, design.Blockage{
					Layer: tech.M2,
					Shape: geom.MakeRect(x, y, x+2, y),
				})
			}
		}
		nd := rebuildECO(t, d, pins, blockages)
		if nd.Validate() == nil {
			return nd
		}
	}
	t.Fatal("could not produce a valid random ECO edit in 200 attempts")
	return nil
}

// TestIncrementalStrictByteIdentical is the strict-mode contract as a
// property test: over random one-pin/one-blockage ECO edits of
// multi-region designs, core.Rerun in strict mode must be byte-identical
// — design bytes, every route, the metrics, and the rendered SVG — to a
// cold run of the edited design, for Workers in {1, 2, 8}, while
// actually splicing routes (a rerun sequence that never splices would
// pass vacuously).
func TestIncrementalStrictByteIdentical(t *testing.T) {
	cases := []struct {
		name      string
		clusters  int
		blockages bool
		seed      int64
	}{
		{"two-cluster", 2, false, 4242},
		{"three-cluster-blk", 3, true, 1717},
	}
	workerCounts := []int{1, 2, 8}
	const edits = 3
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d := clusteredDesign(t, "strict-"+tc.name, tc.clusters, 12, tc.seed, tc.blockages)
			rng := rand.New(rand.NewSource(tc.seed))
			prev, err := core.Run(d, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			splicedTotal := 0
			for step := 0; step < edits; step++ {
				d = ecoEdit(t, d, rng)
				cold, err := core.Run(d, core.Options{})
				if err != nil {
					t.Fatalf("step %d: cold run: %v", step, err)
				}
				coldDump := dumpFullRun(t, d, cold)
				for _, workers := range workerCounts {
					inc, err := core.Rerun(prev, d, core.Options{Workers: workers})
					if err != nil {
						t.Fatalf("step %d workers=%d: rerun: %v", step, workers, err)
					}
					if inc.Incremental == nil {
						t.Fatalf("step %d workers=%d: no incremental stats", step, workers)
					}
					if got := dumpFullRun(t, d, inc); !bytes.Equal(got, coldDump) {
						t.Fatalf("step %d workers=%d: strict rerun differs from cold run: %s",
							step, workers, firstDiff(coldDump, got))
					}
					if inc.Incremental.NetsWarm != 0 {
						t.Fatalf("step %d workers=%d: strict rerun warm-started %d nets",
							step, workers, inc.Incremental.NetsWarm)
					}
					splicedTotal += inc.Incremental.NetsSpliced
				}
				prev = cold
			}
			if splicedTotal == 0 {
				t.Error("no net was ever spliced across the edit sequence; incremental routing is inert")
			}
		})
	}
}

// TestIncrementalEcoFastVerifiedEquivalent is the eco-fast contract:
// over the same kind of random ECO edits, an eco-fast rerun must verify
// DRC-clean against the independent oracle and achieve an objective
// equal to the cold run's, while actually warm-starting nets.
func TestIncrementalEcoFastVerifiedEquivalent(t *testing.T) {
	d := clusteredDesign(t, "ecofast", 2, 12, 9090, true)
	rng := rand.New(rand.NewSource(9090))
	prev, err := core.Run(d, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	warmTotal, splicedTotal := 0, 0
	for step := 0; step < 4; step++ {
		d = ecoEdit(t, d, rng)
		cold, err := core.Run(d, core.Options{})
		if err != nil {
			t.Fatalf("step %d: cold run: %v", step, err)
		}
		for _, workers := range []int{1, 8} {
			inc, err := core.Rerun(prev, d, core.Options{Workers: workers, RerunMode: core.RerunEcoFast})
			if err != nil {
				t.Fatalf("step %d workers=%d: eco-fast rerun: %v", step, workers, err)
			}
			if rep := verify.Check(d, grid.New(d), inc.Router); !rep.Ok() {
				t.Fatalf("step %d workers=%d: eco-fast result fails verification: %v",
					step, workers, rep.Errors)
			}
			if err := verify.ObjectiveEqual(d, cold.Router, inc.Router); err != nil {
				t.Fatalf("step %d workers=%d: eco-fast objective differs from cold: %v",
					step, workers, err)
			}
			if inc.Incremental == nil {
				t.Fatalf("step %d workers=%d: no incremental stats", step, workers)
			}
			warmTotal += inc.Incremental.NetsWarm
			splicedTotal += inc.Incremental.NetsSpliced
		}
		prev = cold
	}
	if warmTotal == 0 {
		t.Error("no net was ever warm-started across the edit sequence; eco-fast path is inert")
	}
	if splicedTotal == 0 {
		t.Error("no net was ever spliced across the edit sequence; eco-fast splicing is inert")
	}
}

// TestEcoFastFailsWithoutSpliceSeeding is the required negative control
// for the eco-fast safety argument: warm-starting nets WITHOUT replaying
// their occupancy and congestion history onto the grid
// (RunOpts.SkipSpliceSeeding) must produce a result the eco-fast
// equivalence check rejects.
//
// The failure is an objective loss, not a DRC violation: the router's
// final DRC stage detects overlaps from the route tables themselves (not
// grid occupancy), so a fresh net routed straight through invisible warm
// metal is always caught and repaired there — verify.Check stays clean
// even unseeded. But that repair is a single-net greedy fix with none of
// negotiation's congestion history, so under contention it strands nets
// the seeded run routes. On this pinned congested instance the seeded
// run routes strictly more nets than the unseeded one, which is exactly
// the divergence verify.ObjectiveEqual (the eco-fast runtime gate) is
// there to catch: if this test ever passes with seeding skipped, the
// equivalence oracle has lost the power to detect a seeding regression.
func TestEcoFastFailsWithoutSpliceSeeding(t *testing.T) {
	// One dense cluster, seed pinned to a congested instance where the
	// seeded and unseeded outcomes provably diverge.
	d := clusteredDesign(t, "noseed", 1, 20, 1, false)
	cold := router.New(d, grid.New(d), router.Config{}).Run()
	warm := make(map[int]*router.NetRoute)
	i := 0
	for netID, nr := range cold.Routes {
		if nr != nil && nr.Routed {
			if i%2 == 0 {
				warm[netID] = nr
			}
			i++
		}
	}
	if len(warm) < 4 {
		t.Fatalf("only %d warm candidates; the control exercises nothing", len(warm))
	}

	run := func(skip bool) *router.Result {
		g := grid.New(d)
		r := router.New(d, g, router.Config{})
		res := r.RunPlan(context.Background(), r.Partition(),
			router.RunOpts{Warm: warm, SkipSpliceSeeding: skip})
		if res.WarmNets != len(warm) {
			t.Fatalf("warm nets = %d, want %d", res.WarmNets, len(warm))
		}
		if rep := verify.Check(d, g, res); !rep.Ok() {
			t.Fatalf("skip=%v fails verification: %v (DRC repair should keep both runs clean)",
				skip, rep.Errors)
		}
		return res
	}

	seeded, unseeded := run(false), run(true)
	if unseeded.RoutedNets >= seeded.RoutedNets {
		t.Fatalf("unseeded warm-start routed %d nets vs %d seeded; the negative control is inert",
			unseeded.RoutedNets, seeded.RoutedNets)
	}
	if err := verify.ObjectiveEqual(d, seeded, unseeded); err == nil {
		t.Fatal("ObjectiveEqual accepted the unseeded result; a seeding regression would go undetected")
	}
}

// splicedRegionsFrom bundles a cold result's routes per region, the way
// pipeline route artifacts do.
func splicedRegionsFrom(plan *router.Plan, cold *router.Result, keep func(id int) bool) map[int]*router.SplicedRegion {
	spliced := make(map[int]*router.SplicedRegion)
	for _, rg := range plan.Regions {
		if !keep(rg.ID) {
			continue
		}
		routes := make([]*router.NetRoute, len(rg.Nets))
		for i, netID := range rg.Nets {
			routes[i] = cold.Routes[netID]
		}
		spliced[rg.ID] = &router.SplicedRegion{Routes: routes, Summary: cold.RegionSummaries[rg.ID]}
	}
	return spliced
}

// TestSplicedRunContributesNoPriorTime is the Elapsed double-counting
// regression test: a run that splices every region computes nothing, so
// its StageElapsed must be all-zero (the spliced regions' prior-run time
// must not reappear), while its counter summaries match the cold run's.
// ZeroTimes must clear every wall-clock field.
func TestSplicedRunContributesNoPriorTime(t *testing.T) {
	d := clusteredDesign(t, "times", 2, 12, 321, false)
	g1 := grid.New(d)
	r1 := router.New(d, g1, router.Config{})
	cold := r1.Run()
	if cold.Regions < 2 {
		t.Fatalf("expected >= 2 regions, got %d", cold.Regions)
	}
	var coldStage int64
	for _, s := range cold.StageElapsed {
		coldStage += int64(s)
	}
	if coldStage == 0 {
		t.Fatal("cold run recorded no stage time; the regression assertion below would be vacuous")
	}

	g2 := grid.New(d)
	r2 := router.New(d, g2, router.Config{})
	plan := r2.Partition()
	res := r2.RunPlan(context.Background(), plan,
		router.RunOpts{Spliced: splicedRegionsFrom(plan, cold, func(int) bool { return true })})

	if res.SplicedNets != len(d.Nets) {
		t.Fatalf("spliced %d nets, want all %d", res.SplicedNets, len(d.Nets))
	}
	for i, s := range res.StageElapsed {
		if s != 0 {
			t.Errorf("StageElapsed[%d] = %v on an all-spliced run, want 0 (prior-run time re-counted)", i, s)
		}
	}
	if res.NegotiationIters != cold.NegotiationIters {
		t.Errorf("spliced NegotiationIters = %d, want cold's %d", res.NegotiationIters, cold.NegotiationIters)
	}
	if len(res.RegionSummaries) != len(cold.RegionSummaries) {
		t.Fatalf("region summaries: %d vs cold %d", len(res.RegionSummaries), len(cold.RegionSummaries))
	}
	for i := range res.RegionSummaries {
		if res.RegionSummaries[i] != cold.RegionSummaries[i] {
			t.Errorf("region %d summary %+v differs from cold %+v", i, res.RegionSummaries[i], cold.RegionSummaries[i])
		}
	}

	res.ZeroTimes()
	if res.Elapsed != 0 {
		t.Errorf("ZeroTimes left Elapsed = %v", res.Elapsed)
	}
	for i, s := range res.StageElapsed {
		if s != 0 {
			t.Errorf("ZeroTimes left StageElapsed[%d] = %v", i, s)
		}
	}
}
