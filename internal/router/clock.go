package router

import "time"

// now and since are the router's only wall-clock reads. Everything they
// feed — Result.Elapsed, Result.StageElapsed — is observational timing
// that never reaches routing decisions, route bytes, or artifacts
// (RegionSummary deliberately carries no duration fields, and
// Result.ZeroTimes strips these before byte comparisons). Funneling every
// clock read through these two suppressed sites keeps the rest of the
// package clean under the cprlint nondeterm analyzer.

func now() time.Time { return time.Now() } //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result

func since(t time.Time) time.Duration { return time.Since(t) } //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
