// Package errdrop flags discarded errors from the repo's persistence
// and job-control APIs (internal/designio, internal/cache,
// internal/jobs). A swallowed designio.Write error means a silently
// truncated design file; a dropped jobs.Submit or Drain error means
// lost work the daemon believes it accepted. Errors from these packages
// must be checked or explicitly justified.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"cpr/internal/analysis"
)

// Analyzer is the errdrop pass.
var Analyzer = &analysis.Analyzer{
	Name: "errdrop",
	Doc:  "flags discarded errors from internal/designio, internal/cache, and internal/jobs APIs (statement calls, _ assignments, go/defer)",
	Run:  run,
}

// guarded are the packages whose errors must not be dropped.
var guarded = []string{"/internal/designio", "/internal/cache", "/internal/jobs"}

func run(pass *analysis.Pass) error {
	if isGuarded(pass.Pkg.Path()) {
		// The packages themselves manage their own errors.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok {
					report(pass, call, "result discarded")
				}
			case *ast.DeferStmt:
				report(pass, s.Call, "error lost in defer; wrap in a closure that checks it")
			case *ast.GoStmt:
				report(pass, s.Call, "error lost in go statement; check it inside the goroutine")
			case *ast.AssignStmt:
				checkBlank(pass, s)
			}
			return true
		})
	}
	return nil
}

// report flags call if it is a guarded-API call returning an error.
func report(pass *analysis.Pass, call *ast.CallExpr, how string) {
	fn := guardedErrFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	pass.Reportf(call.Pos(), "error from %s.%s dropped (%s); designio/cache/jobs errors must be handled (annotate //cprlint:errdrop <reason> if provably impossible)",
		fn.Pkg().Name(), fn.Name(), how)
}

// checkBlank flags x, _ := pkg.F() where the blank slot is the error.
func checkBlank(pass *analysis.Pass, s *ast.AssignStmt) {
	// Multi-value call: one RHS, several LHS.
	if len(s.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := guardedErrFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != len(s.Lhs) {
		// Single-value context or mismatch; the ExprStmt path covers
		// full discards.
		if len(s.Lhs) == 1 && isBlank(s.Lhs[0]) {
			report(pass, call, "assigned to _")
		}
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) && isBlank(s.Lhs[i]) {
			report(pass, call, "error assigned to _")
		}
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "_"
}

// guardedErrFunc resolves call to a guarded-package function whose
// results include an error; nil otherwise.
func guardedErrFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := analysis.FuncOf(info, call)
	if fn == nil || fn.Pkg() == nil || !isGuarded(fn.Pkg().Path()) {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			return fn
		}
	}
	return nil
}

func isGuarded(path string) bool {
	p := "/" + path
	for _, g := range guarded {
		if strings.Contains(p, g) {
			return true
		}
	}
	return false
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return types.Identical(t, errorType)
}
