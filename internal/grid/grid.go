// Package grid models the 3-D unidirectional routing grid used by the
// negotiation-congestion router: M1 (pin landing layer, no wires), M2
// (horizontal wires), M3 (vertical wires), with V1/V2 vias between
// adjacent layers.
//
// The grid tracks three per-node quantities used by PathFinder-style
// negotiation: hard blockage (design obstructions), net ownership (pins
// and seeded pin access intervals, hard for every other net), and soft
// congestion state (occupancy count plus accumulated history cost).
package grid

import (
	"fmt"

	"cpr/internal/design"
	"cpr/internal/tech"
)

// NodeID identifies a grid node; layer-major, then row-major.
type NodeID int

// Graph is the routing grid. Build one per design with New.
type Graph struct {
	W, H int
	Tech *tech.Technology

	// rules is the technology's rule engine, resolved once at New so
	// per-edge cost lookups never re-dispatch on the engine name.
	rules tech.RuleEngine

	planeSize int

	// blocked marks nodes covered by design blockages.
	blocked []bool
	// owner is -1 for free nodes, otherwise the net that owns the node
	// (pin cells on M1, seeded interval cells on M2). Owned nodes are
	// hard blockages for every other net.
	owner []int32
	// occ counts distinct nets currently using the node, including
	// line-end clearance (virtual) usage.
	occ []int16
	// occMetal counts distinct nets with actual metal on the node.
	occMetal []int16
	// hist is the accumulated PathFinder history cost.
	hist []float32
	// forbiddenVia marks via positions carrying the forbidden grid cost
	// (design-rule-risky via landings); [0] is V1 (M1-M2), [1] is V2
	// (M2-M3), both indexed by y*W+x.
	forbiddenVia [2][]bool
}

// New builds the grid for a validated design: blockages are rasterized,
// every pin's M1 cells are owned by its net, and via positions adjacent to
// blockages (where a via landing pad plus line-end extension would violate
// cut mask rules) are marked with the forbidden cost.
func New(d *design.Design) *Graph {
	g := &Graph{
		W:         d.Width,
		H:         d.Height,
		Tech:      d.Tech,
		rules:     tech.RulesFor(d.Tech),
		planeSize: d.Width * d.Height,
	}
	n := g.planeSize * tech.NumLayers
	g.blocked = make([]bool, n)
	g.owner = make([]int32, n)
	for i := range g.owner {
		g.owner[i] = -1
	}
	g.occ = make([]int16, n)
	g.occMetal = make([]int16, n)
	g.hist = make([]float32, n)
	g.forbiddenVia[0] = make([]bool, g.planeSize)
	g.forbiddenVia[1] = make([]bool, g.planeSize)

	for _, b := range d.Blockages {
		for y := b.Shape.Y0; y <= b.Shape.Y1; y++ {
			for x := b.Shape.X0; x <= b.Shape.X1; x++ {
				g.blocked[g.ID(x, y, b.Layer)] = true
			}
		}
	}
	for i := range d.Pins {
		p := &d.Pins[i]
		for y := p.Shape.Y0; y <= p.Shape.Y1; y++ {
			for x := p.Shape.X0; x <= p.Shape.X1; x++ {
				g.owner[g.ID(x, y, tech.M1)] = int32(p.NetID)
			}
		}
	}
	g.markForbiddenVias()
	return g
}

// markForbiddenVias flags via positions whose landing pad would sit next
// to a blocked cell on the upper via layer (M2 for V1, M3 for V2), in the
// layer's routing direction — the situation where the mandatory line-end
// extension cannot be printed.
func (g *Graph) markForbiddenVias() {
	for y := 0; y < g.H; y++ {
		for x := 0; x < g.W; x++ {
			// V1 lands on M2 (horizontal): check x neighbours.
			if g.isBlockedAt(x-1, y, tech.M2) || g.isBlockedAt(x+1, y, tech.M2) {
				g.forbiddenVia[0][y*g.W+x] = true
			}
			// V2 lands on M3 (vertical): check y neighbours.
			if g.isBlockedAt(x, y-1, tech.M3) || g.isBlockedAt(x, y+1, tech.M3) {
				g.forbiddenVia[1][y*g.W+x] = true
			}
		}
	}
}

func (g *Graph) isBlockedAt(x, y, z int) bool {
	if x < 0 || x >= g.W || y < 0 || y >= g.H {
		return false
	}
	return g.blocked[g.ID(x, y, z)]
}

// ID returns the node ID for grid coordinates. Coordinates must be in
// range.
func (g *Graph) ID(x, y, z int) NodeID {
	return NodeID(z*g.planeSize + y*g.W + x)
}

// Coords returns the grid coordinates of a node ID.
func (g *Graph) Coords(id NodeID) (x, y, z int) {
	z = int(id) / g.planeSize
	rem := int(id) % g.planeSize
	return rem % g.W, rem / g.W, z
}

// InBounds reports whether (x, y) lies on the grid.
func (g *Graph) InBounds(x, y int) bool {
	return x >= 0 && x < g.W && y >= 0 && y < g.H
}

// NumNodes returns the total node count.
func (g *Graph) NumNodes() int { return len(g.blocked) }

// Blocked reports whether a node is covered by a design blockage.
func (g *Graph) Blocked(id NodeID) bool { return g.blocked[id] }

// Owner returns the owning net of a node, or -1.
func (g *Graph) Owner(id NodeID) int { return int(g.owner[id]) }

// SetOwner assigns node ownership (used to seed pin access intervals).
// Setting an owner on a node owned by a different net is a programming
// error and panics: assignment results are conflict-free by construction.
func (g *Graph) SetOwner(id NodeID, netID int) {
	if cur := g.owner[id]; cur >= 0 && cur != int32(netID) {
		x, y, z := g.Coords(id)
		panic(fmt.Sprintf("grid: node (%d,%d,L%d) already owned by net %d, cannot give to %d",
			x, y, z, cur, netID))
	}
	g.owner[id] = int32(netID)
}

// ClearOwner removes ownership from a node.
func (g *Graph) ClearOwner(id NodeID) { g.owner[id] = -1 }

// Enterable reports whether net netID may route through the node:
// not design-blocked, not owned by another net, and — on M1 — owned by
// the net itself (M1 carries no wires, it is only entered to land on own
// pins).
func (g *Graph) Enterable(id NodeID, netID int) bool {
	if g.blocked[id] {
		return false
	}
	own := g.owner[id]
	if int(id) < g.planeSize { // M1
		return own == int32(netID)
	}
	return own < 0 || own == int32(netID)
}

// Occupy adds one net's metal usage of the node.
func (g *Graph) Occupy(id NodeID) {
	g.occ[id]++
	g.occMetal[id]++
}

// Release removes one net's metal usage of the node.
func (g *Graph) Release(id NodeID) {
	if g.occ[id] > 0 {
		g.occ[id]--
	}
	if g.occMetal[id] > 0 {
		g.occMetal[id]--
	}
}

// OccupyVirtual adds one net's line-end clearance usage of the node: it
// contributes to congestion negotiation but not to the metal-overlap
// congested grid count.
func (g *Graph) OccupyVirtual(id NodeID) { g.occ[id]++ }

// ReleaseVirtual removes one net's clearance usage of the node.
func (g *Graph) ReleaseVirtual(id NodeID) {
	if g.occ[id] > 0 {
		g.occ[id]--
	}
}

// Occupancy returns the number of nets using the node.
func (g *Graph) Occupancy(id NodeID) int { return int(g.occ[id]) }

// Overused reports whether more than one net uses the node.
func (g *Graph) Overused(id NodeID) bool { return g.occ[id] > 1 }

// MetalCongested reports whether the node's metal is claimed by more than
// one net (the per-node form of CongestedCount, for region-local scans).
func (g *Graph) MetalCongested(id NodeID) bool { return g.occMetal[id] > 1 }

// CongestedCount returns the number of nodes whose metal is claimed by
// more than one net (the paper's "congested routing grids", Figure 7(b)).
func (g *Graph) CongestedCount() int {
	n := 0
	for _, c := range g.occMetal {
		if c > 1 {
			n++
		}
	}
	return n
}

// OverusedCount returns the number of nodes overused by any usage,
// including line-end clearance overlap (what negotiation must resolve).
func (g *Graph) OverusedCount() int {
	n := 0
	for _, c := range g.occ {
		if c > 1 {
			n++
		}
	}
	return n
}

// AddHistory increases the history cost of a node.
func (g *Graph) AddHistory(id NodeID, inc float64) { g.hist[id] += float32(inc) }

// History returns the accumulated history cost of a node.
func (g *Graph) History(id NodeID) float64 { return float64(g.hist[id]) }

// ResetCongestion clears occupancy and history (not ownership/blockage).
func (g *Graph) ResetCongestion() {
	for i := range g.occ {
		g.occ[i] = 0
		g.occMetal[i] = 0
	}
	for i := range g.hist {
		g.hist[i] = 0
	}
}

// ViaCost returns the rule engine's cost of the via edge between layers
// z and z+1 at (x, y), applying the forbidden grid cost where flagged.
func (g *Graph) ViaCost(x, y, zLow int) int {
	return g.rules.ViaCost(g.forbiddenVia[zLow][y*g.W+x])
}

// Rules returns the technology rule engine the grid was built with.
func (g *Graph) Rules() tech.RuleEngine { return g.rules }

// ForbiddenVia reports whether the via at (x, y) between zLow and zLow+1
// carries the forbidden cost.
func (g *Graph) ForbiddenVia(x, y, zLow int) bool {
	return g.forbiddenVia[zLow][y*g.W+x]
}

// Edge is one grid edge of a routed net: either a wire step on M2/M3 or a
// via between adjacent layers. From < To always holds (edges are
// undirected; the canonical form keeps the smaller node first).
type Edge struct {
	From, To NodeID
}

// MakeEdge returns the canonical (ordered) edge between two nodes.
func MakeEdge(a, b NodeID) Edge {
	if a > b {
		a, b = b, a
	}
	return Edge{From: a, To: b}
}

// IsVia reports whether the edge crosses layers.
func (g *Graph) IsVia(e Edge) bool {
	_, _, z1 := g.Coords(e.From)
	_, _, z2 := g.Coords(e.To)
	return z1 != z2
}

// CongestedByLayer returns the metal-congested node count per layer
// (diagnostic for congestion analyses).
func (g *Graph) CongestedByLayer() [tech.NumLayers]int {
	var out [tech.NumLayers]int
	for i, c := range g.occMetal {
		if c > 1 {
			out[i/g.planeSize]++
		}
	}
	return out
}
