package blockstore

import (
	"container/list"
	"sync"
)

// Mem is a bounded in-memory block store: the default for single-node
// daemons (fast, vanishes with the process) and the canonical test
// double for the disk store. When MaxBytes is set, storing a block past
// the bound collects least-recently-used unpinned blocks until the
// store fits again — the same GC policy as Disk.
type Mem struct {
	mu       sync.Mutex
	maxBytes int64
	blocks   map[string]*list.Element
	order    *list.List // front = most recently used
	bytes    int64
	pins     pinSet

	hits, misses, puts, evictions int64
}

type memEntry struct {
	key  string
	data []byte
}

// NewMem creates an in-memory store. maxBytes <= 0 means unbounded.
func NewMem(maxBytes int64) *Mem {
	return &Mem{
		maxBytes: maxBytes,
		blocks:   make(map[string]*list.Element),
		order:    list.New(),
		pins:     make(pinSet),
	}
}

// Put stores a copy of data under key.
func (m *Mem) Put(key string, data []byte) error {
	if err := checkKey(key); err != nil {
		return err
	}
	cp := append([]byte(nil), data...)
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.blocks[key]; ok {
		e := el.Value.(*memEntry)
		m.bytes += int64(len(cp)) - int64(len(e.data))
		e.data = cp
		m.order.MoveToFront(el)
	} else {
		m.blocks[key] = m.order.PushFront(&memEntry{key: key, data: cp})
		m.bytes += int64(len(cp))
	}
	m.puts++
	m.gcLocked()
	return nil
}

// Get returns the block under key, or ErrNotFound. The returned slice
// is shared with the store; callers must not modify it.
func (m *Mem) Get(key string) ([]byte, error) {
	if err := checkKey(key); err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.blocks[key]
	if !ok {
		m.misses++
		return nil, ErrNotFound
	}
	m.hits++
	m.order.MoveToFront(el)
	return el.Value.(*memEntry).data, nil
}

// Has reports presence without touching counters or recency.
func (m *Mem) Has(key string) (bool, error) {
	if err := checkKey(key); err != nil {
		return false, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.blocks[key]
	return ok, nil
}

// Delete removes the block under key.
func (m *Mem) Delete(key string) error {
	if err := checkKey(key); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.blocks[key]; ok {
		m.removeLocked(el)
	}
	return nil
}

// Pin marks key uncollectable until a matching Unpin.
func (m *Mem) Pin(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pins.pin(key)
}

// Unpin releases one pin reference.
func (m *Mem) Unpin(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pins.unpin(key)
}

// Stats snapshots the counters.
func (m *Mem) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Blocks:    len(m.blocks),
		Bytes:     m.bytes,
		Hits:      m.hits,
		Misses:    m.misses,
		Puts:      m.puts,
		Evictions: m.evictions,
		Pinned:    len(m.pins),
	}
}

// gcLocked collects least-recently-used unpinned blocks until the store
// fits MaxBytes. Pinned blocks are skipped; if only pinned blocks
// remain the store is allowed to overshoot (correctness beats the
// bound). Callers hold m.mu.
func (m *Mem) gcLocked() {
	if m.maxBytes <= 0 {
		return
	}
	for el := m.order.Back(); el != nil && m.bytes > m.maxBytes; {
		prev := el.Prev()
		if !m.pins.pinned(el.Value.(*memEntry).key) {
			m.removeLocked(el)
			m.evictions++
		}
		el = prev
	}
}

// removeLocked unlinks one entry; callers hold m.mu.
func (m *Mem) removeLocked(el *list.Element) {
	e := el.Value.(*memEntry)
	m.order.Remove(el)
	delete(m.blocks, e.key)
	m.bytes -= int64(len(e.data))
}
