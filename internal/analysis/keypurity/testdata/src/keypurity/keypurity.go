// Package keypurity exercises the fingerprint-completeness and purity
// checks: an encoder that misses a field some entry reads is flagged at
// the encoder, an entry depending on process state is flagged at the
// entry, and exempted fields stay silent.
package keypurity

import (
	"strconv"
	"time"

	"keypurityopts"
)

// Fingerprint encodes the stage cache key. It covers Width but not
// Iters, which SolveLower (a package below) reads — the coverage gap is
// reported here, at the function that must change.
//
//keypurity:encoder stage
func Fingerprint(o *keypurityopts.Options) string { // want `fingerprint encoder Fingerprint \(scope "stage"\) does not cover keypurityopts\.Options\.Iters, which keypurityopts\.SolveLower reads \(keypurityopts\.Options\.Iters\); fingerprint the field or mark it //keypurity:exempt`
	return strconv.Itoa(o.Width)
}

// SolveUpper is cached under the stage fingerprint: Width is covered,
// Workers is exempt, but the wall-clock read breaks purity.
//
//keypurity:entry stage
func SolveUpper(o *keypurityopts.Options) int { // want `cache entry SolveUpper reads the wall clock: time\.Now; cached results must be a pure function of the fingerprinted inputs`
	_ = time.Now()
	return o.Width + o.Workers
}
