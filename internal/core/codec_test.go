package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"cpr/internal/pipeline"
	"cpr/internal/synth"
)

// TestResultCodecRoundtrip encodes the result of a real run and checks
// the decode is exact (Router aside) and the encoding deterministic.
func TestResultCodecRoundtrip(t *testing.T) {
	d := mustGenerate(t, synth.Spec{Name: "codec", Nets: 80, Width: 120, Height: 50, Seed: 71})
	res, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Artifacts == nil {
		t.Fatal("run retained no artifacts; codec test needs a cacheable run")
	}

	data, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := EncodeResult(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("result encoding is not deterministic")
	}

	got, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Router != nil {
		t.Fatal("decoded result carries router state")
	}
	if got.Mode != res.Mode {
		t.Fatalf("Mode = %v, want %v", got.Mode, res.Mode)
	}
	if !reflect.DeepEqual(got.Metrics, res.Metrics) {
		t.Fatalf("Metrics mismatch:\ngot  %+v\nwant %+v", got.Metrics, res.Metrics)
	}
	if !reflect.DeepEqual(got.PinOpt, res.PinOpt) {
		t.Fatal("PinOpt mismatch after roundtrip")
	}
	if !reflect.DeepEqual(got.Incremental, res.Incremental) {
		t.Fatal("Incremental mismatch after roundtrip")
	}
	if !reflect.DeepEqual(got.Artifacts, res.Artifacts) {
		t.Fatal("Artifacts mismatch after roundtrip")
	}

	// Re-encoding the decoded result reproduces the block byte-for-byte:
	// any node can re-serve a block it pulled from a peer.
	data3, err := EncodeResult(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data3) {
		t.Fatal("re-encoding a decoded result changed the block bytes")
	}
}

// TestDecodedResultSplicesByteIdentical is the cluster-correctness
// anchor: a Rerun from a decoded baseline (as pulled from a peer) must
// be byte-identical to a Rerun from the original in-process baseline.
func TestDecodedResultSplicesByteIdentical(t *testing.T) {
	spec := synth.Spec{Name: "codec-eco", Nets: 100, Width: 140, Height: 60, Seed: 72}
	d := mustGenerate(t, spec)
	prev, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeResult(prev)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeResult(data)
	if err != nil {
		t.Fatal(err)
	}

	// One random validity-preserving edit, so part of the design stays
	// splice-clean.
	edited := editDesign(t, mustGenerate(t, spec), rand.New(rand.NewSource(5)))

	fromOrig, err := Rerun(prev, edited, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fromDecoded, err := Rerun(decoded, edited, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dumpRunResult(t, edited, fromOrig), dumpRunResult(t, edited, fromDecoded)) {
		t.Fatal("rerun from a decoded baseline differs from rerun from the original")
	}
	if fromDecoded.Incremental == nil || fromDecoded.Incremental.Reused == 0 {
		t.Fatal("decoded baseline spliced nothing; codec dropped reuse capability")
	}

	// Per-panel and per-route artifact blocks from the same run must also
	// roundtrip exactly: they are what the panel/route cache levels serve.
	for _, pa := range prev.Artifacts.Panels {
		if pa.Key == "" {
			continue
		}
		blk, err := pipeline.MarshalPanelArtifact(pa)
		if err != nil {
			t.Fatal(err)
		}
		back, err := pipeline.UnmarshalPanelArtifact(blk)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, pa) {
			t.Fatalf("panel %d artifact roundtrip mismatch", pa.Panel)
		}
	}
	for _, ra := range prev.Artifacts.Routes {
		if ra.Key == "" {
			continue
		}
		blk, err := pipeline.MarshalRouteArtifact(ra)
		if err != nil {
			t.Fatal(err)
		}
		back, err := pipeline.UnmarshalRouteArtifact(blk)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(back, ra) {
			t.Fatalf("region %d artifact roundtrip mismatch", ra.Region)
		}
	}
}
