package exchange

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"cpr/internal/blockstore"
	"cpr/internal/telemetry"
)

// Default tuning for the HTTP fetcher. Fetches sit on the job hot path
// only when the local store is cold, and the fallback (recompute) is
// always available, so the budget per peer is small.
const (
	DefaultPeerTimeout = 2 * time.Second
	defaultBackoffBase = 500 * time.Millisecond
	defaultBackoffMax  = 30 * time.Second
)

// HTTPOptions tunes NewHTTPFetcher.
type HTTPOptions struct {
	// Timeout bounds each single-peer request (default DefaultPeerTimeout).
	Timeout time.Duration
	// BackoffBase is the penalty after a peer's first transport failure;
	// it doubles per consecutive failure up to BackoffMax. A clean
	// response (200 or 404) resets the penalty.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
	// Registry, when set, records per-peer fetch latency
	// (cpr_peer_fetch_seconds{peer}) and transport errors
	// (cpr_peer_errors_total{peer}).
	Registry *telemetry.Registry
}

// peerState tracks one peer's health for backoff and observability.
type peerState struct {
	base     string // normalized base URL, no trailing slash
	failures int
	until    time.Time // in backoff until this instant
	fetches  int64     // total attempts against this peer
	errors   int64     // transport-level failures
	lastErr  string

	hist   *telemetry.Histogram // per-peer latency, nil without a registry
	errCtr *telemetry.Counter   // per-peer transport errors
}

// PeerHealth is one peer's observable state, surfaced in /v1/stats.
type PeerHealth struct {
	Peer                string `json:"peer"`
	Fetches             int64  `json:"fetches"`
	Errors              int64  `json:"errors"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	InBackoff           bool   `json:"in_backoff"`
	LastError           string `json:"last_error,omitempty"`
}

// HTTPFetcher resolves blocks from a static list of peer daemons over
// cprd's GET /v1/blocks/{key} endpoint. Peers are tried in order; a
// peer that fails at the transport level (refused, timeout, 5xx) is
// skipped for an exponentially growing window so one dead peer cannot
// slow every cold lookup.
//
// Each attempt opens a "peer_fetch" span under the caller's current
// span and sends the span's propagation context in the TraceHeader; a
// successful response's SpanHeader is adopted as a remote child span,
// stitching the serving node's work into the requester's trace
// (DESIGN.md §4j).
type HTTPFetcher struct {
	client  *http.Client
	timeout time.Duration
	base    time.Duration
	max     time.Duration
	now     func() time.Time // injectable for tests

	mu    sync.Mutex
	peers []*peerState
}

// NewHTTPFetcher builds a fetcher over peer base URLs (for example
// "http://nodeA:8080"). Empty strings are dropped; a scheme-less peer
// gets "http://".
func NewHTTPFetcher(peers []string, opts HTTPOptions) *HTTPFetcher {
	f := &HTTPFetcher{
		client:  opts.Client,
		timeout: opts.Timeout,
		base:    opts.BackoffBase,
		max:     opts.BackoffMax,
		now:     time.Now,
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.timeout <= 0 {
		f.timeout = DefaultPeerTimeout
	}
	if f.base <= 0 {
		f.base = defaultBackoffBase
	}
	if f.max <= 0 {
		f.max = defaultBackoffMax
	}
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		base := strings.TrimRight(p, "/")
		f.peers = append(f.peers, &peerState{
			base: base,
			hist: opts.Registry.Histogram("cpr_peer_fetch_seconds",
				"Block fetch latency per peer.", telemetry.DefSecondsBuckets,
				telemetry.L("peer", base)),
			errCtr: opts.Registry.Counter("cpr_peer_errors_total",
				"Transport-level block fetch failures per peer.",
				telemetry.L("peer", base)),
		})
	}
	return f
}

// Peers returns the configured peer base URLs.
func (f *HTTPFetcher) Peers() []string {
	out := make([]string, len(f.peers))
	for i, p := range f.peers {
		out[i] = p.base
	}
	return out
}

// Health snapshots every peer's fetch/error counters and backoff state.
func (f *HTTPFetcher) Health() []PeerHealth {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]PeerHealth, 0, len(f.peers))
	now := f.now()
	for _, p := range f.peers {
		out = append(out, PeerHealth{
			Peer:                p.base,
			Fetches:             p.fetches,
			Errors:              p.errors,
			ConsecutiveFailures: p.failures,
			InBackoff:           p.failures > 0 && now.Before(p.until),
			LastError:           p.lastErr,
		})
	}
	return out
}

// Fetch tries each healthy peer in order and returns the first block
// found. Every peer answering 404 (or being skipped/unreachable) is a
// clean miss: ErrNotFound.
func (f *HTTPFetcher) Fetch(ctx context.Context, key string) ([]byte, error) {
	if !blockstore.ValidKey(key) {
		return nil, fmt.Errorf("exchange: malformed key %q", key)
	}
	for _, p := range f.peers {
		if f.inBackoff(p) {
			continue
		}
		data, err := f.fetchOne(ctx, p, key)
		switch {
		case err == nil:
			f.markOK(p)
			return data, nil
		case err == blockstore.ErrNotFound:
			f.markOK(p) // the peer is healthy, it just lacks the block
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			f.markFailed(p, err)
		}
	}
	return nil, ErrNotFound
}

// fetchOne performs one GET against one peer with the per-peer timeout,
// recording latency, opening a traced span, and propagating/adopting
// trace context headers.
func (f *HTTPFetcher) fetchOne(ctx context.Context, p *peerState, key string) ([]byte, error) {
	_, sp := telemetry.StartSpan(ctx, "peer_fetch")
	sp.SetAttr("peer", p.base)
	sp.SetAttr("key", key)
	defer sp.End()

	f.mu.Lock()
	p.fetches++
	f.mu.Unlock()

	t0 := time.Now()
	data, err := f.doFetch(ctx, p.base, key, sp)
	p.hist.Observe(time.Since(t0).Seconds())
	switch {
	case err == nil:
		sp.SetAttr("outcome", "hit")
	case err == blockstore.ErrNotFound:
		sp.SetAttr("outcome", "not_found")
	default:
		sp.SetAttr("outcome", "error")
		sp.SetAttr("error", err.Error())
	}
	return data, err
}

// doFetch is the raw single-peer HTTP exchange.
func (f *HTTPFetcher) doFetch(ctx context.Context, base, key string, sp *telemetry.Span) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+BlockPath+key, nil)
	if err != nil {
		return nil, err
	}
	if sc := sp.SpanContext(); sc.Valid() {
		req.Header.Set(telemetry.TraceHeader, sc.String())
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		if rs, ok := telemetry.DecodeRemoteSpan(resp.Header.Get(telemetry.SpanHeader)); ok {
			sp.AdoptRemote(rs)
		}
		return io.ReadAll(resp.Body)
	case http.StatusNotFound:
		return nil, blockstore.ErrNotFound
	default:
		return nil, fmt.Errorf("exchange: peer %s: status %d", base, resp.StatusCode)
	}
}

// inBackoff reports whether the peer is still serving a failure penalty.
func (f *HTTPFetcher) inBackoff(p *peerState) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return p.failures > 0 && f.now().Before(p.until)
}

// markOK clears a peer's backoff after any clean response.
func (f *HTTPFetcher) markOK(p *peerState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p.failures = 0
	p.lastErr = ""
}

// markFailed records a transport failure and extends the peer's penalty
// window exponentially (base << failures, capped at max).
func (f *HTTPFetcher) markFailed(p *peerState, err error) {
	p.errCtr.Inc()
	f.mu.Lock()
	defer f.mu.Unlock()
	p.failures++
	p.errors++
	if err != nil {
		p.lastErr = err.Error()
	}
	d := f.base << (p.failures - 1)
	if d > f.max || d <= 0 {
		d = f.max
	}
	p.until = f.now().Add(d)
}
