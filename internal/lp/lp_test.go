package lp

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// checkFeasible verifies that sol.X satisfies every constraint of p.
func checkFeasible(t *testing.T, p *Problem, x []float64) {
	t.Helper()
	for i, c := range p.Constraints {
		lhs := 0.0
		for _, tm := range c.Terms {
			lhs += tm.Coef * x[tm.Var]
		}
		switch c.Sense {
		case LE:
			if lhs > c.RHS+1e-6 {
				t.Errorf("constraint %d violated: %g <= %g", i, lhs, c.RHS)
			}
		case GE:
			if lhs < c.RHS-1e-6 {
				t.Errorf("constraint %d violated: %g >= %g", i, lhs, c.RHS)
			}
		case EQ:
			if !approx(lhs, c.RHS, 1e-6) {
				t.Errorf("constraint %d violated: %g = %g", i, lhs, c.RHS)
			}
		}
	}
	for j, v := range x {
		if v < -1e-6 {
			t.Errorf("x[%d] = %g negative", j, v)
		}
	}
}

func TestTextbookLP(t *testing.T) {
	// max 3x + 5y s.t. x <= 4; 2y <= 12; 3x + 2y <= 18 -> opt 36 at (2,6).
	p := NewProblem(2)
	p.Objective = []float64{3, 5}
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 36, 1e-7) {
		t.Errorf("objective = %g, want 36", sol.Objective)
	}
	if !approx(sol.X[0], 2, 1e-7) || !approx(sol.X[1], 6, 1e-7) {
		t.Errorf("x = %v, want (2,6)", sol.X)
	}
	checkFeasible(t, p, sol.X)
}

func TestEqualityConstraints(t *testing.T) {
	// max x + 2y s.t. x + y = 10; y <= 7 -> opt at (3,7) = 17.
	p := NewProblem(2)
	p.Objective = []float64{1, 2}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 10)
	p.AddConstraint([]Term{{1, 1}}, LE, 7)
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 17, 1e-7) {
		t.Errorf("objective = %g, want 17", sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestGEConstraints(t *testing.T) {
	// max -x - y s.t. x + 2y >= 4; 3x + y >= 6  (minimize x+y).
	// Optimum of min x+y is at intersection: x+2y=4, 3x+y=6 -> x=8/5, y=6/5.
	p := NewProblem(2)
	p.Objective = []float64{-1, -1}
	p.AddConstraint([]Term{{0, 1}, {1, 2}}, GE, 4)
	p.AddConstraint([]Term{{0, 3}, {1, 1}}, GE, 6)
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, -(8.0/5 + 6.0/5), 1e-7) {
		t.Errorf("objective = %g, want %g", sol.Objective, -(8.0/5 + 6.0/5))
	}
	checkFeasible(t, p, sol.X)
}

func TestInfeasible(t *testing.T) {
	// x <= 1 and x >= 2 simultaneously.
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}}, GE, 2)
	sol := Solve(p)
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	// max x with only x >= 1.
	p := NewProblem(1)
	p.Objective = []float64{1}
	p.AddConstraint([]Term{{0, 1}}, GE, 1)
	sol := Solve(p)
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestNegativeRHSNormalization(t *testing.T) {
	// -x <= -3 is x >= 3; max -x -> x = 3, objective -3.
	p := NewProblem(1)
	p.Objective = []float64{-1}
	p.AddConstraint([]Term{{0, -1}}, LE, -3)
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.X[0], 3, 1e-7) {
		t.Errorf("x = %v, want 3", sol.X)
	}
}

func TestDegenerateLP(t *testing.T) {
	// Classic degeneracy: multiple constraints through the same vertex.
	p := NewProblem(2)
	p.Objective = []float64{1, 1}
	p.AddConstraint([]Term{{0, 1}}, LE, 1)
	p.AddConstraint([]Term{{1, 1}}, LE, 1)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, LE, 2)
	p.AddConstraint([]Term{{0, 1}, {1, -1}}, LE, 0)
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 2, 1e-7) {
		t.Errorf("objective = %g, want 2", sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestRedundantEquality(t *testing.T) {
	// Duplicate equality rows exercise artificial eviction of redundant
	// rows.
	p := NewProblem(2)
	p.Objective = []float64{2, 3}
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 5)
	p.AddConstraint([]Term{{0, 1}, {1, 1}}, EQ, 5)
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 15, 1e-7) { // all weight on y: 3*5
		t.Errorf("objective = %g, want 15", sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

func TestZeroVariableProblem(t *testing.T) {
	p := NewProblem(0)
	sol := Solve(p)
	if sol.Status != Optimal || sol.Objective != 0 {
		t.Fatalf("empty problem: %+v", sol)
	}
}

func TestAssignmentShapedLP(t *testing.T) {
	// The shape used by the pin access ILP relaxation: one equality per
	// pin over its intervals, <=1 per conflict set. Two pins, three
	// intervals each, intervals 2 and 3 conflict.
	//
	// vars: p1 has x0,x1,x2 (profits 3,2,1); p2 has x3,x4,x5 (profits
	// 3,2,1); conflict {x0, x3} -> only one of the two best picks.
	p := NewProblem(6)
	p.Objective = []float64{3, 2, 1, 3, 2, 1}
	p.AddConstraint([]Term{{0, 1}, {1, 1}, {2, 1}}, EQ, 1)
	p.AddConstraint([]Term{{3, 1}, {4, 1}, {5, 1}}, EQ, 1)
	p.AddConstraint([]Term{{0, 1}, {3, 1}}, LE, 1)
	sol := Solve(p)
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approx(sol.Objective, 5, 1e-7) { // 3 + 2
		t.Errorf("objective = %g, want 5", sol.Objective)
	}
	checkFeasible(t, p, sol.X)
}

// TestRandomFeasibleProblems builds random LPs with a known feasible point
// and verifies that the solver (a) reports optimal, (b) returns a feasible
// solution, and (c) achieves an objective no worse than the known point.
func TestRandomFeasibleProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.Objective[j] = float64(rng.Intn(11) - 5)
		}
		// Known feasible point.
		x0 := make([]float64, n)
		for j := range x0 {
			x0[j] = float64(rng.Intn(4))
		}
		for i := 0; i < m; i++ {
			var terms []Term
			lhs := 0.0
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					continue
				}
				coef := float64(rng.Intn(7) - 3)
				if coef == 0 {
					continue
				}
				terms = append(terms, Term{j, coef})
				lhs += coef * x0[j]
			}
			// Make the constraint hold at x0 with slack, and keep the
			// problem bounded by adding only <= rows plus box rows below.
			p.AddConstraint(terms, LE, lhs+float64(rng.Intn(5)))
		}
		// Box: x_j <= x0_j + K keeps everything bounded.
		for j := 0; j < n; j++ {
			p.AddConstraint([]Term{{j, 1}}, LE, x0[j]+10)
		}
		sol := Solve(p)
		if sol.Status != Optimal {
			t.Fatalf("trial %d: status %v", trial, sol.Status)
		}
		checkFeasible(t, p, sol.X)
		obj0 := 0.0
		for j := range x0 {
			obj0 += p.Objective[j] * x0[j]
		}
		if sol.Objective < obj0-1e-6 {
			t.Fatalf("trial %d: objective %g worse than feasible point %g",
				trial, sol.Objective, obj0)
		}
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range variable")
		}
	}()
	p := NewProblem(1)
	p.AddConstraint([]Term{{3, 1}}, LE, 1)
	Solve(p)
}

func TestSenseAndStatusStrings(t *testing.T) {
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Sense strings wrong")
	}
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" ||
		Unbounded.String() != "unbounded" || IterLimit.String() != "iteration-limit" {
		t.Error("Status strings wrong")
	}
}

func TestDeadlineAborts(t *testing.T) {
	// A generously sized random LP with an already-expired deadline must
	// return IterLimit promptly instead of solving.
	rng := rand.New(rand.NewSource(3))
	n := 60
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.Objective[j] = rng.Float64()
	}
	for i := 0; i < 40; i++ {
		var terms []Term
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				terms = append(terms, Term{j, rng.Float64()})
			}
		}
		p.AddConstraint(terms, LE, 5+rng.Float64())
	}
	p.Deadline = time.Now().Add(-time.Second)
	sol := Solve(p)
	if sol.Status != IterLimit {
		t.Errorf("status = %v, want iteration-limit from expired deadline", sol.Status)
	}
}

func TestIterationsReported(t *testing.T) {
	p := NewProblem(2)
	p.Objective = []float64{3, 5}
	p.AddConstraint([]Term{{0, 1}}, LE, 4)
	p.AddConstraint([]Term{{1, 2}}, LE, 12)
	p.AddConstraint([]Term{{0, 3}, {1, 2}}, LE, 18)
	sol := Solve(p)
	if sol.Iterations <= 0 {
		t.Errorf("iterations = %d, want > 0", sol.Iterations)
	}
}
