// Package lagrange implements the scalable Lagrangian relaxation algorithm
// for the weighted interval assignment problem (paper §3.4, Algorithms 1
// and 2).
//
// The conflict constraints (1c) are relaxed into the objective with
// multipliers lambda_m, updated by subgradient descent:
//
//	lambda_m^{k+1} = max(0, lambda_m^k + t_k * (sum_{I_i in C_m} x_i - 1))
//	t_k = L_m / k^alpha
//
// where L_m is the length of the common intersection of conflict set C_m
// and alpha = 0.95 by default. Each LR subproblem — pick one interval per
// pin maximizing total gain (profit minus accumulated penalties) — is
// solved by the greedy maxGains routine, optimal whenever no interval is
// shared between pins (Theorem 2). The best selection seen across
// iterations is kept; any residual conflicts are removed by greedily
// shrinking intervals to their minimum intervals, which is guaranteed to
// terminate because the all-minimum solution is conflict free (Theorem 1).
package lagrange

import (
	"math"
	"sort"

	"cpr/internal/assign"
	"cpr/internal/parallel"
)

// Config tunes the LR solver. Zero values take the paper's defaults.
//
//keypurity:options
type Config struct {
	// MaxIterations is the iteration upper bound UB (default 200).
	MaxIterations int
	// Alpha is the subgradient step exponent (default 0.95).
	Alpha float64
	// DisableSameNetTieBreak turns off the Algorithm 1 tie-breaking rule
	// that prefers intervals covering more same-net pins (for ablation).
	DisableSameNetTieBreak bool
	// FullSubgradient also decreases multipliers of satisfied conflict
	// sets (textbook subgradient) instead of the paper's increase-on-
	// violation-only rule (for ablation).
	FullSubgradient bool
	// SkipRefinement skips the final greedy conflict removal (for
	// ablation; the result may then be illegal).
	SkipRefinement bool
	// SkipPostImprove disables the legality-preserving local improvement
	// pass run after LR terminates. The pass is an addition over the
	// paper's Algorithm 2 (which stops at the first violation-free
	// solution): each pin greedily upgrades to a more profitable
	// conflict-free interval. Disable to measure the bare algorithm.
	SkipPostImprove bool
	// Workers bounds the goroutines used inside each subgradient
	// iteration: the gain refresh is sharded per interval chunk and the
	// multiplier update per conflict set, with penalty deltas folded back
	// in conflict-set index order so every floating point accumulation
	// happens in the sequential order. <= 1 runs fully sequentially; the
	// result is byte-identical for every value.
	//
	//keypurity:exempt execution parallelism; the internal/parallel determinism contract makes results byte-identical for every worker count
	Workers int
	// Stop is polled between subgradient iterations; when it reports
	// true the loop exits early with the best selection seen so far
	// (refinement still runs so the returned solution stays legal).
	// A nil Stop — or one that never fires — leaves the iteration
	// trajectory untouched, so results remain byte-identical to a run
	// without it.
	Stop func() bool
	// Observer, when non-nil, receives one IterationStat per subgradient
	// iteration — the convergence series behind trace spans and the
	// Figure 6 style ablation plots. It is strictly observational: the
	// callback sees copies of the iteration state and cannot influence
	// the trajectory, so results are byte-identical with or without it,
	// and it is excluded from every cache-key fingerprint. It runs on the
	// solving goroutine; keep it cheap.
	//
	//keypurity:exempt strictly observational; the callback sees copies and cannot influence the trajectory
	Observer func(IterationStat)
}

// IterationStat is one subgradient iteration's convergence snapshot.
type IterationStat struct {
	// Iteration is the 1-based iteration number k.
	Iteration int `json:"iter"`
	// Violations is the number of violated conflict sets in this
	// iteration's selection (the "conflicts remaining" series).
	Violations int `json:"violations"`
	// BestViolations is the minimum violation count seen so far.
	BestViolations int `json:"best_violations"`
	// SelectedProfit is the raw profit of this iteration's selection —
	// the primal value, a lower bound on the optimum once feasible.
	SelectedProfit float64 `json:"profit"`
	// DualValue is the Lagrangian function value of the selection under
	// the iteration's multipliers (selected gains plus the multiplier
	// sum) — the upper-bound side of the convergence gap. It is computed
	// from the greedy subproblem solution, so it is an estimate of the
	// true dual bound, matching what Algorithm 1 actually optimizes.
	DualValue float64 `json:"dual"`
}

func (c Config) withDefaults() Config {
	if c.MaxIterations == 0 {
		c.MaxIterations = 200
	}
	if c.Alpha == 0 {
		c.Alpha = 0.95
	}
	return c
}

// Result reports the LR run.
type Result struct {
	// Solution is the final (legal unless SkipRefinement) assignment.
	Solution *assign.Solution
	// Iterations is the number of LR iterations executed.
	Iterations int
	// BestViolations is the violation count of the best selection before
	// greedy conflict removal.
	BestViolations int
	// Converged reports whether LR reached zero violations on its own.
	Converged bool
	// ShrunkPins counts pins demoted to minimum intervals by refinement.
	ShrunkPins int
	// ImprovedPins counts pin upgrades made by the post-improvement pass.
	ImprovedPins int
}

// Solve runs Algorithm 2 on the model.
func Solve(m *assign.Model, cfg Config) Result {
	cfg = cfg.withDefaults()
	n := m.NumIntervals()

	// Gains start at the profits; penalties accumulate per interval as
	// the sum of its conflict sets' multipliers.
	penalties := make([]float64, n)
	lambda := make([]float64, len(m.Conflicts.Sets))

	// Pre-sorted interval order is recomputed per iteration (gains
	// change); scratch buffers are reused.
	order := make([]int, n)
	gains := make([]float64, n)
	selected := make([]bool, n)

	// Per-iteration parallelism (cfg.Workers > 1): the gain refresh and
	// the per-conflict-set multiplier updates are independent subproblems;
	// scratch slots carry their results into an ordered merge.
	gainWorkers, setWorkers := iterationWorkers(cfg, n, len(lambda))
	var setDeltas []float64
	var setCounts []int
	if setWorkers > 1 {
		setDeltas = make([]float64, len(lambda))
		setCounts = make([]int, len(lambda))
	}

	var best []bool
	minVio := math.MaxInt
	iters := 0
	for k := 1; k <= cfg.MaxIterations && minVio > 0; k++ {
		if cfg.Stop != nil && cfg.Stop() {
			break
		}
		iters = k
		parallel.ForEachChunk(gainWorkers, n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				gains[i] = m.Profits[i] - penalties[i]
			}
		})
		maxGains(m, gains, order, selected, cfg)
		// The observer's dual value wants the multipliers the selection
		// was made under, so the sums are taken before penalize mutates
		// lambda. Reads only — the trajectory is untouched.
		var obsProfit, obsDual float64
		if cfg.Observer != nil {
			for _, l := range lambda {
				obsDual += l
			}
			for i, sel := range selected {
				if sel {
					obsProfit += m.Profits[i]
					obsDual += gains[i]
				}
			}
		}
		var vio int
		if setWorkers > 1 {
			vio = penalizeParallel(m, selected, lambda, penalties, k, cfg, setWorkers, setDeltas, setCounts)
		} else {
			vio = penalize(m, selected, lambda, penalties, k, cfg)
		}
		if vio < minVio {
			minVio = vio
			best = append(best[:0], selected...)
		}
		if cfg.Observer != nil {
			cfg.Observer(IterationStat{
				Iteration:      k,
				Violations:     vio,
				BestViolations: minVio,
				SelectedProfit: obsProfit,
				DualValue:      obsDual,
			})
		}
	}
	if best == nil {
		best = selected
	}

	res := Result{
		Iterations:     iters,
		BestViolations: minVio,
		Converged:      minVio == 0,
	}
	sol := m.Evaluate(best)
	if !cfg.SkipRefinement && sol.Violations > 0 {
		res.ShrunkPins = refine(m, sol)
		sol = m.FromAssignment(sol.ByPin)
	}
	if !cfg.SkipPostImprove && sol.Violations == 0 {
		res.ImprovedPins = postImprove(m, sol)
		sol = m.FromAssignment(sol.ByPin)
	}
	res.Solution = sol
	return res
}

// postImprove greedily upgrades pins to more profitable intervals while
// preserving legality. Only moves that are trivially legal are made: the
// pin's current interval must serve no other pin, and the candidate must
// cover exactly this pin and sit in conflict sets with no other selected
// member. Returns the number of upgrades.
func postImprove(m *assign.Model, sol *assign.Solution) int {
	selected := make([]bool, m.NumIntervals())
	users := make(map[int]int) // interval -> #pins assigned to it
	for _, iv := range sol.ByPin {
		selected[iv] = true
		users[iv]++
	}
	improved := 0
	for pass := 0; pass < 10; pass++ {
		changed := false
		for _, pid := range m.Set.PinIDs {
			cur := sol.ByPin[pid]
			if users[cur] != 1 {
				continue // shared interval: the pin cannot leave legally
			}
			best, bestProfit := -1, m.Profits[cur]
			for _, cand := range m.Set.ByPin[pid] {
				if cand == cur || selected[cand] {
					continue
				}
				if len(m.Set.Intervals[cand].PinIDs) != 1 {
					continue // would double-cover another pin's (1b) row
				}
				if m.Profits[cand] <= bestProfit {
					continue
				}
				free := true
				for _, si := range m.Conflicts.MemberOf[cand] {
					for _, other := range m.Conflicts.Sets[si].IDs {
						if other != cur && other != cand && selected[other] {
							free = false
							break
						}
					}
					if !free {
						break
					}
				}
				if free {
					best, bestProfit = cand, m.Profits[cand]
				}
			}
			if best >= 0 {
				selected[cur] = false
				users[cur] = 0
				selected[best] = true
				users[best] = 1
				sol.ByPin[pid] = best
				improved++
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return improved
}

// maxGains implements Algorithm 1's greedy LR subproblem: select intervals
// in non-increasing gain order, skipping any interval with an
// already-assigned pin, until all pins are covered. Ties are broken by the
// number of same-net pins covered (intra-panel connections preferred).
func maxGains(m *assign.Model, gains []float64, order []int, selected []bool, cfg Config) {
	for i := range order {
		order[i] = i
	}
	ivs := m.Set.Intervals
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if gains[ia] != gains[ib] {
			return gains[ia] > gains[ib]
		}
		if !cfg.DisableSameNetTieBreak {
			if la, lb := len(ivs[ia].PinIDs), len(ivs[ib].PinIDs); la != lb {
				return la > lb
			}
		}
		return ia < ib
	})
	for i := range selected {
		selected[i] = false
	}
	assigned := make(map[int]bool, m.NumPins())
	remaining := m.NumPins()
	for _, i := range order {
		if remaining == 0 {
			break
		}
		skip := false
		for _, pid := range ivs[i].PinIDs {
			if assigned[pid] {
				skip = true
				break
			}
		}
		if skip {
			continue
		}
		selected[i] = true
		for _, pid := range ivs[i].PinIDs {
			assigned[pid] = true
			remaining--
		}
	}
}

// penalize implements Algorithm 1's multiplier update: for every violated
// conflict set, move lambda_m along the subgradient with step
// t_k = L_m / k^alpha, and propagate the change into per-interval
// penalties. Returns the violation count.
func penalize(m *assign.Model, selected []bool, lambda, penalties []float64, k int, cfg Config) int {
	vio := 0
	kAlpha := math.Pow(float64(k), cfg.Alpha)
	for si := range m.Conflicts.Sets {
		cs := &m.Conflicts.Sets[si]
		count := 0
		for _, id := range cs.IDs {
			if selected[id] {
				count++
			}
		}
		violated := count > 1
		if violated {
			vio++
		}
		if !violated && !cfg.FullSubgradient {
			continue
		}
		lm := float64(cs.Common.Len())
		tk := lm / kAlpha
		next := lambda[si] + tk*float64(count-1)
		if next < 0 {
			next = 0
		}
		if delta := next - lambda[si]; delta != 0 {
			lambda[si] = next
			for _, id := range cs.IDs {
				penalties[id] += delta
			}
		}
	}
	return vio
}

// iterationWorkers decides, per stage, whether the per-iteration work is
// big enough to amortize a fork-join. The cutover depends only on problem
// sizes, never on timing, so the choice — and with it the exact execution —
// is reproducible.
func iterationWorkers(cfg Config, numIntervals, numSets int) (gainWorkers, setWorkers int) {
	gainWorkers, setWorkers = 1, 1
	if cfg.Workers <= 1 {
		return
	}
	// The gain refresh is one subtraction per interval: it takes a large
	// model before goroutines pay for themselves.
	if numIntervals >= 64*parallel.Threshold {
		gainWorkers = cfg.Workers
	}
	if numSets >= parallel.Threshold {
		setWorkers = cfg.Workers
	}
	return
}

// penalizeParallel is penalize with the per-conflict-set subproblems run
// concurrently. Each set owns its lambda slot and writes its penalty delta
// and selection count to scratch; the deltas are then folded into the
// shared per-interval penalties serially in set index order — the same
// floating point accumulation order as the sequential path, so the
// multiplier trajectory is byte-identical for every worker count.
func penalizeParallel(m *assign.Model, selected []bool, lambda, penalties []float64, k int, cfg Config, workers int, deltas []float64, counts []int) int {
	kAlpha := math.Pow(float64(k), cfg.Alpha)
	sets := m.Conflicts.Sets
	parallel.ForEachChunk(workers, len(sets), func(lo, hi int) {
		for si := lo; si < hi; si++ {
			cs := &sets[si]
			count := 0
			for _, id := range cs.IDs {
				if selected[id] {
					count++
				}
			}
			counts[si] = count
			deltas[si] = 0
			if count <= 1 && !cfg.FullSubgradient {
				continue
			}
			lm := float64(cs.Common.Len())
			tk := lm / kAlpha
			next := lambda[si] + tk*float64(count-1)
			if next < 0 {
				next = 0
			}
			if delta := next - lambda[si]; delta != 0 {
				lambda[si] = next
				deltas[si] = delta
			}
		}
	})
	vio := 0
	for si := range sets {
		if counts[si] > 1 {
			vio++
		}
		if delta := deltas[si]; delta != 0 {
			for _, id := range sets[si].IDs {
				penalties[id] += delta
			}
		}
	}
	return vio
}

// refine performs the greedy conflict removal of Algorithm 2 line 11:
// while any conflict set holds more than one selected interval, shrink the
// offending intervals (all but the most profitable member) down to their
// pins' minimum intervals on the same track. Because minimum intervals are
// pairwise disjoint, the process strictly reduces the number of non-minimum
// assignments and terminates in a conflict-free state.
//
// The solution's ByPin map is updated in place; Selected/metrics must be
// recomputed by the caller. Returns the number of pin demotions.
func refine(m *assign.Model, sol *assign.Solution) int {
	shrunk := 0
	set := m.Set
	for pass := 0; pass <= m.NumPins()+1; pass++ {
		selected := make([]bool, m.NumIntervals())
		users := make(map[int][]int) // interval -> pins using it
		// Sorted pin order keeps users[iv] (and thus demote order)
		// independent of map iteration order.
		pids := make([]int, 0, len(sol.ByPin))
		for pid := range sol.ByPin {
			pids = append(pids, pid)
		}
		sort.Ints(pids)
		for _, pid := range pids {
			iv := sol.ByPin[pid]
			selected[iv] = true
			users[iv] = append(users[iv], pid)
		}
		changed := false
		for si := range m.Conflicts.Sets {
			cs := &m.Conflicts.Sets[si]
			var sel []int
			for _, id := range cs.IDs {
				if selected[id] {
					sel = append(sel, id)
				}
			}
			if len(sel) < 2 {
				continue
			}
			// Keep the most profitable member; shrink every other
			// non-minimum member. If nothing else can shrink, shrink the
			// keeper itself.
			keep := sel[0]
			for _, id := range sel[1:] {
				if m.Profits[id] > m.Profits[keep] {
					keep = id
				}
			}
			any := false
			for _, id := range sel {
				if id == keep || set.Intervals[id].MinForPin >= 0 {
					continue
				}
				shrunk += demote(m, sol, id, users[id])
				selected[id] = false
				any = true
				changed = true
			}
			if !any && set.Intervals[keep].MinForPin < 0 {
				shrunk += demote(m, sol, keep, users[keep])
				selected[keep] = false
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return shrunk
}

// demote reassigns every pin using interval id to its minimum interval on
// the same track (falling back to any minimum interval).
func demote(m *assign.Model, sol *assign.Solution, id int, pins []int) int {
	track := m.Set.Intervals[id].Track
	n := 0
	for _, pid := range pins {
		if sol.ByPin[pid] != id {
			continue
		}
		min := m.Set.MinInterval(pid, track)
		if min < 0 {
			min = m.Set.AnyMinInterval(pid)
		}
		if min >= 0 && min != id {
			sol.ByPin[pid] = min
			n++
		}
	}
	return n
}
