package tech

import "testing"

func TestDefaultIsValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("Default technology invalid: %v", err)
	}
}

func TestDefaultMatchesPaperSetup(t *testing.T) {
	d := Default()
	if d.BaseCost != 1 {
		t.Errorf("BaseCost = %d, want 1 (paper §5)", d.BaseCost)
	}
	if d.ViaCost != 1 {
		t.Errorf("ViaCost = %d, want 1 (paper §5)", d.ViaCost)
	}
	if d.ForbiddenViaCost != 10 {
		t.Errorf("ForbiddenViaCost = %d, want 10 (paper §5)", d.ForbiddenViaCost)
	}
	if d.TracksPerPanel != 10 {
		t.Errorf("TracksPerPanel = %d, want 10 (paper §5)", d.TracksPerPanel)
	}
	if d.LRIterationBound != 200 {
		t.Errorf("LRIterationBound = %d, want 200 (paper §5)", d.LRIterationBound)
	}
	if d.LRAlpha != 0.95 {
		t.Errorf("LRAlpha = %g, want 0.95 (paper §3.4)", d.LRAlpha)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Technology)
	}{
		{"zero tracks", func(c *Technology) { c.TracksPerPanel = 0 }},
		{"zero base cost", func(c *Technology) { c.BaseCost = 0 }},
		{"zero via cost", func(c *Technology) { c.ViaCost = 0 }},
		{"forbidden below via", func(c *Technology) { c.ForbiddenViaCost = 0 }},
		{"negative line end ext", func(c *Technology) { c.LineEndExtension = -1 }},
		{"zero min line len", func(c *Technology) { c.MinLineLen = 0 }},
		{"negative line end spacing", func(c *Technology) { c.LineEndSpacing = -1 }},
		{"zero LR bound", func(c *Technology) { c.LRIterationBound = 0 }},
		{"alpha too large", func(c *Technology) { c.LRAlpha = 1.5 }},
		{"alpha zero", func(c *Technology) { c.LRAlpha = 0 }},
		{"bad layer index", func(c *Technology) { c.Layers[M2].Index = 5 }},
		{"M1 routable", func(c *Technology) { c.Layers[M1].Dir = DirHorizontal }},
		{"M2 non-routing", func(c *Technology) { c.Layers[M2].Dir = DirNone }},
		{"parallel M2/M3", func(c *Technology) { c.Layers[M3].Dir = DirHorizontal }},
	}
	for _, m := range mutations {
		cfg := Default()
		m.mut(cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", m.name)
		}
	}
}

func TestPanelOfTrack(t *testing.T) {
	d := Default() // 10 tracks per panel
	cases := []struct{ y, want int }{
		{0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {-1, -1},
	}
	for _, c := range cases {
		if got := d.PanelOfTrack(c.y); got != c.want {
			t.Errorf("PanelOfTrack(%d) = %d, want %d", c.y, got, c.want)
		}
	}
}

func TestPanelTracksRoundTrip(t *testing.T) {
	d := Default()
	for p := 0; p < 5; p++ {
		lo, hi := d.PanelTracks(p)
		if hi-lo+1 != d.TracksPerPanel {
			t.Errorf("panel %d has %d tracks, want %d", p, hi-lo+1, d.TracksPerPanel)
		}
		for y := lo; y <= hi; y++ {
			if d.PanelOfTrack(y) != p {
				t.Errorf("PanelOfTrack(%d) = %d, want %d", y, d.PanelOfTrack(y), p)
			}
		}
	}
}

func TestLayerDir(t *testing.T) {
	d := Default()
	if d.LayerDir(M1) != DirNone {
		t.Error("M1 should be non-routing")
	}
	if d.LayerDir(M2) != DirHorizontal {
		t.Error("M2 should be horizontal")
	}
	if d.LayerDir(M3) != DirVertical {
		t.Error("M3 should be vertical")
	}
	if d.LayerDir(-1) != DirNone || d.LayerDir(99) != DirNone {
		t.Error("out-of-range layers should report DirNone")
	}
}

func TestDirString(t *testing.T) {
	if DirHorizontal.String() != "horizontal" ||
		DirVertical.String() != "vertical" ||
		DirNone.String() != "none" {
		t.Error("Dir.String values wrong")
	}
}
