// Package client is a small Go client for the cprd daemon's HTTP/JSON
// API (see internal/server). It submits designs or synthetic-circuit
// specs, polls jobs to completion, and reads the daemon's stats.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"cpr/internal/httpapi"
)

// Re-exported wire types, so callers never import internal packages.
type (
	// SubmitRequest is the body of POST /v1/jobs.
	SubmitRequest = httpapi.SubmitRequest
	// Spec generates a synthetic circuit server-side.
	Spec = httpapi.Spec
	// Options tunes the optimization flow.
	Options = httpapi.Options
	// Job is a job snapshot as returned by the daemon.
	Job = httpapi.Job
	// Result is the completed-run payload inside a Job.
	Result = httpapi.Result
	// IncrementalSummary reports panel reuse inside a Result.
	IncrementalSummary = httpapi.IncrementalSummary
	// Stats is the body of GET /v1/stats.
	Stats = httpapi.Stats
	// Health is the body of GET /v1/healthz.
	Health = httpapi.Health
)

// StatusError reports a non-2xx daemon response.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("cprd: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// Client talks to one cprd daemon.
type Client struct {
	baseURL string
	http    *http.Client
}

// New creates a client for the daemon at baseURL (e.g.
// "http://127.0.0.1:8080"). The default HTTP client has no timeout so
// Wait-style calls can block; bound them with the context instead, or
// install a custom client with SetHTTPClient.
func New(baseURL string) *Client {
	return &Client{
		baseURL: strings.TrimRight(baseURL, "/"),
		http:    &http.Client{},
	}
}

// SetHTTPClient replaces the underlying HTTP client.
func (c *Client) SetHTTPClient(h *http.Client) { c.http = h }

// Submit posts one request and returns the daemon's job snapshot. With
// req.Wait set the call blocks until the job is terminal (or ctx fires).
func (c *Client) Submit(ctx context.Context, req SubmitRequest) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodPost, "/v1/jobs", &req, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// SubmitDesign submits an inline cpr-design document.
func (c *Client) SubmitDesign(ctx context.Context, designText string, opts *Options) (*Job, error) {
	return c.Submit(ctx, SubmitRequest{Design: designText, Options: opts})
}

// SubmitSpec submits a synthetic-circuit spec for server-side generation.
func (c *Client) SubmitSpec(ctx context.Context, spec Spec, opts *Options) (*Job, error) {
	return c.Submit(ctx, SubmitRequest{Spec: &spec, Options: opts})
}

// RerunMode values for Options.RerunMode, selecting the incremental
// contract of a submission with a BaseJob.
const (
	// RerunStrict (the default, also selected by an empty RerunMode)
	// splices only provably unaffected work: the result is byte-identical
	// to a cold run of the same design, the baseline changes wall clock
	// only.
	RerunStrict = "strict"
	// RerunEcoFast additionally warm-starts surviving nets of dirtied
	// regions from the base's routes. Results are verified DRC-clean and
	// objective-equal but route bytes may differ from a cold run, so
	// eco-fast results are never cached or shared.
	RerunEcoFast = "eco-fast"
)

// SubmitIncremental submits an edited design to rerun against a finished
// base job: unchanged panels are spliced from the base's artifacts and
// only the dirtied ones are recomputed. The result is byte-identical to
// a cold submission of the same design.
func (c *Client) SubmitIncremental(ctx context.Context, designText, baseJobID string, opts *Options) (*Job, error) {
	return c.Submit(ctx, SubmitRequest{Design: designText, BaseJob: baseJobID, Options: opts})
}

// SubmitIncrementalMode is SubmitIncremental with an explicit rerun mode
// (RerunStrict or RerunEcoFast), overriding any mode already in opts.
func (c *Client) SubmitIncrementalMode(ctx context.Context, designText, baseJobID, mode string, opts *Options) (*Job, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	o.RerunMode = mode
	return c.Submit(ctx, SubmitRequest{Design: designText, BaseJob: baseJobID, Options: &o})
}

// Job fetches one job by ID.
func (c *Client) Job(ctx context.Context, id string) (*Job, error) {
	var job Job
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &job); err != nil {
		return nil, err
	}
	return &job, nil
}

// Wait polls a job until it reaches a terminal state, checking every
// poll interval (default 50ms when poll <= 0).
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*Job, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	ticker := time.NewTicker(poll)
	defer ticker.Stop()
	for {
		job, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if job.State == "done" || job.State == "failed" {
			return job, nil
		}
		select {
		case <-ctx.Done():
			return job, ctx.Err()
		case <-ticker.C:
		}
	}
}

// Stats fetches the daemon's queue/cache/latency counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	var st Stats
	if err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Health checks liveness; it returns the health body on 200 and an
// error otherwise.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var h Health
	if err := c.do(ctx, http.MethodGet, "/v1/healthz", nil, &h); err != nil {
		return nil, err
	}
	return &h, nil
}

// TraceFormat selects the encoding of a job trace.
type TraceFormat string

const (
	// TraceChrome is Chrome trace_event JSON, loadable in chrome://tracing
	// or Perfetto (the daemon's default).
	TraceChrome TraceFormat = "chrome"
	// TraceJSON is the raw span-record export.
	TraceJSON TraceFormat = "json"
)

// Trace fetches a job's span trace as raw bytes in the given format
// (empty defaults to TraceChrome). The daemon answers 404 for jobs that
// never ran (cache hits) or when tracing is disabled.
func (c *Client) Trace(ctx context.Context, id string, format TraceFormat) ([]byte, error) {
	path := "/v1/jobs/" + id + "/trace"
	if format != "" {
		path += "?format=" + string(format)
	}
	return c.raw(ctx, path)
}

// Metrics fetches the daemon's /metrics endpoint: Prometheus text
// exposition of the operational metrics registry (empty when the daemon
// runs without one).
func (c *Client) Metrics(ctx context.Context) ([]byte, error) {
	return c.raw(ctx, "/metrics")
}

// raw GETs a path and returns the body bytes, mapping non-2xx responses
// to StatusError like do.
func (c *Client) raw(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.baseURL+path, nil)
	if err != nil {
		return nil, fmt.Errorf("cprd client: %w", err)
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cprd client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return nil, fmt.Errorf("cprd client: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr httpapi.Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return nil, &StatusError{Code: resp.StatusCode, Message: apiErr.Error}
		}
		return nil, &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	return data, nil
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("cprd client: encoding request: %w", err)
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, body)
	if err != nil {
		return fmt.Errorf("cprd client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("cprd client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return fmt.Errorf("cprd client: reading response: %w", err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var apiErr httpapi.Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return &StatusError{Code: resp.StatusCode, Message: apiErr.Error}
		}
		return &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("cprd client: decoding response: %w", err)
	}
	return nil
}
