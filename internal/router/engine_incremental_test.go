package router_test

import (
	"bytes"
	"math/rand"
	"testing"

	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/tech"
	"cpr/internal/verify"
)

// withEngine rebinds a design to a clone of its technology carrying the
// given rule engine. clusteredDesign hands every design a fresh
// tech.Default(), but cloning keeps this helper safe if that changes.
func withEngine(d *design.Design, engine string) *design.Design {
	t := *d.Tech
	t.Patterning.Engine = engine
	d.Tech = &t
	return d
}

// TestIncrementalStrictByteIdenticalPerEngine extends the strict-mode
// incremental contract to the non-default rule engines: under lele and
// tpl rules, a strict rerun over random ECO edits must still be
// byte-identical — routes, metrics, and rendered SVG — to a cold run of
// the edited design, for Workers in {1, 2, 8}, while actually splicing.
// The engines move the clearance margins, the DRC rules, and (for tpl)
// the negotiation cost arithmetic, so none of this follows from the sadp
// strict test.
func TestIncrementalStrictByteIdenticalPerEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("per-engine incremental sweep skipped in short mode")
	}
	workerCounts := []int{1, 2, 8}
	const edits = 2
	for _, engine := range []string{tech.EngineLELE, tech.EngineTPL} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			d := withEngine(clusteredDesign(t, "strict-"+engine, 2, 12, 5151, true), engine)
			rng := rand.New(rand.NewSource(5151))
			prev, err := core.Run(d, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			splicedTotal := 0
			for step := 0; step < edits; step++ {
				d = ecoEdit(t, d, rng)
				cold, err := core.Run(d, core.Options{})
				if err != nil {
					t.Fatalf("step %d: cold run: %v", step, err)
				}
				coldDump := dumpFullRun(t, d, cold)
				for _, workers := range workerCounts {
					inc, err := core.Rerun(prev, d, core.Options{Workers: workers})
					if err != nil {
						t.Fatalf("step %d workers=%d: rerun: %v", step, workers, err)
					}
					if inc.Incremental == nil {
						t.Fatalf("step %d workers=%d: no incremental stats", step, workers)
					}
					if got := dumpFullRun(t, d, inc); !bytes.Equal(got, coldDump) {
						t.Fatalf("step %d workers=%d: strict rerun differs from cold run: %s",
							step, workers, firstDiff(coldDump, got))
					}
					splicedTotal += inc.Incremental.NetsSpliced
				}
				prev = cold
			}
			if splicedTotal == 0 {
				t.Error("no net was ever spliced across the edit sequence; incremental routing is inert")
			}
		})
	}
}

// TestIncrementalEcoFastVerifiedEquivalentPerEngine extends the eco-fast
// contract to lele and tpl: the warm-started rerun must pass the
// independent verifier — which under these engines includes the
// engine-specific track rules and mask analysis — and match the cold
// run's objective, while actually warm-starting nets.
func TestIncrementalEcoFastVerifiedEquivalentPerEngine(t *testing.T) {
	if testing.Short() {
		t.Skip("per-engine eco-fast sweep skipped in short mode")
	}
	for _, engine := range []string{tech.EngineLELE, tech.EngineTPL} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			// Lighter clusters than the sadp eco-fast test: lele/tpl
			// clearances make a 12-net cluster congested enough that
			// warm-start repair can legitimately strand a net, which is
			// outside eco-fast's objective-equality envelope.
			d := withEngine(clusteredDesign(t, "ecofast-"+engine, 2, 8, 6262, true), engine)
			rng := rand.New(rand.NewSource(6262))
			prev, err := core.Run(d, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			warmTotal := 0
			for step := 0; step < 2; step++ {
				d = ecoEdit(t, d, rng)
				cold, err := core.Run(d, core.Options{})
				if err != nil {
					t.Fatalf("step %d: cold run: %v", step, err)
				}
				for _, workers := range []int{1, 8} {
					inc, err := core.Rerun(prev, d, core.Options{Workers: workers, RerunMode: core.RerunEcoFast})
					if err != nil {
						t.Fatalf("step %d workers=%d: eco-fast rerun: %v", step, workers, err)
					}
					if rep := verify.Check(d, grid.New(d), inc.Router); !rep.Ok() {
						t.Fatalf("step %d workers=%d: eco-fast result fails %s verification: %v",
							step, workers, engine, rep.Errors)
					}
					if err := verify.ObjectiveEqual(d, cold.Router, inc.Router); err != nil {
						t.Fatalf("step %d workers=%d: eco-fast objective differs from cold: %v",
							step, workers, err)
					}
					if inc.Incremental == nil {
						t.Fatalf("step %d workers=%d: no incremental stats", step, workers)
					}
					warmTotal += inc.Incremental.NetsWarm + inc.Incremental.NetsSpliced
				}
				prev = cold
			}
			if warmTotal == 0 {
				t.Error("no net was ever warm-started or spliced; eco-fast path is inert")
			}
		})
	}
}
