package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Resolve(-3) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	for _, n := range []int{1, 2, 7, 64} {
		if got := Resolve(n); got != n {
			t.Errorf("Resolve(%d) = %d", n, got)
		}
	}
}

func TestForEachCoversEverySlotOnce(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 2, 5, 63, 64, 1000} {
			hits := make([]int32, n)
			ForEach(workers, n, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: slot %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForEachSequentialIsInlineAndOrdered(t *testing.T) {
	var order []int
	ForEach(1, 5, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("workers=1 order = %v, want ascending", order)
		}
	}
	if len(order) != 5 {
		t.Fatalf("workers=1 ran %d jobs, want 5", len(order))
	}
}

func TestForEachChunkCoversRangeExactly(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 9} {
		for _, n := range []int{0, 1, 3, 64, 65, 997} {
			hits := make([]int32, n)
			ForEachChunk(workers, n, func(lo, hi int) {
				if lo < 0 || hi > n || lo >= hi {
					t.Errorf("workers=%d n=%d: bad chunk [%d,%d)", workers, n, lo, hi)
					return
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d covered %d times", workers, n, i, h)
				}
			}
		}
	}
}

// TestForEachDeterministicSlots is the contract the pipeline relies on:
// per-slot writes then an ordered reduce give the same result for every
// worker count.
func TestForEachDeterministicSlots(t *testing.T) {
	const n = 500
	reduce := func(workers int) float64 {
		slots := make([]float64, n)
		ForEach(workers, n, func(i int) {
			slots[i] = float64(i) * 0.1
		})
		sum := 0.0
		for _, v := range slots {
			sum += v
		}
		return sum
	}
	want := reduce(1)
	for _, w := range []int{2, 4, 16} {
		if got := reduce(w); got != want {
			t.Errorf("workers=%d reduce = %v, want %v", w, got, want)
		}
	}
}
