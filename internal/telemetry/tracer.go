// Package telemetry is the observability substrate of the CPR pipeline:
// a zero-dependency hierarchical span tracer and a small Prometheus-style
// metrics registry, plus the context plumbing that carries both through
// the optimization and routing stages.
//
// The hard contract (DESIGN.md §4e): telemetry is strictly observational.
// Spans and metrics may read anything but influence nothing — results are
// byte-identical with telemetry on or off, for every worker count. All
// wall-clock readings live inside this package (or behind explicitly
// suppressed //cprlint:nondeterm sites in the restricted packages) and
// never reach a routing result, an artifact encoding, or a cache key.
//
// A nil *Tracer, *Registry, or *Span is fully usable: every method is a
// no-op on a nil receiver, so instrumented code needs no conditionals and
// pays only a pointer test when telemetry is disabled.
//
//keypurity:observational spans and metrics never feed back into results or cache keys (§4e)
package telemetry

import (
	"sync"
	"time"
)

// Attr is one span attribute. Attributes are an append-ordered list, not
// a map, so exports are deterministic.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is one timed region of the pipeline. Spans form a tree via
// ParentID and are created through Tracer.StartSpan or the context
// helpers. A span is owned by the goroutine that started it; End and
// SetAttr are safe to call concurrently with exports but not with each
// other.
type Span struct {
	tracer *Tracer

	// ID is the tracer-scoped span identifier (1-based, creation order).
	ID int
	// ParentID is the parent span's ID, or 0 for a root span.
	ParentID int
	// Name is the stage name (e.g. "run", "pinopt", "panel", "assign").
	Name string
	// Lane groups spans into display rows ("threads" in the Chrome trace
	// viewer). A span inherits its parent's lane unless SetLane is called;
	// per-panel solves get one lane each so concurrent panels render side
	// by side instead of interleaved.
	Lane int

	mu    sync.Mutex
	start time.Time
	end   time.Time
	attrs []Attr
}

// Tracer collects spans for one traced run (a CLI invocation or one cprd
// job). It is safe for concurrent use; span identity and export order are
// deterministic (creation order ties broken by start order under the
// tracer lock), so a fixed workload with a fixed worker count exports a
// stable span tree.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	traceID string
	emitter *Emitter
	spans   []*Span
}

// New creates an empty tracer whose epoch (the zero of all exported
// timestamps) is the moment of creation, with a process-unique trace id
// for cross-node propagation.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), traceID: newTraceID()}
}

// SetEmitter makes the tracer publish span_start/span_end events for
// every span to the given emitter (nil disables). Safe on nil.
func (t *Tracer) SetEmitter(em *Emitter) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.emitter = em
	t.mu.Unlock()
}

// emitterRef returns the tracer's current emitter. Safe on nil.
func (t *Tracer) emitterRef() *Emitter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	em := t.emitter
	t.mu.Unlock()
	return em
}

// StartSpan opens a span under parent (nil parent = root). On a nil
// tracer it returns nil, which is itself a valid no-op span.
func (t *Tracer) StartSpan(name string, parent *Span) *Span {
	if t == nil {
		return nil
	}
	sp := &Span{tracer: t, Name: name, start: time.Now()}
	if parent != nil {
		sp.ParentID = parent.ID
		sp.Lane = parent.Lane
	}
	t.mu.Lock()
	sp.ID = len(t.spans) + 1
	t.spans = append(t.spans, sp)
	em := t.emitter
	t.mu.Unlock()
	if em != nil {
		em.Emit("span_start", map[string]any{"span": sp.ID, "name": name, "parent": sp.ParentID})
	}
	return sp
}

// End closes the span and returns its duration. Safe on nil (returns 0)
// and idempotent (the first End wins).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	first := false
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
		first = true
	}
	d := s.end.Sub(s.start)
	s.mu.Unlock()
	if first {
		if em := s.tracer.emitterRef(); em != nil {
			em.Emit("span_end", map[string]any{"span": s.ID, "name": s.Name, "duration_ns": d.Nanoseconds()})
		}
	}
	return d
}

// SetAttr appends one attribute. Safe on nil. Keys repeated across calls
// are kept in order (exports show every occurrence), so callers should
// set each key once.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetLane assigns the span (and by inheritance its future children) to a
// display lane. Safe on nil.
func (s *Span) SetLane(lane int) {
	if s == nil {
		return
	}
	s.Lane = lane
}

// Attrs returns a copy of the span's attributes. Safe on nil.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attr(nil), s.attrs...)
}

// Attr returns the value of the first attribute with the given key and
// whether it was present. Safe on nil.
func (s *Span) Attr(key string) (any, bool) {
	for _, a := range s.Attrs() {
		if a.Key == key {
			return a.Value, true
		}
	}
	return nil, false
}

// SpanRecord is the exportable snapshot of one span, with times relative
// to the tracer epoch.
type SpanRecord struct {
	ID       int           `json:"id"`
	ParentID int           `json:"parent,omitempty"`
	Name     string        `json:"name"`
	Lane     int           `json:"lane"`
	Start    time.Duration `json:"start_ns"`
	Duration time.Duration `json:"duration_ns"`
	Attrs    []Attr        `json:"attrs,omitempty"`
}

// Snapshot returns every span recorded so far, in creation order, with
// times relative to the tracer epoch. Unfinished spans report the
// snapshot moment as their end. Safe on nil (returns nil).
func (t *Tracer) Snapshot() []SpanRecord {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	spans := append([]*Span(nil), t.spans...)
	epoch := t.epoch
	t.mu.Unlock()

	out := make([]SpanRecord, 0, len(spans))
	for _, sp := range spans {
		sp.mu.Lock()
		end := sp.end
		attrs := append([]Attr(nil), sp.attrs...)
		sp.mu.Unlock()
		if end.IsZero() {
			end = now
		}
		out = append(out, SpanRecord{
			ID:       sp.ID,
			ParentID: sp.ParentID,
			Name:     sp.Name,
			Lane:     sp.Lane,
			Start:    sp.start.Sub(epoch),
			Duration: end.Sub(sp.start),
			Attrs:    attrs,
		})
	}
	return out
}

// Find returns the first recorded span with the given name, or nil.
// Intended for tests and report generation, not hot paths.
func (t *Tracer) Find(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, sp := range t.spans {
		if sp.Name == name {
			return sp
		}
	}
	return nil
}

// FindAll returns every recorded span with the given name, in creation
// order.
func (t *Tracer) FindAll(name string) []*Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var out []*Span
	for _, sp := range t.spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}
