// Package jobs is golden input: an allowlisted driver-layer package
// where wall clocks and environment reads are legitimate.
package jobs

import (
	"os"
	"time"
)

// Submit timestamps jobs; never flagged.
func Submit() time.Time {
	if os.Getenv("CPRD_DEBUG") != "" {
		return time.Time{}
	}
	return time.Now()
}
