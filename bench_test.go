package cpr

// Benchmarks regenerating the paper's evaluation artifacts, one family per
// table and figure, on scaled-down instances so `go test -bench=.` stays
// in laptop territory. Full-size runs live in cmd/experiments.
//
//	BenchmarkTable2*       — Table 2  (three routing flows)
//	BenchmarkFig6aLR/ILP   — Fig 6(a) (assignment solver runtime scaling)
//	BenchmarkFig6bGap      — Fig 6(b) (LR vs ILP objective gap)
//	BenchmarkFig7a*        — Fig 7(a) (LR- vs ILP-based CPR routing)
//	BenchmarkFig7b*        — Fig 7(b) (initial congested grids)
//	BenchmarkAblation*     — design-choice ablations from DESIGN.md §5
//	Benchmark<module>      — micro-benchmarks of the core kernels

import (
	"fmt"
	"testing"
	"time"

	"cpr/internal/assign"
	"cpr/internal/cache"
	"cpr/internal/conflict"
	"cpr/internal/core"
	"cpr/internal/cutmask"
	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/ilp"
	"cpr/internal/lagrange"
	"cpr/internal/lp"
	"cpr/internal/pinaccess"
	"cpr/internal/pipeline"
	"cpr/internal/router"
	"cpr/internal/synth"
	"cpr/internal/tech"
)

// benchSpec is the Table 2 stand-in circuit used by routing benchmarks:
// ecc's density at roughly a quarter of its area.
var benchSpec = synth.Spec{Name: "bench", Nets: 400, Width: 300, Height: 160, Seed: 9}

// benchLargeSpec is the largest synthetic circuit in the benchmark suite
// (same pin density as benchSpec, 4x the area, 32 panels) — the instance
// the parallel-vs-sequential pairs below measure speedup on.
var benchLargeSpec = synth.Spec{Name: "benchlarge", Nets: 1600, Width: 600, Height: 320, Seed: 11}

func benchDesign(b *testing.B) *design.Design {
	b.Helper()
	d, err := synth.Generate(benchSpec)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func benchModel(b *testing.B, pins int, seed int64) *assign.Model {
	b.Helper()
	d, err := synth.Generate(synth.SweepSpec(pins, seed))
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, len(d.Pins))
	for i := range ids {
		ids[i] = i
	}
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), ids)
	if err != nil {
		b.Fatal(err)
	}
	return assign.Build(set, assign.SqrtProfit)
}

// --- Table 2 ---------------------------------------------------------

func benchmarkTable2(b *testing.B, mode core.Mode) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchDesign(b)
		b.StartTimer()
		res, err := core.Run(d, core.Options{Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metrics.RoutPct, "rout%")
		b.ReportMetric(float64(res.Metrics.Vias), "vias")
		b.ReportMetric(float64(res.Metrics.WL), "WL")
	}
}

func BenchmarkTable2CPR(b *testing.B)        { benchmarkTable2(b, core.ModeCPR) }
func BenchmarkTable2NoPinOpt(b *testing.B)   { benchmarkTable2(b, core.ModeNoPinOpt) }
func BenchmarkTable2Sequential(b *testing.B) { benchmarkTable2(b, core.ModeSequential) }

// --- Figure 6(a): solver runtime scaling -----------------------------

func BenchmarkFig6aLR(b *testing.B) {
	for _, pins := range []int{100, 200, 400, 800} {
		b.Run(fmt.Sprintf("pins=%d", pins), func(b *testing.B) {
			m := benchModel(b, pins, 77)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lagrange.Solve(m, lagrange.Config{})
			}
		})
	}
}

func BenchmarkFig6aILP(b *testing.B) {
	for _, pins := range []int{100, 200, 400} {
		b.Run(fmt.Sprintf("pins=%d", pins), func(b *testing.B) {
			m := benchModel(b, pins, 77)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := m.SolveILP(ilp.Config{TimeLimit: time.Minute}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 6(b): LR/ILP objective gap --------------------------------

func BenchmarkFig6bGap(b *testing.B) {
	m := benchModel(b, 200, 77)
	for i := 0; i < b.N; i++ {
		lrRes := lagrange.Solve(m, lagrange.Config{})
		ilpSol, _, err := m.SolveILP(ilp.Config{TimeLimit: time.Minute})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(lrRes.Solution.Objective/ilpSol.Objective, "LR/ILP")
	}
}

// --- Figure 7(a): routing quality, LR- vs ILP-based CPR --------------

func benchmarkFig7a(b *testing.B, opt core.Optimizer) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchDesign(b)
		b.StartTimer()
		res, err := core.Run(d, core.Options{
			Mode:      core.ModeCPR,
			Optimizer: opt,
			ILP:       ilp.Config{TimeLimit: 10 * time.Second},
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Metrics.RoutPct, "rout%")
		b.ReportMetric(float64(res.Metrics.Vias), "vias")
	}
}

func BenchmarkFig7aLRBased(b *testing.B)  { benchmarkFig7a(b, core.OptLR) }
func BenchmarkFig7aILPBased(b *testing.B) { benchmarkFig7a(b, core.OptILP) }

// --- Figure 7(b): initial congested grids ----------------------------

func benchmarkFig7b(b *testing.B, mode core.Mode) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchDesign(b)
		b.StartTimer()
		res, err := core.Run(d, core.Options{Mode: mode})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Metrics.InitialCongested), "congestedGrids")
	}
}

func BenchmarkFig7bWithPinOpt(b *testing.B)    { benchmarkFig7b(b, core.ModeCPR) }
func BenchmarkFig7bWithoutPinOpt(b *testing.B) { benchmarkFig7b(b, core.ModeNoPinOpt) }

// --- Ablations (DESIGN.md §5) -----------------------------------------

func BenchmarkAblationProfitFn(b *testing.B) {
	for _, p := range []struct {
		name string
		fn   assign.ProfitFn
	}{{"sqrt", assign.SqrtProfit}, {"linear", assign.LinearProfit}} {
		b.Run(p.name, func(b *testing.B) {
			d, err := synth.Generate(synth.SweepSpec(400, 91))
			if err != nil {
				b.Fatal(err)
			}
			ids := make([]int, len(d.Pins))
			for i := range ids {
				ids[i] = i
			}
			set, err := pinaccess.Generate(d, d.BuildTrackIndex(), ids)
			if err != nil {
				b.Fatal(err)
			}
			m := assign.Build(set, p.fn)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := lagrange.Solve(m, lagrange.Config{})
				st := res.Solution.Lengths(m.Set)
				b.ReportMetric(st.StdDev, "lenStdDev")
				b.ReportMetric(float64(st.Total), "lenTotal")
			}
		})
	}
}

func BenchmarkAblationTieBreak(b *testing.B) {
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			m := benchModel(b, 400, 92)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := lagrange.Solve(m, lagrange.Config{DisableSameNetTieBreak: disable})
				b.ReportMetric(res.Solution.Objective, "objective")
			}
		})
	}
}

func BenchmarkAblationAlpha(b *testing.B) {
	for _, alpha := range []float64{0.5, 0.8, 0.95, 1.0} {
		b.Run(fmt.Sprintf("alpha=%.2f", alpha), func(b *testing.B) {
			m := benchModel(b, 400, 93)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := lagrange.Solve(m, lagrange.Config{Alpha: alpha})
				b.ReportMetric(float64(res.Iterations), "iterations")
				b.ReportMetric(res.Solution.Objective, "objective")
			}
		})
	}
}

func BenchmarkAblationPostImprove(b *testing.B) {
	for _, skip := range []bool{false, true} {
		name := "on"
		if skip {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			m := benchModel(b, 400, 94)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := lagrange.Solve(m, lagrange.Config{SkipPostImprove: skip})
				b.ReportMetric(res.Solution.Objective, "objective")
			}
		})
	}
}

// --- Parallel pipeline: sequential-vs-parallel pairs -------------------
//
// Each family runs the identical workload at worker counts 1/2/4/8, so
// `go test -bench Workers` prints the speedup ladder directly. Results are
// byte-identical across worker counts (see internal/parallel); only the
// wall clock changes.

var benchWorkerCounts = []int{1, 2, 4, 8}

func BenchmarkPinOptWorkers(b *testing.B) {
	d, err := synth.Generate(benchLargeSpec)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, _, err := core.OptimizePinAccess(d, core.Options{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Objective, "objective")
			}
		})
	}
}

func BenchmarkIntervalGenerationWorkers(b *testing.B) {
	d, err := synth.Generate(synth.SweepSpec(3000, 7))
	if err != nil {
		b.Fatal(err)
	}
	idx := d.BuildTrackIndex()
	ids := make([]int, len(d.Pins))
	for i := range ids {
		ids[i] = i
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pinaccess.GenerateWithOptions(d, idx, ids, pinaccess.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkConflictDetectionWorkers(b *testing.B) {
	d, err := synth.Generate(synth.SweepSpec(3000, 7))
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, len(d.Pins))
	for i := range ids {
		ids[i] = i
	}
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), ids)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				conflict.DetectWorkers(set.Intervals, w)
			}
		})
	}
}

func BenchmarkLagrangeWorkers(b *testing.B) {
	m := benchModel(b, 3000, 77)
	for _, w := range benchWorkerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := lagrange.Solve(m, lagrange.Config{Workers: w})
				b.ReportMetric(res.Solution.Objective, "objective")
			}
		})
	}
}

// --- Micro-benchmarks of the core kernels -----------------------------

func BenchmarkIntervalGeneration(b *testing.B) {
	d, err := synth.Generate(synth.SweepSpec(800, 7))
	if err != nil {
		b.Fatal(err)
	}
	idx := d.BuildTrackIndex()
	ids := make([]int, len(d.Pins))
	for i := range ids {
		ids[i] = i
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pinaccess.Generate(d, idx, ids); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkConflictDetection(b *testing.B) {
	d, err := synth.Generate(synth.SweepSpec(800, 7))
	if err != nil {
		b.Fatal(err)
	}
	ids := make([]int, len(d.Pins))
	for i := range ids {
		ids[i] = i
	}
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), ids)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conflict.Detect(set.Intervals)
	}
}

func BenchmarkSimplex(b *testing.B) {
	m := benchModel(b, 200, 7)
	p := m.BuildILP()
	relax := lp.NewProblem(p.NumVars)
	copy(relax.Objective, p.Objective)
	relax.Constraints = p.Constraints
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol := lp.Solve(relax)
		if sol.Status != lp.Optimal {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

func BenchmarkPanelPinOpt(b *testing.B) {
	d := benchDesign(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.OptimizePinAccess(d, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCutMaskAnalysis(b *testing.B) {
	d := benchDesign(b)
	g := grid.New(d)
	res := router.New(d, g, router.Config{}).Run()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := cutmask.Analyze(d, g, res, cutmask.Params{})
		b.ReportMetric(float64(rep.MaskComplexity()), "cutShapes")
	}
}

// --- Incremental (ECO) re-optimization ---------------------------------
//
// BenchmarkIncremental pairs a cold full run with a Rerun after a
// single-pin edit on the 32-panel large circuit: the incremental path
// recomputes only the panels the edit dirtied and splices the previous
// artifacts for the rest (byte-identical results; see internal/core
// rerun tests). `go test -bench Incremental -benchtime 3x .` regenerates
// BENCH_incremental.json / results/incremental_speedup.txt.

// benchEditOnePin returns a copy of d with one pin moved one column, the
// canonical single-pin ECO edit. It scans for a pin whose move keeps the
// design valid.
func benchEditOnePin(b *testing.B, d *design.Design) *design.Design {
	b.Helper()
	for i := range d.Pins {
		edited := *d
		edited.Pins = append([]design.Pin(nil), d.Pins...)
		p := &edited.Pins[i]
		p.Shape.X0++
		p.Shape.X1++
		if p.Shape.X1 < edited.Width && edited.Validate() == nil {
			return &edited
		}
	}
	b.Fatal("no movable pin")
	return nil
}

func BenchmarkIncrementalRerun(b *testing.B) {
	d, err := synth.Generate(benchLargeSpec)
	if err != nil {
		b.Fatal(err)
	}
	prev, err := core.Run(d, core.Options{Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	edited := benchEditOnePin(b, d)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Run(edited, core.Options{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.PinOpt.Objective, "objective")
		}
	})
	for _, mode := range []core.RerunMode{core.RerunStrict, core.RerunEcoFast} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := core.Rerun(prev, edited, core.Options{Workers: 8, RerunMode: mode})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.PinOpt.Objective, "objective")
				b.ReportMetric(float64(res.Incremental.Reused), "reusedPanels")
				b.ReportMetric(float64(res.Incremental.NetsSpliced), "netsSpliced")
				b.ReportMetric(float64(res.Incremental.NetsWarm), "netsWarm")
				b.ReportMetric(float64(res.Incremental.NetsRerouted), "netsRerouted")
			}
		})
	}
}

// --- Cross-engine comparison ------------------------------------------
//
// BenchmarkRuleEngines routes benchlarge under each multi-patterning
// rule engine and reports routing quality next to the engine's mask
// decomposition, so the cost of swapping sadp for lele or tpl rules is
// one bench run away. `go test -run '^$' -bench RuleEngines
// -benchtime 1x .` regenerates BENCH_rule_engines.json. The timed
// section is the full CPR flow; mask analysis runs off the clock.

func BenchmarkRuleEngines(b *testing.B) {
	for _, engine := range []string{tech.EngineSADP, tech.EngineLELE, tech.EngineTPL} {
		b.Run(engine, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				d, err := synth.Generate(benchLargeSpec)
				if err != nil {
					b.Fatal(err)
				}
				tc := *d.Tech
				tc.Patterning.Engine = engine
				d.Tech = &tc
				b.StartTimer()
				res, err := core.Run(d, core.Options{Workers: 8})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				g := grid.New(d)
				mask := tech.RulesFor(d.Tech).AnalyzeMask(cutmask.Segments(g, res.Router), d.Width, d.Height)
				if engine == tech.EngineTPL && mask.Uncolorable != 0 {
					b.Fatalf("tpl left %d uncolorable segments on benchlarge", mask.Uncolorable)
				}
				b.ReportMetric(res.PinOpt.Objective, "objective")
				b.ReportMetric(res.Metrics.RoutPct, "rout%")
				b.ReportMetric(float64(res.Metrics.Vias), "vias")
				b.ReportMetric(float64(mask.Stitches), "stitches")
				b.ReportMetric(float64(mask.Uncolorable), "uncolorable")
				b.StartTimer()
			}
		})
	}
}

// benchMultiSpec is the per-tile spec of the multi-region instance:
// three bench-density tiles separated by 300 empty columns, which is
// wider than twice the router's influence margin, so the tiles route as
// three provably independent regions. A single-pin edit dirties one
// tile and a strict rerun splices the other two byte-identically — the
// path benchlarge (one connected region) never exercises.
var benchMultiSpec = synth.Spec{Name: "benchmulti", Nets: 400, Width: 300, Height: 160, Seed: 13}

func BenchmarkIncrementalRerunMultiRegion(b *testing.B) {
	d, err := synth.GenerateMultiRegion(benchMultiSpec, 3, 300)
	if err != nil {
		b.Fatal(err)
	}
	prev, err := core.Run(d, core.Options{Workers: 8})
	if err != nil {
		b.Fatal(err)
	}
	edited := benchEditOnePin(b, d)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Run(edited, core.Options{Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.PinOpt.Objective, "objective")
		}
	})
	b.Run("strict", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := core.Rerun(prev, edited, core.Options{Workers: 8, RerunMode: core.RerunStrict})
			if err != nil {
				b.Fatal(err)
			}
			if res.Incremental.RegionsSpliced == 0 {
				b.Fatal("multi-region edit spliced no regions; tiles are not independent")
			}
			b.ReportMetric(res.PinOpt.Objective, "objective")
			b.ReportMetric(float64(res.Incremental.Regions), "regions")
			b.ReportMetric(float64(res.Incremental.RegionsSpliced), "regionsSpliced")
			b.ReportMetric(float64(res.Incremental.NetsSpliced), "netsSpliced")
			b.ReportMetric(float64(res.Incremental.NetsRerouted), "netsRerouted")
		}
	})
}

// BenchmarkIncrementalPinOpt isolates the optimization phase (the part
// panel artifacts can skip; routing always runs in full): cold per-panel
// optimization vs the same design answered from a warmed panel cache.
func BenchmarkIncrementalPinOpt(b *testing.B) {
	d, err := synth.Generate(benchLargeSpec)
	if err != nil {
		b.Fatal(err)
	}
	edited := benchEditOnePin(b, d)

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := core.OptimizePinAccess(edited, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("incremental", func(b *testing.B) {
		pc := cache.New[*pipeline.PanelArtifact](0)
		if _, _, err := core.OptimizePinAccess(d, core.Options{PanelCache: pc}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, err := core.OptimizePinAccess(edited, core.Options{PanelCache: pc}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
