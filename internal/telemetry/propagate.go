package telemetry

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Cross-node trace propagation (DESIGN.md §4j): when a job's block fetch
// goes to a peer daemon, the requester sends its SpanContext in the
// TraceHeader; the serving node records the foreign trace id in its
// flight recorder and answers with a SpanHeader describing the work it
// did, which the requester adopts as a child span. The result is one
// stitched trace — a shared trace id with parent links across the peer
// hop — assembled without any clock-synchronization assumption: only the
// remote *duration* crosses the wire, anchored on the requester's clock.

// TraceHeader carries the requester's serialized SpanContext
// ("<trace-id>/<span-id>") on outbound peer block fetches.
const TraceHeader = "X-CPR-Trace"

// SpanHeader carries the serving node's RemoteSpan (JSON) back to the
// requester on a successful block response.
const SpanHeader = "X-CPR-Span"

// SpanContext is the serializable identity of one span within one trace:
// everything a remote node needs to attach its work to the caller's
// trace.
type SpanContext struct {
	TraceID string `json:"trace_id"`
	SpanID  int    `json:"span_id"`
}

// Valid reports whether the context identifies a real span.
func (c SpanContext) Valid() bool {
	return c.TraceID != "" && c.SpanID > 0
}

// String encodes the context in the wire form "<trace-id>/<span-id>".
func (c SpanContext) String() string {
	return c.TraceID + "/" + strconv.Itoa(c.SpanID)
}

// ParseSpanContext decodes the wire form produced by String. It returns
// ok=false for anything malformed; callers treat that as "no context".
func ParseSpanContext(s string) (SpanContext, bool) {
	tid, sid, found := strings.Cut(s, "/")
	if !found || tid == "" {
		return SpanContext{}, false
	}
	id, err := strconv.Atoi(sid)
	if err != nil || id <= 0 {
		return SpanContext{}, false
	}
	return SpanContext{TraceID: tid, SpanID: id}, true
}

// traceIDCounter disambiguates tracers created within the same
// nanosecond (common in tests).
var traceIDCounter atomic.Uint64

// newTraceID returns a process-unique hex trace identifier.
func newTraceID() string {
	return fmt.Sprintf("%016x-%08x", uint64(time.Now().UnixNano()), traceIDCounter.Add(1))
}

// TraceID returns the tracer's trace identifier. Safe on nil (returns "").
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	return t.traceID
}

// SpanContext returns the span's propagation context, or the zero
// (invalid) context on a nil span.
func (s *Span) SpanContext() SpanContext {
	if s == nil || s.tracer == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.tracer.traceID, SpanID: s.ID}
}

// RemoteSpan describes work a remote node performed on the requester's
// behalf. Only a duration crosses the wire — never absolute timestamps —
// so stitched traces don't depend on synchronized clocks.
type RemoteSpan struct {
	Name       string `json:"name"`
	DurationNS int64  `json:"duration_ns"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// EncodeRemoteSpan serializes a RemoteSpan for the SpanHeader.
func EncodeRemoteSpan(r RemoteSpan) string {
	b, err := json.Marshal(r)
	if err != nil {
		return ""
	}
	return string(b)
}

// DecodeRemoteSpan parses a SpanHeader value. ok=false means the header
// was absent or malformed and the fetch span simply gets no remote child.
func DecodeRemoteSpan(s string) (RemoteSpan, bool) {
	if s == "" {
		return RemoteSpan{}, false
	}
	var r RemoteSpan
	if err := json.Unmarshal([]byte(s), &r); err != nil || r.Name == "" {
		return RemoteSpan{}, false
	}
	return r, true
}

// AdoptRemote records a remote node's work as a finished child of s. The
// child is anchored on the local clock: it ends now and starts
// r.DurationNS earlier (clamped to not precede its parent), which keeps
// the stitched trace well-formed under arbitrary clock skew. Safe on nil
// (returns nil).
func (s *Span) AdoptRemote(r RemoteSpan) *Span {
	if s == nil || s.tracer == nil {
		return nil
	}
	t := s.tracer
	dur := time.Duration(r.DurationNS)
	if dur < 0 {
		dur = 0
	}
	start := time.Now().Add(-dur)
	s.mu.Lock()
	if start.Before(s.start) {
		start = s.start
	}
	s.mu.Unlock()
	sp := &Span{
		tracer:   t,
		ParentID: s.ID,
		Name:     r.Name,
		Lane:     s.Lane,
		start:    start,
		end:      start.Add(dur),
	}
	sp.attrs = append(sp.attrs, r.Attrs...)
	sp.attrs = append(sp.attrs, Attr{Key: "remote", Value: true})
	t.mu.Lock()
	sp.ID = len(t.spans) + 1
	t.spans = append(t.spans, sp)
	t.mu.Unlock()
	return sp
}
