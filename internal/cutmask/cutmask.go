// Package cutmask analyzes the SADP cut mask implied by a routing result.
//
// Under self-aligned double patterning, every unidirectional metal
// line-end must be produced by a cut (trim) shape. Cut shapes are
// printable only if they keep a minimum distance from other cuts on the
// same or adjacent tracks — unless they align into a single larger cut,
// which is the standard complexity reduction (cf. the cut mask
// optimization literature the paper builds on: its references [10] and
// [20]).
//
// The paper's §4 notes CPR "is extendable to technology-dependent
// manufacturing constraints, e.g. SAMP with unidirectional routing"; this
// package provides that extension as a post-routing analysis: it extracts
// every line-end cut, merges vertically aligned cuts, and counts residual
// cut conflicts. Routers can be compared on cut mask friendliness the
// same way the paper compares them on vias and wirelength.
package cutmask

import (
	"sort"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/router"
	"cpr/internal/tech"
)

// Params tunes the cut mask rules.
type Params struct {
	// CutSpacing is the minimum free distance (grid cells) between two
	// distinct cuts on the same or adjacent tracks (default 2).
	CutSpacing int
	// MergeTolerance is the maximum x offset at which cuts on adjacent
	// tracks still merge into one cut shape (default 0: exact alignment).
	MergeTolerance int
}

func (p Params) withDefaults() Params {
	if p.CutSpacing == 0 {
		p.CutSpacing = 2
	}
	return p
}

// Cut is one line-end cut location: the first free cell beyond a metal
// strip end on its track.
type Cut struct {
	Layer int
	// Track is the y row for M2 cuts, the x column for M3 cuts.
	Track int
	// Pos is the cell position of the cut along the track direction.
	Pos int
	// NetID is the net whose line-end needs this cut.
	NetID int
}

// Shape is a merged cut mask shape covering one or more aligned cuts.
type Shape struct {
	Layer int
	// Pos is the along-track position shared by the merged cuts.
	Pos int
	// TrackLo and TrackHi bound the merged track range.
	TrackLo, TrackHi int
	// Cuts counts the line-end cuts this shape serves.
	Cuts int
}

// Report is the cut mask analysis of one routing result.
type Report struct {
	// LineEnds counts all metal strip ends (two per strip, minus grid
	// boundary ends, which need no cut).
	LineEnds int
	// Shapes is the merged cut mask, deterministic order.
	Shapes []Shape
	// Conflicts counts pairs of distinct shapes on the same or adjacent
	// tracks closer than CutSpacing along the track direction.
	Conflicts int
}

// MaskComplexity is the number of distinct cut shapes after merging —
// the metric cut mask optimization minimizes.
func (r *Report) MaskComplexity() int { return len(r.Shapes) }

// Analyze extracts and merges the cut mask for all routed nets.
func Analyze(d *design.Design, g *grid.Graph, res *router.Result, params Params) *Report {
	params = params.withDefaults()
	cuts := extractCuts(d, g, res)
	shapes := mergeCuts(cuts, params)
	rep := &Report{LineEnds: len(cuts), Shapes: shapes}
	rep.Conflicts = countConflicts(shapes, params)
	return rep
}

// extractCuts walks every routed net's strips and emits a cut at each
// strip end that is inside the grid (ends flush with the boundary need no
// cut).
func extractCuts(d *design.Design, g *grid.Graph, res *router.Result) []Cut {
	var cuts []Cut
	for netID, nr := range res.Routes {
		if nr == nil || !nr.Routed {
			continue
		}
		m2 := make(map[int][]int)
		m3 := make(map[int][]int)
		for _, id := range nr.Nodes {
			x, y, z := g.Coords(id)
			switch z {
			case tech.M2:
				m2[y] = append(m2[y], x)
			case tech.M3:
				m3[x] = append(m3[x], y)
			}
		}
		ext := d.Tech.LineEndExtension
		emit := func(layer, track int, spans []geom.Interval, limit int) {
			for _, s := range spans {
				if lo := s.Lo - ext - 1; lo >= 0 {
					cuts = append(cuts, Cut{Layer: layer, Track: track, Pos: lo, NetID: netID})
				}
				if hi := s.Hi + ext + 1; hi <= limit-1 {
					cuts = append(cuts, Cut{Layer: layer, Track: track, Pos: hi, NetID: netID})
				}
			}
		}
		for track, cells := range m2 {
			emit(tech.M2, track, cellRuns(cells), d.Width)
		}
		for track, cells := range m3 {
			emit(tech.M3, track, cellRuns(cells), d.Height)
		}
	}
	sort.Slice(cuts, func(a, b int) bool {
		ca, cb := cuts[a], cuts[b]
		if ca.Layer != cb.Layer {
			return ca.Layer < cb.Layer
		}
		if ca.Pos != cb.Pos {
			return ca.Pos < cb.Pos
		}
		if ca.Track != cb.Track {
			return ca.Track < cb.Track
		}
		return ca.NetID < cb.NetID
	})
	return cuts
}

// mergeCuts greedily merges cuts on consecutive tracks whose positions
// match within MergeTolerance into single shapes.
func mergeCuts(cuts []Cut, params Params) []Shape {
	var shapes []Shape
	// Cuts arrive sorted by (layer, pos, track); scan groups with equal
	// layer and pos (within tolerance = 0 for exact merging; tolerance>0
	// approximated by bucketing positions).
	i := 0
	for i < len(cuts) {
		j := i
		for j < len(cuts) &&
			cuts[j].Layer == cuts[i].Layer &&
			cuts[j].Pos-cuts[i].Pos <= params.MergeTolerance {
			j++
		}
		group := append([]Cut(nil), cuts[i:j]...)
		// Dedupe identical (track) entries (several strips can demand
		// the same cut), then merge runs of consecutive tracks.
		sort.Slice(group, func(a, b int) bool { return group[a].Track < group[b].Track })
		var uniq []Cut
		for _, c := range group {
			if len(uniq) == 0 || c.Track != uniq[len(uniq)-1].Track {
				uniq = append(uniq, c)
			}
		}
		group = uniq
		k := 0
		for k < len(group) {
			m := k
			for m+1 < len(group) && group[m+1].Track <= group[m].Track+1 {
				m++
			}
			shapes = append(shapes, Shape{
				Layer:   group[k].Layer,
				Pos:     group[k].Pos,
				TrackLo: group[k].Track,
				TrackHi: group[m].Track,
				Cuts:    m - k + 1,
			})
			k = m + 1
		}
		i = j
	}
	return shapes
}

// countConflicts counts shape pairs on overlapping or adjacent track
// ranges whose positions are closer than CutSpacing.
func countConflicts(shapes []Shape, params Params) int {
	conflicts := 0
	for a := 0; a < len(shapes); a++ {
		for b := a + 1; b < len(shapes); b++ {
			sa, sb := shapes[a], shapes[b]
			if sa.Layer != sb.Layer {
				continue
			}
			dist := sb.Pos - sa.Pos
			if dist < 0 {
				dist = -dist
			}
			if dist == 0 || dist >= params.CutSpacing {
				continue
			}
			// Track adjacency or overlap.
			if sb.TrackLo <= sa.TrackHi+1 && sa.TrackLo <= sb.TrackHi+1 {
				conflicts++
			}
		}
	}
	return conflicts
}

func cellRuns(cells []int) []geom.Interval {
	if len(cells) == 0 {
		return nil
	}
	sort.Ints(cells)
	var out []geom.Interval
	cur := geom.Interval{Lo: cells[0], Hi: cells[0]}
	for _, c := range cells[1:] {
		switch {
		case c == cur.Hi || c == cur.Hi+1:
			if c > cur.Hi {
				cur.Hi = c
			}
		default:
			out = append(out, cur)
			cur = geom.Interval{Lo: c, Hi: c}
		}
	}
	return append(out, cur)
}
