// Package loader type-checks Go packages for the cprlint analyzers
// using only the standard library and the go command.
//
// Target packages are parsed and type-checked from source (analyzers
// need syntax trees with comments); their dependencies are imported
// from compiler export data produced by `go list -deps -export`, the
// same strategy x/tools' unitchecker uses. That keeps a whole-repo lint
// run at parse-and-check cost for the targets only, with the go build
// cache paying for the rest.
//
// For analysistest golden packages the loader supports an overlay root
// (TestdataSrc): an import path that resolves to a directory under the
// overlay is type-checked from source there, shadowing any real package
// of the same path, so golden code can import stub versions of repo
// packages (e.g. a tiny cpr/internal/parallel).
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one source-type-checked package.
type Package struct {
	// PkgPath is the package's import path (for overlay packages, the
	// path relative to the overlay root).
	PkgPath string
	// Dir is the directory the sources were read from.
	Dir string
	// Files is the parsed syntax, comments included, in file-name order.
	Files []*ast.File
	// Types and TypesInfo are the type-checker's results.
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects type-checking problems (empty on success).
	TypeErrors []error
}

// Meta is the subset of `go list -json` output the loader consumes and
// exposes to the engine for its dependency walk.
type Meta struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Imports    []string
	ImportMap  map[string]string
	DepOnly    bool
	Standard   bool
	Module     *struct{ Path string }
}

// InModule reports whether the package belongs to the given module —
// the set the interprocedural engine summarizes from source.
func (m *Meta) InModule(modPath string) bool {
	return !m.Standard && m.Module != nil && m.Module.Path == modPath && modPath != ""
}

// Loader loads and caches packages. It is not safe for concurrent use.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// ModuleDir is where go list runs (the module root for repo loads;
	// any directory inside the module works).
	ModuleDir string
	// TestdataSrc, when non-empty, is an overlay root checked before
	// real packages during import resolution (analysistest's
	// testdata/src directory).
	TestdataSrc string

	meta    map[string]*Meta
	exports types.Importer
	source  map[string]*Package // source-checked packages by PkgPath
}

// New creates a loader rooted at moduleDir.
func New(moduleDir string) *Loader {
	l := &Loader{
		Fset:      token.NewFileSet(),
		ModuleDir: moduleDir,
		meta:      make(map[string]*Meta),
		source:    make(map[string]*Package),
	}
	l.exports = importer.ForCompiler(l.Fset, "gc", l.lookupExport)
	return l
}

// lookupExport feeds compiler export data to the gc importer, running
// go list on demand for paths not yet described.
func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	p, err := l.describe(path)
	if err != nil {
		return nil, err
	}
	if p.Export == "" {
		return nil, fmt.Errorf("loader: no export data for %q", path)
	}
	return os.Open(p.Export)
}

// describe returns go list metadata for one import path, invoking go
// list if the path is unknown.
func (l *Loader) describe(path string) (*Meta, error) {
	if p, ok := l.meta[path]; ok {
		return p, nil
	}
	if _, err := l.goList(path); err != nil {
		return nil, err
	}
	p, ok := l.meta[path]
	if !ok {
		return nil, fmt.Errorf("loader: go list did not describe %q", path)
	}
	return p, nil
}

// Describe exposes go list metadata for the engine's dependency walk.
func (l *Loader) Describe(path string) (*Meta, error) { return l.describe(path) }

// List resolves the patterns to their root packages (transitive
// dependencies are described as a side effect and available via
// Describe) in listing order.
func (l *Loader) List(patterns ...string) ([]*Meta, error) { return l.goList(patterns...) }

// goList runs `go list -deps -export -json` on the patterns, merges all
// described packages into the metadata cache, and returns the roots
// (the non-DepOnly packages of this invocation) in listing order.
func (l *Loader) goList(patterns ...string) ([]*Meta, error) {
	args := []string{
		"list", "-deps", "-export",
		"-json=ImportPath,Name,Dir,Export,GoFiles,Imports,ImportMap,DepOnly,Standard,Module",
		"--",
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.ModuleDir
	// CGO_ENABLED=0 selects the pure-Go file sets everywhere, so source
	// type-checking never meets a cgo-preprocessed file.
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("loader: go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}
	var roots []*Meta
	dec := json.NewDecoder(&stdout)
	for {
		p := new(Meta)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("loader: decoding go list output: %v", err)
		}
		l.meta[p.ImportPath] = p
		if !p.DepOnly {
			roots = append(roots, p)
		}
	}
	return roots, nil
}

// Load type-checks from source every package matching the patterns and
// returns them in listing order. It fails if any target has parse or
// type errors.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	roots, err := l.goList(patterns...)
	if err != nil {
		return nil, err
	}
	pkgs := make([]*Package, 0, len(roots))
	for _, root := range roots {
		pkg, err := l.checkDir(root.Dir, root.ImportPath, root.GoFiles, root.ImportMap)
		if err != nil {
			return nil, err
		}
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("loader: %s: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// LoadPath type-checks the single package named by an import path from
// source — the engine uses it to summarize in-module dependencies that
// are not analysis targets. It fails on parse or type errors, like Load.
func (l *Loader) LoadPath(path string) (*Package, error) {
	if pkg, ok := l.source[path]; ok {
		return pkg, nil
	}
	p, err := l.describe(path)
	if err != nil {
		return nil, err
	}
	pkg, err := l.checkDir(p.Dir, p.ImportPath, p.GoFiles, p.ImportMap)
	if err != nil {
		return nil, err
	}
	if len(pkg.TypeErrors) > 0 {
		return nil, fmt.Errorf("loader: %s: %v", pkg.PkgPath, pkg.TypeErrors[0])
	}
	return pkg, nil
}

// SourcePkg returns the already source-checked package for an import
// path, if this loader has one.
func (l *Loader) SourcePkg(path string) (*Package, bool) {
	pkg, ok := l.source[path]
	return pkg, ok
}

// LoadDir type-checks the package in dir under the given import path,
// resolving imports through the overlay first. It backs analysistest.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("loader: %v", err)
	}
	var files []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, name)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("loader: no Go files in %s", dir)
	}
	sort.Strings(files)
	return l.checkDir(dir, pkgPath, files, nil)
}

// checkDir parses and type-checks one package, caching by import path.
func (l *Loader) checkDir(dir, pkgPath string, fileNames []string, importMap map[string]string) (*Package, error) {
	if pkg, ok := l.source[pkgPath]; ok {
		return pkg, nil
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir}
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("loader: %v", err)
		}
		pkg.Files = append(pkg.Files, f)
	}
	pkg.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	cfg := &types.Config{
		Importer:    &pkgImporter{loader: l, importMap: importMap},
		Sizes:       types.SizesFor("gc", runtime.GOARCH),
		FakeImportC: true,
		Error:       func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := cfg.Check(pkgPath, l.Fset, pkg.Files, pkg.TypesInfo)
	pkg.Types = tpkg
	l.source[pkgPath] = pkg
	return pkg, nil
}

// pkgImporter resolves one package's imports: vendor/module aliasing
// via the package's ImportMap, then the testdata overlay, then compiler
// export data.
type pkgImporter struct {
	loader    *Loader
	importMap map[string]string
}

func (pi *pkgImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := pi.importMap[path]; ok {
		path = mapped
	}
	l := pi.loader
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.TestdataSrc != "" {
		dir := filepath.Join(l.TestdataSrc, filepath.FromSlash(path))
		if hasGoFiles(dir) {
			pkg, err := l.LoadDir(dir, path)
			if err != nil {
				return nil, err
			}
			if len(pkg.TypeErrors) > 0 {
				return nil, fmt.Errorf("overlay package %s: %v", path, pkg.TypeErrors[0])
			}
			return pkg.Types, nil
		}
	}
	// Prefer an already source-checked package: the engine walks
	// dependencies first, so dependents see the same types.Object
	// identities the dependency's own analysis exported facts under.
	if pkg, ok := l.source[path]; ok {
		return pkg.Types, nil
	}
	return l.exports.Import(path)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}
