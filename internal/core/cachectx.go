package core

import (
	"context"

	"cpr/internal/pipeline"
)

// The cache interfaces (PanelCache, RouteCache) are context-free so the
// in-memory levels stay trivial, but the block-backed levels can fall
// through to the peer exchange, whose fetches carry the job's trace and
// event plumbing in the context. These helpers hand the context to
// implementations that accept one (cache.Backed's GetCtx) and fall back
// to the plain Get otherwise, so a peer-served panel shows up in the
// requesting job's stitched trace.

// panelCacheGet consults a panel cache with the caller's context when
// the implementation supports it.
func panelCacheGet(ctx context.Context, c PanelCache, key string) (*pipeline.PanelArtifact, bool) {
	if cc, ok := c.(interface {
		GetCtx(context.Context, string) (*pipeline.PanelArtifact, bool)
	}); ok {
		return cc.GetCtx(ctx, key)
	}
	return c.Get(key)
}

// routeCacheGet consults a route cache with the caller's context when
// the implementation supports it.
func routeCacheGet(ctx context.Context, c RouteCache, key string) (*pipeline.RouteArtifact, bool) {
	if cc, ok := c.(interface {
		GetCtx(context.Context, string) (*pipeline.RouteArtifact, bool)
	}); ok {
		return cc.GetCtx(ctx, key)
	}
	return c.Get(key)
}
