package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Event is one structured observability event: a job lifecycle change, an
// LR iteration, a negotiation round, a cache/exchange outcome, or a span
// boundary. Events carry a bus-scoped sequence number so subscribers can
// resume a stream exactly where a dropped connection left off.
type Event struct {
	// Seq is the bus-wide sequence number (1-based, publish order).
	Seq uint64 `json:"seq"`
	// TimeUnixNano is the publish wall-clock time.
	TimeUnixNano int64 `json:"time_unix_nano"`
	// Job is the job ID the event belongs to, or "" for daemon-level
	// events (admission rejections before an ID exists, block serves).
	Job string `json:"job,omitempty"`
	// Type names the event ("job_started", "lr_iteration",
	// "negotiate_round", "block_fetch", "span_end", ...).
	Type string `json:"type"`
	// Data holds type-specific fields.
	Data map[string]any `json:"data,omitempty"`
}

// busSub is one live subscriber: a buffered channel plus the job filter
// it registered with ("" = all jobs).
type busSub struct {
	job string
	ch  chan Event
}

// EventBus is a bounded, non-blocking fan-out of Events. It doubles as
// the flight recorder: every published event lands in a fixed-size ring
// regardless of subscribers, so `GET /v1/debug/events` and the on-panic
// crash dump work with no tracing or streaming flags set.
//
// The hard contract (DESIGN.md §4j): Publish never blocks. A subscriber
// whose channel is full loses that event and the bus-wide drop counter
// increments; the solver is never slowed by a stalled reader.
type EventBus struct {
	mu      sync.Mutex
	ring    []Event // circular buffer of the most recent events
	start   int     // index of the oldest ring entry
	count   int     // number of valid ring entries
	seq     uint64  // last assigned sequence number
	subs    map[int]*busSub
	nextID  int
	dropped uint64
}

// DefaultEventRing is the flight-recorder ring capacity used when the
// caller passes a non-positive size.
const DefaultEventRing = 4096

// NewEventBus creates a bus whose flight-recorder ring holds up to
// ringCap events (DefaultEventRing if ringCap <= 0).
func NewEventBus(ringCap int) *EventBus {
	if ringCap <= 0 {
		ringCap = DefaultEventRing
	}
	return &EventBus{
		ring: make([]Event, 0, ringCap),
		subs: map[int]*busSub{},
	}
}

// Publish records an event in the ring and fans it out to matching
// subscribers without ever blocking: a full subscriber channel drops the
// event and bumps the drop counter. Safe on nil (no-op), so callers need
// no conditionals when event streaming is disabled.
func (b *EventBus) Publish(job, typ string, data map[string]any) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	ev := Event{
		Seq:          b.seq,
		TimeUnixNano: time.Now().UnixNano(),
		Job:          job,
		Type:         typ,
		Data:         data,
	}
	if len(b.ring) < cap(b.ring) {
		b.ring = append(b.ring, ev)
		b.count++
	} else {
		b.ring[b.start] = ev
		b.start = (b.start + 1) % len(b.ring)
	}
	for _, sub := range b.subs {
		if sub.job != "" && sub.job != job {
			continue
		}
		select {
		case sub.ch <- ev:
		default:
			b.dropped++
		}
	}
	b.mu.Unlock()
}

// Subscribe registers a live subscriber for one job ("" = every job) and
// atomically replays the ring events for that job with Seq > afterSeq, so
// a reconnecting client (SSE Last-Event-ID) misses nothing that is still
// in the recorder. buf bounds the live channel; a subscriber that falls
// more than buf events behind starts losing events (see Publish). cancel
// unregisters the subscriber and closes ch; it is idempotent.
func (b *EventBus) Subscribe(job string, afterSeq uint64, buf int) (replay []Event, ch <-chan Event, cancel func()) {
	if buf < 1 {
		buf = 1
	}
	c := make(chan Event, buf)
	if b == nil {
		close(c)
		return nil, c, func() {}
	}
	b.mu.Lock()
	for i := 0; i < b.count; i++ {
		ev := b.ring[(b.start+i)%len(b.ring)]
		if ev.Seq <= afterSeq {
			continue
		}
		if job != "" && ev.Job != job {
			continue
		}
		replay = append(replay, ev)
	}
	id := b.nextID
	b.nextID++
	sub := &busSub{job: job, ch: c}
	b.subs[id] = sub
	b.mu.Unlock()

	cancel = func() {
		b.mu.Lock()
		if _, ok := b.subs[id]; ok {
			delete(b.subs, id)
			// Close under b.mu: every send to c also holds b.mu, so the
			// close cannot race a send.
			close(c)
		}
		b.mu.Unlock()
	}
	return replay, c, cancel
}

// Snapshot returns the flight-recorder ring contents oldest-first. Safe
// on nil (returns nil).
func (b *EventBus) Snapshot() []Event {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Event, 0, b.count)
	for i := 0; i < b.count; i++ {
		out = append(out, b.ring[(b.start+i)%len(b.ring)])
	}
	return out
}

// Dropped returns the number of events lost to full subscriber channels
// since the bus was created. Safe on nil (returns 0).
func (b *EventBus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// eventDump is the JSON envelope written by WriteJSON: the flight
// recorder's dump format, shared by `GET /v1/debug/events` and the
// on-panic crash file.
type eventDump struct {
	Format  string  `json:"format"`
	Dropped uint64  `json:"dropped"`
	Events  []Event `json:"events"`
}

// WriteJSON dumps the flight-recorder ring (oldest-first) plus the drop
// counter as indented JSON. A nil bus writes an empty dump.
func (b *EventBus) WriteJSON(w io.Writer) error {
	events := b.Snapshot()
	if events == nil {
		events = []Event{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(eventDump{Format: "cpr-events-v1", Dropped: b.Dropped(), Events: events})
}

// Emitter binds an EventBus to one job ID so instrumented code can emit
// events without threading the job identity everywhere. A nil Emitter is
// fully usable (Emit is a no-op), mirroring the nil-Tracer convention.
type Emitter struct {
	bus *EventBus
	job string
}

// NewEmitter returns an emitter publishing to bus under the given job
// ID, or nil when bus is nil.
func NewEmitter(bus *EventBus, job string) *Emitter {
	if bus == nil {
		return nil
	}
	return &Emitter{bus: bus, job: job}
}

// Emit publishes one event. Safe on nil.
func (e *Emitter) Emit(typ string, data map[string]any) {
	if e == nil {
		return
	}
	e.bus.Publish(e.job, typ, data)
}
