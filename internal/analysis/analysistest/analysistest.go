// Package analysistest runs an analyzer over golden packages under a
// testdata/src tree and compares its diagnostics against // want
// comments, mirroring golang.org/x/tools/go/analysis/analysistest.
//
// A golden file marks each expected finding on its own line:
//
//	for k := range m { // want `iterates over map`
//
// The string after want is a regular expression (quoted with " or `)
// that must match the diagnostic message reported on that line; several
// want patterns on one line expect several diagnostics. Suppression
// filtering (//cprlint: comments) runs before matching, exactly as in
// cmd/cprlint, so golden packages can also pin the suppression
// behaviour: a suppressed site simply carries no want comment.
package analysistest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cpr/internal/analysis"
	"cpr/internal/analysis/engine"
	"cpr/internal/analysis/loader"
)

var wantRe = regexp.MustCompile("// want (.*)$")

// expectation is one want comment.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads each named package from testdata/src, applies the analyzer,
// filters suppressed diagnostics, and checks the result against the
// packages' want comments. testdata is the path to the testdata
// directory, usually "testdata" relative to the test.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	moduleDir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	src, err := filepath.Abs(filepath.Join(testdata, "src"))
	if err != nil {
		t.Fatal(err)
	}
	l := loader.New(moduleDir)
	l.TestdataSrc = src
	store := analysis.NewFactStore()

	for _, pkgPath := range pkgPaths {
		dir := filepath.Join(src, filepath.FromSlash(pkgPath))
		pkg, err := l.LoadDir(dir, pkgPath)
		if err != nil {
			t.Errorf("%s: %v", pkgPath, err)
			continue
		}
		if len(pkg.TypeErrors) > 0 {
			t.Errorf("%s: type errors: %v", pkgPath, pkg.TypeErrors)
			continue
		}

		// RunOverlay summarizes the golden package's source-loaded
		// imports first (fact producers from the analyzer's Requires
		// closure), so interprocedural golden tests see cross-package
		// facts exactly as a real engine run would.
		byName, err := engine.RunOverlay(l, store, pkg, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("%s: analyzer %s: %v", pkgPath, a.Name, err)
			continue
		}
		diags := analysis.Filter(l.Fset, pkg.Files, a, byName[a.Name])

		expects, err := collectExpectations(dir)
		if err != nil {
			t.Errorf("%s: %v", pkgPath, err)
			continue
		}
		check(t, l.Fset, pkgPath, diags, expects)
	}
}

// collectExpectations scans every Go file in dir for want comments.
func collectExpectations(dir string) ([]*expectation, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		for i, lineText := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(lineText)
			if m == nil {
				continue
			}
			patterns, err := parsePatterns(m[1])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", path, i+1, err)
			}
			for _, p := range patterns {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern: %v", path, i+1, err)
				}
				out = append(out, &expectation{file: path, line: i + 1, pattern: re})
			}
		}
	}
	return out, nil
}

// parsePatterns splits a want payload into its quoted regexps. Both
// double quotes (with escapes) and backquotes are accepted.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, unq)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern %q", s)
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			return nil, fmt.Errorf("want patterns must be quoted, got %q", s)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("want comment without patterns")
	}
	return out, nil
}

// check matches diagnostics against expectations one-to-one.
func check(t *testing.T, fset *token.FileSet, pkgPath string, diags []analysis.Diagnostic, expects []*expectation) {
	t.Helper()
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		found := false
		for _, e := range expects {
			if e.matched || e.line != pos.Line || !sameFile(e.file, pos.Filename) {
				continue
			}
			if e.pattern.MatchString(d.Message) {
				e.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic at %s:%d: %s",
				pkgPath, filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s: no diagnostic at %s:%d matching %q",
				pkgPath, filepath.Base(e.file), e.line, e.pattern)
		}
	}
}

func sameFile(a, b string) bool {
	if a == b {
		return true
	}
	ra, err1 := filepath.Abs(a)
	rb, err2 := filepath.Abs(b)
	return err1 == nil && err2 == nil && ra == rb
}
