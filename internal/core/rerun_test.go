package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"cpr/internal/cache"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/geom"
	"cpr/internal/lagrange"
	"cpr/internal/pipeline"
	"cpr/internal/synth"
	"cpr/internal/tech"
)

// dumpRunResult serializes everything observable about a run — the
// design bytes, the pin-opt report, every route, and the metrics — with
// the wall-clock fields (Elapsed, CPUSeconds) and the provenance-only
// Incremental field excluded. Byte equality of dumps is the incremental
// invariant: Rerun must be indistinguishable from a cold run.
func dumpRunResult(t *testing.T, d *design.Design, res *RunResult) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := designio.Write(&b, d); err != nil {
		t.Fatal(err)
	}
	if res.PinOpt != nil {
		fmt.Fprintf(&b, "pinopt %+v\n", reportFingerprint(res.PinOpt))
	}
	r := res.Router
	fmt.Fprintf(&b, "routed=%d vias=%d wl=%d initcong=%d iters=%d congunrouted=%d drcunrouted=%d\n",
		r.RoutedNets, r.Vias, r.Wirelength, r.InitialCongested,
		r.NegotiationIters, r.CongestionUnrouted, r.DRCUnrouted)
	for netID, nr := range r.Routes {
		if nr == nil {
			continue
		}
		fmt.Fprintf(&b, "net %d routed=%v fail=%q nodes %v edges %v virtual %v\n",
			netID, nr.Routed, nr.FailReason, nr.Nodes, nr.Edges, nr.Virtual)
	}
	m := res.Metrics.ZeroTimes()
	fmt.Fprintf(&b, "metrics %+v\n", m)
	return b.Bytes()
}

// rebuild reconstructs a design from an edited pin and blockage list,
// renumbering pin IDs and net membership the way a fresh ECO netlist
// would. Nets that lost their last pin are dropped.
func rebuild(t *testing.T, d *design.Design, pins []design.Pin, blockages []design.Blockage) *design.Design {
	t.Helper()
	nd := design.New(d.Name, d.Width, d.Height, d.Tech)
	netMap := make(map[int]int)
	for _, p := range pins {
		nid, ok := netMap[p.NetID]
		if !ok {
			nid = nd.AddNet(d.Nets[p.NetID].Name)
			netMap[p.NetID] = nid
		}
		nd.AddPin(p.Name, nid, p.Shape)
	}
	nd.Blockages = append([]design.Blockage(nil), blockages...)
	return nd
}

// editDesign applies one random validity-preserving edit: move a pin,
// delete a pin, add a pin, or toggle a blockage. It retries until the
// edited design validates.
func editDesign(t *testing.T, d *design.Design, rng *rand.Rand) *design.Design {
	t.Helper()
	for attempt := 0; attempt < 200; attempt++ {
		pins := append([]design.Pin(nil), d.Pins...)
		blockages := append([]design.Blockage(nil), d.Blockages...)
		switch rng.Intn(4) {
		case 0: // move a pin in x
			if len(pins) == 0 {
				continue
			}
			p := &pins[rng.Intn(len(pins))]
			dx := 1 + rng.Intn(3)
			if rng.Intn(2) == 0 {
				dx = -dx
			}
			p.Shape = geom.MakeRect(p.Shape.X0+dx, p.Shape.Y0, p.Shape.X1+dx, p.Shape.Y1)
		case 1: // delete a pin (keep its net non-empty)
			if len(pins) == 0 {
				continue
			}
			i := rng.Intn(len(pins))
			victim := pins[i]
			siblings := 0
			for _, p := range pins {
				if p.NetID == victim.NetID {
					siblings++
				}
			}
			if siblings < 3 {
				continue // keep the net routable (>= 2 pins)
			}
			pins = append(pins[:i], pins[i+1:]...)
		case 2: // add a pin to an existing net
			if len(d.Nets) == 0 {
				continue
			}
			net := rng.Intn(len(d.Nets))
			x, y := rng.Intn(d.Width), rng.Intn(d.Height)
			pins = append(pins, design.Pin{
				Name:  fmt.Sprintf("eco_%d_%d", attempt, len(pins)),
				NetID: net,
				Shape: geom.MakeRect(x, y, x, y),
			})
		default: // toggle a blockage
			if len(blockages) > 0 && rng.Intn(2) == 0 {
				i := rng.Intn(len(blockages))
				blockages = append(blockages[:i], blockages[i+1:]...)
			} else {
				x, y := rng.Intn(d.Width-3), rng.Intn(d.Height)
				blockages = append(blockages, design.Blockage{
					Layer: tech.M2,
					Shape: geom.MakeRect(x, y, x+2, y),
				})
			}
		}
		nd := rebuild(t, d, pins, blockages)
		if nd.Validate() == nil {
			return nd
		}
	}
	t.Fatal("could not produce a valid random edit in 200 attempts")
	return nil
}

// TestRerunByteIdenticalRandomEdits is the incremental invariant as a
// property test: over a sequence of random ECO edits (pin moves, adds,
// deletes, blockage toggles), Rerun against the previous result must be
// byte-identical to a cold run of the edited design, for every worker
// count.
func TestRerunByteIdenticalRandomEdits(t *testing.T) {
	specs := []synth.Spec{
		{Name: "eco-a", Nets: 120, Width: 140, Height: 60, Seed: 11},
		{Name: "eco-b", Nets: 90, Width: 120, Height: 40, Seed: 22, BlockageFraction: 0.04},
	}
	const editsPerSpec = 4
	for _, spec := range specs {
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(spec.Seed))
			d := mustGenerate(t, spec)
			prev, err := Run(d, Options{})
			if err != nil {
				t.Fatal(err)
			}
			reusedTotal := 0
			for step := 0; step < editsPerSpec; step++ {
				d = editDesign(t, d, rng)
				cold, err := Run(d, Options{})
				if err != nil {
					t.Fatalf("step %d: cold run: %v", step, err)
				}
				coldDump := dumpRunResult(t, d, cold)
				for _, workers := range determinismWorkers {
					inc, err := Rerun(prev, d, Options{Workers: workers})
					if err != nil {
						t.Fatalf("step %d workers=%d: rerun: %v", step, workers, err)
					}
					if inc.Incremental == nil {
						t.Fatalf("step %d workers=%d: Rerun returned no incremental stats", step, workers)
					}
					if got := dumpRunResult(t, d, inc); !bytes.Equal(got, coldDump) {
						t.Fatalf("step %d workers=%d: rerun output differs from cold run (reused %d/%d panels)",
							step, workers, inc.Incremental.Reused, inc.Incremental.Panels)
					}
					reusedTotal += inc.Incremental.Reused
				}
				prev = cold
			}
			if reusedTotal == 0 {
				t.Error("no panel was ever reused across the edit sequence; incremental path is inert")
			}
		})
	}
}

// TestRerunRecomputesOnlyDirtyPanels pins down the reuse granularity on
// a >= 16-panel design: after a single-pin move inside one panel, Rerun
// must recompute only the panels reachable from that edit and the panel
// cache must answer every other panel. The hit counters of the panel
// cache are the assertion, per the two-level cache contract.
func TestRerunRecomputesOnlyDirtyPanels(t *testing.T) {
	spec := synth.Spec{Name: "eco-wide", Nets: 260, Width: 150, Height: 170, Seed: 33}
	d := mustGenerate(t, spec)
	if got := d.NumPanels(); got < 16 {
		t.Fatalf("design has %d panels, want >= 16", got)
	}

	pc := cache.New[*pipeline.PanelArtifact](4096)
	prev, err := Run(d, Options{PanelCache: pc})
	if err != nil {
		t.Fatal(err)
	}
	if prev.Incremental == nil || prev.Incremental.Reused != 0 {
		t.Fatalf("cold run reported reuse: %+v", prev.Incremental)
	}
	nonEmpty := prev.Incremental.Panels

	// Move one pin by one site within its own panel.
	pins := append([]design.Pin(nil), d.Pins...)
	var edited *design.Design
	var editedPanel int
	rng := rand.New(rand.NewSource(7))
	for attempt := 0; ; attempt++ {
		if attempt >= 500 {
			t.Fatal("could not find a movable pin")
		}
		i := rng.Intn(len(pins))
		trial := append([]design.Pin(nil), pins...)
		p := &trial[i]
		p.Shape = geom.MakeRect(p.Shape.X0+1, p.Shape.Y0, p.Shape.X1+1, p.Shape.Y1)
		nd := rebuild(t, d, trial, d.Blockages)
		if nd.Validate() == nil {
			edited = nd
			editedPanel = d.Tech.PanelOfTrack(p.Shape.Y0)
			break
		}
	}

	before := pc.Stats()
	res, err := Rerun(prev, edited, Options{PanelCache: pc})
	if err != nil {
		t.Fatal(err)
	}
	inc := res.Incremental
	if inc == nil {
		t.Fatal("no incremental stats")
	}
	// The edited pin dirties its own panel; because its net's bounding
	// box may have moved, every panel that net touches is conservatively
	// dirty too. A single-pin move must never dirty more than a handful
	// of panels on a 17-panel design.
	if len(inc.Recomputed) == 0 || len(inc.Recomputed) > 4 {
		t.Fatalf("recomputed panels = %v, want 1..4 (edit in panel %d)", inc.Recomputed, editedPanel)
	}
	found := false
	for _, p := range inc.Recomputed {
		if p == editedPanel {
			found = true
		}
	}
	if !found {
		t.Errorf("recomputed %v does not include the edited panel %d", inc.Recomputed, editedPanel)
	}
	if inc.Reused+len(inc.Recomputed) != inc.Panels {
		t.Errorf("reused %d + recomputed %d != panels %d", inc.Reused, len(inc.Recomputed), inc.Panels)
	}
	if inc.Reused < nonEmpty-4 {
		t.Errorf("reused %d of %d panels, want at least %d", inc.Reused, inc.Panels, nonEmpty-4)
	}
	// Panel-cache accounting: the cache is consulted before the previous
	// result's artifacts, so every reused panel is a cache hit and every
	// recomputed panel a miss.
	after := pc.Stats()
	if hits := after.Hits - before.Hits; hits != int64(inc.Reused) {
		t.Errorf("panel cache hits = %d, want %d (one per reused panel)", hits, inc.Reused)
	}
	if misses := after.Misses - before.Misses; misses != int64(len(inc.Recomputed)) {
		t.Errorf("panel cache misses = %d, want %d (one per recomputed panel)", misses, len(inc.Recomputed))
	}

	// And the spliced result must still be byte-identical to cold.
	cold, err := Run(edited, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dumpRunResult(t, edited, res), dumpRunResult(t, edited, cold)) {
		t.Error("incremental result differs from cold run")
	}

	// A second rerun of the same edited design against the ORIGINAL
	// result must now answer the recomputed panels from the panel cache:
	// everything reused, nothing recomputed.
	res2, err := Rerun(prev, edited, Options{PanelCache: pc})
	if err != nil {
		t.Fatal(err)
	}
	if inc2 := res2.Incremental; inc2 == nil || len(inc2.Recomputed) != 0 || inc2.Reused != inc.Panels {
		t.Errorf("second rerun stats = %+v, want all %d panels reused", res2.Incremental, inc.Panels)
	}
}

// TestRerunNeighborPanelDirtying covers the cross-panel input: a net
// with pins in two panels couples them through the net bounding box, so
// editing the net's pin in one panel must also recompute the neighbor
// panel even though no shape there changed.
func TestRerunNeighborPanelDirtying(t *testing.T) {
	build := func(x0 int) *design.Design {
		d := design.New("neighbor", 60, 30, tech.Default())
		span := d.AddNet("span")
		d.AddPin("span_a", span, geom.MakeRect(x0, 2, x0, 2))   // panel 0
		d.AddPin("span_b", span, geom.MakeRect(40, 12, 40, 12)) // panel 1
		local := d.AddNet("local")
		d.AddPin("local_a", local, geom.MakeRect(10, 22, 10, 22)) // panel 2
		d.AddPin("local_b", local, geom.MakeRect(20, 24, 20, 24)) // panel 2
		if err := d.Validate(); err != nil {
			t.Fatal(err)
		}
		return d
	}
	base := build(8)
	edited := build(5) // span net's panel-0 pin moved -> its bbox changed

	prev, err := Run(base, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rerun(prev, edited, Options{})
	if err != nil {
		t.Fatal(err)
	}
	inc := res.Incremental
	if inc == nil {
		t.Fatal("no incremental stats")
	}
	want := map[int]bool{0: true, 1: true}
	got := map[int]bool{}
	for _, p := range inc.Recomputed {
		got[p] = true
	}
	if !got[0] || !got[1] {
		t.Errorf("recomputed %v, want panels 0 and 1 (bbox-coupled)", inc.Recomputed)
	}
	if got[2] {
		t.Errorf("panel 2 recomputed despite being untouched: %v", inc.Recomputed)
	}
	for p := range got {
		if !want[p] && p != 2 {
			t.Errorf("unexpected recomputed panel %d", p)
		}
	}

	cold, err := Run(edited, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dumpRunResult(t, edited, res), dumpRunResult(t, edited, cold)) {
		t.Error("incremental result differs from cold run")
	}
}

// TestRerunFallsBackOnOptionChanges: changing a result-affecting solver
// option invalidates every panel (fingerprint mismatch), so Rerun
// degrades to a full cold run rather than splicing stale artifacts.
func TestRerunFallsBackOnOptionChanges(t *testing.T) {
	d := mustGenerate(t, synth.Spec{Name: "eco-opt", Nets: 60, Width: 100, Height: 40, Seed: 44})
	prev, err := Run(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Rerun(prev, d, Options{LR: lagrange.Config{MaxIterations: 400}})
	if err != nil {
		t.Fatal(err)
	}
	if inc := res.Incremental; inc != nil && inc.Reused != 0 {
		t.Errorf("reused %d panels across a solver-option change", inc.Reused)
	}
	cold, err := Run(d, Options{LR: lagrange.Config{MaxIterations: 400}})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dumpRunResult(t, d, res), dumpRunResult(t, d, cold)) {
		t.Error("fallback rerun differs from cold run")
	}
}

// TestPanelWorkerSplit is the regression test for worker
// oversubscription: the outer (panel) and inner (per-stage) splits must
// never multiply out beyond the worker budget. The previous
// ceil(workers/panels) inner could reach panels*inner > workers whenever
// 1 < panels < workers (e.g. 3 panels x ceil(8/3)=3 -> 9 goroutines on
// a budget of 8).
func TestPanelWorkerSplit(t *testing.T) {
	for workers := 1; workers <= 24; workers++ {
		for panels := 0; panels <= 30; panels++ {
			outer, inner := panelWorkerSplit(workers, panels)
			if panels == 0 {
				if outer != 0 {
					t.Fatalf("workers=%d panels=0: outer=%d, want 0", workers, outer)
				}
				continue
			}
			if outer < 1 || inner < 1 {
				t.Fatalf("workers=%d panels=%d: outer=%d inner=%d, want >= 1", workers, panels, outer, inner)
			}
			if outer > panels {
				t.Fatalf("workers=%d panels=%d: outer=%d exceeds panel count", workers, panels, outer)
			}
			if outer*inner > workers {
				t.Fatalf("workers=%d panels=%d: outer*inner=%d oversubscribes the budget",
					workers, panels, outer*inner)
			}
		}
	}
	// The paper-motivated shape: many workers, few panels. All budget
	// should reach the panels' inner stages without oversubscribing.
	if outer, inner := panelWorkerSplit(8, 3); outer != 3 || inner != 2 {
		t.Errorf("split(8,3) = (%d,%d), want (3,2)", outer, inner)
	}
	if outer, inner := panelWorkerSplit(8, 20); outer != 8 || inner != 1 {
		t.Errorf("split(8,20) = (%d,%d), want (8,1)", outer, inner)
	}
	if outer, inner := panelWorkerSplit(1, 5); outer != 1 || inner != 1 {
		t.Errorf("split(1,5) = (%d,%d), want (1,1)", outer, inner)
	}
}
