package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/lagrange"
	"cpr/internal/pipeline"
	"cpr/internal/synth"
)

func testDesign(t *testing.T) *design.Design {
	t.Helper()
	d, err := synth.Generate(synth.Spec{Name: "jobs-test", Nets: 10, Width: 60, Height: 20, Seed: 1})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return d
}

// optsN returns options whose fingerprint differs per n, to mint
// distinct cache keys over one shared design.
func optsN(n int) core.Options {
	return core.Options{LR: lagrange.Config{MaxIterations: n}}
}

func waitTerminal(t *testing.T, j *Job) Snapshot {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := j.Wait(ctx); err != nil {
		t.Fatalf("job %s did not finish: %v", j.ID, err)
	}
	return j.Snapshot()
}

func TestSubmitRunsToDone(t *testing.T) {
	var runs atomic.Int64
	m := New(Config{
		MaxConcurrent: 2,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			runs.Add(1)
			return &core.RunResult{}, nil
		},
	}, NewResultCache(16, 0, 0))
	d := testDesign(t)

	job, err := m.Submit(d, core.Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitTerminal(t, job)
	if snap.State != StateDone || snap.Cached || snap.Result == nil {
		t.Fatalf("snapshot = %+v, want done uncached with result", snap)
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1", runs.Load())
	}
	st := m.Stats()
	if st.ByState["done"] != 1 {
		t.Fatalf("stats = %+v, want 1 done", st.ByState)
	}
	if st.Stages["run"].Count != 1 || st.Stages["queue_wait"].Count != 1 {
		t.Fatalf("stage aggregates missing: %+v", st.Stages)
	}
}

func TestCacheHitOnIdenticalResubmission(t *testing.T) {
	var runs atomic.Int64
	m := New(Config{
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			runs.Add(1)
			return &core.RunResult{}, nil
		},
	}, NewResultCache(16, 0, 0))
	d := testDesign(t)

	first, err := m.Submit(d, core.Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	fs := waitTerminal(t, first)

	second, err := m.Submit(d, core.Options{})
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	ss := second.Snapshot()
	if ss.State != StateDone || !ss.Cached {
		t.Fatalf("resubmission = %+v, want immediately done from cache", ss)
	}
	if ss.ID == fs.ID {
		t.Fatal("cached job reused the original job ID")
	}
	if ss.Key != fs.Key {
		t.Fatalf("cache keys differ for identical requests: %s vs %s", ss.Key, fs.Key)
	}
	if ss.Result != fs.Result {
		t.Fatal("cached job did not serve the stored result")
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1 (second submission must not re-run)", runs.Load())
	}
	if st := m.Stats(); st.Cache.Hits != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit", st.Cache)
	}
}

func TestDifferentOptionsMissCache(t *testing.T) {
	var runs atomic.Int64
	m := New(Config{
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			runs.Add(1)
			return &core.RunResult{}, nil
		},
	}, NewResultCache(16, 0, 0))
	d := testDesign(t)
	a, _ := m.Submit(d, optsN(1))
	waitTerminal(t, a)
	b, _ := m.Submit(d, optsN(2))
	waitTerminal(t, b)
	if runs.Load() != 2 {
		t.Fatalf("runs = %d, want 2 (different options must not share results)", runs.Load())
	}
}

func TestCoalesceIdenticalInflight(t *testing.T) {
	release := make(chan struct{})
	var runs atomic.Int64
	m := New(Config{
		MaxConcurrent: 2,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			runs.Add(1)
			<-release
			return &core.RunResult{}, nil
		},
	}, NewResultCache(16, 0, 0))
	d := testDesign(t)

	a, err := m.Submit(d, core.Options{})
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	b, err := m.Submit(d, core.Options{})
	if err != nil {
		t.Fatalf("coalescing Submit: %v", err)
	}
	if a != b {
		t.Fatal("identical in-flight submissions should coalesce onto one job")
	}
	close(release)
	if snap := waitTerminal(t, a); snap.State != StateDone {
		t.Fatalf("state = %v, want done", snap.State)
	}
	if runs.Load() != 1 {
		t.Fatalf("runs = %d, want 1", runs.Load())
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	release := make(chan struct{})
	m := New(Config{
		MaxConcurrent: 1,
		QueueCap:      1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			<-release
			return &core.RunResult{}, nil
		},
	}, NewResultCache(16, 0, 0))
	d := testDesign(t)

	first, err := m.Submit(d, optsN(1))
	if err != nil {
		t.Fatalf("first Submit: %v", err)
	}
	// The worker may not have dequeued the first job yet; poll until it
	// does so the single queue slot is predictably free.
	deadline := time.Now().Add(5 * time.Second)
	for first.Snapshot().State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := m.Submit(d, optsN(2)); err != nil {
		t.Fatalf("second Submit (fills queue): %v", err)
	}
	if _, err := m.Submit(d, optsN(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third Submit: err = %v, want ErrQueueFull", err)
	}
	close(release)
}

func TestJobTimeoutFailsWithoutWedging(t *testing.T) {
	m := New(Config{
		MaxConcurrent: 1,
		JobTimeout:    20 * time.Millisecond,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			if o.LR.MaxIterations == 999 {
				<-ctx.Done() // simulate a job that only stops when canceled
				return nil, ctx.Err()
			}
			return &core.RunResult{}, nil
		},
	}, NewResultCache(16, 0, 0))
	d := testDesign(t)

	slow, err := m.Submit(d, optsN(999))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	snap := waitTerminal(t, slow)
	if snap.State != StateFailed || snap.Err == "" {
		t.Fatalf("timed-out job = %+v, want terminal failed with error", snap)
	}

	fast, err := m.Submit(d, optsN(1))
	if err != nil {
		t.Fatalf("Submit after timeout: %v", err)
	}
	if snap := waitTerminal(t, fast); snap.State != StateDone {
		t.Fatalf("queue wedged after a timeout: follow-up job = %+v", snap)
	}
	if st := m.Stats(); st.ByState["failed"] != 1 || st.ByState["done"] != 1 {
		t.Fatalf("stats = %+v, want 1 failed + 1 done", st.ByState)
	}
}

func TestDrainCompletesInflightJobs(t *testing.T) {
	m := New(Config{
		MaxConcurrent: 2,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			time.Sleep(20 * time.Millisecond)
			return &core.RunResult{}, nil
		},
	}, NewResultCache(16, 0, 0))
	d := testDesign(t)

	var jobs []*Job
	for i := 0; i < 4; i++ {
		j, err := m.Submit(d, optsN(i+1))
		if err != nil {
			t.Fatalf("Submit %d: %v", i, err)
		}
		jobs = append(jobs, j)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Drain(ctx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, j := range jobs {
		if snap := j.Snapshot(); snap.State != StateDone {
			t.Fatalf("job %s after drain = %v, want done", j.ID, snap.State)
		}
	}
	if _, err := m.Submit(d, optsN(99)); !errors.Is(err, ErrDraining) {
		t.Fatalf("Submit after drain: err = %v, want ErrDraining", err)
	}
}

func TestDrainDeadlineCancelsRunningJobs(t *testing.T) {
	m := New(Config{
		MaxConcurrent: 1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			<-ctx.Done() // cooperates with cancellation but never finishes on its own
			return nil, ctx.Err()
		},
	}, NewResultCache(16, 0, 0))
	d := testDesign(t)

	running, err := m.Submit(d, optsN(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	queued, err := m.Submit(d, optsN(2))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain: err = %v, want DeadlineExceeded", err)
	}
	for _, j := range []*Job{running, queued} {
		if snap := j.Snapshot(); snap.State != StateFailed {
			t.Fatalf("job %s after hard drain = %v, want failed", j.ID, snap.State)
		}
	}
}

// TestStressNoJobLostNoDoubleRun floods the manager from many goroutines
// with overlapping submissions and asserts the two manager invariants:
// every accepted submission reaches a terminal state, and no content
// address is ever optimized twice (coalescing catches in-flight
// duplicates, the cache catches completed ones).
func TestStressNoJobLostNoDoubleRun(t *testing.T) {
	const (
		submitters = 8
		keys       = 40
	)
	runCounts := make([]atomic.Int64, keys+1)
	m := New(Config{
		MaxConcurrent: 4,
		QueueCap:      submitters * keys, // never 429 in this test
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			runCounts[o.LR.MaxIterations].Add(1)
			time.Sleep(100 * time.Microsecond)
			return &core.RunResult{}, nil
		},
	}, NewResultCache(keys*2, 0, 0))
	d := testDesign(t)

	var (
		mu   sync.Mutex
		jobs []*Job
		wg   sync.WaitGroup
	)
	for s := 0; s < submitters; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 1; k <= keys; k++ {
				j, err := m.Submit(d, optsN(k))
				if err != nil {
					t.Errorf("Submit key %d: %v", k, err)
					return
				}
				mu.Lock()
				jobs = append(jobs, j)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	for _, j := range jobs {
		snap := waitTerminal(t, j)
		if snap.State != StateDone {
			t.Fatalf("job %s = %v (%s), want done", j.ID, snap.State, snap.Err)
		}
	}
	for k := 1; k <= keys; k++ {
		if got := runCounts[k].Load(); got != 1 {
			t.Errorf("key %d ran %d times, want exactly 1", k, got)
		}
	}
	if len(jobs) != submitters*keys {
		t.Errorf("lost submissions: got %d jobs, want %d", len(jobs), submitters*keys)
	}
}

func TestFingerprintNormalization(t *testing.T) {
	if Fingerprint(core.Options{Workers: 1}) != Fingerprint(core.Options{Workers: 8}) {
		t.Error("worker count must not change the fingerprint (results are identical)")
	}
	if Fingerprint(core.Options{Parallelism: 3}) != Fingerprint(core.Options{}) {
		t.Error("deprecated Parallelism must not change the fingerprint")
	}
	if Fingerprint(core.Options{Mode: core.ModeCPR}) == Fingerprint(core.Options{Mode: core.ModeSequential}) {
		t.Error("mode must change the fingerprint")
	}
	if Fingerprint(optsN(1)) == Fingerprint(optsN(2)) {
		t.Error("LR iteration bound must change the fingerprint")
	}
	if fmt.Sprint(Fingerprint(core.Options{})) == "" {
		t.Error("empty fingerprint")
	}
}

// TestSubmitBaseDispatchesRerun: a submission naming a finished base job
// must execute through the Rerun path with the base's result, while a
// baseless submission stays on Run.
func TestSubmitBaseDispatchesRerun(t *testing.T) {
	baseRes := &core.RunResult{}
	var runs, reruns atomic.Int64
	var gotBase *core.RunResult
	m := New(Config{
		MaxConcurrent: 1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			runs.Add(1)
			return baseRes, nil
		},
		Rerun: func(ctx context.Context, prev *core.RunResult, d *design.Design, o core.Options) (*core.RunResult, error) {
			reruns.Add(1)
			gotBase = prev
			return &core.RunResult{}, nil
		},
	}, NewResultCache(16, 16, 0))
	d := testDesign(t)

	base, err := m.Submit(d, optsN(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, base)

	// Different options mint a different design key, so the incremental
	// submission misses the design cache and actually executes.
	inc, err := m.SubmitBase(d, optsN(2), base.ID)
	if err != nil {
		t.Fatalf("SubmitBase: %v", err)
	}
	snap := waitTerminal(t, inc)
	if snap.State != StateDone || snap.BaseJobID != base.ID {
		t.Fatalf("snapshot = %+v, want done with base %s", snap, base.ID)
	}
	if runs.Load() != 1 || reruns.Load() != 1 {
		t.Fatalf("runs=%d reruns=%d, want 1 and 1", runs.Load(), reruns.Load())
	}
	if gotBase != baseRes {
		t.Fatal("Rerun did not receive the base job's result")
	}
}

// TestSubmitBaseErrors: unknown and unfinished base jobs are rejected at
// submission time with typed errors (HTTP maps both to 400).
func TestSubmitBaseErrors(t *testing.T) {
	release := make(chan struct{})
	m := New(Config{
		MaxConcurrent: 1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			<-release
			return &core.RunResult{}, nil
		},
	}, NewResultCache(16, 16, 0))
	d := testDesign(t)

	if _, err := m.SubmitBase(d, core.Options{}, "no-such-job"); !errors.Is(err, ErrUnknownBaseJob) {
		t.Fatalf("unknown base error = %v, want ErrUnknownBaseJob", err)
	}

	running, err := m.Submit(d, optsN(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := m.SubmitBase(d, optsN(2), running.ID); !errors.Is(err, ErrBaseNotDone) {
		t.Fatalf("unfinished base error = %v, want ErrBaseNotDone", err)
	}
	close(release)
	waitTerminal(t, running)
}

// TestSubmitBaseRewarmsPanelCache: the base job's panel artifacts are
// re-inserted into the panel cache at submission time, so incremental
// reuse survives earlier panel-level evictions.
func TestSubmitBaseRewarmsPanelCache(t *testing.T) {
	arts := &pipeline.ArtifactSet{
		Fingerprint: "fp",
		Panels: []*pipeline.PanelArtifact{
			{Panel: 0, Key: "panel-key-0"},
			{Panel: 1, Key: "panel-key-1"},
			{Panel: 2}, // keyless artifacts must be skipped, not inserted
		},
	}
	c := NewResultCache(16, 16, 0)
	m := New(Config{
		MaxConcurrent: 1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			return &core.RunResult{Artifacts: arts}, nil
		},
		Rerun: func(ctx context.Context, prev *core.RunResult, d *design.Design, o core.Options) (*core.RunResult, error) {
			return &core.RunResult{}, nil
		},
	}, c)
	d := testDesign(t)

	base, err := m.Submit(d, optsN(1))
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	waitTerminal(t, base)
	if c.Panel.Contains("panel-key-0") {
		t.Fatal("panel cache warmed before any incremental submission (stub Run bypasses it)")
	}

	inc, err := m.SubmitBase(d, optsN(2), base.ID)
	if err != nil {
		t.Fatalf("SubmitBase: %v", err)
	}
	waitTerminal(t, inc)
	if !c.Panel.Contains("panel-key-0") || !c.Panel.Contains("panel-key-1") {
		t.Error("base artifacts were not re-warmed into the panel cache")
	}
	if c.Panel.Len() != 2 {
		t.Errorf("panel cache holds %d entries, want 2 (keyless artifact skipped)", c.Panel.Len())
	}
}
