package geom

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	if iv.Empty() {
		t.Fatal("interval [2,5] should not be empty")
	}
	if got := iv.Len(); got != 4 {
		t.Errorf("Len() = %d, want 4", got)
	}
	for x := 2; x <= 5; x++ {
		if !iv.Contains(x) {
			t.Errorf("Contains(%d) = false, want true", x)
		}
	}
	if iv.Contains(1) || iv.Contains(6) {
		t.Error("Contains outside bounds should be false")
	}
}

func TestEmptyInterval(t *testing.T) {
	e := EmptyInterval()
	if !e.Empty() {
		t.Fatal("EmptyInterval should be empty")
	}
	if e.Len() != 0 {
		t.Errorf("empty Len() = %d, want 0", e.Len())
	}
	if e.Contains(0) {
		t.Error("empty interval should contain nothing")
	}
	if e.Overlaps(Interval{-100, 100}) {
		t.Error("empty interval should overlap nothing")
	}
	if e.ContainsInterval(Interval{0, 0}) {
		t.Error("empty interval should contain no interval")
	}
}

func TestMakeInterval(t *testing.T) {
	if got := MakeInterval(5, 2); got != (Interval{2, 5}) {
		t.Errorf("MakeInterval(5,2) = %v, want [2,5]", got)
	}
	if got := MakeInterval(3, 3); got != (Interval{3, 3}) {
		t.Errorf("MakeInterval(3,3) = %v, want [3,3]", got)
	}
}

func TestIntervalOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 3}, Interval{3, 6}, true},    // share endpoint
		{Interval{0, 3}, Interval{4, 6}, false},   // adjacent, no overlap
		{Interval{0, 10}, Interval{2, 4}, true},   // containment
		{Interval{5, 5}, Interval{5, 5}, true},    // identical single point
		{Interval{0, 1}, Interval{8, 9}, false},   // disjoint
		{Interval{8, 9}, Interval{0, 1}, false},   // disjoint reversed
		{Interval{-5, -1}, Interval{-2, 3}, true}, // negative coords
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v, %v", c.a, c.b)
		}
	}
}

func TestIntervalTouches(t *testing.T) {
	if !(Interval{0, 3}).Touches(Interval{4, 6}) {
		t.Error("adjacent intervals should touch")
	}
	if (Interval{0, 3}).Touches(Interval{5, 6}) {
		t.Error("intervals with a gap should not touch")
	}
	if !(Interval{0, 3}).Touches(Interval{2, 6}) {
		t.Error("overlapping intervals should touch")
	}
	if EmptyInterval().Touches(Interval{0, 3}) {
		t.Error("empty interval should touch nothing")
	}
}

func TestIntervalIntersect(t *testing.T) {
	got := Interval{0, 5}.Intersect(Interval{3, 9})
	if got != (Interval{3, 5}) {
		t.Errorf("Intersect = %v, want [3,5]", got)
	}
	if !(Interval{0, 2}).Intersect(Interval{3, 4}).Empty() {
		t.Error("disjoint Intersect should be empty")
	}
}

func TestIntervalUnion(t *testing.T) {
	got := Interval{0, 2}.Union(Interval{5, 9})
	if got != (Interval{0, 9}) {
		t.Errorf("Union = %v, want [0,9]", got)
	}
	if got := EmptyInterval().Union(Interval{1, 2}); got != (Interval{1, 2}) {
		t.Errorf("empty Union = %v, want [1,2]", got)
	}
	if got := (Interval{1, 2}).Union(EmptyInterval()); got != (Interval{1, 2}) {
		t.Errorf("Union empty = %v, want [1,2]", got)
	}
}

func TestIntervalContainsInterval(t *testing.T) {
	if !(Interval{0, 10}).ContainsInterval(Interval{3, 7}) {
		t.Error("[0,10] should contain [3,7]")
	}
	if (Interval{0, 10}).ContainsInterval(Interval{3, 11}) {
		t.Error("[0,10] should not contain [3,11]")
	}
	if !(Interval{0, 10}).ContainsInterval(EmptyInterval()) {
		t.Error("non-empty interval should contain the empty interval")
	}
}

// genInterval produces a random small interval (possibly empty).
func genInterval(r *rand.Rand) Interval {
	lo := r.Intn(41) - 20
	length := r.Intn(12) - 1 // -1 yields an empty interval
	return Interval{lo, lo + length}
}

func TestIntervalIntersectProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genInterval(r))
			vals[1] = reflect.ValueOf(genInterval(r))
		},
	}
	// Intersection is symmetric, contained in both operands, and
	// non-empty exactly when the operands overlap.
	prop := func(a, b Interval) bool {
		ab := a.Intersect(b)
		ba := b.Intersect(a)
		if ab.Empty() != ba.Empty() {
			return false
		}
		if !ab.Empty() && ab != ba {
			return false
		}
		if ab.Empty() != !a.Overlaps(b) {
			return false
		}
		if !ab.Empty() && (!a.ContainsInterval(ab) || !b.ContainsInterval(ab)) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestIntervalUnionProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genInterval(r))
			vals[1] = reflect.ValueOf(genInterval(r))
		},
	}
	// Union contains both operands and its length is at least the larger
	// operand's length and at most the sum when disjoint.
	prop := func(a, b Interval) bool {
		u := a.Union(b)
		if !a.Empty() && !u.ContainsInterval(a) {
			return false
		}
		if !b.Empty() && !u.ContainsInterval(b) {
			return false
		}
		if u.Len() < a.Len() || u.Len() < b.Len() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestRectBasics(t *testing.T) {
	r := MakeRect(4, 7, 1, 2) // unnormalized corners
	if r != (Rect{1, 2, 4, 7}) {
		t.Fatalf("MakeRect normalization failed: %v", r)
	}
	if r.Width() != 4 || r.Height() != 6 {
		t.Errorf("Width/Height = %d/%d, want 4/6", r.Width(), r.Height())
	}
	if r.Area() != 24 {
		t.Errorf("Area = %d, want 24", r.Area())
	}
	if r.XSpan() != (Interval{1, 4}) || r.YSpan() != (Interval{2, 7}) {
		t.Errorf("XSpan/YSpan wrong: %v %v", r.XSpan(), r.YSpan())
	}
	if !r.Contains(1, 2) || !r.Contains(4, 7) || r.Contains(0, 2) || r.Contains(1, 8) {
		t.Error("Contains boundary behaviour wrong")
	}
}

func TestRectOverlapIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{3, 3, 8, 8}
	if !a.Overlaps(b) {
		t.Fatal("a should overlap b")
	}
	got := a.Intersect(b)
	if got != (Rect{3, 3, 4, 4}) {
		t.Errorf("Intersect = %v", got)
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 8, 8}) {
		t.Errorf("Union = %v", u)
	}
	c := Rect{10, 10, 12, 12}
	if a.Overlaps(c) {
		t.Error("a should not overlap c")
	}
	if !a.Intersect(c).Empty() {
		t.Error("disjoint Intersect should be empty")
	}
}

func TestRectExpand(t *testing.T) {
	r := Rect{2, 2, 4, 4}
	if got := r.Expand(1); got != (Rect{1, 1, 5, 5}) {
		t.Errorf("Expand(1) = %v", got)
	}
	if got := r.Expand(-2); !got.Empty() {
		t.Errorf("Expand(-2) should be empty, got %v", got)
	}
}

func TestRectCenter(t *testing.T) {
	r := Rect{0, 0, 4, 6}
	if r.CenterX() != 2 || r.CenterY() != 3 {
		t.Errorf("Center = (%d,%d), want (2,3)", r.CenterX(), r.CenterY())
	}
}

func TestManhattanXY(t *testing.T) {
	a := Point{0, 0, 0}
	b := Point{3, -4, 2}
	if got := ManhattanXY(a, b); got != 7 {
		t.Errorf("ManhattanXY = %d, want 7", got)
	}
	if got := ManhattanXY(b, a); got != 7 {
		t.Error("ManhattanXY not symmetric")
	}
}

func genRect(r *rand.Rand) Rect {
	x0 := r.Intn(21) - 10
	y0 := r.Intn(21) - 10
	return Rect{x0, y0, x0 + r.Intn(8) - 1, y0 + r.Intn(8) - 1}
}

func TestRectIntersectProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 2000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(genRect(r))
			vals[1] = reflect.ValueOf(genRect(r))
		},
	}
	// Rect overlap must agree with per-axis interval overlap, and the
	// intersection area is bounded by both operand areas.
	prop := func(a, b Rect) bool {
		want := a.XSpan().Overlaps(b.XSpan()) && a.YSpan().Overlaps(b.YSpan())
		if a.Overlaps(b) != want {
			return false
		}
		in := a.Intersect(b)
		if in.Empty() != !want {
			return false
		}
		if !in.Empty() && (in.Area() > a.Area() || in.Area() > b.Area()) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestStringForms(t *testing.T) {
	if (Interval{1, 3}).String() != "[1,3]" {
		t.Error("Interval.String wrong")
	}
	if EmptyInterval().String() != "[empty]" {
		t.Error("empty Interval.String wrong")
	}
	if (Point{1, 2, 1}).String() != "(1,2,L1)" {
		t.Error("Point.String wrong")
	}
	if (Rect{1, 2, 3, 4}).String() != "rect[1,2..3,4]" {
		t.Error("Rect.String wrong")
	}
	if (Rect{0, 0, -1, 0}).String() != "rect[empty]" {
		t.Error("empty Rect.String wrong")
	}
}
