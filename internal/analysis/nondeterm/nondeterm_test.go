package nondeterm_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/nondeterm"
)

func TestNondeterm(t *testing.T) {
	analysistest.Run(t, "testdata", nondeterm.Analyzer,
		"cpr/internal/lagrange",
		"cpr/internal/jobs",
		"cpr/cmd/tool",
		"other",
	)
}
