package tech

import "sort"

// sadpRules is the default engine: self-aligned double patterning. The
// track-level rules are exactly the pre-engine router's behavior — the
// engine refactor is byte-invisible under sadp — and the mask analysis
// is the cut extraction/merge/conflict pipeline the cutmask package
// exposes as a post-routing report.
type sadpRules struct {
	lineEndRules
	cutSpacing int
	mergeTol   int
}

func (r sadpRules) Name() string { return EngineSADP }
func (r sadpRules) Colors() int  { return 1 }

// ClearanceMargin is the line-end extension plus half the spacing rule
// (rounded up): two nets whose clearance cells do not collide always
// satisfy gap >= 2*ext + spacing after extension.
func (r sadpRules) ClearanceMargin() int { return r.ext + (r.spacing+1)/2 }

// AvoidMargin: other strips are already extended by ext, so ext +
// spacing keeps the final gap >= spacing for a rerouted net.
func (r sadpRules) AvoidMargin() int { return r.ext + r.spacing }

// SequentialClearance is the one-sided burden a committed strip imposes:
// the later net's extension is not yet known, so both extensions plus
// the spacing fall on the avoid zone.
func (r sadpRules) SequentialClearance() int { return 2*r.ext + r.spacing }

// RuleReach bounds how far the extension, minimum-length growth, and
// spacing rule can couple strips beyond their raw geometry.
func (r sadpRules) RuleReach() int { return r.ext + r.minLen + r.spacing + 2 }

func (r sadpRules) ConflictRadius() int     { return 0 }
func (r sadpRules) ConflictWeight() float64 { return 0 }

// TrackViolations: adjacent diff-net extended strips must keep the
// line-end spacing; both participants are charged.
func (r sadpRules) TrackViolations(strips []Seg, vio func(net int)) {
	for i := 1; i < len(strips); i++ {
		a, b := strips[i-1], strips[i]
		if a.Net == b.Net {
			continue
		}
		if b.Lo-a.Hi-1 < r.spacing {
			vio(a.Net)
			vio(b.Net)
		}
	}
}

// CheckTrack reports the spacing violations, then the minimum-length
// violations, of one track — the exact message bytes the verifier has
// always produced.
func (r sadpRules) CheckTrack(layer, track int, strips []Seg, netName func(int) string,
	errf func(format string, args ...interface{})) {

	for i := 1; i < len(strips); i++ {
		a, b := strips[i-1], strips[i]
		if a.Net == b.Net {
			continue
		}
		gap := b.Lo - a.Hi - 1
		if gap < r.spacing {
			errf("line-end spacing violation on layer %d track %d between nets %s and %s (gap %d < %d)",
				layer, track, netName(a.Net), netName(b.Net), gap, r.spacing)
		}
	}
	for _, s := range strips {
		if s.Hi-s.Lo+1 < r.minLen {
			errf("minimum line length violation on layer %d track %d net %s (len %d < %d)",
				layer, track, netName(s.Net), s.Hi-s.Lo+1, r.minLen)
		}
	}
}

// AnalyzeMask runs the cut mask analysis: every line-end inside the grid
// needs a cut, aligned cuts merge, and residual close cut pairs count as
// conflicts. Cut conflicts are a mask complexity metric, not a legality
// error, so Errors stays empty.
func (r sadpRules) AnalyzeMask(segs []Seg, w, h int) *MaskReport {
	cuts := ExtractCuts(segs, w, h, r.ext)
	shapes := MergeCuts(cuts, r.mergeTol)
	return &MaskReport{
		Engine:    EngineSADP,
		Colors:    1,
		Segments:  len(segs),
		Conflicts: CountCutConflicts(shapes, r.cutSpacing),
		Shapes:    len(shapes),
		CutShapes: shapes,
	}
}

// Cut is one line-end cut location: the first free cell beyond a metal
// strip end on its track.
type Cut struct {
	Layer int
	// Track is the y row for M2 cuts, the x column for M3 cuts.
	Track int
	// Pos is the cell position of the cut along the track direction.
	Pos int
	// Net is the net whose line-end needs this cut.
	Net int
}

// CutShape is a merged cut mask shape covering one or more aligned cuts.
type CutShape struct {
	Layer int
	// Pos is the along-track position shared by the merged cuts.
	Pos int
	// TrackLo and TrackHi bound the merged track range.
	TrackLo, TrackHi int
	// Cuts counts the line-end cuts this shape serves.
	Cuts int
}

// ExtractCuts emits a cut at each raw strip end whose extended end stays
// inside the grid (ends flush with the boundary need no cut), sorted by
// (layer, pos, track, net).
func ExtractCuts(segs []Seg, w, h, ext int) []Cut {
	var cuts []Cut
	for _, s := range segs {
		limit := w
		if s.Layer == M3 {
			limit = h
		}
		if lo := s.Lo - ext - 1; lo >= 0 {
			cuts = append(cuts, Cut{Layer: s.Layer, Track: s.Track, Pos: lo, Net: s.Net})
		}
		if hi := s.Hi + ext + 1; hi <= limit-1 {
			cuts = append(cuts, Cut{Layer: s.Layer, Track: s.Track, Pos: hi, Net: s.Net})
		}
	}
	sort.Slice(cuts, func(a, b int) bool {
		ca, cb := cuts[a], cuts[b]
		if ca.Layer != cb.Layer {
			return ca.Layer < cb.Layer
		}
		if ca.Pos != cb.Pos {
			return ca.Pos < cb.Pos
		}
		if ca.Track != cb.Track {
			return ca.Track < cb.Track
		}
		return ca.Net < cb.Net
	})
	return cuts
}

// MergeCuts greedily merges cuts on consecutive tracks whose positions
// match within mergeTol into single shapes. Cuts must arrive in
// ExtractCuts order.
func MergeCuts(cuts []Cut, mergeTol int) []CutShape {
	var shapes []CutShape
	i := 0
	for i < len(cuts) {
		j := i
		for j < len(cuts) &&
			cuts[j].Layer == cuts[i].Layer &&
			cuts[j].Pos-cuts[i].Pos <= mergeTol {
			j++
		}
		group := append([]Cut(nil), cuts[i:j]...)
		// Dedupe identical track entries (several strips can demand the
		// same cut), then merge runs of consecutive tracks.
		sort.Slice(group, func(a, b int) bool { return group[a].Track < group[b].Track })
		var uniq []Cut
		for _, c := range group {
			if len(uniq) == 0 || c.Track != uniq[len(uniq)-1].Track {
				uniq = append(uniq, c)
			}
		}
		group = uniq
		k := 0
		for k < len(group) {
			m := k
			for m+1 < len(group) && group[m+1].Track <= group[m].Track+1 {
				m++
			}
			shapes = append(shapes, CutShape{
				Layer:   group[k].Layer,
				Pos:     group[k].Pos,
				TrackLo: group[k].Track,
				TrackHi: group[m].Track,
				Cuts:    m - k + 1,
			})
			k = m + 1
		}
		i = j
	}
	return shapes
}

// CountCutConflicts counts shape pairs on overlapping or adjacent track
// ranges whose positions are closer than cutSpacing.
func CountCutConflicts(shapes []CutShape, cutSpacing int) int {
	conflicts := 0
	for a := 0; a < len(shapes); a++ {
		for b := a + 1; b < len(shapes); b++ {
			sa, sb := shapes[a], shapes[b]
			if sa.Layer != sb.Layer {
				continue
			}
			dist := sb.Pos - sa.Pos
			if dist < 0 {
				dist = -dist
			}
			if dist == 0 || dist >= cutSpacing {
				continue
			}
			if sb.TrackLo <= sa.TrackHi+1 && sa.TrackLo <= sb.TrackHi+1 {
				conflicts++
			}
		}
	}
	return conflicts
}
