// Package deferclose exercises resource-release tracking: acquired
// resources with no Close on any path and no escape are flagged;
// deferred closes, closure closes, hand-offs, and nil checks are not.
package deferclose

import (
	"net"
	"net/http"
	"os"
)

func leaks() error {
	f, err := os.Open("config.json") // want `file "f" acquired from os\.Open is never closed`
	if err != nil {
		return err
	}
	println(f.Name())
	return nil
}

func closes() error {
	f, err := os.Open("config.json")
	if err != nil {
		return err
	}
	defer f.Close()
	println(f.Name())
	return nil
}

func closesInClosure() error {
	f, err := os.Open("config.json")
	if err != nil {
		return err
	}
	cleanup := func() { f.Close() }
	defer cleanup()
	return nil
}

// opens hands the file to its caller — funcsum summarizes it as an
// acquirer, so callers inherit the release obligation.
func opens() (*os.File, error) {
	return os.Open("config.json")
}

func callerLeaks() error {
	f, err := opens() // want `file "f" acquired from deferclose\.opens is never closed`
	if err != nil {
		return err
	}
	println(f.Name())
	return nil
}

func callerCloses() error {
	f, err := opens()
	if err != nil {
		return err
	}
	defer f.Close()
	return nil
}

func handsOff(sink *[]*os.File) error {
	f, err := os.Open("config.json")
	if err != nil {
		return err
	}
	*sink = append(*sink, f) // ownership transferred: clean
	return nil
}

func fetchLeaks() error {
	resp, err := http.Get("http://peer/block") // want `response body "resp" acquired from net/http\.Get is never closed \(resp\.Body\.Close\(\)\)`
	if err != nil {
		return err
	}
	println(resp.Status)
	return nil
}

func fetchCloses() error {
	resp, err := http.Get("http://peer/block")
	if err != nil {
		return err
	}
	if resp != nil { // nil comparison is the error idiom, not an escape
		defer resp.Body.Close()
	}
	return nil
}

func listens() error {
	ln, err := net.Listen("tcp", ":0") // want `listener "ln" acquired from net\.Listen is never closed`
	if err != nil {
		return err
	}
	println(ln.Addr().String())
	return nil
}

func discards() {
	os.Create("out.tmp") // want `file acquired from os\.Create is discarded without being closed`
}

func suppressedLeak() error {
	//cprlint:deferclose process-lifetime pid file, released by the OS at exit
	f, err := os.Create("daemon.pid")
	if err != nil {
		return err
	}
	println(f.Name())
	return nil
}
