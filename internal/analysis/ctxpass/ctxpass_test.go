package ctxpass_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/ctxpass"
)

func TestCtxpass(t *testing.T) {
	analysistest.Run(t, "testdata", ctxpass.Analyzer,
		"cpr/internal/server",
		"other",
	)
}
