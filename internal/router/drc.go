package router

import (
	"sort"

	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/tech"
)

// metalSegment is one maximal unidirectional metal strip of a routed net
// after line-end extension. For M2 (horizontal), track is the y row and
// span covers x; for M3 (vertical), track is the x column and span covers
// y.
type metalSegment struct {
	netID int
	layer int
	track int
	span  geom.Interval
}

// segmentsOf decomposes a route into per-track metal strips on the routing
// layers, including via-only landings (single-cell strips).
func (r *Router) segmentsOf(nr *NetRoute) []metalSegment {
	m2 := make(map[int][]int) // y -> xs
	m3 := make(map[int][]int) // x -> ys
	for _, id := range nr.Nodes {
		x, y, z := r.g.Coords(id)
		switch z {
		case tech.M2:
			m2[y] = append(m2[y], x)
		case tech.M3:
			m3[x] = append(m3[x], y)
		}
	}
	// Iterate tracks in sorted order: seg order flows into nr.Virtual and
	// from there into the result, so map order must not leak.
	var segs []metalSegment
	for _, track := range sortedTracks(m2) {
		for _, span := range runs(m2[track]) {
			segs = append(segs, metalSegment{netID: nr.NetID, layer: tech.M2, track: track, span: span})
		}
	}
	for _, track := range sortedTracks(m3) {
		for _, span := range runs(m3[track]) {
			segs = append(segs, metalSegment{netID: nr.NetID, layer: tech.M3, track: track, span: span})
		}
	}
	return segs
}

// sortedTracks returns a track map's keys in ascending order.
func sortedTracks(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// runs converts a cell coordinate multiset into maximal consecutive runs.
func runs(cells []int) []geom.Interval {
	if len(cells) == 0 {
		return nil
	}
	sort.Ints(cells)
	var out []geom.Interval
	cur := geom.Interval{Lo: cells[0], Hi: cells[0]}
	for _, c := range cells[1:] {
		switch {
		case c == cur.Hi || c == cur.Hi+1:
			if c > cur.Hi {
				cur.Hi = c
			}
		default:
			out = append(out, cur)
			cur = geom.Interval{Lo: c, Hi: c}
		}
	}
	return append(out, cur)
}

// extend applies the SADP line-end extension and the minimum line length
// rule, clamped to the grid extent limit (exclusive upper bound).
func extendSegment(span geom.Interval, ext, minLen, limit int) geom.Interval {
	span.Lo -= ext
	span.Hi += ext
	for span.Len() < minLen {
		if span.Hi < limit-1 {
			span.Hi++
		} else if span.Lo > 0 {
			span.Lo--
		} else {
			break
		}
	}
	if span.Lo < 0 {
		span.Lo = 0
	}
	if span.Hi > limit-1 {
		span.Hi = limit - 1
	}
	return span
}

// enforceLineEndRules extends every routed member net's line-ends per
// the technology's rule engine and checks the engine's track-level tip
// rules between diff-net strips on the same track plus overlap with
// blockages. Violating nets are first ripped up and rerouted with other
// nets' extended clearance zones forbidden (the paper's "line-end
// extensions and rip-up and reroute to accommodate the manufacturing
// constraints"); nets that still violate are unrouted. Region-local:
// only the shard's member nets can produce strips inside the region's
// influence rectangles, so no cross-region strip can appear on a shared
// track. Returns the number of nets unrouted.
func (s *shard) enforceLineEndRules() int {
	r := s.Router
	rules := r.rules()

	limitFor := func(layer int) int {
		if layer == tech.M2 {
			return r.d.Width
		}
		return r.d.Height
	}

	// Collect extended segments per (layer, track).
	type trackKey struct{ layer, track int }
	build := func() map[trackKey][]metalSegment {
		byTrack := make(map[trackKey][]metalSegment)
		for _, netID := range s.region.Nets {
			nr := s.routes[netID]
			if nr == nil || !nr.Routed {
				continue
			}
			for _, seg := range r.segmentsOf(nr) {
				seg.span.Lo, seg.span.Hi = rules.ExtendSpan(seg.span.Lo, seg.span.Hi, limitFor(seg.layer))
				k := trackKey{seg.layer, seg.track}
				byTrack[k] = append(byTrack[k], seg)
			}
		}
		for k := range byTrack {
			segs := byTrack[k]
			sort.Slice(segs, func(a, b int) bool {
				if segs[a].span.Lo != segs[b].span.Lo {
					return segs[a].span.Lo < segs[b].span.Lo
				}
				return segs[a].netID < segs[b].netID
			})
			byTrack[k] = segs
		}
		return byTrack
	}

	// violationsPerNet counts the engine's track rule violations and
	// blockage violations.
	violationsPerNet := func(byTrack map[trackKey][]metalSegment) map[int]int {
		vio := make(map[int]int)
		for k, segs := range byTrack {
			strips := make([]tech.Seg, len(segs))
			for i, seg := range segs {
				strips[i] = tech.Seg{
					Net:   seg.netID,
					Layer: k.layer,
					Track: k.track,
					Lo:    seg.span.Lo,
					Hi:    seg.span.Hi,
				}
			}
			rules.TrackViolations(strips, func(net int) { vio[net]++ })
			// Blockage overlap on the same layer/track.
			for _, seg := range segs {
				if r.segmentHitsBlockage(k.layer, k.track, seg.span) {
					vio[seg.netID]++
				}
			}
		}
		return vio
	}

	// buildAvoid converts the current extended strips into a forbidden
	// node set with the extra clearance a rerouted net's own extension
	// will need (the engine's avoid margin: other strips are already
	// extended, so the margin keeps the final gap legal for a rerouted
	// net whose mask assignment is not yet known).
	buildAvoid := func(byTrack map[trackKey][]metalSegment) map[grid.NodeID]bool {
		margin := rules.AvoidMargin()
		avoid := make(map[grid.NodeID]bool)
		for k, segs := range byTrack {
			limit := limitFor(k.layer)
			for _, seg := range segs {
				lo, hi := seg.span.Lo-margin, seg.span.Hi+margin
				if lo < 0 {
					lo = 0
				}
				if hi > limit-1 {
					hi = limit - 1
				}
				for c := lo; c <= hi; c++ {
					if k.layer == tech.M2 {
						avoid[r.g.ID(c, k.track, tech.M2)] = true
					} else {
						avoid[r.g.ID(k.track, c, tech.M3)] = true
					}
				}
			}
		}
		return avoid
	}

	// Phase 1: rip up and reroute violating nets away from other nets'
	// clearance zones. Prefer moving nets with larger routes (more room
	// to detour). A net whose reroute fails keeps its old route and is
	// not retried.
	tried := make(map[int]bool)
	margin := r.cfg.WindowMargin + r.cfg.WindowGrowth*(r.cfg.MaxNegotiationIters+1)
	maxRounds := 2 * len(s.region.Nets)
	if maxRounds > 200 {
		maxRounds = 200
	}
	for round := 0; round < maxRounds; round++ {
		vio := violationsPerNet(build())
		if len(vio) == 0 {
			return 0
		}
		pick := -1
		for netID := range vio {
			if tried[netID] {
				continue
			}
			if pick < 0 ||
				len(s.routes[netID].Nodes) > len(s.routes[pick].Nodes) ||
				(len(s.routes[netID].Nodes) == len(s.routes[pick].Nodes) && netID > pick) {
				pick = netID
			}
		}
		if pick < 0 {
			break // every violating net already tried
		}
		tried[pick] = true
		old := *s.routes[pick]
		r.release(s.routes[pick])
		s.routes[pick].Routed = false
		s.avoid = buildAvoid(build())
		rerouted := s.routeNet(pick, r.cfg.PresentCostBase, margin)
		s.avoid = nil
		if rerouted.Routed {
			*s.routes[pick] = *rerouted
			r.occupy(s.routes[pick])
		} else {
			*s.routes[pick] = old
			r.occupy(s.routes[pick])
		}
	}

	// Phase 2: drop nets that still violate, most-violating first.
	dropped := 0
	for iter := 0; iter < len(s.region.Nets); iter++ {
		vio := violationsPerNet(build())
		if len(vio) == 0 {
			break
		}
		worst, worstCount := -1, 0
		for netID, count := range vio {
			if count > worstCount || (count == worstCount && netID > worst) {
				worst, worstCount = netID, count
			}
		}
		if worst < 0 {
			break
		}
		r.release(s.routes[worst])
		s.routes[worst].Routed = false
		s.routes[worst].FailReason = "drc"
		s.routes[worst].Nodes = nil
		s.routes[worst].Edges = nil
		s.routes[worst].Virtual = nil
		dropped++
	}
	return dropped
}

// segmentHitsBlockage reports whether an extended strip overlaps a design
// blockage cell on its layer.
func (r *Router) segmentHitsBlockage(layer, track int, span geom.Interval) bool {
	if layer == tech.M2 {
		for x := span.Lo; x <= span.Hi; x++ {
			if r.g.Blocked(r.g.ID(x, track, tech.M2)) {
				return true
			}
		}
		return false
	}
	for y := span.Lo; y <= span.Hi; y++ {
		if r.g.Blocked(r.g.ID(track, y, tech.M3)) {
			return true
		}
	}
	return false
}
