package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestSpanTree(t *testing.T) {
	tr := New()
	root := tr.StartSpan("run", nil)
	child := tr.StartSpan("pinopt", root)
	child.SetAttr("panels", 3)
	grand := tr.StartSpan("panel", child)
	leaf := tr.StartSpan("assign", grand)
	if leaf.Lane != 0 {
		t.Errorf("leaf lane = %d, want inherited 0", leaf.Lane)
	}
	grand.SetLane(7)
	leaf2 := tr.StartSpan("assign2", grand)
	if leaf2.Lane != 7 {
		t.Errorf("lane not inherited after SetLane: got %d want 7", leaf2.Lane)
	}
	leaf.End()
	leaf2.End()
	grand.End()
	child.End()
	root.End()

	recs := tr.Snapshot()
	if len(recs) != 5 {
		t.Fatalf("got %d spans, want 5", len(recs))
	}
	if recs[0].Name != "run" || recs[0].ParentID != 0 {
		t.Errorf("root record wrong: %+v", recs[0])
	}
	if recs[1].ParentID != recs[0].ID || recs[2].ParentID != recs[1].ID {
		t.Errorf("parent links wrong: %+v", recs[:3])
	}
	if v, ok := tr.Find("pinopt").Attr("panels"); !ok || v != 3 {
		t.Errorf("attr lost: %v %v", v, ok)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan("x", nil)
	if sp != nil {
		t.Fatal("nil tracer must give nil span")
	}
	sp.SetAttr("k", 1)
	sp.SetLane(3)
	sp.End()
	if tr.Snapshot() != nil || tr.Find("x") != nil || tr.FindAll("x") != nil {
		t.Error("nil tracer accessors must return nil")
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&buf, ExportOptions{}); err != nil {
		t.Fatal(err)
	}

	var reg *Registry
	reg.Counter("c", "h").Inc()
	reg.Gauge("g", "h").Set(2)
	reg.Histogram("h", "h", DefSecondsBuckets).Observe(1)
	reg.GaugeFunc("gf", "h", func() float64 { return 1 })
	reg.CounterFunc("cf", "h", func() float64 { return 1 })
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	ctx2, sp2 := StartSpan(ctx, "nope")
	if sp2 != nil || ctx2 != ctx {
		t.Error("StartSpan without tracer must be identity")
	}
	if RegistryFrom(ctx) != nil || TracerFrom(ctx) != nil || SpanFrom(ctx) != nil {
		t.Error("empty context must carry no telemetry")
	}
}

func TestContextPlumbing(t *testing.T) {
	tr := New()
	reg := NewRegistry()
	ctx := WithRegistry(WithTracer(context.Background(), tr), reg)
	if TracerFrom(ctx) != tr || RegistryFrom(ctx) != reg {
		t.Fatal("context round trip failed")
	}
	ctx, root := StartSpan(ctx, "run")
	_, child := StartSpan(ctx, "stage")
	if child.ParentID != root.ID {
		t.Errorf("child parent = %d, want %d", child.ParentID, root.ID)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	tr := New()
	ctx, root := StartSpan(WithTracer(context.Background(), tr), "run")
	_, sp := StartSpan(ctx, "panel")
	sp.SetLane(2)
	sp.SetAttr("pins", 14)
	sp.SetAttr("key", "abc")
	sp.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf, ExportOptions{}); err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(parsed.TraceEvents))
	}
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" || ev.PID != 1 {
			t.Errorf("bad event envelope: %+v", ev)
		}
	}
	panel := parsed.TraceEvents[1]
	if panel.Name != "panel" || panel.TID != 2 || panel.Args["pins"] != float64(14) {
		t.Errorf("panel event wrong: %+v", panel)
	}
}

func TestZeroTimesExportIsStable(t *testing.T) {
	build := func() *Tracer {
		tr := New()
		root := tr.StartSpan("run", nil)
		sp := tr.StartSpan("panel", root)
		sp.SetAttr("panel", 0)
		sp.End()
		root.End()
		return tr
	}
	var a, b bytes.Buffer
	if err := build().WriteChromeTrace(&a, ExportOptions{ZeroTimes: true}); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteChromeTrace(&b, ExportOptions{ZeroTimes: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("zeroed exports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
	var c, d bytes.Buffer
	if err := build().WriteJSON(&c, ExportOptions{ZeroTimes: true}); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteJSON(&d, ExportOptions{ZeroTimes: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Bytes(), d.Bytes()) {
		t.Errorf("zeroed JSON exports differ:\n%s\nvs\n%s", c.String(), d.String())
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("cpr_things_total", "things", L("kind", "a"))
	c.Inc()
	c.Add(2)
	c.Add(-5) // ignored: counters are monotonic
	if c.Value() != 3 {
		t.Errorf("counter = %g, want 3", c.Value())
	}
	if reg.Counter("cpr_things_total", "things", L("kind", "a")) != c {
		t.Error("re-registration must return the same counter")
	}

	g := reg.Gauge("cpr_depth", "depth")
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Errorf("gauge = %g, want 3", g.Value())
	}

	h := reg.Histogram("cpr_lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 56.05 {
		t.Errorf("histogram count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cpr_ops_total", "operations", L("op", "hit")).Add(4)
	reg.Counter("cpr_ops_total", "operations", L("op", "miss")).Add(1)
	reg.Gauge("cpr_queue_depth", "queue depth").Set(2)
	reg.GaugeFunc("cpr_live", "liveness", func() float64 { return 1 })
	h := reg.Histogram("cpr_wait_seconds", "wait", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(3)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	want := []string{
		"# HELP cpr_ops_total operations",
		"# TYPE cpr_ops_total counter",
		`cpr_ops_total{op="hit"} 4`,
		`cpr_ops_total{op="miss"} 1`,
		"# TYPE cpr_queue_depth gauge",
		"cpr_queue_depth 2",
		"cpr_live 1",
		"# TYPE cpr_wait_seconds histogram",
		`cpr_wait_seconds_bucket{le="0.1"} 1`,
		`cpr_wait_seconds_bucket{le="1"} 2`,
		`cpr_wait_seconds_bucket{le="+Inf"} 3`,
		"cpr_wait_seconds_sum 3.55",
		"cpr_wait_seconds_count 3",
	}
	for _, w := range want {
		if !strings.Contains(text, w) {
			t.Errorf("exposition missing %q:\n%s", w, text)
		}
	}
	checkPrometheusWellFormed(t, text)
}

// checkPrometheusWellFormed is a minimal text-format validator: every
// non-comment line is `name{labels} value`, every series is preceded by
// HELP/TYPE headers for its family, families are contiguous.
func checkPrometheusWellFormed(t *testing.T, text string) {
	t.Helper()
	typed := map[string]string{}
	var lastFamily string
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition")
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("bad TYPE line: %q", line)
			}
			if _, dup := typed[fields[2]]; dup {
				t.Fatalf("family %q declared twice", fields[2])
			}
			typed[fields[2]] = fields[3]
			lastFamily = fields[2]
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typed[base]; !ok && !strings.HasPrefix(name, lastFamily) {
			t.Errorf("series %q has no TYPE header", name)
		}
		fields := strings.Fields(line)
		val := fields[len(fields)-1]
		if val != "+Inf" && val != "NaN" {
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Errorf("series %q has unparsable value %q", name, val)
			}
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	tr := New()
	reg := NewRegistry()
	root := tr.StartSpan("run", nil)
	c := reg.Counter("c_total", "c")
	h := reg.Histogram("h", "h", DefCountBuckets)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				sp := tr.StartSpan("panel", root)
				sp.SetAttr("i", j)
				sp.End()
				c.Inc()
				h.Observe(float64(j))
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 1600 {
		t.Errorf("counter = %g, want 1600", c.Value())
	}
	if got := len(tr.FindAll("panel")); got != 1600 {
		t.Errorf("spans = %d, want 1600", got)
	}
}
