// Package floatreduce is golden input for the floatreduce analyzer.
package floatreduce

import (
	"sync"

	"cpr/internal/parallel"
)

// GoroutineScalar is the canonical bug: goroutines race a captured
// float accumulator (and even with a lock, completion order would
// change the bits).
func GoroutineScalar(xs []float64) float64 {
	var wg sync.WaitGroup
	var mu sync.Mutex
	total := 0.0
	for _, x := range xs {
		x := x
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			total += x // want `float accumulation into captured "total" inside a goroutine`
			mu.Unlock()
		}()
	}
	wg.Wait()
	return total
}

// ParallelClosureScalar accumulates into a captured float from a
// parallel.ForEach closure: flagged.
func ParallelClosureScalar(xs []float64) float64 {
	total := 0.0
	parallel.ForEach(4, len(xs), func(i int) {
		total += xs[i] // want `float accumulation into captured "total" inside a parallel\.ForEach closure`
	})
	return total
}

// AssignForm is the x = x + e spelling inside a goroutine: flagged.
func AssignForm(xs []float64) float64 {
	var wg sync.WaitGroup
	total := 0.0
	for _, x := range xs {
		x := x
		wg.Add(1)
		go func() {
			defer wg.Done()
			total = total + x // want `float accumulation into captured "total" inside a goroutine`
		}()
	}
	wg.Wait()
	return total
}

// FieldAccumulate writes a captured struct's float field: flagged.
type acc struct{ sum float64 }

func FieldAccumulate(xs []float64) float64 {
	var a acc
	parallel.ForEach(2, len(xs), func(i int) {
		a.sum += xs[i] // want `float accumulation into captured "a" inside a parallel\.ForEach closure`
	})
	return a.sum
}

// PerSlot is the sanctioned pattern: job i writes slot i, ordered
// reduce afterwards. Never flagged.
func PerSlot(xs []float64) float64 {
	partial := make([]float64, len(xs))
	parallel.ForEach(4, len(xs), func(i int) {
		partial[i] = xs[i] * xs[i]
	})
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}

// PerSlotCompound accumulates within a slot: still per-slot, legal.
func PerSlotCompound(grid [][]float64) []float64 {
	rows := make([]float64, len(grid))
	parallel.ForEach(4, len(grid), func(i int) {
		for _, v := range grid[i] {
			rows[i] += v
		}
	})
	return rows
}

// SequentialSum has no concurrency: legal.
func SequentialSum(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		total += x
	}
	return total
}

// IntCounter is concurrent but integral; atomicity is the race
// detector's concern, not order-determinism.
func IntCounter(n int) int {
	count := 0
	done := make(chan struct{})
	go func() {
		count++
		close(done)
	}()
	<-done
	return count + n
}

// ClosureLocal accumulates into a closure-local: legal.
func ClosureLocal(xs []float64, out []float64) {
	parallel.ForEach(2, len(xs), func(i int) {
		local := 0.0
		local += xs[i]
		out[i] = local
	})
}

// Suppressed documents a justified exception.
func Suppressed(xs []float64) float64 {
	total := 0.0
	done := make(chan struct{})
	go func() {
		for _, x := range xs {
			//cprlint:floatreduce single goroutine owns the accumulator; iteration order is the slice order
			total += x
		}
		close(done)
	}()
	<-done
	return total
}
