// Package goroleak exercises unstoppable-goroutine detection: loops
// nothing can stop are flagged at the launch site, channel-draining
// workers and cancellable loops are not.
package goroleak

import "goroleakutil"

func tick() {}

func spin() {
	for {
		tick()
	}
}

func launchLit() {
	go func() { // want `goroutine body runs an unconditional loop with no stop path`
		for {
			tick()
		}
	}()
}

func launchNamed() {
	go spin() // want `goroutine runs spin with no stop path: unconditional for-loop`
}

func launchViaLit() {
	go func() { // want `goroutine runs spin with no stop path`
		spin()
	}()
}

func launchImported() {
	go goroleakutil.Pump() // want `goroutine runs Pump with no stop path`
}

func drains(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
}

func cancellable(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				tick()
			}
		}
	}()
}

func oneShot() {
	go tick()
}

func suppressed() {
	//cprlint:goroleak process-lifetime heartbeat, reaped by the OS at exit
	go spin()
}
