package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"cpr/client"
	"cpr/internal/blockstore"
	"cpr/internal/exchange"
	"cpr/internal/jobs"
	"cpr/internal/telemetry"
)

// clusterNode is one cprd daemon wired the way cmd/cprd wires it: a
// block-backed result cache over a local store, optionally fetching
// misses from peer daemons, serving /v1/blocks from the local store.
type clusterNode struct {
	mgr    *jobs.Manager
	exch   *exchange.Service
	client *client.Client
	url    string
	close  func()
}

// newClusterNode starts a node on an httptest listener. store survives
// the node when the caller owns it (the restart test reuses a disk
// store across two node lifetimes).
func newClusterNode(t *testing.T, store blockstore.Store, peers []string) *clusterNode {
	t.Helper()
	reg := telemetry.NewRegistry()
	var fetcher exchange.Fetcher
	if len(peers) > 0 {
		fetcher = exchange.NewHTTPFetcher(peers, exchange.HTTPOptions{Timeout: 5 * time.Second})
	}
	exch := exchange.New(store, fetcher, reg)
	mgr := jobs.New(jobs.Config{MaxConcurrent: 2, Metrics: reg},
		jobs.NewExchangedResultCache(64, 256, 256, exch))
	srv := New(mgr)
	srv.SetExchange(exch, peers)
	ts := httptest.NewServer(srv.Handler())
	n := &clusterNode{mgr: mgr, exch: exch, client: client.New(ts.URL), url: ts.URL, close: ts.Close}
	t.Cleanup(ts.Close)
	return n
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return string(body)
}

// stripTiming zeroes the wall-clock fields of a wire result in place:
// two independent computes of the same design agree on everything else.
func stripTiming(r *client.Result) {
	r.Metrics.CPUSeconds = 0
	r.Metrics.OptimizeSeconds = 0
	r.Metrics.RouteSeconds = 0
	r.Metrics.VerifySeconds = 0
	if r.PinOpt != nil {
		r.PinOpt.ElapsedMS = 0
	}
}

// TestTwoNodeClusterResolvesBlocksFromPeer is the cluster contract
// end-to-end: node A computes a result cold; node B, configured with A
// as a peer, serves the identical submission from A's blocks without
// running the optimizer, and its exchange counters attribute the blocks
// to the peer.
func TestTwoNodeClusterResolvesBlocksFromPeer(t *testing.T) {
	ctx := context.Background()
	nodeA := newClusterNode(t, blockstore.NewMem(0), nil)
	nodeB := newClusterNode(t, blockstore.NewMem(0), []string{nodeA.url})

	first, err := nodeA.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("node A submit: %v", err)
	}
	if first.State != "done" || first.Cached {
		t.Fatalf("node A job = %+v, want done uncached", first)
	}

	second, err := nodeB.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("node B submit: %v", err)
	}
	if second.State != "done" || !second.Cached {
		t.Fatalf("node B job = %+v, want served from peer blocks without running", second)
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatalf("peer-resolved result differs:\n A %+v\n B %+v", first.Result, second.Result)
	}

	exSt := nodeB.exch.Stats()
	if exSt.Peer == 0 {
		t.Fatalf("node B exchange stats = %+v, want peer resolutions > 0", exSt)
	}
	if exSt.PeerErrors != 0 {
		t.Fatalf("node B exchange stats = %+v, want no peer errors", exSt)
	}

	// The wire surfaces the same attribution: /v1/stats carries the
	// exchange counters and peer list, /metrics the labeled series.
	st, err := nodeB.client.Stats(ctx)
	if err != nil {
		t.Fatalf("node B stats: %v", err)
	}
	if st.Exchange == nil || st.Exchange.Peer == 0 {
		t.Fatalf("wire stats exchange = %+v, want peer > 0", st.Exchange)
	}
	if st.Blockstore == nil || st.Blockstore.Blocks == 0 {
		t.Fatalf("wire stats blockstore = %+v, want blocks > 0 (write-through)", st.Blockstore)
	}
	if len(st.Peers) != 1 || st.Peers[0] != nodeA.url {
		t.Fatalf("wire stats peers = %v, want [%s]", st.Peers, nodeA.url)
	}
	mtx := scrapeMetrics(t, nodeB.url)
	if !strings.Contains(mtx, `cpr_blocks_total{source="peer"}`) {
		t.Fatalf("node B /metrics missing peer-sourced block counter:\n%s", mtx)
	}

	// Node A must not have fetched anything in return: serving blocks is
	// strictly observational.
	if aSt := nodeA.exch.Stats(); aSt.Peer != 0 {
		t.Fatalf("node A exchange stats = %+v, want no peer fetches", aSt)
	}

	// Node B re-serves the block-resolved result from its own store now:
	// a third submission must not touch the peer again.
	peerBefore := nodeB.exch.Stats().Peer
	third, err := nodeB.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("node B resubmit: %v", err)
	}
	if !third.Cached {
		t.Fatalf("node B resubmit = %+v, want cached", third)
	}
	if after := nodeB.exch.Stats().Peer; after != peerBefore {
		t.Fatalf("resubmission refetched from peer: %d -> %d", peerBefore, after)
	}
}

// TestClusterPeerDownFallsBackToCompute proves the exchange is strictly
// an accelerator: with its only peer unreachable, a node still computes
// the result itself, identically.
func TestClusterPeerDownFallsBackToCompute(t *testing.T) {
	ctx := context.Background()
	nodeA := newClusterNode(t, blockstore.NewMem(0), nil)
	ref, err := nodeA.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}

	// 127.0.0.1:1 refuses connections immediately.
	nodeB := newClusterNode(t, blockstore.NewMem(0), []string{"http://127.0.0.1:1"})
	got, err := nodeB.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("node B submit: %v", err)
	}
	if got.State != "done" || got.Cached {
		t.Fatalf("node B job = %+v, want computed locally", got)
	}
	stripTiming(ref.Result)
	stripTiming(got.Result)
	if !reflect.DeepEqual(ref.Result, got.Result) {
		t.Fatalf("fallback result differs:\n ref %+v\n got %+v", ref.Result, got.Result)
	}
	if exSt := nodeB.exch.Stats(); exSt.Peer != 0 || exSt.Miss == 0 {
		t.Fatalf("node B exchange stats = %+v, want misses and no peer hits", exSt)
	}
}

// TestDiskBlockstoreSurvivesRestart kills a node and starts a fresh one
// on the same blockstore directory: the new node serves the old node's
// result without recompute, even though every in-memory cache level
// started empty.
func TestDiskBlockstoreSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	store, err := blockstore.OpenDisk(dir, blockstore.DiskOptions{})
	if err != nil {
		t.Fatalf("open blockstore: %v", err)
	}
	nodeA := newClusterNode(t, store, nil)
	first, err := nodeA.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("submit before restart: %v", err)
	}
	if first.Cached {
		t.Fatalf("first run = %+v, want computed", first)
	}
	nodeA.close()

	reopened, err := blockstore.OpenDisk(dir, blockstore.DiskOptions{})
	if err != nil {
		t.Fatalf("reopen blockstore: %v", err)
	}
	nodeB := newClusterNode(t, reopened, nil)
	second, err := nodeB.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
	if second.State != "done" || !second.Cached {
		t.Fatalf("post-restart job = %+v, want served from disk blocks", second)
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatalf("post-restart result differs:\n before %+v\n after  %+v", first.Result, second.Result)
	}
	st, err := nodeB.client.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Stages["run"].Count != 0 {
		t.Fatalf("run stage count = %d, want 0 (no recompute after restart)", st.Stages["run"].Count)
	}
	if st.Exchange == nil || st.Exchange.Local == 0 {
		t.Fatalf("exchange stats = %+v, want local resolutions > 0", st.Exchange)
	}
}

// TestBlocksEndpointServesLocalOnly pins the anti-storm contract at the
// HTTP surface: a node answers /v1/blocks for blocks it holds, 404s
// blocks it does not — without consulting its own peers — and rejects
// malformed keys before touching the store.
func TestBlocksEndpointServesLocalOnly(t *testing.T) {
	nodeA := newClusterNode(t, blockstore.NewMem(0), nil)
	// nodeB peers with A and holds nothing: a block request to B must
	// not be forwarded to A.
	nodeB := newClusterNode(t, blockstore.NewMem(0), []string{nodeA.url})

	key := strings.Repeat("ab", 32)
	if err := nodeA.exch.Put(key, []byte("payload")); err != nil {
		t.Fatalf("put: %v", err)
	}

	resp, err := http.Get(nodeA.url + exchange.BlockPath + key)
	if err != nil {
		t.Fatalf("GET block: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "payload" {
		t.Fatalf("GET block = %d %q, want 200 payload", resp.StatusCode, body)
	}

	resp, err = http.Head(nodeA.url + exchange.BlockPath + key)
	if err != nil {
		t.Fatalf("HEAD block: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD block = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(nodeB.url + exchange.BlockPath + key)
	if err != nil {
		t.Fatalf("GET block from B: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent block = %d, want 404 (no transitive fetch)", resp.StatusCode)
	}
	if exSt := nodeB.exch.Stats(); exSt.Peer != 0 {
		t.Fatalf("serving /v1/blocks triggered a peer fetch: %+v", exSt)
	}

	resp, err = http.Get(nodeA.url + exchange.BlockPath + "not-a-key")
	if err != nil {
		t.Fatalf("GET malformed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET malformed key = %d, want 400", resp.StatusCode)
	}
}
