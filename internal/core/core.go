// Package core wires the full concurrent pin access router (CPR) pipeline
// together (paper §4): panel-by-panel pin access interval generation,
// conflict detection, weighted interval assignment (exact ILP or scalable
// Lagrangian relaxation), interval seeding as partial routes, and
// negotiation-congestion routing with SADP line-end rules.
//
// The optimization half is expressed as explicit per-panel stages over
// internal/pipeline artifacts, each content-addressed by a per-panel key.
// That staging is what enables incremental (ECO-style) re-optimization:
// Rerun diffs the panel keys of an edited design against a previous
// result and recomputes only the dirtied panels, and Options.PanelCache
// lets a long-running service harvest the same reuse across independent
// submissions. Both paths keep the hard invariant that a spliced run is
// byte-identical to a cold full run of the edited design, for every
// worker count.
//
// It also runs the paper's two baselines on the same substrate: the
// negotiation router without pin access optimization ([21]) and the
// sequential pin-access-planning router ([12]).
package core

import (
	"context"
	"fmt"
	"time"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/ilp"
	"cpr/internal/lagrange"
	"cpr/internal/metrics"
	"cpr/internal/parallel"
	"cpr/internal/pinaccess"
	"cpr/internal/pipeline"
	"cpr/internal/router"
	"cpr/internal/tech"
	"cpr/internal/telemetry"
)

// Mode selects the routing flow.
type Mode int

const (
	// ModeCPR is the paper's contribution: concurrent pin access
	// optimization followed by negotiation routing.
	ModeCPR Mode = iota
	// ModeNoPinOpt is the [21] baseline: negotiation routing with other
	// nets' pins as blockages but no interval optimization.
	ModeNoPinOpt
	// ModeSequential is the [12] baseline: sequential pin access planning
	// and routing with net deferring.
	ModeSequential
)

func (m Mode) String() string {
	switch m {
	case ModeCPR:
		return "cpr"
	case ModeNoPinOpt:
		return "no-pinopt"
	default:
		return "sequential"
	}
}

// RerunMode selects how much of a previous run an incremental Rerun may
// reuse for routing (pin access artifacts are always spliced by content
// key — that reuse is exact by construction).
type RerunMode int

const (
	// RerunStrict (default) reuses routing only where it is provably
	// byte-identical: whole regions whose route content keys are
	// unchanged are spliced verbatim, everything else is re-routed cold.
	// The result is byte-identical to a cold run of the edited design.
	RerunStrict RerunMode = iota
	// RerunEcoFast additionally warm-starts surviving nets of dirtied
	// regions from their previous routes, so negotiation converges on the
	// residual set only. The result may diverge byte-wise from a cold
	// run, but it is verified DRC-clean (internal/verify.Check) and
	// objective-equal; a rerun that fails verification falls back to a
	// cold run automatically.
	RerunEcoFast
)

func (m RerunMode) String() string {
	if m == RerunEcoFast {
		return "eco-fast"
	}
	return "strict"
}

// ParseRerunMode parses "strict" or "eco-fast".
func ParseRerunMode(s string) (RerunMode, error) {
	switch s {
	case "", "strict":
		return RerunStrict, nil
	case "eco-fast":
		return RerunEcoFast, nil
	default:
		return RerunStrict, fmt.Errorf("unknown rerun mode %q (want strict or eco-fast)", s)
	}
}

// Optimizer selects the interval assignment solver for ModeCPR.
type Optimizer int

const (
	// OptLR is the scalable Lagrangian relaxation algorithm (default).
	OptLR Optimizer = iota
	// OptILP is the exact branch-and-bound ILP.
	OptILP
)

func (o Optimizer) String() string {
	if o == OptILP {
		return "ilp"
	}
	return "lr"
}

// PanelCache is a panel-level artifact store the optimization pipeline
// consults before solving a panel and updates after. Entries are
// content-addressed (pipeline.PanelKeyFor), so a cache can never change
// a result — only skip recomputation. A *cache.Cache[*pipeline.PanelArtifact]
// satisfies the interface.
type PanelCache interface {
	Get(key string) (*pipeline.PanelArtifact, bool)
	Put(key string, a *pipeline.PanelArtifact)
}

// RouteCache is a region-level route artifact store the routing stage
// consults before routing a region and updates after. Entries are
// content-addressed (pipeline.RouteKeyFor) — equal keys address
// byte-identical route bundles — so a cache can never change a result,
// only skip re-routing. A *cache.Cache[*pipeline.RouteArtifact] satisfies
// the interface.
type RouteCache interface {
	Get(key string) (*pipeline.RouteArtifact, bool)
	Put(key string, a *pipeline.RouteArtifact)
}

// Options configures a run. Zero values give the paper's defaults
// (ModeCPR with LR optimization).
//
//keypurity:options
type Options struct {
	Mode       Mode
	Optimizer  Optimizer
	LR         lagrange.Config
	ILP        ilp.Config
	Router     router.Config
	Sequential router.SequentialConfig
	// Profit is the interval profit function (default assign.SqrtProfit).
	// With more than one worker it must be safe for concurrent calls (the
	// built-in profit functions are pure). A custom function makes panel
	// artifacts uncacheable (function identity cannot be
	// content-addressed), so Rerun and PanelCache degrade to full
	// recomputation.
	Profit assign.ProfitFn
	// Workers bounds the concurrency of the whole optimization pipeline:
	// panel subproblems run on a shared pool, and spare capacity flows
	// into the per-track interval generation, the per-track conflict
	// sweeps, and the per-conflict-set LR subgradient updates of each
	// panel. 0 selects runtime.GOMAXPROCS(0); 1 forces the fully
	// sequential path. The determinism contract of internal/parallel
	// guarantees byte-identical results — metrics, selected intervals,
	// and routes — for every value (only wall-clock fields such as
	// Metrics.CPUSeconds and PinOptReport.Elapsed vary).
	//
	//keypurity:exempt pipeline parallelism; the internal/parallel determinism contract makes results byte-identical for every worker count
	Workers int
	// Parallelism is the number of panels optimized concurrently.
	//
	// Deprecated: set Workers instead. Parallelism is honoured only when
	// Workers is zero.
	//
	//keypurity:exempt deprecated alias of Workers; same determinism contract
	Parallelism int
	// PanelCache, when non-nil, is consulted for per-panel artifacts
	// before each panel is solved and updated with recomputed ones.
	// Content addressing makes it invisible in results (it never affects
	// bytes, only wall clock), so it is excluded from cache-key
	// fingerprints, like Workers.
	//
	//keypurity:exempt content-addressed artifact store; equal keys address byte-identical artifacts, so a cache can only skip recomputation
	PanelCache PanelCache
	// RouteCache, when non-nil, is consulted for per-region route bundles
	// before each region is routed and updated with recomputed ones.
	// Content-addressed like PanelCache, and equally invisible in
	// results.
	//
	//keypurity:exempt content-addressed artifact store; equal keys address byte-identical artifacts, so a cache can only skip recomputation
	RouteCache RouteCache
	// RerunMode selects the routing reuse contract of Rerun: RerunStrict
	// (default, byte-identical) or RerunEcoFast (verified DRC-clean and
	// objective-equal). Ignored on cold runs, which have nothing to
	// reuse.
	//
	//keypurity:exempt reuse-contract selector for Rerun only; eco-fast results are never design-cached (jobs.Submit refuses the key) and cold runs ignore it
	RerunMode RerunMode
	// RuleEngine, when non-empty, overrides the design technology's
	// multi-patterning rule engine ("sadp", "lele", or "tpl") for this
	// run. The run operates on a shallow clone of the design carrying
	// the renamed engine, so the caller's design is untouched; a name
	// matching the design's effective engine is a no-op (keeping content
	// addresses stable). Unknown names fail the run closed. The
	// selection reaches every cache key: the effective engine lands in
	// the designio encoding, the panel/route input encodings, and
	// jobs.Fingerprint.
	RuleEngine string
}

// workers resolves the effective worker count for a run.
func (o Options) workers() int {
	if o.Workers != 0 {
		return parallel.Resolve(o.Workers)
	}
	if o.Parallelism != 0 {
		return parallel.Resolve(o.Parallelism)
	}
	return parallel.Resolve(0)
}

// solverConfig maps the pin-opt-affecting options onto the pipeline's
// solver configuration.
func solverConfig(o Options) pipeline.SolverConfig {
	return pipeline.SolverConfig{
		UseILP: o.Optimizer == OptILP,
		ILP:    o.ILP,
		LR:     o.LR,
		Profit: o.Profit,
	}
}

// SolverConfig exposes the exact Options -> pipeline.SolverConfig mapping
// a run uses, so external cache keying (jobs.Fingerprint) is derived from
// the same fields the pipeline actually consumes and the two can never
// drift apart.
func (o Options) SolverConfig() pipeline.SolverConfig { return solverConfig(o) }

// panelWorkerSplit divides the worker budget between the panel shard
// (outer) and each panel's internal stages (inner) so total concurrency
// never exceeds the budget: outer <= min(workers, panels) and
// outer*inner <= workers. The previous ceil-based split could run up to
// panels*ceil(workers/panels) > workers goroutines when
// 1 < panels < workers.
func panelWorkerSplit(workers, panels int) (outer, inner int) {
	if workers < 1 {
		workers = 1
	}
	if panels < 1 {
		return 0, 1
	}
	outer = workers
	if outer > panels {
		outer = panels
	}
	inner = workers / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// PanelReport records pin access optimization results for one panel.
type PanelReport struct {
	Panel      int
	Pins       int
	Intervals  int
	Conflicts  int
	Objective  float64
	Violations int
	Converged  bool
}

// PinOptReport aggregates pin access optimization over all panels.
type PinOptReport struct {
	Panels         []PanelReport
	TotalPins      int
	TotalIntervals int
	TotalConflicts int
	Objective      float64
	Elapsed        time.Duration
}

// IncrementalStats reports how much of a run was spliced from reuse. It
// is provenance, not result: two runs that differ only in these fields
// (and wall-clock ones) are byte-identical in every output.
type IncrementalStats struct {
	// Panels is the number of non-empty panels in the run.
	Panels int
	// Reused is the number of panels spliced from a previous result's
	// artifacts or the panel cache.
	Reused int
	// Recomputed lists the recomputed (dirty) panel indices, ascending.
	Recomputed []int

	// Regions is the number of independent routing regions of the run.
	Regions int
	// RegionsSpliced counts regions whose route bundles were spliced
	// verbatim (unchanged content keys).
	RegionsSpliced int
	// NetsSpliced counts nets inside spliced regions.
	NetsSpliced int
	// NetsWarm counts nets warm-started from previous routes (eco-fast).
	NetsWarm int
	// NetsRerouted counts nets routed from scratch.
	NetsRerouted int
}

// RunResult is the complete outcome of a flow run.
type RunResult struct {
	Mode    Mode
	PinOpt  *PinOptReport // nil for baseline modes
	Router  *router.Result
	Metrics metrics.Routing
	// Artifacts retains the per-panel pipeline artifacts of a cacheable
	// ModeCPR run, so the result can serve as the baseline of a Rerun.
	// Nil for baseline modes and uncacheable configurations.
	Artifacts *pipeline.ArtifactSet
	// Incremental is set when a reuse source (a Rerun baseline or a
	// PanelCache) was available to the run; nil on plain cold runs.
	Incremental *IncrementalStats
}

// Run executes the selected flow on a validated design. It is the
// background-context wrapper around RunContext.
func Run(d *design.Design, opts Options) (*RunResult, error) {
	return RunContext(context.Background(), d, opts)
}

// RunContext executes the selected flow on a validated design,
// honouring ctx for cancellation: the context is polled between panel
// subproblems, between LR subgradient iterations, and between pipeline
// stages, so a canceled or timed-out run stops doing work promptly and
// returns an error wrapping ctx.Err(). A context that never fires
// leaves the computation byte-identical to Run.
//
//keypurity:entry design
func RunContext(ctx context.Context, d *design.Design, opts Options) (*RunResult, error) {
	return runFlow(ctx, d, opts, reuseInputs{})
}

// Rerun is the incremental (ECO) entry point: it re-optimizes an edited
// design against a previous run's result, recomputing only the panels
// whose content keys changed and splicing the previous artifacts for the
// rest. Dirtying is conservative and correctness-first — a panel is
// recomputed whenever any input that can affect it changed: its own
// pins, the merged M2 blockage spans on its tracks, the bounding box of
// any net it touches (so an edit in one panel dirties every panel that
// net reaches), the grid, the technology, or the solver options.
//
// The hard invariant: the returned result is byte-identical — designio
// encoding, routes, reports, metrics (wall-clock fields aside) — to a
// cold RunContext of the edited design, for every worker count. When
// nothing is reusable (nil prev, baseline modes, changed solver options,
// uncacheable configurations) Rerun degrades to exactly that cold run.
func Rerun(prev *RunResult, edited *design.Design, opts Options) (*RunResult, error) {
	return RerunContext(context.Background(), prev, edited, opts)
}

// RerunContext is Rerun with cancellation (see RunContext).
//
//keypurity:entry design
func RerunContext(ctx context.Context, prev *RunResult, edited *design.Design, opts Options) (*RunResult, error) {
	var reuse reuseInputs
	if prev != nil && prev.Artifacts != nil && opts.Mode == ModeCPR {
		cfg := solverConfig(opts)
		if cfg.Cacheable() && prev.Artifacts.Fingerprint == cfg.Fingerprint() {
			reuse.panels = prev.Artifacts.ByKey()
		}
		// Routing reuse requires an unchanged router fingerprint; the
		// region content keys carry the rest of the invalidation burden.
		if prev.Artifacts.RouterFingerprint != "" &&
			prev.Artifacts.RouterFingerprint == pipeline.RouterFingerprint(opts.Router) {
			reuse.routes = prev.Artifacts.ByRouteKey()
			if opts.RerunMode == RerunEcoFast {
				reuse.warm = prev.Artifacts.WarmIndex()
			}
		}
	}
	return runFlow(ctx, edited, opts, reuse)
}

// runFlow executes the selected flow, optionally splicing per-panel and
// per-region artifacts from a previous run (reuse, keyed by content).
// A telemetry tracer/registry in ctx records the run/pinopt/route span
// tree and stage metrics; telemetry is strictly observational (§4e), so
// results are byte-identical with it on or off.
func runFlow(ctx context.Context, d *design.Design, opts Options, reuse reuseInputs) (*RunResult, error) {
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	d, err := applyRuleEngine(d, opts)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	reg := telemetry.RegistryFrom(ctx)
	ctx, runSpan := telemetry.StartSpan(ctx, "run")
	defer runSpan.End()
	runSpan.SetAttr("mode", opts.Mode.String())
	runSpan.SetAttr("nets", len(d.Nets))
	runSpan.SetAttr("pins", len(d.Pins))
	reg.Counter("cpr_runs_total", "Completed flow runs by mode.",
		telemetry.L("mode", opts.Mode.String())).Inc()

	g := grid.New(d)
	rcfg := opts.Router
	if rcfg.Workers == 0 {
		rcfg.Workers = opts.workers()
	}
	r := router.New(d, g, rcfg)
	res := &RunResult{Mode: opts.Mode}

	switch opts.Mode {
	case ModeCPR:
		report, seeds, arts, inc, err := optimizePanels(ctx, d, opts, reuse.panels)
		if err != nil {
			return nil, err
		}
		res.PinOpt = report
		res.Artifacts = arts
		res.Incremental = inc
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		for _, s := range seeds {
			r.SeedAssignment(s.Set, s.Solution)
		}
		res.Router = routeIncremental(ctx, d, g, opts, r, seeds, reuse, res)
	case ModeNoPinOpt:
		res.Router = runRouter(ctx, r, res)
	case ModeSequential:
		res.Router = r.RunSequential(opts.Sequential)
	default:
		return nil, fmt.Errorf("core: unknown mode %d", opts.Mode)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}

	res.Metrics = metrics.FromResult(d, res.Router)
	if res.PinOpt != nil {
		res.Metrics.CPUSeconds += res.PinOpt.Elapsed.Seconds()
		res.Metrics.OptimizeSeconds = res.PinOpt.Elapsed.Seconds()
	}
	runSpan.SetAttr("routed_nets", res.Router.RoutedNets)
	return res, nil
}

// applyRuleEngine applies Options.RuleEngine to a validated design. A
// selection equal to the design's effective engine returns the design
// unchanged — in particular, "sadp" on a zero-patterning design stays
// byte-identical, so content addresses do not shift. A differing
// selection returns a shallow clone with a cloned technology; the
// caller's design is never mutated.
func applyRuleEngine(d *design.Design, opts Options) (*design.Design, error) {
	if opts.RuleEngine == "" {
		return d, nil
	}
	name, err := tech.ParseEngine(opts.RuleEngine)
	if err != nil {
		return nil, err
	}
	cur, err := tech.ParseEngine(d.Tech.Patterning.Engine)
	if err != nil {
		// Unreachable on a validated design; fail closed regardless.
		return nil, err
	}
	if cur == name {
		return d, nil
	}
	clone := *d
	t := *d.Tech
	t.Patterning.Engine = name
	clone.Tech = &t
	return &clone, nil
}

// runRouter wraps the negotiation router in a "route" span and records
// its stage durations (reusing the router's own suppressed wall-clock
// measurements — no new clock reads in this determinism-restricted
// package).
func runRouter(ctx context.Context, r *router.Router, res *RunResult) *router.Result {
	rctx, span := telemetry.StartSpan(ctx, "route")
	rres := r.RunCtx(rctx)
	span.SetAttr("routed_nets", rres.RoutedNets)
	span.SetAttr("vias", rres.Vias)
	span.SetAttr("wirelength", rres.Wirelength)
	span.SetAttr("negotiation_iters", rres.NegotiationIters)
	span.End()
	if reg := telemetry.RegistryFrom(ctx); reg != nil {
		reg.Histogram("cpr_stage_seconds", "Wall-clock time per pipeline stage.",
			telemetry.DefSecondsBuckets, telemetry.L("stage", "route")).
			Observe(rres.Elapsed.Seconds())
	}
	return rres
}

// PanelSeed couples one panel's interval set with its assignment for
// router seeding.
type PanelSeed struct {
	Set      *pinaccess.Set
	Solution *assign.Solution
}

// OptimizePinAccess runs concurrent pin access optimization on every
// panel of the design with the configured optimizer and returns the
// per-panel reports plus the seeds for the router. Panels are independent
// subproblems solved concurrently on opts.Workers workers (default
// GOMAXPROCS) with byte-identical results for every worker count.
func OptimizePinAccess(d *design.Design, opts Options) (*PinOptReport, []PanelSeed, error) {
	return OptimizePinAccessContext(context.Background(), d, opts)
}

// OptimizePinAccessContext is OptimizePinAccess with cancellation: ctx is
// checked before each panel subproblem starts and between the LR
// subgradient iterations inside each panel, so a canceled run abandons
// remaining work and reports an error wrapping ctx.Err().
//
//keypurity:entry design
func OptimizePinAccessContext(ctx context.Context, d *design.Design, opts Options) (*PinOptReport, []PanelSeed, error) {
	report, seeds, _, _, err := optimizePanels(ctx, d, opts, nil)
	return report, seeds, err
}

// optimizePanels runs the staged pipeline (generate → conflicts →
// assign) over every non-empty panel. Reuse sources, in lookup order:
// opts.PanelCache (so its counters account for every reused panel) and
// the previous run's artifacts (prevArts). The ordered per-slot reduce
// keeps report and seed order byte-identical for every worker count and
// any mix of reused and recomputed panels.
func optimizePanels(ctx context.Context, d *design.Design, opts Options, prevArts map[string]*pipeline.PanelArtifact) (*PinOptReport, []PanelSeed, *pipeline.ArtifactSet, *IncrementalStats, error) {
	start := time.Now() //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	idx := d.BuildTrackIndex()
	cfg := solverConfig(opts)
	cacheable := cfg.Cacheable()

	var panels []int
	for panel := 0; panel < d.NumPanels(); panel++ {
		if len(d.PinsInPanel(panel)) > 0 {
			panels = append(panels, panel)
		}
	}

	// Panels are the outer shard; when there are fewer panels than
	// workers, the leftover budget flows into each panel's per-track and
	// per-conflict-set stages, capped so total concurrency never exceeds
	// the worker budget.
	outer, inner := panelWorkerSplit(opts.workers(), len(panels))

	reg := telemetry.RegistryFrom(ctx)
	ctx, poSpan := telemetry.StartSpan(ctx, "pinopt")
	poSpan.SetAttr("panels", len(panels))
	poSpan.SetAttr("outer_workers", outer)
	poSpan.SetAttr("inner_workers", inner)

	type outcome struct {
		art    *pipeline.PanelArtifact
		reused bool
		err    error
	}
	results := make([]outcome, len(panels))
	solve := func(slot, panel int) {
		// Lanes are keyed by slot, not scheduling order, so the trace
		// layout is deterministic for every worker count.
		pctx, sp := telemetry.StartSpan(ctx, "panel")
		defer sp.End()
		sp.SetLane(slot + 1)
		sp.SetAttr("panel", panel)
		if err := ctx.Err(); err != nil {
			results[slot].err = fmt.Errorf("core: panel %d: %w", panel, err)
			return
		}
		var key string
		if cacheable {
			key = pipeline.PanelKeyFor(d, idx, panel, cfg)
			sp.SetAttr("key", key)
			// The cache is consulted before the previous run's artifacts
			// so its hit counters account for every reused panel (the
			// daemon's panel-level hit rate); equal keys address identical
			// artifacts, so the lookup order cannot affect results.
			if opts.PanelCache != nil {
				if art, ok := panelCacheGet(pctx, opts.PanelCache, key); ok {
					results[slot] = outcome{art: art, reused: true}
					sp.SetAttr("reused", true)
					sp.SetAttr("source", "cache")
					reg.Counter("cpr_panels_total", "Panels processed by artifact source.",
						telemetry.L("source", "cache")).Inc()
					return
				}
			}
			if art, ok := prevArts[key]; ok {
				results[slot] = outcome{art: art, reused: true}
				if opts.PanelCache != nil {
					opts.PanelCache.Put(key, art)
				}
				sp.SetAttr("reused", true)
				sp.SetAttr("source", "prev")
				reg.Counter("cpr_panels_total", "Panels processed by artifact source.",
					telemetry.L("source", "prev")).Inc()
				return
			}
		}
		art, err := pipeline.SolvePanel(pctx, d, idx, panel, d.PinsInPanel(panel), cfg, inner)
		if err != nil {
			results[slot].err = fmt.Errorf("core: panel %d: %w", panel, err)
			return
		}
		if cacheable && opts.PanelCache != nil {
			opts.PanelCache.Put(key, art)
		}
		results[slot] = outcome{art: art}
		sp.SetAttr("reused", false)
		sp.SetAttr("source", "computed")
		sp.SetAttr("pins", len(art.Intervals.Set.PinIDs))
		sp.SetAttr("intervals", len(art.Intervals.Set.Intervals))
		sp.SetAttr("conflicts", art.NumConflicts)
		sp.SetAttr("objective", art.Assignment.Solution.Objective)
		sp.SetAttr("converged", art.Assignment.Converged)
		reg.Counter("cpr_panels_total", "Panels processed by artifact source.",
			telemetry.L("source", "computed")).Inc()
	}

	// Per-slot writes plus the ordered reduce below keep the report and
	// seed order byte-identical for every worker count.
	parallel.ForEach(outer, len(panels), func(slot int) {
		solve(slot, panels[slot])
	})

	report := &PinOptReport{}
	var seeds []PanelSeed
	var arts *pipeline.ArtifactSet
	if cacheable {
		arts = &pipeline.ArtifactSet{Fingerprint: cfg.Fingerprint()}
	}
	var inc *IncrementalStats
	if prevArts != nil || opts.PanelCache != nil {
		inc = &IncrementalStats{Panels: len(panels)}
	}
	for slot, oc := range results {
		if oc.err != nil {
			return nil, nil, nil, nil, oc.err
		}
		art := oc.art
		pr := PanelReport{
			Panel:      art.Panel,
			Pins:       len(art.Intervals.Set.PinIDs),
			Intervals:  len(art.Intervals.Set.Intervals),
			Conflicts:  art.NumConflicts,
			Objective:  art.Assignment.Solution.Objective,
			Violations: art.Assignment.Solution.Violations,
			Converged:  art.Assignment.Converged,
		}
		report.Panels = append(report.Panels, pr)
		report.TotalPins += pr.Pins
		report.TotalIntervals += pr.Intervals
		report.TotalConflicts += pr.Conflicts
		report.Objective += pr.Objective
		seeds = append(seeds, PanelSeed{Set: art.Intervals.Set, Solution: art.Assignment.Solution})
		if arts != nil {
			arts.Panels = append(arts.Panels, art)
		}
		if inc != nil {
			if oc.reused {
				inc.Reused++
			} else {
				inc.Recomputed = append(inc.Recomputed, panels[slot])
			}
		}
	}
	report.Elapsed = time.Since(start) //cprlint:nondeterm wall-clock Elapsed metric only; never reaches the routing result
	poSpan.SetAttr("total_pins", report.TotalPins)
	poSpan.SetAttr("total_intervals", report.TotalIntervals)
	poSpan.SetAttr("total_conflicts", report.TotalConflicts)
	poSpan.SetAttr("objective", report.Objective)
	if inc != nil {
		poSpan.SetAttr("reused", inc.Reused)
	}
	poSpan.End()
	reg.Histogram("cpr_stage_seconds", "Wall-clock time per pipeline stage.",
		telemetry.DefSecondsBuckets, telemetry.L("stage", "pinopt")).
		Observe(report.Elapsed.Seconds())
	return report, seeds, arts, inc, nil
}
