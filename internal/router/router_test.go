package router

import (
	"testing"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/pinaccess"
	"cpr/internal/tech"
)

// twoPinDesign is a single net with pins on the same track, 10 apart.
func twoPinDesign(t *testing.T) *design.Design {
	t.Helper()
	d := design.New("two", 20, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(3, 4, 3, 4))
	d.AddPin("p1", n, geom.MakeRect(13, 4, 13, 4))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRouteSimpleNet(t *testing.T) {
	d := twoPinDesign(t)
	g := grid.New(d)
	res := New(d, g, Config{}).Run()
	if res.RoutedNets != 1 {
		t.Fatalf("routed %d/1 nets: %+v", res.RoutedNets, res.Routes[0])
	}
	nr := res.Routes[0]
	// Straight route: M1 via up, 10 M2 steps, via down = 2 vias, 10 WL.
	if got := nr.Vias(g); got != 2 {
		t.Errorf("vias = %d, want 2", got)
	}
	if got := nr.Wirelength(g); got != 10 {
		t.Errorf("wirelength = %d, want 10", got)
	}
	if res.InitialCongested != 0 {
		t.Errorf("initial congestion = %d, want 0", res.InitialCongested)
	}
}

func TestRouteAroundBlockage(t *testing.T) {
	d := design.New("blk", 20, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(3, 4, 3, 4))
	d.AddPin("p1", n, geom.MakeRect(13, 4, 13, 4))
	// Wall on M2 track 4 between the pins forces a detour via M3.
	d.AddBlockage(tech.M2, geom.MakeRect(8, 4, 8, 4))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{}).Run()
	if res.RoutedNets != 1 {
		t.Fatalf("net not routed: %+v", res.Routes[0])
	}
	nr := res.Routes[0]
	if got := nr.Vias(g); got < 4 {
		t.Errorf("vias = %d, want >= 4 (detour through M3)", got)
	}
	// The blocked cell must not be used.
	for _, id := range nr.Nodes {
		if g.Blocked(id) {
			t.Error("route crosses a blockage")
		}
	}
}

func TestMultiPinNet(t *testing.T) {
	d := design.New("multi", 30, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(2, 4, 2, 4))
	d.AddPin("p1", n, geom.MakeRect(15, 4, 15, 4))
	d.AddPin("p2", n, geom.MakeRect(27, 4, 27, 4))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{}).Run()
	if res.RoutedNets != 1 {
		t.Fatalf("net not routed")
	}
	// Tree connecting collinear pins: about 25 wire edges.
	if wl := res.Routes[0].Wirelength(g); wl < 25 {
		t.Errorf("wirelength = %d, want >= 25", wl)
	}
}

func TestOtherNetsPinsAreBlockages(t *testing.T) {
	// Net 0's only corridor on its track is through net 1's pin on M1 —
	// which must not matter (M1 carries no wires). But net 1's pin M2
	// shadow is open, so net 0 may cross above it on M2.
	d := design.New("cross", 20, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(3, 4, 3, 4))
	d.AddPin("a1", n0, geom.MakeRect(13, 4, 13, 4))
	d.AddPin("b0", n1, geom.MakeRect(8, 4, 8, 4))
	d.AddPin("b1", n1, geom.MakeRect(8, 7, 8, 7))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{}).Run()
	if res.RoutedNets != 2 {
		t.Fatalf("routed %d/2: %v %v", res.RoutedNets,
			res.Routes[0].FailReason, res.Routes[1].FailReason)
	}
	// Net 0 must never enter net 1's pin cells on M1.
	b0 := g.ID(8, 4, tech.M1)
	for _, id := range res.Routes[0].Nodes {
		if id == b0 {
			t.Error("net 0 routed through net 1's pin")
		}
	}
}

func TestSeedAssignmentReservesAndRoutes(t *testing.T) {
	d := twoPinDesign(t)
	g := grid.New(d)
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m := assign.Build(set, assign.SqrtProfit)
	sol := m.MinimumSolution()
	r := New(d, g, Config{})
	r.SeedAssignment(set, sol)
	// The seeded cells belong to net 0 now.
	iv := set.Intervals[sol.ByPin[0]]
	id := g.ID(iv.Span.Lo, iv.Track, tech.M2)
	if g.Owner(id) != 0 {
		t.Error("seeded interval cell not owned")
	}
	res := r.Run()
	if res.RoutedNets != 1 {
		t.Fatalf("seeded net not routed: %+v", res.Routes[0])
	}
}

func TestCongestionForcesNegotiation(t *testing.T) {
	// A vertical wall at x=10 with a single M2 gap at track 4: both nets
	// must squeeze their M2 crossing through the same cells, so the
	// independent stage congests and negotiation must resolve it (here by
	// sacrificing one net; the corridor fits only one).
	d := design.New("contend", 20, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(1, 2, 1, 2))
	d.AddPin("a1", n0, geom.MakeRect(18, 2, 18, 2))
	d.AddPin("b0", n1, geom.MakeRect(1, 6, 1, 6))
	d.AddPin("b1", n1, geom.MakeRect(18, 6, 18, 6))
	d.AddBlockage(tech.M2, geom.MakeRect(10, 0, 10, 3))
	d.AddBlockage(tech.M2, geom.MakeRect(10, 5, 10, 9))
	d.AddBlockage(tech.M3, geom.MakeRect(9, 0, 11, 9))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{SkipDRC: true}).Run()
	if res.InitialCongested == 0 {
		t.Error("expected initial congestion when nets share the only corridor")
	}
	if got := g.CongestedCount(); got != 0 {
		t.Errorf("residual congestion %d after negotiation", got)
	}
	if res.RoutedNets < 1 {
		t.Errorf("routed %d nets, want >= 1", res.RoutedNets)
	}
	if res.RoutedNets+res.CongestionUnrouted+drcCount(res) != 2 {
		t.Errorf("accounting broken: routed=%d congUnrouted=%d", res.RoutedNets, res.CongestionUnrouted)
	}
}

func drcCount(res *Result) int { return res.DRCUnrouted }

func TestUnroutableNetReported(t *testing.T) {
	// A pin fully walled in by blockages (M2 above it is open only at the
	// pin, M3 blocked everywhere around) cannot escape.
	d := design.New("walled", 10, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(4, 4, 4, 4))
	d.AddPin("p1", n, geom.MakeRect(8, 8, 8, 8))
	// Block M2 row 4 except the pin cell, and M3 column 4 entirely.
	d.AddBlockage(tech.M2, geom.MakeRect(0, 4, 3, 4))
	d.AddBlockage(tech.M2, geom.MakeRect(5, 4, 9, 4))
	d.AddBlockage(tech.M3, geom.MakeRect(4, 0, 4, 9))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{}).Run()
	if res.RoutedNets != 0 {
		t.Error("walled-in net should be unroutable")
	}
	if res.Routes[0].FailReason == "" {
		t.Error("unrouted net should carry a fail reason")
	}
}

func TestLineEndSpacingViolationDropsNet(t *testing.T) {
	// Two nets routed head-to-head on the same track with a 2-cell gap;
	// after 1-cell extensions on both sides the gap closes below the
	// spacing rule, so one net must be dropped.
	d := design.New("lineend", 24, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(1, 4, 1, 4))
	d.AddPin("a1", n0, geom.MakeRect(9, 4, 9, 4))
	d.AddPin("b0", n1, geom.MakeRect(12, 4, 12, 4))
	d.AddPin("b1", n1, geom.MakeRect(22, 4, 22, 4))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{}).Run()
	// Straight routes: a covers x1..9, b covers x12..22 on track 4.
	// Extended by 1 the gap closes below the spacing rule, and the pins
	// sit too close for any legal detour, so exactly one net survives —
	// dropped either by clearance-cell negotiation or by the final DRC
	// stage.
	if res.RoutedNets != 1 {
		t.Errorf("routed %d nets, want 1 after line-end enforcement", res.RoutedNets)
	}
	if res.DRCUnrouted+res.CongestionUnrouted != 1 {
		t.Errorf("drc=%d congestion=%d drops, want 1 total",
			res.DRCUnrouted, res.CongestionUnrouted)
	}
}

func TestSkipDRCSkipsOnlyFinalCheck(t *testing.T) {
	// SkipDRC disables the final rule check; line-end clearance cells
	// still participate in negotiation, so the infeasible head-to-head
	// pair resolves through congestion instead.
	d := design.New("lineend2", 24, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(1, 4, 1, 4))
	d.AddPin("a1", n0, geom.MakeRect(9, 4, 9, 4))
	d.AddPin("b0", n1, geom.MakeRect(12, 4, 12, 4))
	d.AddPin("b1", n1, geom.MakeRect(22, 4, 22, 4))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{SkipDRC: true}).Run()
	if res.DRCUnrouted != 0 {
		t.Errorf("SkipDRC ran the DRC stage: drcUnrouted %d", res.DRCUnrouted)
	}
	if res.RoutedNets+res.CongestionUnrouted != 2 {
		t.Errorf("accounting: routed=%d congestion=%d", res.RoutedNets, res.CongestionUnrouted)
	}
}

func TestRunsHelper(t *testing.T) {
	got := runs([]int{5, 1, 2, 3, 7, 8})
	want := []geom.Interval{{Lo: 1, Hi: 3}, {Lo: 5, Hi: 5}, {Lo: 7, Hi: 8}}
	if len(got) != len(want) {
		t.Fatalf("runs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("runs[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if runs(nil) != nil {
		t.Error("runs(nil) should be nil")
	}
}

func TestExtendSegment(t *testing.T) {
	// ext=1, minLen=2, limit=20.
	if got := extendSegment(geom.Interval{Lo: 5, Hi: 8}, 1, 2, 20); got != (geom.Interval{Lo: 4, Hi: 9}) {
		t.Errorf("extend = %v, want [4,9]", got)
	}
	// Clamping at the boundary.
	if got := extendSegment(geom.Interval{Lo: 0, Hi: 2}, 1, 2, 20); got != (geom.Interval{Lo: 0, Hi: 3}) {
		t.Errorf("extend = %v, want [0,3]", got)
	}
	// Min length enforcement on a single-cell strip with no extension.
	if got := extendSegment(geom.Interval{Lo: 4, Hi: 4}, 0, 3, 20); got.Len() != 3 {
		t.Errorf("extend = %v, want length 3", got)
	}
	// Narrow grid caps growth.
	if got := extendSegment(geom.Interval{Lo: 0, Hi: 0}, 0, 5, 3); got.Len() != 3 {
		t.Errorf("extend on narrow grid = %v, want length 3", got)
	}
}

func TestSingleAndZeroPinNets(t *testing.T) {
	d := design.New("deg", 10, 10, tech.Default())
	n0 := d.AddNet("single")
	d.AddPin("p", n0, geom.MakeRect(4, 4, 4, 4))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{}).Run()
	if res.RoutedNets != 1 {
		t.Error("single-pin net should be trivially routed")
	}
	if res.Vias != 0 || res.Wirelength != 0 {
		t.Errorf("trivial net has vias=%d wl=%d", res.Vias, res.Wirelength)
	}
}

func TestNetOrderStrategies(t *testing.T) {
	d := design.New("order", 40, 10, tech.Default())
	// Net 0: long 2-pin; net 1: short 3-pin.
	n0 := d.AddNet("long")
	d.AddPin("l0", n0, geom.MakeRect(1, 2, 1, 2))
	d.AddPin("l1", n0, geom.MakeRect(36, 2, 36, 2))
	n1 := d.AddNet("short")
	d.AddPin("s0", n1, geom.MakeRect(10, 6, 10, 6))
	d.AddPin("s1", n1, geom.MakeRect(14, 6, 14, 6))
	d.AddPin("s2", n1, geom.MakeRect(18, 6, 18, 6))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		order NetOrder
		first int
	}{
		{OrderHPWLAsc, 1},  // short net first
		{OrderHPWLDesc, 0}, // long net first
		{OrderByID, 0},
		{OrderByPins, 1}, // 3-pin net first
	}
	for _, c := range cases {
		g := grid.New(d)
		r := New(d, g, Config{Order: c.order})
		got := r.netOrder()
		if got[0] != c.first {
			t.Errorf("%v: first net %d, want %d", c.order, got[0], c.first)
		}
		// Every strategy still routes everything on this easy design.
		res := r.Run()
		if res.RoutedNets != 2 {
			t.Errorf("%v: routed %d/2", c.order, res.RoutedNets)
		}
	}
}

func TestNetOrderStrings(t *testing.T) {
	if OrderHPWLAsc.String() != "hpwl-asc" || OrderHPWLDesc.String() != "hpwl-desc" ||
		OrderByID.String() != "id" || OrderByPins.String() != "pins" {
		t.Error("NetOrder strings wrong")
	}
}
