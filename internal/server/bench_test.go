package server

import (
	"context"
	"net/http/httptest"
	"testing"

	"cpr/client"
	"cpr/internal/jobs"
)

// benchServer wires a real-pipeline server big enough for the bench
// specs.
func benchServer(b *testing.B) *client.Client {
	b.Helper()
	mgr := jobs.New(jobs.Config{MaxConcurrent: 2}, jobs.NewResultCache(1<<16, 0, 0))
	ts := httptest.NewServer(New(mgr).Handler())
	b.Cleanup(ts.Close)
	return client.New(ts.URL)
}

var benchSpec = client.Spec{Name: "bench", Nets: 20, Width: 80, Height: 30, Seed: 9}

// BenchmarkSubmitCached measures the full HTTP round trip for a request
// answered from the content-addressed cache (no optimizer run).
func BenchmarkSubmitCached(b *testing.B) {
	c := benchServer(b)
	ctx := context.Background()
	if _, err := c.Submit(ctx, client.SubmitRequest{Spec: &benchSpec, Wait: true}); err != nil {
		b.Fatalf("priming run: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		job, err := c.Submit(ctx, client.SubmitRequest{Spec: &benchSpec, Wait: true})
		if err != nil {
			b.Fatalf("submit: %v", err)
		}
		if !job.Cached {
			b.Fatalf("iteration %d missed the cache", i)
		}
	}
}

// BenchmarkSubmitUncached measures the same round trip when every request
// is a novel design and must run the optimizer (seed varies per
// iteration, so no request ever hits the cache).
func BenchmarkSubmitUncached(b *testing.B) {
	c := benchServer(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec := benchSpec
		spec.Seed = int64(1000 + i)
		job, err := c.Submit(ctx, client.SubmitRequest{Spec: &spec, Wait: true})
		if err != nil {
			b.Fatalf("submit: %v", err)
		}
		if job.Cached {
			b.Fatalf("iteration %d unexpectedly hit the cache", i)
		}
	}
}
