// Package other is golden input: packages outside the restricted set
// are not checked.
package other

import "time"

// Stamp is fine here.
func Stamp() time.Time { return time.Now() }
