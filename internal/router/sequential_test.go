package router

import (
	"testing"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/tech"
)

func TestSequentialRoutesSimpleNet(t *testing.T) {
	d := twoPinDesign(t)
	g := grid.New(d)
	res := New(d, g, Config{}).RunSequential(SequentialConfig{})
	if res.RoutedNets != 1 {
		t.Fatalf("sequential routed %d/1: %+v", res.RoutedNets, res.Routes[0])
	}
	if res.Routes[0].Vias(g) != 2 || res.Routes[0].Wirelength(g) != 10 {
		t.Errorf("vias=%d wl=%d, want 2/10",
			res.Routes[0].Vias(g), res.Routes[0].Wirelength(g))
	}
}

func TestSequentialCommitsAreHardBlockages(t *testing.T) {
	// Two parallel nets on the same track: the second must detour because
	// the first's route and clearance are committed.
	d := design.New("seq2", 24, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(2, 4, 2, 4))
	d.AddPin("a1", n0, geom.MakeRect(20, 4, 20, 4))
	d.AddPin("b0", n1, geom.MakeRect(4, 6, 4, 6))
	d.AddPin("b1", n1, geom.MakeRect(18, 6, 18, 6))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{}).RunSequential(SequentialConfig{})
	if res.RoutedNets != 2 {
		t.Fatalf("routed %d/2: %v / %v", res.RoutedNets,
			res.Routes[0].FailReason, res.Routes[1].FailReason)
	}
	// No node shared between the two routes.
	used := make(map[grid.NodeID]int)
	for netID, nr := range res.Routes {
		for _, id := range nr.Nodes {
			if prev, ok := used[id]; ok && prev != netID {
				t.Fatalf("node shared between nets %d and %d", prev, netID)
			}
			used[id] = netID
		}
	}
}

func TestSequentialIsLineEndClean(t *testing.T) {
	// Head-to-head nets on a track: sequential legalization must keep
	// them apart (or defer/fail one), never produce a violating pair.
	d := design.New("seqle", 24, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(1, 4, 1, 4))
	d.AddPin("a1", n0, geom.MakeRect(9, 4, 9, 4))
	d.AddPin("b0", n1, geom.MakeRect(12, 4, 12, 4))
	d.AddPin("b1", n1, geom.MakeRect(22, 4, 22, 4))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	r := New(d, g, Config{})
	res := r.RunSequential(SequentialConfig{})
	// Verify rule cleanliness with the same checker the negotiated flow
	// uses: zero nets must be dropped.
	if dropped := r.wholeShard(res.Routes).enforceLineEndRules(); dropped != 0 {
		t.Errorf("sequential result violated line-end rules; %d nets dropped", dropped)
	}
}

func TestSequentialDefersAndRetries(t *testing.T) {
	// Narrow corridor: one net commits through it; the other is deferred
	// and eventually fails or detours. Either way the run terminates with
	// consistent accounting.
	d := design.New("seqdefer", 20, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(1, 2, 1, 2))
	d.AddPin("a1", n0, geom.MakeRect(18, 2, 18, 2))
	d.AddPin("b0", n1, geom.MakeRect(1, 6, 1, 6))
	d.AddPin("b1", n1, geom.MakeRect(18, 6, 18, 6))
	d.AddBlockage(tech.M2, geom.MakeRect(10, 0, 10, 3))
	d.AddBlockage(tech.M2, geom.MakeRect(10, 5, 10, 9))
	d.AddBlockage(tech.M3, geom.MakeRect(9, 0, 11, 9))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := New(d, g, Config{}).RunSequential(SequentialConfig{})
	if res.RoutedNets < 1 {
		t.Errorf("routed %d, want >= 1", res.RoutedNets)
	}
	unrouted := 0
	for _, nr := range res.Routes {
		if !nr.Routed {
			unrouted++
			if nr.FailReason == "" {
				t.Error("unrouted net lacks fail reason")
			}
		}
	}
	if res.RoutedNets+unrouted != 2 {
		t.Error("net accounting inconsistent")
	}
}

func TestPlanPinAccessReservesAroundPin(t *testing.T) {
	d := twoPinDesign(t)
	g := grid.New(d)
	r := New(d, g, Config{})
	reserved := r.wholeShard(make([]*NetRoute, len(d.Nets))).planPinAccess(0)
	if len(reserved) == 0 {
		t.Fatal("no cells reserved")
	}
	// All reserved cells are on M2 and owned by net 0.
	for _, id := range reserved {
		_, _, z := g.Coords(id)
		if z != tech.M2 {
			t.Error("reserved cell off M2")
		}
		if g.Owner(id) != 0 {
			t.Error("reserved cell not owned")
		}
	}
}
