// Package goroleak flags goroutine launches with no stop path: the
// launched body (or, interprocedurally, the launched function per its
// funcsum summary) runs an unconditional loop containing no return,
// break, channel receive, select, or range-over-channel — so no
// cancellation signal, drain, or queue close can ever reach it, and it
// leaks for the life of the process. One-shot goroutines and worker
// loops that drain a channel are fine by construction.
package goroleak

import (
	"go/ast"

	"cpr/internal/analysis"
	"cpr/internal/analysis/funcsum"
)

// Analyzer reports unstoppable goroutine launches.
var Analyzer = &analysis.Analyzer{
	Name:     "goroleak",
	Doc:      "reports goroutine launches whose body runs an unconditional loop with no cancellation, stop, or drain path (no return, break, channel receive, or select), including loops reached through called functions",
	Requires: []*analysis.Analyzer{funcsum.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			check(pass, g)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, g *ast.GoStmt) {
	if fl, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		if _, bad := funcsum.UnstoppableLoopIn(pass.TypesInfo, fl.Body); bad {
			pass.Reportf(g.Go,
				"goroutine body runs an unconditional loop with no stop path (no return, break, channel receive, or select); add a cancellation or drain signal, or annotate with //cprlint:goroleak <reason>")
			return
		}
		// The literal may reach an unstoppable loop through a call.
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.CallExpr:
				reportUnstoppableCallee(pass, g, x)
			}
			return true
		})
		return
	}
	reportUnstoppableCallee(pass, g, g.Call)
}

// reportUnstoppableCallee flags a goroutine whose (possibly indirect)
// target function has an Unstoppable summary.
func reportUnstoppableCallee(pass *analysis.Pass, g *ast.GoStmt, call *ast.CallExpr) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sum, ok := funcsum.LookupSummary(pass, fn)
	if !ok || sum.Unstoppable == nil {
		return
	}
	pass.Reportf(g.Go,
		"goroutine runs %s with no stop path: %s; add a cancellation or drain signal, or annotate with //cprlint:goroleak <reason>",
		fn.Name(), sum.Unstoppable.String())
}
