// Package floatreduce flags parallel floating point reductions that
// bypass the order-preserving merge discipline of internal/parallel.
//
// Floating point addition is not associative: accumulating into a
// shared variable from concurrently-running closures makes the result
// depend on goroutine completion order, which breaks the pipeline's
// byte-identical-for-any-Workers contract (and with it the cprd cache).
// The sanctioned pattern is the internal/parallel one: job i writes
// only slot i of a result slice, and the caller reduces the slots in
// index order after the join. Accordingly, indexed writes (out[i] ...)
// from inside a parallel closure are allowed; accumulation into a
// captured scalar or field is flagged.
package floatreduce

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"cpr/internal/analysis"
)

// Analyzer is the floatreduce pass.
var Analyzer = &analysis.Analyzer{
	Name: "floatreduce",
	Doc:  "flags float accumulation into captured variables from goroutines or internal/parallel closures; reductions must be per-slot with an ordered merge",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "/internal/parallel") || pass.Pkg.Path() == "internal/parallel" {
		// The pool implements the contract; it is not subject to it.
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.GoStmt:
				if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
					checkClosure(pass, lit, "goroutine")
				}
			case *ast.CallExpr:
				fn := analysis.FuncOf(pass.TypesInfo, s)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				p := fn.Pkg().Path()
				if !strings.HasSuffix(p, "/internal/parallel") && p != "internal/parallel" {
					return true
				}
				for _, arg := range s.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkClosure(pass, lit, "parallel."+fn.Name()+" closure")
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkClosure flags float accumulation into variables captured from
// outside the closure. Indexed targets (out[i] += x) are the per-slot
// idiom and stay legal.
func checkClosure(pass *analysis.Pass, lit *ast.FuncLit, where string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch as.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			target := as.Lhs[0]
			if isIndexed(target) {
				return true
			}
			v := capturedVar(pass.TypesInfo, target, lit)
			if v == nil {
				return true
			}
			if t := pass.TypesInfo.Types[target].Type; t != nil && analysis.IsFloat(t) {
				pass.Reportf(as.Pos(),
					"float accumulation into captured %q inside a %s: completion order changes the sum; write per-slot results and reduce in index order (internal/parallel contract)",
					v.Name(), where)
			}
		case token.ASSIGN:
			for i, rhs := range as.Rhs {
				if i >= len(as.Lhs) || isIndexed(as.Lhs[i]) {
					continue
				}
				v := capturedVar(pass.TypesInfo, as.Lhs[i], lit)
				if v == nil || !analysis.IsFloat(v.Type()) {
					continue
				}
				if mentionsVar(pass.TypesInfo, rhs, v) {
					pass.Reportf(as.Pos(),
						"float accumulation into captured %q inside a %s: completion order changes the sum; write per-slot results and reduce in index order (internal/parallel contract)",
						v.Name(), where)
				}
			}
		}
		return true
	})
}

// isIndexed reports whether the lvalue is an element write (the legal
// per-slot pattern).
func isIndexed(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.IndexExpr)
	return ok
}

// capturedVar resolves an lvalue to a variable declared outside lit
// (nil when the target is closure-local or unresolvable).
func capturedVar(info *types.Info, e ast.Expr, lit *ast.FuncLit) *types.Var {
	var root *types.Var
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		root, _ = info.Uses[x].(*types.Var)
	case *ast.SelectorExpr:
		// Field write: capture decided by the base of the chain.
		base := x.X
		for {
			if sel, ok := ast.Unparen(base).(*ast.SelectorExpr); ok {
				base = sel.X
				continue
			}
			break
		}
		if id, ok := ast.Unparen(base).(*ast.Ident); ok {
			root, _ = info.Uses[id].(*types.Var)
		}
	case *ast.StarExpr:
		return capturedVar(info, x.X, lit)
	}
	if root == nil {
		return nil
	}
	if root.Pos() >= lit.Pos() && root.Pos() <= lit.End() {
		return nil // declared inside the closure
	}
	return root
}

// mentionsVar reports whether expr reads v (the x = x + e pattern).
func mentionsVar(info *types.Info, expr ast.Expr, v *types.Var) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == v {
			found = true
		}
		return !found
	})
	return found
}
