// Package design models the physical design that pin access optimization
// and routing operate on: I/O pins on M1, nets, routing blockages, and the
// panel decomposition induced by standard cell rows.
//
// Coordinates are integer grid units. The routing grid spans x in
// [0, Width) and y in [0, Height). Each y grid line on M2 is one routing
// track; tech.Technology.TracksPerPanel consecutive tracks form one panel
// (one standard cell row).
package design

import (
	"fmt"
	"sort"

	"cpr/internal/geom"
	"cpr/internal/tech"
)

// Pin is a standard cell I/O pin. Pins live on M1; Shape.XSpan() gives the
// grid columns the pin covers and Shape.YSpan() the M2 tracks it overlaps.
type Pin struct {
	ID    int
	Name  string
	NetID int
	Shape geom.Rect
}

// Panel returns the panel index the pin belongs to (the panel of its lowest
// track).
func (p *Pin) Panel(t *tech.Technology) int { return t.PanelOfTrack(p.Shape.Y0) }

// Net is a set of electrically equivalent pins that must be connected.
type Net struct {
	ID     int
	Name   string
	PinIDs []int
}

// Blockage is a rectangular routing obstruction on a single layer.
type Blockage struct {
	Layer int
	Shape geom.Rect
}

// Design is an immutable-after-construction physical design. Build it with
// New and the Add* methods, then call Validate once before use.
type Design struct {
	Name   string
	Width  int
	Height int
	Tech   *tech.Technology

	Pins      []Pin
	Nets      []Net
	Blockages []Blockage
}

// New returns an empty design on a Width x Height grid.
func New(name string, width, height int, t *tech.Technology) *Design {
	return &Design{Name: name, Width: width, Height: height, Tech: t}
}

// AddNet appends a new empty net and returns its ID.
func (d *Design) AddNet(name string) int {
	id := len(d.Nets)
	d.Nets = append(d.Nets, Net{ID: id, Name: name})
	return id
}

// AddPin appends a pin attached to net netID and returns the pin ID.
func (d *Design) AddPin(name string, netID int, shape geom.Rect) int {
	id := len(d.Pins)
	d.Pins = append(d.Pins, Pin{ID: id, Name: name, NetID: netID, Shape: shape})
	d.Nets[netID].PinIDs = append(d.Nets[netID].PinIDs, id)
	return id
}

// AddBlockage appends a routing blockage.
func (d *Design) AddBlockage(layer int, shape geom.Rect) {
	d.Blockages = append(d.Blockages, Blockage{Layer: layer, Shape: shape})
}

// NumPanels returns the number of panels covering the design height.
// A partially covered top row still counts as a panel.
func (d *Design) NumPanels() int {
	tp := d.Tech.TracksPerPanel
	return (d.Height + tp - 1) / tp
}

// NetBBox returns the bounding box of all pin shapes of net netID.
func (d *Design) NetBBox(netID int) geom.Rect {
	box := geom.Rect{X0: 0, Y0: 0, X1: -1, Y1: -1}
	for _, pid := range d.Nets[netID].PinIDs {
		box = box.Union(d.Pins[pid].Shape)
	}
	return box
}

// HPWL returns the half-perimeter wirelength of net netID.
func (d *Design) HPWL(netID int) int {
	box := d.NetBBox(netID)
	if box.Empty() {
		return 0
	}
	return (box.Width() - 1) + (box.Height() - 1)
}

// PinsInPanel returns the IDs of pins whose lowest track lies in panel p,
// in ascending pin ID order.
func (d *Design) PinsInPanel(p int) []int {
	var ids []int
	for i := range d.Pins {
		if d.Pins[i].Panel(d.Tech) == p {
			ids = append(ids, i)
		}
	}
	return ids
}

// Validate checks structural invariants:
//   - the grid is non-empty and pins/blockages lie within it,
//   - every net has at least one pin,
//   - pin shapes are pairwise disjoint,
//   - each pin stays within a single panel,
//   - no M2 blockage overlaps a pin shape (which would make the minimum
//     pin access interval of Theorem 1 infeasible).
func (d *Design) Validate() error {
	if d.Tech == nil {
		return fmt.Errorf("design %q: nil technology", d.Name)
	}
	if err := d.Tech.Validate(); err != nil {
		return fmt.Errorf("design %q: %w", d.Name, err)
	}
	if d.Width <= 0 || d.Height <= 0 {
		return fmt.Errorf("design %q: non-positive grid %dx%d", d.Name, d.Width, d.Height)
	}
	grid := geom.Rect{X0: 0, Y0: 0, X1: d.Width - 1, Y1: d.Height - 1}
	for i := range d.Nets {
		if len(d.Nets[i].PinIDs) == 0 {
			return fmt.Errorf("design %q: net %q has no pins", d.Name, d.Nets[i].Name)
		}
	}
	for i := range d.Pins {
		p := &d.Pins[i]
		if p.Shape.Empty() {
			return fmt.Errorf("design %q: pin %q has empty shape", d.Name, p.Name)
		}
		if !grid.Contains(p.Shape.X0, p.Shape.Y0) || !grid.Contains(p.Shape.X1, p.Shape.Y1) {
			return fmt.Errorf("design %q: pin %q %v outside grid %v", d.Name, p.Name, p.Shape, grid)
		}
		if p.NetID < 0 || p.NetID >= len(d.Nets) {
			return fmt.Errorf("design %q: pin %q has invalid net %d", d.Name, p.Name, p.NetID)
		}
		if d.Tech.PanelOfTrack(p.Shape.Y0) != d.Tech.PanelOfTrack(p.Shape.Y1) {
			return fmt.Errorf("design %q: pin %q straddles panels", d.Name, p.Name)
		}
	}
	if err := d.checkPinDisjointness(); err != nil {
		return err
	}
	for _, b := range d.Blockages {
		if b.Shape.Empty() {
			return fmt.Errorf("design %q: empty blockage on layer %d", d.Name, b.Layer)
		}
		if b.Layer < 0 || b.Layer >= tech.NumLayers {
			return fmt.Errorf("design %q: blockage on invalid layer %d", d.Name, b.Layer)
		}
		if !grid.Contains(b.Shape.X0, b.Shape.Y0) || !grid.Contains(b.Shape.X1, b.Shape.Y1) {
			return fmt.Errorf("design %q: blockage %v outside grid", d.Name, b.Shape)
		}
		if b.Layer == tech.M2 {
			for i := range d.Pins {
				if d.Pins[i].Shape.Overlaps(b.Shape) {
					return fmt.Errorf("design %q: M2 blockage %v overlaps pin %q",
						d.Name, b.Shape, d.Pins[i].Name)
				}
			}
		}
	}
	return nil
}

// checkPinDisjointness verifies pin shapes are pairwise disjoint using a
// per-track sweep, which is near-linear for realistic designs.
func (d *Design) checkPinDisjointness() error {
	type span struct {
		iv  geom.Interval
		pin int
	}
	byTrack := make(map[int][]span)
	for i := range d.Pins {
		sh := d.Pins[i].Shape
		for y := sh.Y0; y <= sh.Y1; y++ {
			byTrack[y] = append(byTrack[y], span{sh.XSpan(), i})
		}
	}
	for y, spans := range byTrack {
		sort.Slice(spans, func(a, b int) bool {
			if spans[a].iv.Lo != spans[b].iv.Lo {
				return spans[a].iv.Lo < spans[b].iv.Lo
			}
			return spans[a].pin < spans[b].pin
		})
		for i := 1; i < len(spans); i++ {
			if spans[i].iv.Lo <= spans[i-1].iv.Hi {
				return fmt.Errorf("design %q: pins %q and %q overlap on track %d",
					d.Name, d.Pins[spans[i-1].pin].Name, d.Pins[spans[i].pin].Name, y)
			}
		}
	}
	return nil
}

// TrackIndex accelerates per-track queries: which pins and which M2
// blockage spans touch each track. Build it once per design with
// BuildTrackIndex after the design is complete.
type TrackIndex struct {
	design *Design

	// pinsOnTrack[y] lists pin IDs whose shape overlaps track y, sorted
	// by the pin's X0.
	pinsOnTrack [][]int

	// blockedOnTrack[y] lists M2 blockage X spans on track y, sorted and
	// merged so they are disjoint and non-adjacent.
	blockedOnTrack [][]geom.Interval
}

// BuildTrackIndex constructs the per-track index.
func (d *Design) BuildTrackIndex() *TrackIndex {
	idx := &TrackIndex{
		design:         d,
		pinsOnTrack:    make([][]int, d.Height),
		blockedOnTrack: make([][]geom.Interval, d.Height),
	}
	for i := range d.Pins {
		sh := d.Pins[i].Shape
		for y := sh.Y0; y <= sh.Y1 && y < d.Height; y++ {
			if y < 0 {
				continue
			}
			idx.pinsOnTrack[y] = append(idx.pinsOnTrack[y], i)
		}
	}
	for y := range idx.pinsOnTrack {
		pins := idx.pinsOnTrack[y]
		sort.Slice(pins, func(a, b int) bool {
			return d.Pins[pins[a]].Shape.X0 < d.Pins[pins[b]].Shape.X0
		})
	}
	for _, b := range d.Blockages {
		if b.Layer != tech.M2 {
			continue
		}
		for y := b.Shape.Y0; y <= b.Shape.Y1 && y < d.Height; y++ {
			if y < 0 {
				continue
			}
			idx.blockedOnTrack[y] = append(idx.blockedOnTrack[y], b.Shape.XSpan())
		}
	}
	for y := range idx.blockedOnTrack {
		idx.blockedOnTrack[y] = MergeIntervals(idx.blockedOnTrack[y])
	}
	return idx
}

// PinsOnTrack returns the pin IDs overlapping track y, sorted by X0.
// The returned slice must not be modified.
func (ti *TrackIndex) PinsOnTrack(y int) []int {
	if y < 0 || y >= len(ti.pinsOnTrack) {
		return nil
	}
	return ti.pinsOnTrack[y]
}

// BlockedSpans returns the merged M2 blockage spans on track y.
// The returned slice must not be modified.
func (ti *TrackIndex) BlockedSpans(y int) []geom.Interval {
	if y < 0 || y >= len(ti.blockedOnTrack) {
		return nil
	}
	return ti.blockedOnTrack[y]
}

// FreeSpanAround returns the maximal unblocked interval on track y that
// contains the whole seed interval, clipped to [0, Width). If the seed is
// blocked or out of range, it returns an empty interval.
func (ti *TrackIndex) FreeSpanAround(y int, seed geom.Interval) geom.Interval {
	if y < 0 || y >= len(ti.blockedOnTrack) || seed.Empty() {
		return geom.EmptyInterval()
	}
	span := geom.Interval{Lo: 0, Hi: ti.design.Width - 1}
	for _, b := range ti.blockedOnTrack[y] {
		if b.Overlaps(seed) {
			return geom.EmptyInterval()
		}
		if b.Hi < seed.Lo && b.Hi+1 > span.Lo {
			span.Lo = b.Hi + 1
		}
		if b.Lo > seed.Hi && b.Lo-1 < span.Hi {
			span.Hi = b.Lo - 1
		}
	}
	return span
}

// MergeIntervals sorts the given intervals and merges overlapping or
// adjacent ones into a minimal disjoint set.
func MergeIntervals(ivs []geom.Interval) []geom.Interval {
	var nonEmpty []geom.Interval
	for _, iv := range ivs {
		if !iv.Empty() {
			nonEmpty = append(nonEmpty, iv)
		}
	}
	if len(nonEmpty) == 0 {
		return nil
	}
	sort.Slice(nonEmpty, func(a, b int) bool { return nonEmpty[a].Lo < nonEmpty[b].Lo })
	out := nonEmpty[:1]
	for _, iv := range nonEmpty[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi+1 {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// Stats summarizes a design for reporting.
type Stats struct {
	Nets      int
	Pins      int
	Blockages int
	Panels    int
	AvgDegree float64
}

// ComputeStats returns summary statistics for the design.
func (d *Design) ComputeStats() Stats {
	s := Stats{
		Nets:      len(d.Nets),
		Pins:      len(d.Pins),
		Blockages: len(d.Blockages),
		Panels:    d.NumPanels(),
	}
	if s.Nets > 0 {
		s.AvgDegree = float64(s.Pins) / float64(s.Nets)
	}
	return s
}
