package pinaccess

import (
	"testing"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/tech"
)

// figure3aDesign reconstructs the scenario of paper Figure 3(a): pin a1
// spans three tracks; its net bounding box is set by same-net pins a2/a3;
// track 1 carries a blockage; track 2 carries diff-net pins b1 and d1 to
// the right of a1. The paper counts 8 generated intervals for a1.
func figure3aDesign(t *testing.T) (*design.Design, int) {
	t.Helper()
	d := design.New("fig3a", 20, 10, tech.Default())
	netA := d.AddNet("a")
	netB := d.AddNet("b")
	netD := d.AddNet("d")
	a1 := d.AddPin("a1", netA, geom.MakeRect(8, 0, 8, 2)) // tracks 0..2
	d.AddPin("a2", netA, geom.MakeRect(0, 4, 0, 4))       // sets bbox left edge
	d.AddPin("a3", netA, geom.MakeRect(19, 4, 19, 4))     // sets bbox right edge
	d.AddPin("b1", netB, geom.MakeRect(12, 2, 12, 2))     // diff-net, track 2
	d.AddPin("d1", netD, geom.MakeRect(16, 2, 16, 2))     // diff-net, track 2
	d.AddBlockage(tech.M2, geom.MakeRect(14, 1, 19, 1))   // blocks track 1 right part
	if err := d.Validate(); err != nil {
		t.Fatalf("fig3a design invalid: %v", err)
	}
	return d, a1
}

func TestFigure3aIntervalCount(t *testing.T) {
	d, a1 := figure3aDesign(t)
	idx := d.BuildTrackIndex()
	set, err := Generate(d, idx, []int{a1})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "There are 8 pin access intervals generated for pin a1
	// across 3 tracks."
	if got := len(set.ByPin[a1]); got != 8 {
		for _, id := range set.ByPin[a1] {
			iv := set.Intervals[id]
			t.Logf("interval track=%d span=%v min=%d", iv.Track, iv.Span, iv.MinForPin)
		}
		t.Fatalf("got %d intervals for a1, want 8", got)
	}
}

func TestFigure3aIntervalShapes(t *testing.T) {
	d, a1 := figure3aDesign(t)
	idx := d.BuildTrackIndex()
	set, err := Generate(d, idx, []int{a1})
	if err != nil {
		t.Fatal(err)
	}
	type want struct {
		track int
		span  geom.Interval
	}
	wants := []want{
		{0, geom.Interval{Lo: 8, Hi: 8}},  // min on t1
		{0, geom.Interval{Lo: 0, Hi: 19}}, // max on t1: full bbox
		{1, geom.Interval{Lo: 8, Hi: 8}},  // min on t2
		{1, geom.Interval{Lo: 0, Hi: 13}}, // max on t2: clipped by blockage
		{2, geom.Interval{Lo: 8, Hi: 8}},  // min on t3
		{2, geom.Interval{Lo: 0, Hi: 11}}, // I1: ends before b1 (paper's Ia1_1)
		{2, geom.Interval{Lo: 0, Hi: 15}}, // I2: ends before d1 (paper's Ia1_2)
		{2, geom.Interval{Lo: 0, Hi: 19}}, // max on t3: full bbox
	}
	have := make(map[want]bool)
	for _, id := range set.ByPin[a1] {
		iv := set.Intervals[id]
		have[want{iv.Track, iv.Span}] = true
	}
	for _, w := range wants {
		if !have[w] {
			t.Errorf("missing interval track=%d span=%v", w.track, w.span)
		}
	}
}

func TestMinIntervalsMarked(t *testing.T) {
	d, a1 := figure3aDesign(t)
	idx := d.BuildTrackIndex()
	set, err := Generate(d, idx, []int{a1})
	if err != nil {
		t.Fatal(err)
	}
	for track := 0; track <= 2; track++ {
		id := set.MinInterval(a1, track)
		if id < 0 {
			t.Errorf("no minimum interval on track %d", track)
			continue
		}
		iv := set.Intervals[id]
		if iv.Span != d.Pins[a1].Shape.XSpan() {
			t.Errorf("min interval on track %d has span %v, want pin span", track, iv.Span)
		}
	}
	if set.AnyMinInterval(a1) != set.MinInterval(a1, 0) {
		t.Error("AnyMinInterval should return the lowest-track minimum")
	}
}

// TestIntraPanelConnectionSharing verifies that one interval covering two
// same-net pins on a track is generated once and appears in both pins' S_j
// (the paper's Figure 3(b) / Figure 4(b) I^c1_1 = I^c2_1 case).
func TestIntraPanelConnectionSharing(t *testing.T) {
	d := design.New("shared", 12, 10, tech.Default())
	nc := d.AddNet("c")
	c1 := d.AddPin("c1", nc, geom.MakeRect(2, 3, 2, 3))
	c2 := d.AddPin("c2", nc, geom.MakeRect(8, 3, 8, 3))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	idx := d.BuildTrackIndex()
	set, err := Generate(d, idx, []int{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	// The maximum interval [2,8] on track 3 covers both pins and must be
	// a single deduplicated interval.
	var shared *Interval
	for i := range set.Intervals {
		iv := &set.Intervals[i]
		if iv.Track == 3 && iv.Span == (geom.Interval{Lo: 2, Hi: 8}) {
			shared = iv
		}
	}
	if shared == nil {
		t.Fatal("missing shared maximum interval [2,8]")
	}
	if len(shared.PinIDs) != 2 || !shared.Covers(c1) || !shared.Covers(c2) {
		t.Errorf("shared interval covers %v, want both pins", shared.PinIDs)
	}
	inC1, inC2 := false, false
	for _, id := range set.ByPin[c1] {
		if id == shared.ID {
			inC1 = true
		}
	}
	for _, id := range set.ByPin[c2] {
		if id == shared.ID {
			inC2 = true
		}
	}
	if !inC1 || !inC2 {
		t.Error("shared interval must appear in both pins' S_j")
	}
}

func TestSingleIsolatedPin(t *testing.T) {
	d := design.New("iso", 10, 10, tech.Default())
	n := d.AddNet("n")
	p := d.AddPin("p", n, geom.MakeRect(4, 5, 5, 5))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	idx := d.BuildTrackIndex()
	set, err := Generate(d, idx, []int{p})
	if err != nil {
		t.Fatal(err)
	}
	// Single-pin net: bbox equals the pin span, so min == max and exactly
	// one interval exists.
	if len(set.Intervals) != 1 {
		t.Fatalf("got %d intervals, want 1: %+v", len(set.Intervals), set.Intervals)
	}
	iv := set.Intervals[0]
	if iv.Span != (geom.Interval{Lo: 4, Hi: 5}) || iv.MinForPin != p {
		t.Errorf("interval = %+v", iv)
	}
}

func TestEveryPinHasMinimumInterval(t *testing.T) {
	d, a1 := figure3aDesign(t)
	idx := d.BuildTrackIndex()
	all := []int{a1, 1, 2, 3, 4} // every pin in the design
	set, err := Generate(d, idx, all)
	if err != nil {
		t.Fatal(err)
	}
	for _, pid := range all {
		if set.AnyMinInterval(pid) < 0 {
			t.Errorf("pin %q lacks a minimum interval", d.Pins[pid].Name)
		}
	}
}

// TestMinimumIntervalsConflictFree is the Theorem 1 property: the minimum
// intervals of distinct pins never overlap, because pin shapes are
// disjoint.
func TestMinimumIntervalsConflictFree(t *testing.T) {
	d, a1 := figure3aDesign(t)
	idx := d.BuildTrackIndex()
	all := []int{a1, 1, 2, 3, 4}
	set, err := Generate(d, idx, all)
	if err != nil {
		t.Fatal(err)
	}
	var mins []Interval
	for i := range set.Intervals {
		if set.Intervals[i].MinForPin >= 0 {
			mins = append(mins, set.Intervals[i])
		}
	}
	for i := 0; i < len(mins); i++ {
		for j := i + 1; j < len(mins); j++ {
			if mins[i].Track == mins[j].Track &&
				mins[i].MinForPin != mins[j].MinForPin &&
				mins[i].Span.Overlaps(mins[j].Span) {
				t.Errorf("min intervals of pins %d and %d overlap on track %d",
					mins[i].MinForPin, mins[j].MinForPin, mins[i].Track)
			}
		}
	}
}

func TestIntervalsStayInsideBBoxAndUnblocked(t *testing.T) {
	d, a1 := figure3aDesign(t)
	idx := d.BuildTrackIndex()
	set, err := Generate(d, idx, []int{a1})
	if err != nil {
		t.Fatal(err)
	}
	bbox := d.NetBBox(d.Pins[a1].NetID).XSpan()
	for _, id := range set.ByPin[a1] {
		iv := set.Intervals[id]
		if !bbox.ContainsInterval(iv.Span) {
			t.Errorf("interval %v outside net bbox %v", iv.Span, bbox)
		}
		for _, b := range idx.BlockedSpans(iv.Track) {
			if b.Overlaps(iv.Span) {
				t.Errorf("interval %v overlaps blockage %v on track %d", iv.Span, b, iv.Track)
			}
		}
	}
}

func TestGenerateRejectsBadPinID(t *testing.T) {
	d, _ := figure3aDesign(t)
	idx := d.BuildTrackIndex()
	if _, err := Generate(d, idx, []int{99}); err == nil {
		t.Error("want error for out-of-range pin ID")
	}
}

func TestCutLinesOnLeftSide(t *testing.T) {
	// Mirror of the figure: diff-net pins on the LEFT of the target pin
	// must produce left cut-line candidates.
	d := design.New("left", 20, 10, tech.Default())
	na := d.AddNet("a")
	nb := d.AddNet("b")
	p := d.AddPin("p", na, geom.MakeRect(15, 2, 15, 2))
	d.AddPin("pl", na, geom.MakeRect(0, 2, 0, 2)) // bbox to the left
	d.AddPin("q", nb, geom.MakeRect(5, 2, 6, 2))  // diff-net on the left
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	idx := d.BuildTrackIndex()
	set, err := Generate(d, idx, []int{p})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, id := range set.ByPin[p] {
		iv := set.Intervals[id]
		if iv.Track == 2 && iv.Span == (geom.Interval{Lo: 7, Hi: 15}) {
			found = true // starts right after q's cut line
		}
	}
	if !found {
		t.Error("missing left cut-line interval [7,15]")
	}
}

func TestMaxSpanRadiusClipsIntervals(t *testing.T) {
	d, a1 := figure3aDesign(t)
	idx := d.BuildTrackIndex()
	set, err := GenerateWithOptions(d, idx, []int{a1}, Options{MaxSpanRadius: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Pin a1 sits at x=8; the window is [5, 11]. Every interval must stay
	// inside it.
	for _, id := range set.ByPin[a1] {
		iv := set.Intervals[id]
		if iv.Span.Lo < 5 || iv.Span.Hi > 11 {
			t.Errorf("interval %v escapes the clipped window [5,11]", iv.Span)
		}
	}
	// The minimum interval must survive clipping (Theorem 1).
	if set.AnyMinInterval(a1) < 0 {
		t.Error("minimum interval lost under MaxSpanRadius")
	}
	// Clipping must reduce the candidate count vs the unclipped run.
	full, err := Generate(d, idx, []int{a1})
	if err != nil {
		t.Fatal(err)
	}
	if len(set.ByPin[a1]) >= len(full.ByPin[a1]) {
		t.Errorf("clipped run has %d intervals, full run %d; expected fewer",
			len(set.ByPin[a1]), len(full.ByPin[a1]))
	}
}

func TestMaxSpanRadiusAlwaysCoversSeed(t *testing.T) {
	// Even a radius smaller than the pin span keeps the seed covered.
	d := design.New("wide", 30, 10, tech.Default())
	n := d.AddNet("n")
	p := d.AddPin("wide", n, geom.MakeRect(10, 4, 14, 4))
	d.AddPin("far", n, geom.MakeRect(28, 4, 28, 4))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	set, err := GenerateWithOptions(d, d.BuildTrackIndex(), []int{p}, Options{MaxSpanRadius: 1})
	if err != nil {
		t.Fatal(err)
	}
	seed := d.Pins[p].Shape.XSpan()
	for _, id := range set.ByPin[p] {
		if !set.Intervals[id].Span.ContainsInterval(seed) {
			t.Errorf("interval %v does not cover the pin", set.Intervals[id].Span)
		}
	}
}
