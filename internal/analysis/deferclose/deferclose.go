// Package deferclose flags acquired resources — files, listeners,
// connections, HTTP response bodies — that a function neither releases
// nor hands off. A resource counts as released when any path calls
// Close through it (directly, deferred, or inside a closure:
// `v.Close()`, `defer v.Body.Close()`); it counts as handed off when
// the variable itself escapes the function (returned, passed as an
// argument, stored, sent, or aliased) — ownership moved, the check
// follows it no further. Acquisition is interprocedural: a module
// function whose funcsum summary says it acquires-and-returns a
// resource obligates its callers exactly like os.Open does.
package deferclose

import (
	"go/ast"
	"go/token"
	"go/types"

	"cpr/internal/analysis"
	"cpr/internal/analysis/funcsum"
)

// Analyzer reports acquired-but-never-released resources.
var Analyzer = &analysis.Analyzer{
	Name:     "deferclose",
	Doc:      "reports resources (files, listeners, connections, response bodies) acquired by a function but neither closed on any path nor handed off to a caller, including resources acquired through module functions that return them",
	Requires: []*analysis.Analyzer{funcsum.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

// tracked is one acquired resource bound to a local variable.
type tracked struct {
	v        *types.Var
	kind     string
	from     string // callee display name
	pos      token.Pos
	released bool
	escaped  bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var resources []*tracked
	byVar := make(map[*types.Var]*tracked)

	// Pass 1: find acquisitions. Goroutine bodies and non-immediate
	// literals are separate execution contexts; skip them (their
	// acquisitions would need their own function to be summarized).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(x.X).(*ast.CallExpr); ok {
				if kind, from, ok := acquisition(pass, call); ok {
					pass.Reportf(call.Pos(),
						"%s acquired from %s is discarded without being closed; bind and release it or annotate with //cprlint:deferclose <reason>",
						kind, from)
				}
			}
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, from, ok := acquisition(pass, call)
			if !ok {
				return true
			}
			for _, lhs := range x.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				var v *types.Var
				if d, ok := info.Defs[id].(*types.Var); ok {
					v = d
				} else if u, ok := info.Uses[id].(*types.Var); ok {
					v = u
				}
				if v == nil || !funcsum.IsResource(v.Type()) {
					continue
				}
				t := &tracked{v: v, kind: kind, from: from, pos: id.Pos()}
				resources = append(resources, t)
				byVar[v] = t
			}
		}
		return true
	})
	if len(resources) == 0 {
		return
	}

	// Pass 2: releases and escapes, everywhere in the function
	// including closures (a deferred closure closing the resource
	// counts as a release; the variable escaping as a bare value
	// transfers ownership).
	baseOf := make(map[*ast.Ident]bool) // idents that are selector chain roots
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.SelectorExpr:
			if root := rootIdent(x.X); root != nil {
				baseOf[root] = true
			}
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Close" {
				if root := rootIdent(sel.X); root != nil {
					if v, ok := info.Uses[root].(*types.Var); ok {
						if t, ok := byVar[v]; ok {
							t.released = true
						}
					}
				}
			}
		}
		return true
	})
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		t, ok := byVar[v]
		if !ok || baseOf[id] {
			return true
		}
		// A bare use of the variable outside a selector base: returned,
		// passed, stored, compared against nil... Comparisons with nil
		// are the error-check idiom, not an escape.
		if !isNilCheckUse(id, fd.Body) {
			t.escaped = true
		}
		return true
	})

	for _, t := range resources {
		if t.released || t.escaped {
			continue
		}
		what := "closed"
		if t.kind == "response body" {
			what = "closed (resp.Body.Close())"
		}
		pass.Reportf(t.pos,
			"%s %q acquired from %s is never %s in this function and never escapes; release it with defer or annotate with //cprlint:deferclose <reason>",
			t.kind, t.v.Name(), t.from, what)
	}
}

// acquisition classifies a call as resource-acquiring, via the
// standard-library table or a module callee's Acquires summary.
func acquisition(pass *analysis.Pass, call *ast.CallExpr) (kind, from string, ok bool) {
	fn := analysis.FuncOf(pass.TypesInfo, call)
	if fn == nil {
		return "", "", false
	}
	if kind, ok := funcsum.AcquirerOf(fn); ok {
		return kind, fn.Origin().FullName(), true
	}
	if sum, ok := funcsum.LookupSummary(pass, fn); ok && sum.Acquires != "" {
		return sum.Acquires, fn.Origin().FullName(), true
	}
	return "", "", false
}

// rootIdent unwraps a selector/index/deref chain to its base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isNilCheckUse reports whether an identifier use is one side of a
// comparison with nil — the `if resp != nil` error-handling idiom,
// which must not count as an ownership transfer.
func isNilCheckUse(id *ast.Ident, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		x, y := ast.Unparen(be.X), ast.Unparen(be.Y)
		if (x == id && isNil(y)) || (y == id && isNil(x)) {
			found = true
			return false
		}
		return true
	})
	return found
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
