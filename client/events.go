package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"cpr/internal/httpapi"
)

// JobEvent is one event from a job's live stream.
type JobEvent = httpapi.JobEvent

// ErrStopStream, returned from a StreamEvents callback, ends the stream
// cleanly: StreamEvents returns nil.
var ErrStopStream = errors.New("cprd client: stop stream")

// StreamEvents subscribes to GET /v1/jobs/{id}/events and invokes fn for
// every event, in order, until the stream ends (the daemon closes it
// after the job's terminal event), ctx fires, or fn returns an error
// (ErrStopStream ends cleanly). afterSeq resumes after a previously seen
// sequence number — pass the Seq of the last event received before a
// disconnect and the daemon replays everything newer that its flight
// recorder still holds.
//
// Heartbeat comments and the synthetic stream_end frame are consumed
// internally; fn sees only real events.
func (c *Client) StreamEvents(ctx context.Context, id string, afterSeq uint64, fn func(JobEvent) error) error {
	path := c.baseURL + "/v1/jobs/" + id + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return fmt.Errorf("cprd client: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if afterSeq > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(afterSeq, 10))
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return fmt.Errorf("cprd client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var apiErr httpapi.Error
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			return &StatusError{Code: resp.StatusCode, Message: apiErr.Error}
		}
		return &StatusError{Code: resp.StatusCode, Message: strings.TrimSpace(string(data))}
	}

	// Minimal SSE parser: accumulate field lines, dispatch on the blank
	// line, skip ":" comments (heartbeats). Only the data field carries
	// payload — the id and event fields are redundant with it.
	var event, data string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data != "" && event != "stream_end" {
				var ev JobEvent
				if err := json.Unmarshal([]byte(data), &ev); err != nil {
					return fmt.Errorf("cprd client: decoding event: %w", err)
				}
				if err := fn(ev); err != nil {
					if errors.Is(err, ErrStopStream) {
						return nil
					}
					return err
				}
			}
			event, data = "", ""
		case strings.HasPrefix(line, ":"):
			// heartbeat comment
		case strings.HasPrefix(line, "event:"):
			event = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(strings.TrimPrefix(line, "data:"))
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return fmt.Errorf("cprd client: reading stream: %w", err)
	}
	return nil
}

// DebugEvents fetches the daemon's flight-recorder dump
// (GET /v1/debug/events) as raw JSON bytes.
func (c *Client) DebugEvents(ctx context.Context) ([]byte, error) {
	return c.raw(ctx, "/v1/debug/events")
}
