// Command cprlint is the repo's determinism & robustness linter: a
// multichecker driving the internal/analysis suite (maporder,
// nondeterm, floatreduce, ctxpass, mutexcopy, errdrop) over package
// patterns, with //cprlint:<analyzer> <reason> suppression comments
// enforced to carry reasons.
//
// Usage:
//
//	cprlint [flags] [packages]
//
//	-json             emit findings as a JSON array (empty array when clean)
//	-list             print the analyzers and exit
//	-enable  a,b,...  run only the named analyzers
//	-disable a,b,...  skip the named analyzers
//
// Exit status: 0 when clean, 1 on findings, 2 on usage or load errors.
// The CI lint job runs `cprlint ./...` and additionally asserts that
// `cprlint -json ./...` prints an empty array, so any new finding —
// including an unjustified suppression — fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cpr/internal/analysis"
	"cpr/internal/analysis/all"
	"cpr/internal/analysis/loader"
)

// finding is one reported diagnostic, JSON-ready.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	enable := flag.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	flag.Parse()

	if *list {
		for _, a := range all.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cprlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cprlint:", err)
		os.Exit(2)
	}
	findings, err := Lint(wd, patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cprlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "cprlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "cprlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// selectAnalyzers applies -enable/-disable to the registry.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all.Analyzers() {
		byName[a.Name] = a
	}
	parseList := func(s string) (map[string]bool, error) {
		set := make(map[string]bool)
		if s == "" {
			return set, nil
		}
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parseList(enable)
	if err != nil {
		return nil, err
	}
	off, err := parseList(disable)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all.Analyzers() {
		if len(on) > 0 && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// Lint loads the patterns from moduleDir and runs the analyzers,
// returning findings sorted by position. Suppression comments are
// applied (and validated: a //cprlint: comment with a bad name or no
// reason is itself a finding).
func Lint(moduleDir string, patterns []string, analyzers []*analysis.Analyzer) ([]finding, error) {
	l := loader.New(moduleDir)
	pkgs, err := l.Load(patterns...)
	if err != nil {
		return nil, err
	}
	known := all.Known()
	var findings []finding
	add := func(name string, diags []analysis.Diagnostic) {
		for _, d := range diags {
			pos := l.Fset.Position(d.Pos)
			file := pos.Filename
			if rel, err := relPath(moduleDir, file); err == nil {
				file = rel
			}
			findings = append(findings, finding{
				Analyzer: name,
				File:     file,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  d.Message,
			})
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			var diags []analysis.Diagnostic
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      l.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
				Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %w", a.Name, pkg.PkgPath, err)
			}
			add(a.Name, analysis.Filter(l.Fset, pkg.Files, a, diags))
		}
		add("cprlint", analysis.CheckSuppressions(l.Fset, pkg.Files, known))
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

func relPath(base, target string) (string, error) {
	rel, err := relIfUnder(base, target)
	if err != nil {
		return "", err
	}
	return rel, nil
}

// relIfUnder returns target relative to base when target lies under it.
func relIfUnder(base, target string) (string, error) {
	if !strings.HasPrefix(target, base+string(os.PathSeparator)) {
		return "", fmt.Errorf("outside module")
	}
	return strings.TrimPrefix(target, base+string(os.PathSeparator)), nil
}
