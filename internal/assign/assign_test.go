package assign

import (
	"math"
	"testing"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/ilp"
	"cpr/internal/pinaccess"
	"cpr/internal/tech"
)

// contestedDesign builds a one-panel design where net A's long intervals
// cross diff-net pin b1 on the shared track, so the optimizer must trade
// interval length for conflict freedom.
func contestedDesign(t *testing.T) (*design.Design, *pinaccess.Set) {
	t.Helper()
	d := design.New("contested", 20, 10, tech.Default())
	na := d.AddNet("a")
	nb := d.AddNet("b")
	d.AddPin("a1", na, geom.MakeRect(2, 3, 2, 3))
	d.AddPin("a2", na, geom.MakeRect(15, 3, 15, 3))
	d.AddPin("b1", nb, geom.MakeRect(8, 3, 8, 3))
	d.AddPin("b2", nb, geom.MakeRect(8, 6, 8, 6))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	idx := d.BuildTrackIndex()
	set, err := pinaccess.Generate(d, idx, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	return d, set
}

func TestProfitsIncludeMultiplicity(t *testing.T) {
	_, set := contestedDesign(t)
	m := Build(set, SqrtProfit)
	for i := range set.Intervals {
		iv := &set.Intervals[i]
		wantBase := math.Sqrt(float64(iv.Span.Len()))
		if math.Abs(m.BaseProfits[i]-wantBase) > 1e-12 {
			t.Errorf("BaseProfits[%d] = %g, want %g", i, m.BaseProfits[i], wantBase)
		}
		want := wantBase * float64(len(iv.PinIDs))
		if math.Abs(m.Profits[i]-want) > 1e-12 {
			t.Errorf("Profits[%d] = %g, want %g", i, m.Profits[i], want)
		}
	}
}

func TestMinimumSolutionIsLegal(t *testing.T) {
	_, set := contestedDesign(t)
	m := Build(set, SqrtProfit)
	min := m.MinimumSolution()
	if min.Violations != 0 {
		t.Errorf("minimum solution has %d violations, want 0 (Theorem 1)", min.Violations)
	}
	if err := m.CheckLegal(min); err != nil {
		t.Errorf("minimum solution illegal: %v", err)
	}
	if len(min.ByPin) != m.NumPins() {
		t.Errorf("minimum solution assigns %d pins, want %d", len(min.ByPin), m.NumPins())
	}
}

func TestILPSolveBeatsMinimum(t *testing.T) {
	_, set := contestedDesign(t)
	m := Build(set, SqrtProfit)
	min := m.MinimumSolution()
	sol, res, err := m.SolveILP(ilp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != ilp.Optimal {
		t.Fatalf("ILP status %v, want optimal", res.Status)
	}
	if sol.Objective < min.Objective-1e-9 {
		t.Errorf("ILP objective %g below minimum solution %g", sol.Objective, min.Objective)
	}
	if sol.Violations != 0 {
		t.Errorf("ILP solution has %d violations", sol.Violations)
	}
}

// bruteForceBest enumerates every per-pin assignment and returns the best
// legal objective.
func bruteForceBest(m *Model) float64 {
	pins := m.Set.PinIDs
	best := math.Inf(-1)
	choice := make([]int, len(pins))
	var rec func(i int)
	rec = func(i int) {
		if i == len(pins) {
			byPin := make(map[int]int, len(pins))
			for j, pid := range pins {
				byPin[pid] = m.Set.ByPin[pid][choice[j]]
			}
			s := m.FromAssignment(byPin)
			if m.CheckLegal(s) == nil && s.Objective > best {
				best = s.Objective
			}
			return
		}
		for c := range m.Set.ByPin[pins[i]] {
			choice[i] = c
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestILPMatchesBruteForce(t *testing.T) {
	_, set := contestedDesign(t)
	m := Build(set, SqrtProfit)
	sol, _, err := m.SolveILP(ilp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceBest(m)
	if math.Abs(sol.Objective-want) > 1e-6 {
		t.Errorf("ILP objective %g, brute force %g", sol.Objective, want)
	}
}

func TestEvaluateCountsViolations(t *testing.T) {
	_, set := contestedDesign(t)
	m := Build(set, SqrtProfit)
	// Select every interval: violations must equal the number of conflict
	// sets (every set has >= 2 members by construction).
	all := make([]bool, m.NumIntervals())
	for i := range all {
		all[i] = true
	}
	s := m.Evaluate(all)
	if s.Violations != len(m.Conflicts.Sets) {
		t.Errorf("Violations = %d, want %d", s.Violations, len(m.Conflicts.Sets))
	}
	// Empty selection: no violations, no assignment, zero objective.
	empty := m.Evaluate(make([]bool, m.NumIntervals()))
	if empty.Violations != 0 || empty.Objective != 0 || len(empty.ByPin) != 0 {
		t.Errorf("empty selection: %+v", empty)
	}
}

func TestFromAssignmentRoundTrip(t *testing.T) {
	_, set := contestedDesign(t)
	m := Build(set, SqrtProfit)
	min := m.MinimumSolution()
	s := m.FromAssignment(min.ByPin)
	if s.Objective != min.Objective || s.Violations != min.Violations {
		t.Errorf("round trip changed metrics: %+v vs %+v", s, min)
	}
}

func TestCheckLegalDetectsUnassignedPin(t *testing.T) {
	_, set := contestedDesign(t)
	m := Build(set, SqrtProfit)
	s := m.Evaluate(make([]bool, m.NumIntervals()))
	if err := m.CheckLegal(s); err == nil {
		t.Error("CheckLegal must reject a selection that covers no pins")
	}
}

func TestCheckLegalDetectsDoubleCover(t *testing.T) {
	_, set := contestedDesign(t)
	m := Build(set, SqrtProfit)
	// Select two intervals of the same pin.
	pid := set.PinIDs[0]
	if len(set.ByPin[pid]) < 2 {
		t.Skip("pin has a single interval")
	}
	sel := make([]bool, m.NumIntervals())
	sel[set.ByPin[pid][0]] = true
	sel[set.ByPin[pid][1]] = true
	if err := m.CheckLegal(m.Evaluate(sel)); err == nil {
		t.Error("CheckLegal must reject double-covered pins")
	}
}

func TestSharedIntervalSatisfiesBothPins(t *testing.T) {
	// Two same-net pins on one track: the shared covering interval is a
	// legal solution on its own for both pins.
	d := design.New("pair", 12, 10, tech.Default())
	nc := d.AddNet("c")
	c1 := d.AddPin("c1", nc, geom.MakeRect(2, 3, 2, 3))
	c2 := d.AddPin("c2", nc, geom.MakeRect(8, 3, 8, 3))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	set, err := pinaccess.Generate(d, d.BuildTrackIndex(), []int{c1, c2})
	if err != nil {
		t.Fatal(err)
	}
	m := Build(set, SqrtProfit)
	sol, _, err := m.SolveILP(ilp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// The optimum selects the single shared interval [2,8]: profit
	// 2*sqrt(7) beats any pair of disjoint intervals.
	if sol.ByPin[c1] != sol.ByPin[c2] {
		t.Errorf("pins assigned different intervals %d, %d; want the shared one",
			sol.ByPin[c1], sol.ByPin[c2])
	}
	iv := set.Intervals[sol.ByPin[c1]]
	if iv.Span != (geom.Interval{Lo: 2, Hi: 8}) {
		t.Errorf("assigned span %v, want [2,8]", iv.Span)
	}
}

func TestSqrtProfitBalances(t *testing.T) {
	// Direct check of the objective design: sqrt(9)+sqrt(9) > sqrt(16)+sqrt(2),
	// while linear profit prefers the imbalanced split 16+2.
	if SqrtProfit(9)+SqrtProfit(9) <= SqrtProfit(16)+SqrtProfit(2) {
		t.Error("sqrt profit should prefer balanced 9/9 over 16/2")
	}
	if LinearProfit(16)+LinearProfit(2) != LinearProfit(9)+LinearProfit(9) {
		t.Error("linear profit should be indifferent between 16/2 and 9/9")
	}
}

func TestLengthStats(t *testing.T) {
	_, set := contestedDesign(t)
	m := Build(set, SqrtProfit)
	sol, _, err := m.SolveILP(ilp.Config{})
	if err != nil {
		t.Fatal(err)
	}
	st := sol.Lengths(set)
	if st.Min < 1 || st.Max < st.Min || st.Total < st.Max {
		t.Errorf("inconsistent stats: %+v", st)
	}
	if st.Mean <= 0 {
		t.Errorf("mean = %g", st.Mean)
	}
	empty := (&Solution{ByPin: map[int]int{}}).Lengths(set)
	if empty.Total != 0 || empty.Min != 0 {
		t.Errorf("empty stats = %+v", empty)
	}
}
