package floatreduce_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/floatreduce"
)

func TestFloatreduce(t *testing.T) {
	analysistest.Run(t, "testdata", floatreduce.Analyzer,
		"floatreduce",
		"cpr/internal/parallel", // the pool itself is exempt
	)
}
