package verify_test

import (
	"strings"
	"testing"

	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/router"
	"cpr/internal/synth"
	"cpr/internal/tech"
	"cpr/internal/verify"
)

func routed(t *testing.T, d *design.Design, cfg router.Config) (*grid.Graph, *router.Result) {
	t.Helper()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	return g, router.New(d, g, cfg).Run()
}

func TestCleanResultVerifies(t *testing.T) {
	d := design.New("clean", 30, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(3, 4, 3, 4))
	d.AddPin("p1", n, geom.MakeRect(24, 4, 24, 4))
	g, res := routed(t, d, router.Config{})
	rep := verify.Check(d, g, res)
	if !rep.Ok() {
		t.Fatalf("clean route flagged: %v", rep.Errors)
	}
	if rep.CheckedNets != 1 {
		t.Errorf("checked %d nets, want 1", rep.CheckedNets)
	}
}

func TestDetectsDisconnectedRoute(t *testing.T) {
	d := design.New("disc", 30, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(3, 4, 3, 4))
	d.AddPin("p1", n, geom.MakeRect(24, 4, 24, 4))
	g, res := routed(t, d, router.Config{})
	// Cut the route: drop half its edges.
	nr := res.Routes[0]
	nr.Edges = nr.Edges[:len(nr.Edges)/2]
	rep := verify.Check(d, g, res)
	if rep.Ok() {
		t.Fatal("disconnected route not flagged")
	}
	found := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "not connected") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected connectivity error, got %v", rep.Errors)
	}
}

func TestDetectsSharedMetal(t *testing.T) {
	d := design.New("shared", 30, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(3, 2, 3, 2))
	d.AddPin("a1", n0, geom.MakeRect(24, 2, 24, 2))
	d.AddPin("b0", n1, geom.MakeRect(3, 7, 3, 7))
	d.AddPin("b1", n1, geom.MakeRect(24, 7, 24, 7))
	g, res := routed(t, d, router.Config{})
	if res.RoutedNets != 2 {
		t.Skip("fixture did not route both nets")
	}
	// Corrupt: graft one of net b's nodes into net a.
	res.Routes[0].Nodes = append(res.Routes[0].Nodes, res.Routes[1].Nodes[2])
	rep := verify.Check(d, g, res)
	ok := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "shared with") {
			ok = true
		}
	}
	if !ok {
		t.Errorf("expected shared-metal error, got %v", rep.Errors)
	}
}

func TestDetectsInvalidEdge(t *testing.T) {
	d := design.New("edge", 30, 10, tech.Default())
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(3, 4, 3, 4))
	d.AddPin("p1", n, geom.MakeRect(24, 4, 24, 4))
	g, res := routed(t, d, router.Config{})
	// Append a diagonal "edge".
	res.Routes[0].Edges = append(res.Routes[0].Edges,
		grid.MakeEdge(g.ID(1, 1, tech.M2), g.ID(2, 2, tech.M2)))
	rep := verify.Check(d, g, res)
	ok := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "invalid edge") {
			ok = true
		}
	}
	if !ok {
		t.Errorf("expected invalid-edge error, got %v", rep.Errors)
	}
}

func TestDetectsLineEndViolation(t *testing.T) {
	d := design.New("le", 30, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(2, 4, 2, 4))
	d.AddPin("a1", n0, geom.MakeRect(10, 4, 10, 4))
	d.AddPin("b0", n1, geom.MakeRect(18, 4, 18, 4))
	d.AddPin("b1", n1, geom.MakeRect(27, 4, 27, 4))
	g, res := routed(t, d, router.Config{})
	if res.RoutedNets != 2 {
		t.Skip("fixture did not route both nets")
	}
	// Corrupt net a: extend its strip toward net b by claiming extra
	// cells on the track, closing the gap below the rule.
	nr := res.Routes[0]
	prev := g.ID(10, 4, tech.M2)
	for x := 11; x <= 15; x++ {
		id := g.ID(x, 4, tech.M2)
		nr.Nodes = append(nr.Nodes, id)
		nr.Edges = append(nr.Edges, grid.MakeEdge(prev, id))
		prev = id
	}
	rep := verify.Check(d, g, res)
	ok := false
	for _, e := range rep.Errors {
		if strings.Contains(e, "line-end spacing violation") {
			ok = true
		}
	}
	if !ok {
		t.Errorf("expected line-end violation, got %v", rep.Errors)
	}
}

// TestAllFlowsVerifyClean is the oracle test: every flow's output on a
// realistic circuit must verify clean (connectivity, exclusivity, and
// line-end rules re-derived independently).
func TestAllFlowsVerifyClean(t *testing.T) {
	spec := synth.Spec{Name: "verify", Nets: 250, Width: 260, Height: 120, Seed: 13}
	for _, mode := range []core.Mode{core.ModeCPR, core.ModeNoPinOpt, core.ModeSequential} {
		d, err := synth.Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(d, core.Options{Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		// Rebuild an untouched grid for geometry lookups: the router's
		// grid still works, but Check only needs coordinates/blockage,
		// which are immutable.
		g := grid.New(d)
		rep := verify.Check(d, g, res.Router)
		if !rep.Ok() {
			max := len(rep.Errors)
			if max > 5 {
				max = 5
			}
			t.Errorf("%v: %d violations, first %d: %v",
				mode, len(rep.Errors), max, rep.Errors[:max])
		}
	}
}
