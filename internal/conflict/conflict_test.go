package conflict

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"cpr/internal/geom"
	"cpr/internal/pinaccess"
)

// mk builds a bare interval list on one track from spans.
func mk(track int, spans ...geom.Interval) []pinaccess.Interval {
	ivs := make([]pinaccess.Interval, len(spans))
	for i, s := range spans {
		ivs[i] = pinaccess.Interval{ID: i, Track: track, Span: s, MinForPin: -1}
	}
	return ivs
}

func TestNoConflicts(t *testing.T) {
	ivs := mk(0, geom.Interval{Lo: 0, Hi: 2}, geom.Interval{Lo: 4, Hi: 6}, geom.Interval{Lo: 8, Hi: 9})
	if sets := Detect(ivs); len(sets) != 0 {
		t.Errorf("disjoint intervals produced %d conflict sets", len(sets))
	}
}

func TestSimplePairConflict(t *testing.T) {
	ivs := mk(0, geom.Interval{Lo: 0, Hi: 5}, geom.Interval{Lo: 3, Hi: 8})
	sets := Detect(ivs)
	if len(sets) != 1 {
		t.Fatalf("got %d sets, want 1", len(sets))
	}
	if !reflect.DeepEqual(sets[0].IDs, []int{0, 1}) {
		t.Errorf("IDs = %v", sets[0].IDs)
	}
	if sets[0].Common != (geom.Interval{Lo: 3, Hi: 5}) {
		t.Errorf("Common = %v, want [3,5]", sets[0].Common)
	}
}

func TestChainProducesTwoMaximalSets(t *testing.T) {
	// A=[0,5], B=[3,10], C=[6,8]: cliques {A,B} and {B,C}.
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 5},
		geom.Interval{Lo: 3, Hi: 10},
		geom.Interval{Lo: 6, Hi: 8})
	sets := Detect(ivs)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2: %+v", len(sets), sets)
	}
	if !reflect.DeepEqual(sets[0].IDs, []int{0, 1}) || !reflect.DeepEqual(sets[1].IDs, []int{1, 2}) {
		t.Errorf("sets = %+v", sets)
	}
}

func TestNestedIntervals(t *testing.T) {
	// Outer [0,10] with two disjoint inner intervals: two maximal cliques.
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 10},
		geom.Interval{Lo: 2, Hi: 3},
		geom.Interval{Lo: 5, Hi: 6})
	sets := Detect(ivs)
	if len(sets) != 2 {
		t.Fatalf("got %d sets, want 2: %+v", len(sets), sets)
	}
}

func TestTracksAreIndependent(t *testing.T) {
	ivs := []pinaccess.Interval{
		{ID: 0, Track: 0, Span: geom.Interval{Lo: 0, Hi: 5}, MinForPin: -1},
		{ID: 1, Track: 1, Span: geom.Interval{Lo: 0, Hi: 5}, MinForPin: -1},
	}
	if sets := Detect(ivs); len(sets) != 0 {
		t.Errorf("intervals on different tracks must not conflict: %+v", sets)
	}
}

func TestIdenticalIntervals(t *testing.T) {
	ivs := mk(0, geom.Interval{Lo: 1, Hi: 4}, geom.Interval{Lo: 1, Hi: 4}, geom.Interval{Lo: 1, Hi: 4})
	sets := Detect(ivs)
	if len(sets) != 1 || len(sets[0].IDs) != 3 {
		t.Fatalf("got %+v, want one set of 3", sets)
	}
}

// figure4Track reconstructs the flavour of paper Figure 4(b): a dense track
// where a1's five nested/stacked intervals overlap neighbours' intervals,
// producing a linear number of conflict sets.
func TestFigure4StyleTrack(t *testing.T) {
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 6},   // Ia1_0
		geom.Interval{Lo: 0, Hi: 9},   // Ia1_1
		geom.Interval{Lo: 0, Hi: 13},  // Ia1_2
		geom.Interval{Lo: 4, Hi: 13},  // Ia1_3
		geom.Interval{Lo: 4, Hi: 9},   // Ia1_4
		geom.Interval{Lo: 8, Hi: 13},  // Id1_2
		geom.Interval{Lo: 11, Hi: 18}, // Ic_*
		geom.Interval{Lo: 15, Hi: 18}, // Id1_*
	)
	sets := Detect(ivs)
	// Linearity: at most n maximal sets.
	if len(sets) > len(ivs) {
		t.Fatalf("emitted %d sets for %d intervals; must be linear", len(sets), len(ivs))
	}
	assertSetsValid(t, ivs, sets)
}

// assertSetsValid checks the three correctness properties of the sweep:
// each set is a clique with the reported common span, every overlapping
// pair co-occurs in some set, and no set is a subset of another.
func assertSetsValid(t *testing.T, ivs []pinaccess.Interval, sets []Set) {
	t.Helper()
	for si, s := range sets {
		if len(s.IDs) < 2 {
			t.Errorf("set %d has fewer than 2 members", si)
		}
		common := ivs[s.IDs[0]].Span
		for _, id := range s.IDs[1:] {
			common = common.Intersect(ivs[id].Span)
		}
		if common.Empty() {
			t.Errorf("set %d is not a clique (empty common span)", si)
		}
		if common != s.Common {
			t.Errorf("set %d Common = %v, want %v", si, s.Common, common)
		}
	}
	// Pair coverage.
	for i := range ivs {
		for j := i + 1; j < len(ivs); j++ {
			if ivs[i].Track != ivs[j].Track || !ivs[i].Span.Overlaps(ivs[j].Span) {
				continue
			}
			found := false
			for _, s := range sets {
				hasI, hasJ := false, false
				for _, id := range s.IDs {
					if id == i {
						hasI = true
					}
					if id == j {
						hasJ = true
					}
				}
				if hasI && hasJ {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("overlapping pair (%d,%d) not covered by any set", i, j)
			}
		}
	}
	// No subset relations (maximality between emitted sets).
	for a := range sets {
		for b := range sets {
			if a == b || sets[a].Track != sets[b].Track {
				continue
			}
			if isSubset(sets[a].IDs, sets[b].IDs) {
				t.Errorf("set %v is a subset of %v", sets[a].IDs, sets[b].IDs)
			}
		}
	}
}

func isSubset(a, b []int) bool {
	if len(a) > len(b) {
		return false
	}
	set := make(map[int]bool, len(b))
	for _, x := range b {
		set[x] = true
	}
	for _, x := range a {
		if !set[x] {
			return false
		}
	}
	return true
}

// bruteForceCliques computes maximal point-stabbing cliques directly.
func bruteForceCliques(ivs []pinaccess.Interval, lo, hi int) [][]int {
	var cliques [][]int
	seen := make(map[string]bool)
	for x := lo; x <= hi; x++ {
		var c []int
		for i := range ivs {
			if ivs[i].Span.Contains(x) {
				c = append(c, i)
			}
		}
		if len(c) < 2 {
			continue
		}
		key := keyOf(c)
		if !seen[key] {
			seen[key] = true
			cliques = append(cliques, c)
		}
	}
	// Drop non-maximal stabs.
	var maximal [][]int
	for i, c := range cliques {
		sub := false
		for j, d := range cliques {
			if i != j && isSubset(c, d) && len(c) < len(d) {
				sub = true
				break
			}
		}
		if !sub {
			maximal = append(maximal, c)
		}
	}
	return maximal
}

func keyOf(ids []int) string {
	b := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		b = append(b, byte(id), byte(id>>8), ',')
	}
	return string(b)
}

// TestSweepMatchesBruteForce cross-checks the sweep against point-stabbing
// enumeration on random single-track instances.
func TestSweepMatchesBruteForce(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := 2 + r.Intn(10)
			spans := make([]geom.Interval, n)
			for i := range spans {
				lo := r.Intn(20)
				spans[i] = geom.Interval{Lo: lo, Hi: lo + r.Intn(8)}
			}
			vals[0] = reflect.ValueOf(spans)
		},
	}
	prop := func(spans []geom.Interval) bool {
		ivs := mk(0, spans...)
		sets := Detect(ivs)
		want := bruteForceCliques(ivs, 0, 30)
		if len(sets) != len(want) {
			return false
		}
		gotKeys := make(map[string]bool)
		for _, s := range sets {
			gotKeys[keyOf(s.IDs)] = true
		}
		for _, c := range want {
			sort.Ints(c)
			if !gotKeys[keyOf(c)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestBuildMatrixMembership(t *testing.T) {
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 5},
		geom.Interval{Lo: 3, Hi: 10},
		geom.Interval{Lo: 6, Hi: 8})
	m := BuildMatrix(ivs)
	if len(m.Sets) != 2 {
		t.Fatalf("sets = %d, want 2", len(m.Sets))
	}
	if !reflect.DeepEqual(m.MemberOf[0], []int{0}) ||
		!reflect.DeepEqual(m.MemberOf[1], []int{0, 1}) ||
		!reflect.DeepEqual(m.MemberOf[2], []int{1}) {
		t.Errorf("MemberOf = %v", m.MemberOf)
	}
}

func TestViolations(t *testing.T) {
	ivs := mk(0,
		geom.Interval{Lo: 0, Hi: 5},
		geom.Interval{Lo: 3, Hi: 10},
		geom.Interval{Lo: 6, Hi: 8})
	m := BuildMatrix(ivs)
	if got := m.Violations([]bool{true, true, true}); got != 2 {
		t.Errorf("Violations(all) = %d, want 2", got)
	}
	if got := m.Violations([]bool{true, false, true}); got != 0 {
		t.Errorf("Violations(0,2) = %d, want 0", got)
	}
	if got := m.Violations([]bool{false, true, true}); got != 1 {
		t.Errorf("Violations(1,2) = %d, want 1", got)
	}
}

// oracleDetect is the brute-force multi-track oracle: per track, the
// maximal point-stabbing cliques of size >= 2 with their common spans,
// ordered like the sweep (track ascending, then common-span left edge).
// It is O(tracks * width * n) time and O(n^2) in comparisons — correct by
// construction, deliberately ignorant of the sweep's active-list logic.
func oracleDetect(ivs []pinaccess.Interval, lo, hi int) []Set {
	byTrack := make(map[int][]int)
	for i := range ivs {
		byTrack[ivs[i].Track] = append(byTrack[ivs[i].Track], i)
	}
	tracks := make([]int, 0, len(byTrack))
	for tr := range byTrack {
		tracks = append(tracks, tr)
	}
	sort.Ints(tracks)

	var out []Set
	for _, tr := range tracks {
		sub := make([]pinaccess.Interval, 0, len(byTrack[tr]))
		back := make([]int, 0, len(byTrack[tr]))
		for _, id := range byTrack[tr] {
			iv := ivs[id]
			iv.ID = len(sub)
			sub = append(sub, iv)
			back = append(back, id)
		}
		var trackSets []Set
		for _, c := range bruteForceCliques(sub, lo, hi) {
			ids := make([]int, len(c))
			common := sub[c[0]].Span
			for i, local := range c {
				ids[i] = back[local]
				common = common.Intersect(sub[local].Span)
			}
			sort.Ints(ids)
			trackSets = append(trackSets, Set{Track: tr, IDs: ids, Common: common})
		}
		sort.Slice(trackSets, func(a, b int) bool {
			return trackSets[a].Common.Lo < trackSets[b].Common.Lo
		})
		out = append(out, trackSets...)
	}
	return out
}

// randomIntervals draws n intervals over the given track and coordinate
// ranges with sequential IDs, as pinaccess generation would emit them.
func randomIntervals(r *rand.Rand, n, tracks, width, maxLen int) []pinaccess.Interval {
	ivs := make([]pinaccess.Interval, n)
	for i := range ivs {
		lo := r.Intn(width)
		ivs[i] = pinaccess.Interval{
			ID:        i,
			Track:     r.Intn(tracks),
			Span:      geom.Interval{Lo: lo, Hi: lo + r.Intn(maxLen)},
			MinForPin: -1,
		}
	}
	return ivs
}

// TestDetectMatchesOracleMultiTrack cross-checks the production sweep
// against the brute-force oracle on random multi-track instances,
// comparing the full Set values — members, tracks, common spans, and
// emission order — not just set counts.
func TestDetectMatchesOracleMultiTrack(t *testing.T) {
	r := rand.New(rand.NewSource(1702))
	trials := 200
	if testing.Short() {
		trials = 40
	}
	for trial := 0; trial < trials; trial++ {
		n := 2 + r.Intn(30)
		tracks := 1 + r.Intn(5)
		ivs := randomIntervals(r, n, tracks, 40, 10)
		got := Detect(ivs)
		want := oracleDetect(ivs, 0, 60)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d tracks=%d):\n got %+v\nwant %+v", trial, n, tracks, got, want)
		}
	}
}

// TestDetectWorkersMatchesSequential drives the sharded sweep over enough
// tracks to engage its parallel branch and asserts byte-identical output
// against the sequential path and the oracle.
func TestDetectWorkersMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(88))
	for trial := 0; trial < 10; trial++ {
		ivs := randomIntervals(r, 600, 100, 50, 8)
		seq := Detect(ivs)
		for _, workers := range []int{2, 8} {
			par := DetectWorkers(ivs, workers)
			if !reflect.DeepEqual(par, seq) {
				t.Fatalf("trial %d: DetectWorkers(%d) differs from sequential", trial, workers)
			}
		}
		if want := oracleDetect(ivs, 0, 70); !reflect.DeepEqual(seq, want) {
			t.Fatalf("trial %d: sweep differs from oracle on the wide instance", trial)
		}
		seqM := BuildMatrix(ivs)
		parM := BuildMatrixWorkers(ivs, 8)
		if !reflect.DeepEqual(parM, seqM) {
			t.Fatalf("trial %d: BuildMatrixWorkers(8) differs from sequential", trial)
		}
	}
}

func TestEmptyInput(t *testing.T) {
	if sets := Detect(nil); len(sets) != 0 {
		t.Error("Detect(nil) should be empty")
	}
	m := BuildMatrix(nil)
	if len(m.Sets) != 0 || m.Violations(nil) != 0 {
		t.Error("BuildMatrix(nil) should be empty")
	}
}
