// Command tool is golden input: cmd/ packages are allowlisted.
package main

import (
	"fmt"
	"math/rand"
	"time"
)

func main() {
	fmt.Println(time.Now(), rand.Int())
}
