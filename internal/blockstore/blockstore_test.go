package blockstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// k derives a valid test key from a label.
func k(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

// stores builds one of each implementation for shared behavioral tests.
func stores(t *testing.T, maxBytes int64) map[string]Store {
	t.Helper()
	disk, err := OpenDisk(t.TempDir(), DiskOptions{MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMem(maxBytes),
		"disk": disk,
	}
}

func TestPutGetHasDelete(t *testing.T) {
	for name, s := range stores(t, 0) {
		t.Run(name, func(t *testing.T) {
			key := k("a")
			if _, err := s.Get(key); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
			}
			if ok, _ := s.Has(key); ok {
				t.Fatal("Has on empty store = true")
			}
			want := []byte("block-a")
			if err := s.Put(key, want); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(key)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("Get = %q, want %q", got, want)
			}
			if ok, _ := s.Has(key); !ok {
				t.Fatal("Has after Put = false")
			}
			// Overwrite replaces and adjusts size accounting.
			want2 := []byte("block-a-longer-version")
			if err := s.Put(key, want2); err != nil {
				t.Fatal(err)
			}
			if got, _ := s.Get(key); !bytes.Equal(got, want2) {
				t.Fatalf("Get after overwrite = %q, want %q", got, want2)
			}
			st := s.Stats()
			if st.Blocks != 1 || st.Bytes != int64(len(want2)) {
				t.Fatalf("Stats = %+v, want 1 block of %d bytes", st, len(want2))
			}
			if err := s.Delete(key); err != nil {
				t.Fatal(err)
			}
			if ok, _ := s.Has(key); ok {
				t.Fatal("Has after Delete = true")
			}
			if err := s.Delete(key); err != nil {
				t.Fatalf("Delete of absent key: %v", err)
			}
		})
	}
}

func TestMalformedKeysRejected(t *testing.T) {
	for name, s := range stores(t, 0) {
		t.Run(name, func(t *testing.T) {
			for _, bad := range []string{"", "short", "../../../../etc/passwd",
				k("x")[:63] + "Z", k("x") + "a"} {
				if err := s.Put(bad, []byte("d")); err == nil {
					t.Fatalf("Put(%q) accepted a malformed key", bad)
				}
				if _, err := s.Get(bad); err == nil || errors.Is(err, ErrNotFound) {
					t.Fatalf("Get(%q) = %v, want malformed-key error", bad, err)
				}
			}
		})
	}
}

func TestHitMissCounters(t *testing.T) {
	for name, s := range stores(t, 0) {
		t.Run(name, func(t *testing.T) {
			key := k("hm")
			_, _ = s.Get(key)
			_ = s.Put(key, []byte("d"))
			_, _ = s.Get(key)
			// Has must stay counter-neutral.
			_, _ = s.Has(key)
			_, _ = s.Has(k("absent"))
			st := s.Stats()
			if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
				t.Fatalf("Stats = %+v, want hits=1 misses=1 puts=1", st)
			}
		})
	}
}

func TestGCBoundAndLRUOrder(t *testing.T) {
	for name, s := range stores(t, 64) {
		t.Run(name, func(t *testing.T) {
			block := bytes.Repeat([]byte("x"), 24)
			keys := []string{k("g0"), k("g1"), k("g2")}
			for _, key := range keys {
				if err := s.Put(key, block); err != nil {
					t.Fatal(err)
				}
			}
			// 3*24 = 72 > 64: the least-recently-used block (g0) is gone.
			st := s.Stats()
			if st.Blocks != 2 || st.Bytes != 48 || st.Evictions != 1 {
				t.Fatalf("Stats = %+v, want 2 blocks, 48 bytes, 1 eviction", st)
			}
			if ok, _ := s.Has(keys[0]); ok {
				t.Fatal("LRU block survived GC")
			}
			// Touch g1 so g2 becomes the eviction candidate.
			if _, err := s.Get(keys[1]); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(k("g3"), block); err != nil {
				t.Fatal(err)
			}
			if ok, _ := s.Has(keys[1]); !ok {
				t.Fatal("recently-used block was collected")
			}
			if ok, _ := s.Has(keys[2]); ok {
				t.Fatal("stale block survived GC")
			}
		})
	}
}

func TestGCNeverCollectsPinned(t *testing.T) {
	for name, s := range stores(t, 40) {
		t.Run(name, func(t *testing.T) {
			block := bytes.Repeat([]byte("p"), 24)
			pinned := k("pinned")
			s.Pin(pinned)
			if err := s.Put(pinned, block); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 4; i++ {
				if err := s.Put(k(fmt.Sprintf("filler%d", i)), block); err != nil {
					t.Fatal(err)
				}
			}
			if ok, _ := s.Has(pinned); !ok {
				t.Fatal("pinned block was collected")
			}
			// Double pin: one Unpin keeps it protected.
			s.Pin(pinned)
			s.Unpin(pinned)
			for i := 4; i < 8; i++ {
				if err := s.Put(k(fmt.Sprintf("filler%d", i)), block); err != nil {
					t.Fatal(err)
				}
			}
			if ok, _ := s.Has(pinned); !ok {
				t.Fatal("block with a remaining pin reference was collected")
			}
			// Fully unpinned, the stale block is collectable again.
			s.Unpin(pinned)
			for i := 8; i < 12; i++ {
				if err := s.Put(k(fmt.Sprintf("filler%d", i)), block); err != nil {
					t.Fatal(err)
				}
			}
			if ok, _ := s.Has(pinned); ok {
				t.Fatal("unpinned stale block survived GC pressure")
			}
		})
	}
}

func TestConcurrentAccess(t *testing.T) {
	for name, s := range stores(t, 4096) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for w := 0; w < 8; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 50; i++ {
						key := k(fmt.Sprintf("c%d", (w+i)%20))
						switch i % 4 {
						case 0:
							_ = s.Put(key, []byte("concurrent"))
						case 1:
							_, _ = s.Get(key)
						case 2:
							_, _ = s.Has(key)
						default:
							s.Pin(key)
							s.Unpin(key)
						}
					}
				}(w)
			}
			wg.Wait()
		})
	}
}

func TestDiskLayoutAndAtomicStaging(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	key := k("layout")
	if err := d.Put(key, []byte("data")); err != nil {
		t.Fatal(err)
	}
	// Sharded path: <root>/<key[:2]>/<key>.
	if _, err := os.Stat(filepath.Join(dir, key[:2], key)); err != nil {
		t.Fatalf("block not at sharded path: %v", err)
	}
	// The staging dir holds no leftovers after a completed Put.
	tmps, err := os.ReadDir(filepath.Join(dir, "tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tmps) != 0 {
		t.Fatalf("staging dir not empty after Put: %d files", len(tmps))
	}
}

func TestDiskSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{k("r0"), k("r1"), k("r2")}
	for i, key := range keys {
		if err := d1.Put(key, []byte(fmt.Sprintf("block-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: a torn staging file must be swept, not surfaced.
	if err := os.WriteFile(filepath.Join(dir, "tmp", keys[0]+".123"), []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}

	d2, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := d2.Stats()
	if st.Blocks != len(keys) {
		t.Fatalf("reopened store has %d blocks, want %d", st.Blocks, len(keys))
	}
	for i, key := range keys {
		got, err := d2.Get(key)
		if err != nil {
			t.Fatal(err)
		}
		if want := fmt.Sprintf("block-%d", i); string(got) != want {
			t.Fatalf("reopened Get(%s) = %q, want %q", key[:8], got, want)
		}
	}
	tmps, _ := os.ReadDir(filepath.Join(dir, "tmp"))
	if len(tmps) != 0 {
		t.Fatal("stale staging file survived reopen")
	}
}

func TestDiskReopenRespectsBound(t *testing.T) {
	dir := t.TempDir()
	d1, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	block := bytes.Repeat([]byte("b"), 32)
	for i := 0; i < 4; i++ {
		if err := d1.Put(k(fmt.Sprintf("b%d", i)), block); err != nil {
			t.Fatal(err)
		}
	}
	// Reopen with a tighter bound: the next Put triggers GC down to it.
	d2, err := OpenDisk(dir, DiskOptions{MaxBytes: 96})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Put(k("b4"), block); err != nil {
		t.Fatal(err)
	}
	if st := d2.Stats(); st.Bytes > 96 {
		t.Fatalf("store exceeds bound after reopen GC: %+v", st)
	}
	if ok, _ := d2.Has(k("b4")); !ok {
		t.Fatal("freshly written block was collected")
	}
}

func TestDiskGetAfterExternalRemoval(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	key := k("ext")
	if err := d.Put(key, []byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, key[:2], key)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after external removal: %v, want ErrNotFound", err)
	}
	if st := d.Stats(); st.Blocks != 0 {
		t.Fatalf("index not repaired after external removal: %+v", st)
	}
}

func TestValidKey(t *testing.T) {
	if !ValidKey(k("ok")) {
		t.Fatal("ValidKey rejected a hex sha256")
	}
	for _, bad := range []string{"", "zz", k("x") + "00", "G" + k("x")[1:]} {
		if ValidKey(bad) {
			t.Fatalf("ValidKey(%q) = true", bad)
		}
	}
}

// TestDiskConcurrentPutCommitOffLock is the regression test for the
// lockheld finding in Put: the rename that commits a block used to run
// with d.mu held, stalling every reader behind disk I/O. The fix commits
// outside the lock, which must not cost consistency: under concurrent
// same-key and cross-key Puts with a GC bound in force, every indexed
// key must resolve to an intact payload, the byte counter must match the
// index, and evicted keys must not leave files behind.
func TestDiskConcurrentPutCommitOffLock(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, DiskOptions{MaxBytes: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	// Payloads are a function of the label alone: the store is
	// content-addressed (key = sha256 of the block), so racing Puts of
	// one key always carry identical bytes.
	payload := func(label string) []byte {
		return bytes.Repeat([]byte{label[0]}, 256+int(label[len(label)-1])%7)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				// Half the keys collide across workers (same-key Put
				// races), half are worker-private.
				var label string
				if i%2 == 0 {
					label = fmt.Sprintf("shared%d", i%10)
				} else {
					label = fmt.Sprintf("own%d-%d", w, i)
				}
				key := k(label)
				if err := d.Put(key, payload(label)); err != nil {
					t.Errorf("Put(%s): %v", key[:8], err)
					return
				}
				if data, err := d.Get(key); err == nil {
					// A concurrent Put may have replaced the block, but a
					// read must never observe a torn payload: whatever
					// worker wrote it, the bytes are uniform.
					for _, b := range data[1:] {
						if b != data[0] {
							t.Errorf("torn payload under key %s: %q", key[:8], data)
							return
						}
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// The index must agree with the filesystem: every indexed key
	// resolves to its file with the accounted size, and the byte counter
	// is the sum of the index.
	st := d.Stats()
	var diskBytes int64
	shards, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, sh := range shards {
		if !sh.IsDir() || sh.Name() == "tmp" {
			continue
		}
		entries, err := os.ReadDir(filepath.Join(dir, sh.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			info, err := e.Info()
			if err != nil {
				t.Fatal(err)
			}
			files++
			diskBytes += info.Size()
			ok, err := d.Has(e.Name())
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Errorf("file %s on disk but not indexed", e.Name()[:8])
			}
		}
	}
	if files != st.Blocks {
		t.Fatalf("index holds %d blocks, disk holds %d files", st.Blocks, files)
	}
	if diskBytes != st.Bytes {
		t.Fatalf("index accounts %d bytes, disk holds %d", st.Bytes, diskBytes)
	}
	if st.Bytes > 1<<14 {
		t.Fatalf("store over GC bound after quiescence: %d bytes", st.Bytes)
	}
}
