package pipeline

import (
	"context"
	"fmt"
	"strings"
	"time"

	"cpr/internal/assign"
	"cpr/internal/cache"
	"cpr/internal/design"
	"cpr/internal/ilp"
	"cpr/internal/lagrange"
	"cpr/internal/pinaccess"
	"cpr/internal/telemetry"
)

// SolverConfig carries the result-affecting knobs of the assignment
// stages. It deliberately excludes worker counts: the determinism
// contract of internal/parallel makes every artifact byte-identical for
// every worker count, so concurrency never reaches a content address.
//
//keypurity:options
type SolverConfig struct {
	// UseILP selects the exact branch-and-bound solver; LR otherwise.
	// An ILP run that hits its limits falls back to LR, mirroring how a
	// production flow degrades.
	UseILP bool
	// ILP configures the exact solver.
	ILP ilp.Config
	// LR configures the Lagrangian relaxation solver.
	LR lagrange.Config
	// Profit is the interval profit function; nil selects the paper's
	// assign.SqrtProfit. A non-nil function makes the config uncacheable
	// (function identity cannot be content-addressed).
	Profit assign.ProfitFn
}

// profit resolves the effective profit function.
func (c SolverConfig) profit() assign.ProfitFn {
	if c.Profit != nil {
		return c.Profit
	}
	return assign.SqrtProfit
}

// Cacheable reports whether panel artifacts produced under this config
// may be content-addressed and reused. Three things opt out:
//
//   - a custom Profit function (identity not addressable);
//   - a caller-provided LR.Stop hook (it can truncate the solve
//     non-deterministically);
//   - ILP with a wall-clock TimeLimit (the incumbent at the deadline is
//     timing-dependent, so equal keys would not imply equal artifacts).
func (c SolverConfig) Cacheable() bool {
	if c.Profit != nil || c.LR.Stop != nil {
		return false
	}
	if c.UseILP && c.ILP.TimeLimit > 0 {
		return false
	}
	return true
}

// Fingerprint renders the result-affecting solver fields into a
// canonical string, the second half of the per-panel cache key. Router
// and sequential-baseline options are deliberately absent — they cannot
// affect pin access artifacts — so a router reconfiguration still reuses
// every panel.
//
//keypurity:encoder stage
func (c SolverConfig) Fingerprint() string {
	var b strings.Builder
	opt := "lr"
	if c.UseILP {
		opt = "ilp"
	}
	fmt.Fprintf(&b, "pinopt-v1 optimizer=%s", opt)
	fmt.Fprintf(&b, " lr=%d,%g,%t,%t,%t,%t",
		c.LR.MaxIterations, c.LR.Alpha, c.LR.DisableSameNetTieBreak,
		c.LR.FullSubgradient, c.LR.SkipRefinement, c.LR.SkipPostImprove)
	fmt.Fprintf(&b, " ilp=%d,%d", c.ILP.MaxNodes, int64(c.ILP.TimeLimit))
	if c.Profit != nil {
		b.WriteString(" profit=custom")
	}
	if c.LR.Stop != nil {
		b.WriteString(" stop=custom")
	}
	if len(c.ILP.InitialSolution) > 0 {
		// A feasible warm start seeds the incumbent, so under a MaxNodes
		// cap it can change which solution the limited search returns —
		// it must reach the content address.
		b.WriteString(" warm=")
		b.WriteString(warmBits(c.ILP.InitialSolution))
	}
	return b.String()
}

// warmBits renders a warm-start vector as hex-packed bits, most
// significant bit first, so fingerprints stay short for large panels.
func warmBits(x []bool) string {
	const hexdigits = "0123456789abcdef"
	var b strings.Builder
	fmt.Fprintf(&b, "%d:", len(x))
	nib := 0
	for i, v := range x {
		nib <<= 1
		if v {
			nib |= 1
		}
		if i%4 == 3 {
			b.WriteByte(hexdigits[nib])
			nib = 0
		}
	}
	if pad := len(x) % 4; pad != 0 {
		nib <<= 4 - pad
		b.WriteByte(hexdigits[nib])
	}
	return b.String()
}

// PanelKeyFor returns the content address of panel p's artifacts under
// the given solver fingerprint, or "" when the config is uncacheable.
func PanelKeyFor(d *design.Design, idx *design.TrackIndex, panel int, cfg SolverConfig) string {
	if !cfg.Cacheable() {
		return ""
	}
	return cache.PanelKey(PanelHash(d, idx, panel), cfg.Fingerprint())
}

// GenerateStage runs stage 1 for one panel: track-based interval
// generation over the panel's pins (paper §3.1). workers bounds the
// per-track enumeration concurrency.
func GenerateStage(d *design.Design, idx *design.TrackIndex, pinIDs []int, workers int) (*IntervalSet, error) {
	set, err := pinaccess.GenerateWithOptions(d, idx, pinIDs, pinaccess.Options{Workers: workers})
	if err != nil {
		return nil, err
	}
	return &IntervalSet{Set: set}, nil
}

// ConflictStage runs stage 2: the per-track conflict sweep plus profit
// evaluation, producing the assignment model (paper §3.2).
func ConflictStage(s *IntervalSet, cfg SolverConfig, workers int) *ConflictModel {
	return &ConflictModel{Model: assign.BuildWorkers(s.Set, cfg.profit(), workers)}
}

// AssignStage runs stage 3: weighted interval assignment with the
// configured solver, legality-checked (paper §3.3/§3.4). ctx cancels
// between LR subgradient iterations; a context that never fires leaves
// the artifact byte-identical to an uncancellable run.
//
// When the context carries a telemetry span, the LR solver's
// per-iteration convergence series (conflicts remaining, best-so-far,
// primal profit, dual value) is recorded onto it, so an ablation-style
// convergence plot can be regenerated from any trace. The recording is
// read-only: solver results are byte-identical with tracing on or off.
func AssignStage(ctx context.Context, m *ConflictModel, cfg SolverConfig, workers int) (*Assignment, error) {
	model := m.Model
	sp := telemetry.SpanFrom(ctx)
	if cfg.UseILP {
		sol, res, err := model.SolveILP(cfg.ILP)
		if err == nil {
			if err := model.CheckLegal(sol); err != nil {
				return nil, fmt.Errorf("pipeline: illegal ILP assignment: %w", err)
			}
			sp.SetAttr("solver", "ilp")
			sp.SetAttr("ilp_nodes", res.Nodes)
			sp.SetAttr("converged", res.Status == ilp.Optimal)
			return &Assignment{Solution: sol, Converged: res.Status == ilp.Optimal}, nil
		}
		// Fall through to LR on solver limits.
		sp.SetAttr("ilp_fallback", err.Error())
	}
	lrCfg := cfg.LR
	if lrCfg.Workers == 0 {
		lrCfg.Workers = workers
	}
	if lrCfg.Stop == nil && ctx.Done() != nil {
		lrCfg.Stop = func() bool { return ctx.Err() != nil }
	}
	var series []lagrange.IterationStat
	em := telemetry.EmitterFrom(ctx)
	if (sp != nil || em != nil) && lrCfg.Observer == nil {
		lrCfg.Observer = func(st lagrange.IterationStat) {
			if sp != nil {
				series = append(series, st)
			}
			em.Emit("lr_iteration", map[string]any{
				"iter":            st.Iteration,
				"violations":      st.Violations,
				"best_violations": st.BestViolations,
				"profit":          st.SelectedProfit,
				"dual":            st.DualValue,
			})
		}
	}
	res := lagrange.Solve(model, lrCfg)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := model.CheckLegal(res.Solution); err != nil {
		return nil, fmt.Errorf("pipeline: illegal assignment: %w", err)
	}
	sp.SetAttr("solver", "lr")
	sp.SetAttr("lr_iterations", res.Iterations)
	sp.SetAttr("converged", res.Converged)
	if series != nil {
		sp.SetAttr("lr_series", series)
	}
	return &Assignment{Solution: res.Solution, Converged: res.Converged}, nil
}

// SolvePanel runs the three stages for one panel end to end and bundles
// the result as a keyed PanelArtifact. When the context carries a
// telemetry tracer/registry each stage gets a child span and a
// cpr_stage_seconds observation; with neither present the overhead is a
// few nil checks.
//
//keypurity:entry stage
func SolvePanel(ctx context.Context, d *design.Design, idx *design.TrackIndex, panel int, pinIDs []int, cfg SolverConfig, workers int) (*PanelArtifact, error) {
	reg := telemetry.RegistryFrom(ctx)
	observe := func(stage string, start time.Time) {
		elapsed := time.Since(start) //cprlint:keypurity stage-latency metric only; never reaches the artifact or its key
		reg.Histogram("cpr_stage_seconds", "Wall-clock time per pipeline stage.",
			telemetry.DefSecondsBuckets, telemetry.L("stage", stage)).
			Observe(elapsed.Seconds())
	}

	_, genSpan := telemetry.StartSpan(ctx, "generate")
	genStart := time.Now() //cprlint:keypurity stage-latency metric only; never reaches the artifact or its key
	set, err := GenerateStage(d, idx, pinIDs, workers)
	if err != nil {
		genSpan.End()
		return nil, err
	}
	genSpan.SetAttr("pins", len(pinIDs))
	genSpan.SetAttr("intervals", len(set.Set.Intervals))
	genSpan.End()
	observe("generate", genStart)

	_, confSpan := telemetry.StartSpan(ctx, "conflicts")
	confStart := time.Now() //cprlint:keypurity stage-latency metric only; never reaches the artifact or its key
	model := ConflictStage(set, cfg, workers)
	confSpan.SetAttr("conflict_sets", len(model.Model.Conflicts.Sets))
	confSpan.End()
	observe("conflicts", confStart)

	assignCtx, assignSpan := telemetry.StartSpan(ctx, "assign")
	assignStart := time.Now() //cprlint:keypurity stage-latency metric only; never reaches the artifact or its key
	sol, err := AssignStage(assignCtx, model, cfg, workers)
	assignSpan.End()
	if err != nil {
		return nil, err
	}
	observe("assign", assignStart)

	return &PanelArtifact{
		Panel:        panel,
		Key:          PanelKeyFor(d, idx, panel, cfg),
		Intervals:    set,
		Assignment:   sol,
		NumConflicts: len(model.Model.Conflicts.Sets),
	}, nil
}
