package exchange

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"cpr/internal/blockstore"
)

// Default tuning for the HTTP fetcher. Fetches sit on the job hot path
// only when the local store is cold, and the fallback (recompute) is
// always available, so the budget per peer is small.
const (
	DefaultPeerTimeout = 2 * time.Second
	defaultBackoffBase = 500 * time.Millisecond
	defaultBackoffMax  = 30 * time.Second
)

// HTTPOptions tunes NewHTTPFetcher.
type HTTPOptions struct {
	// Timeout bounds each single-peer request (default DefaultPeerTimeout).
	Timeout time.Duration
	// BackoffBase is the penalty after a peer's first transport failure;
	// it doubles per consecutive failure up to BackoffMax. A clean
	// response (200 or 404) resets the penalty.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// peerState tracks one peer's health for backoff.
type peerState struct {
	base     string // normalized base URL, no trailing slash
	failures int
	until    time.Time // in backoff until this instant
}

// HTTPFetcher resolves blocks from a static list of peer daemons over
// cprd's GET /v1/blocks/{key} endpoint. Peers are tried in order; a
// peer that fails at the transport level (refused, timeout, 5xx) is
// skipped for an exponentially growing window so one dead peer cannot
// slow every cold lookup.
type HTTPFetcher struct {
	client  *http.Client
	timeout time.Duration
	base    time.Duration
	max     time.Duration
	now     func() time.Time // injectable for tests

	mu    sync.Mutex
	peers []*peerState
}

// NewHTTPFetcher builds a fetcher over peer base URLs (for example
// "http://nodeA:8080"). Empty strings are dropped; a scheme-less peer
// gets "http://".
func NewHTTPFetcher(peers []string, opts HTTPOptions) *HTTPFetcher {
	f := &HTTPFetcher{
		client:  opts.Client,
		timeout: opts.Timeout,
		base:    opts.BackoffBase,
		max:     opts.BackoffMax,
		now:     time.Now,
	}
	if f.client == nil {
		f.client = &http.Client{}
	}
	if f.timeout <= 0 {
		f.timeout = DefaultPeerTimeout
	}
	if f.base <= 0 {
		f.base = defaultBackoffBase
	}
	if f.max <= 0 {
		f.max = defaultBackoffMax
	}
	for _, p := range peers {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if !strings.Contains(p, "://") {
			p = "http://" + p
		}
		f.peers = append(f.peers, &peerState{base: strings.TrimRight(p, "/")})
	}
	return f
}

// Peers returns the configured peer base URLs.
func (f *HTTPFetcher) Peers() []string {
	out := make([]string, len(f.peers))
	for i, p := range f.peers {
		out[i] = p.base
	}
	return out
}

// Fetch tries each healthy peer in order and returns the first block
// found. Every peer answering 404 (or being skipped/unreachable) is a
// clean miss: ErrNotFound.
func (f *HTTPFetcher) Fetch(ctx context.Context, key string) ([]byte, error) {
	if !blockstore.ValidKey(key) {
		return nil, fmt.Errorf("exchange: malformed key %q", key)
	}
	for _, p := range f.peers {
		if f.inBackoff(p) {
			continue
		}
		data, err := f.fetchOne(ctx, p.base, key)
		switch {
		case err == nil:
			f.markOK(p)
			return data, nil
		case err == blockstore.ErrNotFound:
			f.markOK(p) // the peer is healthy, it just lacks the block
		case ctx.Err() != nil:
			return nil, ctx.Err()
		default:
			f.markFailed(p)
		}
	}
	return nil, ErrNotFound
}

// fetchOne performs one GET against one peer with the per-peer timeout.
func (f *HTTPFetcher) fetchOne(ctx context.Context, base, key string) ([]byte, error) {
	ctx, cancel := context.WithTimeout(ctx, f.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+BlockPath+key, nil)
	if err != nil {
		return nil, err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return io.ReadAll(resp.Body)
	case http.StatusNotFound:
		return nil, blockstore.ErrNotFound
	default:
		return nil, fmt.Errorf("exchange: peer %s: status %d", base, resp.StatusCode)
	}
}

// inBackoff reports whether the peer is still serving a failure penalty.
func (f *HTTPFetcher) inBackoff(p *peerState) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return p.failures > 0 && f.now().Before(p.until)
}

// markOK clears a peer's backoff after any clean response.
func (f *HTTPFetcher) markOK(p *peerState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p.failures = 0
}

// markFailed records a transport failure and extends the peer's penalty
// window exponentially (base << failures, capped at max).
func (f *HTTPFetcher) markFailed(p *peerState) {
	f.mu.Lock()
	defer f.mu.Unlock()
	p.failures++
	d := f.base << (p.failures - 1)
	if d > f.max || d <= 0 {
		d = f.max
	}
	p.until = f.now().Add(d)
}
