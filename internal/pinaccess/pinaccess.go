// Package pinaccess implements track-based pin access interval generation
// (paper §3.1).
//
// For every I/O pin and every M2 track the pin's M1 shape overlaps, the
// generator enumerates candidate pin access intervals inside the pin's net
// bounding box:
//
//   - the minimum interval — the smallest metal strip covering the pin,
//     which always exists and underpins the feasibility guarantee of
//     Theorem 1;
//   - intervals ending at the vertical cut lines of each diff-net pin on
//     the same track (O(m*n) combinations for m diff-net pins on the left
//     and n on the right);
//   - the maximum interval — spanning the net bounding box clipped by
//     routing blockages.
//
// Intervals of the same net with identical (track, span) are deduplicated;
// an interval that fully covers several same-net pins serves all of them
// (an intra-panel connection, preferred by the optimizer).
//
// Generation is track-sharded: candidate enumeration — the O(m*n) cut-line
// work plus covered-pin scans — is independent per routing track and runs
// on Options.Workers goroutines, while interval IDs are assigned by a
// serial merge that replays the candidates in canonical (pin, track) order.
// The produced Set is therefore byte-identical for every worker count,
// including the fully sequential Workers <= 1 path.
package pinaccess

import (
	"fmt"
	"sort"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/parallel"
)

// Interval is a candidate pin access interval on a single M2 track.
type Interval struct {
	// ID is the interval's index within its Set.
	ID int
	// NetID is the net every covered pin belongs to.
	NetID int
	// Track is the global M2 track (y coordinate).
	Track int
	// Span is the closed x range of the metal strip.
	Span geom.Interval
	// PinIDs lists the same-net pins fully covered by the strip, in
	// ascending order. It always contains at least the pin the interval
	// was generated for.
	PinIDs []int
	// MinForPin is the pin ID this interval is the minimum interval of,
	// or -1. Minimum intervals exist per (pin, track) pair.
	MinForPin int
}

// Covers reports whether the interval serves pin id.
func (iv *Interval) Covers(id int) bool {
	for _, p := range iv.PinIDs {
		if p == id {
			return true
		}
	}
	return false
}

// Set is the complete generated interval collection for a group of pins
// (usually one panel).
type Set struct {
	// Intervals holds every deduplicated candidate, indexed by ID.
	Intervals []Interval
	// PinIDs lists the pins the set was generated for, ascending.
	PinIDs []int
	// ByPin maps a pin ID to the IDs of intervals covering it (the set
	// S_j of the paper), each ascending.
	ByPin map[int][]int
}

// MinInterval returns the ID of pin id's minimum interval on the given
// track, or -1 if none was generated there.
func (s *Set) MinInterval(pin, track int) int {
	for _, ivID := range s.ByPin[pin] {
		iv := &s.Intervals[ivID]
		if iv.MinForPin == pin && iv.Track == track {
			return ivID
		}
	}
	return -1
}

// AnyMinInterval returns the ID of one of pin id's minimum intervals
// (lowest track first), or -1 if the pin has none.
func (s *Set) AnyMinInterval(pin int) int {
	best := -1
	for _, ivID := range s.ByPin[pin] {
		iv := &s.Intervals[ivID]
		if iv.MinForPin != pin {
			continue
		}
		if best < 0 || iv.Track < s.Intervals[best].Track {
			best = ivID
		}
	}
	return best
}

// Options tunes interval generation.
type Options struct {
	// MaxSpanRadius, when positive, clips every pin's generation window
	// to [pinCenter - r, pinCenter + r] instead of the full net bounding
	// box — the paper's footnote 1: "we can constrain pin access
	// interval generation for each pin using an estimated M2 routing
	// bounding box for its corresponding net, instead of using the net
	// bounding box", which keeps M2 strips short when M2 routing is not
	// favoured for long nets.
	MaxSpanRadius int
	// Workers bounds the goroutines used for the per-track candidate
	// enumeration phase (<= 1 is sequential). The generated Set is
	// byte-identical for every value.
	Workers int
}

// Generate enumerates pin access intervals for the given pins with
// default options. The track index must be built from the same design.
func Generate(d *design.Design, idx *design.TrackIndex, pinIDs []int) (*Set, error) {
	return GenerateWithOptions(d, idx, pinIDs, Options{})
}

// GenerateWithOptions enumerates pin access intervals for the given pins.
func GenerateWithOptions(d *design.Design, idx *design.TrackIndex, pinIDs []int, opts Options) (*Set, error) {
	s := &Set{
		PinIDs: append([]int(nil), pinIDs...),
		ByPin:  make(map[int][]int, len(pinIDs)),
	}
	sort.Ints(s.PinIDs)

	// Deduplicate on (net, track, span).
	type key struct {
		net, track, lo, hi int
	}
	seen := make(map[key]int)

	addInterval := func(netID, track int, span geom.Interval, coveredPins []int, minFor int) {
		k := key{netID, track, span.Lo, span.Hi}
		if id, ok := seen[k]; ok {
			// Merge pin coverage and min marking into the existing copy.
			iv := &s.Intervals[id]
			for _, p := range coveredPins {
				if !iv.Covers(p) {
					iv.PinIDs = append(iv.PinIDs, p)
				}
			}
			sort.Ints(iv.PinIDs)
			if minFor >= 0 && iv.MinForPin < 0 {
				iv.MinForPin = minFor
			}
			return
		}
		id := len(s.Intervals)
		pins := append([]int(nil), coveredPins...)
		sort.Ints(pins)
		s.Intervals = append(s.Intervals, Interval{
			ID:        id,
			NetID:     netID,
			Track:     track,
			Span:      span,
			PinIDs:    pins,
			MinForPin: minFor,
		})
		seen[k] = id
	}

	for _, pid := range s.PinIDs {
		if pid < 0 || pid >= len(d.Pins) {
			return nil, fmt.Errorf("pinaccess: pin ID %d out of range", pid)
		}
	}

	// Phase 1 — per-track candidate enumeration, sharded across workers.
	// Each track is an independent job: candidate spans depend only on the
	// read-only design and track index, and every job writes to its own
	// result slot.
	tracks, trackPins := trackShards(d, s.PinIDs)
	shards := make([][]pinCandidates, len(tracks))
	parallel.ForEach(opts.Workers, len(tracks), func(ti int) {
		t := tracks[ti]
		for _, pid := range trackPins[ti] {
			if cands := enumerateCandidates(d, idx, pid, t, opts); len(cands) > 0 {
				shards[ti] = append(shards[ti], pinCandidates{pid: pid, cands: cands})
			}
		}
	})

	// Phase 2 — deterministic ordered merge: replay candidates in the
	// canonical (ascending pin, ascending track) order, which assigns the
	// same interval IDs as a fully sequential enumeration would.
	type pinTrack struct{ pid, track int }
	byPinTrack := make(map[pinTrack][]candidate)
	for ti := range tracks {
		for _, pc := range shards[ti] {
			byPinTrack[pinTrack{pc.pid, tracks[ti]}] = pc.cands
		}
	}
	for _, pid := range s.PinIDs {
		pin := &d.Pins[pid]
		for t := pin.Shape.Y0; t <= pin.Shape.Y1; t++ {
			for _, c := range byPinTrack[pinTrack{pid, t}] {
				addInterval(pin.NetID, t, c.span, c.covered, c.minFor)
			}
		}
	}

	// Build S_j.
	for i := range s.Intervals {
		for _, pid := range s.Intervals[i].PinIDs {
			s.ByPin[pid] = append(s.ByPin[pid], i)
		}
	}
	for pid, list := range s.ByPin {
		sort.Ints(list)
		s.ByPin[pid] = list
	}

	// Every requested pin must have at least one interval (its minimum);
	// otherwise the panel is unroutable and Theorem 1 is violated.
	for _, pid := range s.PinIDs {
		if len(s.ByPin[pid]) == 0 {
			return nil, fmt.Errorf("pinaccess: pin %q has no access interval (fully blocked)",
				d.Pins[pid].Name)
		}
	}
	return s, nil
}

// candidate is one enumerated pin access interval before ID assignment.
type candidate struct {
	span    geom.Interval
	covered []int
	minFor  int
}

// pinCandidates couples one requested pin with its ordered candidate list
// on a single track.
type pinCandidates struct {
	pid   int
	cands []candidate
}

// trackShards groups the requested pins by the tracks their shapes overlap:
// tracks ascending, each track's pins ascending and deduplicated. Every
// (track, pins) pair is one independent enumeration job.
func trackShards(d *design.Design, sortedPinIDs []int) (tracks []int, trackPins [][]int) {
	pinsByTrack := make(map[int][]int)
	prev := -1
	for _, pid := range sortedPinIDs {
		if pid == prev {
			continue // duplicate request: enumerate once, merge replays it
		}
		prev = pid
		sh := d.Pins[pid].Shape
		for t := sh.Y0; t <= sh.Y1; t++ {
			pinsByTrack[t] = append(pinsByTrack[t], pid)
		}
	}
	tracks = make([]int, 0, len(pinsByTrack))
	for t := range pinsByTrack {
		tracks = append(tracks, t)
	}
	sort.Ints(tracks)
	trackPins = make([][]int, len(tracks))
	for i, t := range tracks {
		trackPins[i] = pinsByTrack[t]
	}
	return tracks, trackPins
}

// enumerateCandidates lists pin pid's candidate intervals on track t in the
// canonical order: the minimum interval first (the Theorem 1 anchor), then
// the cut-line combinations left-to-right. It only reads the design and
// index, so calls are safe to run concurrently.
func enumerateCandidates(d *design.Design, idx *design.TrackIndex, pid, t int, opts Options) []candidate {
	pin := &d.Pins[pid]
	seed := pin.Shape.XSpan()
	free := idx.FreeSpanAround(t, seed)
	if free.Empty() {
		// The pin's own span is blocked on this track; no interval can
		// cover the pin here.
		return nil
	}
	bbox := d.NetBBox(pin.NetID).XSpan()
	if opts.MaxSpanRadius > 0 {
		c := pin.Shape.CenterX()
		window := geom.Interval{Lo: c - opts.MaxSpanRadius, Hi: c + opts.MaxSpanRadius}
		bbox = bbox.Intersect(window).Union(seed)
	}
	maxSpan := free.Intersect(bbox)
	if !maxSpan.ContainsInterval(seed) {
		// Defensive: the bbox always contains the pin, so this only
		// happens on malformed designs.
		maxSpan = maxSpan.Union(seed)
	}

	// Minimum interval (Theorem 1 anchor).
	out := []candidate{{span: seed, covered: []int{pid}, minFor: pid}}

	// Cut-line candidates from diff-net pins on this track.
	lefts := []int{maxSpan.Lo}
	rights := []int{maxSpan.Hi}
	for _, qid := range idx.PinsOnTrack(t) {
		if qid == pid {
			continue
		}
		q := &d.Pins[qid]
		if q.NetID == pin.NetID {
			continue
		}
		qs := q.Shape.XSpan()
		if qs.Hi < seed.Lo && qs.Hi+1 > maxSpan.Lo {
			lefts = append(lefts, qs.Hi+1)
		}
		if qs.Lo > seed.Hi && qs.Lo-1 < maxSpan.Hi {
			rights = append(rights, qs.Lo-1)
		}
	}
	lefts = dedupInts(lefts)
	rights = dedupInts(rights)

	for _, lo := range lefts {
		for _, hi := range rights {
			span := geom.Interval{Lo: lo, Hi: hi}
			if span == seed {
				continue // already added as the minimum interval
			}
			covered := coveredPins(d, idx, pin.NetID, t, span)
			if !containsInt(covered, pid) {
				// Cannot happen: span contains seed by construction.
				// Guard anyway.
				continue
			}
			out = append(out, candidate{span: span, covered: covered, minFor: -1})
		}
	}
	return out
}

// coveredPins returns the same-net pins on the track whose spans lie fully
// inside span.
func coveredPins(d *design.Design, idx *design.TrackIndex, netID, track int, span geom.Interval) []int {
	var out []int
	for _, qid := range idx.PinsOnTrack(track) {
		q := &d.Pins[qid]
		if q.NetID != netID {
			continue
		}
		if span.ContainsInterval(q.Shape.XSpan()) {
			out = append(out, qid)
		}
	}
	return out
}

func dedupInts(xs []int) []int {
	sort.Ints(xs)
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
