package cache

import "testing"

func TestKeyStability(t *testing.T) {
	k1 := Key("deadbeef", "v1 mode=cpr")
	k2 := Key("deadbeef", "v1 mode=cpr")
	if k1 != k2 {
		t.Fatalf("identical inputs produced different keys: %s vs %s", k1, k2)
	}
	if len(k1) != 64 {
		t.Fatalf("key is not hex sha256: %q", k1)
	}
	if Key("deadbeef", "v1 mode=ilp") == k1 {
		t.Fatal("different fingerprints collided")
	}
	if Key("cafef00d", "v1 mode=cpr") == k1 {
		t.Fatal("different design hashes collided")
	}
	// The separator prevents boundary ambiguity between hash and
	// fingerprint.
	if Key("ab", "cd") == Key("abc", "d") {
		t.Fatal("hash/fingerprint boundary is ambiguous")
	}
}

func TestCacheHitMissCounters(t *testing.T) {
	c := New[int](8)
	if _, ok := c.Get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put("a", 1)
	if v, ok := c.Get("a"); !ok || v != 1 {
		t.Fatalf("Get(a) = %d, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
	if got := st.HitRate(); got != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", got)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("b", 2)
	c.Get("a") // promote a; b is now LRU
	c.Put("c", 3)
	if c.Contains("b") {
		t.Fatal("b should have been evicted")
	}
	if !c.Contains("a") || !c.Contains("c") {
		t.Fatal("a and c should survive")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction, 2 entries", st)
	}
}

func TestCachePutReplace(t *testing.T) {
	c := New[int](2)
	c.Put("a", 1)
	c.Put("a", 9)
	if v, _ := c.Get("a"); v != 9 {
		t.Fatalf("replaced value = %d, want 9", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}
