// Package all registers every cprlint analyzer. cmd/cprlint and the
// lint CI job consume this list; adding an analyzer here wires it into
// the whole toolchain.
package all

import (
	"cpr/internal/analysis"
	"cpr/internal/analysis/ctxpass"
	"cpr/internal/analysis/errdrop"
	"cpr/internal/analysis/floatreduce"
	"cpr/internal/analysis/maporder"
	"cpr/internal/analysis/mutexcopy"
	"cpr/internal/analysis/nondeterm"
)

// Analyzers returns the full suite in stable (alphabetical) order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		ctxpass.Analyzer,
		errdrop.Analyzer,
		floatreduce.Analyzer,
		maporder.Analyzer,
		mutexcopy.Analyzer,
		nondeterm.Analyzer,
	}
}

// Known maps every analyzer name and suppression alias to true, for
// validating //cprlint: comments.
func Known() map[string]bool {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
		for _, alias := range a.SuppressAliases {
			known[alias] = true
		}
	}
	return known
}
