// Package funcsum computes per-function behavior summaries and exports
// them as facts — the call-graph substrate every interprocedural
// cprlint analyzer builds on.
//
// For each package-level function or method it records whether the
// function (directly or through any call chain) blocks on I/O or
// channel operations, reads the wall clock, the environment, or a
// random source, touches mutated package-level state, runs an
// unstoppable loop, acquires a closable resource it returns, and which
// options-struct fields it reads. Summaries propagate bottom-up: the
// engine analyzes dependency packages first, so a call into another
// module package resolves to that callee's already-exported fact, and a
// fixed-point pass closes cycles within a package.
//
// funcsum understands three marker comments, all outside the
// //cprlint: suppression namespace:
//
//	//keypurity:options        on a struct type: its field reads are
//	                           tracked in summaries (an options struct)
//	//keypurity:exempt <why>   on a field of an options struct: the
//	                           field is excluded from fingerprints by
//	                           contract, with a mandatory reason
//	keypurity:observational    in a package doc comment: the package is
//	                           observational by contract (telemetry) and
//	                           its clock/env/rand/global reads are not
//	                           summarized
//
// Leaf sites silenced by an ordinary suppression comment are omitted
// from summaries too: //cprlint:lockheld drops a blocking site,
// //cprlint:nondeterm or //cprlint:keypurity drops a clock/env/rand/
// global site, //cprlint:goroleak drops an unstoppable loop. That lets
// one justified comment at the primitive clear every caller upstream.
package funcsum

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cpr/internal/analysis"
)

// Analyzer computes function summaries. It produces facts only — no
// diagnostics — and is scheduled implicitly via Requires by the
// analyzers that consume the summaries; it is not independently
// selectable in cprlint.
var Analyzer = &analysis.Analyzer{
	Name:      "funcsum",
	Doc:       "computes per-function behavior summaries (blocking, clock/env/rand, option-field reads, unstoppable loops, resource acquisition) and exports them as facts for the interprocedural analyzers",
	FactTypes: []analysis.Fact{(*Summary)(nil), (*OptionStruct)(nil)},
}

// Run is wired in init: run refers to Analyzer for fact imports, and a
// literal assignment would form an initialization cycle.
func init() { Analyzer.Run = run }

// maxVia caps recorded call-chain depth; deeper chains keep the root
// cause but truncate the path.
const maxVia = 8

// Chain records one behavior with the call path that reaches it: What
// is the root cause ("call to net/http.(*Client).Do", "channel
// receive", "time.Now"), Via the chain of intermediate functions from
// the summarized function's first callee down.
type Chain struct {
	What string   `json:"what"`
	Via  []string `json:"via,omitempty"`
}

// String renders the chain for diagnostics.
func (c *Chain) String() string {
	if c == nil {
		return ""
	}
	if len(c.Via) == 0 {
		return c.What
	}
	return c.What + " (via " + strings.Join(c.Via, " -> ") + ")"
}

func extend(c *Chain, via string) *Chain {
	v := make([]string, 0, len(c.Via)+1)
	v = append(v, via)
	v = append(v, c.Via...)
	if len(v) > maxVia {
		v = v[:maxVia]
	}
	return &Chain{What: c.What, Via: v}
}

// Summary is the exported fact for one function.
type Summary struct {
	// Blocking is set when the function can block: network or file
	// I/O, time.Sleep, WaitGroup/Cond waits, bare channel operations,
	// or a select with no default.
	Blocking *Chain `json:"blocking,omitempty"`
	// Clock, Env, and Rand record wall-clock, environment, and random
	// source reads — the nondeterminism sources cache keys must never
	// depend on.
	Clock *Chain `json:"clock,omitempty"`
	Env   *Chain `json:"env,omitempty"`
	Rand  *Chain `json:"rand,omitempty"`
	// MutableGlobal records access to a package-level variable that is
	// assigned somewhere in its package (mutable process state).
	MutableGlobal *Chain `json:"mutable_global,omitempty"`
	// Unstoppable is set when the function contains (or always reaches)
	// a for-loop with no condition and no return, break, channel
	// receive, or select inside — a loop nothing can stop.
	Unstoppable *Chain `json:"unstoppable,omitempty"`
	// Acquires names the resource kind ("file", "listener",
	// "connection", "response body") when the function acquires one and
	// returns it to the caller — callers own the release.
	Acquires string `json:"acquires,omitempty"`
	// OptionReads maps "<pkg>.<Type>.<Field>" of every tracked
	// options-struct field the function reads, with the chain that
	// reaches the read.
	OptionReads map[string]*Chain `json:"option_reads,omitempty"`
}

// AFact marks Summary as a fact.
func (*Summary) AFact() {}

func (s *Summary) empty() bool {
	return s.Blocking == nil && s.Clock == nil && s.Env == nil && s.Rand == nil &&
		s.MutableGlobal == nil && s.Unstoppable == nil && s.Acquires == "" && len(s.OptionReads) == 0
}

// OptionStruct is the fact exported for a struct type carrying the
// //keypurity:options marker. Exempt maps field names excluded from
// fingerprints by contract to their documented reasons.
type OptionStruct struct {
	Exempt map[string]string `json:"exempt,omitempty"`
}

// AFact marks OptionStruct as a fact.
func (*OptionStruct) AFact() {}

// blockingCalls maps types.Func.FullName of standard-library functions
// that can block to a short description. Writes to stdout/stderr and
// log calls are deliberately absent — flagging them drowns real
// findings.
var blockingCalls = map[string]string{
	"net/http.Get":      "net/http.Get",
	"net/http.Post":     "net/http.Post",
	"net/http.PostForm": "net/http.PostForm",
	"net/http.Head":     "net/http.Head",

	"(*net/http.Client).Do":       "net/http.(*Client).Do",
	"(*net/http.Client).Get":      "net/http.(*Client).Get",
	"(*net/http.Client).Post":     "net/http.(*Client).Post",
	"(*net/http.Client).PostForm": "net/http.(*Client).PostForm",
	"(*net/http.Client).Head":     "net/http.(*Client).Head",
	"(*net/http.Transport).RoundTrip": "net/http.(*Transport).RoundTrip",

	"net.Dial":            "net.Dial",
	"net.DialTimeout":     "net.DialTimeout",
	"net.Listen":          "net.Listen",
	"(net.Listener).Accept": "net.Listener.Accept",
	"(net.Conn).Read":       "net.Conn.Read",
	"(net.Conn).Write":      "net.Conn.Write",

	"time.Sleep": "time.Sleep",

	"(*sync.WaitGroup).Wait": "sync.(*WaitGroup).Wait",
	"(*sync.Cond).Wait":      "sync.(*Cond).Wait",

	"os.Open":       "os.Open",
	"os.OpenFile":   "os.OpenFile",
	"os.Create":     "os.Create",
	"os.CreateTemp": "os.CreateTemp",
	"os.ReadFile":   "os.ReadFile",
	"os.WriteFile":  "os.WriteFile",
	"os.ReadDir":    "os.ReadDir",
	"os.Rename":     "os.Rename",
	"os.Remove":     "os.Remove",
	"os.RemoveAll":  "os.RemoveAll",
	"os.MkdirAll":   "os.MkdirAll",

	"(*os.File).Read":    "os.(*File).Read",
	"(*os.File).Write":   "os.(*File).Write",
	"(*os.File).ReadAt":  "os.(*File).ReadAt",
	"(*os.File).WriteAt": "os.(*File).WriteAt",
	"(*os.File).Sync":    "os.(*File).Sync",
	"(*os.File).Close":   "os.(*File).Close",

	"io.ReadAll": "io.ReadAll",
	"io.Copy":    "io.Copy",

	"(*os/exec.Cmd).Run":            "exec.(*Cmd).Run",
	"(*os/exec.Cmd).Output":         "exec.(*Cmd).Output",
	"(*os/exec.Cmd).CombinedOutput": "exec.(*Cmd).CombinedOutput",
	"(*os/exec.Cmd).Wait":           "exec.(*Cmd).Wait",
}

var clockCalls = map[string]bool{
	"time.Now":   true,
	"time.Since": true,
	"time.Until": true,
}

var envCalls = map[string]bool{
	"os.Getenv":    true,
	"os.LookupEnv": true,
	"os.Environ":   true,
	"os.Hostname":  true,
}

// acquirers maps FullName of resource-acquiring stdlib functions to the
// resource kind deferclose reports.
var acquirers = map[string]string{
	"os.Open":       "file",
	"os.OpenFile":   "file",
	"os.Create":     "file",
	"os.CreateTemp": "file",

	"net.Listen":      "listener",
	"net.ListenTCP":   "listener",
	"net.Dial":        "connection",
	"net.DialTimeout": "connection",

	"net/http.Get":            "response body",
	"net/http.Post":           "response body",
	"net/http.PostForm":       "response body",
	"net/http.Head":           "response body",
	"(*net/http.Client).Do":   "response body",
	"(*net/http.Client).Get":  "response body",
	"(*net/http.Client).Post": "response body",
	"(*net/http.Client).Head": "response body",
}

// BlockingCall reports whether call statically resolves to a
// standard-library function in the blocking table, and what to call it.
func BlockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	fn := analysis.FuncOf(info, call)
	if fn == nil {
		return "", false
	}
	what, ok := blockingCalls[fn.Origin().FullName()]
	return what, ok
}

// AcquirerOf reports the resource kind a statically resolved callee
// acquires, per the standard-library table.
func AcquirerOf(fn *types.Func) (string, bool) {
	if fn == nil {
		return "", false
	}
	kind, ok := acquirers[fn.Origin().FullName()]
	return kind, ok
}

// LookupSummary imports fn's summary fact. The calling analyzer must
// list funcsum.Analyzer in Requires.
func LookupSummary(pass *analysis.Pass, fn *types.Func) (*Summary, bool) {
	if fn == nil {
		return nil, false
	}
	var s Summary
	if !pass.ImportObjectFact(Analyzer, fn.Origin(), &s) {
		return nil, false
	}
	return &s, true
}

// closerIface is io.Closer built from first principles so the check
// works without importing io's export data into every test package.
var closerIface = func() *types.Interface {
	errType := types.Universe.Lookup("error").Type()
	res := types.NewTuple(types.NewVar(token.NoPos, nil, "", errType))
	sig := types.NewSignatureType(nil, nil, nil, nil, res, false)
	i := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Close", sig)}, nil)
	i.Complete()
	return i
}()

// IsResource reports whether t is a closable resource type: anything
// implementing io.Closer, plus *http.Response (whose Body carries the
// Close obligation).
func IsResource(t types.Type) bool {
	if t == nil {
		return false
	}
	t = types.Unalias(t)
	if types.Implements(t, closerIface) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		if n, ok := types.Unalias(p.Elem()).(*types.Named); ok {
			obj := n.Obj()
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Response" {
				return true
			}
		}
	}
	return false
}

// returnsResource reports whether any of fn's results is a resource.
func returnsResource(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if IsResource(sig.Results().At(i).Type()) {
			return true
		}
	}
	return false
}

// edge is one static call from a summarized function to another
// module-internal function.
type edge struct {
	fn   *types.Func
	name string
}

// fnInfo is the in-flight state for one function during the
// intra-package fixed point.
type fnInfo struct {
	decl  *ast.FuncDecl
	fn    *types.Func
	sum   *Summary
	edges []edge
}

type collector struct {
	pass          *analysis.Pass
	observational bool
	mutated       map[*types.Var]bool
	sups          map[string][]analysis.Suppression
	optionTypes   map[*types.TypeName]*OptionStruct // local marked structs
	acquired      string                            // resource kind acquired by the function being collected
}

func run(pass *analysis.Pass) error {
	c := &collector{
		pass:        pass,
		mutated:     mutatedGlobals(pass),
		sups:        make(map[string][]analysis.Suppression),
		optionTypes: make(map[*types.TypeName]*OptionStruct),
	}
	for _, f := range pass.Files {
		if hasMarker(f.Doc, "keypurity:observational") {
			c.observational = true
		}
		name := pass.Fset.Position(f.Pos()).Filename
		c.sups[name] = analysis.ParseSuppressions(pass.Fset, f)
	}

	c.collectOptionStructs()

	var infos []*fnInfo
	byObj := make(map[*types.Func]*fnInfo)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &fnInfo{decl: fd, fn: fn}
			fi.sum, fi.edges = c.collect(fd)
			infos = append(infos, fi)
			byObj[fn] = fi
		}
	}

	// Close same-package call cycles and pull in cross-package facts.
	// Deterministic: functions in declaration order, edges in call-site
	// order, first chain wins.
	for round := 0; round < len(infos)+2; round++ {
		changed := false
		for _, fi := range infos {
			for _, e := range fi.edges {
				var src *Summary
				if cal, ok := byObj[e.fn]; ok {
					src = cal.sum
				} else if e.fn.Pkg() != nil && e.fn.Pkg() != pass.Pkg {
					var s Summary
					if pass.ImportObjectFact(Analyzer, e.fn, &s) {
						src = &s
					}
				}
				if src == nil {
					continue
				}
				if mergeFrom(fi.sum, src, e.name) {
					changed = true
				}
				if src.Acquires != "" && fi.sum.Acquires == "" && returnsResource(fi.fn) {
					fi.sum.Acquires = src.Acquires
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}

	for _, fi := range infos {
		if !fi.sum.empty() {
			pass.ExportObjectFact(fi.fn, fi.sum)
		}
	}
	return nil
}

// mergeFrom folds callee behaviors into dst through call edge `via`,
// reporting whether anything new was learned.
func mergeFrom(dst, src *Summary, via string) bool {
	changed := false
	prop := func(d **Chain, s *Chain) {
		if *d == nil && s != nil {
			*d = extend(s, via)
			changed = true
		}
	}
	prop(&dst.Blocking, src.Blocking)
	prop(&dst.Clock, src.Clock)
	prop(&dst.Env, src.Env)
	prop(&dst.Rand, src.Rand)
	prop(&dst.MutableGlobal, src.MutableGlobal)
	prop(&dst.Unstoppable, src.Unstoppable)
	if len(src.OptionReads) > 0 {
		keys := make([]string, 0, len(src.OptionReads))
		for k := range src.OptionReads {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if dst.OptionReads[k] == nil {
				if dst.OptionReads == nil {
					dst.OptionReads = make(map[string]*Chain)
				}
				dst.OptionReads[k] = extend(src.OptionReads[k], via)
				changed = true
			}
		}
	}
	return changed
}

// collectOptionStructs finds //keypurity:options markers and exports an
// OptionStruct fact per marked type, with //keypurity:exempt reasons
// gathered from field comments.
func (c *collector) collectOptionStructs() {
	for _, f := range c.pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				if !hasMarker(gd.Doc, "keypurity:options") && !hasMarker(ts.Doc, "keypurity:options") {
					continue
				}
				tn, ok := c.pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				fact := &OptionStruct{Exempt: make(map[string]string)}
				for _, field := range st.Fields.List {
					reason, ok := exemptReason(field)
					if !ok {
						continue
					}
					for _, name := range field.Names {
						fact.Exempt[name.Name] = reason
					}
				}
				c.optionTypes[tn] = fact
				c.pass.ExportObjectFact(tn, fact)
			}
		}
	}
}

// MarkerLine finds the first comment in cg written as the given
// directive marker ("//keypurity:entry", "//keypurity:exempt", ...) and
// returns the rest of that line. Directive-style comments — no space
// after the slashes — are stripped by CommentGroup.Text, so markers
// must be matched against the raw comment list.
func MarkerLine(cg *ast.CommentGroup, marker string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, marker) {
			return strings.TrimSpace(strings.TrimPrefix(text, marker)), true
		}
	}
	return "", false
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	_, ok := MarkerLine(cg, marker)
	return ok
}

// exemptReason extracts the //keypurity:exempt reason from a field's
// doc or trailing comment.
func exemptReason(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if reason, ok := MarkerLine(cg, "keypurity:exempt"); ok {
			return reason, true
		}
	}
	return "", false
}

// optionStructOf resolves a named type to its OptionStruct fact, local
// or imported, if the type carries the options marker.
func (c *collector) optionStructOf(tn *types.TypeName) (*OptionStruct, bool) {
	if tn.Pkg() == c.pass.Pkg {
		f, ok := c.optionTypes[tn]
		return f, ok
	}
	var f OptionStruct
	if c.pass.ImportObjectFact(Analyzer, tn, &f) {
		return &f, true
	}
	return nil, false
}

// suppressedAt reports whether the line at pos carries (or follows) a
// reasoned suppression comment for one of the given analyzer names.
func (c *collector) suppressedAt(pos token.Pos, names ...string) bool {
	p := c.pass.Fset.Position(pos)
	for _, s := range c.sups[p.Filename] {
		if s.Reason == "" {
			continue
		}
		if s.Line != p.Line && !(s.OwnLine && s.Line == p.Line-1) {
			continue
		}
		for _, n := range names {
			if s.Name == n {
				return true
			}
		}
	}
	return false
}

// mutatedGlobals finds package-level variables assigned anywhere in the
// package outside their declarations — the mutable process state
// keypurity keeps out of stage computations.
func mutatedGlobals(pass *analysis.Pass) map[*types.Var]bool {
	out := make(map[*types.Var]bool)
	pkgLevel := func(id *ast.Ident) *types.Var {
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Pkg() != pass.Pkg || v.Parent() != pass.Pkg.Scope() {
			return nil
		}
		return v
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
						if v := pkgLevel(id); v != nil {
							out[v] = true
						}
					}
				}
			case *ast.IncDecStmt:
				if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
					if v := pkgLevel(id); v != nil {
						out[v] = true
					}
				}
			}
			return true
		})
	}
	return out
}

// collect walks one function body and returns its direct summary plus
// the static call edges into module functions. Goroutine bodies and
// non-immediate function literals are excluded — their behavior belongs
// to whoever eventually runs them — while immediately-invoked and
// deferred literals are included.
func (c *collector) collect(decl *ast.FuncDecl) (*Summary, []edge) {
	sum := &Summary{}
	var callees []edge
	info := c.pass.TypesInfo
	c.acquired = ""

	immediate := make(map[*ast.FuncLit]bool)
	commOps := make(map[ast.Node]bool)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if fl, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				immediate[fl] = true
			}
		case *ast.DeferStmt:
			if fl, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				immediate[fl] = true
			}
		case *ast.SelectStmt:
			for _, cl := range x.Body.List {
				cc, ok := cl.(*ast.CommClause)
				if !ok || cc.Comm == nil {
					continue
				}
				markCommOps(cc.Comm, commOps)
			}
		}
		return true
	})

	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return immediate[x]
		case *ast.GoStmt:
			return false
		case *ast.SelectStmt:
			if !selectHasDefault(x) {
				c.block(sum, x.Select, "select with no default case")
			}
		case *ast.SendStmt:
			if !commOps[x] {
				c.block(sum, x.Arrow, "channel send")
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW && !commOps[x] {
				c.block(sum, x.OpPos, "channel receive")
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(x.X)) {
				c.block(sum, x.For, "range over channel")
			}
		case *ast.CallExpr:
			c.call(x, sum, &callees)
		case *ast.Ident:
			c.globalRead(x, sum)
		case *ast.SelectorExpr:
			c.fieldRead(x, sum)
		}
		return true
	})

	if pos, ok := c.unstoppableIn(decl.Body); ok {
		if !c.suppressedAt(pos, "goroleak") {
			line := c.pass.Fset.Position(pos).Line
			sum.Unstoppable = &Chain{What: "unconditional for-loop with no return, break, channel receive, or select (line " + itoa(line) + ")"}
		}
	}
	if c.acquired != "" {
		if fn, ok := info.Defs[decl.Name].(*types.Func); ok && returnsResource(fn) {
			sum.Acquires = c.acquired
		}
	}
	return sum, callees
}

// markCommOps records a select comm statement's channel operations so
// the main walk does not double-count them as independent blocking ops.
func markCommOps(comm ast.Stmt, commOps map[ast.Node]bool) {
	commOps[comm] = true
	switch s := comm.(type) {
	case *ast.SendStmt:
		commOps[s] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			commOps[u] = true
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				commOps[u] = true
			}
		}
	}
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// block records a direct blocking site unless a lockheld suppression
// clears it.
func (c *collector) block(sum *Summary, pos token.Pos, what string) {
	if sum.Blocking != nil || c.suppressedAt(pos, "lockheld") {
		return
	}
	sum.Blocking = &Chain{What: what}
}

// call classifies one static call site: blocking/clock/env/rand tables,
// resource acquisition, and module-call edges for propagation.
func (c *collector) call(call *ast.CallExpr, sum *Summary, callees *[]edge) {
	fn := analysis.FuncOf(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	fn = fn.Origin()
	full := fn.FullName()
	pos := call.Pos()

	if what, ok := blockingCalls[full]; ok {
		if sum.Blocking == nil && !c.suppressedAt(pos, "lockheld") {
			sum.Blocking = &Chain{What: "call to " + what}
		}
	}
	if !c.observational {
		switch {
		case clockCalls[full]:
			if sum.Clock == nil && !c.suppressedAt(pos, "nondeterm", "keypurity") {
				sum.Clock = &Chain{What: full}
			}
		case envCalls[full]:
			if sum.Env == nil && !c.suppressedAt(pos, "nondeterm", "keypurity") {
				sum.Env = &Chain{What: full}
			}
		case fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), "math/rand"):
			if sum.Rand == nil && !c.suppressedAt(pos, "nondeterm", "keypurity") {
				sum.Rand = &Chain{What: full}
			}
		}
	}
	if kind, ok := acquirers[full]; ok && c.acquired == "" {
		c.acquired = kind
	}
	// Every statically resolved callee becomes a propagation edge.
	// Callees without exported summaries (the standard library, pure
	// functions) simply miss on fact lookup during the fixed point;
	// filtering them here by import-path shape would misclassify
	// single-element test-module paths as stdlib.
	if fn.Pkg() != nil && fn.Pkg() != types.Unsafe {
		*callees = append(*callees, edge{fn: fn, name: full})
	}
}

// globalRead records uses of mutated package-level variables.
func (c *collector) globalRead(id *ast.Ident, sum *Summary) {
	if c.observational || sum.MutableGlobal != nil {
		return
	}
	v, ok := c.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || !c.mutated[v] {
		return
	}
	if c.suppressedAt(id.Pos(), "nondeterm", "keypurity") {
		return
	}
	sum.MutableGlobal = &Chain{What: "package variable " + v.Name()}
}

// fieldRead records reads of tracked options-struct fields.
func (c *collector) fieldRead(sel *ast.SelectorExpr, sum *Summary) {
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	recv := types.Unalias(selection.Recv())
	if p, ok := recv.(*types.Pointer); ok {
		recv = types.Unalias(p.Elem())
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return
	}
	tn := named.Obj()
	if tn.Pkg() == nil {
		return
	}
	if _, tracked := c.optionStructOf(tn); !tracked {
		return
	}
	if c.suppressedAt(sel.Pos(), "keypurity") {
		return
	}
	key := tn.Pkg().Path() + "." + tn.Name() + "." + sel.Sel.Name
	if sum.OptionReads == nil {
		sum.OptionReads = make(map[string]*Chain)
	}
	if sum.OptionReads[key] == nil {
		sum.OptionReads[key] = &Chain{What: key}
	}
}

// unstoppableIn finds a for-loop with no condition and no escape
// (return, break, channel receive, select, range-over-channel, panic)
// anywhere in body outside nested function literals and goroutines.
func (c *collector) unstoppableIn(body ast.Node) (token.Pos, bool) {
	info := c.pass.TypesInfo
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if x.Cond == nil && !loopCanStop(info, x.Body) {
				found = x.For
				return false
			}
		}
		return true
	})
	return found, found.IsValid()
}

// UnstoppableLoopIn is unstoppableIn for other analyzers (goroleak
// checks goroutine function literals directly). It needs no suppression
// state: the caller filters.
func UnstoppableLoopIn(info *types.Info, body ast.Node) (token.Pos, bool) {
	var found token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		if found.IsValid() {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ForStmt:
			if x.Cond == nil && !loopCanStop(info, x.Body) {
				found = x.For
				return false
			}
		}
		return true
	})
	return found, found.IsValid()
}

// loopCanStop reports whether a loop body contains any construct that
// can end or park-and-resume the loop: return, break, channel receive,
// select, range over a channel, or panic.
func loopCanStop(info *types.Info, body *ast.BlockStmt) bool {
	stop := false
	ast.Inspect(body, func(n ast.Node) bool {
		if stop {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.ReturnStmt, *ast.SelectStmt:
			stop = true
		case *ast.BranchStmt:
			if x.Tok == token.BREAK || x.Tok == token.GOTO {
				stop = true
			}
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				stop = true
			}
		case *ast.RangeStmt:
			if isChanType(info.TypeOf(x.X)) {
				stop = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "panic" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					stop = true
				}
			}
		}
		return true
	})
	return stop
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
