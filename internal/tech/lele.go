package tech

import "sort"

// leleRules is the litho-etch-litho-etch double patterning engine. Each
// routing track's strips decompose onto the two masks by alternation
// (the canonical LELE tip-to-tip decomposition for unidirectional
// layers), which yields two track-level rules:
//
//   - adjacent tips (mask A against mask B) need the diff-mask spacing,
//     which is Technology.LineEndSpacing;
//   - next-nearest tips (forced onto the same mask by the alternation)
//     need the larger SameMaskSpacing.
//
// Alternating a path of strips over two colors always succeeds, so LELE
// has no uncolorable topology beyond adjacent tips violating the
// diff-mask floor; the same-mask rule is what the router must actively
// route for.
type leleRules struct {
	lineEndRules
	sameMask int
}

func (r leleRules) Name() string { return EngineLELE }
func (r leleRules) Colors() int  { return 2 }

// ClearanceMargin covers the worst-case (same-mask) spacing so
// negotiation spreads strips far enough that the DRC pass rarely fires.
func (r leleRules) ClearanceMargin() int { return r.ext + (r.sameMask+1)/2 }

// AvoidMargin uses the same worst case: a rerouted net cannot know which
// mask parity it will land on.
func (r leleRules) AvoidMargin() int { return r.ext + r.sameMask }

func (r leleRules) SequentialClearance() int { return 2*r.ext + r.sameMask }

func (r leleRules) RuleReach() int { return r.ext + r.minLen + r.sameMask + 2 }

func (r leleRules) ConflictRadius() int     { return 0 }
func (r leleRules) ConflictWeight() float64 { return 0 }

// TrackViolations charges adjacent diff-net tips below the diff-mask
// spacing and next-nearest diff-net tips below the same-mask spacing.
func (r leleRules) TrackViolations(strips []Seg, vio func(net int)) {
	for i := 1; i < len(strips); i++ {
		a, b := strips[i-1], strips[i]
		if a.Net != b.Net && b.Lo-a.Hi-1 < r.spacing {
			vio(a.Net)
			vio(b.Net)
		}
	}
	for i := 2; i < len(strips); i++ {
		a, b := strips[i-2], strips[i]
		if a.Net != b.Net && b.Lo-a.Hi-1 < r.sameMask {
			vio(a.Net)
			vio(b.Net)
		}
	}
}

// CheckTrack reports diff-mask tip violations, then same-mask (parity)
// violations, then minimum-length violations, per track.
func (r leleRules) CheckTrack(layer, track int, strips []Seg, netName func(int) string,
	errf func(format string, args ...interface{})) {

	for i := 1; i < len(strips); i++ {
		a, b := strips[i-1], strips[i]
		if a.Net == b.Net {
			continue
		}
		gap := b.Lo - a.Hi - 1
		if gap < r.spacing {
			errf("lele diff-mask tip spacing violation on layer %d track %d between nets %s and %s (gap %d < %d)",
				layer, track, netName(a.Net), netName(b.Net), gap, r.spacing)
		}
	}
	for i := 2; i < len(strips); i++ {
		a, b := strips[i-2], strips[i]
		if a.Net == b.Net {
			continue
		}
		gap := b.Lo - a.Hi - 1
		if gap < r.sameMask {
			errf("lele same-mask tip spacing violation on layer %d track %d between nets %s and %s (gap %d < %d)",
				layer, track, netName(a.Net), netName(b.Net), gap, r.sameMask)
		}
	}
	for _, s := range strips {
		if s.Hi-s.Lo+1 < r.minLen {
			errf("minimum line length violation on layer %d track %d net %s (len %d < %d)",
				layer, track, netName(s.Net), s.Hi-s.Lo+1, r.minLen)
		}
	}
}

// AnalyzeMask alternates each track's extended strips over the two
// masks and counts rule violations under that decomposition: adjacent
// tips below the diff-mask floor are uncolorable (no 2-mask assignment
// can fix a tip-to-tip violation), same-mask pairs below SameMaskSpacing
// are conflicts.
func (r leleRules) AnalyzeMask(segs []Seg, w, h int) *MaskReport {
	rep := &MaskReport{
		Engine:   EngineLELE,
		Colors:   2,
		Segments: len(segs),
		ColorOf:  make([]int, len(segs)),
	}
	ext := extendAll(segs, w, h, r.lineEndRules)
	for _, track := range trackGroups(ext) {
		for i, idx := range track {
			rep.ColorOf[idx] = i % 2
			rep.Shapes++
			if i >= 1 {
				a, b := ext[track[i-1]], ext[idx]
				if a.Net != b.Net && b.Lo-a.Hi-1 < r.spacing {
					rep.Uncolorable++
					rep.ColorOf[idx] = -1
				}
			}
			if i >= 2 {
				a, b := ext[track[i-2]], ext[idx]
				if a.Net != b.Net && b.Lo-a.Hi-1 < r.sameMask {
					rep.Conflicts++
				}
			}
		}
	}
	return rep
}

// extendAll returns a copy of segs with every span extended by the
// engine's line-end rules.
func extendAll(segs []Seg, w, h int, base lineEndRules) []Seg {
	out := make([]Seg, len(segs))
	for i, s := range segs {
		limit := w
		if s.Layer == M3 {
			limit = h
		}
		s.Lo, s.Hi = base.ExtendSpan(s.Lo, s.Hi, limit)
		out[i] = s
	}
	return out
}

// trackGroups groups segment indices by (layer, track), each group
// sorted by (Lo, Net), groups in (layer, track) order — the deterministic
// per-track visiting order every engine analysis shares.
func trackGroups(segs []Seg) [][]int {
	type key struct{ layer, track int }
	byTrack := make(map[key][]int)
	for i, s := range segs {
		k := key{s.Layer, s.Track}
		byTrack[k] = append(byTrack[k], i)
	}
	keys := make([]key, 0, len(byTrack))
	for k := range byTrack {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].layer != keys[j].layer {
			return keys[i].layer < keys[j].layer
		}
		return keys[i].track < keys[j].track
	})
	out := make([][]int, 0, len(keys))
	for _, k := range keys {
		idxs := byTrack[k]
		sort.Slice(idxs, func(a, b int) bool {
			if segs[idxs[a]].Lo != segs[idxs[b]].Lo {
				return segs[idxs[a]].Lo < segs[idxs[b]].Lo
			}
			return segs[idxs[a]].Net < segs[idxs[b]].Net
		})
		out = append(out, idxs)
	}
	return out
}
