package invariant

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/pinaccess"
	"cpr/internal/synth"
)

// propertyTrials returns how many random specs each property test draws.
func propertyTrials(t *testing.T) int {
	if testing.Short() {
		return 4
	}
	return 16
}

// generate builds the design for a spec, failing the test on generator
// errors so a bad RandomSpec bound shows up as a failure, not a skip.
func generate(t *testing.T, spec synth.Spec) *design.Design {
	t.Helper()
	d, err := synth.Generate(spec)
	if err != nil {
		t.Fatalf("spec %+v: generate: %v", spec, err)
	}
	return d
}

// TestPropertyPinOptInvariants is the paper-theorem property test: for
// random circuits, the full pin access optimization pipeline must produce
// interval sets satisfying Theorem 1 and assignments satisfying (1b) and
// (1c) — on the sequential path and the parallel path alike.
func TestPropertyPinOptInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(20170618))
	for trial := 0; trial < propertyTrials(t); trial++ {
		spec := RandomSpec(rng, fmt.Sprintf("prop%02d", trial))
		for _, workers := range []int{1, 4} {
			d := generate(t, spec)
			_, seeds, err := core.OptimizePinAccess(d, core.Options{Workers: workers})
			if err != nil {
				t.Fatalf("trial %d workers=%d: %v", trial, workers, err)
			}
			if len(seeds) == 0 {
				t.Fatalf("trial %d workers=%d: no panels optimized", trial, workers)
			}
			for pi, seed := range seeds {
				if err := CheckIntervalSet(d, seed.Set); err != nil {
					t.Errorf("trial %d workers=%d panel %d: %v", trial, workers, pi, err)
				}
				if err := CheckAssignment(seed.Set, seed.Solution); err != nil {
					t.Errorf("trial %d workers=%d panel %d: %v", trial, workers, pi, err)
				}
			}
		}
	}
}

// TestPropertyGenerationIsWorkerInvariant asserts that interval generation
// over a whole random design yields deeply equal sets for sequential and
// parallel execution — same intervals, same IDs, same order.
func TestPropertyGenerationIsWorkerInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < propertyTrials(t); trial++ {
		spec := RandomSpec(rng, fmt.Sprintf("gen%02d", trial))
		d := generate(t, spec)
		idx := d.BuildTrackIndex()
		pins := make([]int, len(d.Pins))
		for i := range pins {
			pins[i] = i
		}
		seq, err := pinaccess.GenerateWithOptions(d, idx, pins, pinaccess.Options{Workers: 1})
		if err != nil {
			t.Fatalf("trial %d sequential: %v", trial, err)
		}
		par, err := pinaccess.GenerateWithOptions(d, idx, pins, pinaccess.Options{Workers: 4})
		if err != nil {
			t.Fatalf("trial %d parallel: %v", trial, err)
		}
		if !reflect.DeepEqual(seq.Intervals, par.Intervals) {
			t.Fatalf("trial %d: parallel interval list differs from sequential", trial)
		}
		if !reflect.DeepEqual(seq.ByPin, par.ByPin) {
			t.Fatalf("trial %d: parallel ByPin index differs from sequential", trial)
		}
		if err := CheckIntervalSet(d, par); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

// TestCheckersRejectCorruptedData makes sure the invariant checkers are
// not vacuous: corrupting a valid result must trip them.
func TestCheckersRejectCorruptedData(t *testing.T) {
	d := generate(t, synth.Spec{Name: "corrupt", Nets: 30, Width: 80, Height: 20, Seed: 9})
	_, seeds, err := core.OptimizePinAccess(d, core.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seed := seeds[0]
	if err := CheckIntervalSet(d, seed.Set); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
	if err := CheckAssignment(seed.Set, seed.Solution); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}

	// Drop a pin's intervals: Theorem 1 check must fire.
	pid := seed.Set.PinIDs[0]
	saved := seed.Set.ByPin[pid]
	seed.Set.ByPin[pid] = nil
	if err := CheckIntervalSet(d, seed.Set); err == nil {
		t.Error("CheckIntervalSet accepted a pin with no intervals")
	}
	seed.Set.ByPin[pid] = saved

	// Deselect a pin's assigned interval: the exactly-one check must fire.
	iv := seed.Solution.ByPin[pid]
	seed.Solution.Selected[iv] = false
	if err := CheckAssignment(seed.Set, seed.Solution); err == nil {
		t.Error("CheckAssignment accepted a pin with no selected interval")
	}
	seed.Solution.Selected[iv] = true

	// Select every interval: two same-track overlapping intervals (or a
	// doubly covered pin) must trip (1b) or (1c).
	all := make([]bool, len(seed.Solution.Selected))
	for i := range all {
		all[i] = true
	}
	corrupted := *seed.Solution
	corrupted.Selected = all
	if err := CheckAssignment(seed.Set, &corrupted); err == nil {
		t.Error("CheckAssignment accepted an everything-selected solution")
	}
}
