// Package metrics computes the evaluation metrics of the paper's §5 from
// routing results: routability ("Rout."), via count ("Via#"), wirelength
// ("WL" — grid wirelength of routed nets plus half-perimeter wirelength of
// unrouted nets), runtime, and initial congested grid counts.
package metrics

import (
	"fmt"

	"cpr/internal/design"
	"cpr/internal/grid"
	"cpr/internal/router"
)

// Routing summarizes one routing run in the paper's Table 2 vocabulary.
type Routing struct {
	Circuit   string
	TotalNets int
	// RoutedNets is the number of design-rule-clean connected nets.
	RoutedNets int
	// RoutPct is 100 * RoutedNets / TotalNets.
	RoutPct float64
	// Vias is the via count over routed nets.
	Vias int
	// WL is grid wirelength of routed nets plus HPWL of unrouted nets.
	WL int
	// CPUSeconds is wall-clock routing (plus optimization) time.
	CPUSeconds float64
	// OptimizeSeconds is the pin access optimization share of CPUSeconds
	// (zero for baseline modes without pin-opt).
	OptimizeSeconds float64
	// RouteSeconds covers the router's independent-routing, negotiation,
	// and congestion-resolution stages.
	RouteSeconds float64
	// VerifySeconds is the line-end extension / design rule check stage.
	VerifySeconds float64
	// InitialCongested is the congested grid count before rip-up and
	// reroute (Figure 7(b)).
	InitialCongested int
	// NegotiationIters counts rip-up rounds.
	NegotiationIters int
}

// FromResult assembles metrics from a router result.
func FromResult(d *design.Design, res *router.Result) Routing {
	m := Routing{
		Circuit:          d.Name,
		TotalNets:        len(d.Nets),
		RoutedNets:       res.RoutedNets,
		Vias:             res.Vias,
		WL:               res.Wirelength,
		CPUSeconds:       res.Elapsed.Seconds(),
		RouteSeconds:     (res.StageElapsed[0] + res.StageElapsed[1] + res.StageElapsed[2]).Seconds(),
		VerifySeconds:    res.StageElapsed[3].Seconds(),
		InitialCongested: res.InitialCongested,
		NegotiationIters: res.NegotiationIters,
	}
	if m.TotalNets > 0 {
		m.RoutPct = 100 * float64(m.RoutedNets) / float64(m.TotalNets)
	}
	for netID, nr := range res.Routes {
		if nr == nil || !nr.Routed {
			m.WL += d.HPWL(netID)
		}
	}
	return m
}

// ZeroTimes returns a copy with every wall-clock field zeroed — the
// canonical form determinism checks compare, since timings legitimately
// vary run to run while everything else must be byte-identical.
func (m Routing) ZeroTimes() Routing {
	m.CPUSeconds, m.OptimizeSeconds, m.RouteSeconds, m.VerifySeconds = 0, 0, 0, 0
	return m
}

// Row renders the metrics as a Table 2 style row. CPUSeconds keeps its
// historical meaning (total wall clock); the three phase columns break
// it down into pin access optimization, routing (independent +
// negotiation + congestion resolution), and verification (line-end DRC).
func (m Routing) Row() string {
	return fmt.Sprintf("%-6s %7d %8.2f %8d %9d %9.2f %8.2f %8.2f %8.2f",
		m.Circuit, m.TotalNets, m.RoutPct, m.Vias, m.WL, m.CPUSeconds,
		m.OptimizeSeconds, m.RouteSeconds, m.VerifySeconds)
}

// Header returns the column header matching Row.
func Header() string {
	return fmt.Sprintf("%-6s %7s %8s %8s %9s %9s %8s %8s %8s",
		"ckt", "nets", "Rout.%", "Via#", "WL", "cpu(s)", "opt(s)", "rt(s)", "vrfy(s)")
}

// Ratio holds per-metric ratios between two runs (paper's "Ratio" row and
// Figure 7(a) LR/ILP comparison).
type Ratio struct {
	Rout float64
	Vias float64
	WL   float64
	CPU  float64
}

// RatioOf computes a/b per metric. Zero denominators yield zero.
func RatioOf(a, b Routing) Ratio {
	div := func(x, y float64) float64 {
		if y == 0 {
			return 0
		}
		return x / y
	}
	return Ratio{
		Rout: div(a.RoutPct, b.RoutPct),
		Vias: div(float64(a.Vias), float64(b.Vias)),
		WL:   div(float64(a.WL), float64(b.WL)),
		CPU:  div(a.CPUSeconds, b.CPUSeconds),
	}
}

// Average aggregates metric rows by arithmetic mean (the paper's "Avg."
// row).
func Average(rows []Routing) Routing {
	if len(rows) == 0 {
		return Routing{Circuit: "Avg."}
	}
	avg := Routing{Circuit: "Avg."}
	for _, r := range rows {
		avg.TotalNets += r.TotalNets
		avg.RoutedNets += r.RoutedNets
		avg.RoutPct += r.RoutPct
		avg.Vias += r.Vias
		avg.WL += r.WL
		avg.CPUSeconds += r.CPUSeconds
		avg.OptimizeSeconds += r.OptimizeSeconds
		avg.RouteSeconds += r.RouteSeconds
		avg.VerifySeconds += r.VerifySeconds
		avg.InitialCongested += r.InitialCongested
	}
	n := float64(len(rows))
	avg.TotalNets = int(float64(avg.TotalNets)/n + 0.5)
	avg.RoutedNets = int(float64(avg.RoutedNets)/n + 0.5)
	avg.RoutPct /= n
	avg.Vias = int(float64(avg.Vias)/n + 0.5)
	avg.WL = int(float64(avg.WL)/n + 0.5)
	avg.CPUSeconds /= n
	avg.OptimizeSeconds /= n
	avg.RouteSeconds /= n
	avg.VerifySeconds /= n
	avg.InitialCongested = int(float64(avg.InitialCongested)/n + 0.5)
	return avg
}

// CongestedGrids re-counts the congested grid metric directly from a grid
// (used in tests to cross-check router bookkeeping).
func CongestedGrids(g *grid.Graph) int { return g.CongestedCount() }
