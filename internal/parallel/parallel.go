// Package parallel is the deterministic fork-join worker pool behind the
// track-sharded optimization pipeline.
//
// Every stage of concurrent pin access optimization is embarrassingly
// parallel by construction — interval generation and conflict detection
// are independent per routing track, panels are independent assignment
// subproblems, and the LR subgradient update decomposes per conflict set —
// so the pool only has to solve the boring half of the problem: run N
// index-addressed jobs on up to W goroutines and let the caller merge the
// per-slot results in a fixed order.
//
// The determinism contract every user of this package must keep:
//
//   - job i writes only to slot i of a caller-owned result slice (no
//     shared mutable state inside jobs);
//   - the caller reduces slots in index order after Join;
//   - any floating point accumulation happens in the ordered reduce, not
//     inside the jobs.
//
// Under that contract the output is byte-identical for every worker count
// and any goroutine schedule, and workers == 1 executes the jobs inline on
// the calling goroutine in index order — the bit-for-bit sequential path.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve maps an Options-style worker count to a concrete one: values
// below 1 select runtime.GOMAXPROCS(0), everything else passes through.
// The pool never runs more goroutines than jobs, so oversubscription only
// costs idle goroutine startup, never correctness.
func Resolve(n int) int {
	if n < 1 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(i) for every i in [0, n) on at most workers concurrent
// goroutines. Jobs are handed out dynamically (an atomic counter), so
// uneven job sizes balance across workers; determinism must come from the
// per-slot write contract above, never from scheduling. workers <= 1 (or
// n <= 1) runs every job inline in index order.
func ForEach(workers, n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachChunk splits [0, n) into contiguous chunks and runs fn(lo, hi)
// (hi exclusive) for each, at most workers at a time. Use it for cheap
// per-element work (filling a gains vector, zeroing flags) where a
// goroutine per element would drown the work in scheduling overhead.
// Chunk boundaries depend only on n and workers, so per-chunk results are
// as deterministic as per-element ones.
func ForEachChunk(workers, n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	workers = min(workers, n)
	if workers <= 1 {
		fn(0, n)
		return
	}
	// 4 chunks per worker keeps the tail balanced without flooding the
	// scheduler.
	chunks := workers * 4
	if chunks > n {
		chunks = workers
	}
	size := (n + chunks - 1) / chunks
	count := (n + size - 1) / size
	ForEach(workers, count, func(c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		fn(lo, hi)
	})
}

// Threshold is the job count below which a parallel stage should stay on
// the sequential path: forking goroutines for a handful of tracks or
// conflict sets costs more than it saves. Callers compare their own work
// sizes against it so the cutover is deterministic (a function of problem
// size, never of timing).
const Threshold = 64

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
