package metrics

import (
	"strings"
	"testing"
	"time"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/router"
	"cpr/internal/tech"
)

func routedDesign(t *testing.T) (*design.Design, *grid.Graph, *router.Result) {
	t.Helper()
	d := design.New("m", 20, 10, tech.Default())
	n0 := d.AddNet("a")
	n1 := d.AddNet("b")
	d.AddPin("a0", n0, geom.MakeRect(3, 2, 3, 2))
	d.AddPin("a1", n0, geom.MakeRect(13, 2, 13, 2))
	d.AddPin("b0", n1, geom.MakeRect(3, 7, 3, 7))
	d.AddPin("b1", n1, geom.MakeRect(13, 7, 13, 7))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	res := router.New(d, g, router.Config{}).Run()
	return d, g, res
}

func TestFromResultBasics(t *testing.T) {
	d, _, res := routedDesign(t)
	m := FromResult(d, res)
	if m.TotalNets != 2 || m.RoutedNets != 2 {
		t.Fatalf("nets %d/%d, want 2/2", m.RoutedNets, m.TotalNets)
	}
	if m.RoutPct != 100 {
		t.Errorf("RoutPct = %g, want 100", m.RoutPct)
	}
	if m.Vias != res.Vias || m.WL != res.Wirelength {
		t.Errorf("vias/WL mismatch: %d/%d vs %d/%d", m.Vias, m.WL, res.Vias, res.Wirelength)
	}
}

func TestUnroutedNetsAddHPWL(t *testing.T) {
	d, _, res := routedDesign(t)
	// Force net 1 unrouted and recompute.
	res.Routes[1].Routed = false
	res.RoutedNets = 1
	m := FromResult(d, res)
	if m.RoutedNets != 1 || m.RoutPct != 50 {
		t.Errorf("RoutPct = %g, want 50", m.RoutPct)
	}
	wantExtra := d.HPWL(1)
	if m.WL != res.Wirelength+wantExtra {
		t.Errorf("WL = %d, want %d + %d", m.WL, res.Wirelength, wantExtra)
	}
}

func TestRowAndHeaderAlign(t *testing.T) {
	d, _, res := routedDesign(t)
	m := FromResult(d, res)
	row := m.Row()
	head := Header()
	if len(strings.Fields(row)) != 9 || len(strings.Fields(head)) != 9 {
		t.Errorf("row/header field counts differ:\n%s\n%s", head, row)
	}
}

func TestPhaseSplitFromStageElapsed(t *testing.T) {
	d, _, res := routedDesign(t)
	res.StageElapsed = [4]time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond,
		300 * time.Millisecond, 400 * time.Millisecond,
	}
	m := FromResult(d, res)
	if m.RouteSeconds != 0.6 {
		t.Errorf("RouteSeconds = %g, want 0.6", m.RouteSeconds)
	}
	if m.VerifySeconds != 0.4 {
		t.Errorf("VerifySeconds = %g, want 0.4", m.VerifySeconds)
	}
	// CPUSeconds keeps its historical meaning: total router wall clock,
	// independent of the phase breakdown.
	if m.CPUSeconds != res.Elapsed.Seconds() {
		t.Errorf("CPUSeconds = %g, want %g", m.CPUSeconds, res.Elapsed.Seconds())
	}
}

func TestRatioOf(t *testing.T) {
	a := Routing{RoutPct: 96, Vias: 110, WL: 1000, CPUSeconds: 2}
	b := Routing{RoutPct: 48, Vias: 100, WL: 500, CPUSeconds: 4}
	r := RatioOf(a, b)
	if r.Rout != 2 || r.Vias != 1.1 || r.WL != 2 || r.CPU != 0.5 {
		t.Errorf("ratio = %+v", r)
	}
	zero := RatioOf(a, Routing{})
	if zero.Rout != 0 || zero.Vias != 0 {
		t.Error("zero denominators must give zero ratios")
	}
}

func TestAverage(t *testing.T) {
	rows := []Routing{
		{TotalNets: 100, RoutedNets: 90, RoutPct: 90, Vias: 200, WL: 1000, CPUSeconds: 1},
		{TotalNets: 200, RoutedNets: 200, RoutPct: 100, Vias: 400, WL: 3000, CPUSeconds: 3},
	}
	avg := Average(rows)
	if avg.RoutPct != 95 || avg.Vias != 300 || avg.WL != 2000 || avg.CPUSeconds != 2 {
		t.Errorf("avg = %+v", avg)
	}
	empty := Average(nil)
	if empty.Circuit != "Avg." || empty.Vias != 0 {
		t.Errorf("empty avg = %+v", empty)
	}
}

func TestCPUSecondsFromElapsed(t *testing.T) {
	d, _, res := routedDesign(t)
	res.Elapsed = 1500 * time.Millisecond
	m := FromResult(d, res)
	if m.CPUSeconds != 1.5 {
		t.Errorf("CPUSeconds = %g, want 1.5", m.CPUSeconds)
	}
}
