package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"cpr/client"
	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/jobs"
	"cpr/internal/telemetry"
)

// promLine matches one Prometheus text-exposition sample line:
// name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? [-+0-9.eE]+(Inf)?$`)

// newMetricsServer is newTestServer with a metrics registry and job
// tracing wired in, exposing the raw base URL for header checks.
func newMetricsServer(t *testing.T, cfg jobs.Config) (*jobs.Manager, *client.Client, string) {
	t.Helper()
	if cfg.Metrics == nil {
		cfg.Metrics = telemetry.NewRegistry()
	}
	mgr := jobs.New(cfg, jobs.NewResultCache(256, 0, 0))
	ts := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(ts.Close)
	return mgr, client.New(ts.URL), ts.URL
}

// TestMetricsEndpointPrometheusFormat scrapes /metrics after one real
// pipeline run and checks the exposition is well-formed and carries the
// daemon-level and pipeline-level series the dashboards depend on.
func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	_, c, baseURL := newMetricsServer(t, jobs.Config{MaxConcurrent: 2, TraceJobs: true})
	ctx := context.Background()

	if _, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// A second identical submission exercises the design-level cache so
	// the hit counter is nonzero.
	if _, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true}); err != nil {
		t.Fatalf("resubmit: %v", err)
	}

	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	text := string(body)

	for _, want := range []string{
		"# TYPE cprd_job_run_seconds histogram",
		"cprd_job_run_seconds_count 1",
		"cprd_job_queue_wait_seconds_count 1",
		`cprd_cache_hits_total{level="design"} 1`,
		`cprd_cache_misses_total{level="design"} 1`,
		`cprd_cache_hits_total{level="panel"}`,
		"cprd_queue_depth 0",
		`cprd_jobs_by_state{state="done"} 2`,
		// Pipeline metrics flow into the same registry via the job context.
		`cpr_runs_total{mode="cpr"} 1`,
		`cpr_panels_total{source="computed"}`,
		`cpr_stage_seconds_count{stage="pinopt"} 1`,
		`cpr_stage_seconds_count{stage="route"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("malformed exposition line: %q", line)
		}
	}
}

// TestJobTraceEndpoint exercises GET /v1/jobs/{id}/trace: executed jobs
// serve a parseable trace in both encodings, cache-served jobs and
// unknown IDs answer 404, and bad formats answer 400.
func TestJobTraceEndpoint(t *testing.T) {
	_, c, _ := newMetricsServer(t, jobs.Config{MaxConcurrent: 2, TraceJobs: true})
	ctx := context.Background()

	job, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}

	chrome, err := c.Trace(ctx, job.ID, client.TraceChrome)
	if err != nil {
		t.Fatalf("Trace chrome: %v", err)
	}
	var ct struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &ct); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range ct.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		names[ev.Name] = true
	}
	for _, want := range []string{"run", "pinopt", "panel", "route"} {
		if !names[want] {
			t.Errorf("chrome trace missing %q span", want)
		}
	}

	raw, err := c.Trace(ctx, job.ID, client.TraceJSON)
	if err != nil {
		t.Fatalf("Trace json: %v", err)
	}
	var rt struct {
		Format string `json:"format"`
		Spans  []struct {
			Name string `json:"name"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &rt); err != nil {
		t.Fatalf("raw trace not JSON: %v", err)
	}
	if rt.Format != "cpr-trace-v1" || len(rt.Spans) == 0 {
		t.Fatalf("raw trace = format %q, %d spans; want cpr-trace-v1 with spans", rt.Format, len(rt.Spans))
	}

	cached, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("cached submit: %v", err)
	}
	if !cached.Cached {
		t.Fatalf("second submission not cache-served: %+v", cached)
	}
	var se *client.StatusError
	if _, err := c.Trace(ctx, cached.ID, client.TraceChrome); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Errorf("trace of cached job: err = %v, want 404", err)
	}
	if _, err := c.Trace(ctx, "nope", client.TraceChrome); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Errorf("trace of unknown job: err = %v, want 404", err)
	}
	if _, err := c.Trace(ctx, job.ID, client.TraceFormat("xml")); !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Errorf("trace with bad format: err = %v, want 400", err)
	}
}

// TestTraceDisabledAnswers404 covers the TraceJobs=false daemon
// configuration: executed jobs exist but carry no trace.
func TestTraceDisabledAnswers404(t *testing.T) {
	_, c, _ := newMetricsServer(t, jobs.Config{MaxConcurrent: 2})
	ctx := context.Background()

	job, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	var se *client.StatusError
	if _, err := c.Trace(ctx, job.ID, client.TraceChrome); !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Errorf("trace with tracing disabled: err = %v, want 404", err)
	}
}

// TestRejectedSubmissionCounters drives both rejection paths and checks
// they surface in /v1/stats and /metrics.
func TestRejectedSubmissionCounters(t *testing.T) {
	release := make(chan struct{})
	mgr, c, _ := newMetricsServer(t, jobs.Config{
		MaxConcurrent: 1,
		QueueCap:      1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			<-release
			return &core.RunResult{}, nil
		},
	})
	ctx := context.Background()

	specN := func(seed int64) client.Spec {
		s := smallSpec
		s.Seed = seed
		return s
	}
	first, err := c.SubmitSpec(ctx, specN(201), nil)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := c.Job(ctx, first.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if j.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.SubmitSpec(ctx, specN(202), nil); err != nil {
		t.Fatalf("second (fills queue): %v", err)
	}
	var se *client.StatusError
	if _, err := c.SubmitSpec(ctx, specN(203), nil); !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("third submit: err = %v, want 429", err)
	}

	close(release)
	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	if _, err := c.SubmitSpec(ctx, specN(204), nil); !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: err = %v, want 503", err)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.RejectedQueueFull != 1 || st.RejectedDraining != 1 {
		t.Errorf("stats rejections = full %d draining %d, want 1 and 1",
			st.RejectedQueueFull, st.RejectedDraining)
	}
	body, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		`cprd_jobs_rejected_total{reason="queue_full"} 1`,
		`cprd_jobs_rejected_total{reason="draining"} 1`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
