package core

import (
	"testing"

	"cpr/internal/design"
	"cpr/internal/synth"
)

func miniCircuit(t testing.TB) *design.Design {
	t.Helper()
	d, err := synth.Generate(synth.Spec{Name: "mini", Nets: 60, Width: 80, Height: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestRunCPR(t *testing.T) {
	d := miniCircuit(t)
	res, err := Run(d, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	if res.PinOpt == nil {
		t.Fatal("CPR run must produce a pin optimization report")
	}
	if res.PinOpt.TotalPins != len(d.Pins) {
		t.Errorf("optimized %d pins, want %d", res.PinOpt.TotalPins, len(d.Pins))
	}
	if res.PinOpt.TotalIntervals < res.PinOpt.TotalPins {
		t.Error("fewer intervals than pins: every pin has at least its minimum interval")
	}
	if res.Metrics.RoutPct < 60 {
		t.Errorf("CPR routability %.1f%% suspiciously low on a small circuit", res.Metrics.RoutPct)
	}
	for _, pr := range res.PinOpt.Panels {
		if pr.Violations != 0 {
			t.Errorf("panel %d assignment has %d violations", pr.Panel, pr.Violations)
		}
	}
}

func TestRunNoPinOpt(t *testing.T) {
	d := miniCircuit(t)
	res, err := Run(d, Options{Mode: ModeNoPinOpt})
	if err != nil {
		t.Fatal(err)
	}
	if res.PinOpt != nil {
		t.Error("baseline must not report pin optimization")
	}
	if res.Metrics.TotalNets != 60 {
		t.Errorf("TotalNets = %d", res.Metrics.TotalNets)
	}
}

func TestRunSequential(t *testing.T) {
	d := miniCircuit(t)
	res, err := Run(d, Options{Mode: ModeSequential})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.RoutedNets == 0 {
		t.Error("sequential baseline routed nothing")
	}
}

func TestCPRReducesInitialCongestion(t *testing.T) {
	// The headline claim behind Figure 7(b): pin access optimization
	// reduces initial congested grids versus no optimization.
	d := miniCircuit(t)
	cpr, err := Run(d, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	d2 := miniCircuit(t)
	base, err := Run(d2, Options{Mode: ModeNoPinOpt})
	if err != nil {
		t.Fatal(err)
	}
	if cpr.Metrics.InitialCongested > base.Metrics.InitialCongested {
		t.Errorf("CPR initial congestion %d > baseline %d; expected reduction",
			cpr.Metrics.InitialCongested, base.Metrics.InitialCongested)
	}
}

func TestRunILPOptimizer(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP optimizer on full circuit is slow")
	}
	d, err := synth.Generate(synth.Spec{Name: "tiny", Nets: 14, Width: 50, Height: 20, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(d, Options{Mode: ModeCPR, Optimizer: OptILP})
	if err != nil {
		t.Fatal(err)
	}
	if res.PinOpt == nil || res.PinOpt.TotalPins == 0 {
		t.Fatal("ILP run produced no pin optimization")
	}
}

func TestILPObjectiveAtLeastLR(t *testing.T) {
	if testing.Short() {
		t.Skip("ILP comparison is slow")
	}
	d, err := synth.Generate(synth.Spec{Name: "cmp", Nets: 14, Width: 50, Height: 20, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	lrRep, _, err := OptimizePinAccess(d, Options{Optimizer: OptLR})
	if err != nil {
		t.Fatal(err)
	}
	ilpRep, _, err := OptimizePinAccess(d, Options{Optimizer: OptILP})
	if err != nil {
		t.Fatal(err)
	}
	if ilpRep.Objective < lrRep.Objective-1e-6 {
		t.Errorf("ILP objective %g below LR %g", ilpRep.Objective, lrRep.Objective)
	}
}

func TestRunRejectsInvalidDesign(t *testing.T) {
	d := design.New("bad", 0, 0, nil)
	if _, err := Run(d, Options{}); err == nil {
		t.Error("want error for invalid design")
	}
}

func TestModeAndOptimizerStrings(t *testing.T) {
	if ModeCPR.String() != "cpr" || ModeNoPinOpt.String() != "no-pinopt" ||
		ModeSequential.String() != "sequential" {
		t.Error("mode strings wrong")
	}
	if OptLR.String() != "lr" || OptILP.String() != "ilp" {
		t.Error("optimizer strings wrong")
	}
}

func TestCPUIncludesPinOptTime(t *testing.T) {
	d := miniCircuit(t)
	res, err := Run(d, Options{Mode: ModeCPR})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.CPUSeconds < res.Router.Elapsed.Seconds() {
		t.Error("CPU time must include pin optimization time")
	}
}

func TestPanelSeedsCoverEveryPinExactlyOnce(t *testing.T) {
	d := miniCircuit(t)
	_, seeds, err := OptimizePinAccess(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for _, s := range seeds {
		for pid := range s.Solution.ByPin {
			seen[pid]++
		}
	}
	for i := range d.Pins {
		if seen[i] != 1 {
			t.Errorf("pin %d assigned %d times, want 1", i, seen[i])
		}
	}
}

func TestPanelSeedsAreConflictFreeAcrossPanels(t *testing.T) {
	// Interval reservations from different panels must never overlap on
	// the grid (different panels use disjoint track ranges).
	d := miniCircuit(t)
	_, seeds, err := OptimizePinAccess(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	type cell struct{ x, y int }
	used := make(map[cell]int)
	for _, s := range seeds {
		rendered := map[int]bool{}
		for _, ivID := range s.Solution.ByPin {
			if rendered[ivID] {
				continue
			}
			rendered[ivID] = true
			iv := s.Set.Intervals[ivID]
			for x := iv.Span.Lo; x <= iv.Span.Hi; x++ {
				c := cell{x, iv.Track}
				if prev, ok := used[c]; ok && prev != iv.NetID {
					t.Fatalf("cell %v reserved by nets %d and %d", c, prev, iv.NetID)
				}
				used[c] = iv.NetID
			}
		}
	}
}

func TestParallelPinOptMatchesSequential(t *testing.T) {
	d := miniCircuit(t)
	seq, seqSeeds, err := OptimizePinAccess(d, Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, parSeeds, err := OptimizePinAccess(d, Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Objective != par.Objective || seq.TotalIntervals != par.TotalIntervals {
		t.Errorf("parallel result differs: obj %g vs %g", seq.Objective, par.Objective)
	}
	if len(seqSeeds) != len(parSeeds) {
		t.Fatalf("seed count differs")
	}
	for i := range seqSeeds {
		a, b := seqSeeds[i].Solution.ByPin, parSeeds[i].Solution.ByPin
		if len(a) != len(b) {
			t.Fatalf("panel %d assignment size differs", i)
		}
		for pid, iv := range a {
			if b[pid] != iv {
				t.Fatalf("panel %d pin %d assigned %d vs %d", i, pid, iv, b[pid])
			}
		}
	}
}
