package experiments

import (
	"fmt"
	"io"

	"cpr/internal/core"
	"cpr/internal/metrics"
	"cpr/internal/synth"
)

// Evaluation runs every circuit through all three routing flows exactly
// once and derives both Table 2 and Figure 7(b) from the same runs —
// the economical way to regenerate the full §5 evaluation.
func Evaluation(w io.Writer, cfg Config) error {
	cfg = cfg.withDefaults()
	modes := []struct {
		label string
		mode  core.Mode
	}{
		{"Sequential pin access planning [12]", core.ModeSequential},
		{"Routing w/o pin access optimization [21]", core.ModeNoPinOpt},
		{"CPR", core.ModeCPR},
	}
	rows := make(map[core.Mode][]metrics.Routing)
	for _, name := range cfg.Circuits {
		spec, err := synth.SpecByName(name)
		if err != nil {
			return err
		}
		for _, m := range modes {
			fresh, err := synth.Generate(spec)
			if err != nil {
				return err
			}
			res, err := core.Run(fresh, core.Options{Mode: m.mode, Workers: cfg.Workers})
			if err != nil {
				return fmt.Errorf("evaluation %s/%s: %w", name, m.label, err)
			}
			rows[m.mode] = append(rows[m.mode], res.Metrics)
			fmt.Fprintf(w, "# done %s %s: %s\n", name, m.mode, res.Metrics.Row())
		}
	}

	fmt.Fprintln(w, "\n=== Table 2 ===")
	for _, m := range modes {
		fmt.Fprintf(w, "--- %s ---\n", m.label)
		fmt.Fprintln(w, metrics.Header())
		for _, r := range rows[m.mode] {
			fmt.Fprintln(w, r.Row())
		}
		fmt.Fprintln(w, metrics.Average(rows[m.mode]).Row())
	}
	cprAvg := metrics.Average(rows[core.ModeCPR])
	fmt.Fprintln(w, "--- Ratios vs CPR (Rout, Via#, WL, cpu) ---")
	for _, m := range modes {
		r := metrics.RatioOf(metrics.Average(rows[m.mode]), cprAvg)
		fmt.Fprintf(w, "%-42s %.3f %.3f %.3f %.2f\n", m.label, r.Rout, r.Vias, r.WL, r.CPU)
	}

	fmt.Fprintln(w, "\n=== Figure 7(b): initial congested grids ===")
	fmt.Fprintf(w, "%-8s %14s %14s %10s\n", "ckt", "w/ pin opt", "w/o pin opt", "reduction")
	for i, name := range cfg.Circuits {
		with := rows[core.ModeCPR][i].InitialCongested
		without := rows[core.ModeNoPinOpt][i].InitialCongested
		red := 0.0
		if with > 0 {
			red = float64(without) / float64(with)
		}
		fmt.Fprintf(w, "%-8s %14d %14d %9.2fx\n", name, with, without, red)
	}
	return nil
}
