package cache

import "context"

// Level is one cache level as the daemon consumes it. *Cache[V]
// implements it purely in memory; Backed[V] adds a content-addressed
// block store (and, through it, peer daemons) behind the same surface,
// so the job manager cannot tell a local hit from a cluster one.
type Level[V any] interface {
	// Get looks up a key, promoting it on hit; the hit/miss counters are
	// updated either way.
	Get(key string) (V, bool)
	// Put stores a value under a non-empty key.
	Put(key string, val V)
	// Contains reports presence without touching counters or recency —
	// and, on a backed level, without asking peers.
	Contains(key string) bool
	// Len returns the entry count of the level's memory tier.
	Len() int
	// Stats snapshots the level's counters.
	Stats() Stats
}

// BlockSource is the slice of the exchange service a backed level needs:
// resolve a block (locally then from peers), store one, and check local
// presence. Implemented by *exchange.Service; kept as an interface here
// so the cache package depends on nothing above it.
type BlockSource interface {
	GetBlock(ctx context.Context, key string) ([]byte, error)
	Put(key string, data []byte) error
	Has(key string) (bool, error)
}

// Backed is a cache level with a typed in-memory LRU in front of a
// content-addressed block source. Get falls through memory to the
// source (which may fetch from peers and write the block through
// locally); decoded values are re-cached in memory. Put writes both
// tiers, making the value durable (disk-backed stores) and servable to
// peers.
//
// Keyless values are structurally excluded: Put drops empty keys, and
// the encoder may reject a value whose own key field is empty (eco-fast
// artifacts), in which case the value stays memory-only — never stored,
// never served.
type Backed[V any] struct {
	mem *Cache[V]
	src BlockSource
	enc func(V) ([]byte, error)
	dec func([]byte) (V, error)
	// keyOf extracts the content key a decoded value claims to be for;
	// nil skips the check (values that don't carry their key).
	keyOf func(V) string

	// storeHits counts Gets the memory tier missed but the block source
	// resolved (locally or from a peer); guarded by mem.mu.
	storeHits int64
}

// NewBacked builds a backed level. capacity bounds the memory tier
// (<= 0 selects the default); enc/dec translate values to and from
// block bytes; keyOf may be nil (see Backed).
func NewBacked[V any](capacity int, src BlockSource, enc func(V) ([]byte, error),
	dec func([]byte) (V, error), keyOf func(V) string) *Backed[V] {
	return &Backed[V]{
		mem:   New[V](capacity),
		src:   src,
		enc:   enc,
		dec:   dec,
		keyOf: keyOf,
	}
}

// Get resolves key through memory, then the block source. A block that
// fails to decode — wrong codec version from a mixed-version peer, or a
// key mismatch — is treated as a miss: the caller recomputes, which is
// always correct.
func (b *Backed[V]) Get(key string) (V, bool) {
	return b.GetCtx(context.Background(), key)
}

// GetCtx is Get with a caller context, so a lookup that falls through to
// the block source carries the job's trace and event plumbing (peer
// fetch spans, block_fetch events) and honors cancellation. The plain
// Get remains for interface compatibility.
func (b *Backed[V]) GetCtx(ctx context.Context, key string) (V, bool) {
	if v, ok := b.mem.Get(key); ok {
		return v, true
	}
	var zero V
	if key == "" {
		return zero, false
	}
	data, err := b.src.GetBlock(ctx, key)
	if err != nil {
		return zero, false
	}
	v, err := b.dec(data)
	if err != nil {
		return zero, false
	}
	if b.keyOf != nil && b.keyOf(v) != key {
		// A peer served bytes whose decoded artifact claims a different
		// content address; do not splice it.
		return zero, false
	}
	b.mem.Put(key, v)
	b.mem.mu.Lock()
	b.storeHits++
	b.mem.mu.Unlock()
	return v, true
}

// Put stores val in memory and, when it encodes, as a block. Empty keys
// and values the encoder rejects (keyless artifacts) stay memory-only.
func (b *Backed[V]) Put(key string, val V) {
	if key == "" {
		return
	}
	b.mem.Put(key, val)
	data, err := b.enc(val)
	if err != nil {
		return
	}
	_ = b.src.Put(key, data)
}

// Contains reports presence in memory or the local block store. It
// never asks peers and never touches counters, matching the *Cache
// contract (the job manager probes with Contains before re-warming).
func (b *Backed[V]) Contains(key string) bool {
	if b.mem.Contains(key) {
		return true
	}
	ok, err := b.src.Has(key)
	return err == nil && ok
}

// Len returns the memory tier's entry count.
func (b *Backed[V]) Len() int { return b.mem.Len() }

// Stats snapshots the level. The memory tier counts every Get as a hit
// or a miss; Gets it missed but the block source resolved are
// reclassified as hits, so Hits+Misses still equals total lookups and
// HitRate reflects what callers observed.
func (b *Backed[V]) Stats() Stats {
	b.mem.mu.Lock()
	sh := b.storeHits
	b.mem.mu.Unlock()
	s := b.mem.Stats()
	s.Hits += sh
	s.Misses -= sh
	return s
}
