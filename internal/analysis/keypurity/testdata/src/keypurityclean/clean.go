// Package keypurityclean holds a fully covered contract: the encoder
// fingerprints every field its entries read, and the one clock read is
// suppressed at the leaf with a documented reason — no findings.
package keypurityclean

import (
	"strconv"
	"time"
)

// Params configures the evaluation.
//
//keypurity:options
type Params struct {
	Seed  int
	Limit int
}

// Key fingerprints both fields.
//
//keypurity:encoder local
func Key(p *Params) string {
	return strconv.Itoa(p.Seed) + ":" + strconv.Itoa(p.Limit)
}

// Eval reads only covered fields.
//
//keypurity:entry local
func Eval(p *Params) int {
	return p.Seed + p.Limit
}

// Traced reads the clock for a latency metric only; the leaf-site
// suppression keeps it out of the summary, so the entry stays pure.
//
//keypurity:entry local
func Traced(p *Params) int {
	//cprlint:keypurity latency metric only; never part of the cached result
	start := time.Now()
	_ = start
	return p.Seed
}
