package grid

import (
	"testing"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/tech"
)

func testDesign(t *testing.T) *design.Design {
	t.Helper()
	d := design.New("g", 12, 10, tech.Default())
	na := d.AddNet("a")
	nb := d.AddNet("b")
	d.AddPin("a1", na, geom.MakeRect(2, 2, 3, 2))
	d.AddPin("b1", nb, geom.MakeRect(7, 2, 7, 2))
	d.AddBlockage(tech.M2, geom.MakeRect(10, 5, 11, 6))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestIDCoordsRoundTrip(t *testing.T) {
	g := New(testDesign(t))
	for z := 0; z < tech.NumLayers; z++ {
		for y := 0; y < g.H; y += 3 {
			for x := 0; x < g.W; x += 3 {
				gx, gy, gz := g.Coords(g.ID(x, y, z))
				if gx != x || gy != y || gz != z {
					t.Fatalf("round trip (%d,%d,%d) -> (%d,%d,%d)", x, y, z, gx, gy, gz)
				}
			}
		}
	}
	if g.NumNodes() != 12*10*3 {
		t.Errorf("NumNodes = %d, want %d", g.NumNodes(), 12*10*3)
	}
}

func TestBlockageRasterization(t *testing.T) {
	g := New(testDesign(t))
	if !g.Blocked(g.ID(10, 5, tech.M2)) || !g.Blocked(g.ID(11, 6, tech.M2)) {
		t.Error("blockage cells not marked")
	}
	if g.Blocked(g.ID(9, 5, tech.M2)) || g.Blocked(g.ID(10, 5, tech.M3)) {
		t.Error("non-blockage cells marked")
	}
}

func TestPinOwnership(t *testing.T) {
	g := New(testDesign(t))
	if g.Owner(g.ID(2, 2, tech.M1)) != 0 || g.Owner(g.ID(3, 2, tech.M1)) != 0 {
		t.Error("pin a1 cells not owned by net 0")
	}
	if g.Owner(g.ID(7, 2, tech.M1)) != 1 {
		t.Error("pin b1 cell not owned by net 1")
	}
	if g.Owner(g.ID(5, 5, tech.M2)) != -1 {
		t.Error("free cell has an owner")
	}
}

func TestEnterable(t *testing.T) {
	g := New(testDesign(t))
	// M1: only own pins.
	if !g.Enterable(g.ID(2, 2, tech.M1), 0) {
		t.Error("net 0 must enter its own pin")
	}
	if g.Enterable(g.ID(2, 2, tech.M1), 1) {
		t.Error("net 1 must not enter net 0's pin")
	}
	if g.Enterable(g.ID(5, 5, tech.M1), 0) {
		t.Error("free M1 cells are not routable")
	}
	// M2: free cells open to all, owned cells only to the owner.
	if !g.Enterable(g.ID(5, 5, tech.M2), 0) || !g.Enterable(g.ID(5, 5, tech.M2), 1) {
		t.Error("free M2 cell should be enterable by all nets")
	}
	g.SetOwner(g.ID(5, 5, tech.M2), 1)
	if g.Enterable(g.ID(5, 5, tech.M2), 0) {
		t.Error("owned M2 cell must block other nets")
	}
	if !g.Enterable(g.ID(5, 5, tech.M2), 1) {
		t.Error("owned M2 cell must admit its owner")
	}
	// Blocked cells admit nobody.
	if g.Enterable(g.ID(10, 5, tech.M2), 0) {
		t.Error("blocked cell must not be enterable")
	}
}

func TestSetOwnerConflictPanics(t *testing.T) {
	g := New(testDesign(t))
	g.SetOwner(g.ID(5, 5, tech.M2), 0)
	g.SetOwner(g.ID(5, 5, tech.M2), 0) // same net: fine
	defer func() {
		if recover() == nil {
			t.Error("expected panic on cross-net ownership")
		}
	}()
	g.SetOwner(g.ID(5, 5, tech.M2), 1)
}

func TestOccupancyAndCongestion(t *testing.T) {
	g := New(testDesign(t))
	n := g.ID(5, 5, tech.M2)
	if g.Overused(n) {
		t.Error("fresh node overused")
	}
	g.Occupy(n)
	if g.Overused(n) || g.CongestedCount() != 0 {
		t.Error("single occupancy must not be congestion")
	}
	g.Occupy(n)
	if !g.Overused(n) || g.CongestedCount() != 1 {
		t.Error("double occupancy must be congestion")
	}
	g.Release(n)
	if g.Overused(n) {
		t.Error("release must clear overuse")
	}
	g.Release(n)
	g.Release(n) // extra release is a no-op
	if g.Occupancy(n) != 0 {
		t.Errorf("occupancy = %d, want 0", g.Occupancy(n))
	}
}

func TestHistory(t *testing.T) {
	g := New(testDesign(t))
	n := g.ID(4, 4, tech.M3)
	g.AddHistory(n, 1.5)
	g.AddHistory(n, 1.0)
	if got := g.History(n); got < 2.49 || got > 2.51 {
		t.Errorf("history = %g, want 2.5", got)
	}
	g.ResetCongestion()
	if g.History(n) != 0 {
		t.Error("ResetCongestion must clear history")
	}
}

func TestForbiddenViaNearBlockage(t *testing.T) {
	g := New(testDesign(t))
	// Blockage on M2 at x [10,11], y [5,6]. V1 at (9,5) has blocked
	// neighbour (10,5) on M2 -> forbidden.
	if !g.ForbiddenVia(9, 5, 0) {
		t.Error("V1 adjacent to M2 blockage should be forbidden")
	}
	if g.ForbiddenVia(5, 5, 0) {
		t.Error("V1 far from blockages should be normal cost")
	}
	if g.ViaCost(9, 5, 0) != tech.Default().ForbiddenViaCost {
		t.Errorf("ViaCost = %d, want forbidden cost", g.ViaCost(9, 5, 0))
	}
	if g.ViaCost(5, 5, 0) != tech.Default().ViaCost {
		t.Errorf("ViaCost = %d, want base via cost", g.ViaCost(5, 5, 0))
	}
}

func TestEdgeCanonicalAndVia(t *testing.T) {
	g := New(testDesign(t))
	a := g.ID(5, 5, tech.M2)
	b := g.ID(5, 5, tech.M3)
	e := MakeEdge(b, a)
	if e.From != a || e.To != b {
		t.Error("MakeEdge must order nodes")
	}
	if !g.IsVia(e) {
		t.Error("cross-layer edge is a via")
	}
	wire := MakeEdge(g.ID(5, 5, tech.M2), g.ID(6, 5, tech.M2))
	if g.IsVia(wire) {
		t.Error("same-layer edge is not a via")
	}
}

func TestInBounds(t *testing.T) {
	g := New(testDesign(t))
	if !g.InBounds(0, 0) || !g.InBounds(11, 9) {
		t.Error("corners must be in bounds")
	}
	if g.InBounds(-1, 0) || g.InBounds(12, 0) || g.InBounds(0, 10) {
		t.Error("out-of-range coordinates accepted")
	}
}

func TestCongestedByLayer(t *testing.T) {
	g := New(testDesign(t))
	m2 := g.ID(5, 5, tech.M2)
	m3 := g.ID(6, 6, tech.M3)
	g.Occupy(m2)
	g.Occupy(m2)
	g.Occupy(m3)
	g.Occupy(m3)
	g.Occupy(m3)
	by := g.CongestedByLayer()
	if by[tech.M1] != 0 || by[tech.M2] != 1 || by[tech.M3] != 1 {
		t.Errorf("CongestedByLayer = %v, want [0 1 1]", by)
	}
	if g.CongestedCount() != 2 {
		t.Errorf("CongestedCount = %d, want 2", g.CongestedCount())
	}
}

func TestVirtualOccupancySeparation(t *testing.T) {
	g := New(testDesign(t))
	n := g.ID(4, 4, tech.M2)
	g.Occupy(n)        // metal from net A
	g.OccupyVirtual(n) // clearance from net B
	if !g.Overused(n) {
		t.Error("metal+virtual overlap must count as overuse")
	}
	if g.CongestedCount() != 0 {
		t.Error("virtual overlap must not count as metal congestion")
	}
	if g.OverusedCount() != 1 {
		t.Errorf("OverusedCount = %d, want 1", g.OverusedCount())
	}
	g.ReleaseVirtual(n)
	if g.Overused(n) {
		t.Error("virtual release failed")
	}
}
