package design

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"cpr/internal/geom"
	"cpr/internal/tech"
)

// smallDesign builds a two-net design on a 30x10 grid (one panel):
//
//	net a: pins at x [2,3] and [20,21] on track 2
//	net b: pin at x [10,11] on track 2
//	M2 blockage at x [25,27], tracks 0..9 is NOT placed (would hit nothing)
func smallDesign(t *testing.T) *Design {
	t.Helper()
	d := New("small", 30, 10, tech.Default())
	na := d.AddNet("a")
	nb := d.AddNet("b")
	d.AddPin("a1", na, geom.MakeRect(2, 2, 3, 2))
	d.AddPin("a2", na, geom.MakeRect(20, 2, 21, 2))
	d.AddPin("b1", nb, geom.MakeRect(10, 2, 11, 2))
	d.AddBlockage(tech.M2, geom.MakeRect(25, 0, 27, 9))
	if err := d.Validate(); err != nil {
		t.Fatalf("smallDesign invalid: %v", err)
	}
	return d
}

func TestValidateAcceptsSmallDesign(t *testing.T) {
	smallDesign(t)
}

func TestNetBBoxAndHPWL(t *testing.T) {
	d := smallDesign(t)
	box := d.NetBBox(0)
	if box != (geom.Rect{X0: 2, Y0: 2, X1: 21, Y1: 2}) {
		t.Errorf("NetBBox = %v", box)
	}
	if got := d.HPWL(0); got != 19 {
		t.Errorf("HPWL(net a) = %d, want 19", got)
	}
	if got := d.HPWL(1); got != 1 {
		t.Errorf("HPWL(net b, single pin 2 wide) = %d, want 1", got)
	}
}

func TestPinsInPanel(t *testing.T) {
	d := New("panels", 20, 20, tech.Default()) // two panels: tracks 0-9, 10-19
	n := d.AddNet("n")
	d.AddPin("p0", n, geom.MakeRect(1, 1, 2, 1))
	d.AddPin("p1", n, geom.MakeRect(1, 12, 2, 12))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := d.PinsInPanel(0); len(got) != 1 || got[0] != 0 {
		t.Errorf("PinsInPanel(0) = %v", got)
	}
	if got := d.PinsInPanel(1); len(got) != 1 || got[0] != 1 {
		t.Errorf("PinsInPanel(1) = %v", got)
	}
	if d.NumPanels() != 2 {
		t.Errorf("NumPanels = %d, want 2", d.NumPanels())
	}
}

func TestNumPanelsPartialRow(t *testing.T) {
	d := New("partial", 10, 15, tech.Default())
	if d.NumPanels() != 2 {
		t.Errorf("NumPanels for height 15 = %d, want 2", d.NumPanels())
	}
}

func TestValidateRejections(t *testing.T) {
	mk := func() *Design {
		d := New("x", 30, 10, tech.Default())
		n := d.AddNet("n")
		d.AddPin("p", n, geom.MakeRect(2, 2, 3, 2))
		return d
	}
	t.Run("empty net", func(t *testing.T) {
		d := mk()
		d.AddNet("empty")
		if d.Validate() == nil {
			t.Error("want error for empty net")
		}
	})
	t.Run("pin outside grid", func(t *testing.T) {
		d := mk()
		d.AddPin("out", 0, geom.MakeRect(29, 2, 31, 2))
		if d.Validate() == nil {
			t.Error("want error for pin outside grid")
		}
	})
	t.Run("overlapping pins", func(t *testing.T) {
		d := mk()
		n2 := d.AddNet("m")
		d.AddPin("q", n2, geom.MakeRect(3, 2, 4, 2))
		if d.Validate() == nil {
			t.Error("want error for overlapping pins")
		}
	})
	t.Run("pin straddles panels", func(t *testing.T) {
		d := New("x", 30, 20, tech.Default())
		n := d.AddNet("n")
		d.AddPin("p", n, geom.MakeRect(2, 9, 2, 10))
		if d.Validate() == nil {
			t.Error("want error for panel-straddling pin")
		}
	})
	t.Run("M2 blockage over pin", func(t *testing.T) {
		d := mk()
		d.AddBlockage(tech.M2, geom.MakeRect(2, 2, 5, 2))
		if d.Validate() == nil {
			t.Error("want error for M2 blockage over pin")
		}
	})
	t.Run("blockage bad layer", func(t *testing.T) {
		d := mk()
		d.AddBlockage(7, geom.MakeRect(10, 5, 11, 5))
		if d.Validate() == nil {
			t.Error("want error for invalid blockage layer")
		}
	})
	t.Run("zero grid", func(t *testing.T) {
		d := New("x", 0, 10, tech.Default())
		if d.Validate() == nil {
			t.Error("want error for zero-width grid")
		}
	})
}

func TestTrackIndexPins(t *testing.T) {
	d := smallDesign(t)
	idx := d.BuildTrackIndex()
	pins := idx.PinsOnTrack(2)
	if len(pins) != 3 {
		t.Fatalf("PinsOnTrack(2) = %v, want 3 pins", pins)
	}
	// Sorted by X0: a1 (x=2), b1 (x=10), a2 (x=20).
	wantNames := []string{"a1", "b1", "a2"}
	for i, pid := range pins {
		if d.Pins[pid].Name != wantNames[i] {
			t.Errorf("pin %d = %q, want %q", i, d.Pins[pid].Name, wantNames[i])
		}
	}
	if got := idx.PinsOnTrack(5); len(got) != 0 {
		t.Errorf("PinsOnTrack(5) = %v, want empty", got)
	}
	if got := idx.PinsOnTrack(-1); got != nil {
		t.Error("PinsOnTrack(-1) should be nil")
	}
}

func TestTrackIndexBlockages(t *testing.T) {
	d := smallDesign(t)
	idx := d.BuildTrackIndex()
	spans := idx.BlockedSpans(4)
	if len(spans) != 1 || spans[0] != (geom.Interval{Lo: 25, Hi: 27}) {
		t.Errorf("BlockedSpans(4) = %v", spans)
	}
}

func TestFreeSpanAround(t *testing.T) {
	d := smallDesign(t)
	idx := d.BuildTrackIndex()
	// Track 2 has a blockage at [25,27]; a seed at [2,3] can extend from 0
	// to 24.
	got := idx.FreeSpanAround(2, geom.Interval{Lo: 2, Hi: 3})
	if got != (geom.Interval{Lo: 0, Hi: 24}) {
		t.Errorf("FreeSpanAround = %v, want [0,24]", got)
	}
	// Seed overlapping the blockage is infeasible.
	if !idx.FreeSpanAround(2, geom.Interval{Lo: 26, Hi: 26}).Empty() {
		t.Error("blocked seed should give empty span")
	}
	// Track with no blockage spans the whole width.
	if got := idx.FreeSpanAround(8, geom.Interval{Lo: 5, Hi: 5}); got != (geom.Interval{Lo: 0, Hi: 24}) {
		// blockage covers tracks 0..9, so track 8 also clipped
		t.Errorf("FreeSpanAround(track 8) = %v, want [0,24]", got)
	}
}

func TestMergeIntervals(t *testing.T) {
	in := []geom.Interval{{Lo: 5, Hi: 7}, {Lo: 0, Hi: 2}, {Lo: 3, Hi: 4}, {Lo: 10, Hi: 12}, geom.EmptyInterval()}
	got := MergeIntervals(in)
	want := []geom.Interval{{Lo: 0, Hi: 7}, {Lo: 10, Hi: 12}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeIntervals = %v, want %v", got, want)
	}
	if MergeIntervals(nil) != nil {
		t.Error("MergeIntervals(nil) should be nil")
	}
}

func TestMergeIntervalsProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 1000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			n := r.Intn(10)
			ivs := make([]geom.Interval, n)
			for i := range ivs {
				lo := r.Intn(30)
				ivs[i] = geom.Interval{Lo: lo, Hi: lo + r.Intn(6) - 1}
			}
			vals[0] = reflect.ValueOf(ivs)
		},
	}
	// Merged output is sorted, disjoint, non-adjacent, and covers exactly
	// the same grid points as the input.
	prop := func(ivs []geom.Interval) bool {
		merged := MergeIntervals(ivs)
		for i := 1; i < len(merged); i++ {
			if merged[i].Lo <= merged[i-1].Hi+1 {
				return false
			}
		}
		covered := func(set []geom.Interval, x int) bool {
			for _, iv := range set {
				if iv.Contains(x) {
					return true
				}
			}
			return false
		}
		for x := -1; x <= 40; x++ {
			if covered(ivs, x) != covered(merged, x) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestComputeStats(t *testing.T) {
	d := smallDesign(t)
	s := d.ComputeStats()
	if s.Nets != 2 || s.Pins != 3 || s.Blockages != 1 || s.Panels != 1 {
		t.Errorf("Stats = %+v", s)
	}
	if s.AvgDegree != 1.5 {
		t.Errorf("AvgDegree = %g, want 1.5", s.AvgDegree)
	}
}
