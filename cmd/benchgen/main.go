// Command benchgen materializes the synthetic benchmark circuits as
// cpr-design files, so experiments can be rerun on byte-identical inputs
// and instances can be shared or edited.
//
// Usage:
//
//	benchgen -out bench/                   # all six Table 2 circuits
//	benchgen -out bench/ -circuits ecc,div # a subset
//	benchgen -out bench/ -sweep 100,400    # Figure 6 sweep instances
//	benchgen -out bench/ -circuits ecc -multiregion 4
//
// With -multiregion N > 1 each selected circuit is tiled N times
// horizontally with -region-gap empty columns between tiles (written as
// <name>xN.cprd). The gap exceeds twice the router's net influence
// margin, so the tiles route as provably independent regions — the
// shape that lets strict incremental reruns splice untouched regions
// byte-identically.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"cpr/internal/cliutil"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/synth"
	"cpr/internal/tech"
)

func main() {
	var (
		out        = flag.String("out", ".", "output directory")
		circuits   = cliutil.Circuits(cliutil.AllCircuits, "")
		sweep      = flag.String("sweep", "", "comma-separated pin counts for Figure 6 sweep instances")
		multi      = flag.Int("multiregion", 1, "tile each circuit this many times into separate routing regions (1 = off)")
		regionGap  = flag.Int("region-gap", 300, "empty columns between multi-region tiles (keep > 2x the router influence margin)")
		ruleEngine = cliutil.RuleEngine()
	)
	flag.Parse()

	engine := ""
	if *ruleEngine != "" {
		var err error
		if engine, err = tech.ParseEngine(*ruleEngine); err != nil {
			fatal(err)
		}
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	if *sweep != "" {
		for _, field := range strings.Split(*sweep, ",") {
			pins, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				fatal(fmt.Errorf("bad -sweep entry %q", field))
			}
			spec := synth.SweepSpec(pins, 77)
			d, err := synth.Generate(spec)
			if err != nil {
				fatal(err)
			}
			stampEngine(d, engine)
			write(*out, d)
		}
		return
	}
	for _, name := range strings.Split(*circuits, ",") {
		spec, err := synth.SpecByName(strings.TrimSpace(name))
		if err != nil {
			fatal(err)
		}
		var d *design.Design
		if *multi > 1 {
			spec.Name = fmt.Sprintf("%sx%d", spec.Name, *multi)
			d, err = synth.GenerateMultiRegion(spec, *multi, *regionGap)
		} else {
			d, err = synth.Generate(spec)
		}
		if err != nil {
			fatal(err)
		}
		stampEngine(d, engine)
		write(*out, d)
	}
}

// stampEngine records the selected multi-patterning engine in the
// generated design, so the saved file (and every run loading it) carries
// the engine in its content address. The tech is cloned: generators may
// share a Technology value across designs.
func stampEngine(d *design.Design, engine string) {
	if engine == "" {
		return
	}
	t := *d.Tech
	t.Patterning.Engine = engine
	d.Tech = &t
}

func write(dir string, d *design.Design) {
	path := filepath.Join(dir, d.Name+".cprd")
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := designio.Write(f, d); err != nil {
		fatal(err)
	}
	st := d.ComputeStats()
	fmt.Printf("%-24s %6d nets %6d pins %4d panels\n", path, st.Nets, st.Pins, st.Panels)
}

func fatal(err error) { cliutil.Fatal("benchgen", err) }
