// Command cprlint is the repo's determinism & robustness linter: a
// multichecker driving the internal/analysis suite (maporder,
// nondeterm, floatreduce, ctxpass, mutexcopy, errdrop, plus the
// interprocedural lockheld, keypurity, goroleak, and deferclose) over
// package patterns, with //cprlint:<analyzer> <reason> suppression
// comments enforced to carry reasons.
//
// The v2 analyzers are summary-based: the engine walks the
// `go list -deps` graph, summarizes in-module dependency packages
// bottom-up (funcsum facts: blocking, clock reads, option-field reads,
// ...), and checks targets with every dependency's summary in scope. A
// facts cache (-facts-dir) persists those summaries keyed by content
// hash, so narrow re-lints skip re-summarizing unchanged dependencies.
//
// Usage:
//
//	cprlint [flags] [packages]
//
//	-json             emit {"findings": [...], "timings": [...]} JSON
//	-list             print the analyzers and exit
//	-enable  a,b,...  run only the named analyzers
//	-disable a,b,...  skip the named analyzers
//	-facts-dir DIR    persist/reuse per-package fact summaries in DIR
//
// Exit status: 0 when clean, 1 on findings, 2 on usage or load errors.
// The CI lint job runs `cprlint ./...` and additionally asserts that
// `cprlint -json ./...` reports an empty findings list, so any new
// finding — including an unjustified suppression — fails the build.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"cpr/internal/analysis"
	"cpr/internal/analysis/all"
	"cpr/internal/analysis/engine"
)

// finding is one reported diagnostic, JSON-ready.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Findings []finding       `json:"findings"`
	Timings  []engine.Timing `json:"timings"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit findings and per-analyzer timings as JSON")
	list := flag.Bool("list", false, "list analyzers and exit")
	enable := flag.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzers to skip")
	factsDir := flag.String("facts-dir", "", "directory for the persistent fact-summary cache")
	flag.Parse()

	if *list {
		for _, a := range all.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*enable, *disable)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cprlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "cprlint:", err)
		os.Exit(2)
	}
	findings, timings, err := Lint(wd, patterns, analyzers, *factsDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cprlint:", err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		report := jsonReport{Findings: findings, Timings: timings}
		if report.Findings == nil {
			report.Findings = []finding{}
		}
		if report.Timings == nil {
			report.Timings = []engine.Timing{}
		}
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "cprlint:", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message)
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "cprlint: %d finding(s)\n", len(findings))
		}
		os.Exit(1)
	}
}

// selectAnalyzers applies -enable/-disable to the registry.
func selectAnalyzers(enable, disable string) ([]*analysis.Analyzer, error) {
	byName := make(map[string]*analysis.Analyzer)
	for _, a := range all.Analyzers() {
		byName[a.Name] = a
	}
	parseList := func(s string) (map[string]bool, error) {
		set := make(map[string]bool)
		if s == "" {
			return set, nil
		}
		for _, name := range strings.Split(s, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if byName[name] == nil {
				return nil, fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			set[name] = true
		}
		return set, nil
	}
	on, err := parseList(enable)
	if err != nil {
		return nil, err
	}
	off, err := parseList(disable)
	if err != nil {
		return nil, err
	}
	var out []*analysis.Analyzer
	for _, a := range all.Analyzers() {
		if len(on) > 0 && !on[a.Name] {
			continue
		}
		if off[a.Name] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

// Lint runs the engine on the patterns from moduleDir and returns
// module-relative findings sorted by position, plus per-analyzer
// timings. Suppression comments are applied (and validated: a
// //cprlint: comment with a bad name or no reason is itself a finding,
// under the "cprlint" analyzer name).
func Lint(moduleDir string, patterns []string, analyzers []*analysis.Analyzer, factsDir string) ([]finding, []engine.Timing, error) {
	e := engine.New(engine.Options{
		ModuleDir: moduleDir,
		FactsDir:  factsDir,
		Analyzers: analyzers,
		Known:     all.Known(),
	})
	raw, timings, err := e.Run(patterns...)
	if err != nil {
		return nil, nil, err
	}
	var findings []finding
	for _, f := range raw {
		file := f.Pos.Filename
		if rel, err := relIfUnder(moduleDir, file); err == nil {
			file = rel
		}
		findings = append(findings, finding{
			Analyzer: f.Analyzer,
			File:     file,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	return findings, timings, nil
}

// relIfUnder returns target relative to base when target lies under it.
func relIfUnder(base, target string) (string, error) {
	if !strings.HasPrefix(target, base+string(os.PathSeparator)) {
		return "", fmt.Errorf("outside module")
	}
	return strings.TrimPrefix(target, base+string(os.PathSeparator)), nil
}
