package deferclose_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/deferclose"
)

func TestDeferclose(t *testing.T) {
	analysistest.Run(t, "testdata", deferclose.Analyzer, "deferclose")
}
