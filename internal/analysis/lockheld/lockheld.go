// Package lockheld flags blocking work performed while a sync.Mutex or
// sync.RWMutex is held: network and file I/O, time.Sleep, bare channel
// operations, selects with no default — anything that can park the
// goroutine for an unbounded time while every other goroutine contending
// for the lock waits behind it. The check is interprocedural: a call
// into a function whose funcsum summary says "blocks" is flagged with
// the full chain, so the PR 7 bug — a design-cache lookup that resolves
// misses over peer HTTP, performed under the job-manager mutex — is
// caught even though the HTTP call is three packages away.
//
// Lock tracking is path-sensitive over structured control flow: a
// branch that unlocks and returns does not poison the fall-through
// path, and the held set after if/switch/select is the union of the
// branches that actually fall through. A deferred unlock keeps the lock
// held to function end, which is the point: blocking work after
// `defer mu.Unlock()` still blocks lock waiters.
package lockheld

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"cpr/internal/analysis"
	"cpr/internal/analysis/funcsum"
)

// Analyzer reports blocking calls on critical sections.
var Analyzer = &analysis.Analyzer{
	Name:     "lockheld",
	Doc:      "reports blocking operations (I/O, channel ops, sleeps, selects) performed while a sync.Mutex or RWMutex is held, including blocking reached through calls into other module packages",
	Requires: []*analysis.Analyzer{funcsum.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c := &checker{pass: pass}
			c.stmts(fd.Body.List, map[string]lockSite{})
		}
	}
	return nil
}

// lockSite remembers where a lock was taken.
type lockSite struct {
	key  string
	line int
}

type checker struct {
	pass *analysis.Pass
}

// stmts walks a statement list with the current held-lock set, mutating
// held in place. It reports true when the list cannot fall through
// (return, branch, panic, fatal exit).
func (c *checker) stmts(list []ast.Stmt, held map[string]lockSite) bool {
	for _, s := range list {
		if c.stmt(s, held) {
			return true
		}
	}
	return false
}

func (c *checker) stmt(s ast.Stmt, held map[string]lockSite) bool {
	switch x := s.(type) {
	case *ast.ExprStmt:
		c.expr(x.X, held)
		return isTerminalCall(c.pass.TypesInfo, x.X)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			c.expr(r, held)
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.AssignStmt:
		for _, e := range x.Rhs {
			c.expr(e, held)
		}
		for _, e := range x.Lhs {
			c.expr(e, held)
		}
	case *ast.IncDecStmt:
		c.expr(x.X, held)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, held)
					}
				}
			}
		}
	case *ast.SendStmt:
		c.expr(x.Chan, held)
		c.expr(x.Value, held)
		c.blockingOp(x.Arrow, "channel send", held)
	case *ast.DeferStmt:
		// A deferred call runs at return with an unknown lock state;
		// only its arguments are evaluated here. Deferred unlocks are
		// deliberately NOT treated as releases: the lock stays held for
		// the remainder of the function.
		for _, a := range x.Call.Args {
			c.expr(a, held)
		}
	case *ast.GoStmt:
		for _, a := range x.Call.Args {
			c.expr(a, held)
		}
	case *ast.BlockStmt:
		return c.stmts(x.List, held)
	case *ast.LabeledStmt:
		return c.stmt(x.Stmt, held)
	case *ast.IfStmt:
		return c.ifStmt(x, held)
	case *ast.ForStmt:
		if x.Init != nil {
			c.stmt(x.Init, held)
		}
		if x.Cond != nil {
			c.expr(x.Cond, held)
		}
		body := clone(held)
		if !c.stmts(x.Body.List, body) && x.Post != nil {
			c.stmt(x.Post, body)
		}
		union(held, body)
	case *ast.RangeStmt:
		c.expr(x.X, held)
		if t := c.pass.TypesInfo.TypeOf(x.X); t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok {
				c.blockingOp(x.For, "range over channel", held)
			}
		}
		body := clone(held)
		c.stmts(x.Body.List, body)
		union(held, body)
	case *ast.SwitchStmt:
		if x.Init != nil {
			c.stmt(x.Init, held)
		}
		if x.Tag != nil {
			c.expr(x.Tag, held)
		}
		return c.clauses(x.Body.List, held, hasDefaultCase(x.Body.List))
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			c.stmt(x.Init, held)
		}
		return c.clauses(x.Body.List, held, hasDefaultCase(x.Body.List))
	case *ast.SelectStmt:
		if !selectHasDefault(x) {
			c.blockingOp(x.Select, "select with no default case", held)
		}
		return c.selectClauses(x, held)
	}
	return false
}

// ifStmt evaluates both arms on clones and leaves held as the union of
// the arms that fall through; a branch ending in return/panic does not
// contribute its lock state downstream.
func (c *checker) ifStmt(x *ast.IfStmt, held map[string]lockSite) bool {
	if x.Init != nil {
		c.stmt(x.Init, held)
	}
	c.expr(x.Cond, held)
	thenHeld := clone(held)
	thenTerm := c.stmts(x.Body.List, thenHeld)

	elseTerm := false
	var elseHeld map[string]lockSite
	if x.Else != nil {
		elseHeld = clone(held)
		elseTerm = c.stmt(x.Else, elseHeld)
	}

	merged := map[string]lockSite{}
	fallthroughs := 0
	if !thenTerm {
		union(merged, thenHeld)
		fallthroughs++
	}
	if x.Else != nil {
		if !elseTerm {
			union(merged, elseHeld)
			fallthroughs++
		}
	} else {
		union(merged, held) // condition false: state unchanged
		fallthroughs++
	}
	replace(held, merged)
	return fallthroughs == 0
}

// clauses merges switch/type-switch case bodies; without a default the
// zero-case fall-through keeps the entry state.
func (c *checker) clauses(list []ast.Stmt, held map[string]lockSite, hasDefault bool) bool {
	merged := map[string]lockSite{}
	fallthroughs := 0
	for _, cl := range list {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			c.expr(e, held)
		}
		h := clone(held)
		if !c.stmts(cc.Body, h) {
			union(merged, h)
			fallthroughs++
		}
	}
	if !hasDefault {
		union(merged, held)
		fallthroughs++
	}
	replace(held, merged)
	return fallthroughs == 0 && len(list) > 0
}

func (c *checker) selectClauses(x *ast.SelectStmt, held map[string]lockSite) bool {
	merged := map[string]lockSite{}
	fallthroughs := 0
	for _, cl := range x.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if !ok {
			continue
		}
		h := clone(held)
		// The comm operation itself is part of the select's readiness,
		// already accounted for by the no-default check; only the body runs.
		if !c.stmts(cc.Body, h) {
			union(merged, h)
			fallthroughs++
		}
	}
	if len(x.Body.List) == 0 {
		return false // empty select blocks forever; nothing merges
	}
	replace(held, merged)
	return fallthroughs == 0
}

func hasDefaultCase(list []ast.Stmt) bool {
	for _, cl := range list {
		if cc, ok := cl.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

func selectHasDefault(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// expr scans an expression subtree for mutex operations, blocking
// calls, and bare channel receives. Function literal bodies are skipped:
// they run later, under whatever lock state their caller has.
func (c *checker) expr(e ast.Expr, held map[string]lockSite) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if c.mutexOp(x, held) {
				return false
			}
			c.checkCall(x, held)
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.blockingOp(x.OpPos, "channel receive", held)
			}
		}
		return true
	})
}

// mutexOp updates held when call is sync.(*Mutex)/(*RWMutex)
// Lock/RLock/Unlock/RUnlock, keyed by the receiver expression text.
func (c *checker) mutexOp(call *ast.CallExpr, held map[string]lockSite) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := c.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := types.Unalias(sig.Recv().Type())
	if p, ok := recv.(*types.Pointer); ok {
		recv = types.Unalias(p.Elem())
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return false
	}
	key := types.ExprString(sel.X)
	switch fn.Name() {
	case "Lock", "RLock":
		held[key] = lockSite{key: key, line: c.pass.Fset.Position(call.Pos()).Line}
		return true
	case "Unlock", "RUnlock":
		delete(held, key)
		return true
	}
	return false
}

// checkCall flags a call that blocks — per the standard-library table
// or the callee's interprocedural summary — while a lock is held.
func (c *checker) checkCall(call *ast.CallExpr, held map[string]lockSite) {
	if len(held) == 0 {
		return
	}
	if what, ok := funcsum.BlockingCall(c.pass.TypesInfo, call); ok {
		c.report(call.Pos(), "blocking call to "+what, held)
		return
	}
	fn := analysis.FuncOf(c.pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sum, ok := funcsum.LookupSummary(c.pass, fn)
	if !ok || sum.Blocking == nil {
		return
	}
	ch := &funcsum.Chain{What: sum.Blocking.What, Via: append([]string{fn.Origin().FullName()}, sum.Blocking.Via...)}
	c.report(call.Pos(), "call that may block: "+ch.String(), held)
}

func (c *checker) blockingOp(pos token.Pos, what string, held map[string]lockSite) {
	if len(held) == 0 {
		return
	}
	c.report(pos, what, held)
}

func (c *checker) report(pos token.Pos, what string, held map[string]lockSite) {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if held[keys[i]].line != held[keys[j]].line {
			return held[keys[i]].line < held[keys[j]].line
		}
		return keys[i] < keys[j]
	})
	ls := held[keys[0]]
	c.pass.Reportf(pos, "%s while %q is held (locked at line %d); move the blocking work off the critical section or annotate with //cprlint:lockheld <reason>",
		what, ls.key, ls.line)
}

// isTerminalCall reports whether an expression statement never returns:
// panic, os.Exit, runtime.Goexit, log.Fatal*.
func isTerminalCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && id.Name == "panic" {
			return true
		}
	}
	fn := analysis.FuncOf(info, call)
	if fn == nil {
		return false
	}
	switch fn.FullName() {
	case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
		return true
	}
	if strings.HasPrefix(fn.FullName(), "(*testing.common).Fatal") {
		return true
	}
	return false
}

func clone(held map[string]lockSite) map[string]lockSite {
	out := make(map[string]lockSite, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

func union(into, from map[string]lockSite) {
	for k, v := range from {
		if _, ok := into[k]; !ok {
			into[k] = v
		}
	}
}

func replace(held, with map[string]lockSite) {
	for k := range held {
		delete(held, k)
	}
	for k, v := range with {
		held[k] = v
	}
}
