package pipeline

import (
	"encoding/json"
	"fmt"
)

// Block codecs: the bridge between typed stage artifacts and the opaque
// blocks of internal/blockstore. Encoding is canonical JSON — fixed
// struct field order, map keys sorted by encoding/json, floats rendered
// losslessly — so the same artifact value encodes to the same bytes on
// every node, and decoding is exact (float64 round-trips bit-for-bit).
//
// Every block carries a format version. A node that receives a block
// from a peer running a different artifact schema fails the decode and
// falls back to recomputing — a version skew inside a cluster degrades
// to cache misses, never to corrupt artifacts.

// codecVersion is the current block format version, shared by the panel
// and route codecs (they version together: both change when the
// artifact schema does).
const codecVersion = 1

// panelEnvelope wraps a PanelArtifact block.
type panelEnvelope struct {
	V     int            `json:"v"`
	Panel *PanelArtifact `json:"panel"`
}

// routeEnvelope wraps a RouteArtifact block.
type routeEnvelope struct {
	V     int            `json:"v"`
	Route *RouteArtifact `json:"route"`
}

// MarshalPanelArtifact encodes a panel artifact as a block. Keyless
// (uncacheable) artifacts are rejected: they must never reach a store.
func MarshalPanelArtifact(a *PanelArtifact) ([]byte, error) {
	if a == nil || a.Key == "" {
		return nil, fmt.Errorf("pipeline: refusing to encode keyless panel artifact")
	}
	return json.Marshal(panelEnvelope{V: codecVersion, Panel: a})
}

// UnmarshalPanelArtifact decodes a panel artifact block, checking the
// format version and that the artifact is keyed.
func UnmarshalPanelArtifact(data []byte) (*PanelArtifact, error) {
	var env panelEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("pipeline: decoding panel block: %w", err)
	}
	if env.V != codecVersion {
		return nil, fmt.Errorf("pipeline: panel block version %d, want %d", env.V, codecVersion)
	}
	if env.Panel == nil || env.Panel.Key == "" {
		return nil, fmt.Errorf("pipeline: panel block missing keyed artifact")
	}
	return env.Panel, nil
}

// MarshalRouteArtifact encodes a route artifact as a block. Keyless
// artifacts (eco-fast products, legal but not byte-reproducible) are
// rejected: they must never be stored or served.
func MarshalRouteArtifact(a *RouteArtifact) ([]byte, error) {
	if a == nil || a.Key == "" {
		return nil, fmt.Errorf("pipeline: refusing to encode keyless route artifact")
	}
	return json.Marshal(routeEnvelope{V: codecVersion, Route: a})
}

// UnmarshalRouteArtifact decodes a route artifact block, checking the
// format version and that the artifact is keyed.
func UnmarshalRouteArtifact(data []byte) (*RouteArtifact, error) {
	var env routeEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("pipeline: decoding route block: %w", err)
	}
	if env.V != codecVersion {
		return nil, fmt.Errorf("pipeline: route block version %d, want %d", env.V, codecVersion)
	}
	if env.Route == nil || env.Route.Key == "" {
		return nil, fmt.Errorf("pipeline: route block missing keyed artifact")
	}
	return env.Route, nil
}
