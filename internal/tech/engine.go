// Rule engines: the pluggable multi-patterning layer of the technology.
//
// The paper notes CPR "is extendable to technology-dependent
// manufacturing constraints"; this file is that extension point. A
// RuleEngine interprets the line-end fields of Technology under one
// patterning scheme and owns every technology-dependent decision the
// pipeline makes: grid edge costs, line-end extension and spacing rules,
// clearance and influence margins, negotiation conflict pricing, DRC
// violation detection, verify-grade legality messages, and the mask
// decomposition analysis of a routed result.
//
// Three engines ship:
//
//   - sadp (default): self-aligned double patterning. Line-ends are
//     produced by cuts; the mask analysis extracts and merges the cut
//     mask and counts residual cut conflicts (cf. cutmask).
//   - lele: litho-etch-litho-etch double patterning. Strips on a track
//     alternate between the two masks, so adjacent tips need the
//     diff-mask spacing (LineEndSpacing) while next-nearest tips land on
//     the same mask and need the larger SameMaskSpacing.
//   - tpl: triple patterning (per the Mr.TPL / TRIAD line of work). A
//     color-conflict graph is built over the routed segments, greedily
//     3-colored with stitch insertion, and the negotiation router prices
//     cross-track conflict neighbourhoods so the graph stays colorable.
package tech

import (
	"fmt"
	"strconv"
)

// Canonical engine names. An empty Patterning.Engine selects EngineSADP.
const (
	EngineSADP = "sadp"
	EngineLELE = "lele"
	EngineTPL  = "tpl"
)

// Patterning selects and tunes the multi-patterning rule engine. The
// zero value selects the SADP engine with default parameters and is,
// by contract, byte-invisible: designio and the pipeline input encoders
// emit a rule-engine record only for a non-zero Patterning, so designs
// predating the engine layer keep their content addresses.
//
// Every field is part of the cache-key contract: the designio text
// (design key), the pipeline panel/route input encodings, and therefore
// every content address differ whenever any field differs.
//
//keypurity:options
type Patterning struct {
	// Engine names the rule engine: "sadp" (default, also selected by
	// ""), "lele", or "tpl". Unknown names fail validation closed.
	Engine string
	// SameMaskSpacing is the lele minimum gap (free cells) between two
	// line-ends printed on the same mask — next-nearest tips on a track
	// under alternating decomposition. 0 selects the default 3. The
	// diff-mask (adjacent-tip) spacing is Technology.LineEndSpacing.
	SameMaskSpacing int
	// ColorSpacing is the tpl distance below which two same-layer
	// segments of different nets conflict and must take different
	// colors. 0 selects the default 2.
	ColorSpacing int
	// StitchPenalty scales the tpl negotiation cost term that prices
	// routing through another net's conflict neighbourhood. 0 selects
	// the default 1.
	StitchPenalty int
	// CutSpacing is the sadp minimum free distance between two distinct
	// cuts on the same or adjacent tracks. 0 selects the default 2.
	CutSpacing int
	// MergeTolerance is the sadp maximum along-track offset at which
	// cuts on adjacent tracks still merge into one shape (default 0:
	// exact alignment).
	MergeTolerance int
}

// ParseEngine canonicalizes an engine name, failing closed on anything
// unknown. The empty string is the SADP default.
func ParseEngine(name string) (string, error) {
	switch name {
	case "", EngineSADP:
		return EngineSADP, nil
	case EngineLELE:
		return EngineLELE, nil
	case EngineTPL:
		return EngineTPL, nil
	default:
		return "", fmt.Errorf("tech: unknown rule engine %q (want sadp, lele, or tpl)", name)
	}
}

// Validate checks the patterning selection, failing closed on unknown
// engine names.
func (p Patterning) Validate() error {
	if _, err := ParseEngine(p.Engine); err != nil {
		return err
	}
	for _, f := range []struct {
		name string
		v    int
	}{
		{"SameMaskSpacing", p.SameMaskSpacing},
		{"ColorSpacing", p.ColorSpacing},
		{"StitchPenalty", p.StitchPenalty},
		{"CutSpacing", p.CutSpacing},
		{"MergeTolerance", p.MergeTolerance},
	} {
		if f.v < 0 {
			return fmt.Errorf("tech: Patterning.%s must be non-negative, got %d", f.name, f.v)
		}
	}
	return nil
}

// Resolved returns the patterning with the per-engine parameter
// defaults applied — the values the engines actually consume. The raw
// values are what serializes, so round-trips stay exact.
func (p Patterning) Resolved() Patterning { return p.resolved() }

// resolved applies the per-engine parameter defaults. The raw values are
// what serializes (so round-trips are exact); the resolved values are
// what the engines consume.
func (p Patterning) resolved() Patterning {
	out := p
	if out.Engine == "" {
		out.Engine = EngineSADP
	}
	if out.SameMaskSpacing == 0 {
		out.SameMaskSpacing = 3
	}
	if out.ColorSpacing == 0 {
		out.ColorSpacing = 2
	}
	if out.StitchPenalty == 0 {
		out.StitchPenalty = 1
	}
	if out.CutSpacing == 0 {
		out.CutSpacing = 2
	}
	// MergeTolerance: default 0, raw value is already resolved.
	return out
}

// Spec renders the patterning selection canonically — the engine name
// followed by every raw parameter — for the rule-engine records of
// designio and the pipeline input encoders. Reading every field here is
// what lets keypurity prove the engine parameters reach every cache-key
// encoder.
func (p Patterning) Spec() string {
	name := p.Engine
	if name == "" {
		name = EngineSADP
	}
	return name + " " +
		strconv.Itoa(p.SameMaskSpacing) + " " +
		strconv.Itoa(p.ColorSpacing) + " " +
		strconv.Itoa(p.StitchPenalty) + " " +
		strconv.Itoa(p.CutSpacing) + " " +
		strconv.Itoa(p.MergeTolerance)
}

// ParsePatterning parses the payload of a rule-engine record (the Spec
// format: name plus five integer parameters), failing closed on unknown
// engine names, malformed integers, and wrong arity.
func ParsePatterning(fields []string) (Patterning, error) {
	var p Patterning
	if len(fields) != 6 {
		return p, fmt.Errorf("tech: rule-engine record wants 6 fields (name + 5 params), got %d", len(fields))
	}
	name, err := ParseEngine(fields[0])
	if err != nil {
		return p, err
	}
	p.Engine = name
	vals := make([]int, 5)
	for i := range vals {
		v, err := strconv.Atoi(fields[i+1])
		if err != nil {
			return p, fmt.Errorf("tech: bad rule-engine parameter %q", fields[i+1])
		}
		vals[i] = v
	}
	p.SameMaskSpacing = vals[0]
	p.ColorSpacing = vals[1]
	p.StitchPenalty = vals[2]
	p.CutSpacing = vals[3]
	p.MergeTolerance = vals[4]
	if err := p.Validate(); err != nil {
		return Patterning{}, err
	}
	return p, nil
}

// Seg is one maximal unidirectional metal strip of a routed net, in the
// raw (pre-extension) geometry the router produced. For M2 (horizontal)
// Track is the y row and [Lo, Hi] covers x; for M3 (vertical) Track is
// the x column and [Lo, Hi] covers y.
type Seg struct {
	Net   int
	Layer int
	Track int
	Lo    int
	Hi    int
}

// MaskReport is a rule engine's mask decomposition analysis of a routed
// result.
type MaskReport struct {
	// Engine is the analyzing engine's canonical name.
	Engine string
	// Colors is the number of masks the engine decomposes onto.
	Colors int
	// Segments is the number of metal strips analyzed.
	Segments int
	// ColorOf assigns each input segment a mask color in [0, Colors), or
	// -1 for an uncolorable segment; parallel to the input slice. Nil
	// for single-mask engines.
	ColorOf []int
	// Stitches counts tpl stitch insertions (a segment split across two
	// masks because no single color was legal).
	Stitches int
	// Uncolorable counts segments with no legal color even after stitch
	// insertion (tpl) or with a hard same-track tip conflict (lele).
	Uncolorable int
	// Conflicts counts residual mask conflicts: sadp cut-spacing
	// conflicts, lele same-mask spacing violations, tpl conflict-graph
	// edges.
	Conflicts int
	// Shapes counts distinct mask shapes: sadp merged cuts, otherwise
	// colored metal shapes (stitch halves count separately).
	Shapes int
	// CutShapes is the sadp merged cut mask, deterministic order; nil
	// for other engines.
	CutShapes []CutShape
	// Errors lists hard legality violations in deterministic order.
	// Only violations the track-level rules cannot express land here
	// (tpl uncolorable segments); engines whose mask analysis is purely
	// a complexity metric leave it empty.
	Errors []string
}

// RuleEngine is the technology-dependent rule set one patterning scheme
// imposes on the unidirectional router and its checkers. Implementations
// are immutable after construction and safe for concurrent use; every
// method is a pure function of the constructing Technology.
type RuleEngine interface {
	// Name is the canonical engine name.
	Name() string
	// Colors is the number of masks per routing layer (1 = sadp's
	// single line pattern plus cut mask, 2 = lele, 3 = tpl).
	Colors() int

	// LineEndExtension is the per-end wire extension in grid cells.
	LineEndExtension() int
	// MinLineLen is the minimum printable strip length in grid cells.
	MinLineLen() int
	// ExtendSpan applies the line-end extension and minimum-length
	// growth to a raw strip span, clamped to [0, limit).
	ExtendSpan(lo, hi, limit int) (int, int)

	// ClearanceMargin is the number of cells beyond each strip end the
	// router treats as virtually occupied during negotiation.
	ClearanceMargin() int
	// AvoidMargin is the clearance the DRC reroute pass adds around
	// other nets' extended strips so a rerouted net's own extension
	// still satisfies the worst-case end spacing.
	AvoidMargin() int
	// SequentialClearance is the one-sided clearance committed strips
	// impose on later nets in the sequential baseline.
	SequentialClearance() int
	// RuleReach is the maximum distance (cells) this engine's rules can
	// couple two strips beyond their raw geometry; it feeds the region
	// influence margin that guarantees cross-region independence.
	RuleReach() int

	// WireCost is the grid cost of one metal edge.
	WireCost() int
	// ViaCost is the grid cost of a via edge, forbidden-flagged or not.
	ViaCost(forbidden bool) int
	// ConflictRadius is the cross-track distance (tracks) over which the
	// negotiation router prices other nets' occupancy as prospective
	// color conflicts; 0 disables the term (and keeps the sadp cost
	// arithmetic byte-identical to the pre-engine router).
	ConflictRadius() int
	// ConflictWeight scales the cross-track conflict pricing term.
	ConflictWeight() float64

	// TrackViolations scans one track's extended strips (sorted by Lo,
	// then net) and calls vio(net) once per end-rule violation a net
	// participates in; the DRC pass rips up and reroutes the offenders.
	TrackViolations(strips []Seg, vio func(net int))
	// CheckTrack reports verify-grade error messages for one track's
	// extended strips (same order contract as TrackViolations). netName
	// resolves IDs for messages; errf appends one formatted error.
	CheckTrack(layer, track int, strips []Seg, netName func(int) string,
		errf func(format string, args ...interface{}))

	// AnalyzeMask decomposes routed raw segments onto the engine's masks
	// and reports colorability, stitches, conflicts, and shape counts.
	// w and h are the grid extents (strip ends flush with the boundary
	// need no cut under sadp).
	AnalyzeMask(segs []Seg, w, h int) *MaskReport
}

// RulesFor constructs the rule engine a technology selects. The
// technology must have passed Validate; an unknown engine name panics
// (fail closed) rather than silently routing under the wrong rules.
func RulesFor(t *Technology) RuleEngine {
	p := t.Patterning.resolved()
	base := lineEndRules{
		ext:          t.LineEndExtension,
		minLen:       t.MinLineLen,
		spacing:      t.LineEndSpacing,
		wire:         t.BaseCost,
		via:          t.ViaCost,
		forbiddenVia: t.ForbiddenViaCost,
	}
	switch p.Engine {
	case EngineSADP:
		return sadpRules{lineEndRules: base, cutSpacing: p.CutSpacing, mergeTol: p.MergeTolerance}
	case EngineLELE:
		return leleRules{lineEndRules: base, sameMask: p.SameMaskSpacing}
	case EngineTPL:
		return tplRules{lineEndRules: base, colorSpacing: p.ColorSpacing, stitchPenalty: p.StitchPenalty}
	default:
		panic(fmt.Sprintf("tech: unvalidated rule engine %q", t.Patterning.Engine))
	}
}

// Rules returns the technology's rule engine (see RulesFor).
func (t *Technology) Rules() RuleEngine { return RulesFor(t) }

// lineEndRules is the engine-independent core every engine shares: the
// SADP-motivated line-end geometry fields of Technology plus the grid
// cost parameters.
type lineEndRules struct {
	ext, minLen, spacing    int
	wire, via, forbiddenVia int
}

func (r lineEndRules) LineEndExtension() int { return r.ext }
func (r lineEndRules) MinLineLen() int       { return r.minLen }
func (r lineEndRules) WireCost() int         { return r.wire }

func (r lineEndRules) ViaCost(forbidden bool) int {
	if forbidden {
		return r.forbiddenVia
	}
	return r.via
}

// ExtendSpan applies the line-end extension and the minimum line length
// rule, growing toward Hi first, clamped to the grid extent.
func (r lineEndRules) ExtendSpan(lo, hi, limit int) (int, int) {
	lo -= r.ext
	hi += r.ext
	for hi-lo+1 < r.minLen {
		if hi < limit-1 {
			hi++
		} else if lo > 0 {
			lo--
		} else {
			break
		}
	}
	if lo < 0 {
		lo = 0
	}
	if hi > limit-1 {
		hi = limit - 1
	}
	return lo, hi
}
