package lagrange

import (
	"math"
	"math/rand"
	"testing"

	"cpr/internal/assign"
	"cpr/internal/conflict"
	"cpr/internal/geom"
	"cpr/internal/pinaccess"
)

// handModel builds an assignment model directly from interval specs, so
// the LR sub-routines can be tested without a full design.
func handModel(t *testing.T, ivs []pinaccess.Interval) *assign.Model {
	t.Helper()
	set := &pinaccess.Set{Intervals: ivs, ByPin: map[int][]int{}}
	pinSeen := map[int]bool{}
	for i := range ivs {
		ivs[i].ID = i
		for _, pid := range ivs[i].PinIDs {
			set.ByPin[pid] = append(set.ByPin[pid], i)
			if !pinSeen[pid] {
				pinSeen[pid] = true
				set.PinIDs = append(set.PinIDs, pid)
			}
		}
	}
	return assign.Build(set, assign.SqrtProfit)
}

func TestMaxGainsPicksHighestGain(t *testing.T) {
	// One pin, two intervals: the longer must win at zero penalties.
	m := handModel(t, []pinaccess.Interval{
		{NetID: 0, Track: 0, Span: geom.Interval{Lo: 0, Hi: 9}, PinIDs: []int{0}, MinForPin: -1},
		{NetID: 0, Track: 0, Span: geom.Interval{Lo: 4, Hi: 5}, PinIDs: []int{0}, MinForPin: 0},
	})
	gains := append([]float64(nil), m.Profits...)
	order := make([]int, 2)
	selected := make([]bool, 2)
	maxGains(m, gains, order, selected, Config{}.withDefaults())
	if !selected[0] || selected[1] {
		t.Errorf("selected = %v, want the long interval only", selected)
	}
}

func TestMaxGainsSameNetTieBreak(t *testing.T) {
	// Equal gains: the interval covering two pins must win the tie.
	m := handModel(t, []pinaccess.Interval{
		{NetID: 0, Track: 0, Span: geom.Interval{Lo: 0, Hi: 3}, PinIDs: []int{0}, MinForPin: -1},
		{NetID: 0, Track: 1, Span: geom.Interval{Lo: 0, Hi: 0}, PinIDs: []int{0, 1}, MinForPin: -1},
		{NetID: 0, Track: 2, Span: geom.Interval{Lo: 0, Hi: 0}, PinIDs: []int{1}, MinForPin: 1},
	})
	// Force equal gains manually.
	gains := []float64{1, 1, 0.5}
	order := make([]int, 3)
	selected := make([]bool, 3)
	maxGains(m, gains, order, selected, Config{}.withDefaults())
	if !selected[1] {
		t.Errorf("selected = %v, want the shared interval via tie-break", selected)
	}
	if selected[0] || selected[2] {
		t.Errorf("selected = %v: shared interval already covers both pins", selected)
	}
}

func TestMaxGainsSkipsAssignedPins(t *testing.T) {
	// Interval 0 covers pins {0,1}; interval 1 covers {1}. Once 0 is
	// taken, 1 must be skipped.
	m := handModel(t, []pinaccess.Interval{
		{NetID: 0, Track: 0, Span: geom.Interval{Lo: 0, Hi: 9}, PinIDs: []int{0, 1}, MinForPin: -1},
		{NetID: 0, Track: 1, Span: geom.Interval{Lo: 0, Hi: 8}, PinIDs: []int{1}, MinForPin: -1},
	})
	gains := append([]float64(nil), m.Profits...)
	order := make([]int, 2)
	selected := make([]bool, 2)
	maxGains(m, gains, order, selected, Config{}.withDefaults())
	if !selected[0] || selected[1] {
		t.Errorf("selected = %v", selected)
	}
}

func TestPenalizeRaisesLambdaOnViolation(t *testing.T) {
	m := handModel(t, []pinaccess.Interval{
		{NetID: 0, Track: 0, Span: geom.Interval{Lo: 0, Hi: 5}, PinIDs: []int{0}, MinForPin: -1},
		{NetID: 1, Track: 0, Span: geom.Interval{Lo: 3, Hi: 8}, PinIDs: []int{1}, MinForPin: -1},
	})
	if len(m.Conflicts.Sets) != 1 {
		t.Fatalf("want 1 conflict set, got %d", len(m.Conflicts.Sets))
	}
	lambda := make([]float64, 1)
	penalties := make([]float64, 2)
	selected := []bool{true, true}
	vio := penalize(m, selected, lambda, penalties, 1, Config{}.withDefaults())
	if vio != 1 {
		t.Errorf("vio = %d, want 1", vio)
	}
	// Step: t_1 = L_m / 1^alpha = len([3,5]) = 3; subgradient = 1.
	if math.Abs(lambda[0]-3) > 1e-9 {
		t.Errorf("lambda = %g, want 3", lambda[0])
	}
	if penalties[0] != lambda[0] || penalties[1] != lambda[0] {
		t.Errorf("penalties = %v, want both equal to lambda", penalties)
	}
	// Second iteration: step shrinks by k^alpha.
	vio = penalize(m, selected, lambda, penalties, 2, Config{}.withDefaults())
	if vio != 1 {
		t.Errorf("vio = %d, want 1", vio)
	}
	wantStep := 3 / math.Pow(2, 0.95)
	if math.Abs(lambda[0]-(3+wantStep)) > 1e-9 {
		t.Errorf("lambda = %g, want %g", lambda[0], 3+wantStep)
	}
}

func TestPenalizeViolationOnlyLeavesSatisfiedSetsAlone(t *testing.T) {
	m := handModel(t, []pinaccess.Interval{
		{NetID: 0, Track: 0, Span: geom.Interval{Lo: 0, Hi: 5}, PinIDs: []int{0}, MinForPin: -1},
		{NetID: 1, Track: 0, Span: geom.Interval{Lo: 3, Hi: 8}, PinIDs: []int{1}, MinForPin: -1},
	})
	lambda := []float64{5}
	penalties := []float64{5, 5}
	selected := []bool{true, false} // satisfied
	if vio := penalize(m, selected, lambda, penalties, 3, Config{}.withDefaults()); vio != 0 {
		t.Errorf("vio = %d, want 0", vio)
	}
	if lambda[0] != 5 {
		t.Errorf("violation-only update changed lambda of a satisfied set: %g", lambda[0])
	}
	// Full subgradient decreases it (subgradient = count-1 = 0 here when
	// one selected: 1-1=0 -> unchanged; deselect both for -1).
	selected = []bool{false, false}
	cfg := Config{FullSubgradient: true}.withDefaults()
	penalize(m, selected, lambda, penalties, 3, cfg)
	if lambda[0] >= 5 {
		t.Errorf("full subgradient should decrease lambda, got %g", lambda[0])
	}
}

// TestPostImprovePreservesLegality runs LR with and without the
// improvement pass over random panels and checks the pass never breaks
// legality while never lowering the objective.
func TestPostImprovePreservesLegality(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		d := randomPanel(t, rng, 16+rng.Intn(16), 4+rng.Intn(16))
		m := buildModel(t, d)
		base := Solve(m, Config{SkipPostImprove: true})
		improved := Solve(m, Config{})
		if err := m.CheckLegal(improved.Solution); err != nil {
			t.Fatalf("trial %d: post-improve broke legality: %v", trial, err)
		}
		if improved.Solution.Objective < base.Solution.Objective-1e-9 {
			t.Fatalf("trial %d: post-improve lowered objective %g -> %g",
				trial, base.Solution.Objective, improved.Solution.Objective)
		}
	}
}

func TestRefineTerminatesOnAdversarialSelection(t *testing.T) {
	// Start from the all-max selection (every conflict violated) and
	// check refine reaches a legal state.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 10; trial++ {
		d := randomPanel(t, rng, 24, 12)
		m := buildModel(t, d)
		// Assign every pin its largest interval.
		byPin := map[int]int{}
		for _, pid := range m.Set.PinIDs {
			best, bestLen := -1, -1
			for _, iv := range m.Set.ByPin[pid] {
				if l := m.Set.Intervals[iv].Span.Len(); l > bestLen {
					best, bestLen = iv, l
				}
			}
			byPin[pid] = best
		}
		sol := m.FromAssignment(byPin)
		refine(m, sol)
		final := m.FromAssignment(sol.ByPin)
		if final.Violations != 0 {
			t.Fatalf("trial %d: refine left %d violations", trial, final.Violations)
		}
	}
}

// TestConflictMatrixConsistency guards the assumption refine relies on:
// no conflict set contains two minimum intervals.
func TestConflictMatrixConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 10; trial++ {
		d := randomPanel(t, rng, 30, 14)
		m := buildModel(t, d)
		mins := func(ids []int) int {
			n := 0
			for _, id := range ids {
				if m.Set.Intervals[id].MinForPin >= 0 {
					n++
				}
			}
			return n
		}
		for _, cs := range m.Conflicts.Sets {
			if mins(cs.IDs) > 1 {
				t.Fatalf("trial %d: conflict set with two minimum intervals", trial)
			}
		}
		_ = conflict.Matrix{}
	}
}
