package cache

import "testing"

// TestTwoLevelIndependentAccounting: the design and panel levels keep
// separate hit/miss/eviction counters and separate LRU state — traffic
// on one level must never show up in the other's stats.
func TestTwoLevelIndependentAccounting(t *testing.T) {
	tl := NewTwoLevel[string, int](4, 2)

	tl.Design.Put("d1", "result-1")
	if _, ok := tl.Design.Get("d1"); !ok {
		t.Fatal("design-level hit missing")
	}
	if _, ok := tl.Design.Get("d2"); ok {
		t.Fatal("phantom design-level hit")
	}

	// Panel level: two hits, one miss, and one eviction (capacity 2).
	tl.Panel.Put("p1", 1)
	tl.Panel.Put("p2", 2)
	if _, ok := tl.Panel.Get("p1"); !ok {
		t.Fatal("panel-level hit missing")
	}
	if _, ok := tl.Panel.Get("p2"); !ok {
		t.Fatal("panel-level hit missing")
	}
	if _, ok := tl.Panel.Get("p3"); ok {
		t.Fatal("phantom panel-level hit")
	}
	tl.Panel.Put("p3", 3) // evicts p1 (LRU after the p1, p2 touches)

	st := tl.Stats()
	if st.Design.Hits != 1 || st.Design.Misses != 1 || st.Design.Evictions != 0 || st.Design.Entries != 1 {
		t.Errorf("design stats = %+v, want 1 hit / 1 miss / 0 evictions / 1 entry", st.Design)
	}
	if st.Panel.Hits != 2 || st.Panel.Misses != 1 || st.Panel.Evictions != 1 || st.Panel.Entries != 2 {
		t.Errorf("panel stats = %+v, want 2 hits / 1 miss / 1 eviction / 2 entries", st.Panel)
	}

	// The eviction chose the least recently used panel entry.
	if _, ok := tl.Panel.Get("p1"); ok {
		t.Error("p1 survived eviction; LRU order broken")
	}
	if _, ok := tl.Panel.Get("p2"); !ok {
		t.Error("p2 evicted out of LRU order")
	}
	if got := st.Panel.HitRate(); got != 2.0/3.0 {
		t.Errorf("panel hit rate = %v, want 2/3", got)
	}
}

// TestTwoLevelDefaultCapacities: non-positive capacities take the cache
// package default rather than creating an unbounded or zero-size level.
func TestTwoLevelDefaultCapacities(t *testing.T) {
	tl := NewTwoLevel[int, int](0, -1)
	for i := 0; i < 1030; i++ {
		tl.Panel.Put(string(rune('a'+i%26))+string(rune('0'+i/26%10))+string(rune('A'+i/260)), i)
	}
	if n := tl.Panel.Len(); n > 1024 {
		t.Errorf("panel level grew to %d entries; default capacity not applied", n)
	}
	tl.Design.Put("k", 1)
	if tl.Design.Len() != 1 {
		t.Error("design level rejected an entry")
	}
}

// TestContainsDoesNotTouchCounters: Contains is the re-warm probe used
// by jobs.SubmitBase; it must not distort the hit/miss accounting that
// /v1/stats reports.
func TestContainsDoesNotTouchCounters(t *testing.T) {
	c := New[int](4)
	c.Put("k", 1)
	if !c.Contains("k") || c.Contains("missing") {
		t.Fatal("Contains gave wrong answers")
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 0 {
		t.Errorf("Contains touched counters: %+v", st)
	}
	// Contains must not promote: k becomes LRU after newer entries.
	c.Put("a", 2)
	c.Put("b", 3)
	c.Put("c", 4)
	c.Contains("k")
	c.Put("d", 5) // evicts k
	if c.Contains("k") {
		t.Error("Contains promoted k in LRU order")
	}
}
