package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one constant instrument label.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// DefSecondsBuckets are the default latency histogram bounds, spanning
// sub-millisecond panel solves to multi-minute full-circuit jobs.
var DefSecondsBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300,
}

// DefCountBuckets are the default bounds for count-valued histograms
// (iterations, rip-ups, congested grids).
var DefCountBuckets = []float64{0, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000}

// metricKind is the Prometheus type of a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Counter is a monotonically increasing metric. The zero value and nil
// are usable; Add on nil is a no-op.
type Counter struct {
	bits atomic.Uint64
}

// Add increments the counter by v (negative deltas are ignored).
func (c *Counter) Add(v float64) {
	if c == nil || v < 0 {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value reads the current count (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil {
		return 0
	}
	return math.Float64frombits(c.bits.Load())
}

// Gauge is a metric that can go up and down. Nil-safe like Counter.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments by v (may be negative).
func (g *Gauge) Add(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed buckets (cumulative at
// export, Prometheus-style, with an implicit +Inf bucket). Nil-safe.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds, +Inf excluded
	counts []uint64  // per-bound counts, non-cumulative; len(bounds)+1 with overflow last
	sum    float64
	total  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// HistogramSnapshot is a point-in-time, JSON-friendly view of a
// histogram: cumulative counts per finite bound (the implicit +Inf
// bucket is excluded — JSON cannot encode it — but Count covers every
// observation).
type HistogramSnapshot struct {
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // cumulative, parallel to Bounds
}

// Snapshot captures the histogram for JSON surfaces like /v1/stats. Safe
// on nil (returns nil).
func (h *Histogram) Snapshot() *HistogramSnapshot {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &HistogramSnapshot{
		Count:  h.total,
		Sum:    h.sum,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.bounds)),
	}
	cum := uint64(0)
	for i := range h.bounds {
		cum += h.counts[i]
		s.Counts[i] = cum
	}
	return s
}

// instrument is one registered time series (a family member with a fixed
// label set).
type instrument struct {
	labels []Label
	ctr    *Counter
	gauge  *Gauge
	hist   *Histogram
	fn     func() float64 // value function for *Func instruments
}

// family groups instruments sharing a metric name.
type family struct {
	name        string
	help        string
	kind        metricKind
	instruments map[string]*instrument // keyed by canonical label string
	order       []string               // registration order; export re-sorts
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. A nil registry is usable: every constructor returns
// nil, and nil instruments no-op, so disabled telemetry costs one pointer
// test per call site.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string
}

// NewRegistry creates an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders labels canonically (sorted by key) for dedup and
// export ordering.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString("=\"")
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// getOrCreate returns the instrument for (name, labels), creating the
// family and instrument as needed. Registering one name with two
// different kinds is a programming error and panics.
func (r *Registry) getOrCreate(name, help string, kind metricKind, labels []Label) *instrument {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, instruments: make(map[string]*instrument)}
		r.families[name] = f
		r.names = append(r.names, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q registered as %s and %s", name, f.kind, kind))
	}
	key := labelKey(labels)
	inst, ok := f.instruments[key]
	if !ok {
		inst = &instrument{labels: append([]Label(nil), labels...)}
		f.instruments[key] = inst
		f.order = append(f.order, key)
	}
	return inst
}

// Counter registers (or fetches) a counter. Nil registry returns nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	inst := r.getOrCreate(name, help, kindCounter, labels)
	if inst.ctr == nil && inst.fn == nil {
		inst.ctr = &Counter{}
	}
	return inst.ctr
}

// Gauge registers (or fetches) a gauge. Nil registry returns nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	inst := r.getOrCreate(name, help, kindGauge, labels)
	if inst.gauge == nil && inst.fn == nil {
		inst.gauge = &Gauge{}
	}
	return inst.gauge
}

// Histogram registers (or fetches) a histogram with the given ascending
// bucket upper bounds (+Inf implicit). Nil registry returns nil.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	inst := r.getOrCreate(name, help, kindHistogram, labels)
	if inst.hist == nil {
		bs := append([]float64(nil), bounds...)
		sort.Float64s(bs)
		inst.hist = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
	}
	return inst.hist
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — the bridge for counters maintained elsewhere (cache hit totals,
// jobs-by-state). No-op on nil registry.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	inst := r.getOrCreate(name, help, kindCounter, labels)
	inst.fn = fn
	inst.ctr = nil
}

// GaugeFunc registers a gauge read from fn at scrape time (queue depth,
// cache entries). No-op on nil registry.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	inst := r.getOrCreate(name, help, kindGauge, labels)
	inst.fn = fn
	inst.gauge = nil
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// sampleName renders `name{labels}` with optional extra label appended.
func sampleName(name, labels, extra string) string {
	switch {
	case labels == "" && extra == "":
		return name
	case labels == "":
		return name + "{" + extra + "}"
	case extra == "":
		return name + "{" + labels + "}"
	default:
		return name + "{" + labels + "," + extra + "}"
	}
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): families sorted by name, series sorted by label
// string, histograms expanded into cumulative _bucket/_sum/_count
// series. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := append([]string(nil), r.names...)
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()

	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		keys := append([]string(nil), f.order...)
		sort.Strings(keys)
		for _, key := range keys {
			inst := f.instruments[key]
			if err := writeInstrument(w, f, key, inst); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeInstrument(w io.Writer, f *family, key string, inst *instrument) error {
	switch f.kind {
	case kindCounter, kindGauge:
		var v float64
		switch {
		case inst.fn != nil:
			v = inst.fn()
		case inst.ctr != nil:
			v = inst.ctr.Value()
		case inst.gauge != nil:
			v = inst.gauge.Value()
		}
		_, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name, key, ""), formatValue(v))
		return err
	default:
		h := inst.hist
		h.mu.Lock()
		bounds := append([]float64(nil), h.bounds...)
		counts := append([]uint64(nil), h.counts...)
		sum, total := h.sum, h.total
		h.mu.Unlock()
		cum := uint64(0)
		for i, b := range bounds {
			cum += counts[i]
			le := fmt.Sprintf("le=%q", formatValue(b))
			if _, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_bucket", key, le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_bucket", key, `le="+Inf"`), total); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", sampleName(f.name+"_sum", key, ""), formatValue(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", sampleName(f.name+"_count", key, ""), total)
		return err
	}
}
