package maporder_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, "testdata", maporder.Analyzer, "maporder")
}
