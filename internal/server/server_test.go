package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"cpr/client"
	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/jobs"
	"cpr/internal/synth"
)

// smallSpec is a circuit tiny enough that a full real pipeline run takes
// well under a second.
var smallSpec = client.Spec{Name: "srv-test", Nets: 20, Width: 80, Height: 30, Seed: 3}

// newTestServer wires a manager (real pipeline unless cfg.Run overrides)
// behind an httptest server and returns a client for it.
func newTestServer(t *testing.T, cfg jobs.Config) (*jobs.Manager, *client.Client) {
	t.Helper()
	mgr := jobs.New(cfg, jobs.NewResultCache(256, 0, 0))
	ts := httptest.NewServer(New(mgr).Handler())
	t.Cleanup(ts.Close)
	return mgr, client.New(ts.URL)
}

func TestSubmitPollResultRoundTrip(t *testing.T) {
	_, c := newTestServer(t, jobs.Config{MaxConcurrent: 2})
	ctx := context.Background()

	job, err := c.SubmitSpec(ctx, smallSpec, nil)
	if err != nil {
		t.Fatalf("SubmitSpec: %v", err)
	}
	if job.ID == "" || job.Key == "" {
		t.Fatalf("submission missing id/key: %+v", job)
	}
	final, err := c.Wait(ctx, job.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != "done" || final.Cached {
		t.Fatalf("final job = %+v, want done uncached", final)
	}
	if final.Result == nil || final.Result.Metrics.TotalNets != 20 {
		t.Fatalf("result = %+v, want metrics for 20 nets", final.Result)
	}
	if final.Result.PinOpt == nil || final.Result.PinOpt.Pins == 0 {
		t.Fatalf("pinopt summary = %+v, want populated", final.Result.PinOpt)
	}
	if final.Result.Mode != "cpr" {
		t.Fatalf("mode = %q, want cpr", final.Result.Mode)
	}
}

func TestCacheHitOnIdenticalResubmission(t *testing.T) {
	_, c := newTestServer(t, jobs.Config{MaxConcurrent: 2})
	ctx := context.Background()

	first, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("first submit: %v", err)
	}
	if first.State != "done" || first.Cached {
		t.Fatalf("first = %+v, want done uncached", first)
	}
	second, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("second submit: %v", err)
	}
	if second.State != "done" || !second.Cached {
		t.Fatalf("second = %+v, want done served from cache", second)
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatalf("cached result differs:\n first  %+v\n second %+v", first.Result, second.Result)
	}
	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Cache.Hits != 1 || st.CacheHitRate <= 0 {
		t.Fatalf("stats = hits %d rate %v, want 1 hit", st.Cache.Hits, st.CacheHitRate)
	}
	if st.Stages["run"].Count != 1 {
		t.Fatalf("run stage count = %d, want 1 (cache hit must not run)", st.Stages["run"].Count)
	}
}

// TestInlineDesignSharesCacheWithSpec proves content addressing: a design
// generated client-side and submitted inline hits the cache entry left by
// the equivalent server-side spec submission.
func TestInlineDesignSharesCacheWithSpec(t *testing.T) {
	_, c := newTestServer(t, jobs.Config{MaxConcurrent: 2})
	ctx := context.Background()

	if _, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true}); err != nil {
		t.Fatalf("spec submit: %v", err)
	}

	d, err := synth.Generate(synth.Spec{
		Name: smallSpec.Name, Nets: smallSpec.Nets,
		Width: smallSpec.Width, Height: smallSpec.Height, Seed: smallSpec.Seed,
	})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var sb strings.Builder
	if err := designio.Write(&sb, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	job, err := c.Submit(ctx, client.SubmitRequest{Design: sb.String(), Wait: true})
	if err != nil {
		t.Fatalf("inline submit: %v", err)
	}
	if !job.Cached {
		t.Fatalf("inline submission of identical design missed the cache: %+v", job)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	release := make(chan struct{})
	_, c := newTestServer(t, jobs.Config{
		MaxConcurrent: 1,
		QueueCap:      1,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			<-release
			return &core.RunResult{}, nil
		},
	})
	defer close(release)
	ctx := context.Background()

	specN := func(seed int64) client.Spec {
		s := smallSpec
		s.Seed = seed
		return s
	}
	first, err := c.SubmitSpec(ctx, specN(101), nil)
	if err != nil {
		t.Fatalf("first: %v", err)
	}
	// Wait for the worker to pick up the first job so the queue slot is
	// predictably free.
	deadline := time.Now().Add(5 * time.Second)
	for {
		j, err := c.Job(ctx, first.ID)
		if err != nil {
			t.Fatalf("poll: %v", err)
		}
		if j.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.SubmitSpec(ctx, specN(102), nil); err != nil {
		t.Fatalf("second (fills queue): %v", err)
	}
	_, err = c.SubmitSpec(ctx, specN(103), nil)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("third submit: err = %v, want 429 StatusError", err)
	}
}

func TestGracefulDrainCompletesInflight(t *testing.T) {
	mgr, c := newTestServer(t, jobs.Config{
		MaxConcurrent: 2,
		Run: func(ctx context.Context, d *design.Design, o core.Options) (*core.RunResult, error) {
			time.Sleep(30 * time.Millisecond)
			return &core.RunResult{}, nil
		},
	})
	ctx := context.Background()

	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		s := smallSpec
		s.Seed = seed
		job, err := c.SubmitSpec(ctx, s, nil)
		if err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
		ids = append(ids, job.ID)
	}

	drainCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if err := mgr.Drain(drainCtx); err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range ids {
		job, err := c.Job(ctx, id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		if job.State != "done" {
			t.Fatalf("job %s after drain = %q, want done", id, job.State)
		}
	}

	_, err := c.SubmitSpec(ctx, smallSpec, nil)
	var se *client.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: err = %v, want 503", err)
	}
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.Status != "ok" || !h.Draining {
		t.Fatalf("health = %+v, want ok + draining", h)
	}
}

// TestJobTimeoutRealPipeline runs the actual optimizer under a deadline
// it cannot meet: the job must land in a terminal failed state, and a
// small job submitted afterwards must still complete — the queue is not
// wedged by the timeout.
func TestJobTimeoutRealPipeline(t *testing.T) {
	_, c := newTestServer(t, jobs.Config{MaxConcurrent: 1, JobTimeout: 500 * time.Millisecond})
	ctx := context.Background()

	big := client.Spec{Name: "srv-big", Nets: 3000, Width: 600, Height: 300, Seed: 31}
	job, err := c.SubmitSpec(ctx, big, nil)
	if err != nil {
		t.Fatalf("big submit: %v", err)
	}
	final, err := c.Wait(ctx, job.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != "failed" || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("timed-out job = %+v, want failed with deadline error", final)
	}

	small, err := c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("small submit: %v", err)
	}
	if small.State != "done" {
		t.Fatalf("queue wedged after timeout: small job = %+v", small)
	}
}

func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, jobs.Config{MaxConcurrent: 1})
	ctx := context.Background()
	var se *client.StatusError

	_, err := c.Submit(ctx, client.SubmitRequest{})
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("empty request: err = %v, want 400", err)
	}
	_, err = c.Submit(ctx, client.SubmitRequest{Design: "cpr-design 1", Spec: &smallSpec})
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("design+spec: err = %v, want 400", err)
	}
	_, err = c.Submit(ctx, client.SubmitRequest{Design: "not a design"})
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("garbage design: err = %v, want 400", err)
	}
	_, err = c.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Options: &client.Options{Mode: "warp"}})
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("bad mode: err = %v, want 400", err)
	}
	_, err = c.Job(ctx, "j999999")
	if !errors.As(err, &se) || se.Code != http.StatusNotFound {
		t.Fatalf("unknown job: err = %v, want 404", err)
	}
}

func TestExpvarExposesCounters(t *testing.T) {
	mgr := jobs.New(jobs.Config{MaxConcurrent: 1}, jobs.NewResultCache(8, 0, 0))
	ts := httptest.NewServer(New(mgr).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	var vars map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decoding vars: %v", err)
	}
	raw, ok := vars["cprd"]
	if !ok {
		t.Fatalf("expvar output missing cprd key; have %d keys", len(vars))
	}
	var st jobs.Stats
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("cprd var is not a stats object: %v", err)
	}
	if st.QueueCap != 64 {
		t.Fatalf("queue cap via expvar = %d, want default 64", st.QueueCap)
	}
}

// TestIncrementalSubmitWithBaseJob drives the full incremental path over
// HTTP with the real pipeline: submit a design, move one pin, resubmit
// naming the first job as base_job, and check that panels were reused,
// the panel-cache counters moved, and the result matches a cold run of
// the edited design.
func TestIncrementalSubmitWithBaseJob(t *testing.T) {
	_, c := newTestServer(t, jobs.Config{MaxConcurrent: 2})
	ctx := context.Background()

	d, err := synth.Generate(synth.Spec{Name: "inc-e2e", Nets: 40, Width: 100, Height: 40, Seed: 9})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var sb strings.Builder
	if err := designio.Write(&sb, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	base, err := c.Submit(ctx, client.SubmitRequest{Design: sb.String(), Wait: true})
	if err != nil {
		t.Fatalf("base submit: %v", err)
	}
	if base.State != "done" {
		t.Fatalf("base job = %+v, want done", base)
	}

	// Move one pin by one column; the rebuilt text is a valid ECO edit.
	edited := *d
	edited.Pins = append([]design.Pin(nil), d.Pins...)
	p := &edited.Pins[0]
	p.Shape.X0++
	p.Shape.X1++
	if err := edited.Validate(); err != nil {
		t.Fatalf("edit invalid: %v", err)
	}
	var eb strings.Builder
	if err := designio.Write(&eb, &edited); err != nil {
		t.Fatalf("write edited: %v", err)
	}

	inc, err := c.SubmitIncremental(ctx, eb.String(), base.ID, nil)
	if err != nil {
		t.Fatalf("incremental submit: %v", err)
	}
	final, err := c.Wait(ctx, inc.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != "done" || final.Cached {
		t.Fatalf("incremental job = %+v, want done uncached", final)
	}
	if final.BaseJob != base.ID {
		t.Errorf("base_job echo = %q, want %q", final.BaseJob, base.ID)
	}
	sum := final.Result.Incremental
	if sum == nil || sum.Reused == 0 {
		t.Fatalf("incremental summary = %+v, want reused panels", sum)
	}
	if sum.Reused+len(sum.Recomputed) != sum.Panels {
		t.Errorf("summary does not add up: %+v", sum)
	}

	st, err := c.Stats(ctx)
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.PanelCache.Hits == 0 {
		t.Errorf("panel cache hits = 0, want > 0 after incremental resubmission")
	}
	if st.PanelCacheHitRate <= 0 {
		t.Errorf("panel cache hit rate = %v, want > 0", st.PanelCacheHitRate)
	}

	// Byte-identity over the wire: a cold server run of the edited design
	// must produce the same result payload (provenance fields aside).
	_, cold := newTestServer(t, jobs.Config{MaxConcurrent: 2})
	coldJob, err := cold.Submit(ctx, client.SubmitRequest{Design: eb.String(), Wait: true})
	if err != nil {
		t.Fatalf("cold submit: %v", err)
	}
	got, want := *final.Result, *coldJob.Result
	got.Incremental, want.Incremental = nil, nil
	got.PinOpt.ElapsedMS, want.PinOpt.ElapsedMS = 0, 0
	got.Metrics, want.Metrics = got.Metrics.ZeroTimes(), want.Metrics.ZeroTimes()
	if !reflect.DeepEqual(got, want) {
		t.Errorf("incremental result differs from cold run:\n inc  %+v\n cold %+v", got, want)
	}
}

// TestUnknownBaseJobRejected: naming a base job the daemon does not know
// is a 400 at submission time.
func TestUnknownBaseJobRejected(t *testing.T) {
	_, c := newTestServer(t, jobs.Config{MaxConcurrent: 1})
	var sb strings.Builder
	d, err := synth.Generate(synth.Spec{Name: "inc-bad", Nets: 10, Width: 60, Height: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := designio.Write(&sb, d); err != nil {
		t.Fatal(err)
	}
	_, err = c.SubmitIncremental(context.Background(), sb.String(), "job-does-not-exist", nil)
	if err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("error = %v, want HTTP 400", err)
	}
}
