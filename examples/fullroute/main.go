// Fullroute compares the three routing flows of the paper's Table 2 —
// sequential pin access planning [12], negotiation routing without pin
// access optimization [21], and CPR — on one benchmark circuit.
//
// Run with a circuit name to use a Table 2 benchmark:
//
//	go run ./examples/fullroute ecc
//
// Without arguments it uses a scaled-down circuit that finishes in a few
// seconds.
package main

import (
	"fmt"
	"log"
	"os"

	"cpr"
)

func main() {
	spec := cpr.Spec{Name: "demo", Nets: 400, Width: 300, Height: 160, Seed: 9}
	if len(os.Args) > 1 {
		var err error
		spec, err = cpr.CircuitByName(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
	}

	flows := []struct {
		label string
		mode  cpr.Mode
	}{
		{"Sequential pin access planning [12]", cpr.ModeSequential},
		{"Routing w/o pin access opt.     [21]", cpr.ModeNoPinOpt},
		{"Concurrent pin access router    CPR ", cpr.ModeCPR},
	}

	fmt.Printf("circuit %s: %d nets on a %dx%d grid\n\n", spec.Name, spec.Nets, spec.Width, spec.Height)
	fmt.Printf("%-38s %8s %8s %9s %8s %10s %10s\n",
		"flow", "Rout.%", "Via#", "WL", "cpu(s)", "initCong", "cutShapes")
	for _, f := range flows {
		// Each flow gets a fresh copy: routing mutates grid state.
		d, err := cpr.GenerateCircuit(spec)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cpr.Run(d, cpr.Options{Mode: f.mode})
		if err != nil {
			log.Fatal(err)
		}
		cut := cpr.AnalyzeCutMask(d, res, cpr.CutMaskParams{})
		m := res.Metrics
		fmt.Printf("%-38s %8.2f %8d %9d %8.2f %10d %10d\n",
			f.label, m.RoutPct, m.Vias, m.WL, m.CPUSeconds, m.InitialCongested,
			cut.MaskComplexity())
	}
	fmt.Println("\nExpected shape (paper Table 2): CPR routes the most nets with the")
	fmt.Println("fewest vias and the lowest runtime; the sequential planner pays for")
	fmt.Println("rule-clean commitments with rip-up churn; the plain negotiation")
	fmt.Println("router starts from several times more congested grids.")
}
