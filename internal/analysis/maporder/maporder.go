// Package maporder flags range statements over maps whose body leaks
// Go's randomized map iteration order into observable results: appending
// to a slice that outlives the loop, accumulating floating point values
// (float addition is not associative, so summation order changes bits —
// exactly the hazard in the paper's LR subgradient accumulation), or
// writing output.
//
// Order-independent bodies — integer counting, keyed map writes,
// extremum selection with a total-order tie-break — are not flagged.
// The collect-keys-then-sort idiom is recognized: an append whose slice
// is passed to a sort.* or slices.* sort call later in the same block is
// order-safe and ignored. Sites that are deliberately order-dependent
// in a benign way carry a //cprlint:ordered <reason> comment.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"cpr/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name:            "maporder",
	Doc:             "flags map iteration whose body appends to an outer slice, accumulates floats, or writes output in nondeterministic key order",
	SuppressAliases: []string{"ordered"},
	Run:             run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			list := stmtList(n)
			for i, stmt := range list {
				rng, ok := unwrapLabel(stmt).(*ast.RangeStmt)
				if !ok || !isMapRange(pass.TypesInfo, rng) {
					continue
				}
				checkLoop(pass, rng, list[i+1:])
			}
			return true
		})
	}
	return nil
}

// stmtList returns the statement list a node directly owns, if any.
func stmtList(n ast.Node) []ast.Stmt {
	switch s := n.(type) {
	case *ast.BlockStmt:
		return s.List
	case *ast.CaseClause:
		return s.Body
	case *ast.CommClause:
		return s.Body
	}
	return nil
}

func unwrapLabel(s ast.Stmt) ast.Stmt {
	for {
		l, ok := s.(*ast.LabeledStmt)
		if !ok {
			return s
		}
		s = l.Stmt
	}
}

func isMapRange(info *types.Info, rng *ast.RangeStmt) bool {
	tv, ok := info.Types[rng.X]
	if !ok {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// checkLoop reports order-dependent effects in one map range body. tail
// is the rest of the loop's enclosing statement list, consulted for the
// sort-after-collect idiom.
func checkLoop(pass *analysis.Pass, rng *ast.RangeStmt, tail []ast.Stmt) {
	sortedAfter := sortedVars(pass.TypesInfo, tail)
	subject := types.ExprString(rng.X)
	reported := map[string]bool{}
	report := func(kind string, format string, args ...any) {
		if !reported[kind] {
			reported[kind] = true
			pass.Reportf(rng.For, format, args...)
		}
	}

	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A closure body runs when called, not per iteration; its
			// own hazards are out of scope here.
			return false
		case *ast.AssignStmt:
			checkAssign(pass, rng, s, subject, sortedAfter, report)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok && isOutputCall(pass.TypesInfo, call) {
				report("write", "range over map %s: writes output in nondeterministic key order (sort the keys first, or annotate //cprlint:ordered <reason>)", subject)
			}
		}
		return true
	})
}

func checkAssign(pass *analysis.Pass, rng *ast.RangeStmt, s *ast.AssignStmt, subject string, sortedAfter map[*types.Var]bool, report func(kind, format string, args ...any)) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for i, rhs := range s.Rhs {
			if i >= len(s.Lhs) {
				break
			}
			lhs := s.Lhs[i]
			v := rootVar(pass.TypesInfo, lhs)
			if v == nil || declaredInside(v, rng) {
				continue
			}
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isAppend(pass.TypesInfo, call) {
				if sortedAfter[v] {
					continue
				}
				report("append:"+v.Name(), "range over map %s: appends to %q in nondeterministic key order (sort the keys first, or annotate //cprlint:ordered <reason>)", subject, v.Name())
				continue
			}
			// x = x + e on floats.
			if bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr); ok && analysis.IsFloat(v.Type()) {
				if sameVar(pass.TypesInfo, bin.X, lhs) || sameVar(pass.TypesInfo, bin.Y, lhs) {
					report("float:"+v.Name(), "range over map %s: accumulates floating point into %q in nondeterministic key order (float addition is order-dependent; sort the keys first, or annotate //cprlint:ordered <reason>)", subject, v.Name())
				}
			}
		}
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		v := rootVar(pass.TypesInfo, s.Lhs[0])
		if v == nil || declaredInside(v, rng) {
			return
		}
		target := pass.TypesInfo.Types[s.Lhs[0]].Type
		if target != nil && analysis.IsFloat(target) {
			report("float:"+v.Name(), "range over map %s: accumulates floating point into %q in nondeterministic key order (float addition is order-dependent; sort the keys first, or annotate //cprlint:ordered <reason>)", subject, v.Name())
		}
	}
}

// rootVar resolves the base variable of an lvalue chain (x, x.f, x[i],
// *x, and combinations).
func rootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			if v == nil {
				v, _ = info.Defs[x].(*types.Var)
			}
			return v
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func sameVar(info *types.Info, a, b ast.Expr) bool {
	va := analysis.ObjectOf(info, a)
	vb := analysis.ObjectOf(info, b)
	return va != nil && va == vb
}

// declaredInside reports whether v's declaration lies within the range
// statement (loop variables and body-locals are order-safe scratch).
func declaredInside(v *types.Var, rng *ast.RangeStmt) bool {
	return v.Pos() >= rng.Pos() && v.Pos() <= rng.End()
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// isOutputCall recognizes calls that externalize data: fmt printing to
// streams and Write/Encode-family methods.
func isOutputCall(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.FuncOf(info, call)
	if fn == nil {
		return false
	}
	name := fn.Name()
	if pkg := fn.Pkg(); pkg != nil && fn.Type().(*types.Signature).Recv() == nil {
		switch pkg.Path() {
		case "fmt":
			switch name {
			case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
				return true
			}
		case "io":
			return name == "WriteString"
		}
		return false
	}
	switch name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Encode":
		return true
	}
	return false
}

// sortedVars finds slices passed to a sort call in the statements after
// the loop: sort.Strings(keys), sort.Slice(keys, ...), slices.Sort(keys),
// and friends mark their argument order-safe.
func sortedVars(info *types.Info, tail []ast.Stmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	for _, stmt := range tail {
		es, ok := unwrapLabel(stmt).(*ast.ExprStmt)
		if !ok {
			continue
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			continue
		}
		fn := analysis.FuncOf(info, call)
		if fn == nil || fn.Pkg() == nil {
			continue
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			continue
		}
		if v := rootVar(info, call.Args[0]); v != nil {
			out[v] = true
		}
	}
	return out
}
