package exchange

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cpr/internal/blockstore"
	"cpr/internal/telemetry"
)

func k(label string) string {
	sum := sha256.Sum256([]byte(label))
	return hex.EncodeToString(sum[:])
}

// blockPeer is a minimal stand-in for a cprd node's block endpoint.
func blockPeer(t *testing.T, blocks map[string][]byte, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits != nil {
			hits.Add(1)
		}
		key := strings.TrimPrefix(r.URL.Path, BlockPath)
		data, ok := blocks[key]
		if !ok {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write(data)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestGetBlockLocalThenPeerThenMiss(t *testing.T) {
	remote := map[string][]byte{k("remote"): []byte("peer-block")}
	peer := blockPeer(t, remote, nil)
	reg := telemetry.NewRegistry()
	store := blockstore.NewMem(0)
	svc := New(store, NewHTTPFetcher([]string{peer.URL}, HTTPOptions{}), reg)

	// Local hit.
	if err := store.Put(k("local"), []byte("local-block")); err != nil {
		t.Fatal(err)
	}
	data, err := svc.GetBlock(context.Background(), k("local"))
	if err != nil || string(data) != "local-block" {
		t.Fatalf("local GetBlock = %q, %v", data, err)
	}

	// Peer hit, then the write-through makes the second read local.
	data, err = svc.GetBlock(context.Background(), k("remote"))
	if err != nil || string(data) != "peer-block" {
		t.Fatalf("peer GetBlock = %q, %v", data, err)
	}
	if ok, _ := store.Has(k("remote")); !ok {
		t.Fatal("peer-fetched block not written through to the local store")
	}
	if _, err := svc.GetBlock(context.Background(), k("remote")); err != nil {
		t.Fatal(err)
	}

	// Miss everywhere.
	if _, err := svc.GetBlock(context.Background(), k("nowhere")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss GetBlock err = %v, want ErrNotFound", err)
	}

	st := svc.Stats()
	if st.Local != 2 || st.Peer != 1 || st.Miss != 1 {
		t.Fatalf("Stats = %+v, want local=2 peer=1 miss=1", st)
	}
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`cpr_blocks_total{source="local"} 2`,
		`cpr_blocks_total{source="peer"} 1`,
		`cpr_blocks_total{source="miss"} 1`,
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics missing %q in:\n%s", want, sb.String())
		}
	}
}

func TestGetBlockNoFetcher(t *testing.T) {
	svc := New(blockstore.NewMem(0), nil, nil)
	if _, err := svc.GetBlock(context.Background(), k("x")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if st := svc.Stats(); st.Miss != 1 {
		t.Fatalf("Stats = %+v, want miss=1", st)
	}
}

func TestSingleflightDedup(t *testing.T) {
	key := k("dedup")
	var hits atomic.Int64
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		<-release
		_, _ = w.Write([]byte("slow-block"))
	}))
	defer srv.Close()

	svc := New(blockstore.NewMem(0), NewHTTPFetcher([]string{srv.URL}, HTTPOptions{Timeout: 10 * time.Second}), nil)
	const callers = 8
	var wg sync.WaitGroup
	results := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, err := svc.GetBlock(context.Background(), key)
			if err == nil {
				results[i] = string(data)
			}
		}(i)
	}
	// Let the callers pile onto the single flight, then release the peer.
	for hits.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := hits.Load(); got != 1 {
		t.Fatalf("peer saw %d fetches for one key, want 1", got)
	}
	for i, r := range results {
		if r != "slow-block" {
			t.Fatalf("caller %d got %q", i, r)
		}
	}
}

func TestFetcherTriesPeersInOrder(t *testing.T) {
	key := k("second")
	var aHits atomic.Int64
	peerA := blockPeer(t, nil, &aHits) // 404s everything
	peerB := blockPeer(t, map[string][]byte{key: []byte("b-block")}, nil)
	f := NewHTTPFetcher([]string{peerA.URL, peerB.URL}, HTTPOptions{})

	data, err := f.Fetch(context.Background(), key)
	if err != nil || string(data) != "b-block" {
		t.Fatalf("Fetch = %q, %v", data, err)
	}
	if aHits.Load() != 1 {
		t.Fatalf("first peer saw %d requests, want 1", aHits.Load())
	}
}

func TestFetcherBackoffSkipsDeadPeer(t *testing.T) {
	key := k("backoff")
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer dead.Close()
	var deadHits atomic.Int64
	deadCounting := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		deadHits.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer deadCounting.Close()
	live := blockPeer(t, map[string][]byte{key: []byte("live-block")}, nil)

	f := NewHTTPFetcher([]string{deadCounting.URL, live.URL}, HTTPOptions{
		BackoffBase: time.Hour, // one failure benches the peer for the test's lifetime
		BackoffMax:  time.Hour,
	})
	for i := 0; i < 3; i++ {
		data, err := f.Fetch(context.Background(), key)
		if err != nil || string(data) != "live-block" {
			t.Fatalf("Fetch #%d = %q, %v", i, data, err)
		}
	}
	if got := deadHits.Load(); got != 1 {
		t.Fatalf("dead peer saw %d requests, want 1 (backoff not applied)", got)
	}

	// Clock control: after the penalty window the peer is retried.
	f2 := NewHTTPFetcher([]string{dead.URL}, HTTPOptions{BackoffBase: time.Minute, BackoffMax: time.Hour})
	now := time.Unix(1000, 0)
	f2.now = func() time.Time { return now }
	_, _ = f2.Fetch(context.Background(), key) // records the failure
	if !f2.inBackoff(f2.peers[0]) {
		t.Fatal("peer not in backoff after failure")
	}
	now = now.Add(2 * time.Minute)
	if f2.inBackoff(f2.peers[0]) {
		t.Fatal("peer still in backoff after the penalty window")
	}
	// A second consecutive failure doubles the penalty.
	_, _ = f2.Fetch(context.Background(), key)
	if want := now.Add(2 * time.Minute); !f2.peers[0].until.Equal(want) {
		t.Fatalf("second penalty until = %v, want %v", f2.peers[0].until, want)
	}
}

func TestFetcherPerPeerTimeout(t *testing.T) {
	key := k("slow")
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer slow.Close()
	live := blockPeer(t, map[string][]byte{key: []byte("fast-block")}, nil)

	f := NewHTTPFetcher([]string{slow.URL, live.URL}, HTTPOptions{Timeout: 50 * time.Millisecond})
	start := time.Now()
	data, err := f.Fetch(context.Background(), key)
	if err != nil || string(data) != "fast-block" {
		t.Fatalf("Fetch = %q, %v", data, err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("slow peer was not timed out (took %v)", elapsed)
	}
}

func TestFetcherNormalizesPeerURLs(t *testing.T) {
	f := NewHTTPFetcher([]string{" node-a:8080 ", "", "http://node-b:8080/"}, HTTPOptions{})
	got := f.Peers()
	want := []string{"http://node-a:8080", "http://node-b:8080"}
	if len(got) != len(want) {
		t.Fatalf("Peers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Peers = %v, want %v", got, want)
		}
	}
}

func TestFetcherRejectsMalformedKey(t *testing.T) {
	f := NewHTTPFetcher([]string{"http://localhost:1"}, HTTPOptions{})
	if _, err := f.Fetch(context.Background(), "../evil"); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Fetch(malformed) = %v, want a malformed-key error", err)
	}
}

func TestGetBlockContextCancelled(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()
	svc := New(blockstore.NewMem(0), NewHTTPFetcher([]string{srv.URL}, HTTPOptions{Timeout: 10 * time.Second}), nil)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := svc.GetBlock(ctx, k("cancelled")); err == nil {
		t.Fatal("GetBlock with cancelled context returned nil error")
	}
}
