package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cpr/internal/jobs"
	"cpr/internal/telemetry"
)

// eventSubBuf is the per-subscriber channel depth. A reader that falls
// more than this many events behind starts losing events (counted on
// cpr_events_dropped_total) instead of slowing the solver.
const eventSubBuf = 256

// defaultEventHeartbeat keeps idle SSE connections alive through
// proxies and lets clients detect dead ones.
const defaultEventHeartbeat = 15 * time.Second

// isTerminalEvent reports whether the event ends a job's stream.
func isTerminalEvent(ev telemetry.Event) bool {
	return ev.Type == "job_done" || ev.Type == "job_failed"
}

// writeSSE renders one event as an SSE frame. The frame id is the bus
// sequence number, so a reconnecting client's Last-Event-ID resumes the
// stream exactly where it broke.
func writeSSE(w http.ResponseWriter, ev telemetry.Event) {
	data, err := json.Marshal(ev)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, data)
}

// writeSSEEnd closes a stream with a synthetic (unsequenced) frame
// carrying the job's final state.
func writeSSEEnd(w http.ResponseWriter, job *jobs.Job) {
	snap := job.Snapshot()
	fmt.Fprintf(w, "event: stream_end\ndata: {\"state\":%q}\n\n", snap.State.String())
}

// resumeAfter extracts the resume point: the standard Last-Event-ID
// header (set by EventSource on reconnect), with an ?after= query
// fallback for plain HTTP clients.
func resumeAfter(r *http.Request) uint64 {
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("after")
	}
	if v == "" {
		return 0
	}
	n, err := strconv.ParseUint(v, 10, 64)
	if err != nil {
		return 0
	}
	return n
}

// handleJobEvents streams a job's events as server-sent events: ring
// replay first (honoring Last-Event-ID), then live events until the job
// reaches a terminal state, the client disconnects, or the server shuts
// down. Heartbeat comments keep idle connections alive. The subscription
// is drop-not-block: a stalled reader loses events rather than ever
// back-pressuring the solver (DESIGN.md §4j).
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.mgr.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", id))
		return
	}
	if s.events == nil {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no event stream for job %q (event streaming disabled)", id))
		return
	}
	if snap := job.Snapshot(); snap.Cached {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("no event stream for job %q (served from cache)", id))
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}

	// Subscribe before writing headers: replay and registration are
	// atomic on the bus, so no event can fall between them.
	replay, ch, cancel := s.events.Subscribe(id, resumeAfter(r), eventSubBuf)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	terminal := false
	for _, ev := range replay {
		writeSSE(w, ev)
		terminal = terminal || isTerminalEvent(ev)
	}
	flusher.Flush()
	if terminal {
		writeSSEEnd(w, job)
		flusher.Flush()
		return
	}

	hb := s.eventHeartbeat
	if hb <= 0 {
		hb = defaultEventHeartbeat
	}
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				return
			}
			writeSSE(w, ev)
			flusher.Flush()
			if isTerminalEvent(ev) {
				writeSSEEnd(w, job)
				flusher.Flush()
				return
			}
		case <-ticker.C:
			fmt.Fprint(w, ": hb\n\n")
			flusher.Flush()
		case <-r.Context().Done():
			return
		case <-job.Done():
			// The terminal event is published before done closes, so it is
			// already buffered (or was dropped): drain without blocking,
			// then close the stream.
			for {
				select {
				case ev := <-ch:
					writeSSE(w, ev)
					if isTerminalEvent(ev) {
						writeSSEEnd(w, job)
						flusher.Flush()
						return
					}
				default:
					writeSSEEnd(w, job)
					flusher.Flush()
					return
				}
			}
		}
	}
}

// handleDebugEvents dumps the flight-recorder ring: the most recent
// structured events across all jobs, available with no tracing or
// streaming flags set — the post-mortem view of a wedged daemon.
func (s *Server) handleDebugEvents(w http.ResponseWriter, r *http.Request) {
	if s.events == nil {
		writeError(w, http.StatusNotFound, errors.New("event recorder disabled"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_ = s.events.WriteJSON(w)
}
