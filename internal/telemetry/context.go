package telemetry

import "context"

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	registryKey
	emitterKey
)

// WithTracer returns a context carrying the tracer. Instrumented code
// retrieves it implicitly through StartSpan.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, t)
}

// TracerFrom returns the context's tracer, or nil.
func TracerFrom(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRegistry returns a context carrying the metrics registry.
func WithRegistry(ctx context.Context, r *Registry) context.Context {
	if r == nil {
		return ctx
	}
	return context.WithValue(ctx, registryKey, r)
}

// RegistryFrom returns the context's metrics registry, or nil (whose
// instrument constructors return nil no-op instruments).
func RegistryFrom(ctx context.Context) *Registry {
	r, _ := ctx.Value(registryKey).(*Registry)
	return r
}

// WithEmitter returns a context carrying the event emitter. Instrumented
// code retrieves it with EmitterFrom and emits unconditionally — a nil
// emitter's Emit is a no-op.
func WithEmitter(ctx context.Context, e *Emitter) context.Context {
	if e == nil {
		return ctx
	}
	return context.WithValue(ctx, emitterKey, e)
}

// EmitterFrom returns the context's event emitter, or nil.
func EmitterFrom(ctx context.Context) *Emitter {
	e, _ := ctx.Value(emitterKey).(*Emitter)
	return e
}

// SpanFrom returns the context's current span, or nil.
func SpanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// StartSpan opens a span named name under the context's current span
// (root if none) and returns a derived context in which the new span is
// current. Without a tracer in ctx it returns (ctx, nil) — and a nil
// span's methods are all no-ops — so call sites need no telemetry
// conditionals.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	t := TracerFrom(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := t.StartSpan(name, SpanFrom(ctx))
	return context.WithValue(ctx, spanKey, sp), sp
}
