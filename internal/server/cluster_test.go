package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"cpr/client"
	"cpr/internal/blockstore"
	"cpr/internal/design"
	"cpr/internal/designio"
	"cpr/internal/exchange"
	"cpr/internal/jobs"
	"cpr/internal/synth"
	"cpr/internal/telemetry"
)

// clusterNode is one cprd daemon wired the way cmd/cprd wires it: a
// block-backed result cache over a local store, optionally fetching
// misses from peer daemons, serving /v1/blocks from the local store.
type clusterNode struct {
	mgr    *jobs.Manager
	exch   *exchange.Service
	client *client.Client
	url    string
	close  func()
}

// newClusterNode starts a node on an httptest listener. store survives
// the node when the caller owns it (the restart test reuses a disk
// store across two node lifetimes).
func newClusterNode(t *testing.T, store blockstore.Store, peers []string) *clusterNode {
	return newObservedClusterNode(t, store, peers, "")
}

// newObservedClusterNode is newClusterNode with the full observability
// stack cmd/cprd wires when node != "": per-job tracing, an event bus,
// per-peer fetch metrics, and a node name for cross-node attribution.
func newObservedClusterNode(t *testing.T, store blockstore.Store, peers []string, node string) *clusterNode {
	t.Helper()
	reg := telemetry.NewRegistry()
	cfg := jobs.Config{MaxConcurrent: 2, Metrics: reg}
	hopts := exchange.HTTPOptions{Timeout: 5 * time.Second}
	if node != "" {
		cfg.TraceJobs = true
		cfg.Events = telemetry.NewEventBus(0)
		hopts.Registry = reg
	}
	var fetcher exchange.Fetcher
	if len(peers) > 0 {
		fetcher = exchange.NewHTTPFetcher(peers, hopts)
	}
	exch := exchange.New(store, fetcher, reg)
	mgr := jobs.New(cfg, jobs.NewExchangedResultCache(64, 256, 256, exch))
	srv := New(mgr)
	srv.SetExchange(exch, peers)
	if node != "" {
		srv.SetEvents(cfg.Events)
		srv.SetNode(node)
	}
	ts := httptest.NewServer(srv.Handler())
	n := &clusterNode{mgr: mgr, exch: exch, client: client.New(ts.URL), url: ts.URL, close: ts.Close}
	t.Cleanup(ts.Close)
	return n
}

func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	return string(body)
}

// stripTiming zeroes the wall-clock fields of a wire result in place:
// two independent computes of the same design agree on everything else.
func stripTiming(r *client.Result) {
	r.Metrics.CPUSeconds = 0
	r.Metrics.OptimizeSeconds = 0
	r.Metrics.RouteSeconds = 0
	r.Metrics.VerifySeconds = 0
	if r.PinOpt != nil {
		r.PinOpt.ElapsedMS = 0
	}
}

// TestTwoNodeClusterResolvesBlocksFromPeer is the cluster contract
// end-to-end: node A computes a result cold; node B, configured with A
// as a peer, serves the identical submission from A's blocks without
// running the optimizer, and its exchange counters attribute the blocks
// to the peer.
func TestTwoNodeClusterResolvesBlocksFromPeer(t *testing.T) {
	ctx := context.Background()
	nodeA := newClusterNode(t, blockstore.NewMem(0), nil)
	nodeB := newClusterNode(t, blockstore.NewMem(0), []string{nodeA.url})

	first, err := nodeA.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("node A submit: %v", err)
	}
	if first.State != "done" || first.Cached {
		t.Fatalf("node A job = %+v, want done uncached", first)
	}

	second, err := nodeB.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("node B submit: %v", err)
	}
	if second.State != "done" || !second.Cached {
		t.Fatalf("node B job = %+v, want served from peer blocks without running", second)
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatalf("peer-resolved result differs:\n A %+v\n B %+v", first.Result, second.Result)
	}

	exSt := nodeB.exch.Stats()
	if exSt.Peer == 0 {
		t.Fatalf("node B exchange stats = %+v, want peer resolutions > 0", exSt)
	}
	if exSt.PeerErrors != 0 {
		t.Fatalf("node B exchange stats = %+v, want no peer errors", exSt)
	}

	// The wire surfaces the same attribution: /v1/stats carries the
	// exchange counters and peer list, /metrics the labeled series.
	st, err := nodeB.client.Stats(ctx)
	if err != nil {
		t.Fatalf("node B stats: %v", err)
	}
	if st.Exchange == nil || st.Exchange.Peer == 0 {
		t.Fatalf("wire stats exchange = %+v, want peer > 0", st.Exchange)
	}
	if st.Blockstore == nil || st.Blockstore.Blocks == 0 {
		t.Fatalf("wire stats blockstore = %+v, want blocks > 0 (write-through)", st.Blockstore)
	}
	if len(st.Peers) != 1 || st.Peers[0] != nodeA.url {
		t.Fatalf("wire stats peers = %v, want [%s]", st.Peers, nodeA.url)
	}
	mtx := scrapeMetrics(t, nodeB.url)
	if !strings.Contains(mtx, `cpr_blocks_total{source="peer"}`) {
		t.Fatalf("node B /metrics missing peer-sourced block counter:\n%s", mtx)
	}

	// Node A must not have fetched anything in return: serving blocks is
	// strictly observational.
	if aSt := nodeA.exch.Stats(); aSt.Peer != 0 {
		t.Fatalf("node A exchange stats = %+v, want no peer fetches", aSt)
	}

	// Node B re-serves the block-resolved result from its own store now:
	// a third submission must not touch the peer again.
	peerBefore := nodeB.exch.Stats().Peer
	third, err := nodeB.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("node B resubmit: %v", err)
	}
	if !third.Cached {
		t.Fatalf("node B resubmit = %+v, want cached", third)
	}
	if after := nodeB.exch.Stats().Peer; after != peerBefore {
		t.Fatalf("resubmission refetched from peer: %d -> %d", peerBefore, after)
	}
}

// TestClusterPeerDownFallsBackToCompute proves the exchange is strictly
// an accelerator: with its only peer unreachable, a node still computes
// the result itself, identically.
func TestClusterPeerDownFallsBackToCompute(t *testing.T) {
	ctx := context.Background()
	nodeA := newClusterNode(t, blockstore.NewMem(0), nil)
	ref, err := nodeA.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("reference submit: %v", err)
	}

	// 127.0.0.1:1 refuses connections immediately.
	nodeB := newClusterNode(t, blockstore.NewMem(0), []string{"http://127.0.0.1:1"})
	got, err := nodeB.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("node B submit: %v", err)
	}
	if got.State != "done" || got.Cached {
		t.Fatalf("node B job = %+v, want computed locally", got)
	}
	stripTiming(ref.Result)
	stripTiming(got.Result)
	if !reflect.DeepEqual(ref.Result, got.Result) {
		t.Fatalf("fallback result differs:\n ref %+v\n got %+v", ref.Result, got.Result)
	}
	if exSt := nodeB.exch.Stats(); exSt.Peer != 0 || exSt.Miss == 0 {
		t.Fatalf("node B exchange stats = %+v, want misses and no peer hits", exSt)
	}
}

// TestDiskBlockstoreSurvivesRestart kills a node and starts a fresh one
// on the same blockstore directory: the new node serves the old node's
// result without recompute, even though every in-memory cache level
// started empty.
func TestDiskBlockstoreSurvivesRestart(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	store, err := blockstore.OpenDisk(dir, blockstore.DiskOptions{})
	if err != nil {
		t.Fatalf("open blockstore: %v", err)
	}
	nodeA := newClusterNode(t, store, nil)
	first, err := nodeA.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("submit before restart: %v", err)
	}
	if first.Cached {
		t.Fatalf("first run = %+v, want computed", first)
	}
	nodeA.close()

	reopened, err := blockstore.OpenDisk(dir, blockstore.DiskOptions{})
	if err != nil {
		t.Fatalf("reopen blockstore: %v", err)
	}
	nodeB := newClusterNode(t, reopened, nil)
	second, err := nodeB.client.Submit(ctx, client.SubmitRequest{Spec: &smallSpec, Wait: true})
	if err != nil {
		t.Fatalf("submit after restart: %v", err)
	}
	if second.State != "done" || !second.Cached {
		t.Fatalf("post-restart job = %+v, want served from disk blocks", second)
	}
	if !reflect.DeepEqual(first.Result, second.Result) {
		t.Fatalf("post-restart result differs:\n before %+v\n after  %+v", first.Result, second.Result)
	}
	st, err := nodeB.client.Stats(ctx)
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Stages["run"].Count != 0 {
		t.Fatalf("run stage count = %d, want 0 (no recompute after restart)", st.Stages["run"].Count)
	}
	if st.Exchange == nil || st.Exchange.Local == 0 {
		t.Fatalf("exchange stats = %+v, want local resolutions > 0", st.Exchange)
	}
}

// TestBlocksEndpointServesLocalOnly pins the anti-storm contract at the
// HTTP surface: a node answers /v1/blocks for blocks it holds, 404s
// blocks it does not — without consulting its own peers — and rejects
// malformed keys before touching the store.
func TestBlocksEndpointServesLocalOnly(t *testing.T) {
	nodeA := newClusterNode(t, blockstore.NewMem(0), nil)
	// nodeB peers with A and holds nothing: a block request to B must
	// not be forwarded to A.
	nodeB := newClusterNode(t, blockstore.NewMem(0), []string{nodeA.url})

	key := strings.Repeat("ab", 32)
	if err := nodeA.exch.Put(key, []byte("payload")); err != nil {
		t.Fatalf("put: %v", err)
	}

	resp, err := http.Get(nodeA.url + exchange.BlockPath + key)
	if err != nil {
		t.Fatalf("GET block: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "payload" {
		t.Fatalf("GET block = %d %q, want 200 payload", resp.StatusCode, body)
	}

	resp, err = http.Head(nodeA.url + exchange.BlockPath + key)
	if err != nil {
		t.Fatalf("HEAD block: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD block = %d, want 200", resp.StatusCode)
	}

	resp, err = http.Get(nodeB.url + exchange.BlockPath + key)
	if err != nil {
		t.Fatalf("GET block from B: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent block = %d, want 404 (no transitive fetch)", resp.StatusCode)
	}
	if exSt := nodeB.exch.Stats(); exSt.Peer != 0 {
		t.Fatalf("serving /v1/blocks triggered a peer fetch: %+v", exSt)
	}

	resp, err = http.Get(nodeA.url + exchange.BlockPath + "not-a-key")
	if err != nil {
		t.Fatalf("GET malformed: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("GET malformed key = %d, want 400", resp.StatusCode)
	}
}

// TestClusterStitchedTrace is the cross-node tracing contract: when node
// B resolves panel blocks from peer A during a traced run, B's trace
// contains the peer_fetch spans with A's serve_block work adopted as
// remote child spans, and A's flight recorder attributes the serves to
// B's trace id — one stitched trace across both nodes.
func TestClusterStitchedTrace(t *testing.T) {
	ctx := context.Background()
	nodeA := newObservedClusterNode(t, blockstore.NewMem(0), nil, "node-a")
	nodeB := newObservedClusterNode(t, blockstore.NewMem(0), []string{nodeA.url}, "node-b")

	d, err := synth.Generate(synth.Spec{Name: "stitch", Nets: 40, Width: 100, Height: 40, Seed: 9})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	var sb strings.Builder
	if err := designio.Write(&sb, d); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := nodeA.client.Submit(ctx, client.SubmitRequest{Design: sb.String(), Wait: true}); err != nil {
		t.Fatalf("node A submit: %v", err)
	}

	// One moved pin changes the design-level key (so B really runs) while
	// leaving most panel keys equal to A's — B's panel-cache misses
	// resolve from A's blocks mid-run, under B's job trace.
	edited := *d
	edited.Pins = append([]design.Pin(nil), d.Pins...)
	edited.Pins[0].Shape.X0++
	edited.Pins[0].Shape.X1++
	if err := edited.Validate(); err != nil {
		t.Fatalf("edit invalid: %v", err)
	}
	var eb strings.Builder
	if err := designio.Write(&eb, &edited); err != nil {
		t.Fatalf("write edited: %v", err)
	}
	job, err := nodeB.client.Submit(ctx, client.SubmitRequest{Design: eb.String(), Wait: true})
	if err != nil {
		t.Fatalf("node B submit: %v", err)
	}
	if job.State != "done" || job.Cached {
		t.Fatalf("node B job = %+v, want a real (uncached) run", job)
	}
	if nodeB.exch.Stats().Peer == 0 {
		t.Fatal("node B resolved nothing from its peer; the stitched-trace scenario did not occur")
	}

	raw, err := nodeB.client.Trace(ctx, job.ID, client.TraceJSON)
	if err != nil {
		t.Fatalf("node B trace: %v", err)
	}
	var trace struct {
		TraceID string `json:"trace_id"`
		Spans   []struct {
			ID     int    `json:"id"`
			Parent int    `json:"parent"`
			Name   string `json:"name"`
			Attrs  []struct {
				Key   string `json:"key"`
				Value any    `json:"value"`
			} `json:"attrs"`
		} `json:"spans"`
	}
	if err := json.Unmarshal(raw, &trace); err != nil {
		t.Fatalf("decode trace: %v", err)
	}
	if trace.TraceID == "" {
		t.Fatal("node B trace has no trace id")
	}

	// The peer hop must appear as peer_fetch -> serve_block (remote),
	// parent-linked, with the serving node's name on the remote span.
	fetchIDs := map[int]bool{}
	for _, sp := range trace.Spans {
		if sp.Name == "peer_fetch" {
			fetchIDs[sp.ID] = true
		}
	}
	if len(fetchIDs) == 0 {
		t.Fatal("trace has no peer_fetch spans")
	}
	stitched := 0
	for _, sp := range trace.Spans {
		if sp.Name != "serve_block" || !fetchIDs[sp.Parent] {
			continue
		}
		var remote, named bool
		for _, a := range sp.Attrs {
			remote = remote || (a.Key == "remote" && a.Value == true)
			named = named || (a.Key == "node" && a.Value == "node-a")
		}
		if !remote {
			t.Fatalf("serve_block span %d not marked remote: %+v", sp.ID, sp.Attrs)
		}
		if !named {
			t.Fatalf("serve_block span %d missing serving node name: %+v", sp.ID, sp.Attrs)
		}
		stitched++
	}
	if stitched == 0 {
		t.Fatal("no serve_block span parent-linked under a peer_fetch span")
	}

	// Node A saw the same trace id: its flight recorder's block_serve
	// events carry B's propagated span context.
	resp, err := http.Get(nodeA.url + "/v1/debug/events")
	if err != nil {
		t.Fatalf("node A debug events: %v", err)
	}
	defer resp.Body.Close()
	var dump struct {
		Events []struct {
			Type string         `json:"type"`
			Data map[string]any `json:"data"`
		} `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decode node A dump: %v", err)
	}
	serves, propagated := 0, 0
	for _, ev := range dump.Events {
		if ev.Type != "block_serve" {
			continue
		}
		serves++
		if tid, _ := ev.Data["trace"].(string); tid == trace.TraceID {
			propagated++
		}
		if node, _ := ev.Data["node"].(string); node != "node-a" {
			t.Fatalf("block_serve event missing node name: %+v", ev.Data)
		}
	}
	if serves == 0 {
		t.Fatal("node A recorded no block_serve events")
	}
	if propagated == 0 {
		t.Fatalf("none of node A's %d block_serve events carry node B's trace id %s", serves, trace.TraceID)
	}
}
