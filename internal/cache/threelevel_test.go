package cache

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestRouteKeyDomainSeparation(t *testing.T) {
	// The same hash/fingerprint pair must address different blocks at
	// each level: the tags keep the keyspaces disjoint.
	k1 := Key("hash", "fp")
	k2 := PanelKey("hash", "fp")
	k3 := RouteKey("hash", "fp")
	if k1 == k2 || k1 == k3 || k2 == k3 {
		t.Fatalf("keyspaces collide: %s %s %s", k1, k2, k3)
	}
	if RouteKey("hash", "fp") != k3 {
		t.Fatal("RouteKey is not stable")
	}
}

func TestThreeLevelIndependentAccounting(t *testing.T) {
	tl := NewThreeLevel[string, int, bool](2, 2, 2)
	tl.Design.Put("d1", "result")
	tl.Panel.Put("p1", 41)
	tl.Route.Put("r1", true)

	if _, ok := tl.Design.Get("d1"); !ok {
		t.Fatal("design level lost its entry")
	}
	if _, ok := tl.Panel.Get("missing"); ok {
		t.Fatal("panel level fabricated an entry")
	}
	if _, ok := tl.Route.Get("r1"); !ok {
		t.Fatal("route level lost its entry")
	}

	st := tl.Stats()
	if st.Design.Hits != 1 || st.Design.Misses != 0 {
		t.Fatalf("design stats = %+v", st.Design)
	}
	if st.Panel.Hits != 0 || st.Panel.Misses != 1 {
		t.Fatalf("panel stats = %+v", st.Panel)
	}
	if st.Route.Hits != 1 || st.Route.Misses != 0 {
		t.Fatalf("route stats = %+v", st.Route)
	}
	if st.Design.Entries != 1 || st.Panel.Entries != 1 || st.Route.Entries != 1 {
		t.Fatalf("entry counts = %d %d %d", st.Design.Entries, st.Panel.Entries, st.Route.Entries)
	}
}

func TestThreeLevelPerLevelEviction(t *testing.T) {
	tl := NewThreeLevel[string, string, string](1, 2, 3)
	for i := 0; i < 4; i++ {
		k := fmt.Sprintf("k%d", i)
		tl.Design.Put(k, k)
		tl.Panel.Put(k, k)
		tl.Route.Put(k, k)
	}
	st := tl.Stats()
	if st.Design.Entries != 1 || st.Design.Evictions != 3 {
		t.Fatalf("design after overflow = %+v", st.Design)
	}
	if st.Panel.Entries != 2 || st.Panel.Evictions != 2 {
		t.Fatalf("panel after overflow = %+v", st.Panel)
	}
	if st.Route.Entries != 3 || st.Route.Evictions != 1 {
		t.Fatalf("route after overflow = %+v", st.Route)
	}
	// Eviction in one level leaves the others untouched: k0 survives
	// where capacity allowed.
	if tl.Design.Contains("k0") {
		t.Fatal("design kept an entry beyond capacity")
	}
	if !tl.Route.Contains("k1") {
		t.Fatal("route evicted more than its overflow")
	}
}

func TestThreeLevelContainsCounterNeutral(t *testing.T) {
	tl := NewThreeLevel[string, int, bool](4, 4, 4)
	tl.Panel.Put("p", 7)
	for i := 0; i < 5; i++ {
		tl.Panel.Contains("p")
		tl.Panel.Contains("absent")
		tl.Design.Contains("absent")
		tl.Route.Contains("absent")
	}
	st := tl.Stats()
	if st.Design.Hits+st.Design.Misses+st.Panel.Hits+st.Panel.Misses+st.Route.Hits+st.Route.Misses != 0 {
		t.Fatalf("Contains touched counters: %+v", st)
	}
	// Contains must also not refresh recency: p becomes the LRU victim
	// even after the Contains probes above.
	small := NewThreeLevel[string, int, bool](4, 2, 4)
	small.Panel.Put("old", 1)
	small.Panel.Put("new", 2)
	small.Panel.Contains("old")
	small.Panel.Put("newest", 3)
	if small.Panel.Contains("old") {
		t.Fatal("Contains refreshed LRU recency")
	}
}

// memSource is an in-memory BlockSource with scriptable peer blocks.
type memSource struct {
	local map[string][]byte
	peer  map[string][]byte
	// peerFetches counts GetBlock calls that fell through to peer data.
	peerFetches int
}

func newMemSource() *memSource {
	return &memSource{local: map[string][]byte{}, peer: map[string][]byte{}}
}

func (s *memSource) GetBlock(_ context.Context, key string) ([]byte, error) {
	if d, ok := s.local[key]; ok {
		return d, nil
	}
	if d, ok := s.peer[key]; ok {
		s.peerFetches++
		s.local[key] = d // write-through, as the exchange service does
		return d, nil
	}
	return nil, errors.New("not found")
}

func (s *memSource) Put(key string, data []byte) error {
	s.local[key] = append([]byte(nil), data...)
	return nil
}

func (s *memSource) Has(key string) (bool, error) {
	_, ok := s.local[key]
	return ok, nil
}

// strCodec encodes "key\x00payload" so decoded values carry their key.
func strEnc(v string) ([]byte, error) {
	if strings.HasPrefix(v, "keyless") {
		return nil, errors.New("keyless value")
	}
	return []byte(v), nil
}

func strDec(data []byte) (string, error) {
	if strings.HasPrefix(string(data), "corrupt") {
		return "", errors.New("corrupt block")
	}
	return string(data), nil
}

func TestBackedLevelFallsThroughToSource(t *testing.T) {
	src := newMemSource()
	b := NewBacked[string](2, src, strEnc, strDec, nil)

	// Memory miss, local block hit.
	src.local["k1"] = []byte("from-store")
	if v, ok := b.Get("k1"); !ok || v != "from-store" {
		t.Fatalf("Get(k1) = %q, %v", v, ok)
	}
	// Now cached in memory: stats show one (reclassified) hit so far.
	if st := b.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats after store hit = %+v", st)
	}
	if v, ok := b.Get("k1"); !ok || v != "from-store" {
		t.Fatalf("second Get(k1) = %q, %v", v, ok)
	}
	if st := b.Stats(); st.Hits != 2 || st.Misses != 0 {
		t.Fatalf("stats after memory hit = %+v", st)
	}

	// Memory+local miss, peer hit.
	src.peer["k2"] = []byte("from-peer")
	if v, ok := b.Get("k2"); !ok || v != "from-peer" {
		t.Fatalf("Get(k2) = %q, %v", v, ok)
	}
	if src.peerFetches != 1 {
		t.Fatalf("peer fetches = %d, want 1", src.peerFetches)
	}

	// Total miss.
	if _, ok := b.Get("k3"); ok {
		t.Fatal("Get(k3) fabricated a value")
	}
	if st := b.Stats(); st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("final stats = %+v", st)
	}
}

func TestBackedPutWritesBothTiers(t *testing.T) {
	src := newMemSource()
	b := NewBacked[string](2, src, strEnc, strDec, nil)
	b.Put("k", "value")
	if string(src.local["k"]) != "value" {
		t.Fatal("Put did not reach the block source")
	}
	// Evict from memory; the value must come back from the store.
	b.Put("k2", "v2")
	b.Put("k3", "v3")
	if b.mem.Contains("k") {
		t.Fatal("test setup: k should be evicted from memory")
	}
	if v, ok := b.Get("k"); !ok || v != "value" {
		t.Fatalf("Get after memory eviction = %q, %v", v, ok)
	}
}

func TestBackedKeylessValuesStayMemoryOnly(t *testing.T) {
	src := newMemSource()
	b := NewBacked[string](4, src, strEnc, strDec, nil)
	b.Put("", "anything")
	if b.Len() != 0 || len(src.local) != 0 {
		t.Fatal("empty key was stored")
	}
	// The encoder rejects "keyless*" values: memory-only.
	b.Put("k", "keyless-artifact")
	if len(src.local) != 0 {
		t.Fatal("encoder-rejected value reached the block source")
	}
	if v, ok := b.Get("k"); !ok || v != "keyless-artifact" {
		t.Fatalf("memory tier lost the keyless value: %q, %v", v, ok)
	}
}

func TestBackedRejectsCorruptAndMismatchedBlocks(t *testing.T) {
	src := newMemSource()
	src.local["bad"] = []byte("corrupt-bytes")
	b := NewBacked[string](4, src, strEnc, strDec, nil)
	if _, ok := b.Get("bad"); ok {
		t.Fatal("corrupt block was decoded into a hit")
	}

	// keyOf mismatch: decoded value claims a different key.
	keyed := NewBacked[string](4, src, strEnc, strDec, func(v string) string { return "expected" })
	src.local["other"] = []byte("value-claiming-expected")
	if _, ok := keyed.Get("other"); ok {
		t.Fatal("key-mismatched block was spliced")
	}
	if v, ok := keyed.Get("expected"); ok && v == "" {
		t.Fatal("unexpected empty hit")
	}
}

func TestBackedContainsChecksLocalOnly(t *testing.T) {
	src := newMemSource()
	b := NewBacked[string](4, src, strEnc, strDec, nil)
	src.local["loc"] = []byte("x")
	src.peer["far"] = []byte("y")
	if !b.Contains("loc") {
		t.Fatal("Contains missed a local block")
	}
	if b.Contains("far") {
		t.Fatal("Contains consulted peers")
	}
	if src.peerFetches != 0 {
		t.Fatal("Contains triggered a peer fetch")
	}
	if st := b.Stats(); st.Hits+st.Misses != 0 {
		t.Fatalf("Contains touched counters: %+v", st)
	}
}

func TestBackedSatisfiesLevel(t *testing.T) {
	var _ Level[string] = NewBacked[string](1, newMemSource(), strEnc, strDec, nil)
	var _ Level[string] = New[string](1)
}
