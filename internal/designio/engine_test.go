package designio

import (
	"bytes"
	"strings"
	"testing"

	"cpr/internal/tech"
)

// TestEngineRoundTrip covers the rule-engine record for every engine:
// the patterning selection survives a Write/Read cycle exactly and the
// serialization is byte-identical across round trips (the property the
// content-addressed design key rests on).
func TestEngineRoundTrip(t *testing.T) {
	cases := []tech.Patterning{
		{Engine: tech.EngineSADP},
		{Engine: tech.EngineSADP, CutSpacing: 3, MergeTolerance: 1},
		{Engine: tech.EngineLELE},
		{Engine: tech.EngineLELE, SameMaskSpacing: 4},
		{Engine: tech.EngineTPL},
		{Engine: tech.EngineTPL, ColorSpacing: 3, StitchPenalty: 2},
	}
	for _, p := range cases {
		d := sample(t)
		tc := *d.Tech
		tc.Patterning = p
		d.Tech = &tc

		var buf bytes.Buffer
		if err := Write(&buf, d); err != nil {
			t.Fatalf("%v: Write: %v", p, err)
		}
		first := buf.String()
		if !strings.Contains(first, "rule-engine "+p.Spec()+"\n") {
			t.Fatalf("%v: serialized design missing rule-engine record:\n%s", p, first)
		}
		got, err := Read(strings.NewReader(first))
		if err != nil {
			t.Fatalf("%v: Read: %v", p, err)
		}
		if got.Tech.Patterning != p {
			t.Fatalf("patterning mutated across round trip: wrote %+v, read %+v",
				p, got.Tech.Patterning)
		}
		var again bytes.Buffer
		if err := Write(&again, got); err != nil {
			t.Fatalf("%v: re-Write: %v", p, err)
		}
		if again.String() != first {
			t.Fatalf("%v: round trip not byte-identical:\n--- wrote\n%s--- rewrote\n%s",
				p, first, again.String())
		}
	}
}

// TestZeroPatterningIsByteInvisible pins the compatibility contract: a
// design with the zero Patterning serializes without any rule-engine
// record, so pre-engine designs keep their bytes (and content
// addresses) exactly.
func TestZeroPatterningIsByteInvisible(t *testing.T) {
	d := sample(t)
	var buf bytes.Buffer
	if err := Write(&buf, d); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "rule-engine") {
		t.Fatalf("zero patterning emitted a rule-engine record:\n%s", buf.String())
	}
	got, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Tech.Patterning != (tech.Patterning{}) {
		t.Fatalf("reading an engine-less design produced %+v, want zero", got.Tech.Patterning)
	}
}

// TestUnknownEngineFailsClosed: a rule-engine record naming an engine
// this build does not implement must refuse to load — routing such a
// design under silently-substituted SADP rules would produce a result
// that looks valid but violates the design's actual constraints.
func TestUnknownEngineFailsClosed(t *testing.T) {
	header := "cpr-design 1\ndesign demo 20 10\n"
	cases := []struct {
		name   string
		record string
	}{
		{"unknown engine", "rule-engine quad 0 0 0 0 0\n"},
		{"case-sensitive", "rule-engine SADP 0 0 0 0 0\n"},
		{"wrong arity", "rule-engine sadp 0 0\n"},
		{"malformed int", "rule-engine sadp 0 0 x 0 0\n"},
		{"negative param", "rule-engine lele -1 0 0 0 0\n"},
	}
	for _, c := range cases {
		text := header + c.record + "net n0\npin p0 0 2 2 2 2\n"
		_, err := Read(strings.NewReader(text))
		if err == nil {
			t.Errorf("%s: record %q loaded without error", c.name, strings.TrimSpace(c.record))
			continue
		}
		if c.name == "unknown engine" && !strings.Contains(err.Error(), "quad") {
			t.Errorf("%s: error %q does not name the offending engine", c.name, err)
		}
	}
}
