package goroleak_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/goroleak"
)

func TestGoroleak(t *testing.T) {
	analysistest.Run(t, "testdata", goroleak.Analyzer, "goroleak")
}
