package router

import (
	"math/rand"
	"reflect"
	"testing"

	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/tech"
)

// TestSegmentsOfNodeOrderInvariant feeds segmentsOf the same node set in
// shuffled orders and requires identical segment slices: segment order
// flows into nr.Virtual and from there into the cached result, so it must
// not depend on map iteration or node insertion order.
func TestSegmentsOfNodeOrderInvariant(t *testing.T) {
	d := design.New("segperm", 20, 20, tech.Default())
	id := d.AddNet("n0")
	d.AddPin("p0", id, geom.MakeRect(0, 0, 0, 0))
	d.AddPin("p1", id, geom.MakeRect(5, 5, 5, 5))
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	g := grid.New(d)
	r := New(d, g, Config{})

	// Metal on three M2 tracks (two runs on track 2) and two M3 columns.
	var nodes []grid.NodeID
	for x := 1; x <= 4; x++ {
		nodes = append(nodes, g.ID(x, 2, tech.M2))
	}
	for x := 8; x <= 9; x++ {
		nodes = append(nodes, g.ID(x, 2, tech.M2))
	}
	for x := 3; x <= 6; x++ {
		nodes = append(nodes, g.ID(x, 7, tech.M2))
	}
	for y := 2; y <= 7; y++ {
		nodes = append(nodes, g.ID(3, y, tech.M3))
	}
	for y := 1; y <= 3; y++ {
		nodes = append(nodes, g.ID(9, y, tech.M3))
	}

	base := r.segmentsOf(&NetRoute{NetID: id, Nodes: nodes})
	if len(base) != 5 {
		t.Fatalf("expected 5 segments, got %d: %+v", len(base), base)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]grid.NodeID(nil), nodes...)
		rng.Shuffle(len(shuffled), func(i, j int) {
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		})
		got := r.segmentsOf(&NetRoute{NetID: id, Nodes: shuffled})
		if !reflect.DeepEqual(got, base) {
			t.Fatalf("trial %d: segment order depends on node order:\nbase %+v\ngot  %+v",
				trial, base, got)
		}
	}
}
