package cache

import (
	"crypto/sha256"
	"encoding/hex"
)

// RouteKey derives the content address for one routing region's artifact:
// the hex SHA-256 over a domain-separation tag, the region's canonical
// input hash (see pipeline.WriteRegionInputs), and the router
// fingerprint. The "route\n" tag keeps the route keyspace disjoint from
// the design and panel keyspaces even if the hash inputs ever collide in
// content.
func RouteKey(regionHash, routerFingerprint string) string {
	h := sha256.New()
	h.Write([]byte("route\n"))
	h.Write([]byte(regionHash))
	h.Write([]byte{'\n'})
	h.Write([]byte(routerFingerprint))
	return hex.EncodeToString(h.Sum(nil))
}

// ThreeLevel extends the two-level design/panel scheme with a
// per-region route artifact level, so an edited design that misses the
// design level reuses both the panel artifacts and the route bundles
// its edit provably cannot affect. Each level is a Level: a plain
// in-memory LRU (NewThreeLevel) or a block-backed one whose misses fall
// through to a persistent store and peer daemons (NewBacked per level).
type ThreeLevel[D, P, R any] struct {
	// Design is the whole-design result level, keyed by Key.
	Design Level[D]
	// Panel is the per-panel artifact level, keyed by PanelKey.
	Panel Level[P]
	// Route is the per-region route artifact level, keyed by RouteKey.
	Route Level[R]
}

// NewThreeLevel creates all three levels as plain in-memory LRUs.
// Capacities <= 0 select the default of 1024 entries per level.
func NewThreeLevel[D, P, R any](designCap, panelCap, routeCap int) *ThreeLevel[D, P, R] {
	return &ThreeLevel[D, P, R]{
		Design: New[D](designCap),
		Panel:  New[P](panelCap),
		Route:  New[R](routeCap),
	}
}

// ThreeLevelStats snapshots all three levels' counters.
type ThreeLevelStats struct {
	Design Stats `json:"design"`
	Panel  Stats `json:"panel"`
	Route  Stats `json:"route"`
}

// Stats snapshots all three levels.
func (t *ThreeLevel[D, P, R]) Stats() ThreeLevelStats {
	return ThreeLevelStats{
		Design: t.Design.Stats(),
		Panel:  t.Panel.Stats(),
		Route:  t.Route.Stats(),
	}
}
