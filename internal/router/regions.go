package router

import (
	"sort"

	"cpr/internal/geom"
	"cpr/internal/grid"
)

// Region is one independent routing subproblem: a set of nets whose
// influence rectangles form a connected component. Nets of different
// regions provably cannot interact — no search window, clearance cell,
// extended line-end strip, or DRC avoid zone of one region's nets can
// reach another region's rectangles — so regions route independently
// (and concurrently) with byte-identical results to any interleaving.
type Region struct {
	// ID is the region's index in the plan, ascending by smallest member
	// net ID. It is positional provenance only; region content keys must
	// not include it (indices shift when unrelated regions appear).
	ID int
	// Nets lists the member net IDs, ascending.
	Nets []int
	// Rects holds each member's influence rectangle, parallel to Nets,
	// clamped to the grid.
	Rects []geom.Rect
}

// Bounds returns the bounding box of the region's influence rectangles.
func (rg *Region) Bounds() geom.Rect {
	var box geom.Rect
	box.X1, box.Y1 = -1, -1
	for _, rc := range rg.Rects {
		box = box.Union(rc)
	}
	return box
}

// Plan is the region decomposition of one seeded routing problem.
// Compute it with Router.Partition after SeedAssignment (seeded cells
// widen influence rectangles).
type Plan struct {
	Regions []*Region
	// NetRegion maps net ID -> region ID.
	NetRegion []int
}

// maxSearchMargin is the widest window expansion any stage can apply to a
// net's bounding box: negotiation rounds grow the margin up to
// MaxWindowMargin, while the DRC reroute pass uses an uncapped
// WindowMargin + WindowGrowth*(MaxNegotiationIters+1).
func (r *Router) maxSearchMargin() int {
	m := r.cfg.WindowMargin + r.cfg.WindowGrowth*(r.cfg.MaxNegotiationIters+1)
	if r.cfg.MaxWindowMargin > m {
		m = r.cfg.MaxWindowMargin
	}
	return m
}

// influenceMargin is the interaction radius of one net: the widest search
// window any stage can open around its bounding box, plus everything that
// can reach beyond a route inside that window — line-end clearance cells
// plus the rule engine's reach (extension, minimum-length growth, tip
// spacing, the DRC avoid-zone margin, and any cross-track color
// coupling). Two nets whose bounding boxes (including seeded cells) are
// separated by more than twice this margin can never affect each other's
// routing in any stage.
func (r *Router) influenceMargin() int {
	return r.maxSearchMargin() + r.clearanceMargin() + r.rules().RuleReach()
}

// influenceRect returns a net's influence rectangle: the union of its pin
// bounding box and its seeded interval cells, expanded by the influence
// margin and clamped to the grid.
func (r *Router) influenceRect(netID, margin int) geom.Rect {
	box := r.d.NetBBox(netID)
	for _, id := range r.seededNodes[netID] {
		x, y, _ := r.g.Coords(id)
		box = box.Union(geom.Rect{X0: x, Y0: y, X1: x, Y1: y})
	}
	box = box.Expand(margin)
	return r.clampRect(box)
}

// clampRect clips a rectangle to the grid extents.
func (r *Router) clampRect(box geom.Rect) geom.Rect {
	if box.X0 < 0 {
		box.X0 = 0
	}
	if box.Y0 < 0 {
		box.Y0 = 0
	}
	if box.X1 >= r.d.Width {
		box.X1 = r.d.Width - 1
	}
	if box.Y1 >= r.d.Height {
		box.Y1 = r.d.Height - 1
	}
	return box
}

// Partition decomposes the seeded routing problem into independent
// regions: connected components of the net influence-rectangle overlap
// graph. Call it after SeedAssignment. The decomposition is deterministic:
// regions are ordered by their smallest member net ID, members ascending.
func (r *Router) Partition() *Plan {
	n := len(r.d.Nets)
	margin := r.influenceMargin()
	rects := make([]geom.Rect, n)
	for i := 0; i < n; i++ {
		rects[i] = r.influenceRect(i, margin)
	}

	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if rb < ra {
			ra, rb = rb, ra
		}
		parent[rb] = ra
	}

	// Sweep over rectangles sorted by X0 to avoid the full quadratic
	// pairwise check on designs with many spread-out nets.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if rects[order[a]].X0 != rects[order[b]].X0 {
			return rects[order[a]].X0 < rects[order[b]].X0
		}
		return order[a] < order[b]
	})
	for ai, a := range order {
		ra := rects[a]
		for _, b := range order[ai+1:] {
			if rects[b].X0 > ra.X1 {
				break
			}
			if ra.Overlaps(rects[b]) {
				union(a, b)
			}
		}
	}

	// Components keyed by root = smallest member net ID.
	members := make(map[int][]int)
	for i := 0; i < n; i++ {
		root := find(i)
		members[root] = append(members[root], i)
	}
	roots := make([]int, 0, len(members))
	for root := range members {
		roots = append(roots, root)
	}
	sort.Ints(roots)

	plan := &Plan{NetRegion: make([]int, n)}
	for id, root := range roots {
		nets := members[root] // ascending: appended in net ID order
		rg := &Region{ID: id, Nets: nets, Rects: make([]geom.Rect, len(nets))}
		for i, netID := range nets {
			rg.Rects[i] = rects[netID]
			plan.NetRegion[netID] = id
		}
		plan.Regions = append(plan.Regions, rg)
	}
	return plan
}

// SeededCells returns a sorted copy of the seeded interval cells reserved
// for a net by SeedAssignment (empty for unseeded nets). Canonical input
// for region content keys.
func (r *Router) SeededCells(netID int) []grid.NodeID {
	seeds := r.seededNodes[netID]
	if len(seeds) == 0 {
		return nil
	}
	out := append([]grid.NodeID(nil), seeds...)
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// Grid returns the routing grid the router operates on.
func (r *Router) Grid() *grid.Graph { return r.g }

// Config returns the router's effective (defaulted) configuration.
func (r *Router) Configuration() Config { return r.cfg }
