// Package designio is a stub of the repo's design serializer for the
// errdrop golden tests; the analyzer matches it by import path suffix.
package designio

import "io"

// Design stands in for design.Design.
type Design struct{ Name string }

// Write serializes a design.
func Write(w io.Writer, d *Design) error {
	_, err := io.WriteString(w, d.Name)
	return err
}

// Read parses a design.
func Read(r io.Reader) (*Design, error) {
	return &Design{}, nil
}

// Hash content-addresses a design.
func Hash(d *Design) (string, error) {
	return "", nil
}
