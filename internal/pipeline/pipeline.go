// Package pipeline decomposes concurrent pin access optimization into
// explicit, per-panel stages with typed artifacts:
//
//	IntervalSet    §3.1  track-based pin access interval generation
//	ConflictModel  §3.2  conflict sweep + assignment model build
//	Assignment     §3.3  weighted interval assignment (LR or exact ILP)
//
// Each artifact has a canonical text encoding (Encode*) and a content
// hash (Hash*), and each panel's complete product — a PanelArtifact — is
// content-addressed by a per-panel key derived from *every* input that
// can affect the panel's result: the panel's pins, the merged M2 blockage
// spans on its tracks, the bounding boxes of its nets (which may extend
// into other panels), the grid extents and technology, and the solver
// fingerprint. Two panels with equal keys are guaranteed to produce
// byte-identical artifacts, which is what makes incremental (ECO-style)
// re-optimization safe: core.Rerun and the cprd panel cache splice cached
// artifacts for key-identical panels and recompute only the rest, with
// the hard invariant that the spliced run is byte-identical to a cold
// full run of the edited design.
package pipeline

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/pinaccess"
	"cpr/internal/tech"
)

// IntervalSet is the stage-1 artifact: the deduplicated candidate pin
// access intervals of one panel (paper §3.1).
type IntervalSet struct {
	Set *pinaccess.Set
}

// ConflictModel is the stage-2 artifact: the assignment model with its
// maximal conflict sets and profit coefficients (paper §3.2/§3.3).
type ConflictModel struct {
	Model *assign.Model
}

// Assignment is the stage-3 artifact: a legal interval selection for the
// panel plus the solver's convergence flag.
type Assignment struct {
	Solution *assign.Solution
	// Converged reports whether the solver reached a conflict-free
	// selection on its own (LR before refinement, or a proven ILP
	// optimum).
	Converged bool
}

// PanelArtifact is the complete cached product of one panel: everything
// a later run needs to splice the panel into a result without re-solving
// it. The intermediate ConflictModel is deliberately not retained — only
// its summary counts — because router seeding and reporting need only
// the interval set and the solution.
type PanelArtifact struct {
	// Panel is the panel index the artifact was produced for.
	Panel int
	// Key is the content address of the panel's inputs plus the solver
	// fingerprint (see PanelKeyFor); empty when the run was uncacheable.
	Key string
	// Intervals is the stage-1 artifact.
	Intervals *IntervalSet
	// Assignment is the stage-3 artifact.
	Assignment *Assignment
	// NumConflicts is the conflict-set count of the discarded stage-2
	// model, retained for reporting.
	NumConflicts int
}

// ArtifactSet is the per-panel artifact collection of one full run,
// retained on core.RunResult so a later Rerun can splice unchanged
// panels.
type ArtifactSet struct {
	// Fingerprint is the solver fingerprint all artifacts were produced
	// under (SolverConfig.Fingerprint).
	Fingerprint string
	// Panels holds one artifact per non-empty panel, ascending by panel
	// index.
	Panels []*PanelArtifact
	// RouterFingerprint is the router fingerprint the route artifacts
	// were produced under (RouterFingerprint); empty when the run did not
	// retain routing artifacts.
	RouterFingerprint string
	// Routes holds one route artifact per region, ascending by region
	// index.
	Routes []*RouteArtifact
}

// ByKey indexes the artifacts by content key. Artifacts without a key
// are skipped.
func (s *ArtifactSet) ByKey() map[string]*PanelArtifact {
	m := make(map[string]*PanelArtifact, len(s.Panels))
	for _, a := range s.Panels {
		if a.Key != "" {
			m[a.Key] = a
		}
	}
	return m
}

// EncodeIntervalSet writes the canonical text encoding of a stage-1
// artifact: pins ascending, then intervals in ID order with net, track,
// span, covered pins, and min-interval marking.
func EncodeIntervalSet(w io.Writer, s *IntervalSet) error {
	if _, err := fmt.Fprintf(w, "intervalset pins %v\n", s.Set.PinIDs); err != nil {
		return err
	}
	for i := range s.Set.Intervals {
		iv := &s.Set.Intervals[i]
		if _, err := fmt.Fprintf(w, "iv %d net %d track %d span %d %d pins %v min %d\n",
			iv.ID, iv.NetID, iv.Track, iv.Span.Lo, iv.Span.Hi, iv.PinIDs, iv.MinForPin); err != nil {
			return err
		}
	}
	return nil
}

// EncodeConflictModel writes the canonical text encoding of a stage-2
// artifact: conflict sets in their deterministic sweep order, then the
// profit vector.
func EncodeConflictModel(w io.Writer, m *ConflictModel) error {
	for _, cs := range m.Model.Conflicts.Sets {
		if _, err := fmt.Fprintf(w, "conflict track %d common %d %d ids %v\n",
			cs.Track, cs.Common.Lo, cs.Common.Hi, cs.IDs); err != nil {
			return err
		}
	}
	for i, p := range m.Model.Profits {
		if _, err := fmt.Fprintf(w, "profit %d %s %s\n", i,
			formatFloat(m.Model.BaseProfits[i]), formatFloat(p)); err != nil {
			return err
		}
	}
	return nil
}

// EncodeAssignment writes the canonical text encoding of a stage-3
// artifact: selected interval IDs ascending, the per-pin assignment in
// ascending pin order, and the quality metrics.
func EncodeAssignment(w io.Writer, a *Assignment) error {
	var selected []int
	for i, sel := range a.Solution.Selected {
		if sel {
			selected = append(selected, i)
		}
	}
	if _, err := fmt.Fprintf(w, "selected %v\n", selected); err != nil {
		return err
	}
	pids := make([]int, 0, len(a.Solution.ByPin))
	for pid := range a.Solution.ByPin {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		if _, err := fmt.Fprintf(w, "assign %d %d\n", pid, a.Solution.ByPin[pid]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "objective %s violations %d converged %t\n",
		formatFloat(a.Solution.Objective), a.Solution.Violations, a.Converged)
	return err
}

// HashIntervalSet returns the hex SHA-256 of the canonical encoding.
func HashIntervalSet(s *IntervalSet) string {
	return hashOf(func(w io.Writer) error { return EncodeIntervalSet(w, s) })
}

// HashConflictModel returns the hex SHA-256 of the canonical encoding.
func HashConflictModel(m *ConflictModel) string {
	return hashOf(func(w io.Writer) error { return EncodeConflictModel(w, m) })
}

// HashAssignment returns the hex SHA-256 of the canonical encoding.
func HashAssignment(a *Assignment) string {
	return hashOf(func(w io.Writer) error { return EncodeAssignment(w, a) })
}

func hashOf(encode func(io.Writer) error) string {
	h := sha256.New()
	if err := encode(h); err != nil {
		// The encoders only fail on writer errors, and sha256 never
		// errors; keep the signature ergonomic.
		panic(fmt.Sprintf("pipeline: hash encoding failed: %v", err))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// formatFloat renders a float both compactly and losslessly, so encoded
// artifacts are byte-stable across runs without rounding collisions.
func formatFloat(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// WritePanelInputs writes the canonical encoding of every design-side
// input that can affect panel p's artifacts. This is the per-panel half
// of the cache-key contract (DESIGN.md §4d):
//
//   - the grid extents and the full technology record (width clips the
//     free spans; TracksPerPanel induces the panel decomposition);
//   - the panel index and its global track range;
//   - every pin in the panel, ascending by ID, with net and shape (pin
//     IDs and net IDs are part of the artifact, so ID shifts from
//     insertions or deletions must dirty the panel);
//   - the bounding box of every net with a pin in the panel (interval
//     generation windows candidates by the net bbox, which other panels'
//     pins can move);
//   - the merged M2 blockage spans on each of the panel's tracks (the
//     free-span clipping input of §3.1).
//
// Anything not encoded here — other panels' pins that share no net with
// this panel, blockages outside the panel's tracks, router
// configuration — provably cannot change the panel's artifacts.
//
// A non-zero rule-engine selection is encoded as an extra record; the
// zero value emits nothing, keeping every pre-engine panel hash valid.
//
//keypurity:encoder stage
func WritePanelInputs(w io.Writer, d *design.Design, idx *design.TrackIndex, panel int) error {
	t := d.Tech
	if _, err := fmt.Fprintf(w, "panel-inputs v1\ngrid %d %d\ntech %d %d %d %d %d %d %d\n",
		d.Width, d.Height,
		t.TracksPerPanel, t.BaseCost, t.ViaCost, t.ForbiddenViaCost,
		t.LineEndExtension, t.MinLineLen, t.LineEndSpacing); err != nil {
		return err
	}
	if t.Patterning != (tech.Patterning{}) {
		if _, err := fmt.Fprintf(w, "rule-engine %s\n", t.Patterning.Spec()); err != nil {
			return err
		}
	}
	lo, hi := t.PanelTracks(panel)
	if hi >= d.Height {
		hi = d.Height - 1
	}
	if _, err := fmt.Fprintf(w, "panel %d tracks %d %d\n", panel, lo, hi); err != nil {
		return err
	}

	pins := d.PinsInPanel(panel)
	nets := make(map[int]bool)
	for _, pid := range pins {
		p := &d.Pins[pid]
		nets[p.NetID] = true
		if _, err := fmt.Fprintf(w, "pin %d net %d shape %d %d %d %d\n",
			pid, p.NetID, p.Shape.X0, p.Shape.Y0, p.Shape.X1, p.Shape.Y1); err != nil {
			return err
		}
	}
	netIDs := make([]int, 0, len(nets))
	for id := range nets {
		netIDs = append(netIDs, id)
	}
	sort.Ints(netIDs)
	for _, id := range netIDs {
		box := d.NetBBox(id)
		if _, err := fmt.Fprintf(w, "netbbox %d %d %d %d %d\n",
			id, box.X0, box.Y0, box.X1, box.Y1); err != nil {
			return err
		}
	}
	for y := lo; y <= hi; y++ {
		for _, span := range idx.BlockedSpans(y) {
			if _, err := fmt.Fprintf(w, "blocked %d %d %d\n", y, span.Lo, span.Hi); err != nil {
				return err
			}
		}
	}
	return nil
}

// PanelHash returns the hex SHA-256 of the panel's canonical input
// encoding. The track index must be built from the same design.
func PanelHash(d *design.Design, idx *design.TrackIndex, panel int) string {
	return hashOf(func(w io.Writer) error { return WritePanelInputs(w, d, idx, panel) })
}
