package router

import (
	"fmt"
	"math/rand"
	"testing"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/grid"
	"cpr/internal/pinaccess"
	"cpr/internal/tech"
)

// randomDesign places n two/three-pin nets at random disjoint positions.
func randomDesign(t *testing.T, rng *rand.Rand, nets, w, h int) *design.Design {
	t.Helper()
	d := design.New("prop", w, h, tech.Default())
	occupied := make(map[[2]int]bool)
	place := func() (geom.Rect, bool) {
		for attempt := 0; attempt < 50; attempt++ {
			x, y := rng.Intn(w), rng.Intn(h)
			if occupied[[2]int{x, y}] {
				continue
			}
			// Stay within one panel.
			if y%10 == 9 {
				y--
			}
			h2 := y + rng.Intn(2)
			if h2/10 != y/10 || h2 >= h {
				h2 = y
			}
			key1, key2 := [2]int{x, y}, [2]int{x, h2}
			if occupied[key1] || occupied[key2] {
				continue
			}
			occupied[key1] = true
			occupied[key2] = true
			return geom.MakeRect(x, y, x, h2), true
		}
		return geom.Rect{}, false
	}
	for i := 0; i < nets; i++ {
		k := 2 + rng.Intn(2)
		shapes := make([]geom.Rect, 0, k)
		for j := 0; j < k; j++ {
			sh, ok := place()
			if !ok {
				break
			}
			shapes = append(shapes, sh)
		}
		if len(shapes) < 2 {
			continue
		}
		id := d.AddNet(fmt.Sprintf("n%d", i))
		for j, sh := range shapes {
			d.AddPin(fmt.Sprintf("n%d_p%d", i, j), id, sh)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

// TestRouterInvariantsOnRandomDesigns checks structural invariants of the
// negotiation router across random instances:
//
//   - accounting: routed + failed = total;
//   - no residual overuse after a run;
//   - routed nets' metal is mutually exclusive;
//   - metrics (vias, wirelength) equal the per-route sums.
func TestRouterInvariantsOnRandomDesigns(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 12; trial++ {
		d := randomDesign(t, rng, 10+rng.Intn(30), 40+rng.Intn(40), 20+rng.Intn(20))
		g := grid.New(d)
		res := New(d, g, Config{}).Run()

		failed := 0
		vias, wl := 0, 0
		used := make(map[grid.NodeID]int)
		for netID, nr := range res.Routes {
			if !nr.Routed {
				failed++
				if nr.FailReason == "" {
					t.Errorf("trial %d: unrouted net %d without reason", trial, netID)
				}
				continue
			}
			vias += nr.Vias(g)
			wl += nr.Wirelength(g)
			for _, id := range nr.Nodes {
				if prev, ok := used[id]; ok && prev != netID {
					t.Fatalf("trial %d: nets %d and %d share node", trial, prev, netID)
				}
				used[id] = netID
			}
		}
		if res.RoutedNets+failed != len(d.Nets) {
			t.Errorf("trial %d: accounting %d+%d != %d", trial, res.RoutedNets, failed, len(d.Nets))
		}
		if vias != res.Vias || wl != res.Wirelength {
			t.Errorf("trial %d: metric sums %d/%d vs %d/%d", trial, vias, wl, res.Vias, res.Wirelength)
		}
		if got := g.OverusedCount(); got != 0 {
			t.Errorf("trial %d: %d overused nodes after run", trial, got)
		}
	}
}

// TestSeededRouterInvariants repeats the invariant check with CPR-style
// interval seeding on top.
func TestSeededRouterInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 8; trial++ {
		d := randomDesign(t, rng, 10+rng.Intn(20), 50, 20)
		g := grid.New(d)
		pins := make([]int, len(d.Pins))
		for i := range pins {
			pins[i] = i
		}
		set, err := pinaccess.Generate(d, d.BuildTrackIndex(), pins)
		if err != nil {
			t.Fatal(err)
		}
		m := assign.Build(set, assign.SqrtProfit)
		sol := m.MinimumSolution()
		r := New(d, g, Config{})
		r.SeedAssignment(set, sol)
		res := r.Run()
		if got := g.OverusedCount(); got != 0 {
			t.Errorf("trial %d: %d overused nodes after seeded run", trial, got)
		}
		// Seeded cells that the owner's final route uses stay owned; the
		// unused remainder is trimmed (released or reusable), but never
		// handed to a different net as reservation while the owner's
		// route is standing.
		for netID, nr := range res.Routes {
			if !nr.Routed {
				continue
			}
			routeSet := make(map[grid.NodeID]bool, len(nr.Nodes))
			for _, id := range nr.Nodes {
				routeSet[id] = true
			}
			for _, ivID := range sol.ByPin {
				iv := set.Intervals[ivID]
				if iv.NetID != netID {
					continue
				}
				for x := iv.Span.Lo; x <= iv.Span.Hi; x++ {
					id := g.ID(x, iv.Track, tech.M2)
					if routeSet[id] {
						if own := g.Owner(id); own != netID && own != -1 {
							t.Fatalf("trial %d: seeded cell owned by foreign net %d", trial, own)
						}
					}
				}
			}
		}
	}
}

// TestSequentialInvariantsOnRandomDesigns checks the sequential baseline's
// exclusivity: committed ownership plus routes must never overlap.
func TestSequentialInvariantsOnRandomDesigns(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 8; trial++ {
		d := randomDesign(t, rng, 10+rng.Intn(20), 50, 20)
		g := grid.New(d)
		res := New(d, g, Config{}).RunSequential(SequentialConfig{})
		used := make(map[grid.NodeID]int)
		failed := 0
		for netID, nr := range res.Routes {
			if !nr.Routed {
				failed++
				continue
			}
			for _, id := range nr.Nodes {
				if prev, ok := used[id]; ok && prev != netID {
					t.Fatalf("trial %d: sequential nets %d and %d share node", trial, prev, netID)
				}
				used[id] = netID
			}
		}
		if res.RoutedNets+failed != len(d.Nets) {
			t.Errorf("trial %d: accounting broken", trial)
		}
	}
}
