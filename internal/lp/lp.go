// Package lp implements a dense two-phase primal simplex solver for linear
// programs in the form
//
//	maximize    c'x
//	subject to  a_i'x  {<=, >=, =}  b_i      for every constraint i
//	            x >= 0
//
// It exists because the reproduction must be stdlib-only: the paper solves
// its weighted interval assignment ILP with an off-the-shelf solver, so we
// provide the LP core (this package) and a branch-and-bound wrapper
// (package ilp) ourselves.
//
// The implementation is a textbook dense tableau with Dantzig pricing and a
// Bland's-rule fallback for anti-cycling. It is intended for the small to
// medium per-panel problems of the pin access optimizer, not as a general
// high-performance LP code.
package lp

import (
	"fmt"
	"math"
	"time"
)

// Sense is the comparison direction of a constraint.
type Sense int

const (
	// LE means a'x <= b.
	LE Sense = iota
	// GE means a'x >= b.
	GE
	// EQ means a'x = b.
	EQ
)

func (s Sense) String() string {
	switch s {
	case LE:
		return "<="
	case GE:
		return ">="
	default:
		return "="
	}
}

// Term is one coefficient of a sparse constraint row.
type Term struct {
	Var  int
	Coef float64
}

// Constraint is a sparse linear constraint.
type Constraint struct {
	Terms []Term
	Sense Sense
	RHS   float64
}

// Problem is a linear program over NumVars non-negative variables.
type Problem struct {
	NumVars     int
	Objective   []float64 // length NumVars; maximized
	Constraints []Constraint

	// Deadline, when non-zero, aborts the solve with IterLimit status
	// once exceeded (checked periodically during pivoting).
	Deadline time.Time
}

// NewProblem returns an empty problem with n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: make([]float64, n)}
}

// AddConstraint appends a constraint built from sparse terms.
func (p *Problem) AddConstraint(terms []Term, sense Sense, rhs float64) {
	p.Constraints = append(p.Constraints, Constraint{Terms: terms, Sense: sense, RHS: rhs})
}

// Status is the outcome of a solve.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraint system has no solution.
	Infeasible
	// Unbounded means the objective can grow without limit.
	Unbounded
	// IterLimit means the iteration cap was hit before convergence.
	IterLimit
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	default:
		return "iteration-limit"
	}
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         []float64
	Objective float64
	// Iterations is the total number of simplex pivots performed.
	Iterations int
}

const eps = 1e-9

// Solve runs two-phase primal simplex on the problem.
func Solve(p *Problem) Solution {
	if err := p.validate(); err != nil {
		panic(fmt.Sprintf("lp: invalid problem: %v", err))
	}
	t := newTableau(p)
	t.deadline = p.Deadline
	return t.solve(p)
}

func (p *Problem) validate() error {
	if p.NumVars < 0 {
		return fmt.Errorf("negative NumVars %d", p.NumVars)
	}
	if len(p.Objective) != p.NumVars {
		return fmt.Errorf("objective length %d != NumVars %d", len(p.Objective), p.NumVars)
	}
	for i, c := range p.Constraints {
		for _, tm := range c.Terms {
			if tm.Var < 0 || tm.Var >= p.NumVars {
				return fmt.Errorf("constraint %d references variable %d out of [0,%d)",
					i, tm.Var, p.NumVars)
			}
			if math.IsNaN(tm.Coef) || math.IsInf(tm.Coef, 0) {
				return fmt.Errorf("constraint %d has non-finite coefficient", i)
			}
		}
		if math.IsNaN(c.RHS) || math.IsInf(c.RHS, 0) {
			return fmt.Errorf("constraint %d has non-finite RHS", i)
		}
	}
	return nil
}

// tableau is the dense simplex working state.
//
// Column layout: [0, nStruct) structural variables, then slack/surplus
// columns, then artificial columns. rows[i] has length nCols+1 with the RHS
// in the last slot. objRow holds the reduced-cost row (z_j - c_j) with the
// current objective value in the last slot.
type tableau struct {
	nStruct  int
	nCols    int
	artLo    int // first artificial column index
	rows     [][]float64
	objRow   []float64
	basis    []int
	iters    int
	maxIter  int
	deadline time.Time
}

func newTableau(p *Problem) *tableau {
	m := len(p.Constraints)
	// Count extra columns.
	nSlack, nArt := 0, 0
	for _, c := range p.Constraints {
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			// Will be normalized by sign flip below.
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		switch sense {
		case LE:
			nSlack++
		case GE:
			nSlack++
			nArt++
		case EQ:
			nArt++
		}
	}
	t := &tableau{
		nStruct: p.NumVars,
		nCols:   p.NumVars + nSlack + nArt,
		artLo:   p.NumVars + nSlack,
		basis:   make([]int, m),
	}
	t.maxIter = 200*(m+t.nCols) + 2000
	t.rows = make([][]float64, m)
	slackCol := p.NumVars
	artCol := t.artLo
	for i, c := range p.Constraints {
		row := make([]float64, t.nCols+1)
		for _, tm := range c.Terms {
			row[tm.Var] += tm.Coef
		}
		rhs := c.RHS
		sense := c.Sense
		if rhs < 0 {
			for j := 0; j < p.NumVars; j++ {
				row[j] = -row[j]
			}
			rhs = -rhs
			switch sense {
			case LE:
				sense = GE
			case GE:
				sense = LE
			}
		}
		row[t.nCols] = rhs
		switch sense {
		case LE:
			row[slackCol] = 1
			t.basis[i] = slackCol
			slackCol++
		case GE:
			row[slackCol] = -1
			slackCol++
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		case EQ:
			row[artCol] = 1
			t.basis[i] = artCol
			artCol++
		}
		t.rows[i] = row
	}
	return t
}

func (t *tableau) solve(p *Problem) Solution {
	// Phase 1: maximize -sum(artificials); feasible iff optimum is ~0.
	if t.artLo < t.nCols {
		t.objRow = make([]float64, t.nCols+1)
		// z_j - c_j with c = -1 on artificials, priced out for the
		// initial (artificial/slack) basis.
		for j := t.artLo; j < t.nCols; j++ {
			t.objRow[j] = 1 // -c_j = +1
		}
		for i, b := range t.basis {
			if b >= t.artLo {
				// Basic artificial has cost -1: subtract its row.
				for j := 0; j <= t.nCols; j++ {
					t.objRow[j] -= t.rows[i][j]
				}
			}
		}
		status := t.iterate(t.nCols)
		if status == IterLimit {
			return Solution{Status: IterLimit, Iterations: t.iters}
		}
		if t.objRow[t.nCols] < -1e-7 {
			return Solution{Status: Infeasible, Iterations: t.iters}
		}
		t.evictArtificials()
	}

	// Phase 2: maximize the real objective over non-artificial columns.
	t.objRow = make([]float64, t.nCols+1)
	for j := 0; j < t.nStruct; j++ {
		t.objRow[j] = -p.Objective[j]
	}
	for i, b := range t.basis {
		if b < t.nStruct && p.Objective[b] != 0 {
			cb := p.Objective[b]
			for j := 0; j <= t.nCols; j++ {
				t.objRow[j] += cb * t.rows[i][j]
			}
		}
	}
	status := t.iterate(t.artLo)
	sol := Solution{Status: status, Iterations: t.iters}
	if status == Unbounded {
		return sol
	}
	sol.X = make([]float64, t.nStruct)
	for i, b := range t.basis {
		if b < t.nStruct {
			sol.X[b] = t.rows[i][t.nCols]
		}
	}
	sol.Objective = t.objRow[t.nCols]
	return sol
}

// iterate performs simplex pivots until optimality, unboundedness, or the
// iteration cap. Entering columns are restricted to [0, colLimit).
func (t *tableau) iterate(colLimit int) Status {
	blandAfter := t.maxIter / 2
	for ; t.iters < t.maxIter; t.iters++ {
		//cprlint:keypurity deadline polling only; the deadline is armed solely by ilp TimeLimit runs, which are excluded from content addressing (SolverConfig.Cacheable)
		if t.iters%128 == 0 && !t.deadline.IsZero() && time.Now().After(t.deadline) {
			return IterLimit
		}
		enter := -1
		if t.iters < blandAfter {
			best := -eps
			for j := 0; j < colLimit; j++ {
				if t.objRow[j] < best {
					best = t.objRow[j]
					enter = j
				}
			}
		} else {
			for j := 0; j < colLimit; j++ {
				if t.objRow[j] < -eps {
					enter = j
					break
				}
			}
		}
		if enter < 0 {
			return Optimal
		}
		leave := -1
		var minRatio float64
		for i := range t.rows {
			aij := t.rows[i][enter]
			if aij <= eps {
				continue
			}
			ratio := t.rows[i][t.nCols] / aij
			if leave < 0 || ratio < minRatio-eps ||
				(ratio < minRatio+eps && t.basis[i] < t.basis[leave]) {
				leave = i
				minRatio = ratio
			}
		}
		if leave < 0 {
			return Unbounded
		}
		t.pivot(leave, enter)
	}
	return IterLimit
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	prow := t.rows[leave]
	pv := prow[enter]
	inv := 1 / pv
	for j := 0; j <= t.nCols; j++ {
		prow[j] *= inv
	}
	prow[enter] = 1 // exact
	for i := range t.rows {
		if i == leave {
			continue
		}
		f := t.rows[i][enter]
		if f == 0 {
			continue
		}
		row := t.rows[i]
		for j := 0; j <= t.nCols; j++ {
			row[j] -= f * prow[j]
		}
		row[enter] = 0 // exact
	}
	f := t.objRow[enter]
	if f != 0 {
		for j := 0; j <= t.nCols; j++ {
			t.objRow[j] -= f * prow[j]
		}
		t.objRow[enter] = 0
	}
	t.basis[leave] = enter
}

// evictArtificials pivots basic artificial variables (at value ~0 after a
// feasible phase 1) out of the basis where possible. Rows where no
// non-artificial pivot exists are redundant and are zeroed.
func (t *tableau) evictArtificials() {
	for i, b := range t.basis {
		if b < t.artLo {
			continue
		}
		pivotCol := -1
		for j := 0; j < t.artLo; j++ {
			if math.Abs(t.rows[i][j]) > eps {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
		} else {
			// Redundant constraint: zero the row so it never pivots.
			for j := 0; j <= t.nCols; j++ {
				t.rows[i][j] = 0
			}
		}
	}
	// Remove artificial columns from consideration by truncating widths.
	// (Columns remain allocated; iterate() restricts entering columns to
	// [0, artLo) in phase 2, and basic artificials are gone or in zeroed
	// rows.)
}
