// Package errdrop is golden input for the errdrop analyzer.
package errdrop

import (
	"context"
	"fmt"
	"io"

	"cpr/internal/designio"
	"cpr/internal/jobs"
)

// StatementDrop discards designio.Write's error entirely: flagged.
func StatementDrop(w io.Writer, d *designio.Design) {
	designio.Write(w, d) // want `error from designio\.Write dropped \(result discarded\)`
}

// BlankDrop assigns the error to _: flagged.
func BlankDrop(w io.Writer, d *designio.Design) {
	_ = designio.Write(w, d) // want `error from designio\.Write dropped \(error assigned to _\)`
}

// BlankTupleDrop keeps the value but blanks the error: flagged.
func BlankTupleDrop(r io.Reader) *designio.Design {
	d, _ := designio.Read(r) // want `error from designio\.Read dropped \(error assigned to _\)`
	return d
}

// DeferDrop loses the error at function exit: flagged.
func DeferDrop(ctx context.Context, m *jobs.Manager) {
	defer m.Drain(ctx) // want `error from jobs\.Drain dropped \(error lost in defer`
}

// GoDrop loses the error on another goroutine: flagged.
func GoDrop(ctx context.Context, m *jobs.Manager) {
	go m.Drain(ctx) // want `error from jobs\.Drain dropped \(error lost in go statement`
}

// MethodDrop discards a method's error result: flagged.
func MethodDrop(m *jobs.Manager) {
	m.Submit("x") // want `error from jobs\.Submit dropped \(result discarded\)`
}

// Handled checks every error: legal.
func Handled(w io.Writer, r io.Reader, m *jobs.Manager) error {
	d, err := designio.Read(r)
	if err != nil {
		return err
	}
	if err := designio.Write(w, d); err != nil {
		return err
	}
	job, err := m.Submit(d.Name)
	if err != nil {
		return err
	}
	fmt.Println(job.ID)
	return nil
}

// BlankValueKeptErrChecked blanks the value, keeps the error: legal.
func BlankValueKeptErrChecked(r io.Reader) error {
	_, err := designio.Read(r)
	return err
}

// NoErrorResult calls a guarded API without an error result: legal.
func NoErrorResult(m *jobs.Manager) int {
	return m.Depth()
}

// OtherPackage errors are not this analyzer's concern.
func OtherPackage(w io.Writer) {
	fmt.Fprintln(w, "hi")
}

// Suppressed documents a justified drop.
func Suppressed(w io.Writer, d *designio.Design) {
	//cprlint:errdrop best-effort debug dump; the writer is a bytes.Buffer that cannot fail
	designio.Write(w, d)
}
