// Command pinopt runs concurrent pin access optimization only (no
// routing) and reports assignment quality for the LR and/or ILP solvers —
// the standalone view of the paper's §3.
//
// Usage:
//
//	pinopt -pins 800                 # LR on a synthetic sweep instance
//	pinopt -pins 200 -ilp            # LR and exact ILP side by side
//	pinopt -circuit ecc              # per-panel LR over a full circuit
//	pinopt -load edited.cprd -baseline original.cprd  # panel reuse across revisions
package main

import (
	"context"
	"flag"
	"fmt"
	"time"

	"cpr/internal/assign"
	"cpr/internal/cache"
	"cpr/internal/cliutil"
	"cpr/internal/core"
	"cpr/internal/design"
	"cpr/internal/ilp"
	"cpr/internal/lagrange"
	"cpr/internal/parallel"
	"cpr/internal/pinaccess"
	"cpr/internal/pipeline"
	"cpr/internal/synth"
)

func main() {
	var (
		circuit    = flag.String("circuit", "", "Table 2 circuit (per-panel optimization); empty uses -pins")
		pins       = flag.Int("pins", 400, "target pin count for a single whole-design instance")
		seed       = cliutil.Seed(77)
		runILP     = flag.Bool("ilp", false, "also solve exactly with branch-and-bound ILP")
		ilpTimeout = cliutil.ILPTimeout(60 * time.Second)
		ub         = flag.Int("ub", 200, "LR iteration upper bound")
		alpha      = flag.Float64("alpha", 0.95, "LR subgradient step exponent")
		workers    = cliutil.Workers()
		ruleEngine = cliutil.RuleEngine()
		loadPath   = flag.String("load", "", "load the design from a cpr-design file (per-panel optimization)")
		baseline   = cliutil.Baseline()
		rerunMode  = cliutil.RerunMode()
		tracePath  = cliutil.Trace()
		traceFmt   = cliutil.TraceFormat()
	)
	flag.Parse()

	ctx, flushTrace, err := cliutil.StartTrace(context.Background(), *tracePath, *traceFmt)
	if err != nil {
		fatal(err)
	}
	// Pin optimization has no routing stage, so both rerun modes behave
	// identically here; the flag is validated for script compatibility
	// with cmd/cpr.
	if _, err := core.ParseRerunMode(*rerunMode); err != nil {
		fatal(err)
	}

	if *circuit != "" || *loadPath != "" {
		d, err := loadOrSynth(*circuit, *loadPath)
		if err != nil {
			fatal(err)
		}
		runDesign(ctx, d, *workers, *ruleEngine, *baseline)
		if err := flushTrace(); err != nil {
			fatal(fmt.Errorf("writing trace: %w", err))
		}
		return
	}

	d, err := synth.Generate(synth.SweepSpec(*pins, *seed))
	if err != nil {
		fatal(err)
	}
	model, err := buildModel(d, *workers)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %d pins, %d intervals, %d conflict sets\n",
		model.NumPins(), model.NumIntervals(), len(model.Conflicts.Sets))

	t0 := time.Now()
	lr := lagrange.Solve(model, lagrange.Config{MaxIterations: *ub, Alpha: *alpha, Workers: parallel.Resolve(*workers)})
	lrTime := time.Since(t0)
	st := lr.Solution.Lengths(model.Set)
	fmt.Printf("LR : objective %.1f, %d iterations, converged=%v, cpu %v\n",
		lr.Solution.Objective, lr.Iterations, lr.Converged, lrTime)
	fmt.Printf("     lengths: total %d, mean %.2f, stddev %.2f\n", st.Total, st.Mean, st.StdDev)

	if *runILP {
		t0 = time.Now()
		sol, res, err := model.SolveILP(ilp.Config{TimeLimit: *ilpTimeout})
		ilpTime := time.Since(t0)
		if err != nil {
			fmt.Printf("ILP: failed (%v) after %v\n", err, ilpTime)
			return
		}
		fmt.Printf("ILP: objective %.1f (%s, %d nodes), cpu %v\n",
			sol.Objective, res.Status, res.Nodes, ilpTime)
		if sol.Objective > 0 {
			fmt.Printf("     LR/ILP objective ratio: %.4f\n", lr.Solution.Objective/sol.Objective)
		}
	}
}

// loadOrSynth materializes the design named by exactly one of -circuit
// or -load.
func loadOrSynth(circuit, loadPath string) (*design.Design, error) {
	if circuit != "" && loadPath != "" {
		return nil, fmt.Errorf("-circuit and -load are mutually exclusive")
	}
	if loadPath != "" {
		return cliutil.ReadDesign(loadPath)
	}
	spec, err := synth.SpecByName(circuit)
	if err != nil {
		return nil, err
	}
	return synth.Generate(spec)
}

// runDesign runs per-panel optimization over a full design. With a
// baseline, that revision is optimized first into a shared panel cache,
// so the main run reuses every panel the edit between the two revisions
// cannot have affected; the reuse counts are reported.
func runDesign(ctx context.Context, d *design.Design, workers int, ruleEngine, baseline string) {
	opts := core.Options{Workers: workers, RuleEngine: ruleEngine}
	if baseline != "" {
		base, err := cliutil.ReadDesign(baseline)
		if err != nil {
			fatal(err)
		}
		pc := cache.New[*pipeline.PanelArtifact](0)
		opts.PanelCache = pc
		if _, _, err := core.OptimizePinAccessContext(ctx, base, opts); err != nil {
			fatal(fmt.Errorf("baseline run: %w", err))
		}
	}
	rep, _, err := core.OptimizePinAccessContext(ctx, d, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("design %s: %d panels, %d pins, %d intervals, %d conflict sets\n",
		d.Name, len(rep.Panels), rep.TotalPins, rep.TotalIntervals, rep.TotalConflicts)
	fmt.Printf("objective %.1f in %v\n", rep.Objective, rep.Elapsed)
	converged := 0
	for _, p := range rep.Panels {
		if p.Converged {
			converged++
		}
	}
	fmt.Printf("panels converged without refinement: %d/%d\n", converged, len(rep.Panels))
	if pc, ok := opts.PanelCache.(*cache.Cache[*pipeline.PanelArtifact]); ok && pc != nil {
		st := pc.Stats()
		fmt.Printf("panel cache: %d hits, %d misses (reused %d/%d panels of the main run)\n",
			st.Hits, st.Misses, st.Hits, len(rep.Panels))
	}
}

func buildModel(d *design.Design, workers int) (*assign.Model, error) {
	pins := make([]int, len(d.Pins))
	for i := range pins {
		pins[i] = i
	}
	set, err := pinaccess.GenerateWithOptions(d, d.BuildTrackIndex(), pins, pinaccess.Options{Workers: parallel.Resolve(workers)})
	if err != nil {
		return nil, err
	}
	return assign.BuildWorkers(set, assign.SqrtProfit, parallel.Resolve(workers)), nil
}

func fatal(err error) { cliutil.Fatal("pinopt", err) }
