package pipeline

import (
	"context"
	"strings"
	"testing"
	"time"

	"cpr/internal/assign"
	"cpr/internal/design"
	"cpr/internal/geom"
	"cpr/internal/ilp"
	"cpr/internal/lagrange"
	"cpr/internal/tech"
)

// basePanelDesign builds a three-panel design with a net spanning panels
// 0 and 1 plus a net local to panel 0 and one local to panel 2, so tests
// can probe exactly which edits reach which panel hash.
func basePanelDesign(t *testing.T) *design.Design {
	t.Helper()
	d := design.New("hash-probe", 60, 30, tech.Default())
	span := d.AddNet("span")
	d.AddPin("span_a", span, geom.MakeRect(8, 2, 8, 2))     // panel 0
	d.AddPin("span_b", span, geom.MakeRect(40, 12, 40, 12)) // panel 1
	local0 := d.AddNet("local0")
	d.AddPin("l0_a", local0, geom.MakeRect(12, 4, 12, 4)) // panel 0
	d.AddPin("l0_b", local0, geom.MakeRect(20, 6, 20, 6)) // panel 0
	local2 := d.AddNet("local2")
	d.AddPin("l2_a", local2, geom.MakeRect(10, 22, 10, 22)) // panel 2
	d.AddPin("l2_b", local2, geom.MakeRect(22, 24, 22, 24)) // panel 2
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func panelHash(t *testing.T, d *design.Design, panel int) string {
	t.Helper()
	return PanelHash(d, d.BuildTrackIndex(), panel)
}

// TestPanelHashInvalidation proves the per-panel cache-key contract: the
// hash of a panel changes whenever any input that can affect its result
// changes, and only then. Each case mutates one input class (pins,
// blockages, tracks/tech, grid) and checks which panels' hashes move.
func TestPanelHashInvalidation(t *testing.T) {
	base := basePanelDesign(t)
	baseHash := [3]string{}
	for p := range baseHash {
		baseHash[p] = panelHash(t, base, p)
	}
	if baseHash[0] == baseHash[1] || baseHash[0] == baseHash[2] || baseHash[1] == baseHash[2] {
		t.Fatal("distinct panels hash equal")
	}

	cases := []struct {
		name   string
		mutate func(d *design.Design)
		// dirty[p] == true means panel p's hash must change; false means
		// it must NOT change.
		dirty [3]bool
	}{
		{
			name: "move pin within panel 0 (local net)",
			mutate: func(d *design.Design) {
				d.Pins[2].Shape = geom.MakeRect(13, 4, 13, 4) // l0_a
			},
			dirty: [3]bool{true, false, false},
		},
		{
			name: "move panel-0 pin of the spanning net",
			mutate: func(d *design.Design) {
				d.Pins[0].Shape = geom.MakeRect(5, 2, 5, 2) // span_a: bbox reaches panel 1
			},
			dirty: [3]bool{true, true, false},
		},
		{
			name: "add pin to panel 2",
			mutate: func(d *design.Design) {
				d.AddPin("l2_c", 2, geom.MakeRect(30, 26, 30, 26))
			},
			dirty: [3]bool{false, false, true},
		},
		{
			name: "blockage on a panel-1 track",
			mutate: func(d *design.Design) {
				d.AddBlockage(tech.M2, geom.MakeRect(2, 15, 6, 15))
			},
			dirty: [3]bool{false, true, false},
		},
		{
			name: "blockage on a panel-0 track leaves other panels alone",
			mutate: func(d *design.Design) {
				d.AddBlockage(tech.M2, geom.MakeRect(2, 5, 6, 5))
			},
			dirty: [3]bool{true, false, false},
		},
		{
			name: "tech change dirties every panel",
			mutate: func(d *design.Design) {
				tc := *d.Tech
				tc.LineEndSpacing++
				d.Tech = &tc
			},
			dirty: [3]bool{true, true, true},
		},
		{
			name: "grid width change dirties every panel",
			mutate: func(d *design.Design) {
				d.Width++
			},
			dirty: [3]bool{true, true, true},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := basePanelDesign(t)
			tc.mutate(d)
			for p := 0; p < 3; p++ {
				changed := panelHash(t, d, p) != baseHash[p]
				if changed != tc.dirty[p] {
					t.Errorf("panel %d: hash changed=%t, want %t", p, changed, tc.dirty[p])
				}
			}
		})
	}
}

// TestPanelHashStable: rebuilding the identical design yields identical
// hashes (the content address is a function of content, not identity).
func TestPanelHashStable(t *testing.T) {
	a, b := basePanelDesign(t), basePanelDesign(t)
	for p := 0; p < 3; p++ {
		if panelHash(t, a, p) != panelHash(t, b, p) {
			t.Errorf("panel %d: identical designs hash differently", p)
		}
	}
}

// TestPanelKeyFingerprint: the panel key folds in the solver fingerprint,
// so a result-affecting option change re-addresses every panel while the
// panel-input hash alone stays put.
func TestPanelKeyFingerprint(t *testing.T) {
	d := basePanelDesign(t)
	idx := d.BuildTrackIndex()
	base := SolverConfig{}
	tuned := SolverConfig{LR: lagrange.Config{MaxIterations: 400}}
	if base.Fingerprint() == tuned.Fingerprint() {
		t.Fatal("LR.MaxIterations does not reach the fingerprint")
	}
	k1 := PanelKeyFor(d, idx, 0, base)
	k2 := PanelKeyFor(d, idx, 0, tuned)
	if k1 == "" || k2 == "" {
		t.Fatal("cacheable configs produced empty keys")
	}
	if k1 == k2 {
		t.Error("panel key ignores the solver fingerprint")
	}
	if PanelKeyFor(d, idx, 0, base) != k1 {
		t.Error("panel key is not a pure function of its inputs")
	}
	if PanelKeyFor(d, idx, 1, base) == k1 {
		t.Error("distinct panels share a key")
	}
}

// TestSolverConfigCacheable pins the opt-out rules: custom profit
// functions, caller Stop hooks, and wall-clock-limited ILP may not be
// content-addressed.
func TestSolverConfigCacheable(t *testing.T) {
	cases := []struct {
		name string
		cfg  SolverConfig
		want bool
	}{
		{"default LR", SolverConfig{}, true},
		{"tuned LR", SolverConfig{LR: lagrange.Config{MaxIterations: 50, Alpha: 0.9}}, true},
		{"ILP without time limit", SolverConfig{UseILP: true, ILP: ilp.Config{MaxNodes: 1000}}, true},
		{"custom profit", SolverConfig{Profit: assign.ProfitFn(func(length int) float64 { return 1 })}, false},
		{"custom stop hook", SolverConfig{LR: lagrange.Config{Stop: func() bool { return false }}}, false},
		{"ILP with time limit", SolverConfig{UseILP: true, ILP: ilp.Config{TimeLimit: time.Second}}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.cfg.Cacheable(); got != tc.want {
				t.Errorf("Cacheable() = %t, want %t", got, tc.want)
			}
			if !tc.want {
				d := basePanelDesign(t)
				if key := PanelKeyFor(d, d.BuildTrackIndex(), 0, tc.cfg); key != "" {
					t.Errorf("uncacheable config produced key %q", key)
				}
			}
		})
	}
}

// TestSolvePanelArtifactsDeterministic: solving the same panel twice
// (and at different worker counts) yields byte-identical artifact
// encodings, the property panel-level caching rests on.
func TestSolvePanelArtifactsDeterministic(t *testing.T) {
	d := basePanelDesign(t)
	idx := d.BuildTrackIndex()
	cfg := SolverConfig{}
	ctx := context.Background()
	var first *PanelArtifact
	for _, workers := range []int{1, 1, 4} {
		art, err := SolvePanel(ctx, d, idx, 0, d.PinsInPanel(0), cfg, workers)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = art
			continue
		}
		if HashIntervalSet(art.Intervals) != HashIntervalSet(first.Intervals) {
			t.Errorf("workers=%d: interval set encoding differs", workers)
		}
		if HashAssignment(art.Assignment) != HashAssignment(first.Assignment) {
			t.Errorf("workers=%d: assignment encoding differs", workers)
		}
		if art.Key != first.Key {
			t.Errorf("workers=%d: key differs", workers)
		}
	}
	if first.Key == "" {
		t.Error("cacheable solve produced no key")
	}
}

// TestEncodeConflictModel sanity-checks the stage-2 encoding so the hash
// actually covers the model's conflicts and profits.
func TestEncodeConflictModel(t *testing.T) {
	d := basePanelDesign(t)
	idx := d.BuildTrackIndex()
	set, err := GenerateStage(d, idx, d.PinsInPanel(0), 1)
	if err != nil {
		t.Fatal(err)
	}
	m := ConflictStage(set, SolverConfig{}, 1)
	var b strings.Builder
	if err := EncodeConflictModel(&b, m); err != nil {
		t.Fatal(err)
	}
	if len(m.Model.Profits) > 0 && !strings.Contains(b.String(), "profit") {
		t.Error("encoding lost the profit vector")
	}
	if HashConflictModel(m) != HashConflictModel(m) {
		t.Error("conflict model hash unstable")
	}
}
