package errdrop_test

import (
	"testing"

	"cpr/internal/analysis/analysistest"
	"cpr/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	analysistest.Run(t, "testdata", errdrop.Analyzer, "errdrop")
}
