// Package other is golden input: packages outside internal/{core,jobs,
// server} are not subject to ctxpass.
package other

// Spawn is fine here.
func Spawn(work func()) {
	go work()
}
