// Quickstart: generate a small synthetic circuit, run the concurrent pin
// access router, and print the paper-style metrics row.
package main

import (
	"fmt"
	"log"

	"cpr"
)

func main() {
	// A small standard-cell-like design: 150 nets on a 220x80 grid
	// (8 cell rows of 10 M2 tracks each).
	d, err := cpr.GenerateCircuit(cpr.Spec{
		Name:   "quickstart",
		Nets:   150,
		Width:  220,
		Height: 80,
		Seed:   42,
	})
	if err != nil {
		log.Fatal(err)
	}
	stats := d.ComputeStats()
	fmt.Printf("design: %d nets, %d pins, %d panels\n", stats.Nets, stats.Pins, stats.Panels)

	// Run the full CPR flow: per-panel pin access optimization with
	// Lagrangian relaxation, then negotiation-congestion routing.
	res, err := cpr.Run(d, cpr.Options{Mode: cpr.ModeCPR})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pin access optimization: %d pins -> %d candidate intervals, %d conflict sets (%.1fms)\n",
		res.PinOpt.TotalPins, res.PinOpt.TotalIntervals, res.PinOpt.TotalConflicts,
		float64(res.PinOpt.Elapsed.Microseconds())/1000)

	m := res.Metrics
	fmt.Printf("routing: %.2f%% routability, %d vias, %d wirelength, %.2fs\n",
		m.RoutPct, m.Vias, m.WL, m.CPUSeconds)
	fmt.Printf("initial congested grids: %d (the number CPR exists to shrink)\n",
		m.InitialCongested)
}
