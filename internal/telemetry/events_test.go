package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestEventBusRingWrap(t *testing.T) {
	b := NewEventBus(4)
	for i := 0; i < 6; i++ {
		b.Publish("j", "tick", map[string]any{"i": i})
	}
	snap := b.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(snap))
	}
	for i, ev := range snap {
		if want := uint64(i + 3); ev.Seq != want {
			t.Fatalf("snap[%d].Seq = %d, want %d (oldest-first after wrap)", i, ev.Seq, want)
		}
	}
}

func TestEventBusSubscribeReplayAndFilter(t *testing.T) {
	b := NewEventBus(64)
	b.Publish("a", "one", nil)
	b.Publish("b", "two", nil)
	b.Publish("a", "three", nil)

	replay, _, cancel := b.Subscribe("a", 0, 8)
	defer cancel()
	if len(replay) != 2 || replay[0].Type != "one" || replay[1].Type != "three" {
		t.Fatalf("job-filtered replay = %+v, want [one three]", replay)
	}

	// afterSeq resumes past already-seen events.
	replay2, _, cancel2 := b.Subscribe("a", replay[0].Seq, 8)
	defer cancel2()
	if len(replay2) != 1 || replay2[0].Type != "three" {
		t.Fatalf("resumed replay = %+v, want [three]", replay2)
	}

	// "" subscribes to every job.
	replay3, _, cancel3 := b.Subscribe("", 0, 8)
	defer cancel3()
	if len(replay3) != 3 {
		t.Fatalf("unfiltered replay has %d events, want 3", len(replay3))
	}
}

func TestEventBusLiveDelivery(t *testing.T) {
	b := NewEventBus(64)
	_, ch, cancel := b.Subscribe("j", 0, 8)
	defer cancel()
	b.Publish("j", "hello", nil)
	b.Publish("other", "ignored", nil)
	select {
	case ev := <-ch:
		if ev.Type != "hello" {
			t.Fatalf("got %q, want hello", ev.Type)
		}
	case <-time.After(time.Second):
		t.Fatal("no live event delivered")
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected cross-job event %+v", ev)
	default:
	}
}

// TestEventBusPublishNeverBlocks is the §4j contract: a subscriber that
// stops reading loses events (counted) but cannot stall Publish.
func TestEventBusPublishNeverBlocks(t *testing.T) {
	b := NewEventBus(64)
	_, _, cancel := b.Subscribe("", 0, 2) // tiny buffer, never read
	defer cancel()

	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			b.Publish("j", "flood", nil)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked on a stalled subscriber")
	}
	if d := b.Dropped(); d != 98 {
		t.Fatalf("dropped = %d, want 98 (100 published, buffer 2)", d)
	}
}

func TestEventBusCancelIdempotentAndCloses(t *testing.T) {
	b := NewEventBus(8)
	_, ch, cancel := b.Subscribe("", 0, 2)
	cancel()
	cancel() // second call must not panic (double close)
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after cancel")
	}
	// Publishing after cancel must not panic or count drops.
	b.Publish("j", "late", nil)
	if d := b.Dropped(); d != 0 {
		t.Fatalf("dropped = %d after cancel, want 0", d)
	}
}

func TestEventBusNilSafety(t *testing.T) {
	var b *EventBus
	b.Publish("j", "x", nil) // must not panic
	if b.Snapshot() != nil {
		t.Fatal("nil bus Snapshot != nil")
	}
	if b.Dropped() != 0 {
		t.Fatal("nil bus Dropped != 0")
	}
	replay, ch, cancel := b.Subscribe("", 0, 1)
	cancel()
	if replay != nil {
		t.Fatal("nil bus replay != nil")
	}
	if _, ok := <-ch; ok {
		t.Fatal("nil bus channel not closed")
	}
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatalf("nil bus WriteJSON: %v", err)
	}

	var e *Emitter
	e.Emit("x", nil) // must not panic
	if NewEmitter(nil, "j") != nil {
		t.Fatal("NewEmitter(nil) != nil")
	}
}

func TestEventBusWriteJSONEnvelope(t *testing.T) {
	b := NewEventBus(8)
	b.Publish("j", "one", map[string]any{"k": "v"})
	var buf bytes.Buffer
	if err := b.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var dump struct {
		Format  string  `json:"format"`
		Dropped uint64  `json:"dropped"`
		Events  []Event `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &dump); err != nil {
		t.Fatalf("decoding dump: %v", err)
	}
	if dump.Format != "cpr-events-v1" {
		t.Fatalf("format = %q, want cpr-events-v1", dump.Format)
	}
	if len(dump.Events) != 1 || dump.Events[0].Type != "one" || dump.Events[0].Data["k"] != "v" {
		t.Fatalf("events = %+v, want the published event", dump.Events)
	}
}

func TestTracerEmitsSpanEvents(t *testing.T) {
	b := NewEventBus(64)
	tr := New()
	tr.SetEmitter(NewEmitter(b, "j"))
	sp := tr.StartSpan("work", nil)
	sp.End()
	sp.End() // idempotent End must emit span_end exactly once

	var starts, ends int
	for _, ev := range b.Snapshot() {
		switch ev.Type {
		case "span_start":
			starts++
			if ev.Data["name"] != "work" {
				t.Fatalf("span_start name = %v", ev.Data["name"])
			}
		case "span_end":
			ends++
			if _, ok := ev.Data["duration_ns"]; !ok {
				t.Fatalf("span_end missing duration_ns: %+v", ev.Data)
			}
		}
	}
	if starts != 1 || ends != 1 {
		t.Fatalf("span_start=%d span_end=%d, want 1/1", starts, ends)
	}
}

func TestSpanContextRoundTrip(t *testing.T) {
	tr := New()
	sp := tr.StartSpan("root", nil)
	sc := sp.SpanContext()
	if !sc.Valid() {
		t.Fatalf("context %+v not valid", sc)
	}
	if sc.TraceID != tr.TraceID() || sc.SpanID != sp.ID {
		t.Fatalf("context %+v does not match tracer/span", sc)
	}
	got, ok := ParseSpanContext(sc.String())
	if !ok || got != sc {
		t.Fatalf("ParseSpanContext(%q) = %+v ok=%v, want %+v", sc.String(), got, ok, sc)
	}

	for _, bad := range []string{"", "noslash", "/5", "tid/", "tid/zero", "tid/0", "tid/-1"} {
		if _, ok := ParseSpanContext(bad); ok {
			t.Fatalf("ParseSpanContext(%q) accepted malformed input", bad)
		}
	}
	var nilSpan *Span
	if nilSpan.SpanContext().Valid() {
		t.Fatal("nil span produced a valid context")
	}
}

func TestTraceIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := New().TraceID()
		if id == "" || seen[id] {
			t.Fatalf("trace id %q empty or repeated", id)
		}
		seen[id] = true
	}
}

func TestRemoteSpanEncodeDecode(t *testing.T) {
	r := RemoteSpan{Name: "serve_block", DurationNS: 12345, Attrs: []Attr{{Key: "key", Value: "abc"}}}
	got, ok := DecodeRemoteSpan(EncodeRemoteSpan(r))
	if !ok || got.Name != r.Name || got.DurationNS != r.DurationNS || len(got.Attrs) != 1 {
		t.Fatalf("round trip = %+v ok=%v, want %+v", got, ok, r)
	}
	for _, bad := range []string{"", "{", `{"duration_ns":5}`, "not json"} {
		if _, ok := DecodeRemoteSpan(bad); ok {
			t.Fatalf("DecodeRemoteSpan(%q) accepted malformed input", bad)
		}
	}
}

func TestAdoptRemote(t *testing.T) {
	tr := New()
	parent := tr.StartSpan("peer_fetch", nil)
	child := parent.AdoptRemote(RemoteSpan{Name: "serve_block", DurationNS: int64(time.Millisecond)})
	parent.End()

	if child == nil || child.ParentID != parent.ID {
		t.Fatalf("adopted child %+v not linked to parent %d", child, parent.ID)
	}
	if v, ok := child.Attr("remote"); !ok || v != true {
		t.Fatal("adopted child missing remote=true attr")
	}
	recs := tr.Snapshot()
	var rec *SpanRecord
	for i := range recs {
		if recs[i].Name == "serve_block" {
			rec = &recs[i]
		}
	}
	if rec == nil {
		t.Fatal("adopted span missing from tracer snapshot")
	}
	if rec.Duration != time.Millisecond {
		t.Fatalf("adopted duration = %v, want 1ms", rec.Duration)
	}

	// A huge claimed duration is clamped so the child never starts
	// before its parent.
	big := parent.AdoptRemote(RemoteSpan{Name: "skewed", DurationNS: int64(24 * time.Hour)})
	recs = tr.Snapshot()
	bigRec, parentRec := recs[big.ID-1], recs[parent.ID-1]
	if bigRec.Start < parentRec.Start {
		t.Fatalf("skewed child starts %v before its parent %v", bigRec.Start, parentRec.Start)
	}
	if parent.AdoptRemote(RemoteSpan{Name: "x"}) == nil {
		t.Fatal("AdoptRemote on live span returned nil")
	}
	var nilSpan *Span
	if nilSpan.AdoptRemote(RemoteSpan{Name: "x"}) != nil {
		t.Fatal("nil span AdoptRemote != nil")
	}
}

func TestTraceJSONCarriesTraceID(t *testing.T) {
	tr := New()
	tr.StartSpan("root", nil).End()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf, ExportOptions{}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !strings.Contains(buf.String(), tr.TraceID()) {
		t.Fatalf("trace JSON missing trace id %q", tr.TraceID())
	}
	// Golden-test mode blanks the (time-derived) trace id.
	buf.Reset()
	if err := tr.WriteJSON(&buf, ExportOptions{ZeroTimes: true}); err != nil {
		t.Fatalf("WriteJSON zeroed: %v", err)
	}
	if strings.Contains(buf.String(), tr.TraceID()) {
		t.Fatal("ZeroTimes export leaked the trace id")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	reg := NewRegistry()
	hist := reg.Histogram("t_seconds", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 5, 50, 500} {
		hist.Observe(v)
	}
	snap := hist.Snapshot()
	if snap.Count != 4 || snap.Sum != 555.5 {
		t.Fatalf("snapshot count=%d sum=%v, want 4/555.5", snap.Count, snap.Sum)
	}
	if len(snap.Bounds) != 3 || len(snap.Counts) != 3 {
		t.Fatalf("snapshot has %d bounds / %d counts, want 3/3", len(snap.Bounds), len(snap.Counts))
	}
	// Cumulative: ≤1 → 1, ≤10 → 2, ≤100 → 3 (the 500 lives only in Count).
	for i, want := range []uint64{1, 2, 3} {
		if snap.Counts[i] != want {
			t.Fatalf("cumulative counts = %v, want [1 2 3]", snap.Counts)
		}
	}
	var nilHist *Histogram
	if nilHist.Snapshot() != nil {
		t.Fatal("nil histogram Snapshot != nil")
	}
}
